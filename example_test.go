package betze_test

import (
	"fmt"
	"strings"

	"github.com/joda-explore/betze"
)

// ExampleGenerate shows the minimal analyze→generate pipeline: synthesise a
// dataset, summarise it, and produce a reproducible expert session.
func ExampleGenerate() {
	docs := betze.NoBenchSource().Generate(2000, 1)
	stats := betze.AnalyzeValues("NoBench", docs, betze.AnalyzeOptions{})

	backend := betze.NewJODA(betze.JODAOptions{})
	backend.ImportValues("NoBench", docs)
	defer backend.Close()

	session, err := betze.Generate(betze.Options{
		Preset:  betze.Expert,
		Seed:    123,
		Backend: backend,
	}, stats)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("queries:", len(session.Queries))
	fmt.Println("preset:", session.Preset.Name)
	// Output:
	// queries: 5
	// preset: expert
}

// ExampleScript renders one query in every supported language.
func ExampleScript() {
	q := &betze.Query{
		ID:     "q1",
		Base:   "Twitter",
		Filter: mustPredicate(),
	}
	for _, lang := range betze.Languages() {
		script := betze.Script(lang, []*betze.Query{q})
		fmt.Println(lang.ShortName(), "->", strings.Contains(script, "Twitter"))
	}
	// Output:
	// joda -> true
	// jq -> true
	// mongodb -> true
	// postgres -> true
}

func mustPredicate() betze.Predicate {
	// The query package types are re-exported through the facade; a
	// filter can also be built by the generator instead of by hand.
	return existsUser{}
}

// existsUser demonstrates that Predicate is an open interface: any Eval +
// String pair works, though generator-produced predicates are the norm.
type existsUser struct{}

func (existsUser) Eval(doc betze.Value) bool {
	_, ok := betze.ParsePath("/user").Lookup(doc)
	return ok
}

func (existsUser) String() string { return "EXISTS('/user')" }

// ExamplePresetByName resolves Table I presets by name.
func ExamplePresetByName() {
	p, _ := betze.PresetByName("novice")
	fmt.Printf("%s: alpha=%.1f beta=%.1f n=%d\n", p.Name, p.Alpha, p.Beta, p.Queries)
	// Output:
	// novice: alpha=0.5 beta=0.3 n=20
}
