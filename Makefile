# Developer targets for the BETZE reproduction. Everything is stdlib-only Go;
# `make check` is the full CI gate (vet + race-enabled tests).

GO ?= go

.PHONY: all build test vet race check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The multiuser harness, the jodasim worker pool and the obs registry are the
# concurrency hot spots; run the whole tree under the race detector.
race:
	$(GO) test -race ./...

check: vet race

# A quick laptop-scale pass over every experiment of the paper.
bench:
	$(GO) run ./cmd/betze-bench -exp all

clean:
	$(GO) clean ./...
