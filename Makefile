# Developer targets for the BETZE reproduction. Everything is stdlib-only Go;
# `make check` is the full CI gate (vet + lint + race-enabled tests).

GO ?= go

.PHONY: all build test vet lint race chaos check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Machine-checked invariants (DESIGN.md): determinism, sentinel wrapping,
# context plumbing, the closed observability vocabulary, resource release.
# Exits non-zero on any finding; suppress with //lint:ignore <analyzer> <reason>.
lint:
	$(GO) run ./cmd/betze-lint ./...

# The multiuser harness, the jodasim worker pool and the obs registry are the
# concurrency hot spots; run the whole tree under the race detector.
race:
	$(GO) test -race ./...

# Fault-injection suite: every retry/breaker/crash-recovery/cancellation test
# runs with the deterministic injector active, under the race detector.
chaos:
	$(GO) test -race -run 'Fault|Resilien|Recovery|Breaker|Retry|Skip|Cancel|Crash|MultiUser' \
		./internal/faultsim/... ./internal/harness/... ./internal/engine/...

check: vet lint race chaos

# A quick laptop-scale pass over every experiment of the paper.
bench:
	$(GO) run ./cmd/betze-bench -exp all

clean:
	$(GO) clean ./...
