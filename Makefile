# Developer targets for the BETZE reproduction. Everything is stdlib-only Go;
# `make check` is the full CI gate (vet + lint + race-enabled tests).

GO ?= go

.PHONY: all build test vet lint lint-self race race-core race-engine race-service race-tools chaos crash crashfuzz crashfuzz-deep serve-crash loadgen-det check bench bench-short bench-paper clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Machine-checked invariants (DESIGN.md): determinism, sentinel wrapping,
# context plumbing, the closed observability vocabulary, resource release,
# atomic artifact publication, and the CFG/dataflow concurrency suite
# (lockbalance, goleak, atomicmix, wgdiscipline, journalorder).
# Exits non-zero on any finding; suppress with //lint:ignore <analyzer> <reason>.
lint:
	$(GO) run ./cmd/betze-lint ./...

# Self-check gate: the linter's own CFG, dataflow, analyzer-golden,
# suppression and baseline tests, plus a smoke run of the driver's flag
# surface. A broken analyzer must fail the gate itself, not just report
# nothing.
lint-self:
	$(GO) test ./internal/lint/ ./cmd/betze-lint/
	$(GO) run ./cmd/betze-lint -list >/dev/null
	$(GO) run ./cmd/betze-lint -format=json ./... >/dev/null

# The multiuser harness, the jodasim worker pool and the obs registry are the
# concurrency hot spots; run the whole tree under the race detector. The
# shards below partition the package tree so `make -j4 race` runs them in
# parallel; `race` depends on all of them and stays correct sequentially.
race-core:
	$(GO) test -race ./internal/core/... ./internal/query/... ./internal/analyze/... \
		./internal/langs/... ./internal/datasets/... ./internal/lint/...
race-engine:
	$(GO) test -race ./internal/engine/... ./internal/shard/... ./internal/faultsim/... \
		./internal/runlog/... ./internal/fsatomic/...
race-service:
	$(GO) test -race ./internal/harness/... ./internal/jobqueue/... ./internal/obs/... \
		./internal/loadgen/... ./cmd/betze-web/...
race-tools:
	$(GO) test -race . ./cmd/betze ./cmd/betze-bench/... ./cmd/betze-lint/... \
		./examples/... ./internal/bsonlite/... ./internal/jsonblite/... \
		./internal/jsonstats/... ./internal/jsonval/... ./internal/lz/...
race: race-core race-engine race-service race-tools

# Fault-injection suite: every retry/breaker/crash-recovery/cancellation test
# runs with the deterministic injector active, under the race detector.
chaos:
	$(GO) test -race -run 'Fault|Resilien|Recovery|Breaker|Retry|Skip|Cancel|Crash|MultiUser' \
		./internal/faultsim/... ./internal/harness/... ./internal/engine/...

# Durability suite: journal torn-write/bit-flip recovery, atomic publication,
# session-file corruption, and the SIGKILL-and-resume integration test, all
# under the race detector.
crash:
	$(GO) test -race -run 'Runlog|Journal|Resume|Atomic|Torn|Truncat|Corrupt|RoundTrip|Segment|BitFlip|Oversized|KillAndResume|Replay|WorkKey|SessionFile' \
		./internal/runlog/... ./internal/fsatomic/... ./internal/harness/... \
		./internal/core/... ./cmd/betze-bench/...

# Crash-point consistency harness: record the durability stack's op traces
# over the in-memory errfs, simulate power loss at every sync boundary (and
# between them, under torn/keep-all policies), re-run recovery at each point
# and check the four invariants: no acked record lost, no torn artifact
# under a final name, jobqueue replay consistent with the ack history, and
# byte-identical exports from a resumed campaign. Bounded sampling; the
# schedule derives from -errfs-seed (default 1) and is fully reproducible.
crashfuzz:
	$(GO) run ./cmd/betze-bench -crashfuzz

# Exhaustive enumeration of every crash point in every trace, plus more
# campaign resume points. Not part of `make check`; run before touching
# runlog/fsatomic/jobqueue internals.
crashfuzz-deep:
	$(GO) run ./cmd/betze-bench -crashfuzz-deep

# Service-level durability gate: SIGKILL a betze-web subprocess mid-campaign,
# restart it over the same data directory, and require the recovered server
# to publish an artifact byte-identical to an uninterrupted baseline run,
# then drain gracefully on SIGTERM with a sealed journal.
serve-crash:
	$(GO) test -race -run 'TestServeCrashResume' -v ./cmd/betze-web/

# Deterministic loadgen smoke: under -det-timing the open-loop verdict table
# is a pure function of the seed (virtual-time scheduler over work-counter
# service times), so two runs must emit byte-identical tables. The one line
# filtered out is the wall-clock "took" footer.
loadgen-det:
	$(GO) run ./cmd/betze-bench -exp loadgen -det-timing -twitter-docs 2000 \
		| grep -v 'took' > /tmp/betze-loadgen-a.txt
	$(GO) run ./cmd/betze-bench -exp loadgen -det-timing -twitter-docs 2000 \
		| grep -v 'took' > /tmp/betze-loadgen-b.txt
	cmp /tmp/betze-loadgen-a.txt /tmp/betze-loadgen-b.txt

check: vet lint lint-self race chaos crash crashfuzz serve-crash loadgen-det bench-short

# Perf suite: compiled predicates vs. the interface-dispatch path, the shared
# scan kernel, zone-map shard pruning (adaptive: probes deactivate it where
# zones prove nothing), the lock-free metrics hot path vs. a mutex baseline,
# and the open-loop saturation sweep over the engine sims. Refreshes the
# tracked BENCH_10.json (the repo's perf trajectory; see README).
bench:
	$(GO) run ./cmd/betze-bench -perf -perf-out BENCH_10.json

# Short perf pass for `make check`: same suite with fewer repeats, stdout
# only — the tracked artifact is not overwritten.
bench-short:
	$(GO) run ./cmd/betze-bench -perf -perf-repeats 2

# A quick laptop-scale pass over every experiment of the paper.
bench-paper:
	$(GO) run ./cmd/betze-bench -exp all

clean:
	$(GO) clean ./...
