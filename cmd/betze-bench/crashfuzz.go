package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/joda-explore/betze/internal/errfs"
	"github.com/joda-explore/betze/internal/errfs/crashpoint"
	"github.com/joda-explore/betze/internal/harness"
	"github.com/joda-explore/betze/internal/runlog"
)

// crashFuzzLimits bounds the enumeration per workload: the bounded profile
// backs `make crashfuzz` in CI, the deep profile is for manual runs.
type crashFuzzLimits struct {
	perWorkload  int // crash points per package workload (<= 0: exhaustive)
	resumePoints int // harness resume re-runs (each replays a campaign)
}

// runCrashFuzz enumerates simulated power-loss states across the durability
// stack and re-runs each layer's recovery at every one, checking the four
// invariants the stack claims: no acked record lost (runlog), no torn
// artifact under its final name (fsatomic), replay consistent with the ack
// history (jobqueue), and byte-identical exports from a resumed campaign
// (harness). The whole schedule derives from a single seed.
func runCrashFuzz(out io.Writer, seed int64, deep bool) error {
	limits := crashFuzzLimits{perWorkload: 180, resumePoints: 4}
	if deep {
		limits = crashFuzzLimits{perWorkload: 0, resumePoints: 16}
	}

	total := crashpoint.Report{Workload: "total"}
	for _, phase := range []struct {
		name string
		run  func(int64, int) crashpoint.Report
	}{
		{"runlog", crashpoint.FuzzRunlog},
		{"fsatomic", crashpoint.FuzzFsatomic},
		{"jobqueue", crashpoint.FuzzJobqueue},
	} {
		rep := phase.run(seed, limits.perWorkload)
		fmt.Fprintf(out, "crashfuzz %-8s %4d crash points, %d violation(s)\n",
			phase.name, rep.Points, len(rep.Violations))
		total.Merge(rep)
	}

	points, violations, err := crashFuzzHarness(out, seed, limits.resumePoints)
	if err != nil {
		return fmt.Errorf("crashfuzz harness: %w", err)
	}
	fmt.Fprintf(out, "crashfuzz %-8s %4d crash points, %d violation(s)\n",
		"harness", points, len(violations))
	total.Points += points
	for _, v := range violations {
		total.Violations = append(total.Violations, crashpoint.Violation{Invariant: "resume-divergence", Detail: v})
	}

	fmt.Fprintf(out, "crashfuzz total    %4d crash points (seed %d)\n", total.Points, seed)
	if len(total.Violations) > 0 {
		for _, v := range total.Violations {
			fmt.Fprintf(out, "  VIOLATION %s\n", v)
		}
		return fmt.Errorf("%d invariant violation(s) across %d crash points", len(total.Violations), total.Points)
	}
	fmt.Fprintln(out, "all invariants hold")
	return nil
}

// crashFuzzHarness checks invariant 4: a campaign journaled over a
// recording filesystem, crashed at a sync boundary and resumed from the
// surviving journal, exports byte-identical results. Deterministic timing
// makes byte equality the meaningful equality.
func crashFuzzHarness(out io.Writer, seed int64, resumePoints int) (int, []string, error) {
	dataDir, err := os.MkdirTemp("", "betze-crashfuzz-*")
	if err != nil {
		return 0, nil, err
	}
	defer os.RemoveAll(dataDir)
	cfg := harness.Config{
		Dir: dataDir, TwitterDocs: 300, Sessions: 2, Seed: 123, DetTiming: true,
	}
	exp, err := harness.ByID("table1")
	if err != nil {
		return 0, nil, err
	}
	const dir = "journal"
	const fingerprint = `{"crashfuzz":"table1"}`
	ctx := context.Background()

	runCampaign := func(fsys errfs.FS, replay *harness.Replay, fresh bool) ([]byte, error) {
		var w *runlog.Writer
		var err error
		if fresh {
			w, err = runlog.Create(dir, runlog.Options{FS: fsys})
		} else {
			w, err = runlog.Open(dir, runlog.Options{FS: fsys})
		}
		if err != nil {
			return nil, err
		}
		journal := harness.NewRunJournal(w, cfg.Obs)
		journal.RunStart(fingerprint)
		env, err := harness.NewEnv(cfg)
		if err != nil {
			journal.Close()
			return nil, err
		}
		defer env.Close()
		env.SetJournal(journal, replay)
		res, _, err := env.RunExperiment(ctx, exp)
		if err != nil {
			journal.Close()
			return nil, err
		}
		if err := journal.Close(); err != nil {
			return nil, err
		}
		return res.JSON()
	}

	// Baseline: the uninterrupted campaign, journaled over a recording FS.
	mem := errfs.NewMem()
	baseline, err := runCampaign(mem, nil, true)
	if err != nil {
		return 0, nil, fmt.Errorf("baseline campaign: %w", err)
	}
	trace := mem.Trace()

	// Crash at fsync boundaries (the stack's durability points) under the
	// pessimistic policy, resume from what survived, compare exports.
	var boundaries []int
	for i, op := range trace {
		if op.Kind == errfs.OpFsync {
			boundaries = append(boundaries, i+1)
		}
	}
	if len(boundaries) == 0 {
		return 0, nil, errors.New("campaign journal recorded no fsync boundaries")
	}
	picked := boundaries
	if resumePoints > 0 && len(picked) > resumePoints {
		sampled := make([]int, 0, resumePoints)
		for i := 0; i < resumePoints; i++ {
			sampled = append(sampled, boundaries[i*(len(boundaries)-1)/(resumePoints-1)])
		}
		picked = sampled
	}

	var violations []string
	for _, idx := range picked {
		pt := crashpoint.Point{Index: idx, Policy: crashpoint.DropUnsynced, Seed: seed}
		crashed, err := crashpoint.Materialize(trace, pt)
		if err != nil {
			return len(picked), violations, err
		}
		var replay *harness.Replay
		fresh := false
		recovery, err := runlog.RecoverFS(crashed, dir)
		switch {
		case errors.Is(err, runlog.ErrNoJournal):
			fresh = true
		case err != nil:
			violations = append(violations, fmt.Sprintf("%s: recover: %v", pt, err))
			continue
		default:
			replay, err = harness.NewReplay(recovery)
			if err != nil {
				violations = append(violations, fmt.Sprintf("%s: replay parse: %v", pt, err))
				continue
			}
			if fp := replay.Fingerprint(); fp != "" && fp != fingerprint {
				violations = append(violations, fmt.Sprintf("%s: fingerprint diverged: %s", pt, fp))
				continue
			}
		}
		resumed, err := runCampaign(crashed, replay, fresh)
		if err != nil {
			violations = append(violations, fmt.Sprintf("%s: resumed campaign: %v", pt, err))
			continue
		}
		if !bytes.Equal(resumed, baseline) {
			violations = append(violations,
				fmt.Sprintf("%s: resumed export diverges from baseline (%d vs %d bytes)", pt, len(resumed), len(baseline)))
		}
	}
	return len(picked), violations, nil
}
