package main

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/obs"
)

// The obs metrics-path benchmarks: the lock-free sharded cells against a
// faithful reconstruction of the previous mutex-guarded implementation, both
// driven through testing.Benchmark with RunParallel at GOMAXPROCS. On a
// single-core box the two paths are closer than they are under real
// cross-core contention — which is exactly why the report records GOMAXPROCS
// and NumCPU next to the numbers.

// obsBenchResult is one measured metrics-path operation.
type obsBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// mutexCounter is the pre-rework counter: one mutex-guarded word.
type mutexCounter struct {
	mu sync.Mutex
	v  int64
}

func (c *mutexCounter) Add(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v += n
}

// mutexHistogram is the pre-rework histogram: mutex around lazily grown
// buckets and the min/max/sum/count summary.
type mutexHistogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets []int64
}

func (h *mutexHistogram) Record(d time.Duration) {
	ns := int64(d)
	us := ns / int64(time.Microsecond)
	idx := 0
	for v := us; v > 0; v >>= 1 {
		idx++
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for idx >= len(h.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[idx]++
	if h.count == 0 || ns < h.min {
		h.min = ns
	}
	if h.count == 0 || ns > h.max {
		h.max = ns
	}
	h.count++
	h.sum += ns
}

// mutexRegistry is the pre-rework registry: one mutex around the name maps,
// held for every lookup.
type mutexRegistry struct {
	mu         sync.Mutex
	counters   map[string]*mutexCounter
	histograms map[string]*mutexHistogram
}

func newMutexRegistry() *mutexRegistry {
	return &mutexRegistry{
		counters:   map[string]*mutexCounter{},
		histograms: map[string]*mutexHistogram{},
	}
}

func (r *mutexRegistry) counter(name string) *mutexCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &mutexCounter{}
		r.counters[name] = c
	}
	return c
}

func (r *mutexRegistry) histogram(name string) *mutexHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &mutexHistogram{}
		r.histograms[name] = h
	}
	return h
}

// runObsBench measures the metrics hot path and appends the results (and the
// lockfree-vs-mutex speedups) to the report.
func runObsBench(out io.Writer, report *perfReport) {
	bench := func(name string, fn func(b *testing.B)) float64 {
		r := testing.Benchmark(fn)
		res := obsBenchResult{Name: name, NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp()}
		report.ObsBench = append(report.ObsBench, res)
		fmt.Fprintf(out, "%-32s %12.1f ns/op  %d allocs/op\n", name, res.NsPerOp, res.AllocsPerOp)
		return res.NsPerOp
	}

	counterLF := bench("obs_counter/lockfree", func(b *testing.B) {
		var c obs.Counter
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	counterMu := bench("obs_counter/mutex", func(b *testing.B) {
		var c mutexCounter
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
	})

	histLF := bench("obs_histogram/lockfree", func(b *testing.B) {
		var h obs.Histogram
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			d := 250 * time.Microsecond
			for pb.Next() {
				h.Record(d)
			}
		})
	})
	histMu := bench("obs_histogram/mutex", func(b *testing.B) {
		var h mutexHistogram
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			d := 250 * time.Microsecond
			for pb.Next() {
				h.Record(d)
			}
		})
	})

	// The full instrumentation path: registry lookup by name plus the
	// record, the line every instrumented call site actually executes.
	pathLF := bench("obs_path/lockfree", func(b *testing.B) {
		reg := obs.NewRegistry()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			d := 250 * time.Microsecond
			for pb.Next() {
				reg.Counter(obs.MScanItems).Inc()
				reg.Histogram(obs.MLoadLatency).Record(d)
			}
		})
	})
	pathMu := bench("obs_path/mutex", func(b *testing.B) {
		reg := newMutexRegistry()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			d := 250 * time.Microsecond
			for pb.Next() {
				reg.counter(obs.MScanItems).Add(1)
				reg.histogram(obs.MLoadLatency).Record(d)
			}
		})
	})

	speedup := func(key string, mu, lf float64) {
		if lf <= 0 {
			return
		}
		report.Speedups[key] = round2(mu / lf)
		fmt.Fprintf(out, "speedup %s (mutex/lockfree): %.2fx\n", key, report.Speedups[key])
	}
	speedup("obs_counter", counterMu, counterLF)
	speedup("obs_histogram", histMu, histLF)
	speedup("obs_path", pathMu, pathLF)
}
