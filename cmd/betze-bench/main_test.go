package main

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1000, 10000,100000")
	if err != nil || !reflect.DeepEqual(got, []int{1000, 10000, 100000}) {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if got, err := parseInts(""); err != nil || got != nil {
		t.Errorf("empty spec = %v, %v", got, err)
	}
	if _, err := parseInts("12,abc"); err == nil {
		t.Errorf("malformed spec accepted")
	}
}
