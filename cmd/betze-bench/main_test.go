package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/runlog"
)

// TestMain doubles as the child process of the kill-and-resume integration
// test: when re-executed with BETZE_BENCH_CHILD=1 the test binary behaves
// like the real betze-bench, running the CLI with the args passed through
// BETZE_BENCH_ARGS (unit-separator-delimited) — the process the test
// SIGKILLs mid-experiment.
func TestMain(m *testing.M) {
	if os.Getenv("BETZE_BENCH_CHILD") == "1" {
		args := strings.Split(os.Getenv("BETZE_BENCH_ARGS"), "\x1f")
		if err := run(args, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "betze-bench:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workFlags are the work-shaping flags shared by every run of the
// integration test: the configuration fingerprint covers exactly these, so
// baseline, child and resume must agree on them while artifact directories
// differ per run.
func workFlags() []string {
	return []string{
		"-exp", "table2", "-det-timing",
		"-twitter-docs", "2500", "-nobench-docs", "1500",
		"-timeout", "60s",
	}
}

// journalSessionCount recovers the journal and tallies session records and
// their keys (duplicate keys mean completed work was re-executed).
func journalSessionCount(t *testing.T, dir string) (int, map[string]int) {
	t.Helper()
	rec, err := runlog.Recover(dir)
	if err != nil {
		t.Fatalf("recovering %s: %v", dir, err)
	}
	keys := map[string]int{}
	n := 0
	for _, payload := range rec.Records {
		var jr struct {
			Type string          `json:"type"`
			Key  json.RawMessage `json:"key"`
		}
		if err := json.Unmarshal(payload, &jr); err != nil {
			t.Fatalf("bad journal payload %q: %v", payload, err)
		}
		if jr.Type == "session" {
			n++
			keys[string(jr.Key)]++
		}
	}
	return n, keys
}

// TestKillAndResume is the acceptance test of the durability layer: run
// betze-bench as a subprocess, SIGKILL it mid-experiment once the journal
// holds at least two completed sessions, resume from the journal, and
// byte-compare the final exports against an uninterrupted run.
func TestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs table2 twice and a killed partial run")
	}
	baseExport := t.TempDir()
	baseArgs := append(workFlags(),
		"-journal", filepath.Join(t.TempDir(), "journal"),
		"-export-dir", baseExport, "-dir", t.TempDir())
	if err := run(baseArgs, io.Discard); err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	childJournal := filepath.Join(t.TempDir(), "journal")
	childExport := t.TempDir()
	childArgs := append(workFlags(),
		"-journal", childJournal, "-export-dir", childExport, "-dir", t.TempDir())
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"BETZE_BENCH_CHILD=1",
		"BETZE_BENCH_ARGS="+strings.Join(childArgs, "\x1f"))
	var childOut bytes.Buffer
	cmd.Stdout = &childOut
	cmd.Stderr = &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	// Kill as soon as two sessions are durably journaled. Reading a journal
	// under active writes legitimately sees a torn tail; only completed
	// records count.
	deadline := time.After(2 * time.Minute)
	killed := false
poll:
	for {
		select {
		case err := <-done:
			t.Logf("child finished before the kill (%v); resume still must replay it.\n%s", err, childOut.String())
			break poll
		case <-deadline:
			cmd.Process.Kill()
			<-done
			t.Fatalf("child never journaled two sessions:\n%s", childOut.String())
		case <-time.After(50 * time.Millisecond):
		}
		if rec, err := runlog.Recover(childJournal); err == nil {
			sessions := 0
			for _, payload := range rec.Records {
				if bytes.Contains(payload, []byte(`"type":"session"`)) {
					sessions++
				}
			}
			if sessions >= 2 {
				if err := cmd.Process.Kill(); err != nil {
					t.Fatalf("kill: %v", err)
				}
				<-done
				killed = true
				break poll
			}
		}
	}
	if killed {
		partial, _ := journalSessionCount(t, childJournal)
		if partial >= 10 {
			t.Logf("child completed all %d sessions before dying; kill landed late", partial)
		} else {
			t.Logf("killed child after %d of 10 sessions", partial)
		}
	}

	resumeArgs := append(workFlags(),
		"-resume", childJournal, "-export-dir", childExport, "-dir", t.TempDir())
	var resumeOut bytes.Buffer
	if err := run(resumeArgs, &resumeOut); err != nil {
		t.Fatalf("resume run: %v\n%s", err, resumeOut.String())
	}
	if !strings.Contains(resumeOut.String(), "resuming: journal holds") {
		t.Errorf("resume banner missing:\n%s", resumeOut.String())
	}

	// The resumed exports must be byte-identical to the uninterrupted run.
	for _, name := range []string{"table2.csv", "table2.json"} {
		want, err := os.ReadFile(filepath.Join(baseExport, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(childExport, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs after kill+resume:\n--- baseline\n%s\n--- resumed\n%s", name, want, got)
		}
	}

	// Every session appears exactly once in the merged journal: completed
	// work was skipped, not re-executed.
	total, keys := journalSessionCount(t, childJournal)
	if total != 10 {
		t.Errorf("merged journal has %d session records, want 10", total)
	}
	for key, n := range keys {
		if n > 1 {
			t.Errorf("session %s journaled %d times", key, n)
		}
	}
}

// TestResumeRejectsChangedFlags pins the fingerprint guard: resuming a
// journal under different work-shaping flags must fail loudly instead of
// silently mixing incompatible results.
func TestResumeRejectsChangedFlags(t *testing.T) {
	jdir := filepath.Join(t.TempDir(), "journal")
	args := []string{"-exp", "table1", "-journal", jdir, "-dir", t.TempDir()}
	if err := run(args, io.Discard); err != nil {
		t.Fatalf("journaled run: %v", err)
	}
	err := run([]string{"-exp", "table1", "-seed", "999", "-resume", jdir, "-dir", t.TempDir()}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("changed-flags resume: %v", err)
	}
	// Unchanged flags resume cleanly and replay the completed experiment.
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1", "-resume", jdir, "-dir", t.TempDir()}, &out); err != nil {
		t.Fatalf("same-flags resume: %v", err)
	}
	if !strings.Contains(out.String(), "replayed from journal") {
		t.Errorf("completed experiment not replayed:\n%s", out.String())
	}
}

func TestJournalAndResumeMutuallyExclusive(t *testing.T) {
	err := run([]string{"-journal", "a", "-resume", "b"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("got %v", err)
	}
}

func TestJournalRefusesExistingJournal(t *testing.T) {
	jdir := filepath.Join(t.TempDir(), "journal")
	if err := run([]string{"-exp", "table1", "-journal", jdir, "-dir", t.TempDir()}, io.Discard); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-exp", "table1", "-journal", jdir, "-dir", t.TempDir()}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Errorf("existing journal accepted: %v", err)
	}
}

func TestResumeMissingJournal(t *testing.T) {
	err := run([]string{"-resume", filepath.Join(t.TempDir(), "nope")}, io.Discard)
	if err == nil {
		t.Error("missing journal accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1000, 10000,100000")
	if err != nil || !reflect.DeepEqual(got, []int{1000, 10000, 100000}) {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if got, err := parseInts(""); err != nil || got != nil {
		t.Errorf("empty spec = %v, %v", got, err)
	}
	if _, err := parseInts("12,abc"); err == nil {
		t.Errorf("malformed spec accepted")
	}
}
