package main

import (
	"sort"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/datasets"
	"github.com/joda-explore/betze/internal/query"
	"github.com/joda-explore/betze/internal/shard"
)

// These tests guard the BENCH_6 regression: on the as-generated (unclustered)
// drilldown corpus the zone maps prove almost nothing (skip rate ~4.5%), so
// unconditionally checking every shard's zone made the pruned scan SLOWER
// than the full scan (pruned_vs_full 0.91). The adaptive pruner probes a
// deterministic prefix of shard zones and deactivates when the skip rate is
// under 1/8 — the pruned pass then costs the full pass plus a handful of
// probes.

func perfTestStores(t *testing.T) (unclustered, clustered *shard.Store, cps []query.CompiledPredicate) {
	t.Helper()
	const seed = 123 // the -perf default, so the stores match BENCH_*.json
	docs := datasets.NewTwitter().Generate(800, seed)
	unclustered = shard.Build(docs, perfShardSize)
	clustered = shard.Build(clusterByFollowers(docs), perfShardSize)
	preds := drilldownPredicates(seed+1, 16)
	cps = make([]query.CompiledPredicate, len(preds))
	for i, p := range preds {
		cps[i] = query.Compile(p)
	}
	return unclustered, clustered, cps
}

// TestAdaptivePrunerDeactivatesUnclustered pins the mechanism: on the
// unclustered corpus the probes find (almost) nothing skippable and the
// pruners deactivate, while the clustered corpus keeps them active. This is
// fully deterministic — seeded corpus, seeded predicates, fixed probe prefix.
func TestAdaptivePrunerDeactivatesUnclustered(t *testing.T) {
	unclustered, clustered, cps := perfTestStores(t)
	countActive := func(st *shard.Store) int {
		zone := func(i int) query.Zone { return st.Shard(i).Zone }
		n := 0
		for _, c := range cps {
			if query.NewAdaptivePruner(c, st.NumShards(), zone).Active() {
				n++
			}
		}
		return n
	}
	// A single skippable shard among the probes keeps a pruner active (the
	// zone check is ~two orders cheaper than a block scan, so that is still
	// profitable); what must not happen is the whole predicate set paying
	// zone checks on a corpus where probes found nothing.
	if n := countActive(unclustered); n > len(cps)/2 {
		t.Fatalf("unclustered corpus: %d/%d pruners stayed active, want <= %d — zone checks would burden every shard again",
			n, len(cps), len(cps)/2)
	}
	if n := countActive(clustered); n < 3*len(cps)/4 {
		t.Fatalf("clustered corpus: only %d/%d pruners active, want >= %d — pruning lost its profitable case",
			n, len(cps), 3*len(cps)/4)
	}
}

// TestAdaptivePrunedNotSlowerThanFull is the throughput regression test:
// median-of-9 interleaved passes, adaptive-pruned must stay within 20% of the
// full scan on the corpus where pruning cannot win. (BENCH_6's always-check
// pruning measured ~10% slower systematically; the bound leaves headroom for
// shared-machine noise while still catching that class of regression.)
func TestAdaptivePrunedNotSlowerThanFull(t *testing.T) {
	unclustered, _, cps := perfTestStores(t)
	evs := make([]*query.Evaluator, len(cps))
	for i, c := range cps {
		evs[i] = c.Evaluator()
	}
	keep := make([]bool, perfShardSize)
	zone := func(i int) query.Zone { return unclustered.Shard(i).Zone }
	var sink bool
	full := func() {
		for _, e := range evs {
			for s := 0; s < unclustered.NumShards(); s++ {
				sink = e.EvalBlock(unclustered.Shard(s).Docs, keep) > 0
			}
		}
	}
	pruned := func() {
		for pi, e := range evs {
			pruner := query.NewAdaptivePruner(cps[pi], unclustered.NumShards(), zone)
			for s := 0; s < unclustered.NumShards(); s++ {
				sh := unclustered.Shard(s)
				if pruner.CanSkip(s, sh.Zone) {
					continue
				}
				sink = e.EvalBlock(sh.Docs, keep) > 0
			}
		}
	}
	_ = sink

	const rounds = 9
	fullTimes := make([]time.Duration, 0, rounds)
	prunedTimes := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		fullTimes = append(fullTimes, timeOp(full))
		prunedTimes = append(prunedTimes, timeOp(pruned))
	}
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	mf, mp := median(fullTimes), median(prunedTimes)
	if float64(mp) > 1.2*float64(mf) {
		t.Fatalf("adaptive-pruned scan regressed on unclustered corpus: median %v vs full %v (>1.2x)", mp, mf)
	}
	t.Logf("unclustered medians: full %v, adaptive-pruned %v (%.2fx)", mf, mp, float64(mp)/float64(mf))
}
