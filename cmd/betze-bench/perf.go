package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"time"

	"github.com/joda-explore/betze/internal/datasets"
	"github.com/joda-explore/betze/internal/engine/scan"
	"github.com/joda-explore/betze/internal/fsatomic"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
	"github.com/joda-explore/betze/internal/shard"
)

// The -perf mode: a seeded, reproducible perf suite for the compiled-query
// execution layer, the shared scan kernel and the columnar shard store.
// Unlike the paper experiments (-exp), which measure the modelled engines
// against each other, this suite measures the repository's own hot path
// against its fallback — compiled predicate closures vs. the
// interface-dispatch evaluator, batched EvalBlock vs. per-document calls,
// zone-map pruning vs. full scans — so performance PRs leave a tracked
// trajectory (BENCH_<pr>.json) instead of an assertion in a commit message.

// perfOptions configures one perf-suite run.
type perfOptions struct {
	Docs    int
	Repeats int
	Seed    int64
	Out     string // JSON report destination; empty writes no artifact
}

// perfResult is one measured operation.
type perfResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int64   `json:"ops"`
}

// perfReport is the BENCH_*.json schema: one file per perf PR, so the
// checked-in sequence BENCH_5.json, BENCH_<n>.json, … forms the perf
// trajectory of the repository.
type perfReport struct {
	Bench     int    `json:"bench"`
	Suite     string `json:"suite"`
	GoVersion string `json:"go_version"`
	// CPUs and GoMaxProcs record the actual hardware and scheduler width
	// of the run: contention benchmarks (the obs metrics path) mean
	// nothing without them, and a CI default of one core must be visible
	// in the artifact rather than dressed up.
	CPUs       int          `json:"cpus"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Seed       int64        `json:"seed"`
	Docs       int          `json:"docs"`
	Predicates int          `json:"predicates"`
	ShardSize  int          `json:"shard_size"`
	Repeats    int          `json:"repeats"`
	Results    []perfResult `json:"results"`
	// ObsBench holds the metrics hot-path measurements (lock-free sharded
	// cells vs the mutex baseline), with allocations per op.
	ObsBench []obsBenchResult `json:"obs_bench"`
	// MaxSustainableRate is the per-engine saturation knee found by the
	// open-loop load sweep: the highest session arrival rate (sessions/s)
	// still meeting the sweep SLO.
	MaxSustainableRate map[string]float64 `json:"max_sustainable_rate"`
	// SkipRates records, per drilldown corpus, the fraction of documents
	// whose shard the zone maps proved matchless (0 = nothing pruned,
	// 1 = the whole dataset skipped).
	SkipRates map[string]float64 `json:"skip_rates"`
	Speedups  map[string]float64 `json:"speedups"`
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

// perfShardSize is the shard size of the perf suite's stores: small enough
// that the default 800-document corpus still splits into a dozen shards.
const perfShardSize = 64

// perfPredicates builds the seeded predicate-heavy workload: AND/OR trees
// over real Twitter-dataset paths mixing cheap existence/type checks with
// string and numeric work — the shape the compiler's cost model reorders.
func perfPredicates(seed int64, n int) []query.Predicate {
	r := rand.New(rand.NewSource(seed))
	leaves := []func() query.Predicate{
		func() query.Predicate { return query.Exists{Path: "/retweeted_status"} },
		func() query.Predicate { return query.Exists{Path: "/user/time_zone"} },
		func() query.Predicate { return query.Exists{Path: "/place/country_code"} },
		func() query.Predicate { return query.IsString{Path: "/user/lang"} },
		func() query.Predicate { return query.BoolEq{Path: "/user/verified", Value: true} },
		func() query.Predicate { return query.BoolEq{Path: "/truncated", Value: r.Intn(2) == 0} },
		func() query.Predicate {
			return query.FloatCmp{Path: "/user/followers_count", Op: query.Ge, Value: float64(r.Intn(500000))}
		},
		func() query.Predicate {
			return query.FloatCmp{Path: "/retweet_count", Op: query.Lt, Value: float64(r.Intn(10000))}
		},
		func() query.Predicate { return query.IntEq{Path: "/favorite_count", Value: int64(r.Intn(50000))} },
		func() query.Predicate {
			langs := []string{"en", "de", "ja", "es", "pt"}
			return query.StrEq{Path: "/user/lang", Value: langs[r.Intn(len(langs))]}
		},
		func() query.Predicate {
			prefixes := []string{"soc", "foot", "wa", "to", "gr"}
			return query.HasPrefix{Path: "/user/screen_name", Prefix: prefixes[r.Intn(len(prefixes))]}
		},
		func() query.Predicate { return query.HasPrefix{Path: "/text", Prefix: "RT"} },
		func() query.Predicate { return query.ObjSize{Path: "/user", Op: query.Ge, Value: 20 + r.Intn(10)} },
	}
	var tree func(depth int) query.Predicate
	tree = func(depth int) query.Predicate {
		if depth <= 0 {
			return leaves[r.Intn(len(leaves))]()
		}
		l, rr := tree(depth-1), tree(depth-1)
		if r.Intn(2) == 0 {
			return query.And{Left: l, Right: rr}
		}
		return query.Or{Left: l, Right: rr}
	}
	preds := make([]query.Predicate, n)
	for i := range preds {
		preds[i] = tree(4) // 16 leaves per tree: predicate-heavy
	}
	return preds
}

// drilldownPredicates builds the selective conjunctive workload pruning
// exploits: every tree constrains /user/followers_count to a narrow band
// (uniform over [0, 1e6) in the Twitter generator), the shape of a
// drill-down exploration step. On a corpus clustered by that attribute the
// band misses most shards' zone ranges entirely.
func drilldownPredicates(seed int64, n int) []query.Predicate {
	r := rand.New(rand.NewSource(seed))
	langs := []string{"en", "de", "ja", "es", "pt"}
	preds := make([]query.Predicate, n)
	for i := range preds {
		lo := float64(r.Intn(940000))
		band := query.And{
			Left:  query.FloatCmp{Path: "/user/followers_count", Op: query.Ge, Value: lo},
			Right: query.FloatCmp{Path: "/user/followers_count", Op: query.Lt, Value: lo + float64(10000+r.Intn(50000))},
		}
		switch r.Intn(3) {
		case 0:
			preds[i] = band
		case 1:
			preds[i] = query.And{Left: band, Right: query.BoolEq{Path: "/user/verified", Value: true}}
		default:
			preds[i] = query.And{Left: band, Right: query.StrEq{Path: "/user/lang", Value: langs[r.Intn(len(langs))]}}
		}
	}
	return preds
}

// clusterByFollowers returns the corpus sorted by /user/followers_count —
// the data layout a drill-down session converges onto (stored intermediate
// results of range filters), and the one where zone ranges get narrow.
func clusterByFollowers(docs []jsonval.Value) []jsonval.Value {
	steps := jsonval.Path("/user/followers_count").Segments()
	key := func(d jsonval.Value) float64 {
		v, ok := jsonval.LookupSteps(d, steps)
		if !ok {
			return -1
		}
		n, _ := v.Number()
		return n
	}
	out := append([]jsonval.Value(nil), docs...)
	sort.SliceStable(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}

// perfMeasure runs op repeats times and keeps the fastest pass, the usual
// defence against scheduler noise on a shared machine.
func perfMeasure(repeats int, op func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < repeats; i++ {
		if d := timeOp(op); d < best {
			best = d
		}
	}
	return best
}

// perfMeasureGroup measures several variants of the same work interleaved —
// one pass of each per repeat — so clock-frequency and cache drift over the
// run hits every variant equally instead of biasing whichever ran last.
// Sequential perfMeasure calls on a shared box showed a systematic few-percent
// skew between identical workloads; interleaving removes it.
func perfMeasureGroup(repeats int, ops ...func()) []time.Duration {
	best := make([]time.Duration, len(ops))
	for i := range best {
		best[i] = time.Duration(math.MaxInt64)
	}
	for r := 0; r < repeats; r++ {
		for i, op := range ops {
			if d := timeOp(op); d < best[i] {
				best[i] = d
			}
		}
	}
	return best
}

func timeOp(op func()) time.Duration {
	start := time.Now()
	op()
	return time.Since(start)
}

func nsPerOp(d time.Duration, ops int64) float64 {
	if ops == 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(ops)
}

// runPerf executes the perf suite and optionally publishes the report.
func runPerf(opts perfOptions, out io.Writer) error {
	if opts.Docs <= 0 {
		// Default to a cache-resident corpus: the suite measures the compute
		// cost of the per-document hot path, and with a corpus much larger
		// than the last-level cache both variants converge on the same DRAM
		// streaming cost and the measurement stops discriminating. Larger
		// corpora are a -perf-docs flag away and recorded in the report.
		opts.Docs = 800
	}
	if opts.Repeats <= 0 {
		opts.Repeats = 5
	}
	if opts.Seed == 0 {
		opts.Seed = 123
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const predCount = 16
	docs := datasets.NewTwitter().Generate(opts.Docs, opts.Seed)
	preds := perfPredicates(opts.Seed, predCount)
	compiled := make([]query.CompiledPredicate, len(preds))
	for i, p := range preds {
		compiled[i] = query.Compile(p)
	}
	scanOps := int64(len(preds)) * int64(len(docs))

	report := perfReport{
		Bench:              10,
		Suite:              "open-loop-load+lockfree-metrics",
		GoVersion:          runtime.Version(),
		CPUs:               runtime.NumCPU(),
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		Seed:               opts.Seed,
		Docs:               opts.Docs,
		Predicates:         predCount,
		ShardSize:          perfShardSize,
		Repeats:            opts.Repeats,
		MaxSustainableRate: map[string]float64{},
		SkipRates:          map[string]float64{},
		Speedups:           map[string]float64{},
	}
	add := func(name string, d time.Duration, ops int64) {
		report.Results = append(report.Results, perfResult{Name: name, NsPerOp: nsPerOp(d, ops), Ops: ops})
		fmt.Fprintf(out, "%-32s %12.1f ns/op  (%d ops in %v)\n", name, nsPerOp(d, ops), ops, d.Round(time.Microsecond))
	}

	var sink bool
	interp := perfMeasure(opts.Repeats, func() {
		for _, p := range preds {
			for _, d := range docs {
				sink = p.Eval(d)
			}
		}
	})
	add("predicate_scan/interpreted", interp, scanOps)

	// One Evaluator per predicate, exactly as a scan worker holds it: the
	// pooled CompiledPredicate.Eval entry point is for ad-hoc callers.
	evals := make([]*query.Evaluator, len(compiled))
	for i, c := range compiled {
		evals[i] = c.Evaluator()
	}
	comp := perfMeasure(opts.Repeats, func() {
		for _, e := range evals {
			for i := range docs {
				sink = e.EvalAt(&docs[i])
			}
		}
	})
	add("predicate_scan/compiled", comp, scanOps)
	_ = sink

	const compileRounds = 200
	compileCost := perfMeasure(opts.Repeats, func() {
		for i := 0; i < compileRounds; i++ {
			for _, p := range preds {
				query.Compile(p)
			}
		}
	})
	add("compile", compileCost, int64(compileRounds*len(preds)))

	var kernelErr error
	kernelPar := perfMeasure(opts.Repeats, func() {
		for _, c := range compiled {
			c := c
			if _, err := scan.Filter(ctx, scan.Options{Workers: runtime.NumCPU(), Engine: "perf"}, docs,
				func(_ int, d jsonval.Value) (bool, error) { return c.Eval(d), nil }); err != nil {
				kernelErr = err
			}
		}
	})
	if kernelErr != nil {
		return fmt.Errorf("perf: parallel kernel: %w", kernelErr)
	}
	add("scan_filter/parallel", kernelPar, scanOps)

	kernelSeq := perfMeasure(opts.Repeats, func() {
		for _, c := range compiled {
			c := c
			if _, err := scan.Stream(ctx, scan.Options{Engine: "perf"}, len(docs),
				func(i int) (bool, error) { sink = c.Eval(docs[i]); return true, nil }); err != nil {
				kernelErr = err
			}
		}
	})
	if kernelErr != nil {
		return fmt.Errorf("perf: sequential kernel: %w", kernelErr)
	}
	add("scan_stream/sequential", kernelSeq, scanOps)

	// The columnar shard store: batched EvalBlock over whole shards first
	// (zoneless store — isolates batching from pruning, same predicate set
	// as predicate_scan/compiled), then zone-map pruning with the selective
	// drilldown workload on the as-generated corpus and on a corpus
	// clustered by the drilled attribute.
	addSkip := func(name string, d time.Duration, ops int64, rateKey string) {
		rate := report.SkipRates[rateKey]
		report.Results = append(report.Results, perfResult{Name: name, NsPerOp: nsPerOp(d, ops), Ops: ops})
		fmt.Fprintf(out, "%-32s %12.1f ns/op  skip=%5.1f%%  (%d ops in %v)\n",
			name, nsPerOp(d, ops), rate*100, ops, d.Round(time.Microsecond))
	}
	skipRate := func(st *shard.Store, cps []query.CompiledPredicate) float64 {
		var skipped, total int64
		for _, c := range cps {
			for s := 0; s < st.NumShards(); s++ {
				sh := st.Shard(s)
				total += int64(len(sh.Docs))
				if c.CanSkip(sh.Zone) {
					skipped += int64(len(sh.Docs))
				}
			}
		}
		if total == 0 {
			return 0
		}
		return float64(skipped) / float64(total)
	}
	// The pruned passes go through the adaptive pruner, probe cost included
	// in the timed region: on corpora where zone maps prove nothing (the
	// unclustered drilldown) the pruner deactivates after its probe prefix
	// and the pass degrades to the full scan instead of paying a zone check
	// per shard per predicate.
	shardScan := func(st *shard.Store, cps []query.CompiledPredicate, evs []*query.Evaluator, prune bool) func() {
		keep := make([]bool, perfShardSize)
		zone := func(i int) query.Zone { return st.Shard(i).Zone }
		return func() {
			for pi, e := range evs {
				var pruner *query.AdaptivePruner
				if prune {
					pruner = query.NewAdaptivePruner(cps[pi], st.NumShards(), zone)
				}
				for s := 0; s < st.NumShards(); s++ {
					sh := st.Shard(s)
					if prune && pruner.CanSkip(s, sh.Zone) {
						continue
					}
					sink = e.EvalBlock(sh.Docs, keep) > 0
				}
			}
		}
	}

	blockStore := shard.View(docs, perfShardSize)
	evalblock := perfMeasure(opts.Repeats, shardScan(blockStore, compiled, evals, false))
	add("shard_scan/evalblock", evalblock, scanOps)

	drills := drilldownPredicates(opts.Seed+1, predCount)
	drillCompiled := make([]query.CompiledPredicate, len(drills))
	drillEvals := make([]*query.Evaluator, len(drills))
	for i, p := range drills {
		drillCompiled[i] = query.Compile(p)
		drillEvals[i] = drillCompiled[i].Evaluator()
	}
	zonedStore := shard.Build(docs, perfShardSize)
	clusteredStore := shard.Build(clusterByFollowers(docs), perfShardSize)
	report.SkipRates["drilldown/unclustered"] = skipRate(zonedStore, drillCompiled)
	report.SkipRates["drilldown/clustered"] = skipRate(clusteredStore, drillCompiled)

	// The drilldown passes are the shortest timed ops in the suite (~2ms) and
	// feed ratio speedups, so they get triple repeats on top of interleaving.
	drillTimes := perfMeasureGroup(3*opts.Repeats,
		shardScan(zonedStore, drillCompiled, drillEvals, false),
		shardScan(zonedStore, drillCompiled, drillEvals, true),
		shardScan(clusteredStore, drillCompiled, drillEvals, true),
	)
	drillFull, drillPruned, drillClustered := drillTimes[0], drillTimes[1], drillTimes[2]
	add("drilldown_scan/full", drillFull, scanOps)
	addSkip("drilldown_scan/pruned", drillPruned, scanOps, "drilldown/unclustered")
	addSkip("drilldown_scan/pruned_clustered", drillClustered, scanOps, "drilldown/clustered")

	if comp > 0 {
		report.Speedups["predicate_scan"] = round2(float64(interp) / float64(comp))
	}
	if evalblock > 0 {
		report.Speedups["evalblock_vs_perdoc"] = round2(float64(comp) / float64(evalblock))
	}
	if drillPruned > 0 {
		report.Speedups["pruned_vs_full"] = round2(float64(drillFull) / float64(drillPruned))
	}
	if drillClustered > 0 {
		report.Speedups["pruned_clustered_vs_full"] = round2(float64(drillFull) / float64(drillClustered))
	}
	fmt.Fprintf(out, "speedup predicate_scan (interpreted/compiled): %.2fx\n", report.Speedups["predicate_scan"])
	fmt.Fprintf(out, "speedup evalblock_vs_perdoc (compiled/evalblock): %.2fx\n", report.Speedups["evalblock_vs_perdoc"])
	fmt.Fprintf(out, "speedup pruned_vs_full (unclustered, adaptive): %.2fx\n", report.Speedups["pruned_vs_full"])
	fmt.Fprintf(out, "speedup pruned_clustered_vs_full: %.2fx\n", report.Speedups["pruned_clustered_vs_full"])

	// The new layers: the lock-free metrics hot path against the mutex
	// baseline, then the open-loop saturation sweep over the engine sims.
	runObsBench(out, &report)
	if err := runLoadSweep(ctx, out, opts.Seed, docs, &report); err != nil {
		return err
	}

	if opts.Out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("perf: encoding report: %w", err)
		}
		data = append(data, '\n')
		if err := fsatomic.WriteFile(opts.Out, data, 0o644); err != nil {
			return fmt.Errorf("perf: writing %s: %w", opts.Out, err)
		}
		fmt.Fprintf(out, "wrote %s\n", opts.Out)
	}
	return nil
}
