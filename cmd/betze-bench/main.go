// Command betze-bench regenerates every table and figure of the paper's
// evaluation (§VI) at a configurable scale. Run it without flags for a
// laptop-sized pass over all experiments, or select one with -exp.
//
//	betze-bench -exp fig10 -nobench-sweep 1000,10000,100000,1000000
//	betze-bench -exp all -twitter-docs 50000 -sessions 30
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/joda-explore/betze/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "betze-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var cfg harness.Config
	exp := flag.String("exp", "all", "experiment id (table1, fig5..fig10, table2..table4, gencost, skew) or 'all'")
	flag.StringVar(&cfg.Dir, "dir", "", "working directory for dataset files (default: temp)")
	flag.IntVar(&cfg.TwitterDocs, "twitter-docs", 0, "Twitter-like dataset size (default 8000; paper 29.6M)")
	flag.IntVar(&cfg.NoBenchDocs, "nobench-docs", 0, "NoBench dataset size (default 20000; paper 10M)")
	flag.IntVar(&cfg.RedditDocs, "reddit-docs", 0, "Reddit dataset size (default 20000; paper 53.9M)")
	flag.IntVar(&cfg.Sessions, "sessions", 0, "sessions per configuration (default 10; paper 30)")
	flag.IntVar(&cfg.GridSessions, "grid-sessions", 0, "sessions per alpha/beta cell (default 3; paper 20)")
	flag.DurationVar(&cfg.Timeout, "timeout", 0, "per-session timeout (default 2m; paper 2h/8h)")
	flag.Int64Var(&cfg.Seed, "seed", 0, "base seed (default 123)")
	sweep := flag.String("nobench-sweep", "", "comma-separated document counts for fig10")
	threads := flag.String("threads", "", "comma-separated thread counts for fig9")
	flag.Parse()

	var err error
	if cfg.NoBenchSweep, err = parseInts(*sweep); err != nil {
		return fmt.Errorf("-nobench-sweep: %w", err)
	}
	if cfg.Threads, err = parseInts(*threads); err != nil {
		return fmt.Errorf("-threads: %w", err)
	}

	env, err := harness.NewEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()

	experiments := harness.Experiments()
	if *exp != "all" {
		e, err := harness.ByID(*exp)
		if err != nil {
			return err
		}
		experiments = []harness.Experiment{e}
	}
	for _, e := range experiments {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		out, err := e.Run(env)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Print(out)
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
