// Command betze-bench regenerates every table and figure of the paper's
// evaluation (§VI) at a configurable scale. Run it without flags for a
// laptop-sized pass over all experiments, or select one with -exp.
//
//	betze-bench -exp fig10 -nobench-sweep 1000,10000,100000,1000000
//	betze-bench -exp all -twitter-docs 50000 -sessions 30
//
// Observability: -trace streams per-session/per-query JSON-lines events,
// -metrics-out snapshots engine and harness metrics after the run, -format
// switches stdout between text, CSV and JSON rendering, and -export-dir
// writes every experiment's result as <id>.csv and <id>.json.
//
//	betze-bench -exp table2 -trace trace.jsonl -metrics-out metrics.json
//	betze-bench -exp fig10 -format csv -export-dir results/
//
// Robustness: -faults injects deterministic transient errors, latency
// spikes and engine crashes at the given rate (seeded by -fault-seed), and
// -retries enables the resilient executor — retry with backoff, circuit
// breaking and crash recovery.
//
//	betze-bench -exp resilience -faults 0.3 -fault-seed 7 -retries 3
//
// Durability: -journal writes a crash-safe run journal (a write-ahead log
// checkpointing every completed session and experiment), and -resume
// replays such a journal after a crash or kill, skipping completed work and
// re-executing only the tail. With -det-timing, measured durations are
// replaced by deterministic functions of each operation's work counters, so
// an interrupted-and-resumed run exports byte-identical results.
//
//	betze-bench -exp all -journal run.journal -export-dir results/
//	betze-bench -exp all -resume run.journal -export-dir results/
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/fsatomic"
	"github.com/joda-explore/betze/internal/harness"
	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/runlog"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "betze-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("betze-bench", flag.ContinueOnError)
	var cfg harness.Config
	exp := fs.String("exp", "all", "experiment id (table1, fig5..fig10, table2..table4, gencost, skew) or 'all'")
	fs.StringVar(&cfg.Dir, "dir", "", "working directory for dataset files (default: temp)")
	fs.IntVar(&cfg.TwitterDocs, "twitter-docs", 0, "Twitter-like dataset size (default 8000; paper 29.6M)")
	fs.IntVar(&cfg.NoBenchDocs, "nobench-docs", 0, "NoBench dataset size (default 20000; paper 10M)")
	fs.IntVar(&cfg.RedditDocs, "reddit-docs", 0, "Reddit dataset size (default 20000; paper 53.9M)")
	fs.IntVar(&cfg.Sessions, "sessions", 0, "sessions per configuration (default 10; paper 30)")
	fs.IntVar(&cfg.GridSessions, "grid-sessions", 0, "sessions per alpha/beta cell (default 3; paper 20)")
	fs.DurationVar(&cfg.Timeout, "timeout", 0, "per-session timeout (default 2m; paper 2h/8h)")
	fs.Int64Var(&cfg.Seed, "seed", 0, "base seed (default 123)")
	sweep := fs.String("nobench-sweep", "", "comma-separated document counts for fig10")
	threads := fs.String("threads", "", "comma-separated thread counts for fig9")
	tracePath := fs.String("trace", "", "write per-query JSON-lines trace events to this file")
	metricsPath := fs.String("metrics-out", "", "write a metrics snapshot (JSON) to this file after the run")
	format := fs.String("format", "text", "stdout rendering: text, csv or json")
	exportDir := fs.String("export-dir", "", "also write each experiment's result as <id>.csv and <id>.json here")
	faults := fs.Float64("faults", 0, "inject faults at this rate in [0,1] (transient errors, latency spikes, crashes)")
	faultSeed := fs.Int64("fault-seed", 0, "fault-schedule seed (default: the base seed)")
	retries := fs.Int("retries", 0, "retries per failed operation (0 disables the resilient executor's retry loop)")
	journalDir := fs.String("journal", "", "write a crash-safe run journal to this directory (must not already hold one)")
	resumeDir := fs.String("resume", "", "resume from the run journal in this directory, skipping completed work")
	fs.BoolVar(&cfg.DetTiming, "det-timing", false, "replace measured durations with deterministic work-counter timings")
	perf := fs.Bool("perf", false, "run the perf suite (compiled predicates + scan kernel) instead of the paper experiments")
	perfOut := fs.String("perf-out", "", "write the perf report (BENCH_*.json format) atomically to this file")
	perfDocs := fs.Int("perf-docs", 0, "perf suite document count (default 800)")
	perfRepeats := fs.Int("perf-repeats", 0, "perf suite passes per measurement, fastest wins (default 5)")
	crashfuzz := fs.Bool("crashfuzz", false, "run the bounded crash-point consistency harness over the durability stack and exit")
	crashfuzzDeep := fs.Bool("crashfuzz-deep", false, "exhaustive crash-point enumeration (slow); implies -crashfuzz")
	errfsSeed := fs.Int64("errfs-seed", 1, "seed for the storage-fault schedule and torn-crash choices (crashfuzz)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *perf {
		return runPerf(perfOptions{Docs: *perfDocs, Repeats: *perfRepeats, Seed: cfg.Seed, Out: *perfOut}, out)
	}
	if *crashfuzz || *crashfuzzDeep {
		return runCrashFuzz(out, *errfsSeed, *crashfuzzDeep)
	}

	var err error
	if cfg.NoBenchSweep, err = parseInts(*sweep); err != nil {
		return fmt.Errorf("-nobench-sweep: %w", err)
	}
	if cfg.Threads, err = parseInts(*threads); err != nil {
		return fmt.Errorf("-threads: %w", err)
	}
	if cfg.Faults, cfg.Retry, err = resilienceConfig(*faults, *faultSeed, cfg.Seed, *retries); err != nil {
		return err
	}
	switch *format {
	case "text", "csv", "json":
	default:
		return fmt.Errorf("-format: unknown format %q (have text, csv, json)", *format)
	}
	if *journalDir != "" && *resumeDir != "" {
		return fmt.Errorf("-journal and -resume are mutually exclusive (resume appends to the existing journal)")
	}

	var rec *obs.Recorder
	if *tracePath != "" {
		// The trace is an append stream whose partial content is the point
		// of a crash investigation, so it is not published atomically.
		//lint:ignore atomicwrite trace is an append stream, partial content is wanted after a crash
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer f.Close()
		rec = obs.NewRecorder(f)
		cfg.Obs.Trace = rec
	}
	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
		cfg.Obs.Metrics = reg
	}
	if *exportDir != "" {
		if err := os.MkdirAll(*exportDir, 0o755); err != nil {
			return fmt.Errorf("-export-dir: %w", err)
		}
	}

	fingerprint, err := configFingerprint(*exp, cfg)
	if err != nil {
		return err
	}
	var journal *harness.RunJournal
	var replay *harness.Replay
	switch {
	case *journalDir != "":
		w, err := runlog.Create(*journalDir, runlog.Options{})
		if err != nil {
			return fmt.Errorf("-journal: %w", err)
		}
		journal = harness.NewRunJournal(w, cfg.Obs)
	case *resumeDir != "":
		recovery, err := runlog.Recover(*resumeDir)
		if err != nil {
			return fmt.Errorf("-resume: %w", err)
		}
		reportRecovery(cfg.Obs, recovery)
		replay, err = harness.NewReplay(recovery)
		if err != nil {
			return fmt.Errorf("-resume: %w", err)
		}
		if fp := replay.Fingerprint(); fp != "" && fp != fingerprint {
			return fmt.Errorf("-resume: %w (journal: %s, flags: %s)", harness.ErrJournalMismatch, fp, fingerprint)
		}
		w, err := runlog.Open(*resumeDir, runlog.Options{})
		if err != nil {
			return fmt.Errorf("-resume: %w", err)
		}
		journal = harness.NewRunJournal(w, cfg.Obs)
		fmt.Fprintf(out, "resuming: journal holds %d records, %d completed sessions\n",
			replay.Records(), replay.Sessions())
	}
	if journal != nil {
		defer journal.Close()
		journal.RunStart(fingerprint)
	}

	env, err := harness.NewEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()
	env.SetJournal(journal, replay)

	// The experiment layer is fully context-plumbed (see the ctxplumb
	// invariant in DESIGN.md): one interrupt-aware root context cancels
	// every in-flight session, import and query cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	experiments := harness.Experiments()
	if *exp != "all" {
		e, err := harness.ByID(*exp)
		if err != nil {
			return err
		}
		experiments = []harness.Experiment{e}
	}
	for _, e := range experiments {
		fmt.Fprintf(out, "=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		res, resumed, err := env.RunExperiment(ctx, e)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch *format {
		case "csv":
			fmt.Fprint(out, res.CSV())
		case "json":
			data, err := res.JSON()
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			out.Write(data)
		default:
			fmt.Fprint(out, res.Text())
		}
		if *exportDir != "" {
			if err := exportResult(*exportDir, e.ID, res); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		if resumed {
			fmt.Fprintf(out, "(%s replayed from journal)\n\n", e.ID)
		} else {
			fmt.Fprintf(out, "(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if journal != nil {
		journal.RunEnd()
		if err := journal.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			return err
		}
	}
	if reg != nil {
		f, err := fsatomic.Create(*metricsPath)
		if err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		if err := f.Commit(); err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
	}
	return nil
}

// configFingerprint canonically encodes the work-shaping configuration: the
// fields that determine which work units a run enumerates and what they
// compute. Artifact destinations (-dir, -trace, -export-dir, …) are
// deliberately excluded — a resume may write its outputs elsewhere.
func configFingerprint(exp string, cfg harness.Config) (string, error) {
	fp := struct {
		Exp       string              `json:"exp"`
		Twitter   int                 `json:"twitter"`
		NoBench   int                 `json:"nobench"`
		Sweep     []int               `json:"sweep,omitempty"`
		Reddit    int                 `json:"reddit"`
		Sessions  int                 `json:"sessions"`
		Grid      int                 `json:"grid"`
		Threads   []int               `json:"threads,omitempty"`
		Timeout   time.Duration       `json:"timeout"`
		Seed      int64               `json:"seed"`
		Faults    faultsim.Options    `json:"faults"`
		Retry     harness.RetryPolicy `json:"retry"`
		DetTiming bool                `json:"det_timing"`
	}{
		Exp: exp, Twitter: cfg.TwitterDocs, NoBench: cfg.NoBenchDocs,
		Sweep: cfg.NoBenchSweep, Reddit: cfg.RedditDocs, Sessions: cfg.Sessions,
		Grid: cfg.GridSessions, Threads: cfg.Threads, Timeout: cfg.Timeout,
		Seed: cfg.Seed, Faults: cfg.Faults, Retry: cfg.Retry, DetTiming: cfg.DetTiming,
	}
	data, err := json.Marshal(fp)
	if err != nil {
		return "", fmt.Errorf("fingerprint: %w", err)
	}
	return string(data), nil
}

// reportRecovery surfaces the journal replay through the obs scope.
func reportRecovery(scope obs.Scope, rec *runlog.Recovery) {
	e := obs.Event{Type: obs.EvJournalRecover, Records: int64(len(rec.Records))}
	if rec.Truncated {
		e.Err = rec.Reason.Error()
		scope.Counter(obs.MRunlogTruncations).Inc()
	}
	scope.Record(e)
	scope.Counter(obs.MRunlogRecovered).Add(int64(len(rec.Records)))
}

// resilienceConfig maps the -faults/-fault-seed/-retries flags onto the
// harness options. The fault seed defaults to the base seed (123 when that
// is unset too), so plain -faults runs are already reproducible.
func resilienceConfig(rate float64, faultSeed, baseSeed int64, retries int) (faultsim.Options, harness.RetryPolicy, error) {
	if rate < 0 || rate > 1 {
		return faultsim.Options{}, harness.RetryPolicy{}, fmt.Errorf("-faults: rate %v outside [0,1]", rate)
	}
	if retries < 0 {
		return faultsim.Options{}, harness.RetryPolicy{}, fmt.Errorf("-retries: negative count %d", retries)
	}
	if faultSeed == 0 {
		faultSeed = baseSeed
	}
	if faultSeed == 0 {
		faultSeed = 123
	}
	faults := faultsim.Uniform(rate, faultSeed)
	var pol harness.RetryPolicy
	if retries > 0 {
		pol = harness.DefaultRetryPolicy()
		pol.MaxAttempts = retries + 1
		pol.Seed = faultSeed
	}
	return faults, pol, nil
}

// exportResult writes one experiment's machine-readable forms atomically:
// a crash mid-run never leaves a torn or half-written export behind.
func exportResult(dir, id string, res *harness.Result) error {
	if err := fsatomic.WriteFile(filepath.Join(dir, id+".csv"), []byte(res.CSV()), 0o644); err != nil {
		return err
	}
	data, err := res.JSON()
	if err != nil {
		return err
	}
	return fsatomic.WriteFile(filepath.Join(dir, id+".json"), data, 0o644)
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
