// Command betze-bench regenerates every table and figure of the paper's
// evaluation (§VI) at a configurable scale. Run it without flags for a
// laptop-sized pass over all experiments, or select one with -exp.
//
//	betze-bench -exp fig10 -nobench-sweep 1000,10000,100000,1000000
//	betze-bench -exp all -twitter-docs 50000 -sessions 30
//
// Observability: -trace streams per-session/per-query JSON-lines events,
// -metrics-out snapshots engine and harness metrics after the run, -format
// switches stdout between text, CSV and JSON rendering, and -export-dir
// writes every experiment's result as <id>.csv and <id>.json.
//
//	betze-bench -exp table2 -trace trace.jsonl -metrics-out metrics.json
//	betze-bench -exp fig10 -format csv -export-dir results/
//
// Robustness: -faults injects deterministic transient errors, latency
// spikes and engine crashes at the given rate (seeded by -fault-seed), and
// -retries enables the resilient executor — retry with backoff, circuit
// breaking and crash recovery.
//
//	betze-bench -exp resilience -faults 0.3 -fault-seed 7 -retries 3
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/harness"
	"github.com/joda-explore/betze/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "betze-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var cfg harness.Config
	exp := flag.String("exp", "all", "experiment id (table1, fig5..fig10, table2..table4, gencost, skew) or 'all'")
	flag.StringVar(&cfg.Dir, "dir", "", "working directory for dataset files (default: temp)")
	flag.IntVar(&cfg.TwitterDocs, "twitter-docs", 0, "Twitter-like dataset size (default 8000; paper 29.6M)")
	flag.IntVar(&cfg.NoBenchDocs, "nobench-docs", 0, "NoBench dataset size (default 20000; paper 10M)")
	flag.IntVar(&cfg.RedditDocs, "reddit-docs", 0, "Reddit dataset size (default 20000; paper 53.9M)")
	flag.IntVar(&cfg.Sessions, "sessions", 0, "sessions per configuration (default 10; paper 30)")
	flag.IntVar(&cfg.GridSessions, "grid-sessions", 0, "sessions per alpha/beta cell (default 3; paper 20)")
	flag.DurationVar(&cfg.Timeout, "timeout", 0, "per-session timeout (default 2m; paper 2h/8h)")
	flag.Int64Var(&cfg.Seed, "seed", 0, "base seed (default 123)")
	sweep := flag.String("nobench-sweep", "", "comma-separated document counts for fig10")
	threads := flag.String("threads", "", "comma-separated thread counts for fig9")
	tracePath := flag.String("trace", "", "write per-query JSON-lines trace events to this file")
	metricsPath := flag.String("metrics-out", "", "write a metrics snapshot (JSON) to this file after the run")
	format := flag.String("format", "text", "stdout rendering: text, csv or json")
	exportDir := flag.String("export-dir", "", "also write each experiment's result as <id>.csv and <id>.json here")
	faults := flag.Float64("faults", 0, "inject faults at this rate in [0,1] (transient errors, latency spikes, crashes)")
	faultSeed := flag.Int64("fault-seed", 0, "fault-schedule seed (default: the base seed)")
	retries := flag.Int("retries", 0, "retries per failed operation (0 disables the resilient executor's retry loop)")
	flag.Parse()

	var err error
	if cfg.NoBenchSweep, err = parseInts(*sweep); err != nil {
		return fmt.Errorf("-nobench-sweep: %w", err)
	}
	if cfg.Threads, err = parseInts(*threads); err != nil {
		return fmt.Errorf("-threads: %w", err)
	}
	if cfg.Faults, cfg.Retry, err = resilienceConfig(*faults, *faultSeed, cfg.Seed, *retries); err != nil {
		return err
	}
	switch *format {
	case "text", "csv", "json":
	default:
		return fmt.Errorf("-format: unknown format %q (have text, csv, json)", *format)
	}

	var rec *obs.Recorder
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer f.Close()
		rec = obs.NewRecorder(f)
		cfg.Obs.Trace = rec
	}
	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
		cfg.Obs.Metrics = reg
	}
	if *exportDir != "" {
		if err := os.MkdirAll(*exportDir, 0o755); err != nil {
			return fmt.Errorf("-export-dir: %w", err)
		}
	}

	env, err := harness.NewEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()

	// The experiment layer is fully context-plumbed (see the ctxplumb
	// invariant in DESIGN.md): one interrupt-aware root context cancels
	// every in-flight session, import and query cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	experiments := harness.Experiments()
	if *exp != "all" {
		e, err := harness.ByID(*exp)
		if err != nil {
			return err
		}
		experiments = []harness.Experiment{e}
	}
	for _, e := range experiments {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		res, err := e.Run(ctx, env)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch *format {
		case "csv":
			fmt.Print(res.CSV())
		case "json":
			data, err := res.JSON()
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			os.Stdout.Write(data)
		default:
			fmt.Print(res.Text())
		}
		if *exportDir != "" {
			if err := exportResult(*exportDir, e.ID, res); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			return err
		}
	}
	if reg != nil {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("-metrics-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
	}
	return nil
}

// resilienceConfig maps the -faults/-fault-seed/-retries flags onto the
// harness options. The fault seed defaults to the base seed (123 when that
// is unset too), so plain -faults runs are already reproducible.
func resilienceConfig(rate float64, faultSeed, baseSeed int64, retries int) (faultsim.Options, harness.RetryPolicy, error) {
	if rate < 0 || rate > 1 {
		return faultsim.Options{}, harness.RetryPolicy{}, fmt.Errorf("-faults: rate %v outside [0,1]", rate)
	}
	if retries < 0 {
		return faultsim.Options{}, harness.RetryPolicy{}, fmt.Errorf("-retries: negative count %d", retries)
	}
	if faultSeed == 0 {
		faultSeed = baseSeed
	}
	if faultSeed == 0 {
		faultSeed = 123
	}
	faults := faultsim.Uniform(rate, faultSeed)
	var pol harness.RetryPolicy
	if retries > 0 {
		pol = harness.DefaultRetryPolicy()
		pol.MaxAttempts = retries + 1
		pol.Seed = faultSeed
	}
	return faults, pol, nil
}

// exportResult writes one experiment's machine-readable forms.
func exportResult(dir, id string, res *harness.Result) error {
	if err := os.WriteFile(filepath.Join(dir, id+".csv"), []byte(res.CSV()), 0o644); err != nil {
		return err
	}
	data, err := res.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".json"), data, 0o644)
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
