package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/jodasim"
	"github.com/joda-explore/betze/internal/engine/mongosim"
	"github.com/joda-explore/betze/internal/engine/pgsim"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/loadgen"
	"github.com/joda-explore/betze/internal/query"
)

// The saturation sweep: for each engine sim, binary-search the maximum
// open-loop session arrival rate whose virtual-time run still meets the SLO.
// Service times are measured per query up front (one single-threaded pass
// per engine), then the seeded scheduler replays them, so the only
// machine-dependent input is the measured query cost — the sweep itself is
// a deterministic function of it.

// sweepSLO is the saturation contract: a run is sustainable while its tail
// stays bounded and nothing is shed.
func sweepSLO() loadgen.SLO {
	return loadgen.SLO{P99: 100 * time.Millisecond, Late: 250 * time.Millisecond}
}

// sweepThinkScale compresses the explorer think times exactly like the
// harness loadgen experiment (see internal/harness/loadgen.go): queueing
// depends on rate-to-capacity ratios, and compressed sessions reach steady
// state with a small population.
const sweepThinkScale = 0.01

func sweepSessions(rate float64) int {
	n := int(3 * rate * 70 * sweepThinkScale)
	if n < 2000 {
		return 2000
	}
	if n > 100_000 {
		return 100_000
	}
	return n
}

// runLoadSweep appends the per-engine max sustainable arrival rate to the
// report.
func runLoadSweep(ctx context.Context, out io.Writer, seed int64, docs []jsonval.Value, report *perfReport) error {
	preds := drilldownPredicates(seed+2, 8)
	queries := make([]*query.Query, len(preds))
	for i, p := range preds {
		queries[i] = &query.Query{ID: fmt.Sprintf("sweep-%d", i), Base: "sweep", Filter: p}
	}

	engines := []struct {
		name string
		mk   func() (engine.Engine, error)
	}{
		{"joda-sim", func() (engine.Engine, error) {
			eng := jodasim.New(jodasim.Options{})
			eng.ImportValues("sweep", docs)
			return eng, nil
		}},
		{"mongodb-sim", func() (engine.Engine, error) {
			eng := mongosim.New(mongosim.Options{})
			eng.ImportValues("sweep", docs)
			return eng, nil
		}},
		{"postgres-sim", func() (engine.Engine, error) {
			eng := pgsim.New(pgsim.Options{})
			return eng, eng.ImportValues("sweep", docs)
		}},
	}
	for _, ec := range engines {
		eng, err := ec.mk()
		if err != nil {
			return fmt.Errorf("perf: sweep import %s: %w", ec.name, err)
		}
		// One measured duration per query: the engines are deterministic,
		// so the table is the whole service-time story.
		durs := make([]time.Duration, len(queries))
		for i, q := range queries {
			d := perfMeasure(3, func() {
				if _, err2 := eng.Execute(ctx, q, io.Discard); err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return fmt.Errorf("perf: sweep measuring %s: %w", ec.name, err)
			}
			durs[i] = d
		}
		service := func(u loadgen.User) (time.Duration, error) {
			return durs[(int(u.ID)+u.Query)%len(durs)], nil
		}
		run := func(rate float64) (loadgen.Report, error) {
			return loadgen.Simulate(ctx, loadgen.Config{
				Seed:       seed,
				Sessions:   sweepSessions(rate),
				Rate:       rate,
				Workers:    4,
				ThinkScale: sweepThinkScale,
				SLO:        sweepSLO(),
				Service:    service,
			})
		}
		sr, err := loadgen.Sweep(2, 100_000, 12, run)
		if err != nil {
			return fmt.Errorf("perf: sweep %s: %w", ec.name, err)
		}
		report.MaxSustainableRate[ec.name] = round2(sr.MaxRate)
		fmt.Fprintf(out, "%-32s %12.0f sessions/s max sustainable (%d probes)\n",
			"load_sweep/"+ec.name, sr.MaxRate, len(sr.Probes))
		eng.Close()
	}
	return nil
}
