package main

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestCrashFuzzBoundedPasses: the bounded profile behind `make crashfuzz`
// must enumerate at least 100 distinct crash points, hold every invariant,
// and be reproducible from the seed alone.
func TestCrashFuzzBoundedPasses(t *testing.T) {
	var a bytes.Buffer
	if err := runCrashFuzz(&a, 7, false); err != nil {
		t.Fatalf("crashfuzz reported violations:\n%s\nerr: %v", a.String(), err)
	}
	if !strings.Contains(a.String(), "all invariants hold") {
		t.Fatalf("missing verdict line:\n%s", a.String())
	}
	m := regexp.MustCompile(`total\s+(\d+) crash points`).FindStringSubmatch(a.String())
	if m == nil {
		t.Fatalf("no total line:\n%s", a.String())
	}
	if n, _ := strconv.Atoi(m[1]); n < 100 {
		t.Fatalf("only %d crash points enumerated, want >= 100", n)
	}

	var b bytes.Buffer
	if err := runCrashFuzz(&b, 7, false); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed produced different reports:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestCrashFuzzCLIDispatch: the -crashfuzz flag short-circuits the normal
// experiment flow, and -errfs-seed reaches the schedule.
func TestCrashFuzzCLIDispatch(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-crashfuzz", "-errfs-seed", "11"}, &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "(seed 11)") {
		t.Fatalf("seed not threaded into the report:\n%s", out.String())
	}
}
