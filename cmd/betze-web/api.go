package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"github.com/joda-explore/betze/internal/jobqueue"
	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/runlog"
)

// maxBodyBytes bounds every request body the service parses; oversized
// bodies fail with 413 instead of buffering without limit.
const maxBodyBytes = 1 << 20

// fieldError is one validation failure, tagged with the offending field.
type fieldError struct {
	Field   string `json:"field,omitempty"`
	Message string `json:"message"`
}

// apiError is the structured error body every endpoint returns: machine
// readable where http.Error would have been a bare string.
type apiError struct {
	Error string      `json:"error"`
	Field *fieldError `json:"detail,omitempty"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// badRequest rejects a request with a structured 400 (or the given status)
// and counts it.
func (s *server) badRequest(w http.ResponseWriter, status int, ferr *fieldError) {
	s.reg.Counter(obs.MWebBadRequests).Inc()
	msg := ferr.Message
	if ferr.Field != "" {
		msg = ferr.Field + ": " + ferr.Message
	}
	writeJSON(w, status, apiError{Error: msg, Field: ferr})
}

// handleCampaignSubmit is POST /api/campaigns: validate the spec, admit it
// through the queue, answer 202 with the job snapshot — or shed with
// 429/503 plus Retry-After when admission control refuses.
func (s *server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var spec campaignSpec
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		s.badRequest(w, status, &fieldError{Message: "decoding campaign spec: " + err.Error()})
		return
	}
	if ferr := spec.validate(); ferr != nil {
		s.badRequest(w, http.StatusBadRequest, ferr)
		return
	}
	tenant := strings.TrimSpace(r.Header.Get("X-Tenant"))
	if tenant == "" {
		tenant = "default"
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	queue, err := s.campaignQueue()
	if err != nil {
		s.shed(w, err)
		return
	}
	snap, err := queue.Submit(tenant, payload)
	if err != nil {
		s.shed(w, err)
		return
	}
	s.reg.Counter(obs.MWebCampaigns).Inc()
	w.Header().Set("Location", "/api/campaigns/"+snap.ID)
	writeJSON(w, http.StatusAccepted, snap)
}

// shed translates an admission-control rejection into 429 (tenant quota) or
// 503 (queue full, draining) with a Retry-After header.
func (s *server) shed(w http.ResponseWriter, err error) {
	s.reg.Counter(obs.MWebCampaignsShed).Inc()
	status := http.StatusServiceUnavailable
	if errors.Is(err, jobqueue.ErrQuota) {
		status = http.StatusTooManyRequests
	}
	var sh *jobqueue.ShedError
	if errors.As(err, &sh) {
		w.Header().Set("Retry-After", fmt.Sprint(int(math.Ceil(sh.RetryAfter.Seconds()))))
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// handleCampaignList is GET /api/campaigns.
func (s *server) handleCampaignList(w http.ResponseWriter, r *http.Request) {
	queue, err := s.campaignQueue()
	if err != nil {
		s.shed(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queue.List())
}

// handleCampaignGet is GET /api/campaigns/{id}.
func (s *server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	queue, err := s.campaignQueue()
	if err != nil {
		s.shed(w, err)
		return
	}
	snap, err := queue.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleCampaignCancel is DELETE /api/campaigns/{id}: queued campaigns
// cancel immediately, running ones have their executor interrupted.
func (s *server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	queue, err := s.campaignQueue()
	if err != nil {
		s.shed(w, err)
		return
	}
	state, err := queue.Cancel(id)
	switch {
	case errors.Is(err, jobqueue.ErrUnknownJob):
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
	case errors.Is(err, jobqueue.ErrTerminal):
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": state})
	}
}

// handleCampaignArtifact is GET /api/campaigns/{id}/artifact: the published
// result document of a completed campaign.
func (s *server) handleCampaignArtifact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	queue, err := s.campaignQueue()
	if err != nil {
		s.shed(w, err)
		return
	}
	snap, err := queue.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	if snap.State != jobqueue.StateDone {
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("campaign %s is %s; artifact exists once done", id, snap.State)})
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	http.ServeFile(w, r, s.artifactPath(id))
}

// handleCampaignEvents is GET /api/campaigns/{id}/events: a Server-Sent
// Events stream of the campaign's journal records, produced by tailing the
// queue journal with a runlog Follower — replay first (records journaled
// before the client connected), then live, closing after the terminal
// record. Each SSE event is named by the record type and carries the raw
// journal JSON.
func (s *server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	queue, err := s.campaignQueue()
	if err != nil {
		s.shed(w, err)
		return
	}
	if _, err := queue.Get(id); err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	s.reg.Gauge(obs.MWebSSEClients).Add(1)
	defer s.reg.Gauge(obs.MWebSSEClients).Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// The server's WriteTimeout would cut a long stream mid-campaign;
	// instead, push the write deadline forward before every event so only
	// a genuinely stuck client times out.
	rc := http.NewResponseController(w)
	write := func(event string, data []byte) error {
		//lint:ignore determinism SSE write deadline is transport plumbing, never part of benchmark output
		rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}

	follower := runlog.NewFollower(s.queueDir())
	defer follower.Close()
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		recs, err := follower.Poll()
		for _, rec := range recs {
			typ, job, derr := jobqueue.DecodeRecord(rec)
			if derr != nil || job != id {
				continue
			}
			if werr := write(typ, rec); werr != nil {
				return
			}
			switch typ {
			case jobqueue.RecDone, jobqueue.RecFailed, jobqueue.RecCancelled:
				return
			}
		}
		if err != nil {
			// Journal sealed (server shutting down) or unreadable: end
			// the stream; the client reconnects and replays.
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			//lint:ignore determinism SSE keepalive deadline is transport plumbing, never part of benchmark output
			rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if _, werr := fmt.Fprint(w, ": keepalive\n\n"); werr != nil {
				return
			}
			fl.Flush()
		case <-ticker.C:
		}
	}
}
