package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/jobqueue"
)

// smallCampaign is a spec that runs in well under a second.
func smallCampaign() string {
	return `{
		"dataset": {"source": "twitter", "docs": 300, "seed": 1},
		"preset": "expert",
		"seeds": [1],
		"engines": ["joda"]
	}`
}

func postCampaign(t *testing.T, ts *httptest.Server, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/campaigns", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeSnapshot(t *testing.T, resp *http.Response) jobqueue.Snapshot {
	t.Helper()
	defer resp.Body.Close()
	var snap jobqueue.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// waitCampaign polls the status endpoint until the campaign reaches want.
func waitCampaign(t *testing.T, ts *httptest.Server, id string, want jobqueue.State) jobqueue.Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var snap jobqueue.Snapshot
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/api/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		snap = decodeSnapshot(t, resp)
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("campaign %s terminal in %s (%s), want %s", id, snap.State, snap.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s stuck in %s, want %s", id, snap.State, want)
	return snap
}

func TestCampaignLifecycle(t *testing.T) {
	_, ts := startService(t, testConfig(t))
	resp := postCampaign(t, ts, smallCampaign(), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/api/campaigns/") {
		t.Fatalf("Location = %q", loc)
	}
	snap := decodeSnapshot(t, resp)
	if snap.ID == "" || snap.Tenant != "default" {
		t.Fatalf("snapshot = %+v", snap)
	}

	done := waitCampaign(t, ts, snap.ID, jobqueue.StateDone)
	if done.Checkpoints != 1 {
		t.Errorf("checkpoints = %d, want 1 (one seed, one engine)", done.Checkpoints)
	}

	// The published artifact is complete and well-formed.
	aresp, err := http.Get(ts.URL + "/api/campaigns/" + snap.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("artifact status %d", aresp.StatusCode)
	}
	var artifact campaignArtifact
	if err := json.NewDecoder(aresp.Body).Decode(&artifact); err != nil {
		t.Fatal(err)
	}
	if artifact.Campaign != snap.ID || len(artifact.Units) != 1 {
		t.Fatalf("artifact = %s with %d units", artifact.Campaign, len(artifact.Units))
	}
	u := artifact.Units[0]
	if u.Engine != "joda" || u.Import.Docs != 300 || u.Completed == 0 || u.Error != "" {
		t.Fatalf("unit = %+v", u)
	}

	// The campaign appears in the listing.
	lresp, err := http.Get(ts.URL + "/api/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []jobqueue.Snapshot
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != snap.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestCampaignValidation(t *testing.T) {
	_, ts := startService(t, testConfig(t))
	cases := []struct {
		name, body, wantField string
	}{
		{"bad source", `{"dataset":{"source":"oracle","docs":300,"seed":1},"preset":"expert","seeds":[1],"engines":["joda"]}`, "dataset.source"},
		{"docs too small", `{"dataset":{"source":"twitter","docs":5,"seed":1},"preset":"expert","seeds":[1],"engines":["joda"]}`, "dataset.docs"},
		{"bad preset", `{"dataset":{"source":"twitter","docs":300,"seed":1},"preset":"wizard","seeds":[1],"engines":["joda"]}`, "preset"},
		{"no seeds", `{"dataset":{"source":"twitter","docs":300,"seed":1},"preset":"expert","seeds":[],"engines":["joda"]}`, "seeds"},
		{"bad engine", `{"dataset":{"source":"twitter","docs":300,"seed":1},"preset":"expert","seeds":[1],"engines":["oracle"]}`, "engines"},
		{"unknown field", `{"dataset":{"source":"twitter","docs":300,"seed":1},"preset":"expert","seeds":[1],"engines":["joda"],"frobnicate":1}`, ""},
		{"not json", `]]]`, ""},
	}
	for _, tc := range cases {
		resp := postCampaign(t, ts, tc.body, nil)
		var apiErr struct {
			Error  string      `json:"error"`
			Detail *fieldError `json:"detail"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			t.Fatalf("%s: error body not JSON: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if apiErr.Error == "" {
			t.Errorf("%s: empty structured error", tc.name)
		}
		if tc.wantField != "" && (apiErr.Detail == nil || apiErr.Detail.Field != tc.wantField) {
			t.Errorf("%s: detail = %+v, want field %q", tc.name, apiErr.Detail, tc.wantField)
		}
	}

	// Oversized body: 413, not an unbounded buffer.
	big := fmt.Sprintf(`{"dataset":{"source":"twitter","docs":300,"seed":1},"preset":"expert","seeds":[1],"engines":["joda"],"pad":%q}`,
		strings.Repeat("x", maxBodyBytes+1))
	resp := postCampaign(t, ts, big, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestCampaignAdmissionShed: with no workers claiming, the bounded queue
// fills and sheds with 503; a throttled tenant sheds with 429; both carry
// Retry-After. No accepted campaign is lost.
func TestCampaignAdmissionShed(t *testing.T) {
	cfg := testConfig(t)
	cfg.maxQueued = 2
	cfg.quotaRate = 0.001
	cfg.quotaBurst = 2
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.queue.Close() })
	ts := httptest.NewServer(srv) // no start: workers never claim
	t.Cleanup(ts.Close)

	// Tenant "a" has burst 2: one accepted, then the depth bound has room
	// for one more from tenant "b".
	r1 := postCampaign(t, ts, smallCampaign(), map[string]string{"X-Tenant": "a"})
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", r1.StatusCode)
	}
	accepted := decodeSnapshot(t, r1)
	r2 := postCampaign(t, ts, smallCampaign(), map[string]string{"X-Tenant": "b"})
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", r2.StatusCode)
	}

	// Queue now at depth 2 = maxQueued: overload sheds 503 + Retry-After.
	r3 := postCampaign(t, ts, smallCampaign(), map[string]string{"X-Tenant": "c"})
	r3.Body.Close()
	if r3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: %d, want 503", r3.StatusCode)
	}
	if ra := r3.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("503 Retry-After = %q", ra)
	}

	// Accepted campaigns are still there — load shedding lost nothing.
	resp, err := http.Get(ts.URL + "/api/campaigns/" + accepted.ID)
	if err != nil {
		t.Fatal(err)
	}
	snap := decodeSnapshot(t, resp)
	if snap.State != jobqueue.StateQueued {
		t.Fatalf("accepted campaign state = %s", snap.State)
	}
}

// TestCampaignQuota429: a tenant past its token bucket gets 429 with
// Retry-After while other tenants are unaffected.
func TestCampaignQuota429(t *testing.T) {
	cfg := testConfig(t)
	cfg.quotaRate = 0.001
	cfg.quotaBurst = 1
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.queue.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	r1 := postCampaign(t, ts, smallCampaign(), map[string]string{"X-Tenant": "a"})
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first: %d", r1.StatusCode)
	}
	r2 := postCampaign(t, ts, smallCampaign(), map[string]string{"X-Tenant": "a"})
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: %d, want 429", r2.StatusCode)
	}
	if ra := r2.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 Retry-After = %q", ra)
	}
	r3 := postCampaign(t, ts, smallCampaign(), map[string]string{"X-Tenant": "b"})
	r3.Body.Close()
	if r3.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: %d, want 202", r3.StatusCode)
	}
}

func TestCampaignCancel(t *testing.T) {
	cfg := testConfig(t)
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.queue.Close() })
	ts := httptest.NewServer(srv) // no workers: the campaign stays queued
	t.Cleanup(ts.Close)

	snap := decodeSnapshot(t, postCampaign(t, ts, smallCampaign(), nil))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/campaigns/"+snap.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	got, err := http.Get(ts.URL + "/api/campaigns/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if s := decodeSnapshot(t, got); s.State != jobqueue.StateCancelled {
		t.Fatalf("state after cancel = %s", s.State)
	}
	// Cancelling a terminal campaign: 409.
	resp2, err := http.DefaultClient.Do(req.Clone(t.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel status %d, want 409", resp2.StatusCode)
	}
	// Unknown campaign: 404.
	req404, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/campaigns/c999999", nil)
	resp3, err := http.DefaultClient.Do(req404)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cancel status %d, want 404", resp3.StatusCode)
	}
}

// TestCampaignEventsSSE: the events endpoint streams the campaign's journal
// records as SSE — replayed history first, then live transitions, ending
// with the terminal record.
func TestCampaignEventsSSE(t *testing.T) {
	_, ts := startService(t, testConfig(t))
	snap := decodeSnapshot(t, postCampaign(t, ts, smallCampaign(), nil))

	resp, err := http.Get(ts.URL + "/api/campaigns/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
	}
	want := map[string]bool{"submitted": false, "claimed": false, "running": false, "checkpoint": false, "done": false}
	for _, e := range events {
		if _, ok := want[e]; ok {
			want[e] = true
		}
	}
	for e, seen := range want {
		if !seen {
			t.Errorf("SSE stream missing %q event (got %v)", e, events)
		}
	}
	if events[len(events)-1] != "done" {
		t.Errorf("stream did not end on the terminal record: %v", events)
	}

	// Unknown campaign: 404, not an empty stream.
	r404, err := http.Get(ts.URL + "/api/campaigns/c999999/events")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign events status %d", r404.StatusCode)
	}
}

// TestCampaignChaos: campaigns complete under injected engine faults — the
// resilient executor absorbs them — and the artifact still publishes.
func TestCampaignChaos(t *testing.T) {
	_, ts := startService(t, testConfig(t))
	spec := `{
		"dataset": {"source": "nobench", "docs": 400, "seed": 3},
		"preset": "expert",
		"seeds": [1, 2],
		"engines": ["joda", "jq"],
		"fault_rate": 0.2, "fault_seed": 7
	}`
	snap := decodeSnapshot(t, postCampaign(t, ts, spec, nil))
	done := waitCampaign(t, ts, snap.ID, jobqueue.StateDone)
	if done.Checkpoints != 4 {
		t.Errorf("checkpoints = %d, want 4 (2 seeds x 2 engines)", done.Checkpoints)
	}
	aresp, err := http.Get(ts.URL + "/api/campaigns/" + snap.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("artifact status %d", aresp.StatusCode)
	}
	var artifact campaignArtifact
	if err := json.NewDecoder(aresp.Body).Decode(&artifact); err != nil {
		t.Fatal(err)
	}
	if len(artifact.Units) != 4 {
		t.Fatalf("%d units, want 4", len(artifact.Units))
	}
}

// TestSlowlorisTimeout: the production http.Server configuration must cut a
// client that sends its header one byte at a time — the regression guard
// for the server timeouts satellite.
func TestSlowlorisTimeout(t *testing.T) {
	srv, err := newServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.queue.Close() })
	hs := newHTTPServer(srv)
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.WriteTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("production server missing timeouts: %+v", hs)
	}
	hs.ReadHeaderTimeout = 200 * time.Millisecond // accelerate the test
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A slowloris client: start a request, never finish the header.
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\nX-Slow: ")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	start := time.Now()
	n, rerr := conn.Read(buf)
	elapsed := time.Since(start)
	// The server must close the connection (EOF or 408), not hold it open
	// until our read deadline.
	if elapsed >= 4*time.Second {
		t.Fatalf("connection still open after %v: n=%d err=%v", elapsed, n, rerr)
	}
	if n > 0 && !bytes.Contains(buf[:n], []byte("408")) {
		t.Fatalf("unexpected response %q", buf[:n])
	}
}
