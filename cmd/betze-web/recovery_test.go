package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/jobqueue"
)

// TestCampaignEndpointsShedDuringRecovery: while the journal is still being
// replayed the campaign endpoints must answer 503 with a Retry-After header
// and a structured body — not hang, not 404, not a nil-pointer panic — and
// the same endpoints must serve normally once recovery completes.
func TestCampaignEndpointsShedDuringRecovery(t *testing.T) {
	srv := newServerHandler(testConfig(t))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	endpoints := []struct {
		method, path string
	}{
		{http.MethodPost, "/api/campaigns"},
		{http.MethodGet, "/api/campaigns"},
		{http.MethodGet, "/api/campaigns/c000001"},
		{http.MethodDelete, "/api/campaigns/c000001"},
		{http.MethodGet, "/api/campaigns/c000001/events"},
		{http.MethodGet, "/api/campaigns/c000001/artifact"},
	}
	for _, ep := range endpoints {
		var body *strings.Reader
		if ep.method == http.MethodPost {
			body = strings.NewReader(smallCampaign())
		} else {
			body = strings.NewReader("")
		}
		req, err := http.NewRequest(ep.method, ts.URL+ep.path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s during recovery: status %d, want 503", ep.method, ep.path, resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatalf("%s %s during recovery: no Retry-After header", ep.method, ep.path)
		}
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Fatalf("%s %s: Retry-After %q is not a positive integer", ep.method, ep.path, ra)
		}
		var ae apiError
		if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
			t.Fatalf("%s %s: shed body not structured JSON: %v", ep.method, ep.path, err)
		}
		resp.Body.Close()
		if !strings.Contains(ae.Error, "recovery") {
			t.Fatalf("%s %s: shed body %q does not name recovery", ep.method, ep.path, ae.Error)
		}
	}

	// The UI side is independent of the queue and must serve throughout.
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index during recovery: status %d", resp.StatusCode)
	}

	// Recovery completes: submissions are admitted again.
	if err := srv.recoverQueue(); err != nil {
		t.Fatal(err)
	}
	srv.start(t.Context())
	t.Cleanup(srv.drain)
	sub := postCampaign(t, ts, smallCampaign(), nil)
	if sub.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after recovery: status %d, want 202", sub.StatusCode)
	}
	snap := decodeSnapshot(t, sub)
	waitCampaign(t, ts, snap.ID, jobqueue.StateDone)
}
