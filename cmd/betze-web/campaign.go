package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/joda-explore/betze"
	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/jodasim"
	"github.com/joda-explore/betze/internal/engine/jqsim"
	"github.com/joda-explore/betze/internal/engine/mongosim"
	"github.com/joda-explore/betze/internal/engine/pgsim"
	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/fsatomic"
	"github.com/joda-explore/betze/internal/harness"
	"github.com/joda-explore/betze/internal/jobqueue"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/obs"
)

// campaignSpec is the POST /api/campaigns request body: a full benchmark
// campaign — one synthetic dataset, one explorer preset, a set of session
// seeds and a set of engines. Every (seed, engine) pair is one work unit,
// checkpointed independently so a killed server resumes a campaign at unit
// granularity.
type campaignSpec struct {
	Dataset struct {
		// Source is a synthetic dataset: twitter, nobench or reddit.
		Source string `json:"source"`
		// Docs is the dataset size (100..200000 for the service).
		Docs int `json:"docs"`
		// Seed drives dataset generation.
		Seed int64 `json:"seed"`
	} `json:"dataset"`
	// Preset is the explorer configuration: novice, intermediate, expert.
	Preset string `json:"preset"`
	// Queries overrides the preset's query count (0 = preset default).
	Queries int `json:"queries,omitempty"`
	// Seeds are the explorer seeds; one session is generated per seed.
	Seeds []int64 `json:"seeds"`
	// Engines are the systems under test: joda, mongodb, postgres, jq.
	Engines []string `json:"engines"`
	// FaultRate injects deterministic faults at this rate in [0,1); the
	// resilient executor retries around them (chaos testing the service).
	FaultRate float64 `json:"fault_rate,omitempty"`
	// FaultSeed seeds the fault schedule (default: the dataset seed).
	FaultSeed int64 `json:"fault_seed,omitempty"`
}

// campaignEngines maps spec engine names to constructors. jq gets a private
// temp dir under the campaign workdir so store files cannot collide.
var campaignEngines = map[string]func(dir string) (engine.Engine, error){
	"joda":     func(string) (engine.Engine, error) { return jodasim.New(jodasim.Options{}), nil },
	"mongodb":  func(string) (engine.Engine, error) { return mongosim.New(mongosim.Options{}), nil },
	"postgres": func(string) (engine.Engine, error) { return pgsim.New(pgsim.Options{}), nil },
	"jq":       func(dir string) (engine.Engine, error) { return jqsim.NewTempIn(dir) },
}

// validate checks every field and returns a field-tagged error suitable for
// the structured 400 response.
func (c *campaignSpec) validate() *fieldError {
	switch c.Dataset.Source {
	case "twitter", "nobench", "reddit":
	default:
		return &fieldError{"dataset.source", fmt.Sprintf("unknown source %q (twitter, nobench, reddit)", c.Dataset.Source)}
	}
	if c.Dataset.Docs < 100 || c.Dataset.Docs > 200_000 {
		return &fieldError{"dataset.docs", fmt.Sprintf("document count %d outside 100..200000", c.Dataset.Docs)}
	}
	if _, err := betze.PresetByName(c.Preset); err != nil {
		return &fieldError{"preset", err.Error()}
	}
	if c.Queries < 0 || c.Queries > 200 {
		return &fieldError{"queries", fmt.Sprintf("query count %d outside 0..200", c.Queries)}
	}
	if len(c.Seeds) == 0 {
		return &fieldError{"seeds", "at least one session seed required"}
	}
	if len(c.Seeds) > 32 {
		return &fieldError{"seeds", fmt.Sprintf("%d seeds exceed the limit of 32", len(c.Seeds))}
	}
	if len(c.Engines) == 0 {
		return &fieldError{"engines", "at least one engine required (joda, mongodb, postgres, jq)"}
	}
	for _, e := range c.Engines {
		if _, ok := campaignEngines[e]; !ok {
			return &fieldError{"engines", fmt.Sprintf("unknown engine %q (joda, mongodb, postgres, jq)", e)}
		}
	}
	if c.FaultRate < 0 || c.FaultRate >= 1 {
		return &fieldError{"fault_rate", fmt.Sprintf("rate %v outside [0,1)", c.FaultRate)}
	}
	return nil
}

// unitResult is one checkpointed (seed, engine) execution. Every field is a
// deterministic function of the spec — durations are the det-timing
// substitutes, wall-clock never appears — so an interrupted-and-resumed
// campaign publishes a byte-identical artifact.
type unitResult struct {
	Engine string `json:"engine"`
	Seed   int64  `json:"seed"`
	Import struct {
		Docs     int64 `json:"docs"`
		Bytes    int64 `json:"bytes"`
		MicrosUS int64 `json:"duration_us"`
	} `json:"import"`
	Queries []unitQuery `json:"queries"`
	// Completed/Skipped/Retries are the resilient executor's accounting.
	Completed int    `json:"completed"`
	Skipped   int    `json:"skipped"`
	Retries   int    `json:"retries"`
	Error     string `json:"error,omitempty"`
}

type unitQuery struct {
	ID       string `json:"id"`
	Scanned  int64  `json:"scanned"`
	Matched  int64  `json:"matched"`
	Returned int64  `json:"returned"`
	MicrosUS int64  `json:"duration_us"`
	Error    string `json:"error,omitempty"`
	Skipped  bool   `json:"skipped,omitempty"`
}

// campaignArtifact is the final result document published atomically to
// <data>/artifacts/<id>.json when a campaign completes.
type campaignArtifact struct {
	Campaign string       `json:"campaign"`
	Spec     campaignSpec `json:"spec"`
	Units    []unitResult `json:"units"`
}

// runCampaign is the jobqueue executor: it materialises the dataset,
// generates one session per seed, and executes every (seed, engine) unit
// through the resilient executor, checkpointing each completed unit. On
// resume (after a crash, drain or requeue) completed units are loaded from
// their checkpoints and skipped. The final artifact is written atomically;
// a campaign is only Done once the artifact is durable.
func (s *server) runCampaign(ctx context.Context, job jobqueue.Snapshot, cp *jobqueue.Checkpoints) error {
	//lint:ignore determinism latency measurement feeds the ops histogram, not benchmark artifacts
	start := time.Now()
	defer func() { s.reg.Histogram(obs.MWebCampaignRun).Observe(time.Since(start)) }()

	var spec campaignSpec
	if err := json.Unmarshal(job.Payload, &spec); err != nil {
		return fmt.Errorf("decoding campaign spec: %w", err)
	}
	if ferr := spec.validate(); ferr != nil {
		return fmt.Errorf("invalid campaign spec: %s: %s", ferr.Field, ferr.Message)
	}

	workdir := filepath.Join(s.cfg.dataDir, "work", job.ID)
	if err := os.MkdirAll(workdir, 0o755); err != nil {
		return fmt.Errorf("campaign workdir: %w", err)
	}
	dataPath, stats, err := s.materialize(spec, workdir)
	if err != nil {
		return err
	}

	units := make([]unitResult, 0, len(spec.Seeds)*len(spec.Engines))
	for _, seed := range spec.Seeds {
		var session *betze.Session
		for _, engName := range spec.Engines {
			if err := ctx.Err(); err != nil {
				return err // drain or cancel: checkpoints cover completed units
			}
			key := fmt.Sprintf("seed-%d/%s", seed, engName)
			if data, ok := cp.Load(key); ok {
				var u unitResult
				if err := json.Unmarshal(data, &u); err != nil {
					return fmt.Errorf("checkpoint %s: %w", key, err)
				}
				units = append(units, u)
				continue
			}
			if session == nil {
				preset, _ := betze.PresetByName(spec.Preset)
				session, err = betze.Generate(betze.Options{
					Preset: preset, Seed: seed, Queries: spec.Queries,
				}, stats)
				if err != nil {
					return fmt.Errorf("generating session seed %d: %w", seed, err)
				}
			}
			u, err := s.runUnit(ctx, spec, engName, seed, stats.Name, dataPath, session, workdir)
			if err != nil {
				return err
			}
			data, err := json.Marshal(u)
			if err != nil {
				return fmt.Errorf("encoding unit %s: %w", key, err)
			}
			if err := cp.Save(key, data); err != nil {
				return err
			}
			units = append(units, u)
		}
	}

	artifact, err := json.MarshalIndent(campaignArtifact{Campaign: job.ID, Spec: spec, Units: units}, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding artifact: %w", err)
	}
	path := filepath.Join(s.cfg.dataDir, "artifacts", job.ID+".json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artifact dir: %w", err)
	}
	if err := fsatomic.WriteFile(path, append(artifact, '\n'), 0o644); err != nil {
		return fmt.Errorf("publishing artifact: %w", err)
	}
	// The campaign workdir is scratch; the artifact is the durable output.
	os.RemoveAll(workdir)
	return nil
}

// materialize generates the campaign's dataset deterministically from its
// seed, writes it as newline-delimited JSON (atomically, so a crash cannot
// leave a half file a resume would import), and analyzes it. An existing
// file from an interrupted attempt is reused: same source, size and seed
// produce the same bytes.
func (s *server) materialize(spec campaignSpec, workdir string) (string, *betze.Stats, error) {
	var src betze.DatasetSource
	switch spec.Dataset.Source {
	case "nobench":
		src = betze.NoBenchSource()
	case "reddit":
		src = betze.RedditSource(betze.RedditOptions{})
	default:
		src = betze.TwitterSource()
	}
	docs := src.Generate(spec.Dataset.Docs, spec.Dataset.Seed)
	stats := betze.AnalyzeValues(src.Name, docs, betze.AnalyzeOptions{})
	path := filepath.Join(workdir, "dataset.ndjson")
	if _, err := os.Stat(path); err == nil {
		return path, stats, nil
	}
	f, err := fsatomic.Create(path)
	if err != nil {
		return "", nil, fmt.Errorf("campaign dataset: %w", err)
	}
	defer f.Close()
	var buf []byte
	for _, d := range docs {
		buf = jsonval.AppendJSON(buf[:0], d)
		buf = append(buf, '\n')
		if _, err := f.Write(buf); err != nil {
			return "", nil, fmt.Errorf("campaign dataset: %w", err)
		}
	}
	if err := f.Commit(); err != nil {
		return "", nil, fmt.Errorf("campaign dataset: %w", err)
	}
	return path, stats, nil
}

// runUnit executes one session on one fresh engine through the resilient
// executor and converts the outcome into the deterministic unit record.
// Engine-level failures (an import the retry loop gave up on) land in the
// unit's Error field — one broken engine does not fail the campaign.
func (s *server) runUnit(ctx context.Context, spec campaignSpec, engName string, seed int64, dsName, dataPath string, session *betze.Session, workdir string) (unitResult, error) {
	u := unitResult{Engine: engName, Seed: seed}
	eng, err := campaignEngines[engName](workdir)
	if err != nil {
		return u, fmt.Errorf("engine %s: %w", engName, err)
	}
	defer eng.Close()
	var sut engine.Engine = eng
	if spec.FaultRate > 0 {
		fseed := spec.FaultSeed
		if fseed == 0 {
			fseed = spec.Dataset.Seed
		}
		// Mix the unit coordinates into the schedule seed so each unit
		// sees its own (still deterministic) fault pattern.
		sut = faultsim.Wrap(eng, faultsim.Uniform(spec.FaultRate, fseed+seed*31+int64(len(engName))))
	}

	pol := harness.DefaultRetryPolicy()
	pol.Seed = seed
	// Import under the analyzer's dataset name: the generated queries
	// reference it.
	imp, _, err := harness.RunImport(ctx, sut, dsName, dataPath, pol)
	if err != nil {
		if ctx.Err() != nil {
			return u, ctx.Err()
		}
		u.Error = fmt.Sprintf("import: %v", err)
		return u, nil
	}
	u.Import.Docs = imp.Docs
	u.Import.Bytes = imp.Bytes
	u.Import.MicrosUS = harness.DetImportDuration(imp).Microseconds()

	outcomes, rs := harness.RunQueries(ctx, sut, session.Queries, pol, io.Discard, fmt.Sprintf("%s seed %d", engName, seed))
	if ctx.Err() != nil {
		return u, ctx.Err()
	}
	u.Completed, u.Skipped, u.Retries = rs.Completed, rs.Skipped, rs.Retries
	for _, o := range outcomes {
		uq := unitQuery{ID: o.Query.ID, Skipped: o.Skipped}
		if o.Err != nil {
			uq.Error = o.Err.Error()
		} else {
			uq.Scanned = o.Stats.Scanned
			uq.Matched = o.Stats.Matched
			uq.Returned = o.Stats.Returned
			uq.MicrosUS = harness.DetQueryDuration(o.Stats).Microseconds()
		}
		u.Queries = append(u.Queries, uq)
	}
	return u, nil
}
