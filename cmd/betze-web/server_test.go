package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// testConfig returns a small, fsync-free service configuration rooted in a
// per-test temp directory.
func testConfig(t *testing.T) config {
	t.Helper()
	return config{
		dataDir:    t.TempDir(),
		workers:    2,
		maxQueued:  16,
		quotaRate:  1000,
		quotaBurst: 1000,
		noSync:     true,
	}
}

// startService builds a running server (queue recovered, workers started)
// torn down in reverse order: HTTP first, then the graceful drain.
func startService(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.start(t.Context())
	t.Cleanup(srv.drain)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func startTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	_, ts := startService(t, testConfig(t))
	return ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIndexPage(t *testing.T) {
	ts := startTestServer(t)
	code, body := get(t, ts.URL+"/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, frag := range []string{"BETZE", "novice", "intermediate", "expert", "Generate session", "Weighted paths"} {
		if !strings.Contains(body, frag) {
			t.Errorf("index missing %q", frag)
		}
	}
}

// generateSession posts the form and follows the redirect, returning the
// session page URL.
func generateSession(t *testing.T, ts *httptest.Server, form url.Values) string {
	t.Helper()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.PostForm(ts.URL+"/generate", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("generate status %d: %s", resp.StatusCode, body)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, "/session/") {
		t.Fatalf("redirect to %q", loc)
	}
	return ts.URL + loc
}

func TestGenerateAndViewSession(t *testing.T) {
	ts := startTestServer(t)
	sessionURL := generateSession(t, ts, url.Values{
		"source": {"twitter"},
		"docs":   {"800"},
		"preset": {"expert"},
		"seed":   {"123"},
		"verify": {"on"},
	})
	code, body := get(t, sessionURL)
	if code != http.StatusOK {
		t.Fatalf("session status %d", code)
	}
	for _, frag := range []string{"expert", "seed 123", "<svg", "q1", "q5", "queries.joda", "queries.postgres"} {
		if !strings.Contains(body, frag) {
			t.Errorf("session page missing %q", frag)
		}
	}
}

func TestDownloadsAndDOT(t *testing.T) {
	ts := startTestServer(t)
	sessionURL := generateSession(t, ts, url.Values{
		"source": {"nobench"}, "docs": {"600"}, "preset": {"expert"}, "seed": {"7"}, "verify": {"on"},
	})
	id := sessionURL[strings.LastIndex(sessionURL, "/")+1:]
	for lang, frag := range map[string]string{
		"joda":     "LOAD NoBench",
		"mongodb":  "db.NoBench.aggregate",
		"jq":       "jq -c -n",
		"postgres": "FROM NoBench",
	} {
		code, body := get(t, ts.URL+"/download/"+id+"/"+lang)
		if code != http.StatusOK {
			t.Fatalf("%s download status %d", lang, code)
		}
		if !strings.Contains(body, frag) {
			t.Errorf("%s download missing %q:\n%.200s", lang, frag, body)
		}
	}
	code, body := get(t, ts.URL+"/dot/"+id)
	if code != http.StatusOK || !strings.Contains(body, "digraph session") {
		t.Errorf("dot endpoint: %d, %.80s", code, body)
	}
}

func TestGenerateWithTransforms(t *testing.T) {
	ts := startTestServer(t)
	sessionURL := generateSession(t, ts, url.Values{
		"source": {"twitter"}, "docs": {"800"}, "preset": {"expert"}, "seed": {"9"},
		"transforms": {"on"}, "verify": {"on"}, // verify must be ignored with transforms
	})
	code, body := get(t, sessionURL)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "STORE") {
		t.Errorf("transform session not materialised:\n%.300s", body)
	}
}

func TestNotFoundAndErrors(t *testing.T) {
	ts := startTestServer(t)
	if code, _ := get(t, ts.URL+"/session/999"); code != http.StatusNotFound {
		t.Errorf("unknown session status %d", code)
	}
	if code, _ := get(t, ts.URL+"/download/999/joda"); code != http.StatusNotFound {
		t.Errorf("unknown download status %d", code)
	}
	resp, err := http.PostForm(ts.URL+"/generate", url.Values{"file": {"/no/such/file.json"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing dataset file status %d", resp.StatusCode)
	}
}

func TestMetricsAndPprofEndpoints(t *testing.T) {
	ts := startTestServer(t)
	generateSession(t, ts, url.Values{
		"source": {"twitter"}, "docs": {"600"}, "preset": {"expert"}, "seed": {"3"}, "verify": {"on"},
	})
	code, body := get(t, ts.URL+"/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Gauges     map[string]float64        `json:"gauges"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics endpoint not JSON: %v\n%s", err, body)
	}
	if snap.Counters["web.sessions_generated"] != 1 {
		t.Errorf("sessions_generated = %d, want 1", snap.Counters["web.sessions_generated"])
	}
	if snap.Gauges["web.sessions_stored"] != 1 {
		t.Errorf("sessions_stored = %v, want 1", snap.Gauges["web.sessions_stored"])
	}
	if _, ok := snap.Histograms["web.generate"]; !ok {
		t.Errorf("web.generate histogram missing: %v", snap.Histograms)
	}
	if code, body := get(t, ts.URL+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("pprof index: %d, %.80s", code, body)
	}
}

func TestSameSeedSameScripts(t *testing.T) {
	ts := startTestServer(t)
	form := url.Values{"source": {"reddit"}, "docs": {"500"}, "preset": {"expert"}, "seed": {"42"}, "verify": {"on"}}
	u1 := generateSession(t, ts, form)
	u2 := generateSession(t, ts, form)
	id1 := u1[strings.LastIndex(u1, "/")+1:]
	id2 := u2[strings.LastIndex(u2, "/")+1:]
	_, s1 := get(t, ts.URL+"/download/"+id1+"/joda")
	_, s2 := get(t, ts.URL+"/download/"+id2+"/joda")
	if s1 != s2 {
		t.Errorf("same seed produced different scripts")
	}
}
