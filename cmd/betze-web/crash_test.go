package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/jobqueue"
)

// TestMain doubles as the child process of the crash-resume integration
// test: re-executed with BETZE_WEB_CHILD=1 the test binary behaves like the
// real betze-web, serving with the args passed through BETZE_WEB_ARGS
// (unit-separator-delimited) — the process the test SIGKILLs mid-campaign.
func TestMain(m *testing.M) {
	if os.Getenv("BETZE_WEB_CHILD") == "1" {
		args := strings.Split(os.Getenv("BETZE_WEB_ARGS"), "\x1f")
		if err := run(args, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "betze-web:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// childLog collects subprocess output from the exec stderr copier and the
// banner-scanner goroutine; a plain bytes.Buffer would race with the test
// body reading it for failure messages.
type childLog struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *childLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *childLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// webChild is one betze-web subprocess under test.
type webChild struct {
	cmd    *exec.Cmd
	url    string
	out    *childLog
	exited chan struct{} // closed once Wait returns
	err    error         // valid after exited is closed
}

// startChild launches the test binary as a betze-web server on an ephemeral
// port over dataDir and waits for its "listening" banner.
func startChild(t *testing.T, dataDir string) *webChild {
	t.Helper()
	args := []string{"-addr", "127.0.0.1:0", "-data", dataDir, "-workers", "1"}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"BETZE_WEB_CHILD=1",
		"BETZE_WEB_ARGS="+strings.Join(args, "\x1f"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	c := &webChild{cmd: cmd, out: &childLog{}, exited: make(chan struct{})}
	cmd.Stderr = c.out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(c.out, line)
			if i := strings.Index(line, "http://"); i >= 0 {
				fields := strings.Fields(line[i:])
				select {
				case urlc <- fields[0]:
				default:
				}
			}
		}
	}()
	go func() {
		c.err = cmd.Wait()
		close(c.exited)
	}()
	select {
	case c.url = <-urlc:
	case <-c.exited:
		t.Fatalf("child exited before listening: %v\n%s", c.err, c.out)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("child never printed its address:\n%s", c.out)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-c.exited
	})
	return c
}

// crashSpec is the campaign both runs execute: several units so the kill
// lands between checkpoints, deterministic in every field.
const crashSpec = `{
	"dataset": {"source": "twitter", "docs": 2000, "seed": 11},
	"preset": "expert",
	"seeds": [1, 2, 3],
	"engines": ["joda", "jq"]
}`

// submitCrashCampaign posts the spec and returns the campaign ID.
func submitCrashCampaign(t *testing.T, baseURL string) string {
	t.Helper()
	// The server listens before journal recovery finishes and sheds with
	// 503 + Retry-After in the window between; behave like a well-mannered
	// client and retry.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(baseURL+"/api/campaigns", "application/json", strings.NewReader(crashSpec))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable && time.Now().Before(deadline) {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(10 * time.Millisecond)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
		var snap jobqueue.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap.ID
	}
}

// campaignSnapshot fetches the campaign state; ok is false while the server
// is unreachable or restarting.
func campaignSnapshot(baseURL, id string) (jobqueue.Snapshot, bool) {
	resp, err := http.Get(baseURL + "/api/campaigns/" + id)
	if err != nil {
		return jobqueue.Snapshot{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobqueue.Snapshot{}, false
	}
	var snap jobqueue.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return jobqueue.Snapshot{}, false
	}
	return snap, true
}

// waitChildCampaignDone polls until the campaign is done (fatal on failed).
func waitChildCampaignDone(t *testing.T, c *webChild, id string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		snap, ok := campaignSnapshot(c.url, id)
		if ok {
			if snap.State == jobqueue.StateDone {
				return
			}
			if snap.State.Terminal() {
				t.Fatalf("campaign %s: %s (%s)\n%s", id, snap.State, snap.Error, c.out)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s never completed:\n%s", id, c.out)
}

// TestServeCrashResume is the service-level kill-and-resume gate: run a
// campaign to completion on one server (the baseline), run the same
// campaign on a second server SIGKILLed mid-campaign, restart over the same
// data directory, and require the recovered server to finish the campaign
// and publish a byte-identical artifact. Finally, SIGTERM the survivor and
// require a sealed journal (graceful drain).
func TestServeCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one campaign three times across subprocesses")
	}

	// Baseline: uninterrupted campaign.
	baseDir := t.TempDir()
	base := startChild(t, baseDir)
	baseID := submitCrashCampaign(t, base.url)
	waitChildCampaignDone(t, base, baseID)
	baseArtifact, err := os.ReadFile(filepath.Join(baseDir, "artifacts", baseID+".json"))
	if err != nil {
		t.Fatalf("baseline artifact: %v", err)
	}
	base.cmd.Process.Kill()
	<-base.exited

	// Victim: SIGKILL once at least one unit checkpoint is durable.
	crashDir := t.TempDir()
	victim := startChild(t, crashDir)
	id := submitCrashCampaign(t, victim.url)
	if id != baseID {
		t.Fatalf("campaign IDs diverge: %s vs %s", id, baseID)
	}
	deadline := time.Now().Add(2 * time.Minute)
	killedMidway := false
	for time.Now().Before(deadline) {
		snap, ok := campaignSnapshot(victim.url, id)
		if ok && snap.State == jobqueue.StateDone {
			t.Log("campaign finished before the kill; resume still must replay the journal")
			break
		}
		if ok && snap.Checkpoints >= 1 {
			killedMidway = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-victim.exited
	if killedMidway {
		t.Log("SIGKILLed the server mid-campaign")
	}

	// Restart over the same data directory: recovery must requeue the
	// campaign and resume it from its checkpoints without resubmission.
	revived := startChild(t, crashDir)
	waitChildCampaignDone(t, revived, id)
	crashArtifact, err := os.ReadFile(filepath.Join(crashDir, "artifacts", id+".json"))
	if err != nil {
		t.Fatalf("resumed artifact: %v", err)
	}
	if !bytes.Equal(baseArtifact, crashArtifact) {
		t.Errorf("resumed artifact differs from uninterrupted baseline (%d vs %d bytes)",
			len(crashArtifact), len(baseArtifact))
	}

	// Graceful drain: SIGTERM, clean exit, sealed journal (no active
	// segment left behind).
	if err := revived.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-revived.exited:
		if revived.err != nil {
			t.Fatalf("SIGTERM exit: %v\n%s", revived.err, revived.out)
		}
	case <-time.After(time.Minute):
		revived.cmd.Process.Kill()
		t.Fatalf("graceful drain hung:\n%s", revived.out)
	}
	if _, err := os.Stat(filepath.Join(crashDir, "queue", "current.wal")); !os.IsNotExist(err) {
		t.Errorf("journal not sealed after graceful drain: %v", err)
	}
}
