// Command betze-web serves the BETZE web interface (Fig. 4 of the paper):
// a configuration page where a dataset and the generator settings are
// chosen, and a session view that shows the dataset dependency graph, every
// generated query, and downloads of the session in all supported query
// languages.
//
//	betze-web -addr :8080
//	# open http://localhost:8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	flag.Parse()
	srv := newServer()
	fmt.Printf("BETZE web interface listening on http://%s\n", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
	os.Exit(0)
}
