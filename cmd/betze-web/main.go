// Command betze-web serves the BETZE web interface (Fig. 4 of the paper)
// and a durable benchmark-as-a-service API. The interactive side is
// unchanged: a configuration page generates an exploratory session and
// shows its dependency graph, queries and downloads. The service side
// accepts whole benchmark campaigns over REST:
//
//	betze-web -addr :8080 -data ./betze-data -workers 2
//	curl -XPOST localhost:8080/api/campaigns -d '{
//	    "dataset": {"source": "twitter", "docs": 2000, "seed": 1},
//	    "preset": "expert", "seeds": [1, 2], "engines": ["joda", "jq"]}'
//	curl -N localhost:8080/api/campaigns/c000001/events   # SSE progress
//	curl localhost:8080/api/campaigns/c000001/artifact    # final results
//
// Campaigns are journaled through a write-ahead log before they are
// acknowledged: kill the server at any point — SIGKILL included — and the
// next start replays the journal, requeues in-flight campaigns and resumes
// them from their last per-unit checkpoint, publishing byte-identical
// artifacts. Admission control (bounded queue, per-tenant token buckets)
// sheds overload with 429/503 plus Retry-After instead of queueing without
// bound, and SIGTERM drains gracefully: stop claiming, checkpoint and
// release running campaigns, seal the journal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// newHTTPServer wraps the handler in an http.Server with the production
// timeouts: slowloris and stuck-peer protection. Handlers that legitimately
// outlive WriteTimeout (the SSE streams) extend their own deadline per
// write through http.NewResponseController.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "betze-web:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("betze-web", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	var cfg config
	fs.StringVar(&cfg.dataDir, "data", "betze-web-data", "data directory (campaign journal, artifacts, scratch)")
	fs.IntVar(&cfg.workers, "workers", 2, "campaign worker pool size")
	fs.IntVar(&cfg.maxQueued, "max-queued", 64, "campaign queue depth bound (beyond: 503)")
	fs.Float64Var(&cfg.quotaRate, "quota-rate", 4, "per-tenant campaign submissions per second (beyond burst: 429)")
	fs.IntVar(&cfg.quotaBurst, "quota-burst", 8, "per-tenant submission burst capacity")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before open connections are cut")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before replaying the journal: a long recovery must not look
	// like a dead service. Until recoverQueue finishes, the campaign
	// endpoints answer 503 with Retry-After.
	srv := newServerHandler(cfg)
	hs := newHTTPServer(srv)
	// An explicit listener so ":0" resolves to a real port before the
	// "listening" line is printed (the crash-resume integration test parses
	// it to find its child).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	go func() {
		if err := srv.recoverQueue(); err != nil {
			errc <- fmt.Errorf("recovering campaign journal: %w", err)
			return
		}
		srv.start(ctx)
	}()
	fmt.Fprintf(out, "BETZE web service listening on http://%s (data: %s)\n", ln.Addr(), cfg.dataDir)

	select {
	case err := <-errc:
		srv.drain()
		return err
	case <-ctx.Done():
	}
	// Graceful drain: admission control sheds new campaigns, in-flight
	// executors are cancelled and their campaigns released back to the
	// journal with checkpoints, then the journal is sealed.
	log.Println("betze-web: draining")
	srv.drain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
	}
	return nil
}
