package main

import (
	"context"
	"fmt"
	"html/template"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/joda-explore/betze"
	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/jobqueue"
	"github.com/joda-explore/betze/internal/obs"
)

// config tunes the service side of betze-web; see the flags in main.go.
type config struct {
	dataDir    string
	workers    int
	maxQueued  int
	quotaRate  float64
	quotaBurst int
	// noSync skips journal fsync (tests only).
	noSync bool
}

// server is the betze-web HTTP handler: the interactive generator UI (held
// in memory, keyed by an increasing id) plus the durable campaign service
// backed by a journaled job queue.
type server struct {
	mux *http.ServeMux
	reg *obs.Registry
	cfg config

	// queue is nil until recoverQueue finishes replaying the journal; the
	// campaign endpoints shed with 503 + Retry-After in the meantime.
	queueMu    sync.RWMutex
	queue      *jobqueue.Queue
	pool       *jobqueue.Pool
	poolCancel context.CancelFunc

	mu       sync.Mutex
	nextID   int
	sessions map[int]*storedSession
}

// recoveryRetryAfter is the Retry-After hint handed to clients that arrive
// while the journal is still being replayed. Replay is proportional to the
// journal size, so a short constant backoff is the honest answer.
const recoveryRetryAfter = 2 * time.Second

// campaignQueue returns the journaled queue once recovery has finished, or
// a ShedError wrapping ErrRecovering that the shed helper maps to 503 with
// a Retry-After header.
func (s *server) campaignQueue() (*jobqueue.Queue, error) {
	s.queueMu.RLock()
	defer s.queueMu.RUnlock()
	if s.queue == nil {
		return nil, &jobqueue.ShedError{Err: jobqueue.ErrRecovering, RetryAfter: recoveryRetryAfter}
	}
	return s.queue, nil
}

type storedSession struct {
	id      int
	dataset string
	session *betze.Session
	scripts map[string]string // language short name -> script
}

// queueDir is the campaign journal directory; the SSE followers tail it.
func (s *server) queueDir() string { return filepath.Join(s.cfg.dataDir, "queue") }

// artifactPath is where a completed campaign's result document lives.
func (s *server) artifactPath(id string) string {
	return filepath.Join(s.cfg.dataDir, "artifacts", id+".json")
}

// newServer opens (or recovers) the campaign queue under cfg.dataDir and
// builds the handler. Workers do not run until start.
func newServer(cfg config) (*server, error) {
	s := newServerHandler(cfg)
	if err := s.recoverQueue(); err != nil {
		return nil, err
	}
	return s, nil
}

// newServerHandler builds the HTTP handler without opening the campaign
// queue: the server can accept connections immediately and answer the
// campaign endpoints with 503 + Retry-After until recoverQueue completes.
func newServerHandler(cfg config) *server {
	s := &server{
		mux:      http.NewServeMux(),
		reg:      obs.NewRegistry(),
		cfg:      cfg,
		sessions: make(map[int]*storedSession),
		nextID:   1,
	}
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux.HandleFunc("POST /generate", s.handleGenerate)
	s.mux.HandleFunc("GET /session/{id}", s.handleSession)
	s.mux.HandleFunc("GET /download/{id}/{lang}", s.handleDownload)
	s.mux.HandleFunc("GET /dot/{id}", s.handleDOT)
	// The campaign service: durable benchmark-as-a-service.
	s.mux.HandleFunc("POST /api/campaigns", s.handleCampaignSubmit)
	s.mux.HandleFunc("GET /api/campaigns", s.handleCampaignList)
	s.mux.HandleFunc("GET /api/campaigns/{id}", s.handleCampaignGet)
	s.mux.HandleFunc("DELETE /api/campaigns/{id}", s.handleCampaignCancel)
	s.mux.HandleFunc("GET /api/campaigns/{id}/events", s.handleCampaignEvents)
	s.mux.HandleFunc("GET /api/campaigns/{id}/artifact", s.handleCampaignArtifact)
	// Observability: a JSON metrics snapshot plus the standard pprof
	// profiling endpoints (mounted explicitly — the package's init-time
	// DefaultServeMux registration does not reach this private mux).
	s.mux.Handle("GET /debug/metrics", obs.Handler(s.reg))
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// recoverQueue opens the campaign queue, replaying its journal. Until this
// returns, campaignQueue sheds; afterwards the campaign endpoints serve
// normally.
func (s *server) recoverQueue() error {
	q, err := jobqueue.Open(s.queueDir(), jobqueue.Options{
		MaxQueued:   s.cfg.maxQueued,
		TenantRate:  s.cfg.quotaRate,
		TenantBurst: s.cfg.quotaBurst,
		NoSync:      s.cfg.noSync,
		Obs:         obs.Scope{Metrics: s.reg},
	})
	if err != nil {
		return err
	}
	s.queueMu.Lock()
	s.queue = q
	s.queueMu.Unlock()
	return nil
}

// start launches the campaign worker pool under ctx; recovered campaigns
// resume immediately. Must be called after recoverQueue has succeeded.
func (s *server) start(ctx context.Context) {
	poolCtx, cancel := context.WithCancel(ctx)
	s.poolCancel = cancel
	s.pool = jobqueue.NewPool(poolCtx, s.queue, s.cfg.workers, s.runCampaign)
}

// drain performs the graceful-shutdown sequence: shed new submissions,
// interrupt and release in-flight campaigns (checkpoints make the release
// cheap), wait for the workers, seal the journal. Safe to call while the
// queue is still recovering (nothing to drain then).
func (s *server) drain() {
	s.queueMu.RLock()
	q := s.queue
	s.queueMu.RUnlock()
	if q == nil {
		return
	}
	q.Drain()
	if s.poolCancel != nil {
		s.poolCancel()
		s.pool.Wait()
	}
	q.Close()
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

var indexTmpl = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>BETZE</title><style>
body { font-family: sans-serif; max-width: 48rem; margin: 2rem auto; }
fieldset { margin-bottom: 1rem; }
label { display: block; margin: .3rem 0; }
</style></head><body>
<h1>BETZE — Benchmark Generator</h1>
<p>Configure a random-explorer session over a dataset and generate an
exploratory query benchmark for JODA, MongoDB, jq and PostgreSQL.</p>
<form method="post" action="/generate">
<fieldset><legend>Dataset</legend>
<label>Synthetic source:
<select name="source">
  <option value="twitter">Twitter-like stream (heterogeneous, nested)</option>
  <option value="nobench">NoBench (shallow, sparse)</option>
  <option value="reddit">Reddit comments (flat, fixed schema)</option>
</select></label>
<label>Documents: <input name="docs" type="number" value="5000" min="100" max="1000000"></label>
<label>Or newline-delimited JSON file on the server:
<input name="file" type="text" placeholder="/path/to/data.json" size="40"></label>
</fieldset>
<fieldset><legend>Explorer</legend>
<label>Preset:
<select name="preset">
  <option value="novice">novice (&alpha;=0.5 &beta;=0.3 n=20)</option>
  <option value="intermediate" selected>intermediate (&alpha;=0.3 &beta;=0.2 n=10)</option>
  <option value="expert">expert (&alpha;=0.2 &beta;=0.05 n=5)</option>
</select></label>
<label>Seed: <input name="seed" type="number" value="123"></label>
<label>Queries (0 = preset default): <input name="queries" type="number" value="0" min="0" max="200"></label>
</fieldset>
<fieldset><legend>Options</legend>
<label><input type="checkbox" name="aggregate"> Aggregation queries</label>
<label><input type="checkbox" name="groupby"> &hellip; with GROUP BY</label>
<label><input type="checkbox" name="materialize"> Materialise intermediate datasets</label>
<label><input type="checkbox" name="transforms"> Transformation queries (implies materialise)</label>
<label><input type="checkbox" name="weighted"> Weighted paths (prefer attributes near the root)</label>
<label><input type="checkbox" name="verify" checked> Verify selectivities against the data (recommended)</label>
</fieldset>
<button type="submit">Generate session</button>
</form>
</body></html>`))

var sessionTmpl = template.Must(template.New("session").Parse(`<!doctype html>
<html><head><title>BETZE session {{.ID}}</title><style>
body { font-family: sans-serif; max-width: 64rem; margin: 2rem auto; }
pre { background: #f4f4f4; padding: .6rem; overflow-x: auto; }
.step { margin-bottom: .8rem; }
svg { border: 1px solid #ccc; background: #fff; }
.dl a { margin-right: 1rem; }
</style></head><body>
<h1>Session {{.ID}} — {{.Preset}} (seed {{.Seed}})</h1>
<p><a href="/">&larr; new session</a></p>
<h2>Dataset dependency graph</h2>
{{.SVG}}
<p class="dl"><a href="/dot/{{.ID}}">Graphviz DOT</a></p>
<h2>Queries</h2>
{{range .Queries}}<div class="step"><strong>{{.ID}}</strong> ({{.Docs}} docs)<pre>{{.Text}}</pre></div>{{end}}
<h2>Download</h2>
<p class="dl">{{range .Langs}}<a href="/download/{{$.ID}}/{{.}}">queries.{{.}}</a>{{end}}</p>
</body></html>`))

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTmpl.Execute(w, nil); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// generateForm is the validated POST /generate input. Absent fields take
// the form defaults; present-but-invalid fields are rejected with a
// structured 400 naming the field.
type generateForm struct {
	docs    int
	seed    int64
	queries int
	source  string
	file    string
	preset  betze.Preset
}

// parseGenerateForm validates every field of the generation form.
func parseGenerateForm(r *http.Request) (generateForm, *fieldError) {
	f := generateForm{docs: 5000, preset: betze.Intermediate}
	if v := strings.TrimSpace(r.FormValue("docs")); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return f, &fieldError{"docs", fmt.Sprintf("not a number: %q", v)}
		}
		if n < 1 || n > 1_000_000 {
			return f, &fieldError{"docs", fmt.Sprintf("document count %d outside 1..1000000", n)}
		}
		f.docs = n
	}
	if v := strings.TrimSpace(r.FormValue("seed")); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return f, &fieldError{"seed", fmt.Sprintf("not a number: %q", v)}
		}
		f.seed = n
	}
	if v := strings.TrimSpace(r.FormValue("queries")); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return f, &fieldError{"queries", fmt.Sprintf("not a number: %q", v)}
		}
		if n < 0 || n > 200 {
			return f, &fieldError{"queries", fmt.Sprintf("query count %d outside 0..200", n)}
		}
		f.queries = n
	}
	f.source = r.FormValue("source")
	switch f.source {
	case "", "twitter", "nobench", "reddit":
	default:
		return f, &fieldError{"source", fmt.Sprintf("unknown source %q (twitter, nobench, reddit)", f.source)}
	}
	f.file = strings.TrimSpace(r.FormValue("file"))
	if v := r.FormValue("preset"); v != "" {
		p, err := betze.PresetByName(v)
		if err != nil {
			return f, &fieldError{"preset", err.Error()}
		}
		f.preset = p
	}
	return f, nil
}

func (s *server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := r.ParseForm(); err != nil {
		s.badRequest(w, http.StatusBadRequest, &fieldError{Message: "parsing form: " + err.Error()})
		return
	}
	form, ferr := parseGenerateForm(r)
	if ferr != nil {
		s.badRequest(w, http.StatusBadRequest, ferr)
		return
	}
	//lint:ignore determinism latency measurement feeds the ops histogram, not benchmark artifacts
	start := time.Now()
	stored, err := s.generate(r, form)
	s.reg.Histogram(obs.MWebGenerate).Observe(time.Since(start))
	if err != nil {
		s.reg.Counter(obs.MWebGenerateErrors).Inc()
		writeJSON(w, http.StatusBadRequest, apiError{Error: "generation failed: " + err.Error()})
		return
	}
	s.reg.Counter(obs.MWebSessionsGenerated).Inc()
	http.Redirect(w, r, fmt.Sprintf("/session/%d", stored.id), http.StatusSeeOther)
}

// generate builds the dataset, analyzes it, runs the generator and
// translates the session into every language.
func (s *server) generate(r *http.Request, form generateForm) (*storedSession, error) {
	var stats *betze.Stats
	var backendDocs []betze.Value
	datasetName := ""
	if form.file != "" {
		st, err := betze.AnalyzeFile("", form.file, betze.AnalyzeOptions{})
		if err != nil {
			return nil, err
		}
		stats = st
		datasetName = st.Name
	} else {
		var src betze.DatasetSource
		switch form.source {
		case "nobench":
			src = betze.NoBenchSource()
		case "reddit":
			src = betze.RedditSource(betze.RedditOptions{})
		default:
			src = betze.TwitterSource()
		}
		backendDocs = src.Generate(form.docs, form.seed)
		stats = betze.AnalyzeValues(src.Name, backendDocs, betze.AnalyzeOptions{})
		datasetName = src.Name
	}

	opts := betze.Options{
		Preset:        form.preset,
		Seed:          form.seed,
		Queries:       form.queries,
		Aggregate:     r.FormValue("aggregate") != "",
		GroupBy:       r.FormValue("groupby") != "",
		Materialize:   r.FormValue("materialize") != "",
		Transforms:    r.FormValue("transforms") != "",
		WeightedPaths: r.FormValue("weighted") != "",
	}
	if opts.Transforms {
		opts.Materialize = true
		opts.Aggregate = false
	}
	if r.FormValue("verify") != "" && backendDocs != nil && !opts.Transforms {
		backend := betze.NewJODA(betze.JODAOptions{})
		backend.ImportValues(datasetName, backendDocs)
		defer backend.Close()
		opts.Backend = backend
	}
	session, err := betze.Generate(opts, stats)
	if err != nil {
		return nil, err
	}

	scripts := make(map[string]string)
	for _, lang := range betze.Languages() {
		scripts[lang.ShortName()] = betze.Script(lang, session.Queries)
	}
	stored := &storedSession{dataset: datasetName, session: session, scripts: scripts}
	s.mu.Lock()
	stored.id = s.nextID
	s.nextID++
	s.sessions[stored.id] = stored
	s.reg.Gauge(obs.MWebSessionsStored).Set(float64(len(s.sessions)))
	s.mu.Unlock()
	return stored, nil
}

func (s *server) lookup(r *http.Request) (*storedSession, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	stored, ok := s.sessions[id]
	return stored, ok
}

func (s *server) handleSession(w http.ResponseWriter, r *http.Request) {
	stored, ok := s.lookup(r)
	if !ok {
		http.NotFound(w, r)
		return
	}
	type queryView struct {
		ID   string
		Docs int64
		Text string
	}
	var queries []queryView
	for _, n := range stored.session.Nodes {
		if n.Query == nil {
			continue
		}
		queries = append(queries, queryView{ID: n.Query.ID, Docs: n.Count, Text: n.Query.String()})
	}
	var langs []string
	for _, l := range betze.Languages() {
		langs = append(langs, l.ShortName())
	}
	data := struct {
		ID      int
		Preset  string
		Seed    int64
		SVG     template.HTML
		Queries []queryView
		Langs   []string
	}{
		ID:      stored.id,
		Preset:  stored.session.Preset.Name,
		Seed:    stored.session.Seed,
		SVG:     template.HTML(sessionSVG(stored.session)),
		Queries: queries,
		Langs:   langs,
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := sessionTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleDownload(w http.ResponseWriter, r *http.Request) {
	stored, ok := s.lookup(r)
	if !ok {
		http.NotFound(w, r)
		return
	}
	lang := r.PathValue("lang")
	script, ok := stored.scripts[lang]
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=queries.%s", lang))
	fmt.Fprint(w, script)
}

func (s *server) handleDOT(w http.ResponseWriter, r *http.Request) {
	stored, ok := s.lookup(r)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	fmt.Fprint(w, stored.session.DOT())
}

// sessionSVG renders the dependency graph as inline SVG: nodes laid out by
// derivation depth (columns) and creation order (rows), edges coloured like
// Fig. 3 (query brown, backtrack red, jump purple).
func sessionSVG(session *betze.Session) string {
	depth := make([]int, len(session.Nodes))
	maxDepth := 0
	rows := make([]int, len(session.Nodes))
	rowPerDepth := map[int]int{}
	for i, n := range session.Nodes {
		if n.Parent != nil {
			depth[i] = depth[n.Parent.ID] + 1
		}
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
		rows[i] = rowPerDepth[depth[i]]
		rowPerDepth[depth[i]]++
	}
	maxRow := 0
	for _, r := range rowPerDepth {
		if r > maxRow {
			maxRow = r
		}
	}
	const (
		dx, dy   = 150, 70
		ox, oy   = 70, 40
		nodeW    = 120
		nodeH    = 34
		fontSize = 11
	)
	width := ox*2 + dx*maxDepth + nodeW
	height := oy*2 + dy*max(maxRow-1, 0) + nodeH
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, width, height, width, height)
	sb.WriteString(`<defs><marker id="arrow" markerWidth="8" markerHeight="8" refX="7" refY="3" orient="auto"><path d="M0,0 L7,3 L0,6 z"/></marker></defs>`)
	cx := func(i int) int { return ox + depth[i]*dx + nodeW/2 }
	cy := func(i int) int { return oy + rows[i]*dy + nodeH/2 }
	colors := map[core.StepKind]string{
		core.StepExplore: "#8b5a2b",
		core.StepBack:    "#cc2222",
		core.StepJump:    "#8a2be2",
	}
	for _, st := range session.Steps {
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.5" marker-end="url(#arrow)"/>`,
			cx(st.From), cy(st.From), cx(st.To), cy(st.To), colors[st.Kind])
	}
	last := -1
	if len(session.Steps) > 0 {
		last = session.Steps[len(session.Steps)-1].To
	}
	for i, n := range session.Nodes {
		fill := "#add8e6"
		if n.Parent == nil {
			fill = "#ffa94d"
		}
		if i == last {
			fill = "#ff6b6b"
		}
		x, y := cx(i)-nodeW/2, cy(i)-nodeH/2
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" rx="6" fill="%s" stroke="#555"/>`, x, y, nodeW, nodeH, fill)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle" font-size="%d">%s</text>`,
			cx(i), cy(i)-2, fontSize, template.HTMLEscapeString(n.Name))
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle" font-size="%d" fill="#333">%d docs</text>`,
			cx(i), cy(i)+11, fontSize-2, n.Count)
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}
