package main

import (
	"bytes"

	"github.com/joda-explore/betze/internal/core"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd drives the CLI in-process.
func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out)
	return out.String(), err
}

func TestFullCLIFlow(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "tw.json")
	analysis := filepath.Join(dir, "analysis.json")
	sessionDir := filepath.Join(dir, "session")

	out, err := runCmd(t, "dataset", "-kind", "twitter", "-n", "800", "-seed", "5", "-out", data)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	if !strings.Contains(out, "800") {
		t.Errorf("dataset output: %q", out)
	}

	out, err = runCmd(t, "analyze", "-in", data, "-name", "Twitter", "-out", analysis)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if !strings.Contains(out, "analyzed 800 documents") {
		t.Errorf("analyze output: %q", out)
	}

	out, err = runCmd(t, "generate", "-analysis", analysis, "-out", sessionDir,
		"-seed", "123", "-preset", "expert", "-verify", data, "-aggregate", "-group-by")
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if !strings.Contains(out, "generated 5 queries") {
		t.Errorf("generate output: %q", out)
	}
	for _, f := range []string{"session.json", "session.dot", "queries.joda", "queries.jq", "queries.mongodb", "queries.postgres"} {
		if _, err := os.Stat(filepath.Join(sessionDir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}

	out, err = runCmd(t, "run", "-session", filepath.Join(sessionDir, "session.json"),
		"-data", data, "-systems", "joda,mongodb,postgres,jq", "-timeout", "1m")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, sys := range []string{"JODA", "MongoDB", "PostgreSQL", "jq"} {
		if !strings.Contains(out, sys) {
			t.Errorf("run output missing %s:\n%s", sys, out)
		}
	}
	if !strings.Contains(out, "total w/o import") {
		t.Errorf("run output missing summary:\n%s", out)
	}
}

func TestGenerateSeedDeterminism(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "nb.json")
	analysis := filepath.Join(dir, "a.json")
	if _, err := runCmd(t, "dataset", "-kind", "nobench", "-n", "500", "-seed", "2", "-out", data); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "analyze", "-in", data, "-out", analysis); err != nil {
		t.Fatal(err)
	}
	gen := func(sub string) string {
		out := filepath.Join(dir, sub)
		if _, err := runCmd(t, "generate", "-analysis", analysis, "-out", out, "-seed", "77", "-verify", data); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(out, "queries.joda"))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if gen("s1") != gen("s2") {
		t.Errorf("same seed produced different query files")
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"dataset", "-kind", "excel", "-out", "/tmp/x.json"},
		{"dataset"}, // missing -out
		{"analyze"},
		{"generate"},
		{"run"},
		{"run", "-session", "/missing.json", "-data", "/missing.json"},
	}
	for _, args := range cases {
		if _, err := runCmd(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunUnknownSystem(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.json")
	analysis := filepath.Join(dir, "a.json")
	sess := filepath.Join(dir, "s")
	if _, err := runCmd(t, "dataset", "-kind", "reddit", "-n", "200", "-out", data); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "analyze", "-in", data, "-out", analysis); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "generate", "-analysis", analysis, "-out", sess, "-verify", data); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "run", "-session", filepath.Join(sess, "session.json"), "-data", data, "-systems", "oracle"); err == nil {
		t.Errorf("unknown system accepted")
	}
}

func TestPostgresRejectsRedditViaCLI(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "reddit.json")
	analysis := filepath.Join(dir, "a.json")
	sess := filepath.Join(dir, "s")
	// Force the NUL bodies in.
	if _, err := runCmd(t, "dataset", "-kind", "reddit", "-n", "300", "-null-fraction", "0.01", "-out", data); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "analyze", "-in", data, "-out", analysis); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "generate", "-analysis", analysis, "-out", sess, "-verify", data); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "run", "-session", filepath.Join(sess, "session.json"), "-data", data, "-systems", "postgres")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "could not load dataset") {
		t.Errorf("PostgreSQL load failure not reported:\n%s", out)
	}
}

func TestRunMultiDataset(t *testing.T) {
	dir := t.TempDir()
	dataA := filepath.Join(dir, "a.json")
	dataB := filepath.Join(dir, "b.json")
	analysisA := filepath.Join(dir, "aa.json")
	analysisB := filepath.Join(dir, "ab.json")
	sess := filepath.Join(dir, "s")
	if _, err := runCmd(t, "dataset", "-kind", "nobench", "-n", "400", "-seed", "1", "-out", dataA); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "dataset", "-kind", "reddit", "-n", "400", "-seed", "2", "-out", dataB); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "analyze", "-in", dataA, "-name", "A", "-out", analysisA); err != nil {
		t.Fatal(err)
	}
	if _, err := runCmd(t, "analyze", "-in", dataB, "-name", "B", "-out", analysisB); err != nil {
		t.Fatal(err)
	}
	// Generate against A only (the CLI takes one analysis file), then run
	// with an explicit name=path mapping to exercise the resolver.
	if _, err := runCmd(t, "generate", "-analysis", analysisA, "-out", sess, "-seed", "3", "-verify", dataA); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "run", "-session", filepath.Join(sess, "session.json"),
		"-data", "A="+dataA, "-systems", "joda")
	if err != nil {
		t.Fatalf("run with mapping: %v", err)
	}
	if !strings.Contains(out, "import A:") {
		t.Errorf("mapped import not reported:\n%s", out)
	}
	// A mapping that misses the root dataset must fail clearly.
	if _, err := runCmd(t, "run", "-session", filepath.Join(sess, "session.json"),
		"-data", "WRONG="+dataA, "-systems", "joda"); err == nil {
		t.Errorf("missing dataset mapping accepted")
	}
	if _, err := runCmd(t, "run", "-session", filepath.Join(sess, "session.json"),
		"-data", "malformed,pairs", "-systems", "joda"); err == nil {
		t.Errorf("malformed -data pairs accepted")
	}
}

func TestGenerateMultiAnalysis(t *testing.T) {
	dir := t.TempDir()
	dataA := filepath.Join(dir, "a.json")
	dataB := filepath.Join(dir, "b.json")
	analysisA := filepath.Join(dir, "aa.json")
	analysisB := filepath.Join(dir, "ab.json")
	sess := filepath.Join(dir, "s")
	for _, step := range [][]string{
		{"dataset", "-kind", "nobench", "-n", "400", "-seed", "1", "-out", dataA},
		{"dataset", "-kind", "twitter", "-n", "400", "-seed", "2", "-out", dataB},
		{"analyze", "-in", dataA, "-name", "A", "-out", analysisA},
		{"analyze", "-in", dataB, "-name", "B", "-out", analysisB},
	} {
		if _, err := runCmd(t, step...); err != nil {
			t.Fatalf("%v: %v", step, err)
		}
	}
	out, err := runCmd(t, "generate",
		"-analysis", analysisA+","+analysisB,
		"-out", sess, "-seed", "4", "-preset", "novice",
		"-verify", "A="+dataA+",B="+dataB)
	if err != nil {
		t.Fatalf("multi-analysis generate: %v", err)
	}
	if !strings.Contains(out, "generated 20 queries") {
		t.Errorf("output: %q", out)
	}
	// The session must reference both datasets with overwhelming
	// probability (novice, beta=0.3, 20 queries over 2 roots).
	file, err := core.ReadSessionFile(filepath.Join(sess, "session.json"))
	if err != nil {
		t.Fatal(err)
	}
	roots := map[string]bool{}
	for _, q := range file.Queries {
		roots[q.Base] = true
	}
	if len(roots) < 2 {
		t.Logf("only one root explored (unlikely but possible): %v", roots)
	}
	// And the run command demands a full mapping.
	if _, err := runCmd(t, "run", "-session", filepath.Join(sess, "session.json"),
		"-data", dataA, "-systems", "joda"); err == nil && len(roots) > 1 {
		t.Errorf("bare -data accepted for a multi-dataset session")
	}
	if _, err := runCmd(t, "run", "-session", filepath.Join(sess, "session.json"),
		"-data", "A="+dataA+",B="+dataB, "-systems", "joda"); err != nil {
		t.Errorf("mapped multi-dataset run failed: %v", err)
	}
}
