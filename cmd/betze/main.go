// Command betze is the BETZE command-line interface: it generates synthetic
// datasets, analyzes JSON datasets into statistics files, generates
// benchmark sessions from them, and executes sessions against the built-in
// engines — the Go equivalent of the paper's generate_queries.sh /
// benchmark_queries.sh two-step flow (Listing 4).
//
// Usage:
//
//	betze dataset  -kind twitter|nobench|reddit -n 10000 -seed 1 -out data.json
//	betze analyze  -in data.json -name Twitter -out analysis.json
//	betze generate -analysis analysis.json -out sessiondir [-seed 123]
//	               [-preset expert] [-aggregate] [-group-by] [-materialize]
//	               [-weighted-paths] [-verify data.json] [-langs joda,jq,...]
//	betze run      -session sessiondir/session.json -data data.json
//	               [-systems joda,mongodb,postgres,jq] [-timeout 10m]
//	               [-faults 0.3] [-fault-seed 7] [-retries 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/joda-explore/betze/internal/analyze"
	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/datasets"
	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/jodasim"
	"github.com/joda-explore/betze/internal/engine/jqsim"
	"github.com/joda-explore/betze/internal/engine/mongosim"
	"github.com/joda-explore/betze/internal/engine/pgsim"
	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/fsatomic"
	"github.com/joda-explore/betze/internal/harness"
	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/langs"
	_ "github.com/joda-explore/betze/internal/langs/all"
	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/query"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "betze:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "dataset":
		return cmdDataset(args[1:], out)
	case "analyze":
		return cmdAnalyze(args[1:], out)
	case "generate":
		return cmdGenerate(args[1:], out)
	case "run":
		return cmdRun(args[1:], out)
	case "help", "-h", "--help":
		return usageError()
	default:
		return fmt.Errorf("unknown command %q\n%v", args[0], usageError())
	}
}

func usageError() error {
	return fmt.Errorf("usage: betze <dataset|analyze|generate|run> [flags]; see -h of each command")
}

func cmdDataset(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dataset", flag.ContinueOnError)
	kind := fs.String("kind", "twitter", "dataset family: twitter, nobench or reddit")
	n := fs.Int("n", 10000, "number of documents")
	seed := fs.Int64("seed", 1, "generator seed")
	outPath := fs.String("out", "", "output file (newline-delimited JSON)")
	nullFrac := fs.Float64("null-fraction", 0, "reddit only: fraction of bodies with U+0000 (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("dataset: -out is required")
	}
	var src datasets.Source
	switch *kind {
	case "twitter":
		src = datasets.NewTwitter()
	case "nobench":
		src = datasets.NewNoBench()
	case "reddit":
		src = datasets.NewReddit(datasets.RedditOptions{NullByteFraction: *nullFrac})
	default:
		return fmt.Errorf("dataset: unknown kind %q", *kind)
	}
	if err := src.WriteFile(*outPath, *n, *seed); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d %s documents to %s\n", *n, src.Name, *outPath)
	return nil
}

func cmdAnalyze(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	in := fs.String("in", "", "input dataset file (newline-delimited JSON)")
	name := fs.String("name", "", "dataset name (default: file name)")
	outPath := fs.String("out", "", "output analysis file")
	workers := fs.Int("workers", 0, "analysis workers (0 = all CPUs)")
	sampleEvery := fs.Int("sample-every", 0, "analyze every k-th document only (faster, slightly less accurate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *outPath == "" {
		return fmt.Errorf("analyze: -in and -out are required")
	}
	start := time.Now()
	stats, err := analyze.File(*name, *in, analyze.Options{Workers: *workers, SampleEvery: *sampleEvery})
	if err != nil {
		return err
	}
	f, err := fsatomic.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := stats.WriteTo(f); err != nil {
		return err
	}
	if err := f.Commit(); err != nil {
		return err
	}
	fmt.Fprintf(out, "analyzed %d documents (%d paths) in %v -> %s\n",
		stats.DocCount, len(stats.Paths), time.Since(start).Round(time.Millisecond), *outPath)
	return nil
}

func cmdGenerate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	analysisPath := fs.String("analysis", "", "comma-separated analysis file(s) from 'betze analyze'")
	outDir := fs.String("out", "", "directory for the generated session")
	seed := fs.Int64("seed", 1, "generator seed for repeatable runs")
	preset := fs.String("preset", "intermediate", "user preset: novice, intermediate or expert")
	alpha := fs.Float64("alpha", -1, "override go-back probability")
	beta := fs.Float64("beta", -1, "override random-jump probability")
	queries := fs.Int("queries", 0, "override queries per session")
	minSel := fs.Float64("min-selectivity", 0, "minimum query selectivity")
	maxSel := fs.Float64("max-selectivity", 0, "maximum query selectivity")
	aggregate := fs.Bool("aggregate", false, "generate aggregation queries")
	aggFraction := fs.Float64("agg-fraction", 0, "fraction of aggregated queries (0 = all)")
	groupBy := fs.Bool("group-by", false, "group aggregations by a random attribute")
	materialize := fs.Bool("materialize", false, "store every query result as an intermediate dataset")
	weighted := fs.Bool("weighted-paths", false, "prefer attributes close to the document root")
	include := fs.String("include-predicates", "", "comma-separated predicate allow-list")
	exclude := fs.String("exclude-predicates", "", "comma-separated predicate deny-list")
	verify := fs.String("verify", "", "dataset file to verify selectivities against (recommended)")
	languages := fs.String("langs", "", "comma-separated languages to translate to (default: all)")
	tracePath := fs.String("trace", "", "write translation trace events (JSON lines) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *analysisPath == "" || *outDir == "" {
		return fmt.Errorf("generate: -analysis and -out are required")
	}
	var statsList []*jsonstats.Dataset
	for _, path := range strings.Split(*analysisPath, ",") {
		af, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		stats, err := jsonstats.ReadFrom(af)
		af.Close()
		if err != nil {
			return err
		}
		statsList = append(statsList, stats)
	}
	p, err := core.PresetByName(*preset)
	if err != nil {
		return err
	}
	opts := core.Options{
		Preset:         p,
		Seed:           *seed,
		Queries:        *queries,
		MinSelectivity: *minSel,
		MaxSelectivity: *maxSel,
		Aggregate:      *aggregate,
		AggFraction:    *aggFraction,
		GroupBy:        *groupBy,
		Materialize:    *materialize,
		WeightedPaths:  *weighted,
	}
	if *alpha >= 0 {
		opts.Alpha = core.Float64(*alpha)
	}
	if *beta >= 0 {
		opts.Beta = core.Float64(*beta)
	}
	if *include != "" {
		opts.IncludePredicates = strings.Split(*include, ",")
	}
	if *exclude != "" {
		opts.ExcludePredicates = strings.Split(*exclude, ",")
	}
	if *verify != "" {
		// name=path pairs map verification files to datasets; a bare path
		// serves the (single) analysis file's dataset.
		backend := jodasim.New(jodasim.Options{})
		defer backend.Close()
		pairs := strings.Split(*verify, ",")
		for _, pair := range pairs {
			name, path, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				if len(statsList) > 1 || len(pairs) > 1 {
					return fmt.Errorf("generate: multiple datasets need -verify name=path pairs")
				}
				name, path = statsList[0].Name, pair
			}
			if _, err := backend.ImportFile(context.Background(), name, path); err != nil {
				return fmt.Errorf("generate: loading verification dataset: %w", err)
			}
		}
		opts.Backend = backend
	} else {
		fmt.Fprintln(out, "note: no -verify dataset; selectivities are estimated by scaling statistics (not recommended)")
	}

	session, err := core.Generate(opts, statsList...)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	if err := core.WriteSessionFile(filepath.Join(*outDir, "session.json"), session); err != nil {
		return err
	}
	if err := fsatomic.WriteFile(filepath.Join(*outDir, "session.dot"), []byte(session.DOT()), 0o644); err != nil {
		return err
	}
	selected := langs.All()
	if *languages != "" {
		selected = selected[:0]
		for _, short := range strings.Split(*languages, ",") {
			l, err := langs.ByShortName(strings.TrimSpace(short))
			if err != nil {
				return err
			}
			selected = append(selected, l)
		}
	}
	var rec *obs.Recorder
	var closeTrace func() error
	if *tracePath != "" {
		rec, closeTrace, err = newTraceRecorder(*tracePath)
		if err != nil {
			return fmt.Errorf("generate: -trace: %w", err)
		}
	}
	for _, l := range selected {
		start := time.Now()
		script := langs.Script(l, session.Queries)
		rec.Record(obs.Event{
			Type: obs.EvQueryTranslate, Lang: l.ShortName(),
			Queries: len(session.Queries), Duration: time.Since(start),
		})
		path := filepath.Join(*outDir, "queries."+l.ShortName())
		if err := fsatomic.WriteFile(path, []byte(script), 0o644); err != nil {
			return err
		}
	}
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			return fmt.Errorf("generate: -trace: %w", err)
		}
	}
	fmt.Fprintf(out, "generated %d queries (preset %s, seed %d) into %s\n",
		len(session.Queries), session.Preset.Name, session.Seed, *outDir)
	for _, q := range session.Queries {
		fmt.Fprintf(out, "  %s: %s\n", q.ID, q)
	}
	return nil
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	sessionPath := fs.String("session", "", "session.json from 'betze generate'")
	data := fs.String("data", "", "dataset file, or comma-separated name=path pairs for multi-dataset sessions")
	systems := fs.String("systems", "joda,mongodb,postgres,jq", "engines to benchmark")
	timeout := fs.Duration("timeout", 10*time.Minute, "per-engine session timeout")
	threads := fs.Int("threads", 0, "JODA worker threads (0 = all CPUs)")
	tracePath := fs.String("trace", "", "write per-query trace events (JSON lines) to this file")
	metricsPath := fs.String("metrics-out", "", "write a metrics snapshot (JSON) to this file after the run")
	faultRate := fs.Float64("faults", 0, "inject faults at this rate in [0,1] (transient errors, latency spikes, crashes)")
	faultSeed := fs.Int64("fault-seed", 123, "fault-schedule seed: the same seed injects the same faults")
	retries := fs.Int("retries", 0, "retries per failed operation (0 disables the retry loop)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sessionPath == "" || *data == "" {
		return fmt.Errorf("run: -session and -data are required")
	}
	if *faultRate < 0 || *faultRate > 1 {
		return fmt.Errorf("run: -faults rate %v outside [0,1]", *faultRate)
	}
	if *retries < 0 {
		return fmt.Errorf("run: -retries negative count %d", *retries)
	}
	faults := faultsim.Uniform(*faultRate, *faultSeed)
	var pol harness.RetryPolicy
	if *retries > 0 {
		pol = harness.DefaultRetryPolicy()
		pol.MaxAttempts = *retries + 1
		pol.Seed = *faultSeed
	}
	file, err := core.ReadSessionFile(*sessionPath)
	if err != nil {
		return err
	}
	if len(file.Queries) == 0 {
		return fmt.Errorf("run: session has no queries")
	}
	datasets, err := resolveDatasets(*data, file)
	if err != nil {
		return err
	}

	var sc obs.Scope
	var closeTrace func() error
	if *tracePath != "" {
		rec, cf, err := newTraceRecorder(*tracePath)
		if err != nil {
			return fmt.Errorf("run: -trace: %w", err)
		}
		sc.Trace = rec
		closeTrace = cf
	}
	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
		sc.Metrics = reg
	}

	for _, name := range strings.Split(*systems, ",") {
		eng, err := makeEngine(strings.TrimSpace(name), *threads)
		if err != nil {
			return err
		}
		if faults.Enabled() {
			eng = faultsim.Wrap(eng, faults)
		}
		if err := benchmarkEngine(out, sc, eng, datasets, file.Queries, *timeout, pol); err != nil {
			eng.Close()
			return err
		}
		eng.Close()
	}
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			return fmt.Errorf("run: -trace: %w", err)
		}
	}
	if reg != nil {
		f, err := fsatomic.Create(*metricsPath)
		if err != nil {
			return fmt.Errorf("run: -metrics-out: %w", err)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			return fmt.Errorf("run: -metrics-out: %w", err)
		}
		if err := f.Commit(); err != nil {
			return fmt.Errorf("run: -metrics-out: %w", err)
		}
	}
	return nil
}

// newTraceRecorder opens path for a JSON-lines trace and returns the
// recorder plus a close func that surfaces any deferred write error. The
// trace is an append stream whose partial content is the point of a crash
// investigation, so it is not published atomically.
func newTraceRecorder(path string) (*obs.Recorder, func() error, error) {
	//lint:ignore atomicwrite trace is an append stream, partial content is wanted after a crash
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	rec := obs.NewRecorder(f)
	return rec, func() error {
		if err := rec.Err(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// resolveDatasets maps the session's root dataset names to files. A single
// bare path serves the session's first base dataset; multi-dataset sessions
// take comma-separated name=path pairs.
func resolveDatasets(spec string, file *core.SessionFile) (map[string]string, error) {
	roots := make(map[string]bool)
	for _, n := range file.Nodes {
		if n.Parent == -1 {
			roots[n.Name] = true
		}
	}
	if len(roots) == 0 { // session files without graph info
		for _, q := range file.Queries {
			roots[q.Base] = true
		}
	}
	out := make(map[string]string)
	if !strings.Contains(spec, "=") {
		if strings.Contains(spec, ",") {
			return nil, fmt.Errorf("run: -data %q looks like a list; use name=path,name=path pairs", spec)
		}
		if len(roots) > 1 {
			return nil, fmt.Errorf("run: session uses %d datasets; pass -data name=path,name=path", len(roots))
		}
		out[file.Queries[0].Base] = spec
		return out, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		name, path, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("run: malformed -data pair %q (want name=path)", pair)
		}
		out[name] = path
	}
	for root := range roots {
		if _, ok := out[root]; !ok {
			return nil, fmt.Errorf("run: no -data mapping for dataset %q", root)
		}
	}
	return out, nil
}

func makeEngine(name string, threads int) (engine.Engine, error) {
	switch name {
	case "joda":
		return jodasim.New(jodasim.Options{Threads: threads}), nil
	case "joda-evicted":
		return jodasim.New(jodasim.Options{Threads: threads, Evict: true}), nil
	case "mongodb":
		return mongosim.New(mongosim.Options{}), nil
	case "postgres":
		return pgsim.New(pgsim.Options{}), nil
	case "jq":
		return jqsim.New("")
	default:
		return nil, fmt.Errorf("run: unknown system %q (have joda, joda-evicted, mongodb, postgres, jq)", name)
	}
}

func benchmarkEngine(out io.Writer, sc obs.Scope, eng engine.Engine, datasets map[string]string, queries []*query.Query, timeout time.Duration, pol harness.RetryPolicy) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	ctx = obs.With(ctx, sc)
	var importTotal time.Duration
	importRetries := 0
	for base, data := range datasets {
		imp, retries, err := harness.RunImport(ctx, eng, base, data, pol)
		importRetries += retries
		if err != nil {
			if ctx.Err() != nil {
				sc.Record(obs.Event{Type: obs.EvTimeout, Engine: eng.Name(), Dataset: base, TimedOut: true})
				sc.Counter(obs.MRunTimeouts).Inc()
			}
			fmt.Fprintf(out, "%-22s could not load dataset: %v\n", eng.Name(), err)
			return nil
		}
		importTotal += imp.Duration
		fmt.Fprintf(out, "%-22s import %s: %8s (%d docs)\n", eng.Name(), base, imp.Duration.Round(time.Millisecond), imp.Docs)
	}
	outcomes, rs := harness.RunQueries(ctx, eng, queries, pol, io.Discard, "run")
	var total time.Duration
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(out, "%-22s %6s: skipped after %d attempts: %v\n", eng.Name(), o.Query.ID, o.Attempts, o.Err)
			continue
		}
		total += o.Stats.Duration
		fmt.Fprintf(out, "%-22s %6s: %10s  (%d matched)\n", eng.Name(), o.Query.ID, o.Stats.Duration.Round(time.Microsecond), o.Stats.Matched)
	}
	if rs.TimedOut {
		fmt.Fprintf(out, "%-22s timed out after %v\n", eng.Name(), timeout)
	}
	fmt.Fprintf(out, "%-22s total w/o import: %s, wall: %s\n", eng.Name(),
		total.Round(time.Millisecond), (total + importTotal).Round(time.Millisecond))
	if r := importRetries + rs.Retries; r > 0 || rs.Skipped > 0 || rs.Recovered > 0 {
		fmt.Fprintf(out, "%-22s resilience: %d retried, %d skipped, %d recovered\n",
			eng.Name(), r, rs.Skipped, rs.Recovered)
	}
	return nil
}
