package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCleanTree lints the real module: the tree must be clean, so the
// driver exits 0 with no text output.
func TestRunCleanTree(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"../.."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on the module tree, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run wrote text output:\n%s", out.String())
	}
}

// TestRunJSONClean checks a clean -json run emits the literal empty array.
func TestRunJSONClean(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "../.."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json run = %q, want []", got)
	}
}

// TestRunViolatingModule builds a throwaway module with a determinism
// violation and checks the driver reports it and exits 1.
func TestRunViolatingModule(t *testing.T) {
	dir := t.TempDir()
	core := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(core, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module example.com/fixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(core, "core.go"), `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)

	var out, errOut bytes.Buffer
	if code := run([]string{dir}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d on a violating module, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "determinism") || !strings.Contains(got, "time.Now()") {
		t.Errorf("report does not name the violation:\n%s", got)
	}
	if !strings.Contains(got, "1 finding(s)") {
		t.Errorf("report lacks the summary line:\n%s", got)
	}
}

// TestRunList checks -list prints every analyzer of the default suite.
func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{
		"closecheck", "ctxplumb", "determinism", "errwrap", "obsvocab",
		"lockbalance", "goleak", "atomicmix", "wgdiscipline", "journalorder",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks %s:\n%s", name, out.String())
		}
	}
}

// TestRunFormatJSON checks -format=json matches the legacy -json spelling,
// and that an unknown format is a usage error.
func TestRunFormatJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-format=json", "../.."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -format=json run = %q, want []", got)
	}
	out.Reset()
	if code := run([]string{"-format=yaml", "../.."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for unknown format, want 2", code)
	}
}

// violatingModule builds a throwaway module with two determinism findings.
func violatingModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	core := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(core, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module example.com/fixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(core, "core.go"), `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }

func Epoch() int64 { return time.Now().Unix() }
`)
	return dir
}

// TestRunBaseline captures a JSON report as the baseline and checks the
// driver then exits 0 on the unchanged tree, still fails on a new finding,
// and reports only the new one.
func TestRunBaseline(t *testing.T) {
	dir := violatingModule(t)

	var report, errOut bytes.Buffer
	if code := run([]string{"-format=json", dir}, &report, &errOut); code != 1 {
		t.Fatalf("exit %d capturing the baseline, want 1\nstderr:\n%s", code, errOut.String())
	}
	baseline := filepath.Join(dir, "lint.baseline")
	writeFile(t, baseline, report.String())

	var out bytes.Buffer
	if code := run([]string{"-baseline", baseline, dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d with a matching baseline, want 0\nstdout:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("baselined run wrote output:\n%s", out.String())
	}

	// A new violation in another file must still fail, and the report must
	// contain only the new finding.
	writeFile(t, filepath.Join(dir, "internal", "core", "extra.go"), `package core

import "time"

func Later() int64 { return time.Now().UnixNano() }
`)
	out.Reset()
	if code := run([]string{"-baseline", baseline, dir}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d with a new finding beyond the baseline, want 1", code)
	}
	got := out.String()
	if !strings.Contains(got, "extra.go") {
		t.Errorf("report lacks the new finding:\n%s", got)
	}
	if strings.Contains(got, "core.go") {
		t.Errorf("report resurfaces baselined findings:\n%s", got)
	}
	if !strings.Contains(got, "1 finding(s)") {
		t.Errorf("summary should count only the new finding:\n%s", got)
	}
}

// TestRunBaselineMissingFile checks the usage exit code for a bad path.
func TestRunBaselineMissingFile(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json"), "../.."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for missing baseline, want 2", code)
	}
}

// TestRunUnknownAnalyzer checks the usage exit code.
func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "nonesuch", "../.."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for unknown analyzer, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nonesuch") {
		t.Errorf("stderr does not name the unknown analyzer:\n%s", errOut.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
