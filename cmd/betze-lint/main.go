// Command betze-lint runs the repository's machine-checked invariants (see
// DESIGN.md §"Machine-checked invariants") over the module tree: the six
// internal/lint analyzers guarding determinism, sentinel-error wrapping,
// context plumbing, the observability vocabulary, resource release, and
// atomic artifact publication.
//
// Usage:
//
//	betze-lint [-json] [-list] [-analyzers a,b,...] [dir]
//
// dir defaults to the current module root (the first parent directory with
// a go.mod). The exit code is 0 on a clean tree, 1 on findings, 2 on usage
// or load errors. -json emits a sorted, CI-diffable JSON array instead of
// text. Findings are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/joda-explore/betze/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("betze-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a sorted JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *names != "" {
		subset, ok := lint.ByName(strings.Split(*names, ","))
		if !ok {
			fmt.Fprintf(stderr, "betze-lint: unknown analyzer in -analyzers=%s\n", *names)
			return 2
		}
		analyzers = subset
	}

	root := fs.Arg(0)
	if root == "" {
		root = "."
	}
	// "./..." is accepted as an alias for the root itself: the loader always
	// walks the whole package tree below the module root.
	root = strings.TrimSuffix(root, "...")
	root = strings.TrimSuffix(root, string(filepath.Separator))
	if root == "" || root == "." {
		root = "."
	}
	moduleRoot, err := findModuleRoot(root)
	if err != nil {
		fmt.Fprintf(stderr, "betze-lint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(moduleRoot)
	if err != nil {
		fmt.Fprintf(stderr, "betze-lint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	lint.Relativize(moduleRoot, diags)
	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "betze-lint: %v\n", err)
			return 2
		}
	} else if err := lint.WriteText(stdout, diags); err != nil {
		fmt.Fprintf(stderr, "betze-lint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
	}
}
