// Command betze-lint runs the repository's machine-checked invariants (see
// DESIGN.md §"Machine-checked invariants") over the module tree: the
// internal/lint analyzers guarding determinism, sentinel-error wrapping,
// context plumbing, the observability vocabulary, resource release, atomic
// artifact publication, and — via the CFG/dataflow layer — lock balance,
// goroutine joinability, atomic-access consistency, WaitGroup discipline
// and the jobqueue's journal-before-memory ordering.
//
// Usage:
//
//	betze-lint [-format=text|json] [-baseline file] [-list] [-analyzers a,b,...] [dir]
//
// dir defaults to the current module root (the first parent directory with
// a go.mod). The exit code is 0 on a clean tree, 1 on findings, 2 on usage
// or load errors. -format=json emits a sorted, CI-diffable JSON array
// instead of text (-json is the legacy spelling). -baseline reads a JSON
// report captured earlier (betze-lint -format=json > lint.baseline) and
// fails only on findings not in it, so a tree with accepted debt still
// gates new violations. Findings are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/joda-explore/betze/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("betze-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "output format: text or json")
	jsonOut := fs.Bool("json", false, "legacy alias for -format=json")
	baselinePath := fs.String("baseline", "", "JSON report of accepted findings; fail only on findings not in it")
	list := fs.Bool("list", false, "list the analyzers and exit")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut {
		*format = "json"
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "betze-lint: unknown -format=%s (want text or json)\n", *format)
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *names != "" {
		subset, ok := lint.ByName(strings.Split(*names, ","))
		if !ok {
			fmt.Fprintf(stderr, "betze-lint: unknown analyzer in -analyzers=%s\n", *names)
			return 2
		}
		analyzers = subset
	}
	var baseline lint.Baseline
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "betze-lint: %v\n", err)
			return 2
		}
		baseline, err = lint.ReadBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "betze-lint: %v\n", err)
			return 2
		}
	}

	root := fs.Arg(0)
	if root == "" {
		root = "."
	}
	// "./..." is accepted as an alias for the root itself: the loader always
	// walks the whole package tree below the module root.
	root = strings.TrimSuffix(root, "...")
	root = strings.TrimSuffix(root, string(filepath.Separator))
	if root == "" || root == "." {
		root = "."
	}
	moduleRoot, err := findModuleRoot(root)
	if err != nil {
		fmt.Fprintf(stderr, "betze-lint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(moduleRoot)
	if err != nil {
		fmt.Fprintf(stderr, "betze-lint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	lint.Relativize(moduleRoot, diags)
	diags = lint.FilterBaseline(diags, baseline)
	if *format == "json" {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "betze-lint: %v\n", err)
			return 2
		}
	} else if err := lint.WriteText(stdout, diags); err != nil {
		fmt.Fprintf(stderr, "betze-lint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
	}
}
