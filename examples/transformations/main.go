// Transformations: the paper's future-work extension in action. The
// generator produces a materialised session in which a third of the queries
// rename, remove or add attributes — workloads that "further challenge the
// benchmarked systems, as the base dataset cannot simply be used unchanged".
// The example prints the session in all four query languages and executes
// it on two engines, verifying they agree on the transformed results.
package main

import (
	"context"
	"fmt"
	"io"
	"log"

	"github.com/joda-explore/betze"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	docs := betze.TwitterSource().Generate(4000, 21)
	stats := betze.AnalyzeValues("Twitter", docs, betze.AnalyzeOptions{})

	session, err := betze.Generate(betze.Options{
		Preset:            betze.Intermediate,
		Seed:              42,
		Materialize:       true, // transformed results must be stored
		Transforms:        true,
		TransformFraction: 0.5,
	}, stats)
	if err != nil {
		return err
	}

	fmt.Println("generated session (internal form):")
	transformed := 0
	for _, q := range session.Queries {
		fmt.Printf("  %s: %s\n", q.ID, q)
		if q.Transform != nil {
			transformed++
		}
	}
	fmt.Printf("%d of %d queries carry a transform stage\n\n", transformed, len(session.Queries))

	for _, short := range []string{"mongodb", "postgres"} {
		lang, err := betze.LanguageByName(short)
		if err != nil {
			return err
		}
		fmt.Printf("--- %s ---\n%s\n", lang.Name(), betze.Script(lang, session.Queries))
	}

	// Execute on two engines and compare the final derived dataset size.
	joda := betze.NewJODA(betze.JODAOptions{})
	defer joda.Close()
	joda.ImportValues("Twitter", docs)
	mongo := betze.NewMongoDB(betze.MongoOptions{})
	defer mongo.Close()
	mongo.ImportValues("Twitter", docs)

	ctx := context.Background()
	for _, eng := range []betze.Engine{joda, mongo} {
		var last int64
		for _, q := range session.Queries {
			res, err := eng.Execute(ctx, q, io.Discard)
			if err != nil {
				return fmt.Errorf("%s: %w", eng.Name(), err)
			}
			last = res.Matched
		}
		fmt.Printf("%-10s final derived dataset: %d documents\n", eng.Name(), last)
	}
	return nil
}
