// Twitter exploration: the paper's motivating scenario. Alice, a data
// scientist, explores a raw Twitter stream. We simulate her at three skill
// levels (novice, intermediate, expert) and benchmark the resulting
// exploratory workloads across all four engines, reproducing the shape of
// the paper's system comparison on a laptop-sized sample.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"github.com/joda-explore/betze"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "betze-twitter-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	dataFile := filepath.Join(dir, "twitter.json")
	const docs = 8000
	fmt.Printf("synthesising %d raw Twitter-stream documents...\n", docs)
	if err := betze.TwitterSource().WriteFile(dataFile, docs, 7); err != nil {
		return err
	}
	stats, err := betze.AnalyzeFile("Twitter", dataFile, betze.AnalyzeOptions{})
	if err != nil {
		return err
	}

	backend := betze.NewJODA(betze.JODAOptions{})
	if _, err := backend.ImportFile(context.Background(), "Twitter", dataFile); err != nil {
		return err
	}
	defer backend.Close()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\npreset\tqueries\tJODA\tMongoDB\tPostgreSQL\tjq")
	for _, preset := range betze.Presets() {
		session, err := betze.Generate(betze.Options{
			Preset:  preset,
			Seed:    1,
			Backend: backend,
		}, stats)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d", preset.Name, len(session.Queries))
		for _, mk := range []func() (betze.Engine, error){
			func() (betze.Engine, error) { return betze.NewJODA(betze.JODAOptions{}), nil },
			func() (betze.Engine, error) { return betze.NewMongoDB(betze.MongoOptions{}), nil },
			func() (betze.Engine, error) { return betze.NewPostgreSQL(betze.PostgresOptions{}), nil },
			func() (betze.Engine, error) { return betze.NewJQ(dir) },
		} {
			eng, err := mk()
			if err != nil {
				return err
			}
			total, err := benchmark(eng, dataFile, session)
			eng.Close()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\t%v", total.Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("\n(per-session execution time without import; lower is better)")
	fmt.Println("Note how the novice's backtracking-heavy session costs every engine")
	fmt.Println("the most, and how only the parallel, caching JODA engine keeps")
	fmt.Println("exploratory latencies interactive — the paper's Table III shape.")
	return nil
}

func benchmark(eng betze.Engine, dataFile string, session *betze.Session) (time.Duration, error) {
	ctx := context.Background()
	if _, err := eng.ImportFile(ctx, "Twitter", dataFile); err != nil {
		return 0, err
	}
	var total time.Duration
	for _, q := range session.Queries {
		res, err := eng.Execute(ctx, q, io.Discard)
		if err != nil {
			return 0, err
		}
		total += res.Duration
	}
	return total, nil
}
