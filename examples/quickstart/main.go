// Quickstart: analyze a dataset, generate one exploration session, print it
// in all four query languages, and execute it on the JODA engine — the
// whole BETZE pipeline in one file.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"github.com/joda-explore/betze"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "betze-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. A dataset. Normally this is your own newline-delimited JSON file;
	// here we synthesise a small Twitter-like stream.
	dataFile := filepath.Join(dir, "twitter.json")
	if err := betze.TwitterSource().WriteFile(dataFile, 5000, 42); err != nil {
		return err
	}
	fmt.Println("dataset:", dataFile)

	// 2. Analyze it into a statistical summary (§IV-A of the paper).
	stats, err := betze.AnalyzeFile("Twitter", dataFile, betze.AnalyzeOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("analyzed %d documents, %d distinct attribute paths\n\n",
		stats.DocCount, len(stats.Paths))

	// 3. Generate a session. The backend verifies each query's selectivity
	// against the actual data (recommended); the seed makes the session
	// reproducible.
	backend := betze.NewJODA(betze.JODAOptions{})
	if _, err := backend.ImportFile(context.Background(), "Twitter", dataFile); err != nil {
		return err
	}
	defer backend.Close()
	session, err := betze.Generate(betze.Options{
		Preset:  betze.Expert,
		Seed:    123,
		Backend: backend,
	}, stats)
	if err != nil {
		return err
	}

	// 4. Translate the session into every supported system's syntax.
	for _, lang := range betze.Languages() {
		fmt.Printf("--- %s ---\n%s\n", lang.Name(), betze.Script(lang, session.Queries))
	}

	// 5. Execute it on an engine and report per-query times.
	eng := betze.NewJODA(betze.JODAOptions{})
	defer eng.Close()
	if _, err := eng.ImportFile(context.Background(), "Twitter", dataFile); err != nil {
		return err
	}
	fmt.Println("--- execution on JODA ---")
	for _, q := range session.Queries {
		res, err := eng.Execute(context.Background(), q, io.Discard)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %8v  scanned %6d, matched %6d\n", q.ID, res.Duration.Round(10_000), res.Scanned, res.Matched)
	}
	return nil
}
