// Multi-user evaluation: §III of the paper notes that "to evaluate
// multi-user systems, we could generate multiple sessions and execute them
// simultaneously. Using different configurations for different sessions is
// also possible." This example generates one session per simulated user —
// a mix of novices, intermediates and experts — and executes them
// concurrently against a single shared JODA engine, reporting per-user and
// aggregate throughput.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/joda-explore/betze"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "betze-multiuser-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	dataFile := filepath.Join(dir, "reddit.json")
	if err := betze.RedditSource(betze.RedditOptions{NullByteFraction: -1}).WriteFile(dataFile, 10000, 3); err != nil {
		return err
	}
	stats, err := betze.AnalyzeFile("Reddit", dataFile, betze.AnalyzeOptions{})
	if err != nil {
		return err
	}
	backend := betze.NewJODA(betze.JODAOptions{})
	ctx := context.Background()
	if _, err := backend.ImportFile(ctx, "Reddit", dataFile); err != nil {
		return err
	}
	defer backend.Close()

	// One session per user, with a population of mixed skill levels.
	users := []betze.Preset{
		betze.Novice, betze.Novice,
		betze.Intermediate, betze.Intermediate, betze.Intermediate,
		betze.Expert, betze.Expert, betze.Expert,
	}
	sessions := make([]*betze.Session, len(users))
	for i, preset := range users {
		s, err := betze.Generate(betze.Options{Preset: preset, Seed: int64(100 + i), Backend: backend}, stats)
		if err != nil {
			return err
		}
		sessions[i] = s
	}

	// The shared system under test.
	eng := betze.NewJODA(betze.JODAOptions{})
	defer eng.Close()
	if _, err := eng.ImportFile(ctx, "Reddit", dataFile); err != nil {
		return err
	}

	type userResult struct {
		queries int
		took    time.Duration
	}
	results := make([]userResult, len(users))
	start := time.Now()
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *betze.Session) {
			defer wg.Done()
			userStart := time.Now()
			for _, q := range s.Queries {
				if _, err := eng.Execute(ctx, q, io.Discard); err != nil {
					log.Printf("user %d: %v", i, err)
					return
				}
			}
			results[i] = userResult{queries: len(s.Queries), took: time.Since(userStart)}
		}(i, s)
	}
	wg.Wait()
	wall := time.Since(start)

	totalQueries := 0
	for i, r := range results {
		fmt.Printf("user %d (%-12s): %2d queries in %8v\n", i, users[i].Name, r.queries, r.took.Round(time.Millisecond))
		totalQueries += r.queries
	}
	fmt.Printf("\n%d concurrent users, %d queries, wall time %v (%.0f queries/s)\n",
		len(users), totalQueries, wall.Round(time.Millisecond),
		float64(totalQueries)/wall.Seconds())
	return nil
}
