// Package betze is the public facade of the BETZE benchmark generator
// (Schäfer & Michel, "BETZE: Benchmarking Data Exploration Tools with
// (Almost) Zero Effort", ICDE 2022): a generator for exploratory query
// benchmarks over arbitrary JSON datasets.
//
// The typical workflow mirrors the paper's two-step CLI flow:
//
//	stats, _ := betze.AnalyzeFile("Twitter", "twitter.json", betze.AnalyzeOptions{})
//	session, _ := betze.Generate(betze.Options{Preset: betze.Expert, Seed: 123}, stats)
//	for _, lang := range betze.Languages() {
//	    fmt.Println(betze.Script(lang, session.Queries))
//	}
//
// Generated sessions can be executed against the four built-in engines
// (NewJODA, NewMongoDB, NewPostgreSQL, NewJQ), translated to the four query
// languages, or stored as session files for later benchmarking. The
// cmd/betze CLI and cmd/betze-bench experiment driver are thin wrappers
// around this API.
package betze

import (
	"io"

	"github.com/joda-explore/betze/internal/analyze"
	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/datasets"
	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/jodasim"
	"github.com/joda-explore/betze/internal/engine/jqsim"
	"github.com/joda-explore/betze/internal/engine/mongosim"
	"github.com/joda-explore/betze/internal/engine/pgsim"
	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/langs"
	_ "github.com/joda-explore/betze/internal/langs/all" // register the built-in languages
	"github.com/joda-explore/betze/internal/query"
)

// Core generator types (§III, §IV of the paper).
type (
	// Preset is a named random-explorer configuration (Table I).
	Preset = core.Preset
	// Options configures one generator run; see the field docs.
	Options = core.Options
	// Session is a generated exploration session: queries, dependency
	// graph and explorer walk.
	Session = core.Session
	// SessionFile is the shareable on-disk session form.
	SessionFile = core.SessionFile
	// Backend verifies generated selectivities against actual data.
	Backend = core.Backend
	// Factory generates one predicate type; implement it to extend the
	// generator (§IV-D).
	Factory = core.Factory
)

// The Table I presets.
var (
	Novice       = core.Novice
	Intermediate = core.Intermediate
	Expert       = core.Expert
)

// Presets lists the built-in user configurations.
func Presets() []Preset { return core.Presets() }

// PresetByName resolves "novice", "intermediate" or "expert".
func PresetByName(name string) (Preset, error) { return core.PresetByName(name) }

// Generate runs the random explorer once over the analyzed datasets.
func Generate(opts Options, datasets ...*Stats) (*Session, error) {
	return core.Generate(opts, datasets...)
}

// WriteSessionFile stores a session for later benchmarking or sharing.
func WriteSessionFile(path string, s *Session) error { return core.WriteSessionFile(path, s) }

// ReadSessionFile loads a stored session.
func ReadSessionFile(path string) (*SessionFile, error) { return core.ReadSessionFile(path) }

// Analysis types (§IV-A).
type (
	// Stats is the statistical dataset summary the generator works on.
	Stats = jsonstats.Dataset
	// StatsConfig bounds the string statistics of the analyzer.
	StatsConfig = jsonstats.Config
	// AnalyzeOptions configures an analyzer run.
	AnalyzeOptions = analyze.Options
)

// AnalyzeFile summarises a newline-delimited JSON file.
func AnalyzeFile(name, path string, opts AnalyzeOptions) (*Stats, error) {
	return analyze.File(name, path, opts)
}

// AnalyzeReader summarises a JSON document stream.
func AnalyzeReader(name string, r io.Reader, opts AnalyzeOptions) (*Stats, error) {
	return analyze.Reader(name, r, opts)
}

// AnalyzeValues summarises in-memory documents.
func AnalyzeValues(name string, docs []Value, opts AnalyzeOptions) *Stats {
	return analyze.Values(name, docs, opts)
}

// ReadStats loads an analysis file written by Stats.WriteTo.
func ReadStats(r io.Reader) (*Stats, error) { return jsonstats.ReadFrom(r) }

// Query representation (§IV-D).
type (
	// Query is the internal representation translated per system.
	Query = query.Query
	// Predicate is a filter-tree node.
	Predicate = query.Predicate
	// Aggregation is the optional aggregation stage.
	Aggregation = query.Aggregation
	// Transform is the optional attribute rename/remove/add stage (the
	// paper's future-work extension; enable generation with
	// Options.Transforms).
	Transform = query.Transform
	// TransformOp is one transformation step.
	TransformOp = query.TransformOp
)

// Transform operation kinds.
const (
	TransformRename = query.TransformRename
	TransformRemove = query.TransformRemove
	TransformAdd    = query.TransformAdd
)

// Language translation (Listing 3).
type (
	// Language renders queries in one system's syntax; register custom
	// implementations with RegisterLanguage.
	Language = langs.Language
)

// Languages returns every registered language, sorted by short name.
func Languages() []Language { return langs.All() }

// LanguageByName resolves a language short name ("joda", "mongodb", "jq",
// "postgres", or a registered custom one).
func LanguageByName(short string) (Language, error) { return langs.ByShortName(short) }

// RegisterLanguage adds a custom language to the registry.
func RegisterLanguage(l Language) { langs.Register(l) }

// Script renders a whole session as one executable file in the language.
func Script(l Language, queries []*Query) string { return langs.Script(l, queries) }

// Engines (the systems under test).
type (
	// Engine executes imported datasets and generated queries.
	Engine = engine.Engine
	// ImportStats describes one dataset import.
	ImportStats = engine.ImportStats
	// ExecStats describes one query execution.
	ExecStats = engine.ExecStats
	// JODAOptions configures the JODA stand-in.
	JODAOptions = jodasim.Options
	// MongoOptions configures the MongoDB stand-in.
	MongoOptions = mongosim.Options
	// PostgresOptions configures the PostgreSQL stand-in.
	PostgresOptions = pgsim.Options
)

// NewJODA returns the JODA stand-in: parallel, in-memory, result-caching.
// It doubles as the recommended generation Backend.
func NewJODA(opts JODAOptions) *jodasim.Engine { return jodasim.New(opts) }

// NewMongoDB returns the MongoDB stand-in: BSON storage in compressed
// blocks, lazy path navigation, single-threaded.
func NewMongoDB(opts MongoOptions) *mongosim.Engine { return mongosim.New(opts) }

// NewPostgreSQL returns the PostgreSQL stand-in: JSONB rows with TOAST-style
// compression, whole-document decode per evaluation, single-threaded.
func NewPostgreSQL(opts PostgresOptions) *pgsim.Engine { return pgsim.New(opts) }

// NewJQ returns the jq stand-in: no import, per-query re-parse of the
// dataset file. Derived datasets are materialised under workdir ("" for a
// temporary directory).
func NewJQ(workdir string) (*jqsim.Engine, error) { return jqsim.New(workdir) }

// Dataset generators (§VI).
type (
	// DatasetSource is a seeded synthetic document generator.
	DatasetSource = datasets.Source
	// RedditOptions configures the Reddit-comments generator.
	RedditOptions = datasets.RedditOptions
)

// TwitterSource generates the heterogeneous, deeply nested Twitter-like
// stream of the paper's evaluation.
func TwitterSource() DatasetSource { return datasets.NewTwitter() }

// NoBenchSource generates the NoBench dataset of Chasseur et al.
func NoBenchSource() DatasetSource { return datasets.NewNoBench() }

// RedditSource generates the flat fixed-schema Reddit-comments dataset.
func RedditSource(opts RedditOptions) DatasetSource { return datasets.NewReddit(opts) }

// JSON value model.
type (
	// Value is a typed JSON value.
	Value = jsonval.Value
	// Path addresses a nested attribute ("/user/name").
	Path = jsonval.Path
)

// ParseJSON decodes one JSON document.
func ParseJSON(data []byte) (Value, error) { return jsonval.Parse(data) }

// ParsePath normalises a slash-separated attribute path.
func ParsePath(s string) Path { return jsonval.ParsePath(s) }
