package betze_test

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"github.com/joda-explore/betze"
)

func TestFacadeEndToEnd(t *testing.T) {
	docs := betze.TwitterSource().Generate(1500, 3)
	stats := betze.AnalyzeValues("Twitter", docs, betze.AnalyzeOptions{})
	if stats.DocCount != 1500 {
		t.Fatalf("DocCount = %d", stats.DocCount)
	}

	backend := betze.NewJODA(betze.JODAOptions{})
	backend.ImportValues("Twitter", docs)
	defer backend.Close()

	session, err := betze.Generate(betze.Options{Preset: betze.Expert, Seed: 9, Backend: backend}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(session.Queries) != betze.Expert.Queries {
		t.Fatalf("queries = %d", len(session.Queries))
	}

	if got := len(betze.Languages()); got < 4 {
		t.Fatalf("languages = %d", got)
	}
	for _, l := range betze.Languages() {
		script := betze.Script(l, session.Queries)
		if !strings.Contains(script, "Twitter") {
			t.Errorf("%s script does not reference the dataset", l.ShortName())
		}
	}

	// Execute on the facade-constructed engines; counts must agree.
	var want int64 = -1
	mongo := betze.NewMongoDB(betze.MongoOptions{})
	mongo.ImportValues("Twitter", docs)
	defer mongo.Close()
	pg := betze.NewPostgreSQL(betze.PostgresOptions{})
	if err := pg.ImportValues("Twitter", docs); err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	for _, eng := range []betze.Engine{backend, mongo, pg} {
		var total int64
		for _, q := range session.Queries {
			res, err := eng.Execute(context.Background(), q, io.Discard)
			if err != nil {
				t.Fatalf("%s: %v", eng.Name(), err)
			}
			total += res.Matched
		}
		if want == -1 {
			want = total
		} else if total != want {
			t.Errorf("%s matched %d total, want %d", eng.Name(), total, want)
		}
	}
}

func TestFacadeAnalyzeReaderAndStatsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := betze.NoBenchSource().WriteTo(&buf, 300, 5); err != nil {
		t.Fatal(err)
	}
	stats, err := betze.AnalyzeReader("nb", &buf, betze.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if _, err := stats.WriteTo(&file); err != nil {
		t.Fatal(err)
	}
	back, err := betze.ReadStats(&file)
	if err != nil {
		t.Fatal(err)
	}
	if back.DocCount != stats.DocCount || len(back.Paths) != len(stats.Paths) {
		t.Errorf("stats round trip lost data")
	}
	// The reloaded stats must be directly usable for generation.
	if _, err := betze.Generate(betze.Options{Seed: 4}, back); err != nil {
		t.Errorf("generation from reloaded stats: %v", err)
	}
}

func TestFacadeParseHelpers(t *testing.T) {
	v, err := betze.ParseJSON([]byte(`{"a":{"b":7}}`))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := betze.ParsePath("/a/b").Lookup(v)
	if !ok || got.Int() != 7 {
		t.Errorf("lookup = %v, %v", got, ok)
	}
}

func TestFacadePresets(t *testing.T) {
	if len(betze.Presets()) != 3 {
		t.Fatalf("presets = %d", len(betze.Presets()))
	}
	p, err := betze.PresetByName("novice")
	if err != nil || p.Alpha != 0.5 {
		t.Errorf("PresetByName: %+v, %v", p, err)
	}
}
