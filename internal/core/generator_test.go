package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/analyze"
	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// testCorpus builds a varied heterogeneous document set on which every
// predicate factory can hit the default selectivity range.
func testCorpus(n int, seed int64) []jsonval.Value {
	r := rand.New(rand.NewSource(seed))
	docs := make([]jsonval.Value, n)
	cities := []string{"berlin", "paris", "tokyo", "lima"}
	for i := range docs {
		members := []jsonval.Member{
			{Key: "id", Value: jsonval.IntValue(int64(i))},
			{Key: "score", Value: jsonval.FloatValue(r.Float64() * 100)},
			{Key: "level", Value: jsonval.IntValue(int64(r.Intn(10)))},
			{Key: "active", Value: jsonval.BoolValue(r.Intn(2) == 0)},
			{Key: "city", Value: jsonval.StringValue(cities[r.Intn(len(cities))])},
		}
		if r.Intn(2) == 0 {
			members = append(members, jsonval.Member{Key: "user", Value: jsonval.ObjectValue(
				jsonval.Member{Key: "name", Value: jsonval.StringValue(fmt.Sprintf("user_%02d", r.Intn(20)))},
				jsonval.Member{Key: "verified", Value: jsonval.BoolValue(r.Intn(4) == 0)},
			)})
		}
		if r.Intn(3) == 0 {
			tags := make([]jsonval.Value, r.Intn(5))
			for j := range tags {
				tags[j] = jsonval.StringValue("t")
			}
			members = append(members, jsonval.Member{Key: "tags", Value: jsonval.ArrayValue(tags...)})
		}
		docs[i] = jsonval.ObjectValue(members...)
	}
	return docs
}

func corpusStats(t *testing.T, name string, docs []jsonval.Value) *jsonstats.Dataset {
	t.Helper()
	return analyze.Values(name, docs, analyze.Options{Workers: 1})
}

func TestGenerateSessionShape(t *testing.T) {
	docs := testCorpus(2000, 1)
	stats := corpusStats(t, "base", docs)
	s, err := Generate(Options{Seed: 42, Preset: Novice}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Queries) != Novice.Queries {
		t.Fatalf("queries = %d, want %d", len(s.Queries), Novice.Queries)
	}
	if len(s.Nodes) != 1+Novice.Queries {
		t.Fatalf("nodes = %d", len(s.Nodes))
	}
	if !s.Nodes[0].IsInitial() || s.Nodes[0].Name != "base" {
		t.Errorf("first node = %+v", s.Nodes[0])
	}
	explore := 0
	for _, st := range s.Steps {
		if st.From < 0 || st.From >= len(s.Nodes) || st.To < 0 || st.To >= len(s.Nodes) {
			t.Fatalf("step references unknown node: %+v", st)
		}
		switch st.Kind {
		case StepExplore:
			explore++
			child := s.Nodes[st.To]
			if child.Parent == nil || child.Parent.ID != st.From {
				t.Errorf("explore edge %d->%d does not match parent %v", st.From, st.To, child.Parent)
			}
		case StepBack:
			from := s.Nodes[st.From]
			if from.Parent == nil || from.Parent.ID != st.To {
				t.Errorf("back edge %d->%d does not go to parent", st.From, st.To)
			}
		}
	}
	if explore != Novice.Queries {
		t.Errorf("explore steps = %d", explore)
	}
	for i, n := range s.Nodes[1:] {
		if n.Query == nil || n.NewPred == nil || n.Pred == nil {
			t.Errorf("derived node %d lacks query/predicates", i+1)
		}
		if n.Query.ID != fmt.Sprintf("q%d", i+1) {
			t.Errorf("query id = %q", n.Query.ID)
		}
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(1000, 2))
	render := func(seed int64) string {
		s, err := Generate(Options{Seed: seed}, stats)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, q := range s.Queries {
			sb.WriteString(q.String())
			sb.WriteByte('\n')
		}
		for _, st := range s.Steps {
			fmt.Fprintf(&sb, "%s %d %d\n", st.Kind, st.From, st.To)
		}
		return sb.String()
	}
	a, b := render(123), render(123)
	if a != b {
		t.Fatalf("same seed produced different sessions:\n%s\nvs\n%s", a, b)
	}
	if render(123) == render(124) {
		t.Errorf("different seeds produced identical sessions")
	}
}

func TestGenerateComposedMode(t *testing.T) {
	docs := testCorpus(1500, 3)
	stats := corpusStats(t, "base", docs)
	s, err := Generate(Options{Seed: 7, Backend: SliceBackend{"base": docs}}, stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range s.Queries {
		if q.Base != "base" {
			t.Errorf("composed query reads %q, want the root dataset", q.Base)
		}
		if q.Store != "" {
			t.Errorf("composed query stores %q", q.Store)
		}
	}
	// A child explored from a derived dataset composes the parent chain:
	// its filter must be And(parent.Pred, new).
	for _, n := range s.Nodes[1:] {
		if n.Parent.IsInitial() {
			continue
		}
		and, ok := n.Pred.(query.And)
		if !ok {
			t.Fatalf("composed predicate of %s is %T", n.Name, n.Pred)
		}
		if and.Left.String() != n.Parent.Pred.String() {
			t.Errorf("composed left side != parent predicate")
		}
		if and.Right.String() != n.NewPred.String() {
			t.Errorf("composed right side != new predicate")
		}
	}
}

func TestGenerateMaterializeMode(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(1500, 4))
	s, err := Generate(Options{Seed: 9, Materialize: true}, stats)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range s.Nodes[1:] {
		q := n.Query
		if q.Store != n.Name {
			t.Errorf("query %d stores %q, node is %q", i+1, q.Store, n.Name)
		}
		if q.Base != n.Parent.Name {
			t.Errorf("query %d reads %q, parent is %q", i+1, q.Base, n.Parent.Name)
		}
		if q.Filter.String() != n.NewPred.String() {
			t.Errorf("materialised query %d carries composed filter", i+1)
		}
	}
}

func TestGenerateVerifiedSelectivities(t *testing.T) {
	docs := testCorpus(4000, 5)
	stats := corpusStats(t, "base", docs)
	backend := SliceBackend{"base": docs}
	s, err := Generate(Options{Seed: 11, Preset: Novice, Backend: backend}, stats)
	if err != nil {
		t.Fatal(err)
	}
	inRange := 0
	for _, n := range s.Nodes[1:] {
		if !n.Verified {
			t.Errorf("node %s not verified despite backend", n.Name)
		}
		parent := n.Parent
		if parent.Count == 0 {
			continue
		}
		// Node count must equal the backend's truth.
		matched, err := backend.CountMatching("base", n.Pred)
		if err != nil {
			t.Fatal(err)
		}
		if n.Count != matched {
			t.Errorf("node %s count %d, backend says %d", n.Name, n.Count, matched)
		}
		sel := float64(n.Count) / float64(parent.Count)
		if sel >= 0.2 && sel <= 0.9 {
			inRange++
		}
	}
	if inRange < (len(s.Nodes)-1)*8/10 {
		t.Errorf("only %d/%d selectivities in range", inRange, len(s.Nodes)-1)
	}
}

func TestGenerateNoDuplicateLeafPredicates(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(3000, 6))
	s, err := Generate(Options{Seed: 13, Preset: Novice}, stats)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, n := range s.Nodes[1:] {
		for _, leaf := range query.Leaves(n.NewPred) {
			key := leaf.String()
			if seen[key] {
				t.Errorf("duplicate leaf predicate %s", key)
			}
			seen[key] = true
		}
	}
}

func TestGenerateAggregations(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(1500, 7))
	s, err := Generate(Options{Seed: 15, Aggregate: true, GroupBy: true, Preset: Novice}, stats)
	if err != nil {
		t.Fatal(err)
	}
	grouped := 0
	for _, q := range s.Queries {
		if q.Agg == nil {
			t.Errorf("query %s lacks aggregation despite Aggregate", q.ID)
			continue
		}
		if q.Agg.Grouped {
			grouped++
			if q.Agg.GroupBy == q.Agg.Path {
				t.Errorf("group-by path equals aggregation path")
			}
		}
	}
	if grouped == 0 {
		t.Errorf("no grouped aggregations generated")
	}
}

func TestGenerateAggFraction(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(1500, 8))
	s, err := Generate(Options{Seed: 17, Aggregate: true, AggFraction: 0.5, Preset: Novice}, stats)
	if err != nil {
		t.Fatal(err)
	}
	with := 0
	for _, q := range s.Queries {
		if q.Agg != nil {
			with++
		}
	}
	if with == 0 || with == len(s.Queries) {
		t.Errorf("agg fraction 0.5 produced %d/%d aggregated queries", with, len(s.Queries))
	}
}

func TestGenerateAggFuncsRestricted(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(1500, 9))
	s, err := Generate(Options{Seed: 19, Aggregate: true, AggFuncs: []query.AggFunc{query.Count}, Preset: Novice}, stats)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range s.Queries {
		if q.Agg != nil && q.Agg.Func != query.Count {
			t.Errorf("aggregation %s not in restricted set", q.Agg)
		}
	}
}

func TestGenerateIncludePredicates(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(1500, 10))
	// Only two boolean attributes exist, so the duplicate-suppression list
	// caps how many distinct bool-eq predicates a session can hold: keep
	// the session short.
	s, err := Generate(Options{Seed: 21, IncludePredicates: []string{"bool-eq"}, Queries: 3}, stats)
	if err != nil {
		t.Fatal(err)
	}
	for kind := range s.PredicateCounts() {
		if kind != "bool-eq" {
			t.Errorf("include list violated: generated %s", kind)
		}
	}
}

func TestGenerateExcludePredicates(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(1500, 11))
	s, err := Generate(Options{Seed: 23, ExcludePredicates: []string{"exists", "isstring"}, Preset: Novice}, stats)
	if err != nil {
		t.Fatal(err)
	}
	counts := s.PredicateCounts()
	if counts["exists"] > 0 || counts["isstring"] > 0 {
		t.Errorf("exclude list violated: %v", counts)
	}
}

func TestFixedSchemaGeneratesNoExistencePredicates(t *testing.T) {
	// Reddit-style dataset: every attribute in every document (Fig. 8's
	// observation that the fixed schema yields no existence predicates).
	r := rand.New(rand.NewSource(12))
	docs := make([]jsonval.Value, 1000)
	for i := range docs {
		docs[i] = jsonval.ObjectValue(
			jsonval.Member{Key: "author", Value: jsonval.StringValue(fmt.Sprintf("u%02d", r.Intn(30)))},
			jsonval.Member{Key: "ups", Value: jsonval.IntValue(int64(r.Intn(1000)))},
			jsonval.Member{Key: "gilded", Value: jsonval.BoolValue(r.Intn(10) == 0)},
		)
	}
	stats := corpusStats(t, "reddit", docs)
	s, err := Generate(Options{Seed: 25, Preset: Novice}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if s.PredicateCounts()["exists"] != 0 {
		t.Errorf("existence predicates generated on fixed schema: %v", s.PredicateCounts())
	}
}

func TestWeightedPathsShiftReferencesUp(t *testing.T) {
	// Deeply nested dataset: weighted selection must reduce the mean
	// depth of referenced attributes (Table IV's shift).
	r := rand.New(rand.NewSource(13))
	docs := make([]jsonval.Value, 1200)
	for i := range docs {
		deep := jsonval.ObjectValue(
			jsonval.Member{Key: "d3", Value: jsonval.ObjectValue(
				jsonval.Member{Key: "d4a", Value: jsonval.IntValue(int64(r.Intn(50)))},
				jsonval.Member{Key: "d4b", Value: jsonval.StringValue(fmt.Sprintf("v%02d", r.Intn(20)))},
				jsonval.Member{Key: "d4c", Value: jsonval.BoolValue(r.Intn(2) == 0)},
			)},
		)
		docs[i] = jsonval.ObjectValue(
			jsonval.Member{Key: "top", Value: jsonval.IntValue(int64(r.Intn(100)))},
			jsonval.Member{Key: "l1", Value: jsonval.ObjectValue(
				jsonval.Member{Key: "l2", Value: deep},
			)},
		)
	}
	stats := corpusStats(t, "deep", docs)
	meanDepth := func(weighted bool) float64 {
		var total, count float64
		for seed := int64(0); seed < 8; seed++ {
			s, err := Generate(Options{Seed: seed, Preset: Novice, WeightedPaths: weighted}, stats)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range s.PathReferences() {
				total += float64(p.Depth())
				count++
			}
		}
		return total / count
	}
	w, u := meanDepth(true), meanDepth(false)
	if w >= u {
		t.Errorf("weighted mean depth %.2f not above unweighted %.2f in the hierarchy", w, u)
	}
}

func TestGenerateMultipleDatasets(t *testing.T) {
	a := corpusStats(t, "A", testCorpus(800, 14))
	b := corpusStats(t, "B", testCorpus(800, 15))
	s, err := Generate(Options{Seed: 27, Preset: Novice}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	roots := map[string]bool{}
	for _, n := range s.Nodes[1:] {
		if !n.IsInitial() {
			roots[n.Root] = true
		}
	}
	// With 20 queries and jump probability 0.3 both roots are hit with
	// overwhelming probability.
	if len(roots) < 2 {
		t.Logf("only one root explored (possible but unlikely); roots = %v", roots)
	}
	for _, q := range s.Queries {
		if q.Base != "A" && q.Base != "B" {
			t.Errorf("query base %q is not a root", q.Base)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(100, 16))
	if _, err := Generate(Options{Seed: 1}); err == nil {
		t.Errorf("no datasets accepted")
	}
	if _, err := Generate(Options{Seed: 1, MinSelectivity: 0.9, MaxSelectivity: 0.1}, stats); err == nil {
		t.Errorf("invalid selectivity range accepted")
	}
	// A dataset on which nothing can be generated: a single all-null
	// attribute present in every document.
	nullDocs := make([]jsonval.Value, 10)
	for i := range nullDocs {
		nullDocs[i] = jsonval.ObjectValue(jsonval.Member{Key: "x", Value: jsonval.NullValue()})
	}
	nullStats := corpusStats(t, "nulls", nullDocs)
	if _, err := Generate(Options{Seed: 1}, nullStats); err == nil {
		t.Errorf("ungenerable dataset accepted")
	}
}

func TestGenerateBackendError(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(100, 17))
	backend := SliceBackend{} // missing dataset
	if _, err := Generate(Options{Seed: 1, Backend: backend}, stats); err == nil {
		t.Errorf("backend error not propagated")
	}
}

func TestSessionReports(t *testing.T) {
	docs := testCorpus(2000, 18)
	stats := corpusStats(t, "base", docs)
	s, err := Generate(Options{Seed: 29, Preset: Novice, Aggregate: true, GroupBy: true}, stats)
	if err != nil {
		t.Fatal(err)
	}
	counts := s.PredicateCounts()
	var total int64
	for kind, c := range counts {
		if c <= 0 {
			t.Errorf("non-positive count for %s", kind)
		}
		total += c
	}
	if int(total) < len(s.Queries) {
		t.Errorf("fewer leaves (%d) than queries (%d)", total, len(s.Queries))
	}
	refs := s.PathReferences()
	if len(refs) == 0 {
		t.Fatalf("no path references")
	}
	depths := s.DepthDistribution()
	var sum int64
	for d, c := range depths {
		if d < 0 {
			t.Errorf("negative depth %d", d)
		}
		sum += c
	}
	if sum != int64(len(refs)) {
		t.Errorf("depth histogram sums to %d, references are %d", sum, len(refs))
	}
	dot := s.DOT()
	if !strings.Contains(dot, "digraph session") || !strings.Contains(dot, "->") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
}

func TestSliceBackend(t *testing.T) {
	docs := testCorpus(100, 19)
	b := SliceBackend{"d": docs}
	n, err := b.CountMatching("d", nil)
	if err != nil || n != 100 {
		t.Errorf("CountMatching(nil) = %d, %v", n, err)
	}
	n, err = b.CountMatching("d", query.Exists{Path: "/id"})
	if err != nil || n != 100 {
		t.Errorf("CountMatching(exists id) = %d, %v", n, err)
	}
	if _, err := b.CountMatching("nope", nil); err == nil {
		t.Errorf("missing dataset accepted")
	}
}

func TestGenerateTransforms(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(2000, 20))
	s, err := Generate(Options{
		Seed:              31,
		Preset:            Novice,
		Materialize:       true,
		Transforms:        true,
		TransformFraction: 1,
	}, stats)
	if err != nil {
		t.Fatal(err)
	}
	withTransform := 0
	for _, q := range s.Queries {
		if q.Transform != nil {
			withTransform++
			if len(q.Transform.Ops) == 0 {
				t.Errorf("%s has empty transform", q.ID)
			}
		}
		if q.Store == "" {
			t.Errorf("%s not materialised despite Transforms", q.ID)
		}
	}
	if withTransform == 0 {
		t.Fatalf("no transforms generated at fraction 1")
	}
	// A later query must not filter on an attribute a strictly earlier
	// transform removed or renamed away along its own lineage.
	removedBy := map[*Node]map[jsonval.Path]bool{}
	for _, n := range s.Nodes {
		gone := map[jsonval.Path]bool{}
		if n.Parent != nil {
			for p := range removedBy[n.Parent] {
				gone[p] = true
			}
		}
		if n.Query != nil && n.Query.Transform != nil {
			for _, op := range n.Query.Transform.Ops {
				if op.Kind != query.TransformAdd {
					gone[op.Path] = true
				}
			}
		}
		removedBy[n] = gone
		if n.Parent == nil || n.Query == nil {
			continue
		}
		for _, leaf := range query.Leaves(n.NewPred) {
			if p, ok := query.LeafPath(leaf); ok && removedBy[n.Parent][p] {
				t.Errorf("%s filters on %s, which an ancestor transformed away", n.Query.ID, p)
			}
		}
	}
}

func TestGenerateTransformOptionValidation(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(200, 21))
	if _, err := Generate(Options{Seed: 1, Transforms: true}, stats); err == nil {
		t.Errorf("transforms without materialize accepted")
	}
	docs := testCorpus(200, 22)
	if _, err := Generate(Options{Seed: 1, Transforms: true, Materialize: true,
		Backend: SliceBackend{"base": docs}}, stats); err == nil {
		t.Errorf("transforms with backend accepted")
	}
	if _, err := Generate(Options{Seed: 1, Transforms: true, Materialize: true, TransformFraction: 2}, stats); err == nil {
		t.Errorf("out-of-range transform fraction accepted")
	}
}

func TestApplyTransformToStats(t *testing.T) {
	stats := corpusStats(t, "base", testCorpus(1000, 23))
	tr := &query.Transform{Ops: []query.TransformOp{
		{Kind: query.TransformRename, Path: "/user", NewName: "account"},
		{Kind: query.TransformRemove, Path: "/tags"},
		{Kind: query.TransformAdd, Path: "/tag", Value: jsonval.StringValue("x")},
	}}
	out := applyTransformToStats(stats, tr)
	if _, ok := out.Paths[jsonval.Path("/user")]; ok {
		t.Errorf("renamed subtree root survived")
	}
	if _, ok := out.Paths[jsonval.Path("/user/name")]; ok {
		t.Errorf("renamed subtree child survived")
	}
	if ps := out.Paths[jsonval.Path("/account/name")]; ps == nil || ps.Str == nil {
		t.Errorf("moved child missing: %+v", ps)
	}
	if _, ok := out.Paths[jsonval.Path("/tags")]; ok {
		t.Errorf("removed path survived")
	}
	added := out.Paths[jsonval.Path("/tag")]
	if added == nil || added.Count != out.DocCount || added.Str == nil {
		t.Errorf("added constant stats = %+v", added)
	}
	// The original stats are untouched.
	if _, ok := stats.Paths[jsonval.Path("/user")]; !ok {
		t.Errorf("source stats mutated")
	}
}
