package core

import (
	"fmt"

	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// generateTransform builds a small transformation stage over the dataset's
// current attribute namespace: renames, removals and constant additions,
// the operations the paper's future-work section proposes. idx keeps the
// generated names unique within the session.
func (g *generator) generateTransform(stats *jsonstats.Dataset, idx int) *query.Transform {
	t := &query.Transform{}
	ops := 1 + g.rng.Intn(2)
	for i := 0; i < ops; i++ {
		switch g.rng.Intn(3) {
		case 0: // rename
			path, _, ok := g.pickPath(stats)
			if !ok {
				continue
			}
			t.Ops = append(t.Ops, query.TransformOp{
				Kind:    query.TransformRename,
				Path:    path,
				NewName: fmt.Sprintf("%s_r%d", path.Leaf(), idx),
			})
		case 1: // remove
			path, _, ok := g.pickPath(stats)
			if !ok {
				continue
			}
			t.Ops = append(t.Ops, query.TransformOp{Kind: query.TransformRemove, Path: path})
		default: // add a constant attribute at the root
			var v jsonval.Value
			if g.rng.Intn(2) == 0 {
				v = jsonval.StringValue(fmt.Sprintf("betze_%d", g.rng.Intn(1000)))
			} else {
				v = jsonval.IntValue(int64(g.rng.Intn(1000)))
			}
			t.Ops = append(t.Ops, query.TransformOp{
				Kind:  query.TransformAdd,
				Path:  jsonval.RootPath.Child(fmt.Sprintf("betze_tag_%d_%d", idx, i)),
				Value: v,
			})
		}
	}
	if len(t.Ops) == 0 {
		return nil
	}
	return t
}

// applyTransformToStats derives the statistics of a transformed dataset:
// renamed subtrees move, removed subtrees disappear, added constants appear
// in every document. Parent object child-count ranges become approximate,
// which is acceptable for the size/selectivity estimation they feed.
func applyTransformToStats(stats *jsonstats.Dataset, t *query.Transform) *jsonstats.Dataset {
	out := stats.Scale(stats.Name, 1) // deep-ish copy with identical counts
	for _, op := range t.Ops {
		switch op.Kind {
		case query.TransformRename:
			target := op.Path.Parent().Child(op.NewName)
			moveSubtree(out, op.Path, target)
		case query.TransformRemove:
			removeSubtree(out, op.Path)
		case query.TransformAdd:
			addConstant(out, op.Path, op.Value)
		}
	}
	return out
}

func moveSubtree(d *jsonstats.Dataset, from, to jsonval.Path) {
	moved := make(map[jsonval.Path]*jsonstats.PathStats)
	for p, ps := range d.Paths {
		if p == from || from.IsAncestorOf(p) {
			np := to + p[len(from):]
			moved[np] = ps
			delete(d.Paths, p)
		}
	}
	for p, ps := range moved {
		d.Paths[p] = ps
	}
}

func removeSubtree(d *jsonstats.Dataset, path jsonval.Path) {
	for p := range d.Paths {
		if p == path || path.IsAncestorOf(p) {
			delete(d.Paths, p)
		}
	}
}

func addConstant(d *jsonstats.Dataset, path jsonval.Path, v jsonval.Value) {
	ps := &jsonstats.PathStats{Count: d.DocCount}
	switch v.Kind() {
	case jsonval.Null:
		ps.NullCount = d.DocCount
	case jsonval.Bool:
		ps.Bool = &jsonstats.BoolStats{Count: d.DocCount}
		if v.Bool() {
			ps.Bool.TrueCount = d.DocCount
		}
	case jsonval.Int:
		ps.Int = &jsonstats.IntStats{Count: d.DocCount, Min: v.Int(), Max: v.Int()}
	case jsonval.Float:
		ps.Float = &jsonstats.FloatStats{Count: d.DocCount, Min: v.Float(), Max: v.Float()}
	case jsonval.String:
		s := v.Str()
		pre := s
		if len(pre) > jsonstats.DefaultPrefixLen {
			pre = pre[:jsonstats.DefaultPrefixLen]
		}
		ps.Str = &jsonstats.StringStats{
			Count:    d.DocCount,
			Prefixes: map[string]int64{pre: d.DocCount},
			Values:   map[string]int64{s: d.DocCount},
			MinLen:   len(s),
			MaxLen:   len(s),
		}
	case jsonval.Object:
		ps.Obj = &jsonstats.ObjectStats{Count: d.DocCount, MinChildren: v.Len(), MaxChildren: v.Len()}
	case jsonval.Array:
		ps.Arr = &jsonstats.ArrayStats{Count: d.DocCount, MinSize: v.Len(), MaxSize: v.Len()}
	}
	d.Paths[path] = ps
}
