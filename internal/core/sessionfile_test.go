package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSessionFileRoundTrip(t *testing.T) {
	docs := testCorpus(1200, 99)
	stats := corpusStats(t, "base", docs)
	s, err := Generate(Options{Seed: 3, Preset: Novice, Aggregate: true, GroupBy: true}, stats)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.json")
	if err := WriteSessionFile(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSessionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Preset != s.Preset || back.Seed != s.Seed {
		t.Errorf("header mismatch: %+v", back)
	}
	if len(back.Queries) != len(s.Queries) {
		t.Fatalf("query count %d != %d", len(back.Queries), len(s.Queries))
	}
	for i := range back.Queries {
		if back.Queries[i].String() != s.Queries[i].String() {
			t.Errorf("query %d differs:\n got %s\nwant %s", i, back.Queries[i], s.Queries[i])
		}
	}
	if len(back.Nodes) != len(s.Nodes) || len(back.Steps) != len(s.Steps) {
		t.Errorf("graph skeleton lost: %d/%d nodes, %d/%d steps",
			len(back.Nodes), len(s.Nodes), len(back.Steps), len(s.Steps))
	}
	for i, n := range back.Nodes {
		wantParent := -1
		if s.Nodes[i].Parent != nil {
			wantParent = s.Nodes[i].Parent.ID
		}
		if n.Parent != wantParent || n.Name != s.Nodes[i].Name || n.Count != s.Nodes[i].Count {
			t.Errorf("node %d mismatch: %+v", i, n)
		}
	}
}

func TestReadSessionFileErrors(t *testing.T) {
	if _, err := ReadSessionFile("/does/not/exist.json"); err == nil {
		t.Errorf("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFileHelper(bad, "{broken"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSessionFile(bad); err == nil {
		t.Errorf("malformed file accepted")
	}
}

func writeFileHelper(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
