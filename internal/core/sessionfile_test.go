package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSessionFileRoundTrip(t *testing.T) {
	docs := testCorpus(1200, 99)
	stats := corpusStats(t, "base", docs)
	s, err := Generate(Options{Seed: 3, Preset: Novice, Aggregate: true, GroupBy: true}, stats)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.json")
	if err := WriteSessionFile(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSessionFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Preset != s.Preset || back.Seed != s.Seed {
		t.Errorf("header mismatch: %+v", back)
	}
	if len(back.Queries) != len(s.Queries) {
		t.Fatalf("query count %d != %d", len(back.Queries), len(s.Queries))
	}
	for i := range back.Queries {
		if back.Queries[i].String() != s.Queries[i].String() {
			t.Errorf("query %d differs:\n got %s\nwant %s", i, back.Queries[i], s.Queries[i])
		}
	}
	if len(back.Nodes) != len(s.Nodes) || len(back.Steps) != len(s.Steps) {
		t.Errorf("graph skeleton lost: %d/%d nodes, %d/%d steps",
			len(back.Nodes), len(s.Nodes), len(back.Steps), len(s.Steps))
	}
	for i, n := range back.Nodes {
		wantParent := -1
		if s.Nodes[i].Parent != nil {
			wantParent = s.Nodes[i].Parent.ID
		}
		if n.Parent != wantParent || n.Name != s.Nodes[i].Name || n.Count != s.Nodes[i].Count {
			t.Errorf("node %d mismatch: %+v", i, n)
		}
	}
}

func TestReadSessionFileErrors(t *testing.T) {
	if _, err := ReadSessionFile("/does/not/exist.json"); err == nil {
		t.Errorf("missing file accepted")
	}
	if errors.Is(mustReadErr(t, "/does/not/exist.json"), ErrCorruptSession) {
		t.Errorf("missing file misreported as corruption")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFileHelper(bad, "{broken"); err != nil {
		t.Fatal(err)
	}
	if err := mustReadErr(t, bad); !errors.Is(err, ErrCorruptSession) {
		t.Errorf("malformed file error %v, want ErrCorruptSession", err)
	}
}

// TestReadSessionFileCorruption truncates a valid session file at every
// byte offset and flips bits through it: reads must never panic, and every
// rejection must carry the ErrCorruptSession sentinel. Offsets that happen
// to decode (short valid JSON prefixes do not exist for objects, but bit
// flips inside string values can survive) must still validate structurally.
func TestReadSessionFileCorruption(t *testing.T) {
	docs := testCorpus(400, 7)
	stats := corpusStats(t, "base", docs)
	s, err := Generate(Options{Seed: 11, Preset: Novice}, stats)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.json")
	if err := WriteSessionFile(path, s); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(t.TempDir(), "mut.json")
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(target, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Cutting only trailing whitespace leaves a complete document; any
		// other cut must be rejected with the corruption sentinel.
		if _, err := ReadSessionFile(target); err == nil {
			if len(bytes.TrimSpace(full[cut:])) != 0 {
				t.Fatalf("truncation at %d of %d accepted", cut, len(full))
			}
		} else if !errors.Is(err, ErrCorruptSession) {
			t.Fatalf("truncation at %d: %v, want ErrCorruptSession", cut, err)
		}
	}
	// Bit flips: step through the file (every byte would be slow at this
	// size); any accepted mutation must still be a structurally valid file.
	for i := 0; i < len(full); i += 7 {
		mutated := append([]byte(nil), full...)
		mutated[i] ^= 0x20
		if err := os.WriteFile(target, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := ReadSessionFile(target)
		if err != nil {
			if !errors.Is(err, ErrCorruptSession) {
				t.Fatalf("flip@%d: %v, want ErrCorruptSession", i, err)
			}
			continue
		}
		if verr := f.validate(); verr != nil {
			t.Fatalf("flip@%d: accepted file fails validation: %v", i, verr)
		}
	}
}

// TestSessionFileValidate pins the structural rules a decoded-but-broken
// file must trip.
func TestSessionFileValidate(t *testing.T) {
	cases := []struct {
		label string
		json  string
	}{
		{"null query", `{"queries":[null]}`},
		{"query without id", `{"queries":[{"id":""}]}`},
		{"duplicate node id", `{"nodes":[{"id":1,"parent":-1},{"id":1,"parent":-1}]}`},
		{"missing parent", `{"nodes":[{"id":1,"parent":7}]}`},
	}
	dir := t.TempDir()
	for _, c := range cases {
		path := filepath.Join(dir, "case.json")
		if err := writeFileHelper(path, c.json); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSessionFile(path); !errors.Is(err, ErrCorruptSession) {
			t.Errorf("%s: %v, want ErrCorruptSession", c.label, err)
		}
	}
}

func mustReadErr(t *testing.T, path string) error {
	t.Helper()
	_, err := ReadSessionFile(path)
	if err == nil {
		t.Fatalf("ReadSessionFile(%s) unexpectedly succeeded", path)
	}
	return err
}

func writeFileHelper(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
