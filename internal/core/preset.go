// Package core implements the paper's primary contribution: the random
// explorer model (§III) and the query generator built on it (§IV-B).
//
// A simulated data scientist starts from one of the initial datasets and, at
// every step, issues a query that derives a new dataset; the explorer then
// returns to the parent dataset with probability α, jumps to a uniformly
// random previously created dataset with probability β, and otherwise
// continues exploring the dataset it just created. The α/β/n presets of
// Table I model novice, intermediate and expert users.
package core

import "fmt"

// Preset is a named random-explorer configuration (Table I of the paper).
type Preset struct {
	// Name identifies the preset ("novice", "intermediate", "expert").
	Name string
	// Alpha is the probability of going back to the parent dataset.
	Alpha float64
	// Beta is the probability of a random jump to any created dataset.
	Beta float64
	// Queries is the number of queries generated per session.
	Queries int
}

// The default user configurations of Table I.
var (
	Novice       = Preset{Name: "novice", Alpha: 0.5, Beta: 0.3, Queries: 20}
	Intermediate = Preset{Name: "intermediate", Alpha: 0.3, Beta: 0.2, Queries: 10}
	Expert       = Preset{Name: "expert", Alpha: 0.2, Beta: 0.05, Queries: 5}
)

// Presets lists the built-in user configurations in paper order.
func Presets() []Preset { return []Preset{Novice, Intermediate, Expert} }

// PresetByName resolves a preset name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("core: unknown preset %q (want novice, intermediate or expert)", name)
}

// Validate checks that the probabilities form a valid explorer model.
func (p Preset) Validate() error {
	if p.Alpha < 0 || p.Beta < 0 || p.Alpha+p.Beta > 1 {
		return fmt.Errorf("core: preset %q: alpha=%g beta=%g must be non-negative with alpha+beta <= 1", p.Name, p.Alpha, p.Beta)
	}
	if p.Queries < 1 {
		return fmt.Errorf("core: preset %q: queries per session must be positive, got %d", p.Name, p.Queries)
	}
	return nil
}
