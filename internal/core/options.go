package core

import (
	"fmt"

	"github.com/joda-explore/betze/internal/query"
)

// Default generator parameters (§IV-B and §IV-C of the paper).
const (
	DefaultMinSelectivity = 0.2
	DefaultMaxSelectivity = 0.9
	// DefaultMaxAttempts bounds how many candidate predicates are tried
	// per query before the closest-so-far is accepted.
	DefaultMaxAttempts = 16
	// DefaultMaxAugment bounds how many AND/OR conditions are added while
	// steering a predicate into the target selectivity range.
	DefaultMaxAugment = 4
)

// Options configures one generator run (one session). The zero value plus a
// seed is the paper's default configuration: intermediate user, selectivity
// range [0.2, 0.9], composed (non-materialised) queries, no aggregation.
type Options struct {
	// Preset selects the explorer configuration; zero means Intermediate
	// (the paper's default).
	Preset Preset
	// Alpha, Beta and Queries overwrite parts of the preset when non-nil
	// / positive (§IV-C "each of these values can also be set explicitly
	// to either overwrite a part of a preset or create a unique
	// configuration").
	Alpha   *float64
	Beta    *float64
	Queries int

	// Seed makes generator runs repeatable (§IV-C).
	Seed int64

	// MinSelectivity and MaxSelectivity bound each query's selectivity
	// relative to its base dataset; zero values mean the defaults.
	MinSelectivity float64
	MaxSelectivity float64

	// Aggregate enables aggregation queries; AggFraction is the fraction
	// of queries that aggregate (zero means all, the paper's default).
	Aggregate   bool
	AggFraction float64
	// AggFuncs restricts the aggregation functions; empty means all.
	AggFuncs []query.AggFunc
	// GroupBy additionally groups aggregations by a random suitable
	// attribute when possible.
	GroupBy bool

	// Materialize stores every query result in an intermediate dataset
	// instead of composing predicates over the base dataset (§IV-C
	// "Materializing query results"). Incompatible with Aggregate, as the
	// paper notes: an aggregated result cannot be filtered further.
	Materialize bool

	// Transforms adds attribute rename/remove/add stages to generated
	// queries — the structure-changing workloads of the paper's
	// future-work section. Transforms require Materialize (a transformed
	// result cannot be re-derived by predicate composition) and run
	// without a verification Backend, since ancestors' transformations
	// invalidate root-relative predicate evaluation.
	Transforms bool
	// TransformFraction is the fraction of queries that transform; zero
	// means the default of 1/3.
	TransformFraction float64

	// WeightedPaths biases attribute choice towards the document root with
	// weight inversely correlated to path length (§IV-C "Weighted paths").
	WeightedPaths bool

	// IncludePredicates/ExcludePredicates restrict the predicate factories
	// by name (§IV-C: "the set of permissible predicates can be set via
	// exclusion or inclusion lists"). Include wins when both are set.
	IncludePredicates []string
	ExcludePredicates []string

	// Backend verifies generated selectivities against the actual data
	// (§IV-B). When nil, the generator falls back to scaling statistics,
	// which the paper marks as "currently not recommended".
	Backend Backend

	// MaxAttempts and MaxAugment bound the per-query search; zero values
	// mean the defaults.
	MaxAttempts int
	MaxAugment  int
}

// withDefaults resolves zero values to the paper's defaults.
func (o Options) withDefaults() Options {
	if o.Preset.Name == "" {
		o.Preset = Intermediate
	}
	if o.Alpha != nil {
		o.Preset.Alpha = *o.Alpha
	}
	if o.Beta != nil {
		o.Preset.Beta = *o.Beta
	}
	if o.Queries > 0 {
		o.Preset.Queries = o.Queries
	}
	if o.MinSelectivity == 0 {
		o.MinSelectivity = DefaultMinSelectivity
	}
	if o.MaxSelectivity == 0 {
		o.MaxSelectivity = DefaultMaxSelectivity
	}
	if o.AggFraction == 0 {
		o.AggFraction = 1
	}
	if len(o.AggFuncs) == 0 {
		o.AggFuncs = []query.AggFunc{query.Count, query.Sum}
	}
	if o.TransformFraction == 0 {
		o.TransformFraction = 1.0 / 3
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.MaxAugment <= 0 {
		o.MaxAugment = DefaultMaxAugment
	}
	return o
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	resolved := o.withDefaults()
	if err := resolved.Preset.Validate(); err != nil {
		return err
	}
	if resolved.MinSelectivity <= 0 || resolved.MaxSelectivity > 1 || resolved.MinSelectivity >= resolved.MaxSelectivity {
		return fmt.Errorf("core: selectivity range [%g, %g] invalid: need 0 < min < max <= 1",
			resolved.MinSelectivity, resolved.MaxSelectivity)
	}
	if o.Aggregate && o.Materialize {
		return fmt.Errorf("core: aggregation cannot be combined with materialised intermediate datasets: an aggregated result cannot be filtered further")
	}
	if o.Transforms {
		if !o.Materialize {
			return fmt.Errorf("core: transforms require Materialize: a transformed result cannot be re-derived by composing predicates over the base dataset")
		}
		if o.Backend != nil {
			return fmt.Errorf("core: transforms cannot use a verification backend: transformed ancestors invalidate root-relative predicate evaluation")
		}
	}
	if o.TransformFraction < 0 || o.TransformFraction > 1 {
		return fmt.Errorf("core: transform fraction %g outside [0, 1]", o.TransformFraction)
	}
	if o.AggFraction < 0 || o.AggFraction > 1 {
		return fmt.Errorf("core: aggregation fraction %g outside [0, 1]", o.AggFraction)
	}
	for _, name := range append(append([]string{}, o.IncludePredicates...), o.ExcludePredicates...) {
		if !knownFactory(name) {
			return fmt.Errorf("core: unknown predicate factory %q (known: %v)", name, FactoryNames())
		}
	}
	return nil
}

// Float64 returns a pointer to f, a convenience for the override fields.
func Float64(f float64) *float64 { return &f }
