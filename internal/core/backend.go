package core

import (
	"fmt"

	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// Backend is what the generator needs from a data processor to verify the
// selectivity of generated queries (§IV-B: "The generator will then execute
// each generated query in the data processor and calculate the actual
// selectivity"). The paper uses JODA; internal/engine/jodasim implements
// this interface, and any engine can serve.
type Backend interface {
	// CountMatching returns the number of documents of the named base
	// dataset that satisfy pred; a nil predicate counts all documents.
	CountMatching(base string, pred query.Predicate) (int64, error)
}

// SliceBackend is a trivial Backend over in-memory document slices, useful
// for tests and for generating against small samples without an engine.
type SliceBackend map[string][]jsonval.Value

// CountMatching implements Backend by scanning the slice.
func (b SliceBackend) CountMatching(base string, pred query.Predicate) (int64, error) {
	docs, ok := b[base]
	if !ok {
		return 0, fmt.Errorf("core: backend has no dataset %q", base)
	}
	if pred == nil {
		return int64(len(docs)), nil
	}
	var n int64
	for _, d := range docs {
		if pred.Eval(d) {
			n++
		}
	}
	return n, nil
}
