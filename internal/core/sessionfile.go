package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/joda-explore/betze/internal/query"
)

// SessionFile is the shareable on-disk form of a generated session: the
// query sequence plus the dependency-graph skeleton. Together with the seed
// and the means to acquire the dataset, it lets a second party validate
// results or generate queries for another system (§IV-C).
type SessionFile struct {
	Preset  Preset         `json:"preset"`
	Seed    int64          `json:"seed"`
	Queries []*query.Query `json:"queries"`
	Nodes   []NodeInfo     `json:"nodes"`
	Steps   []Step         `json:"steps"`
}

// NodeInfo is the serialisable skeleton of a graph node.
type NodeInfo struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Root string `json:"root"`
	// Parent is the parent node ID, -1 for initial datasets.
	Parent int `json:"parent"`
	// Count is the (verified or estimated) document count.
	Count int64 `json:"count"`
	// Verified marks backend-verified counts.
	Verified bool `json:"verified"`
}

// File converts the session into its shareable form.
func (s *Session) File() *SessionFile {
	f := &SessionFile{
		Preset:  s.Preset,
		Seed:    s.Seed,
		Queries: s.Queries,
		Steps:   s.Steps,
	}
	for _, n := range s.Nodes {
		parent := -1
		if n.Parent != nil {
			parent = n.Parent.ID
		}
		f.Nodes = append(f.Nodes, NodeInfo{
			ID: n.ID, Name: n.Name, Root: n.Root,
			Parent: parent, Count: n.Count, Verified: n.Verified,
		})
	}
	return f
}

// WriteTo streams the session file as indented JSON.
func (f *SessionFile) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("core: encoding session: %w", err)
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// WriteSessionFile stores the session under path.
func WriteSessionFile(path string, s *Session) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if _, err := s.File().WriteTo(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ReadSessionFile loads a session file written by WriteSessionFile.
func ReadSessionFile(path string) (*SessionFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var f SessionFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("core: decoding session file %s: %w", path, err)
	}
	return &f, nil
}
