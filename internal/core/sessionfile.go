package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/joda-explore/betze/internal/fsatomic"
	"github.com/joda-explore/betze/internal/query"
)

// SessionFile is the shareable on-disk form of a generated session: the
// query sequence plus the dependency-graph skeleton. Together with the seed
// and the means to acquire the dataset, it lets a second party validate
// results or generate queries for another system (§IV-C).
type SessionFile struct {
	Preset  Preset         `json:"preset"`
	Seed    int64          `json:"seed"`
	Queries []*query.Query `json:"queries"`
	Nodes   []NodeInfo     `json:"nodes"`
	Steps   []Step         `json:"steps"`
}

// NodeInfo is the serialisable skeleton of a graph node.
type NodeInfo struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Root string `json:"root"`
	// Parent is the parent node ID, -1 for initial datasets.
	Parent int `json:"parent"`
	// Count is the (verified or estimated) document count.
	Count int64 `json:"count"`
	// Verified marks backend-verified counts.
	Verified bool `json:"verified"`
}

// File converts the session into its shareable form.
func (s *Session) File() *SessionFile {
	f := &SessionFile{
		Preset:  s.Preset,
		Seed:    s.Seed,
		Queries: s.Queries,
		Steps:   s.Steps,
	}
	for _, n := range s.Nodes {
		parent := -1
		if n.Parent != nil {
			parent = n.Parent.ID
		}
		f.Nodes = append(f.Nodes, NodeInfo{
			ID: n.ID, Name: n.Name, Root: n.Root,
			Parent: parent, Count: n.Count, Verified: n.Verified,
		})
	}
	return f
}

// WriteTo streams the session file as indented JSON.
func (f *SessionFile) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("core: encoding session: %w", err)
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ErrCorruptSession reports a session file whose content is truncated,
// garbage, or structurally inconsistent. Callers match it with errors.Is to
// distinguish corruption from I/O failures.
var ErrCorruptSession = errors.New("core: corrupt session file")

// WriteSessionFile stores the session under path, published atomically — a
// crash mid-write leaves the previous file or none, never a torn one.
func WriteSessionFile(path string, s *Session) error {
	out, err := fsatomic.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer out.Close()
	if _, err := s.File().WriteTo(out); err != nil {
		return err
	}
	if err := out.Commit(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// ReadSessionFile loads a session file written by WriteSessionFile. A file
// that does not decode, or decodes into an inconsistent session, wraps
// ErrCorruptSession.
func ReadSessionFile(path string) (*SessionFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var f SessionFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%w: decoding %s: %v", ErrCorruptSession, path, err)
	}
	if err := f.validate(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptSession, path, err)
	}
	return &f, nil
}

// validate rejects structurally inconsistent session files: a truncated or
// hand-edited file can decode cleanly yet break every consumer that walks
// the query list or the dependency graph.
func (f *SessionFile) validate() error {
	for i, q := range f.Queries {
		if q == nil {
			return fmt.Errorf("query %d is null", i)
		}
		if q.ID == "" {
			return fmt.Errorf("query %d has no id", i)
		}
	}
	ids := make(map[int]bool, len(f.Nodes))
	for i, n := range f.Nodes {
		if ids[n.ID] {
			return fmt.Errorf("node %d duplicates id %d", i, n.ID)
		}
		ids[n.ID] = true
	}
	for i, n := range f.Nodes {
		if n.Parent != -1 && !ids[n.Parent] {
			return fmt.Errorf("node %d references missing parent %d", i, n.Parent)
		}
	}
	return nil
}
