package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/joda-explore/betze/internal/query"
)

// TestSessionInvariantsQuick checks the structural invariants of generated
// sessions across random explorer configurations:
//   - node/step indices are consistent and parents precede children,
//   - in composed mode, every node's count equals the number of base
//     documents matching its composed predicate (backend truth),
//   - document counts never grow along an edge (filtering only removes).
func TestSessionInvariantsQuick(t *testing.T) {
	docs := testCorpus(1200, 77)
	stats := corpusStats(t, "base", docs)
	backend := SliceBackend{"base": docs}

	cfg := &quick.Config{MaxCount: 25, Values: func(vs []reflect.Value, r *rand.Rand) {
		alpha := float64(r.Intn(7)) / 10
		beta := float64(r.Intn(10-int(alpha*10))) / 10
		vs[0] = reflect.ValueOf(Options{
			Seed:    r.Int63(),
			Alpha:   Float64(alpha),
			Beta:    Float64(beta),
			Queries: 1 + r.Intn(12),
			Backend: backend,
		})
	}}
	prop := func(opts Options) bool {
		s, err := Generate(opts, stats)
		if err != nil {
			t.Logf("Generate: %v", err)
			return false
		}
		if len(s.Nodes) != 1+len(s.Queries) {
			t.Logf("nodes %d, queries %d", len(s.Nodes), len(s.Queries))
			return false
		}
		for i, n := range s.Nodes {
			if n.ID != i {
				return false
			}
			if n.Parent != nil {
				if n.Parent.ID >= n.ID {
					t.Logf("child %d precedes parent %d", n.ID, n.Parent.ID)
					return false
				}
				if n.Count > n.Parent.Count {
					t.Logf("node %s grew: %d > parent %d", n.Name, n.Count, n.Parent.Count)
					return false
				}
				matched, err := backend.CountMatching("base", n.Pred)
				if err != nil || matched != n.Count {
					t.Logf("node %s count %d, backend %d (%v)", n.Name, n.Count, matched, err)
					return false
				}
			}
		}
		for _, st := range s.Steps {
			if st.From < 0 || st.From >= len(s.Nodes) || st.To < 0 || st.To >= len(s.Nodes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestComposedFilterSemanticsQuick: executing a node's emitted query over
// the base documents must select exactly the node's dataset, i.e. the
// composed filter is semantically equal to filtering step by step along the
// lineage.
func TestComposedFilterSemanticsQuick(t *testing.T) {
	docs := testCorpus(800, 78)
	stats := corpusStats(t, "base", docs)
	cfg := &quick.Config{MaxCount: 15, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(r.Int63())
	}}
	prop := func(seed int64) bool {
		s, err := Generate(Options{Seed: seed, Queries: 8}, stats)
		if err != nil {
			t.Logf("Generate: %v", err)
			return false
		}
		for _, n := range s.Nodes[1:] {
			// Step-by-step filtering along the lineage.
			var chain []query.Predicate
			for cur := n; cur.Parent != nil; cur = cur.Parent {
				chain = append(chain, cur.NewPred)
			}
			for _, d := range docs {
				stepwise := true
				for i := len(chain) - 1; i >= 0; i-- {
					if !chain[i].Eval(d) {
						stepwise = false
						break
					}
				}
				if composed := n.Pred.Eval(d); composed != stepwise {
					t.Logf("composed filter diverges for %s on %s", n.Name, d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
