package core

import (
	"bytes"
	"testing"

	"github.com/joda-explore/betze/internal/engine/jodasim"
)

// The seed-determinism regression: the shareability argument of §IV-C only
// holds if the same seed and options reproduce the session file bit for bit.
// Unlike TestGenerateDeterministicForSeed (which compares query strings),
// this covers the full serialised form — node counts, verification flags,
// step edges — across every generator feature, including the backend-verified
// path whose document counts come from actually executing queries.
func TestSessionFileByteIdenticalForSeed(t *testing.T) {
	docs := testCorpus(1500, 3)

	variants := map[string]Options{
		"default":     {Seed: 77},
		"novice":      {Seed: 77, Preset: Novice},
		"aggregate":   {Seed: 77, Aggregate: true, GroupBy: true},
		"materialize": {Seed: 77, Materialize: true},
		"weighted":    {Seed: 77, WeightedPaths: true},
		"transforms":  {Seed: 77, Transforms: true, Materialize: true},
	}
	for name, opts := range variants {
		t.Run(name, func(t *testing.T) {
			render := func() []byte {
				// Recompute the statistics each run too: analysis must be
				// just as repeatable as generation.
				stats := corpusStats(t, "base", docs)
				o := opts
				if name == "default" || name == "materialize" {
					// Exercise the backend-verified path on two variants.
					backend := jodasim.New(jodasim.Options{Threads: 2})
					defer backend.Close()
					backend.ImportValues("base", docs)
					o.Backend = backend
				}
				s, err := Generate(o, stats)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := s.File().WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			a, b := render(), render()
			if !bytes.Equal(a, b) {
				t.Errorf("same seed+options produced different session files:\n--- first ---\n%.600s\n--- second ---\n%.600s", a, b)
			}
			if len(a) == 0 || a[0] != '{' {
				t.Errorf("session file does not look like JSON: %.80s", a)
			}
		})
	}
}
