package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// errNoPredicate signals that no predicate can be generated on the current
// dataset; the explorer then random-jumps elsewhere (§IV-B: "If no paths
// remain, another dataset is chosen through a random jump").
var errNoPredicate = errors.New("core: no predicate can be generated on this dataset")

// Generate runs the random explorer once and returns the generated session.
// Each supplied dataset summary becomes an initial dataset of the graph.
func Generate(opts Options, datasets ...*jsonstats.Dataset) (*Session, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(datasets) == 0 {
		return nil, errors.New("core: at least one analyzed dataset is required")
	}
	resolved := opts.withDefaults()
	g := &generator{
		opts:      resolved,
		rng:       rand.New(rand.NewSource(resolved.Seed)),
		factories: filterFactories(resolved.IncludePredicates, resolved.ExcludePredicates),
		exclude:   make(map[string]bool),
		session: &Session{
			Preset: resolved.Preset,
			Seed:   resolved.Seed,
		},
	}
	if len(g.factories) == 0 {
		return nil, errors.New("core: predicate include/exclude lists leave no factories")
	}
	for _, ds := range datasets {
		node := &Node{
			ID:    len(g.session.Nodes),
			Name:  ds.Name,
			Root:  ds.Name,
			Count: ds.DocCount,
			Stats: ds,
		}
		node.Verified = true // initial counts come from the analyzer
		g.session.Nodes = append(g.session.Nodes, node)
	}
	if err := g.run(); err != nil {
		return nil, err
	}
	return g.session, nil
}

type generator struct {
	opts      Options
	rng       *rand.Rand
	factories []Factory
	exclude   map[string]bool
	session   *Session
}

func (g *generator) run() error {
	current := g.session.Nodes[g.rng.Intn(len(g.session.Nodes))]
	for i := 1; i <= g.opts.Preset.Queries; i++ {
		node, err := g.generateStep(current, i)
		// Forced random jumps when the current dataset is exhausted or
		// empty; only when repeated jumps find no generatable dataset is
		// the session truly stuck.
		for tries := 0; errors.Is(err, errNoPredicate) && tries < 2*len(g.session.Nodes); tries++ {
			jumped, jerr := g.forcedJump(current, i)
			if jerr != nil {
				return fmt.Errorf("core: query %d: %w", i, jerr)
			}
			current = jumped
			node, err = g.generateStep(current, i)
		}
		if err != nil {
			return fmt.Errorf("core: query %d: %w", i, err)
		}
		g.session.Nodes = append(g.session.Nodes, node)
		g.session.Queries = append(g.session.Queries, node.Query)
		g.session.Steps = append(g.session.Steps, Step{Kind: StepExplore, From: current.ID, To: node.ID})

		// The explorer now stands on the new dataset and decides where to
		// continue (§III): back to the parent with probability alpha, a
		// random jump with probability beta, otherwise onwards.
		r := g.rng.Float64()
		switch {
		case r < g.opts.Preset.Alpha:
			parent := node.Parent
			if parent != nil {
				g.session.Steps = append(g.session.Steps, Step{Kind: StepBack, From: node.ID, To: parent.ID})
				current = parent
			} else {
				current = node
			}
		case r < g.opts.Preset.Alpha+g.opts.Preset.Beta:
			target := g.session.Nodes[g.rng.Intn(len(g.session.Nodes))]
			g.session.Steps = append(g.session.Steps, Step{Kind: StepJump, From: node.ID, To: target.ID})
			current = target
		default:
			current = node
		}
	}
	return nil
}

// forcedJump moves to a random other dataset after predicate generation
// failed on current.
func (g *generator) forcedJump(current *Node, queryIdx int) (*Node, error) {
	candidates := make([]*Node, 0, len(g.session.Nodes))
	for _, n := range g.session.Nodes {
		if n != current {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return nil, errNoPredicate
	}
	target := candidates[g.rng.Intn(len(candidates))]
	g.session.Steps = append(g.session.Steps, Step{Kind: StepJump, From: current.ID, To: target.ID})
	_ = queryIdx
	return target, nil
}

// generateStep builds the query deriving a new dataset from current.
func (g *generator) generateStep(current *Node, idx int) (*Node, error) {
	pred, sel, verified, err := g.generatePredicate(current)
	if err != nil {
		return nil, err
	}

	childName := fmt.Sprintf("%s_q%d", current.Root, idx)
	composed := pred
	if current.Pred != nil {
		composed = query.And{Left: current.Pred, Right: pred}
	}
	childCount := int64(math.Round(sel * float64(current.Count)))
	node := &Node{
		ID:       len(g.session.Nodes),
		Name:     childName,
		Root:     current.Root,
		Parent:   current,
		NewPred:  pred,
		Pred:     composed,
		Count:    childCount,
		Verified: verified && current.Verified,
		Stats:    current.Stats.Scale(childName, sel),
	}

	q := &query.Query{ID: fmt.Sprintf("q%d", idx)}
	if g.opts.Materialize {
		// Each query reads its parent's stored result and stores its own.
		q.Base = current.Name
		q.Filter = pred
		q.Store = childName
	} else {
		// Default: reference the base dataset and extend the predicate
		// (dataset B created by x, D by y => D's query is A with x AND y).
		q.Base = current.Root
		q.Filter = composed
	}
	if g.opts.Aggregate && g.rng.Float64() < g.opts.AggFraction {
		q.Agg = g.generateAggregation(node.Stats)
	}
	if g.opts.Transforms && g.rng.Float64() < g.opts.TransformFraction {
		if t := g.generateTransform(node.Stats, idx); t != nil {
			q.Transform = t
			node.Stats = applyTransformToStats(node.Stats, t)
		}
	}
	node.Query = q

	// Record the new leaves so later queries do not repeat them.
	for _, leaf := range query.Leaves(pred) {
		g.exclude[leaf.String()] = true
	}
	return node, nil
}

// generatePredicate searches for a predicate whose selectivity relative to
// current lands in the configured range, augmenting with AND/OR conditions
// and verifying against the backend when available. After MaxAttempts the
// closest candidate is accepted so the session always completes.
func (g *generator) generatePredicate(current *Node) (query.Predicate, float64, bool, error) {
	type candidate struct {
		pred     query.Predicate
		sel      float64
		verified bool
	}
	var best *candidate
	distance := func(sel float64) float64 {
		switch {
		case sel < g.opts.MinSelectivity:
			return g.opts.MinSelectivity - sel
		case sel > g.opts.MaxSelectivity:
			return sel - g.opts.MaxSelectivity
		default:
			return 0
		}
	}
	generated := false
	for attempt := 0; attempt < g.opts.MaxAttempts; attempt++ {
		pred, est, ok := g.buildPredicate(current)
		if !ok {
			continue
		}
		generated = true
		sel, verified, err := g.measure(current, pred, est)
		if err != nil {
			return nil, 0, false, err
		}
		cand := &candidate{pred: pred, sel: sel, verified: verified}
		if best == nil || distance(cand.sel) < distance(best.sel) {
			best = cand
		}
		if distance(cand.sel) == 0 {
			break
		}
		// Out-of-range verified candidates are discarded (§IV-B) and the
		// search continues.
	}
	if !generated || best == nil {
		return nil, 0, false, errNoPredicate
	}
	return best.pred, best.sel, best.verified, nil
}

// measure determines the predicate's actual selectivity on current via the
// backend, or falls back to the estimate.
func (g *generator) measure(current *Node, pred query.Predicate, est float64) (float64, bool, error) {
	if g.opts.Backend == nil || current.Count == 0 {
		return clamp01(est), false, nil
	}
	combined := pred
	if current.Pred != nil {
		combined = query.And{Left: current.Pred, Right: pred}
	}
	matched, err := g.opts.Backend.CountMatching(current.Root, combined)
	if err != nil {
		return 0, false, fmt.Errorf("verifying selectivity: %w", err)
	}
	return float64(matched) / float64(current.Count), true, nil
}

// buildPredicate generates one candidate predicate with AND/OR augmentation
// towards the target selectivity range (§IV-B).
func (g *generator) buildPredicate(current *Node) (query.Predicate, float64, bool) {
	pred, est, ok := g.leafPredicate(current, g.opts.MinSelectivity, g.opts.MaxSelectivity)
	if !ok {
		return nil, 0, false
	}
	for augment := 0; augment < g.opts.MaxAugment; augment++ {
		if est >= g.opts.MinSelectivity && est <= g.opts.MaxSelectivity {
			break
		}
		if est > g.opts.MaxSelectivity {
			// Too many documents pass: AND with a condition aimed at
			// target/est, so the product lands in range.
			lo := clamp01(g.opts.MinSelectivity / est)
			hi := clamp01(g.opts.MaxSelectivity / est)
			other, otherEst, ok := g.leafPredicate(current, lo, hi)
			if !ok {
				break
			}
			pred = query.And{Left: pred, Right: other}
			est *= otherEst
		} else {
			// Too few: OR with a condition aimed at the remaining gap
			// under an independence assumption.
			rem := 1 - est
			if rem <= 0 {
				break
			}
			lo := clamp01((g.opts.MinSelectivity - est) / rem)
			hi := clamp01((g.opts.MaxSelectivity - est) / rem)
			other, otherEst, ok := g.leafPredicate(current, lo, hi)
			if !ok {
				break
			}
			pred = query.Or{Left: pred, Right: other}
			est = est + otherEst*rem
		}
	}
	return pred, est, true
}

// leafPredicate picks a path and a suitable factory and generates one leaf
// predicate targeting [lo, hi].
func (g *generator) leafPredicate(current *Node, lo, hi float64) (query.Predicate, float64, bool) {
	const pathTries = 8
	for try := 0; try < pathTries; try++ {
		path, ps, ok := g.pickPath(current.Stats)
		if !ok {
			return nil, 0, false
		}
		var applicable []Factory
		for _, f := range g.factories {
			if f.CanGenerate(path, ps, current.Stats) {
				applicable = append(applicable, f)
			}
		}
		if len(applicable) == 0 {
			continue // try another path (§IV-B)
		}
		f := applicable[g.rng.Intn(len(applicable))]
		ctx := &FactoryContext{
			Path:      path,
			Stats:     ps,
			Dataset:   current.Stats,
			Rng:       g.rng,
			TargetMin: lo,
			TargetMax: hi,
			Exclude:   g.exclude,
		}
		if pred, est, ok := f.Generate(ctx); ok {
			return pred, clamp01(est), true
		}
	}
	return nil, 0, false
}

// pickPath selects the attribute to filter on: uniformly by default, or
// weighted inversely to path depth when WeightedPaths is set (§IV-C).
func (g *generator) pickPath(stats *jsonstats.Dataset) (jsonval.Path, *jsonstats.PathStats, bool) {
	paths := stats.SortedPaths()
	candidates := paths[:0:0]
	for _, p := range paths {
		if p == jsonval.RootPath {
			continue // the root is not an attribute
		}
		if stats.Paths[p].Count > 0 {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return jsonval.RootPath, nil, false
	}
	if !g.opts.WeightedPaths {
		p := candidates[g.rng.Intn(len(candidates))]
		return p, stats.Paths[p], true
	}
	var total float64
	weights := make([]float64, len(candidates))
	for i, p := range candidates {
		w := 1 / float64(p.Depth())
		weights[i] = w
		total += w
	}
	r := g.rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return candidates[i], stats.Paths[candidates[i]], true
		}
	}
	p := candidates[len(candidates)-1]
	return p, stats.Paths[p], true
}

// generateAggregation builds the optional aggregation stage: pick a path at
// random, keep the suitable functions, pick one, and optionally find a
// grouping attribute within a bounded number of tries (§IV-B).
func (g *generator) generateAggregation(stats *jsonstats.Dataset) *query.Aggregation {
	const pathTries = 6
	agg := &query.Aggregation{Func: query.Count, Path: jsonval.RootPath}
	for try := 0; try < pathTries; try++ {
		path, ps, ok := g.pickPath(stats)
		if !ok {
			break
		}
		var suitable []query.AggFunc
		for _, f := range g.opts.AggFuncs {
			switch f {
			case query.Count:
				suitable = append(suitable, f)
			case query.Sum:
				if (ps.Int != nil && ps.Int.Count > 0) || (ps.Float != nil && ps.Float.Count > 0) {
					suitable = append(suitable, f)
				}
			}
		}
		if len(suitable) == 0 {
			continue
		}
		agg.Func = suitable[g.rng.Intn(len(suitable))]
		agg.Path = path
		break
	}
	if g.opts.GroupBy {
		const groupTries = 5
		for try := 0; try < groupTries; try++ {
			path, ps, ok := g.pickPath(stats)
			if !ok {
				break
			}
			if path == agg.Path {
				continue
			}
			// Grouping needs a scalar-ish attribute: numerical, string
			// or boolean (§III-A).
			groupable := (ps.Str != nil && ps.Str.Count > 0) ||
				(ps.Bool != nil && ps.Bool.Count > 0) ||
				(ps.Int != nil && ps.Int.Count > 0) ||
				(ps.Float != nil && ps.Float.Count > 0)
			if !groupable {
				continue
			}
			agg.Grouped = true
			agg.GroupBy = path
			break
		}
	}
	return agg
}
