package core

import (
	"math"

	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// existsFactory builds EXISTS(<ptr>) predicates. It requires the attribute
// to be present in a proper subset of the documents — on a fixed-schema
// dataset existence never discriminates, which is why the paper's Reddit
// sessions contain no existence predicates (Fig. 8).
type existsFactory struct{}

func (existsFactory) Name() string { return "exists" }

func (existsFactory) CanGenerate(_ jsonval.Path, ps *jsonstats.PathStats, ds *jsonstats.Dataset) bool {
	return ps.Count > 0 && ps.Count < ds.DocCount
}

func (existsFactory) Generate(ctx *FactoryContext) (query.Predicate, float64, bool) {
	p := query.Exists{Path: ctx.Path}
	if ctx.excluded(p) {
		return nil, 0, false
	}
	return p, float64(ctx.Stats.Count) / ctx.docCount(), true
}

// isStringFactory builds ISSTRING(<ptr>) predicates.
type isStringFactory struct{}

func (isStringFactory) Name() string { return "isstring" }

func (isStringFactory) CanGenerate(_ jsonval.Path, ps *jsonstats.PathStats, _ *jsonstats.Dataset) bool {
	return ps.Str != nil && ps.Str.Count > 0
}

func (isStringFactory) Generate(ctx *FactoryContext) (query.Predicate, float64, bool) {
	p := query.IsString{Path: ctx.Path}
	if ctx.excluded(p) {
		return nil, 0, false
	}
	return p, float64(ctx.Stats.Str.Count) / ctx.docCount(), true
}

// intEqFactory builds <ptr> == <int> predicates, assuming integer values
// are uniform over the observed [min, max] range.
type intEqFactory struct{}

func (intEqFactory) Name() string { return "int-eq" }

func (intEqFactory) CanGenerate(_ jsonval.Path, ps *jsonstats.PathStats, _ *jsonstats.Dataset) bool {
	return ps.Int != nil && ps.Int.Count > 0
}

func (intEqFactory) Generate(ctx *FactoryContext) (query.Predicate, float64, bool) {
	st := ctx.Stats.Int
	span := float64(st.Max) - float64(st.Min) + 1
	est := float64(st.Count) / ctx.docCount() / span
	for try := 0; try < 8; try++ {
		v := st.Min
		if st.Max > st.Min {
			v = st.Min + int64(ctx.Rng.Float64()*float64(st.Max-st.Min+1))
			if v > st.Max {
				v = st.Max
			}
		}
		p := query.IntEq{Path: ctx.Path, Value: v}
		if !ctx.excluded(p) {
			return p, est, true
		}
		if st.Max == st.Min {
			break // only one candidate value
		}
	}
	return nil, 0, false
}

// floatCmpFactory builds <ptr> <comparison> <float> predicates over the
// combined numeric (integer and floating-point) value range, interpolating
// the constant to hit the target selectivity under a uniform assumption —
// the paper's "[path] >= 5" example.
type floatCmpFactory struct{}

func (floatCmpFactory) Name() string { return "float-cmp" }

func (floatCmpFactory) CanGenerate(_ jsonval.Path, ps *jsonstats.PathStats, _ *jsonstats.Dataset) bool {
	return (ps.Float != nil && ps.Float.Count > 0) || (ps.Int != nil && ps.Int.Count > 0)
}

func (floatCmpFactory) Generate(ctx *FactoryContext) (query.Predicate, float64, bool) {
	var numCount int64
	lo, hi := math.Inf(1), math.Inf(-1)
	if st := ctx.Stats.Int; st != nil && st.Count > 0 {
		numCount += st.Count
		lo = math.Min(lo, float64(st.Min))
		hi = math.Max(hi, float64(st.Max))
	}
	if st := ctx.Stats.Float; st != nil && st.Count > 0 {
		numCount += st.Count
		lo = math.Min(lo, st.Min)
		hi = math.Max(hi, st.Max)
	}
	typeSel := float64(numCount) / ctx.docCount()
	hist := ctx.Stats.NumHist
	for try := 0; try < 8; try++ {
		frac := pickTargetFraction(ctx, typeSel)
		op := cmpOps[ctx.Rng.Intn(len(cmpOps))]
		var v float64
		switch {
		case hi <= lo:
			// Degenerate range: the constant is the single value and
			// only inclusive operators select anything.
			v = lo
			op = []query.CmpOp{query.Le, query.Ge}[ctx.Rng.Intn(2)]
			frac = 1
		case hist != nil && hist.Total > 0:
			// Histogram-guided constant (the paper's future-work
			// extension): place the threshold at the quantile that
			// yields the target fraction even under skew.
			switch op {
			case query.Ge, query.Gt:
				v = hist.Quantile(1 - frac)
				frac = 1 - hist.FractionLE(v)
			default:
				v = hist.Quantile(frac)
				frac = hist.FractionLE(v)
			}
		default:
			// Uniform assumption over [lo, hi].
			switch op {
			case query.Ge, query.Gt:
				v = hi - frac*(hi-lo)
			default:
				v = lo + frac*(hi-lo)
			}
		}
		p := query.FloatCmp{Path: ctx.Path, Op: op, Value: v}
		if !ctx.excluded(p) {
			return p, typeSel * frac, true
		}
	}
	return nil, 0, false
}

// strEqFactory builds <ptr> == <string> predicates from the analyzer's
// bounded sample of exact values.
type strEqFactory struct{}

func (strEqFactory) Name() string { return "str-eq" }

func (strEqFactory) CanGenerate(_ jsonval.Path, ps *jsonstats.PathStats, _ *jsonstats.Dataset) bool {
	return ps.Str != nil && len(ps.Str.Values) > 0
}

func (strEqFactory) Generate(ctx *FactoryContext) (query.Predicate, float64, bool) {
	for try := 0; try < 8; try++ {
		v, est, ok := chooseCounted(ctx, ctx.Stats.Str.Values)
		if !ok {
			return nil, 0, false
		}
		p := query.StrEq{Path: ctx.Path, Value: v}
		if !ctx.excluded(p) {
			return p, est, true
		}
	}
	return nil, 0, false
}

// hasPrefixFactory builds HASPREFIX(<ptr>, <string>) predicates from the
// analyzer's counted prefixes.
type hasPrefixFactory struct{}

func (hasPrefixFactory) Name() string { return "hasprefix" }

func (hasPrefixFactory) CanGenerate(_ jsonval.Path, ps *jsonstats.PathStats, _ *jsonstats.Dataset) bool {
	return ps.Str != nil && len(ps.Str.Prefixes) > 0
}

func (hasPrefixFactory) Generate(ctx *FactoryContext) (query.Predicate, float64, bool) {
	for try := 0; try < 8; try++ {
		pre, est, ok := chooseCounted(ctx, ctx.Stats.Str.Prefixes)
		if !ok {
			return nil, 0, false
		}
		p := query.HasPrefix{Path: ctx.Path, Prefix: pre}
		if !ctx.excluded(p) {
			return p, est, true
		}
	}
	return nil, 0, false
}

// boolEqFactory builds <ptr> == <bool> predicates, preferring the constant
// whose selectivity falls into the target range. Missing true/false counts
// would default to a uniform split per §IV-D; the analyzer always provides
// them.
type boolEqFactory struct{}

func (boolEqFactory) Name() string { return "bool-eq" }

func (boolEqFactory) CanGenerate(_ jsonval.Path, ps *jsonstats.PathStats, _ *jsonstats.Dataset) bool {
	return ps.Bool != nil && ps.Bool.Count > 0
}

func (boolEqFactory) Generate(ctx *FactoryContext) (query.Predicate, float64, bool) {
	st := ctx.Stats.Bool
	doc := ctx.docCount()
	selTrue := float64(st.TrueCount) / doc
	selFalse := float64(st.Count-st.TrueCount) / doc
	candidates := []struct {
		value bool
		est   float64
	}{{true, selTrue}, {false, selFalse}}
	// Prefer an in-range constant; otherwise order randomly.
	if (candidates[0].est >= ctx.TargetMin && candidates[0].est <= ctx.TargetMax) ==
		(candidates[1].est >= ctx.TargetMin && candidates[1].est <= ctx.TargetMax) {
		if ctx.Rng.Intn(2) == 0 {
			candidates[0], candidates[1] = candidates[1], candidates[0]
		}
	} else if candidates[1].est >= ctx.TargetMin && candidates[1].est <= ctx.TargetMax {
		candidates[0], candidates[1] = candidates[1], candidates[0]
	}
	for _, c := range candidates {
		p := query.BoolEq{Path: ctx.Path, Value: c.value}
		if !ctx.excluded(p) {
			return p, c.est, true
		}
	}
	return nil, 0, false
}

// arrSizeFactory builds ARRSIZE(<ptr>) <comparison> <int> predicates under a
// uniform size assumption.
type arrSizeFactory struct{}

func (arrSizeFactory) Name() string { return "arrsize" }

func (arrSizeFactory) CanGenerate(_ jsonval.Path, ps *jsonstats.PathStats, _ *jsonstats.Dataset) bool {
	return ps.Arr != nil && ps.Arr.Count > 0
}

func (arrSizeFactory) Generate(ctx *FactoryContext) (query.Predicate, float64, bool) {
	st := ctx.Stats.Arr
	typeSel := float64(st.Count) / ctx.docCount()
	p, est, ok := sizePredicate(ctx, typeSel, st.MinSize, st.MaxSize, func(op query.CmpOp, v int) query.Predicate {
		return query.ArrSize{Path: ctx.Path, Op: op, Value: v}
	})
	if !ok {
		return nil, 0, false
	}
	return p, est, true
}

// objSizeFactory builds OBJSIZE(<ptr>) <comparison> <int> predicates under a
// uniform child-count assumption.
type objSizeFactory struct{}

func (objSizeFactory) Name() string { return "objsize" }

func (objSizeFactory) CanGenerate(_ jsonval.Path, ps *jsonstats.PathStats, _ *jsonstats.Dataset) bool {
	return ps.Obj != nil && ps.Obj.Count > 0
}

func (objSizeFactory) Generate(ctx *FactoryContext) (query.Predicate, float64, bool) {
	st := ctx.Stats.Obj
	typeSel := float64(st.Count) / ctx.docCount()
	p, est, ok := sizePredicate(ctx, typeSel, st.MinChildren, st.MaxChildren, func(op query.CmpOp, v int) query.Predicate {
		return query.ObjSize{Path: ctx.Path, Op: op, Value: v}
	})
	if !ok {
		return nil, 0, false
	}
	return p, est, true
}

// sizePredicate instantiates an integer size comparison over [lo, hi] with
// the usual uniform assumption, shared by ARRSIZE and OBJSIZE.
func sizePredicate(ctx *FactoryContext, typeSel float64, lo, hi int, build func(query.CmpOp, int) query.Predicate) (query.Predicate, float64, bool) {
	for try := 0; try < 8; try++ {
		if hi <= lo {
			// All sizes equal: equality selects everything of the type.
			p := build(query.Eq, lo)
			if ctx.excluded(p) {
				return nil, 0, false
			}
			return p, typeSel, true
		}
		frac := pickTargetFraction(ctx, typeSel)
		op := cmpOps[ctx.Rng.Intn(len(cmpOps))]
		span := float64(hi - lo)
		var v int
		switch op {
		case query.Ge, query.Gt:
			v = hi - int(math.Round(frac*span))
		default:
			v = lo + int(math.Round(frac*span))
		}
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		p := build(op, v)
		if !ctx.excluded(p) {
			return p, typeSel * frac, true
		}
	}
	return nil, 0, false
}
