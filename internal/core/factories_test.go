package core

import (
	"math/rand"
	"testing"

	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// statsFixture builds a dataset summary with one path exhibiting the given
// stats, plus a filler path, over 1000 documents.
func statsFixture(ps *jsonstats.PathStats) *jsonstats.Dataset {
	d := jsonstats.NewDataset("fixture", jsonstats.DefaultConfig())
	d.DocCount = 1000
	d.Paths["/x"] = ps
	d.Paths["/other"] = &jsonstats.PathStats{Count: 1000, Int: &jsonstats.IntStats{Count: 1000, Min: 0, Max: 9}}
	return d
}

func ctxFor(d *jsonstats.Dataset, seed int64) *FactoryContext {
	return &FactoryContext{
		Path:      "/x",
		Stats:     d.Paths["/x"],
		Dataset:   d,
		Rng:       rand.New(rand.NewSource(seed)),
		TargetMin: 0.2,
		TargetMax: 0.9,
		Exclude:   map[string]bool{},
	}
}

func TestFactoryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range DefaultFactories() {
		if seen[f.Name()] {
			t.Errorf("duplicate factory name %q", f.Name())
		}
		seen[f.Name()] = true
	}
	if len(seen) != 9 {
		t.Errorf("expected the paper's nine factories, got %d", len(seen))
	}
}

func TestExistsFactory(t *testing.T) {
	f := existsFactory{}
	partial := statsFixture(&jsonstats.PathStats{Count: 400, NullCount: 400})
	if !f.CanGenerate("/x", partial.Paths["/x"], partial) {
		t.Fatalf("CanGenerate false for partial attribute")
	}
	full := statsFixture(&jsonstats.PathStats{Count: 1000, NullCount: 1000})
	if f.CanGenerate("/x", full.Paths["/x"], full) {
		t.Errorf("CanGenerate true for attribute in every document")
	}
	p, est, ok := f.Generate(ctxFor(partial, 1))
	if !ok || est != 0.4 {
		t.Fatalf("Generate = %v, %g, %v", p, est, ok)
	}
	ctx := ctxFor(partial, 1)
	ctx.Exclude[p.String()] = true
	if _, _, ok := f.Generate(ctx); ok {
		t.Errorf("excluded predicate regenerated")
	}
}

func TestIsStringFactory(t *testing.T) {
	f := isStringFactory{}
	d := statsFixture(&jsonstats.PathStats{Count: 500, Str: &jsonstats.StringStats{Count: 300, Prefixes: map[string]int64{}, Values: map[string]int64{}}})
	if !f.CanGenerate("/x", d.Paths["/x"], d) {
		t.Fatalf("CanGenerate false with string stats")
	}
	_, est, ok := f.Generate(ctxFor(d, 1))
	if !ok || est != 0.3 {
		t.Errorf("est = %g, want 0.3", est)
	}
	empty := statsFixture(&jsonstats.PathStats{Count: 500, NullCount: 500})
	if f.CanGenerate("/x", empty.Paths["/x"], empty) {
		t.Errorf("CanGenerate true without string stats")
	}
}

func TestIntEqFactory(t *testing.T) {
	f := intEqFactory{}
	d := statsFixture(&jsonstats.PathStats{Count: 1000, Int: &jsonstats.IntStats{Count: 1000, Min: 1, Max: 10}})
	p, est, ok := f.Generate(ctxFor(d, 2))
	if !ok {
		t.Fatal("Generate failed")
	}
	eq := p.(query.IntEq)
	if eq.Value < 1 || eq.Value > 10 {
		t.Errorf("value %d outside observed range", eq.Value)
	}
	if est != 0.1 { // 1000/1000 / 10
		t.Errorf("est = %g, want 0.1", est)
	}
	// Degenerate single-value range with that value excluded.
	d2 := statsFixture(&jsonstats.PathStats{Count: 10, Int: &jsonstats.IntStats{Count: 10, Min: 5, Max: 5}})
	ctx := ctxFor(d2, 3)
	ctx.Exclude["'/x' == 5"] = true
	if _, _, ok := f.Generate(ctx); ok {
		t.Errorf("generated the excluded single candidate")
	}
}

func TestFloatCmpFactoryTargetsRange(t *testing.T) {
	f := floatCmpFactory{}
	d := statsFixture(&jsonstats.PathStats{Count: 1000, Float: &jsonstats.FloatStats{Count: 1000, Min: 0, Max: 100}})
	for seed := int64(0); seed < 30; seed++ {
		p, est, ok := f.Generate(ctxFor(d, seed))
		if !ok {
			t.Fatal("Generate failed")
		}
		cmp := p.(query.FloatCmp)
		if cmp.Value < 0 || cmp.Value > 100 {
			t.Errorf("constant %g outside value range", cmp.Value)
		}
		if est < 0.2-1e-9 || est > 0.9+1e-9 {
			t.Errorf("estimate %g outside target range", est)
		}
	}
}

func TestFloatCmpFactoryCombinesIntAndFloat(t *testing.T) {
	f := floatCmpFactory{}
	d := statsFixture(&jsonstats.PathStats{
		Count: 1000,
		Int:   &jsonstats.IntStats{Count: 500, Min: 0, Max: 50},
		Float: &jsonstats.FloatStats{Count: 500, Min: 25, Max: 100},
	})
	if !f.CanGenerate("/x", d.Paths["/x"], d) {
		t.Fatal("CanGenerate false")
	}
	for seed := int64(0); seed < 10; seed++ {
		p, _, ok := f.Generate(ctxFor(d, seed))
		if !ok {
			t.Fatal("Generate failed")
		}
		cmp := p.(query.FloatCmp)
		if cmp.Value < 0 || cmp.Value > 100 {
			t.Errorf("constant %g outside combined range", cmp.Value)
		}
	}
}

func TestFloatCmpFactoryDegenerateRange(t *testing.T) {
	f := floatCmpFactory{}
	d := statsFixture(&jsonstats.PathStats{Count: 600, Float: &jsonstats.FloatStats{Count: 600, Min: 7, Max: 7}})
	p, est, ok := f.Generate(ctxFor(d, 4))
	if !ok {
		t.Fatal("Generate failed")
	}
	cmp := p.(query.FloatCmp)
	if cmp.Value != 7 || (cmp.Op != query.Le && cmp.Op != query.Ge) {
		t.Errorf("degenerate predicate = %s", p)
	}
	if est != 0.6 {
		t.Errorf("est = %g, want the type selectivity 0.6", est)
	}
}

func TestStrEqFactoryPrefersInRangeValues(t *testing.T) {
	f := strEqFactory{}
	d := statsFixture(&jsonstats.PathStats{Count: 1000, Str: &jsonstats.StringStats{
		Count:    1000,
		Values:   map[string]int64{"common": 500, "rare": 10, "veryrare": 2},
		Prefixes: map[string]int64{},
	}})
	for seed := int64(0); seed < 10; seed++ {
		p, est, ok := f.Generate(ctxFor(d, seed))
		if !ok {
			t.Fatal("Generate failed")
		}
		if p.(query.StrEq).Value != "common" {
			t.Errorf("picked %s though only \"common\" is in range", p)
		}
		if est != 0.5 {
			t.Errorf("est = %g", est)
		}
	}
}

func TestHasPrefixFactory(t *testing.T) {
	f := hasPrefixFactory{}
	d := statsFixture(&jsonstats.PathStats{Count: 900, Str: &jsonstats.StringStats{
		Count:    900,
		Prefixes: map[string]int64{"http": 600, "xxxx": 5},
		Values:   map[string]int64{},
	}})
	p, est, ok := f.Generate(ctxFor(d, 5))
	if !ok {
		t.Fatal("Generate failed")
	}
	if p.(query.HasPrefix).Prefix != "http" || est != 0.6 {
		t.Errorf("got %s with est %g", p, est)
	}
	noPrefix := statsFixture(&jsonstats.PathStats{Count: 900, Str: &jsonstats.StringStats{Count: 900, Prefixes: map[string]int64{}, Values: map[string]int64{}}})
	if f.CanGenerate("/x", noPrefix.Paths["/x"], noPrefix) {
		t.Errorf("CanGenerate true without prefixes")
	}
}

func TestBoolEqFactoryPrefersInRange(t *testing.T) {
	f := boolEqFactory{}
	// true: 0.05, false: 0.85 — only false is in range.
	d := statsFixture(&jsonstats.PathStats{Count: 900, Bool: &jsonstats.BoolStats{Count: 900, TrueCount: 50}})
	for seed := int64(0); seed < 10; seed++ {
		p, est, ok := f.Generate(ctxFor(d, seed))
		if !ok {
			t.Fatal("Generate failed")
		}
		if p.(query.BoolEq).Value != false {
			t.Errorf("picked out-of-range constant %s", p)
		}
		if est != 0.85 {
			t.Errorf("est = %g", est)
		}
	}
}

func TestArrSizeFactory(t *testing.T) {
	f := arrSizeFactory{}
	d := statsFixture(&jsonstats.PathStats{Count: 800, Arr: &jsonstats.ArrayStats{Count: 800, MinSize: 0, MaxSize: 10}})
	p, est, ok := f.Generate(ctxFor(d, 6))
	if !ok {
		t.Fatal("Generate failed")
	}
	as := p.(query.ArrSize)
	if as.Value < 0 || as.Value > 10 {
		t.Errorf("threshold %d outside size range", as.Value)
	}
	if est <= 0 || est > 0.8+1e-9 {
		t.Errorf("est = %g outside (0, 0.8]", est)
	}
	// All arrays the same size: only equality remains.
	d2 := statsFixture(&jsonstats.PathStats{Count: 800, Arr: &jsonstats.ArrayStats{Count: 800, MinSize: 3, MaxSize: 3}})
	p2, est2, ok := f.Generate(ctxFor(d2, 7))
	if !ok {
		t.Fatal("Generate failed")
	}
	if p2.String() != "ARRSIZE('/x') == 3" || est2 != 0.8 {
		t.Errorf("degenerate size predicate = %s, est %g", p2, est2)
	}
}

func TestObjSizeFactory(t *testing.T) {
	f := objSizeFactory{}
	d := statsFixture(&jsonstats.PathStats{Count: 700, Obj: &jsonstats.ObjectStats{Count: 700, MinChildren: 1, MaxChildren: 5}})
	p, _, ok := f.Generate(ctxFor(d, 8))
	if !ok {
		t.Fatal("Generate failed")
	}
	os := p.(query.ObjSize)
	if os.Value < 1 || os.Value > 5 {
		t.Errorf("threshold %d outside child range", os.Value)
	}
}

func TestFilterFactories(t *testing.T) {
	inc := filterFactories([]string{"exists", "bool-eq"}, nil)
	if len(inc) != 2 {
		t.Errorf("include filter kept %d factories", len(inc))
	}
	exc := filterFactories(nil, []string{"exists"})
	if len(exc) != 8 {
		t.Errorf("exclude filter kept %d factories", len(exc))
	}
	both := filterFactories([]string{"exists"}, []string{"exists"})
	if len(both) != 1 || both[0].Name() != "exists" {
		t.Errorf("include should win over exclude")
	}
	all := filterFactories(nil, nil)
	if len(all) != 9 {
		t.Errorf("no filters kept %d factories", len(all))
	}
}

func TestPickTargetFraction(t *testing.T) {
	ctx := ctxFor(statsFixture(&jsonstats.PathStats{Count: 1}), 9)
	if got := pickTargetFraction(ctx, 0); got != 0 {
		t.Errorf("zero type selectivity gave %g", got)
	}
	for i := 0; i < 50; i++ {
		frac := pickTargetFraction(ctx, 0.5)
		// Target [0.2, 0.9] within budget 0.5 -> fraction in [0.4, 1].
		if frac < 0.4-1e-9 || frac > 1+1e-9 {
			t.Errorf("fraction %g outside [0.4, 1]", frac)
		}
	}
}

func TestFloatCmpFactoryUsesHistogramOnSkewedData(t *testing.T) {
	// 90% of values in [0,10), 10% in [10,1000): under the uniform
	// assumption a predicate aiming at selectivity ~0.5 would pick a
	// threshold near 500 and actually select ~0.95 or ~0.05; the
	// histogram places it inside the dense region.
	hist := jsonstats.NewHistogram(16)
	r := rand.New(rand.NewSource(42))
	values := make([]float64, 20000)
	for i := range values {
		if r.Float64() < 0.9 {
			values[i] = r.Float64() * 10
		} else {
			values[i] = 10 + r.Float64()*990
		}
		hist.Observe(values[i])
	}
	ps := &jsonstats.PathStats{
		Count:   20000,
		Float:   &jsonstats.FloatStats{Count: 20000, Min: 0, Max: 1000},
		NumHist: hist,
	}
	d := jsonstats.NewDataset("skewed", jsonstats.DefaultConfig())
	d.DocCount = 20000
	d.Paths["/x"] = ps

	f := floatCmpFactory{}
	inRange := 0
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		ctx := &FactoryContext{
			Path: "/x", Stats: ps, Dataset: d,
			Rng:       rand.New(rand.NewSource(seed)),
			TargetMin: 0.2, TargetMax: 0.9,
			Exclude: map[string]bool{},
		}
		p, _, ok := f.Generate(ctx)
		if !ok {
			t.Fatal("Generate failed")
		}
		// True selectivity over the actual values.
		var matched int
		for _, v := range values {
			if p.Eval(jsonval.ObjectValue(jsonval.Member{Key: "x", Value: jsonval.FloatValue(v)})) {
				matched++
			}
		}
		sel := float64(matched) / float64(len(values))
		if sel >= 0.18 && sel <= 0.92 {
			inRange++
		}
	}
	if inRange < trials*3/4 {
		t.Errorf("only %d/%d histogram-guided predicates hit the target range", inRange, trials)
	}

	// Ablation: without the histogram, the uniform assumption misses far
	// more often on this distribution.
	ps.NumHist = nil
	uniformInRange := 0
	for seed := int64(0); seed < trials; seed++ {
		ctx := &FactoryContext{
			Path: "/x", Stats: ps, Dataset: d,
			Rng:       rand.New(rand.NewSource(seed)),
			TargetMin: 0.2, TargetMax: 0.9,
			Exclude: map[string]bool{},
		}
		p, _, ok := f.Generate(ctx)
		if !ok {
			t.Fatal("Generate failed")
		}
		var matched int
		for _, v := range values {
			if p.Eval(jsonval.ObjectValue(jsonval.Member{Key: "x", Value: jsonval.FloatValue(v)})) {
				matched++
			}
		}
		sel := float64(matched) / float64(len(values))
		if sel >= 0.18 && sel <= 0.92 {
			uniformInRange++
		}
	}
	if uniformInRange >= inRange {
		t.Errorf("histogram guidance (%d/%d) no better than uniform (%d/%d) on skewed data",
			inRange, trials, uniformInRange, trials)
	}
}
