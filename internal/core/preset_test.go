package core

import "testing"

func TestTableOnePresets(t *testing.T) {
	// Table I of the paper.
	cases := []struct {
		p       Preset
		alpha   float64
		beta    float64
		queries int
	}{
		{Novice, 0.5, 0.3, 20},
		{Intermediate, 0.3, 0.2, 10},
		{Expert, 0.2, 0.05, 5},
	}
	for _, c := range cases {
		if c.p.Alpha != c.alpha || c.p.Beta != c.beta || c.p.Queries != c.queries {
			t.Errorf("%s = %+v, want alpha=%g beta=%g n=%d", c.p.Name, c.p, c.alpha, c.beta, c.queries)
		}
		if err := c.p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.p.Name, err)
		}
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"novice", "intermediate", "expert"} {
		p, err := PresetByName(name)
		if err != nil || p.Name != name {
			t.Errorf("PresetByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := PresetByName("wizard"); err == nil {
		t.Errorf("unknown preset accepted")
	}
}

func TestPresetValidate(t *testing.T) {
	bad := []Preset{
		{Name: "x", Alpha: -0.1, Beta: 0.1, Queries: 5},
		{Name: "x", Alpha: 0.6, Beta: 0.5, Queries: 5}, // sum > 1
		{Name: "x", Alpha: 0.1, Beta: 0.1, Queries: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options invalid: %v", err)
	}
	bad := []Options{
		{MinSelectivity: 0.9, MaxSelectivity: 0.2},
		{MinSelectivity: -0.1, MaxSelectivity: 0.5},
		{MaxSelectivity: 1.5},
		{Aggregate: true, Materialize: true},
		{AggFraction: 2},
		{IncludePredicates: []string{"no-such-pred"}},
		{ExcludePredicates: []string{"no-such-pred"}},
		{Alpha: Float64(0.9), Beta: Float64(0.9)},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
	}
}

func TestOptionsOverrides(t *testing.T) {
	o := Options{Alpha: Float64(0.7), Beta: Float64(0.1), Queries: 3}.withDefaults()
	if o.Preset.Name != "intermediate" {
		t.Errorf("default preset = %q", o.Preset.Name)
	}
	if o.Preset.Alpha != 0.7 || o.Preset.Beta != 0.1 || o.Preset.Queries != 3 {
		t.Errorf("overrides not applied: %+v", o.Preset)
	}
	if o.MinSelectivity != DefaultMinSelectivity || o.MaxSelectivity != DefaultMaxSelectivity {
		t.Errorf("selectivity defaults: %g..%g", o.MinSelectivity, o.MaxSelectivity)
	}
}
