package core

import (
	"math/rand"
	"sort"

	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// FactoryContext carries everything a predicate factory may consult when
// instantiating a predicate (§IV-D: "Given a dataset path with statistics, a
// random generator, and an exclusion list of already generated predicates").
type FactoryContext struct {
	// Path is the attribute the predicate is generated for.
	Path jsonval.Path
	// Stats are the statistics of Path within Dataset.
	Stats *jsonstats.PathStats
	// Dataset is the summary of the dataset the query runs on.
	Dataset *jsonstats.Dataset
	// Rng is the session's seeded random generator.
	Rng *rand.Rand
	// TargetMin and TargetMax bound the desired selectivity of the
	// generated predicate relative to Dataset. Callers scale them when a
	// predicate is generated as an AND/OR augmentation.
	TargetMin, TargetMax float64
	// Exclude holds the canonical forms of already generated predicates;
	// factories must not return a predicate whose String() is present.
	Exclude map[string]bool
}

// docCount returns the dataset size, guarded against zero.
func (ctx *FactoryContext) docCount() float64 {
	if ctx.Dataset.DocCount <= 0 {
		return 1
	}
	return float64(ctx.Dataset.DocCount)
}

// excluded reports whether the predicate was generated before.
func (ctx *FactoryContext) excluded(p query.Predicate) bool {
	return ctx.Exclude[p.String()]
}

// Factory generates one kind of filter predicate. Implementations follow
// the paper's two-step protocol: CanGenerate decides from the statistics
// whether the predicate type applies to a path at all, Generate instantiates
// it aiming at the target selectivity.
type Factory interface {
	// Name is the stable identifier used in include/exclude lists and in
	// the Fig. 8 predicate-distribution reports.
	Name() string
	// CanGenerate reports whether the factory can build a predicate for
	// the path described by ps.
	CanGenerate(path jsonval.Path, ps *jsonstats.PathStats, ds *jsonstats.Dataset) bool
	// Generate builds a predicate and returns its estimated selectivity.
	// ok is false when the factory cannot produce a non-excluded
	// predicate for the path.
	Generate(ctx *FactoryContext) (p query.Predicate, estimate float64, ok bool)
}

// DefaultFactories returns the nine built-in predicate factories of §III-A
// in a deterministic order.
func DefaultFactories() []Factory {
	return []Factory{
		existsFactory{},
		isStringFactory{},
		intEqFactory{},
		floatCmpFactory{},
		strEqFactory{},
		hasPrefixFactory{},
		boolEqFactory{},
		arrSizeFactory{},
		objSizeFactory{},
	}
}

// FactoryNames lists the built-in factory names.
func FactoryNames() []string {
	fs := DefaultFactories()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name()
	}
	return names
}

func knownFactory(name string) bool {
	for _, n := range FactoryNames() {
		if n == name {
			return true
		}
	}
	return false
}

// filterFactories applies the include/exclude lists of §IV-C.
func filterFactories(include, exclude []string) []Factory {
	all := DefaultFactories()
	if len(include) > 0 {
		keep := make(map[string]bool, len(include))
		for _, n := range include {
			keep[n] = true
		}
		var out []Factory
		for _, f := range all {
			if keep[f.Name()] {
				out = append(out, f)
			}
		}
		return out
	}
	if len(exclude) > 0 {
		drop := make(map[string]bool, len(exclude))
		for _, n := range exclude {
			drop[n] = true
		}
		var out []Factory
		for _, f := range all {
			if !drop[f.Name()] {
				out = append(out, f)
			}
		}
		return out
	}
	return all
}

// clamp01 clamps s into [0, 1].
func clamp01(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// pickTargetFraction picks a uniform random value in the target range scaled
// into the available [0, typeSel] budget: a predicate on a type covering
// typeSel of the documents can reach at most typeSel overall selectivity, so
// the in-type fraction must aim at target/typeSel (the paper's worked
// example in §IV-B).
func pickTargetFraction(ctx *FactoryContext, typeSel float64) float64 {
	if typeSel <= 0 {
		return 0
	}
	lo := clamp01(ctx.TargetMin / typeSel)
	hi := clamp01(ctx.TargetMax / typeSel)
	if lo > hi {
		lo = hi
	}
	return lo + ctx.Rng.Float64()*(hi-lo)
}

// sortedKeys returns map keys in deterministic order so seeded runs are
// reproducible.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// chooseCounted picks from a value→count map, preferring entries whose
// selectivity lands in the target range and falling back to a random entry.
func chooseCounted(ctx *FactoryContext, m map[string]int64) (string, float64, bool) {
	if len(m) == 0 {
		return "", 0, false
	}
	keys := sortedKeys(m)
	doc := ctx.docCount()
	var inRange []string
	for _, k := range keys {
		sel := float64(m[k]) / doc
		if sel >= ctx.TargetMin && sel <= ctx.TargetMax {
			inRange = append(inRange, k)
		}
	}
	pool := inRange
	if len(pool) == 0 {
		pool = keys
	}
	// Try a handful of picks to dodge the exclusion list; the caller
	// re-checks the final predicate.
	k := pool[ctx.Rng.Intn(len(pool))]
	return k, float64(m[k]) / doc, true
}

var cmpOps = []query.CmpOp{query.Lt, query.Le, query.Gt, query.Ge}
