// Package loadgen is the open-loop virtual-user load engine: it drives a
// Service (typically one of the engine sims behind the compiled-predicate
// shard scan path) with session arrivals from a seeded stochastic process,
// think-time drawn from the paper's explorer model, and a bounded worker
// pool, and reports arrival-anchored latency percentiles against an SLO.
//
// Open loop means the arrival process never waits for the system: a
// session's k-th query becomes due at its scheduled instant whether or not
// the pool has caught up, and a late completion counts its full
// due-to-completion time against the SLO (the coordinated-omission-free
// measurement interactive-latency benchmarks like IDEBench insist on).
// Backlog is explicit — queries due but not yet started are counted, and
// beyond QueueCap they are shed rather than silently stretching the run.
//
// Two runners share all of the model:
//
//   - Simulate (sim.go) advances virtual time over a min-heap of events and
//     a W-server FIFO queue. It is fully deterministic under a seed — the
//     same Config yields a byte-identical Report — and costs no wall time
//     per simulated second, so it scales to millions of virtual users.
//     Service supplies each execution's duration (measured, modelled, or
//     deterministic).
//   - Run (realtime.go) schedules the same session machines on the wall
//     clock over a pool of worker goroutines, measuring real latencies.
//     Its hot path records through the lock-free obs cells.
package loadgen

import (
	"time"

	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/obs"
)

// User identifies one virtual user's current query to a Service.
type User struct {
	// ID is the 1-based arrival ordinal of the user's session.
	ID int64
	// Preset is the explorer preset the user was drawn as.
	Preset core.Preset
	// Pool is a stable workload-slot index in [0, PoolSize): services
	// backed by pre-generated sessions pick their session with it.
	Pool int
	// Query is the 0-based query ordinal within the session.
	Query int
}

// Service executes one query for a virtual user and reports its service
// time. Simulate advances the virtual clock by the returned duration; Run
// ignores it and measures wall time around the call. A failed execution
// still consumes its returned duration (the engine was busy failing).
type Service func(u User) (time.Duration, error)

// SLO is the verdict contract of a run. Zero bounds are unchecked; a run
// passes when every set percentile bound holds and nothing was shed and no
// execution failed.
type SLO struct {
	// P50, P99, P999 bound the arrival-anchored latency percentiles.
	P50, P99, P999 time.Duration
	// Late is the per-query latency budget: completions over it are
	// counted in Report.Late (0 counts nothing). Late queries fail the
	// run only through the percentile bounds — open-loop semantics is
	// that they are measured, not dropped.
	Late time.Duration
}

// Config parameterises one load-generation run.
type Config struct {
	// Seed drives every stochastic choice: arrivals, preset draws, think
	// times. Same seed, same Config ⇒ same virtual-time Report.
	Seed int64
	// Sessions is the total number of session arrivals (the open-loop
	// population; millions are fine in virtual time).
	Sessions int
	// Rate is the mean session arrival rate per second.
	Rate float64
	// Arrivals selects and shapes the arrival process (Poisson default).
	Arrivals ArrivalSpec
	// Workers bounds the pool executing queries: virtual servers in
	// Simulate, goroutines in Run. Default 4.
	Workers int
	// QueueCap bounds the backlog of due-but-unstarted queries; beyond
	// it queries are shed (counted, not executed). Default 4096.
	QueueCap int
	// Mix is the preset population users are drawn from (uniformly, per
	// user seed). Default core.Presets().
	Mix []core.Preset
	// PoolSize is the number of workload slots users cycle through (see
	// User.Pool). Default 1.
	PoolSize int
	// ThinkScale multiplies the preset think times — real-time smokes
	// compress hours of thinking into milliseconds. Default 1.
	ThinkScale float64
	// SLO is the verdict contract.
	SLO SLO
	// Service executes the queries. Required.
	Service Service
	// Obs receives load.* counters, gauges, histograms and the run
	// summary trace event. Optional.
	Obs obs.Scope
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = core.Presets()
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 1
	}
	if cfg.ThinkScale <= 0 {
		cfg.ThinkScale = 1
	}
	return cfg
}

// thinkMean is the mean think time of one explorer preset. The paper's
// model (§III) gives each preset a temperament, not a clock; the mapping
// here makes the decisive expert (α=0.2, 5 queries) pause a quarter as long
// as the wandering novice (α=0.5, 20 queries), which is the shape
// interactive-workload studies report. Think times are drawn Exp(mean) per
// query from the user's seed.
func thinkMean(p core.Preset) time.Duration {
	switch p.Name {
	case core.Novice.Name:
		return 8 * time.Second
	case core.Intermediate.Name:
		return 4 * time.Second
	case core.Expert.Name:
		return 2 * time.Second
	}
	return 4 * time.Second
}

// Report is the outcome of one run.
type Report struct {
	// Rate echoes the configured mean arrival rate (sessions/s).
	Rate float64 `json:"rate"`
	// Arrivals names the arrival process (poisson, bursty).
	Arrivals string `json:"arrivals"`
	// Sessions/Queries count arrivals and issued queries (shed included).
	Sessions int64 `json:"sessions"`
	Queries  int64 `json:"queries"`
	// Completed counts successful executions, Errors failed ones, Shed
	// queries dropped at the backlog bound, Late completions over
	// SLO.Late.
	Completed int64 `json:"completed"`
	Errors    int64 `json:"errors"`
	Shed      int64 `json:"shed"`
	Late      int64 `json:"late"`
	// MaxBacklog is the high-water mark of due-but-unstarted queries.
	MaxBacklog int `json:"max_backlog"`
	// Horizon is the span from the first arrival to the last completion
	// (virtual for Simulate, wall for Run).
	Horizon time.Duration `json:"horizon_ns"`
	// Latency is the arrival-anchored (due → completion) distribution;
	// QueueWait the due → start share of it.
	Latency   obs.HistogramSnapshot `json:"latency"`
	QueueWait obs.HistogramSnapshot `json:"queue_wait"`
	// Pass is the SLO verdict.
	Pass bool `json:"pass"`
}

// evaluate fills the verdict from the SLO: percentile bounds, no sheds, no
// errors.
func (r *Report) evaluate(slo SLO) {
	r.Pass = r.Shed == 0 && r.Errors == 0 &&
		(slo.P50 == 0 || r.Latency.P50 <= slo.P50) &&
		(slo.P99 == 0 || r.Latency.P99 <= slo.P99) &&
		(slo.P999 == 0 || r.Latency.P999 <= slo.P999)
}

// publish mirrors the run's totals into the obs scope and closes with one
// load_run trace event.
func (r *Report) publish(cfg Config, lat, qwait *obs.Histogram) {
	sc := cfg.Obs
	if !sc.Enabled() {
		return
	}
	sc.Counter(obs.MLoadSessions).Add(r.Sessions)
	sc.Counter(obs.MLoadQueries).Add(r.Queries)
	sc.Counter(obs.MLoadCompleted).Add(r.Completed)
	sc.Counter(obs.MLoadErrors).Add(r.Errors)
	sc.Counter(obs.MLoadShed).Add(r.Shed)
	sc.Counter(obs.MLoadLate).Add(r.Late)
	sc.Gauge(obs.MLoadBacklog).Set(0)
	if sc.Metrics != nil {
		sc.Metrics.Histogram(obs.MLoadLatency).Merge(lat)
		sc.Metrics.Histogram(obs.MLoadQueueWait).Merge(qwait)
	}
	sc.Record(obs.Event{
		Type: obs.EvLoadRun, Kind: r.Arrivals,
		Queries: int(r.Queries), Workers: cfg.Workers,
		Duration: r.Horizon,
	})
}
