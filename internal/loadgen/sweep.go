package loadgen

import (
	"errors"
	"fmt"
)

// SweepResult is the outcome of one saturation search.
type SweepResult struct {
	// MaxRate is the highest probed arrival rate (sessions/s) whose run
	// passed its SLO; 0 when even the lowest probe failed.
	MaxRate float64 `json:"max_rate"`
	// Probes holds every probed run in probe order.
	Probes []Report `json:"probes"`
}

// Sweep binary-searches the maximum sustainable arrival rate: the highest
// sessions/s at which run still passes its SLO. run must map a rate to a
// finished Report (typically a closure over a Config calling Simulate, so
// the search is deterministic). lo must pass-or-fail cheaply: the search
// first brackets [lo, hi], then halves the interval `steps` times.
func Sweep(lo, hi float64, steps int, run func(rate float64) (Report, error)) (SweepResult, error) {
	var sr SweepResult
	if lo <= 0 || hi <= lo {
		return sr, fmt.Errorf("loadgen: sweep wants 0 < lo < hi, got [%g, %g]", lo, hi)
	}
	if steps < 1 {
		return sr, errors.New("loadgen: sweep wants at least one bisection step")
	}
	probe := func(rate float64) (bool, error) {
		r, err := run(rate)
		if err != nil {
			return false, err
		}
		sr.Probes = append(sr.Probes, r)
		return r.Pass, nil
	}
	ok, err := probe(lo)
	if err != nil {
		return sr, err
	}
	if !ok {
		// Saturated below the bracket: report 0 rather than guessing.
		return sr, nil
	}
	sr.MaxRate = lo
	if ok, err = probe(hi); err != nil {
		return sr, err
	} else if ok {
		sr.MaxRate = hi
		return sr, nil
	}
	for i := 0; i < steps; i++ {
		mid := (lo + hi) / 2
		if ok, err = probe(mid); err != nil {
			return sr, err
		}
		if ok {
			sr.MaxRate, lo = mid, mid
		} else {
			hi = mid
		}
	}
	return sr, nil
}
