package loadgen

import (
	"math"
	"time"
)

// prng is a splitmix64 generator: 8 bytes of state, so every one of
// millions of virtual users can carry its own independent stream (a
// math/rand.Rand would cost ~5KiB of state each). Streams are derived from
// (seed, user id), making every user's draws independent of scheduling and
// of every other user — the property the byte-identical-report guarantee
// rests on.
type prng struct{ s uint64 }

// newPrng derives the stream for one (seed, stream) pair, mixing both
// through the output function so adjacent ids do not yield adjacent states.
func newPrng(seed int64, stream uint64) prng {
	p := prng{s: uint64(seed) ^ (stream+1)*0x9e3779b97f4a7c15}
	p.next()
	return p
}

func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 draws uniformly from [0, 1).
func (p *prng) float64() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// intn draws uniformly from [0, n).
func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}

// expDur draws Exp(mean) as a duration: the inter-arrival and think-time
// distribution of the explorer model.
func (p *prng) expDur(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := -math.Log(1-p.float64()) * float64(mean)
	if d > float64(math.MaxInt64)/2 {
		d = float64(math.MaxInt64) / 2
	}
	return time.Duration(d)
}
