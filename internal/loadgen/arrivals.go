package loadgen

import (
	"fmt"
	"time"
)

// Arrival-process kinds. The names double as the Kind of the load_run trace
// event (mirrored as obs.KindPoisson/KindBursty in the closed vocabulary).
const (
	// Poisson is the memoryless arrival process: independent exponential
	// inter-arrival gaps at the configured mean rate.
	Poisson = "poisson"
	// Bursty is a two-state MMPP (Markov-modulated Poisson process):
	// calm stretches at a reduced rate broken by bursts at
	// BurstFactor×Rate, with exponentially distributed dwell times. The
	// long-run mean rate still equals Rate, so sweeps stay comparable —
	// bursts redistribute the same offered load into worst-case windows.
	Bursty = "bursty"
)

// ArrivalSpec shapes the session arrival process. The mean rate itself
// lives in Config.Rate so saturation sweeps can vary it alone.
type ArrivalSpec struct {
	// Kind is Poisson (default when empty) or Bursty.
	Kind string
	// BurstFactor is the burst-state rate multiplier (Bursty only).
	// Default 4.
	BurstFactor float64
	// BurstDwell and CalmDwell are the mean state dwell times (Bursty
	// only). Defaults 2s and 8s.
	BurstDwell time.Duration
	CalmDwell  time.Duration
}

func (s ArrivalSpec) withDefaults() (ArrivalSpec, error) {
	if s.Kind == "" {
		s.Kind = Poisson
	}
	if s.Kind != Poisson && s.Kind != Bursty {
		return s, fmt.Errorf("loadgen: unknown arrival kind %q (want %s or %s)", s.Kind, Poisson, Bursty)
	}
	if s.BurstFactor <= 1 {
		s.BurstFactor = 4
	}
	if s.BurstDwell <= 0 {
		s.BurstDwell = 2 * time.Second
	}
	if s.CalmDwell <= 0 {
		s.CalmDwell = 8 * time.Second
	}
	// The calm-state rate compensating the burst state must stay
	// positive: factor×burstShare < 1.
	burstShare := float64(s.BurstDwell) / float64(s.BurstDwell+s.CalmDwell)
	if s.BurstFactor*burstShare >= 1 {
		return s, fmt.Errorf("loadgen: burst factor %.3g over dwell share %.3g leaves no calm-state rate", s.BurstFactor, burstShare)
	}
	return s, nil
}

// arrivals generates the absolute (virtual-nanosecond) session arrival
// instants for one run.
type arrivals struct {
	spec     ArrivalSpec
	rng      prng
	now      int64 // virtual ns of the last arrival
	burst    bool
	switchAt int64 // virtual ns at which the current MMPP state ends
	calmGap  time.Duration
	burstGap time.Duration
}

func newArrivals(spec ArrivalSpec, rate float64, rng prng) *arrivals {
	a := &arrivals{spec: spec, rng: rng}
	meanGap := time.Duration(float64(time.Second) / rate)
	if spec.Kind == Poisson {
		a.calmGap = meanGap
		return a
	}
	// Split the mean rate over the two MMPP states: bursts run at
	// factor×rate; the calm rate is solved so the dwell-weighted mean
	// stays at rate.
	burstShare := float64(spec.BurstDwell) / float64(spec.BurstDwell+spec.CalmDwell)
	calmRate := rate * (1 - spec.BurstFactor*burstShare) / (1 - burstShare)
	a.burstGap = time.Duration(float64(time.Second) / (rate * spec.BurstFactor))
	a.calmGap = time.Duration(float64(time.Second) / calmRate)
	a.switchAt = int64(a.rng.expDur(spec.CalmDwell))
	return a
}

// next returns the absolute time of the next arrival.
func (a *arrivals) next() int64 {
	if a.spec.Kind == Poisson {
		a.now += int64(a.rng.expDur(a.calmGap))
		return a.now
	}
	for {
		gap := a.calmGap
		if a.burst {
			gap = a.burstGap
		}
		candidate := a.now + int64(a.rng.expDur(gap))
		if candidate <= a.switchAt {
			a.now = candidate
			return a.now
		}
		// The state flips before the candidate fires: advance to the
		// switch and redraw from the new state's rate (the memoryless
		// property makes the discard exact, not an approximation).
		a.now = a.switchAt
		a.burst = !a.burst
		dwell := a.spec.CalmDwell
		if a.burst {
			dwell = a.spec.BurstDwell
		}
		a.switchAt = a.now + int64(a.rng.expDur(dwell))
	}
}
