package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/obs"
)

// fixedService answers every query in a constant duration.
func fixedService(d time.Duration) Service {
	return func(User) (time.Duration, error) { return d, nil }
}

func simulate(t *testing.T, cfg Config) Report {
	t.Helper()
	rep, err := Simulate(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return rep
}

// TestSimulateDeterministic is the seed contract: the same Config must yield
// a byte-identical Report, including every histogram percentile.
func TestSimulateDeterministic(t *testing.T) {
	for _, kind := range []string{Poisson, Bursty} {
		cfg := Config{
			Seed:     42,
			Sessions: 500,
			Rate:     50,
			Arrivals: ArrivalSpec{Kind: kind},
			Workers:  4,
			SLO:      SLO{P99: time.Second, Late: 500 * time.Millisecond},
			Service: func(u User) (time.Duration, error) {
				// Vary service time by user identity so scheduling bugs
				// would perturb the distribution.
				return time.Duration(1+u.ID%7) * 10 * time.Millisecond, nil
			},
		}
		a, err := json.Marshal(simulate(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(simulate(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: same seed produced different reports:\n%s\n%s", kind, a, b)
		}
	}
}

func TestSimulateSeedChangesRun(t *testing.T) {
	cfg := Config{
		Seed: 1, Sessions: 200, Rate: 100,
		Service: fixedService(5 * time.Millisecond),
	}
	a := simulate(t, cfg)
	cfg.Seed = 2
	b := simulate(t, cfg)
	if a.Horizon == b.Horizon && a.Latency.P99 == b.Latency.P99 {
		t.Error("different seeds produced an identical run")
	}
}

// TestSimulateAccounting checks the conservation laws of a run: every
// arrival's queries are issued, and issued = completed + errors + shed.
func TestSimulateAccounting(t *testing.T) {
	cfg := Config{
		Seed: 7, Sessions: 300, Rate: 200, Workers: 2,
		Service: func(u User) (time.Duration, error) {
			return 2 * time.Millisecond, nil
		},
	}
	rep := simulate(t, cfg)
	if rep.Sessions != 300 {
		t.Fatalf("sessions = %d, want 300", rep.Sessions)
	}
	if rep.Queries != rep.Completed+rep.Errors+rep.Shed {
		t.Errorf("queries %d != completed %d + errors %d + shed %d",
			rep.Queries, rep.Completed, rep.Errors, rep.Shed)
	}
	// Presets issue 5–20 queries per session.
	if rep.Queries < 5*rep.Sessions || rep.Queries > 20*rep.Sessions {
		t.Errorf("queries per session out of preset range: %d over %d sessions", rep.Queries, rep.Sessions)
	}
	if rep.Latency.Count != rep.Completed+rep.Errors {
		t.Errorf("latency samples %d != executed %d", rep.Latency.Count, rep.Completed+rep.Errors)
	}
}

// TestSimulateOpenLoop: with one worker and service time far above the
// arrival gap, latencies must grow with queue depth (late completions are
// measured, not dropped) and backlog must be visible.
func TestSimulateOpenLoop(t *testing.T) {
	cfg := Config{
		Seed: 3, Sessions: 50, Rate: 1000, Workers: 1,
		QueueCap: 1 << 20,
		// Think times of hours relative to the horizon would serialize
		// queries; compress them away so sessions hammer the queue.
		ThinkScale: 1e-6,
		Service:    fixedService(10 * time.Millisecond),
		SLO:        SLO{Late: 20 * time.Millisecond},
	}
	rep := simulate(t, cfg)
	if rep.MaxBacklog < 10 {
		t.Errorf("expected a deep backlog under 10x overload, got max %d", rep.MaxBacklog)
	}
	if rep.Late == 0 {
		t.Error("open loop under overload must count late completions")
	}
	if rep.Latency.P99 <= rep.QueueWait.P50 {
		t.Errorf("tail latency %v should dominate median queue wait %v", rep.Latency.P99, rep.QueueWait.P50)
	}
	// Open loop: total latency = queue wait + service time for every query.
	if got, want := rep.Latency.Max-rep.QueueWait.Max, 10*time.Millisecond; got != want {
		t.Errorf("max latency - max wait = %v, want the service time %v", got, want)
	}
}

// TestSimulateShed: a tiny queue bound under overload must shed rather than
// grow without bound, and shed queries fail the SLO.
func TestSimulateShed(t *testing.T) {
	cfg := Config{
		Seed: 3, Sessions: 50, Rate: 1000, Workers: 1,
		QueueCap:   8,
		ThinkScale: 1e-6,
		Service:    fixedService(10 * time.Millisecond),
	}
	rep := simulate(t, cfg)
	if rep.Shed == 0 {
		t.Fatal("QueueCap 8 under 10x overload must shed")
	}
	if rep.MaxBacklog > 8 {
		t.Errorf("backlog %d exceeded QueueCap 8", rep.MaxBacklog)
	}
	if rep.Pass {
		t.Error("a shedding run must not pass its SLO")
	}
}

func TestSimulateErrorsCounted(t *testing.T) {
	cfg := Config{
		Seed: 9, Sessions: 100, Rate: 100,
		Service: func(u User) (time.Duration, error) {
			if u.Query == 0 {
				return time.Millisecond, context.DeadlineExceeded
			}
			return time.Millisecond, nil
		},
	}
	rep := simulate(t, cfg)
	if rep.Errors != rep.Sessions {
		t.Errorf("errors = %d, want one per session (%d)", rep.Errors, rep.Sessions)
	}
	if rep.Pass {
		t.Error("a failing run must not pass")
	}
}

// TestSimulateMillionUsers is the scale contract: a million sessions in
// virtual time, bounded memory per user. Shortened under -short.
func TestSimulateMillionUsers(t *testing.T) {
	sessions := 1_000_000
	if testing.Short() {
		sessions = 100_000
	}
	cfg := Config{
		Seed: 11, Sessions: sessions, Rate: 2_000_000,
		Workers: 64, QueueCap: 1 << 20,
		ThinkScale: 1e-3,
		Service:    fixedService(20 * time.Microsecond),
	}
	start := time.Now()
	rep := simulate(t, cfg)
	if rep.Sessions != int64(sessions) {
		t.Fatalf("sessions = %d, want %d", rep.Sessions, sessions)
	}
	if rep.Queries < int64(5*sessions) {
		t.Errorf("queries = %d, want at least 5 per session", rep.Queries)
	}
	t.Logf("%d sessions, %d queries simulated in %v (horizon %v, max backlog %d)",
		rep.Sessions, rep.Queries, time.Since(start).Round(time.Millisecond), rep.Horizon.Round(time.Millisecond), rep.MaxBacklog)
}

// TestArrivalsMeanRate: both processes must deliver the configured mean rate
// over a long run (MMPP bursts redistribute load, not add it). The MMPP
// needs a long horizon: per-cycle arrival counts have std ≈ mean, so the
// observed rate converges only as 1/√cycles — 2M arrivals is ~2000 cycles.
func TestArrivalsMeanRate(t *testing.T) {
	const rate, n = 100.0, 2_000_000
	for _, kind := range []string{Poisson, Bursty} {
		spec, err := ArrivalSpec{Kind: kind}.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		arr := newArrivals(spec, rate, newPrng(5, 0))
		var last int64
		for i := 0; i < n; i++ {
			last = arr.next()
		}
		got := float64(n) / (float64(last) / float64(time.Second))
		if math.Abs(got-rate)/rate > 0.05 {
			t.Errorf("%s: observed mean rate %.1f/s, want %.1f/s ±5%%", kind, got, rate)
		}
	}
}

// TestArrivalsBurstiness: the MMPP process must be visibly burstier than
// Poisson at the same mean rate (higher variance of per-window counts).
func TestArrivalsBurstiness(t *testing.T) {
	const rate, n = 100.0, 100_000
	window := int64(time.Second)
	varOf := func(kind string) float64 {
		spec, err := ArrivalSpec{Kind: kind}.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		arr := newArrivals(spec, rate, newPrng(5, 0))
		counts := map[int64]float64{}
		var last int64
		for i := 0; i < n; i++ {
			last = arr.next()
			counts[last/window]++
		}
		windows := last/window + 1
		mean := float64(n) / float64(windows)
		var v float64
		for w := int64(0); w < windows; w++ {
			d := counts[w] - mean
			v += d * d
		}
		return v / float64(windows)
	}
	poisson, bursty := varOf(Poisson), varOf(Bursty)
	if bursty < 2*poisson {
		t.Errorf("MMPP window-count variance %.1f not clearly above Poisson's %.1f", bursty, poisson)
	}
}

func TestArrivalSpecValidation(t *testing.T) {
	if _, err := (ArrivalSpec{Kind: "weird"}).withDefaults(); err == nil {
		t.Error("unknown kind must be rejected")
	}
	// Factor 10 over a 50% burst share leaves a negative calm rate.
	bad := ArrivalSpec{Kind: Bursty, BurstFactor: 10, BurstDwell: time.Second, CalmDwell: time.Second}
	if _, err := bad.withDefaults(); err == nil {
		t.Error("impossible burst factor must be rejected")
	}
}

func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Simulate(ctx, Config{Sessions: 1, Rate: 1}); err == nil {
		t.Error("missing Service must be rejected")
	}
	if _, err := Simulate(ctx, Config{Rate: 1, Service: fixedService(0)}); err == nil {
		t.Error("zero Sessions must be rejected")
	}
	if _, err := Simulate(ctx, Config{Sessions: 1, Service: fixedService(0)}); err == nil {
		t.Error("zero Rate must be rejected")
	}
}

func TestSimulateContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{
		Seed: 1, Sessions: 100_000, Rate: 1000,
		Service: fixedService(time.Millisecond),
	}
	if _, err := Simulate(ctx, cfg); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestSimulatePublish: the run's totals must land in the obs scope under the
// closed load.* vocabulary.
func TestSimulatePublish(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		Seed: 4, Sessions: 50, Rate: 100,
		Obs:     obs.Scope{Metrics: reg},
		Service: fixedService(time.Millisecond),
	}
	rep := simulate(t, cfg)
	snap := reg.Snapshot()
	if got := snap.Counters[obs.MLoadQueries]; got != rep.Queries {
		t.Errorf("%s = %d, want %d", obs.MLoadQueries, got, rep.Queries)
	}
	if got := snap.Counters[obs.MLoadCompleted]; got != rep.Completed {
		t.Errorf("%s = %d, want %d", obs.MLoadCompleted, got, rep.Completed)
	}
	h, ok := snap.Histograms[obs.MLoadLatency]
	if !ok || h.Count != rep.Latency.Count {
		t.Errorf("%s count = %+v, want %d samples", obs.MLoadLatency, h, rep.Latency.Count)
	}
}

// TestRunRealtime drives the wall-clock runner with compressed think times.
// Exercised under -race in make check; only sanity properties are asserted
// because latencies are real.
func TestRunRealtime(t *testing.T) {
	cfg := Config{
		Seed: 6, Sessions: 40, Rate: 2000,
		Workers: 4, ThinkScale: 1e-6,
		Service: fixedService(100 * time.Microsecond),
		SLO:     SLO{Late: 500 * time.Millisecond},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Sessions != 40 {
		t.Fatalf("sessions = %d, want 40", rep.Sessions)
	}
	if rep.Queries != rep.Completed+rep.Errors+rep.Shed {
		t.Errorf("queries %d != completed %d + errors %d + shed %d",
			rep.Queries, rep.Completed, rep.Errors, rep.Shed)
	}
	if rep.Latency.Count != rep.Completed+rep.Errors {
		t.Errorf("latency samples %d != executed %d", rep.Latency.Count, rep.Completed+rep.Errors)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		Seed: 6, Sessions: 1000, Rate: 50,
		Service: fixedService(time.Millisecond),
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, cfg)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not stop after cancel")
	}
}

func TestSweep(t *testing.T) {
	// A synthetic knee at 120/s: runs pass strictly below it.
	run := func(rate float64) (Report, error) {
		return Report{Rate: rate, Pass: rate < 120}, nil
	}
	sr, err := Sweep(10, 1000, 12, run)
	if err != nil {
		t.Fatal(err)
	}
	if sr.MaxRate < 110 || sr.MaxRate >= 120 {
		t.Errorf("max rate %.2f, want in [110, 120)", sr.MaxRate)
	}
	if len(sr.Probes) != 14 {
		t.Errorf("probes = %d, want bracket 2 + steps 12", len(sr.Probes))
	}

	// Saturated below the bracket.
	sr, err = Sweep(10, 1000, 4, func(float64) (Report, error) { return Report{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if sr.MaxRate != 0 {
		t.Errorf("max rate %.2f, want 0 when lo already fails", sr.MaxRate)
	}

	// Unsaturated above the bracket.
	sr, err = Sweep(10, 1000, 4, func(rate float64) (Report, error) { return Report{Pass: true}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if sr.MaxRate != 1000 {
		t.Errorf("max rate %.2f, want hi when everything passes", sr.MaxRate)
	}

	if _, err := Sweep(0, 10, 4, run); err == nil {
		t.Error("lo <= 0 must be rejected")
	}
}

// TestSweepDeterministicSimulate: a sweep over Simulate closures must be
// reproducible end to end.
func TestSweepDeterministicSimulate(t *testing.T) {
	sweepOnce := func() SweepResult {
		run := func(rate float64) (Report, error) {
			return Simulate(context.Background(), Config{
				Seed: 13, Sessions: 200, Rate: rate,
				Workers: 2, QueueCap: 64, ThinkScale: 1e-6,
				Service: fixedService(4 * time.Millisecond),
				SLO:     SLO{P99: 100 * time.Millisecond},
			})
		}
		sr, err := Sweep(5, 5000, 8, run)
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	a, _ := json.Marshal(sweepOnce())
	b, _ := json.Marshal(sweepOnce())
	if string(a) != string(b) {
		t.Error("sweep over seeded Simulate was not reproducible")
	}
}
