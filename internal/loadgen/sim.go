package loadgen

import (
	"context"
	"errors"
	"time"

	"github.com/joda-explore/betze/internal/obs"
)

// user is one lightweight session state machine: 40 bytes of state, so
// millions of concurrent sessions fit comfortably. The scheduler owns it;
// services only ever see the User view.
type user struct {
	id    int64
	rng   prng
	pool  int32
	idx   int32 // next query ordinal
	total int32
	preset int8
}

func newUser(cfg Config, id int64) *user {
	u := &user{id: id, rng: newPrng(cfg.Seed, uint64(id))}
	u.preset = int8(u.rng.intn(len(cfg.Mix)))
	u.total = int32(cfg.Mix[u.preset].Queries)
	u.pool = int32((id - 1) % int64(cfg.PoolSize))
	return u
}

func (u *user) view(cfg Config) User {
	return User{ID: u.id, Preset: cfg.Mix[u.preset], Pool: int(u.pool), Query: int(u.idx)}
}

// think draws the user's next think-time gap from the preset's exponential.
func (u *user) think(cfg Config) time.Duration {
	mean := time.Duration(float64(thinkMean(cfg.Mix[u.preset])) * cfg.ThinkScale)
	return u.rng.expDur(mean)
}

func validate(cfg Config) (Config, error) {
	cfg = cfg.withDefaults()
	spec, err := cfg.Arrivals.withDefaults()
	if err != nil {
		return cfg, err
	}
	cfg.Arrivals = spec
	if cfg.Service == nil {
		return cfg, errors.New("loadgen: Config.Service is required")
	}
	if cfg.Sessions <= 0 {
		return cfg, errors.New("loadgen: Config.Sessions must be positive")
	}
	if cfg.Rate <= 0 {
		return cfg, errors.New("loadgen: Config.Rate must be positive")
	}
	return cfg, nil
}

// Simulate runs the open-loop engine in virtual time: a discrete-event loop
// over the arrival/think event heap and a Workers-server FIFO queue. Every
// query is assigned, in due order, to the earliest-free server —
// start = max(due, free) — which is exactly a single FIFO queue in front of
// W servers, so queue waits and completions follow from arrival times and
// service durations alone. Deterministic under Config.Seed: the same
// Config yields a byte-identical Report.
//
// Open-loop accounting: arrivals never slow down; a query due while every
// server is busy waits (counted in the backlog and its own latency), and
// once the backlog holds QueueCap waiting queries, further due queries are
// shed. Latency is always measured from the due instant.
func Simulate(ctx context.Context, cfg Config) (Report, error) {
	cfg, err := validate(cfg)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Rate: cfg.Rate, Arrivals: cfg.Arrivals.Kind}
	lat, qwait := &obs.Histogram{}, &obs.Histogram{}
	backlogGauge := cfg.Obs.Gauge(obs.MLoadBacklog)

	var (
		evs     eventHeap
		servers int64Heap // free-at instant per virtual server
		pending int64Heap // start instants of queries still waiting
		seq     int64
		horizon int64
	)
	push := func(at int64, u *user) {
		seq++
		evs.push(event{at: at, seq: seq, u: u})
	}
	for i := 0; i < cfg.Workers; i++ {
		servers.push(0)
	}
	arr := newArrivals(cfg.Arrivals, cfg.Rate, newPrng(cfg.Seed, 0))
	arrived := 0
	push(arr.next(), nil)

	steps := 0
	for len(evs) > 0 {
		steps++
		if steps&0xfff == 0 {
			select {
			case <-ctx.Done():
				return rep, ctx.Err()
			default:
			}
		}
		e := evs.pop()
		now := e.at
		for len(pending) > 0 && pending.min() <= now {
			pending.pop()
		}
		if e.u == nil {
			// Session arrival: the first query is due immediately; the
			// generator schedules the next arrival regardless of system
			// state (the open loop).
			arrived++
			rep.Sessions++
			push(now, newUser(cfg, int64(arrived)))
			if arrived < cfg.Sessions {
				push(arr.next(), nil)
			}
			continue
		}
		u := e.u
		due := now
		rep.Queries++
		if len(pending) >= cfg.QueueCap {
			rep.Shed++
			u.idx++
			if u.idx < u.total {
				push(due+int64(u.think(cfg)), u)
			}
			continue
		}
		free := servers.pop()
		start := due
		if free > start {
			start = free
		}
		d, serr := cfg.Service(u.view(cfg))
		if d < 0 {
			d = 0
		}
		complete := start + int64(d)
		servers.push(complete)
		if start > due {
			pending.push(start)
			if len(pending) > rep.MaxBacklog {
				rep.MaxBacklog = len(pending)
				backlogGauge.Set(float64(len(pending)))
			}
		}
		if serr != nil {
			rep.Errors++
		} else {
			rep.Completed++
		}
		latency := complete - due
		lat.Record(time.Duration(latency))
		qwait.Record(time.Duration(start - due))
		if cfg.SLO.Late > 0 && latency > int64(cfg.SLO.Late) {
			rep.Late++
		}
		if complete > horizon {
			horizon = complete
		}
		u.idx++
		if u.idx < u.total {
			push(complete+int64(u.think(cfg)), u)
		}
	}
	rep.Horizon = time.Duration(horizon)
	rep.Latency = lat.Snapshot()
	rep.QueueWait = qwait.Snapshot()
	rep.evaluate(cfg.SLO)
	rep.publish(cfg, lat, qwait)
	return rep, nil
}
