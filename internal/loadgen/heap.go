package loadgen

// event is one scheduled instant: a session arrival (u == nil, the single
// generator event) or a user's next query becoming due.
type event struct {
	at  int64 // virtual or wall-offset nanoseconds
	seq int64 // creation order: deterministic tie-break for equal times
	u   *user
}

// eventHeap is a plain binary min-heap ordered by (at, seq). Hand-rolled
// rather than container/heap to keep the hot loop free of interface calls
// and to make the deterministic tie-break explicit.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = event{} // release the *user for the GC
	*h = s[:last]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	s := *h
	n := len(s)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s.less(l, small) {
			small = l
		}
		if r < n && s.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
}

// int64Heap is a min-heap of instants: the virtual servers' free-at times
// and the pending-start backlog both live in one.
type int64Heap []int64

func (h *int64Heap) push(v int64) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[i] >= (*h)[parent] {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *int64Heap) pop() int64 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = *h
	n := len(s)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l] < s[small] {
			small = l
		}
		if r < n && s[r] < s[small] {
			small = r
		}
		if small == i {
			return top
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
}

func (h int64Heap) min() int64 { return h[0] }
