package loadgen

import (
	"sync"
	"time"

	"context"

	"github.com/joda-explore/betze/internal/obs"
)

// dispatchItem is one query handed to the worker pool with its open-loop due
// instant (wall offset from the run base).
type dispatchItem struct {
	u   *user
	due int64
}

// workerResult flows back from the pool so the single scheduler goroutine
// owns all session bookkeeping.
type workerResult struct {
	u       *user
	end     int64
	latency int64
	failed  bool
}

// Run drives the Service on the wall clock: a scheduler goroutine multiplexes
// the session state machines over a timer and a pool of Workers goroutines.
// Arrival, preset, and think-time draws come from the same seeded streams as
// Simulate, but latencies are measured, so reports vary run to run. Queries
// due while the dispatch queue is full are shed; latency is measured from the
// due instant, never from dispatch (no coordinated omission).
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg, err := validate(cfg)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Rate: cfg.Rate, Arrivals: cfg.Arrivals.Kind}
	lat, qwait := &obs.Histogram{}, &obs.Histogram{}
	backlogGauge := cfg.Obs.Gauge(obs.MLoadBacklog)

	// The one wall-clock read: everything downstream is an offset from it.
	//lint:ignore determinism Run measures real wall-clock latencies by design; the seeded reproducible path is Simulate.
	base := time.Now()
	now := func() int64 { return int64(time.Since(base)) }

	dispatch := make(chan dispatchItem, cfg.QueueCap)
	// Results are buffered past the worst-case in-flight count so workers
	// never block on the scheduler.
	results := make(chan workerResult, cfg.QueueCap+cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range dispatch {
				start := now()
				wait := start - it.due
				if wait < 0 {
					wait = 0
				}
				_, serr := cfg.Service(it.u.view(cfg))
				end := now()
				// Lock-free obs hot path: zero-alloc records from every
				// worker into sharded cells.
				lat.Record(time.Duration(end - it.due))
				qwait.Record(time.Duration(wait))
				results <- workerResult{u: it.u, end: end, latency: end - it.due, failed: serr != nil}
			}
		}()
	}

	var (
		evs      eventHeap
		seq      int64
		arrived  int
		inflight int
		aborted  bool
	)
	push := func(at int64, u *user) {
		seq++
		evs.push(event{at: at, seq: seq, u: u})
	}
	arr := newArrivals(cfg.Arrivals, cfg.Rate, newPrng(cfg.Seed, 0))
	push(arr.next(), nil)

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()

	sessionDone := func(u *user, at int64) {
		u.idx++
		if u.idx < u.total {
			push(at+int64(u.think(cfg)), u)
		}
	}
	handleResult := func(r workerResult) {
		inflight--
		if r.failed {
			rep.Errors++
		} else {
			rep.Completed++
		}
		if cfg.SLO.Late > 0 && r.latency > int64(cfg.SLO.Late) {
			rep.Late++
		}
		sessionDone(r.u, r.end)
	}

	for !aborted && (len(evs) > 0 || inflight > 0) {
		if len(evs) == 0 {
			select {
			case r := <-results:
				handleResult(r)
			case <-ctx.Done():
				aborted = true
			}
			continue
		}
		wait := time.Duration(evs[0].at - now())
		if wait < 0 {
			wait = 0
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
			// Drain everything that has come due; arrivals enqueue the
			// user's first query at the same instant, so it dispatches in
			// this same drain.
			t := now()
			for len(evs) > 0 && evs[0].at <= t {
				e := evs.pop()
				if e.u == nil {
					arrived++
					rep.Sessions++
					push(e.at, newUser(cfg, int64(arrived)))
					if arrived < cfg.Sessions {
						push(arr.next(), nil)
					}
					continue
				}
				rep.Queries++
				select {
				case dispatch <- dispatchItem{u: e.u, due: e.at}:
					inflight++
					if b := len(dispatch); b > rep.MaxBacklog {
						rep.MaxBacklog = b
						backlogGauge.Set(float64(b))
					}
				default:
					// Queue full: open-loop shed, the session moves on.
					rep.Shed++
					sessionDone(e.u, t)
				}
			}
		case r := <-results:
			handleResult(r)
		case <-ctx.Done():
			aborted = true
		}
	}
	close(dispatch)
	wg.Wait()
	rep.Horizon = time.Duration(now())
	rep.Latency = lat.Snapshot()
	rep.QueueWait = qwait.Snapshot()
	rep.evaluate(cfg.SLO)
	rep.publish(cfg, lat, qwait)
	if aborted {
		return rep, ctx.Err()
	}
	return rep, nil
}
