// Package analyze implements the BETZE dataset analyzer (§IV-A).
//
// The analyzer streams a JSON dataset once and produces the statistical
// summary (internal/jsonstats) the query generator works on. The paper uses
// a JODA instance as the analysis backend; this implementation is native Go
// with a parallel worker pool — the "included in the generator without the
// help of external data wrangling tools" variant the paper lists as future
// work — while the engine packages can still serve as alternative backends.
package analyze

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/jsonval"
)

// Options configures an analyzer run.
type Options struct {
	// Workers is the number of parallel analysis goroutines; 0 means
	// runtime.NumCPU().
	Workers int
	// Stats bounds the string statistics (zero value: package defaults).
	Stats jsonstats.Config
	// SampleEvery analyzes only every k-th document (deterministically),
	// the paper's §VI-A suggestion for cutting analysis time "at a
	// potential minor loss of query accuracy". 0 or 1 analyzes everything.
	// Selectivity targeting works on ratios, so a sampled summary remains
	// directly usable by the generator.
	SampleEvery int
}

// sampled reports whether document index i participates.
func (o Options) sampled(i int64) bool {
	return o.SampleEvery <= 1 || i%int64(o.SampleEvery) == 0
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// Values summarises an in-memory document slice.
func Values(name string, docs []jsonval.Value, opts Options) *jsonstats.Dataset {
	workers := opts.workers()
	if workers > len(docs) {
		workers = max(1, len(docs))
	}
	if workers == 1 {
		out := jsonstats.NewDataset(name, opts.Stats)
		for i, doc := range docs {
			if !opts.sampled(int64(i)) {
				continue
			}
			out.AddDocument(doc)
		}
		return out
	}
	shards := make([]*jsonstats.Dataset, workers)
	var wg sync.WaitGroup
	chunk := (len(docs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(docs))
		if lo >= hi {
			shards[w] = jsonstats.NewDataset(name, opts.Stats)
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ds := jsonstats.NewDataset(name, opts.Stats)
			for i := lo; i < hi; i++ {
				if !opts.sampled(int64(i)) {
					continue
				}
				ds.AddDocument(docs[i])
			}
			shards[w] = ds
		}(w, lo, hi)
	}
	wg.Wait()
	out := shards[0]
	for _, s := range shards[1:] {
		out.Merge(s)
	}
	return out
}

// Reader summarises a stream of concatenated or newline-delimited JSON
// documents. Parsing and statistics run on a worker pool; document order
// does not affect the result because summaries are merge-commutative.
func Reader(name string, r io.Reader, opts Options) (*jsonstats.Dataset, error) {
	workers := opts.workers()
	if workers == 1 {
		dec := jsonval.NewDecoder(r)
		out := jsonstats.NewDataset(name, opts.Stats)
		var i int64
		for {
			doc, err := dec.Decode()
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return nil, fmt.Errorf("analyze: %w", err)
			}
			if opts.sampled(i) {
				out.AddDocument(doc)
			}
			i++
		}
	}

	// Parallel path: the main goroutine only finds document boundaries
	// (jsonval.ScanValue, no parsing); workers parse each raw chunk and
	// fold it into a shard summary. Batches are assigned round-robin so
	// the shard split — and with it the merged summary, including the
	// approximate histograms — is deterministic for a given input.
	const batchSize = 64
	perWorker := make([]chan [][]byte, workers)
	shards := make([]*jsonstats.Dataset, workers)
	var (
		wg        sync.WaitGroup
		errOnce   sync.Once
		workerErr error
	)
	for w := 0; w < workers; w++ {
		perWorker[w] = make(chan [][]byte, 2)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := jsonstats.NewDataset(name, opts.Stats)
			for batch := range perWorker[w] {
				for _, raw := range batch {
					doc, err := jsonval.Parse(raw)
					if err != nil {
						errOnce.Do(func() { workerErr = fmt.Errorf("analyze: %w", err) })
						continue
					}
					ds.AddDocument(doc)
				}
			}
			shards[w] = ds
		}(w)
	}

	next := 0
	var docIdx int64
	scanErr := scanDocuments(r, func(batch [][]byte) {
		if opts.SampleEvery > 1 {
			kept := batch[:0]
			for _, raw := range batch {
				if opts.sampled(docIdx) {
					kept = append(kept, raw)
				}
				docIdx++
			}
			if len(kept) == 0 {
				return
			}
			batch = kept
		}
		perWorker[next%workers] <- batch
		next++
	}, batchSize)
	for _, ch := range perWorker {
		close(ch)
	}
	wg.Wait()
	if scanErr != nil {
		return nil, scanErr
	}
	if workerErr != nil {
		return nil, workerErr
	}
	out := shards[0]
	for _, s := range shards[1:] {
		out.Merge(s)
	}
	return out, nil
}

// scanDocuments splits the stream into per-document byte chunks using
// jsonval.ScanValue and emits them in groups of batchSize.
func scanDocuments(r io.Reader, emit func([][]byte), batchSize int) error {
	buf := make([]byte, 0, 256*1024)
	start := 0
	offset := 0
	eof := false
	batch := make([][]byte, 0, batchSize)
	flush := func() {
		if len(batch) > 0 {
			emit(batch)
			batch = make([][]byte, 0, batchSize)
		}
	}
	for {
		for {
			n, err := jsonval.ScanValue(buf[start:], eof)
			if err != nil {
				if se, ok := err.(*jsonval.SyntaxError); ok {
					se.Offset += offset + start
				}
				return fmt.Errorf("analyze: %w", err)
			}
			if n == 0 {
				break // need more input
			}
			chunk := make([]byte, n)
			copy(chunk, buf[start:start+n])
			batch = append(batch, chunk)
			if len(batch) == batchSize {
				emit(batch)
				batch = make([][]byte, 0, batchSize)
			}
			start += n
		}
		if eof {
			// Any residual non-whitespace is a truncated document.
			for _, c := range buf[start:] {
				switch c {
				case ' ', '\t', '\n', '\r':
				default:
					flush()
					return fmt.Errorf("analyze: truncated document at stream offset %d", offset+start)
				}
			}
			flush()
			return nil
		}
		// Compact and refill.
		if start > 0 {
			n := copy(buf[:cap(buf)], buf[start:])
			offset += start
			buf = buf[:n]
			start = 0
		}
		if len(buf) == cap(buf) {
			grown := make([]byte, len(buf), 2*cap(buf))
			copy(grown, buf)
			buf = grown
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			eof = true
		} else if err != nil {
			flush()
			return fmt.Errorf("analyze: %w", err)
		}
	}
}

// File summarises a dataset file. The dataset name defaults to the file name
// when name is empty.
func File(name, path string, opts Options) (*jsonstats.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	defer f.Close()
	if name == "" {
		name = f.Name()
	}
	return Reader(name, f, opts)
}
