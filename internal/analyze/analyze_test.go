package analyze

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/jsonval"
)

func genDocs(t *testing.T, n int, seed int64) ([]jsonval.Value, []byte) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	docs := make([]jsonval.Value, n)
	var raw []byte
	for i := range docs {
		members := []jsonval.Member{
			{Key: "id", Value: jsonval.IntValue(int64(i))},
			{Key: "score", Value: jsonval.FloatValue(r.Float64() * 100)},
			// Distinct-value count stays under jsonstats.DefaultMaxValues:
			// overflow sampling is legitimately shard-order-dependent.
			{Key: "name", Value: jsonval.StringValue(fmt.Sprintf("user_%03d", r.Intn(30)))},
		}
		if r.Intn(3) == 0 {
			members = append(members, jsonval.Member{Key: "meta", Value: jsonval.ObjectValue(
				jsonval.Member{Key: "verified", Value: jsonval.BoolValue(r.Intn(2) == 0)},
				jsonval.Member{Key: "tags", Value: jsonval.ArrayValue(jsonval.StringValue("a"), jsonval.StringValue("b"))},
			)})
		}
		docs[i] = jsonval.ObjectValue(members...)
		raw = jsonval.AppendJSON(raw, docs[i])
		raw = append(raw, '\n')
	}
	return docs, raw
}

func TestValuesSequentialVsParallel(t *testing.T) {
	docs, _ := genDocs(t, 500, 1)
	seq := Values("d", docs, Options{Workers: 1})
	par := Values("d", docs, Options{Workers: 8})
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
	compareDatasets(t, seq, par)
}

func TestReaderSequentialVsParallel(t *testing.T) {
	docs, raw := genDocs(t, 500, 2)
	fromValues := Values("d", docs, Options{Workers: 1})
	seq, err := Reader("d", bytes.NewReader(raw), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Reader("d", bytes.NewReader(raw), Options{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	compareDatasets(t, fromValues, seq)
	compareDatasets(t, fromValues, par)
}

func TestReaderHandlesConcatenatedDocs(t *testing.T) {
	// No newlines between documents at all.
	raw := []byte(`{"a":1}{"a":2}{"b":"x"}`)
	for _, workers := range []int{1, 4} {
		d, err := Reader("d", bytes.NewReader(raw), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d.DocCount != 3 {
			t.Errorf("workers=%d: DocCount = %d", workers, d.DocCount)
		}
		if d.Paths[jsonval.Path("/a")].Count != 2 {
			t.Errorf("workers=%d: /a count = %d", workers, d.Paths[jsonval.Path("/a")].Count)
		}
	}
}

func TestReaderPropagatesSyntaxErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Reader("d", strings.NewReader(`{"a":1}{"broken`), Options{Workers: workers})
		if err == nil {
			t.Errorf("workers=%d: malformed stream accepted", workers)
		}
	}
}

func TestReaderEmptyStream(t *testing.T) {
	for _, workers := range []int{1, 4} {
		d, err := Reader("d", strings.NewReader(""), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d.DocCount != 0 {
			t.Errorf("workers=%d: DocCount = %d", workers, d.DocCount)
		}
	}
}

func TestFile(t *testing.T) {
	_, raw := genDocs(t, 100, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "data.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := File("mydata", path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "mydata" || d.DocCount != 100 {
		t.Errorf("name=%q count=%d", d.Name, d.DocCount)
	}
	if _, err := File("x", filepath.Join(dir, "missing.json"), Options{}); err == nil {
		t.Errorf("missing file accepted")
	}
}

func TestFileDefaultsName(t *testing.T) {
	_, raw := genDocs(t, 5, 4)
	path := filepath.Join(t.TempDir(), "twitter.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := File("", path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(d.Name, "twitter.json") {
		t.Errorf("default name = %q", d.Name)
	}
}

func TestStatsConfigPropagates(t *testing.T) {
	docs, _ := genDocs(t, 50, 5)
	cfg := jsonstats.Config{PrefixLen: 2, MaxPrefixes: 4, MaxValues: 3}
	d := Values("d", docs, Options{Stats: cfg, Workers: 4})
	want := cfg
	want.HistogramBuckets = jsonstats.DefaultHistogramBuckets // zero value defaults
	if d.Config() != want {
		t.Errorf("config = %+v, want %+v", d.Config(), want)
	}
	st := d.Paths[jsonval.Path("/name")].Str
	if st == nil || len(st.Prefixes) > 4 || len(st.Values) > 3 {
		t.Errorf("caps not applied: %+v", st)
	}
	for pre := range st.Prefixes {
		if len(pre) > 2 {
			t.Errorf("prefix %q longer than configured", pre)
		}
	}
}

func compareDatasets(t *testing.T, want, got *jsonstats.Dataset) {
	t.Helper()
	if want.DocCount != got.DocCount {
		t.Fatalf("DocCount %d != %d", got.DocCount, want.DocCount)
	}
	if len(want.Paths) != len(got.Paths) {
		t.Fatalf("paths %d != %d", len(got.Paths), len(want.Paths))
	}
	for p, wps := range want.Paths {
		gps := got.Paths[p]
		if gps == nil {
			t.Fatalf("missing path %s", p)
		}
		// Merge order may differ, but all exact aggregates must agree.
		// String caps can differ between shard splits only if overflow
		// occurred (the test data stays under the default caps), and
		// histograms are rebinned on merge, so only their totals are
		// exact.
		wc, gc := *wps, *gps
		wc.NumHist, gc.NumHist = nil, nil
		if !reflect.DeepEqual(&wc, &gc) {
			t.Fatalf("path %s differs:\n got %+v str=%+v\nwant %+v str=%+v", p, gps, gps.Str, wps, wps.Str)
		}
		if (wps.NumHist == nil) != (gps.NumHist == nil) {
			t.Fatalf("path %s: histogram presence differs", p)
		}
		if wps.NumHist != nil && wps.NumHist.Total != gps.NumHist.Total {
			t.Fatalf("path %s: histogram totals %d != %d", p, gps.NumHist.Total, wps.NumHist.Total)
		}
	}
}

func TestSampling(t *testing.T) {
	docs, raw := genDocs(t, 2000, 9)
	full := Values("d", docs, Options{Workers: 1})
	for _, workers := range []int{1, 4} {
		sampled, err := Reader("d", bytes.NewReader(raw), Options{Workers: workers, SampleEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		if sampled.DocCount != 500 {
			t.Fatalf("workers=%d: sampled DocCount = %d, want 500", workers, sampled.DocCount)
		}
		// Ratios (what selectivity targeting uses) must approximate the
		// full analysis.
		for _, p := range []string{"/id", "/score", "/name", "/meta"} {
			fp, sp := full.Paths[jsonval.Path(p)], sampled.Paths[jsonval.Path(p)]
			if fp == nil {
				continue
			}
			if sp == nil {
				t.Fatalf("workers=%d: sampling lost path %s", workers, p)
			}
			fullRatio := float64(fp.Count) / float64(full.DocCount)
			sampleRatio := float64(sp.Count) / float64(sampled.DocCount)
			if diff := fullRatio - sampleRatio; diff < -0.08 || diff > 0.08 {
				t.Errorf("workers=%d: path %s ratio %f vs sampled %f", workers, p, fullRatio, sampleRatio)
			}
		}
	}
	// Values path too.
	sv := Values("d", docs, Options{Workers: 3, SampleEvery: 10})
	if sv.DocCount != 200 {
		t.Errorf("sampled Values DocCount = %d, want 200", sv.DocCount)
	}
	// A sampled summary still feeds the generator.
	if err := sv.Validate(); err != nil {
		t.Errorf("sampled summary invalid: %v", err)
	}
}
