// Package harness reproduces the paper's evaluation (§VI): it prepares the
// scaled-down synthetic datasets, generates sessions with the core
// generator, executes them on the four engines, and renders every figure
// and table of the paper as text. DESIGN.md carries the experiment index;
// EXPERIMENTS.md records paper-vs-measured values.
package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/analyze"
	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/datasets"
	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/jodasim"
	"github.com/joda-explore/betze/internal/engine/jqsim"
	"github.com/joda-explore/betze/internal/engine/mongosim"
	"github.com/joda-explore/betze/internal/engine/pgsim"
	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/fsatomic"
	"github.com/joda-explore/betze/internal/jsonstats"
	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/obs"
)

// Config scales the reproduction. The zero value gives a laptop-sized run
// of every experiment; the paper's scales are noted per field.
type Config struct {
	// Dir is where dataset files and derived artifacts live; empty means
	// a temporary directory owned by the Env.
	Dir string
	// TwitterDocs scales the Twitter-like dataset (paper: 29.6 M docs /
	// 109 GB). Default 8000.
	TwitterDocs int
	// NoBenchDocs scales the default NoBench dataset (paper: 10 M for
	// Table II). Default 20000.
	NoBenchDocs int
	// NoBenchSweep are the document counts of the Fig. 10 scalability
	// sweep (paper: 10⁴…10⁸ at ~5.5 MB…30 GB). Default 1k/10k/50k/200k.
	NoBenchSweep []int
	// RedditDocs scales the Reddit dataset (paper: 53.9 M docs / 30 GB).
	// Default 20000.
	RedditDocs int
	// Sessions is the per-configuration session count of the
	// benchmark-centric experiments (paper: 30). Default 10.
	Sessions int
	// GridSessions is the per-cell session count of the Fig. 7 α/β grid
	// (paper: 20). Default 3.
	GridSessions int
	// Threads is the Fig. 9 sweep (paper: 4…60 in steps of 4). Default
	// 1, 2, 4, … up to runtime.NumCPU().
	Threads []int
	// Timeout bounds one session execution per engine (paper: 2 h in
	// Fig. 10, 8 h in Table III). Default 2 minutes.
	Timeout time.Duration
	// Seed is the base seed; experiment i uses Seed+i-style offsets.
	Seed int64
	// Obs is the observability scope experiments report into: session and
	// query trace events plus engine metrics. The zero scope discards
	// everything.
	Obs obs.Scope
	// Faults configures deterministic fault injection: when enabled,
	// every session engine is wrapped with a faultsim injector sharing
	// these options (off by default).
	Faults faultsim.Options
	// Retry configures the resilient executor. The zero value executes
	// every operation exactly once with no breaker.
	Retry RetryPolicy
	// DetTiming replaces measured wall-clock durations with deterministic
	// functions of each operation's work counters (documents imported,
	// scanned, returned). Two runs of the same configuration then render
	// byte-identical results — the property the kill-and-resume tests
	// assert, and a useful mode for diffing exports across machines.
	DetTiming bool
}

func (c Config) withDefaults() Config {
	if c.TwitterDocs <= 0 {
		c.TwitterDocs = 8000
	}
	if c.NoBenchDocs <= 0 {
		c.NoBenchDocs = 20000
	}
	if len(c.NoBenchSweep) == 0 {
		c.NoBenchSweep = []int{1000, 10000, 100000}
	}
	if c.RedditDocs <= 0 {
		c.RedditDocs = 20000
	}
	if c.Sessions <= 0 {
		c.Sessions = 10
	}
	if c.GridSessions <= 0 {
		c.GridSessions = 3
	}
	if len(c.Threads) == 0 {
		c.Threads = defaultThreadSweep(runtime.NumCPU())
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 123 // the paper's favourite seed
	}
	return c
}

// defaultThreadSweep builds the Fig. 9 thread counts for an ncpu-core
// machine: powers of two from 1 to at least 4 (so the table has shape even
// on small machines), always including ncpu itself — on a 6- or 12-core box
// the doubling skips the full-machine data point otherwise.
func defaultThreadSweep(ncpu int) []int {
	limit := max(4, ncpu)
	var threads []int
	seen := false
	for t := 1; t <= limit; t *= 2 {
		threads = append(threads, t)
		if t == ncpu {
			seen = true
		}
	}
	if !seen && ncpu >= 1 {
		threads = append(threads, ncpu)
		sort.Ints(threads)
	}
	return threads
}

// Env prepares and caches datasets, their analysis summaries, and the
// generation backend across experiments.
type Env struct {
	Cfg Config

	dir     string
	ownsDir bool
	sets    map[string]*datasetEnv

	// Checkpointing state (see checkpoint.go): the write-ahead run journal,
	// the replay of a prior interrupted run, and the work-key assignment for
	// the experiment currently executing under RunExperiment.
	journal       *RunJournal
	replay        *Replay
	keyMu         sync.Mutex
	curExperiment string
	occurrences   map[workIdentity]int
}

// datasetEnv is one materialised dataset.
type datasetEnv struct {
	name  string
	file  string
	docs  []jsonval.Value
	stats *jsonstats.Dataset
	// backend verifies generated selectivities (a cached jodasim).
	backend *jodasim.Engine
	// analysis records how long the analyzer ran (for the §VI-A
	// generation-cost report).
	analysis time.Duration
}

// NewEnv creates an experiment environment.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	env := &Env{Cfg: cfg, sets: make(map[string]*datasetEnv)}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "betze-bench-*")
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		env.dir = dir
		env.ownsDir = true
	} else {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		env.dir = cfg.Dir
	}
	return env, nil
}

// Close removes owned artifacts.
func (e *Env) Close() error {
	for _, ds := range e.sets {
		if ds.backend != nil {
			ds.backend.Close()
		}
	}
	if e.ownsDir {
		return os.RemoveAll(e.dir)
	}
	return nil
}

// dataset materialises a dataset once and caches it under key.
func (e *Env) dataset(key string, src datasets.Source, n int, seed int64) (*datasetEnv, error) {
	if ds, ok := e.sets[key]; ok {
		return ds, nil
	}
	docs := src.Generate(n, seed)
	file := filepath.Join(e.dir, key+".json")
	if err := writeDocs(file, docs); err != nil {
		return nil, err
	}
	start := time.Now()
	stats := analyze.Values(src.Name, docs, analyze.Options{})
	analysis := time.Since(start)
	backend := jodasim.New(jodasim.Options{})
	backend.ImportValues(src.Name, docs)
	ds := &datasetEnv{
		name:     src.Name,
		file:     file,
		docs:     docs,
		stats:    stats,
		backend:  backend,
		analysis: analysis,
	}
	e.sets[key] = ds
	return ds, nil
}

func writeDocs(path string, docs []jsonval.Value) error {
	f, err := fsatomic.Create(path)
	if err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	defer f.Close()
	var buf []byte
	for _, d := range docs {
		buf = jsonval.AppendJSON(buf[:0], d)
		buf = append(buf, '\n')
		if _, err := f.Write(buf); err != nil {
			return fmt.Errorf("harness: %w", err)
		}
	}
	if err := f.Commit(); err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	return nil
}

// Twitter returns the Twitter-like dataset environment.
func (e *Env) Twitter() (*datasetEnv, error) {
	return e.dataset("twitter", datasets.NewTwitter(), e.Cfg.TwitterDocs, e.Cfg.Seed)
}

// NoBench returns a NoBench dataset environment with n documents.
func (e *Env) NoBench(n int) (*datasetEnv, error) {
	return e.dataset(fmt.Sprintf("nobench_%d", n), datasets.NewNoBench(), n, e.Cfg.Seed)
}

// ReleaseNoBench drops a sweep-size NoBench dataset from the cache so large
// Fig. 10 sweeps do not accumulate resident document sets.
func (e *Env) ReleaseNoBench(n int) {
	key := fmt.Sprintf("nobench_%d", n)
	if ds, ok := e.sets[key]; ok {
		if ds.backend != nil {
			ds.backend.Close()
		}
		delete(e.sets, key)
	}
}

// Reddit returns the Reddit-like dataset environment. The U+0000 fraction
// is sized so even small runs contain the bodies that break PostgreSQL's
// import (Table III).
func (e *Env) Reddit() (*datasetEnv, error) {
	src := datasets.NewReddit(datasets.RedditOptions{NullByteFraction: 0.002})
	return e.dataset("reddit", src, e.Cfg.RedditDocs, e.Cfg.Seed)
}

// generate builds one session over the dataset using its verification
// backend.
func (ds *datasetEnv) generate(opts core.Options) (*core.Session, error) {
	if opts.Backend == nil {
		opts.Backend = ds.backend
	}
	return core.Generate(opts, ds.stats)
}

// engineSpec names an engine constructor so experiments can instantiate
// fresh, cache-cold engines per measurement.
type engineSpec struct {
	name string
	make func(dir string) (engine.Engine, error)
}

func jodaSpec(threads int) engineSpec {
	return engineSpec{name: "JODA", make: func(string) (engine.Engine, error) {
		return jodasim.New(jodasim.Options{Threads: threads}), nil
	}}
}

func jodaEvictSpec() engineSpec {
	return engineSpec{name: "JODA memory evicted", make: func(string) (engine.Engine, error) {
		return jodasim.New(jodasim.Options{Evict: true}), nil
	}}
}

func mongoSpec() engineSpec {
	return engineSpec{name: "MongoDB", make: func(string) (engine.Engine, error) {
		return mongosim.New(mongosim.Options{}), nil
	}}
}

func pgSpec() engineSpec {
	return engineSpec{name: "PostgreSQL", make: func(string) (engine.Engine, error) {
		return pgsim.New(pgsim.Options{}), nil
	}}
}

func jqSpec() engineSpec {
	return engineSpec{name: "jq", make: func(dir string) (engine.Engine, error) {
		// A per-engine temp subdirectory, not the shared dir: store files
		// from consecutive or concurrent sessions must not collide.
		return jqsim.NewTempIn(dir)
	}}
}

// systemSpecs is the paper's engine line-up.
func systemSpecs(threads int) []engineSpec {
	return []engineSpec{jodaSpec(threads), mongoSpec(), pgSpec(), jqSpec()}
}

// SessionResult reports one session execution on one engine.
type SessionResult struct {
	Engine     string
	Import     engine.ImportStats
	QueryTimes []time.Duration
	// Total is the sum of query times (the paper's "w/o import").
	Total time.Duration
	// Wall includes the import (the paper's wall clock time).
	Wall time.Duration
	// TimedOut is set when the session hit the configured timeout; Total
	// then covers the completed queries only.
	TimedOut bool
	// ImportErr reports a failed import (PostgreSQL on Reddit).
	ImportErr error
	// Err reports the first execution failure other than the timeout;
	// with the resilient executor, later queries still ran (see Skipped).
	Err error
	// Retries counts re-attempted operations (imports and queries).
	Retries int
	// Skipped counts queries recorded as failed and passed over instead
	// of aborting the session.
	Skipped int
	// Recovered counts crash recoveries that replayed the stored-dataset
	// lineage mid-session.
	Recovered int
}

// runSession imports the dataset into a fresh engine and executes every
// query of the session through the resilient executor, honouring the
// configured timeout, fault injection, and retry policy. The configured
// observability scope receives session_start/session_end bracketing events
// (plus timeout/retry/skip/breaker/recovery events as they occur); the
// engines themselves emit the per-import and per-query events through the
// context.
func (e *Env) runSession(ctx context.Context, spec engineSpec, ds *datasetEnv, s *core.Session) SessionResult {
	return e.runSessionWith(ctx, spec, ds, s, e.Cfg.Faults, e.Cfg.Retry)
}

// runSessionWith is runSession with explicit fault and retry options, so
// the resilience experiment can sweep them against one Env.
func (e *Env) runSessionWith(ctx context.Context, spec engineSpec, ds *datasetEnv, s *core.Session, faults faultsim.Options, retry RetryPolicy) SessionResult {
	// Under checkpointing every session gets a deterministic work key; a
	// resumed run returns the journaled result of a completed key instead
	// of re-executing, and journals every key it does execute.
	key, tracked := e.nextKey(spec.name, ds.name, s.Seed)
	if tracked {
		if prev, ok := e.replay.SessionResult(key); ok {
			e.Cfg.Obs.Record(obs.Event{
				Type: obs.EvResumeSkip, Kind: obs.KindSession, Engine: key.Engine,
				Dataset: key.Dataset, Session: key.String(),
			})
			e.Cfg.Obs.Counter(obs.MHarnessResumeSkips).Inc()
			return prev
		}
	}
	res := e.execSession(ctx, spec, ds, s, faults, retry)
	if tracked {
		e.journal.Session(key, res)
	}
	return res
}

// execSession is the execution body of runSessionWith, below the
// checkpoint/replay layer.
func (e *Env) execSession(ctx context.Context, spec engineSpec, ds *datasetEnv, s *core.Session, faults faultsim.Options, retry RetryPolicy) SessionResult {
	res := SessionResult{Engine: spec.name}
	eng, err := spec.make(e.dir)
	if err != nil {
		res.Err = err
		return res
	}
	if faults.Enabled() {
		eng = faultsim.Wrap(eng, faults)
	}
	defer eng.Close()
	ctx, cancel := context.WithTimeout(ctx, e.Cfg.Timeout)
	defer cancel()
	ctx = obs.With(ctx, e.Cfg.Obs)
	sc := e.Cfg.Obs
	// Bracketing events carry eng.Name() — the same label the engine's own
	// import/query events use — so consumers can join them; spec.name is
	// only a display name ("JODA memory evicted" vs "JODA (evicted)").
	engName := eng.Name()
	label := fmt.Sprintf("%s/seed%d", ds.name, s.Seed)
	sc.Record(obs.Event{
		Type: obs.EvSessionStart, Engine: engName, Dataset: ds.name,
		Session: label, Queries: len(s.Queries),
	})
	defer func() {
		sc.Record(obs.Event{
			Type: obs.EvSessionEnd, Engine: engName, Dataset: ds.name,
			Session: label, Duration: res.Total, TimedOut: res.TimedOut,
		})
		sc.Observe(obs.MHarnessSession, res.Total)
		sc.Counter(obs.MHarnessSessions).Inc()
	}()

	imp, retries, err := RunImport(ctx, eng, ds.name, ds.file, retry)
	res.Retries += retries
	if err != nil {
		if ctx.Err() != nil {
			res.TimedOut = true
			sc.Record(obs.Event{
				Type: obs.EvTimeout, Engine: engName, Dataset: ds.name,
				Session: label, Duration: e.Cfg.Timeout,
			})
			sc.Counter(obs.MHarnessTimeouts).Inc()
		}
		res.ImportErr = err
		return res
	}
	if e.Cfg.DetTiming {
		imp.Duration = DetImportDuration(imp)
	}
	res.Import = imp
	outcomes, rs := RunQueries(ctx, eng, s.Queries, retry, io.Discard, label)
	for _, o := range outcomes {
		if o.Err == nil {
			d := o.Stats.Duration
			if e.Cfg.DetTiming {
				d = DetQueryDuration(o.Stats)
			}
			res.QueryTimes = append(res.QueryTimes, d)
			res.Total += d
		}
	}
	res.TimedOut = rs.TimedOut
	res.Err = rs.FirstErr // already labelled "<query> on <engine>"
	res.Retries += rs.Retries
	res.Skipped = rs.Skipped
	res.Recovered = rs.Recovered
	res.Wall = res.Total + imp.Duration
	return res
}
