package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/query"
)

// okEngine succeeds at everything; wrapped with faultsim, every failure it
// shows is an injected one.
type okEngine struct{ execs int }

func (*okEngine) Name() string { return "ok" }

func (*okEngine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	return engine.ImportStats{Docs: 1}, nil
}

func (e *okEngine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (engine.ExecStats, error) {
	e.execs++
	return engine.ExecStats{Duration: time.Millisecond, Scanned: 1}, nil
}

func (*okEngine) Reset() error { return nil }
func (*okEngine) Close() error { return nil }

// permFailEngine fails its first `fails` executions with a permanent
// (non-retryable) error, then succeeds.
type permFailEngine struct {
	fails int
	execs int
}

func (*permFailEngine) Name() string { return "permfail" }

func (*permFailEngine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	return engine.ImportStats{}, nil
}

func (e *permFailEngine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (engine.ExecStats, error) {
	e.execs++
	if e.execs <= e.fails {
		return engine.ExecStats{}, errors.New("permanent failure")
	}
	return engine.ExecStats{Duration: time.Millisecond}, nil
}

func (*permFailEngine) Reset() error { return nil }
func (*permFailEngine) Close() error { return nil }

// slowOnceEngine blocks its first execution until the (attempt) context
// expires, then answers instantly — the shape of one stuck query.
type slowOnceEngine struct{ execs int }

func (*slowOnceEngine) Name() string { return "slowonce" }

func (*slowOnceEngine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	return engine.ImportStats{}, nil
}

func (e *slowOnceEngine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (engine.ExecStats, error) {
	e.execs++
	if e.execs == 1 {
		<-ctx.Done()
		return engine.ExecStats{}, ctx.Err()
	}
	return engine.ExecStats{Duration: time.Millisecond}, nil
}

func (*slowOnceEngine) Reset() error { return nil }
func (*slowOnceEngine) Close() error { return nil }

// amnesiacEngine tracks datasets like a real engine but silently loses its
// derived datasets at execution number forgetAt — a crash the executor can
// only detect by the unknown-dataset error on a name the session stored.
type amnesiacEngine struct {
	forgetAt int
	execs    int
	base     map[string]bool
	derived  map[string]bool
}

func newAmnesiac(forgetAt int) *amnesiacEngine {
	return &amnesiacEngine{forgetAt: forgetAt, base: map[string]bool{}, derived: map[string]bool{}}
}

func (*amnesiacEngine) Name() string { return "amnesiac" }

func (e *amnesiacEngine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	e.base[name] = true
	return engine.ImportStats{Docs: 1}, nil
}

func (e *amnesiacEngine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (engine.ExecStats, error) {
	e.execs++
	if e.execs == e.forgetAt {
		e.derived = map[string]bool{}
	}
	if !e.base[q.Base] && !e.derived[q.Base] {
		return engine.ExecStats{}, engine.UnknownDataset("amnesiac", q.Base)
	}
	if q.Store != "" {
		e.derived[q.Store] = true
	}
	return engine.ExecStats{Duration: time.Millisecond}, nil
}

func (e *amnesiacEngine) Reset() error {
	e.derived = map[string]bool{}
	return nil
}

func (*amnesiacEngine) Close() error { return nil }

func plainQueries(n int) []*query.Query {
	qs := make([]*query.Query, n)
	for i := range qs {
		qs[i] = &query.Query{ID: fmt.Sprintf("q%d", i+1), Base: "ds"}
	}
	return qs
}

func traceScope() (obs.Scope, *bytes.Buffer, *obs.Registry) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	return obs.Scope{Metrics: reg, Trace: obs.NewRecorder(&buf)}, &buf, reg
}

// TestRetryCompletesWhatNoRetryDrops is the acceptance check: at a fixed
// fault seed and rate, the retrying executor completes every query the
// no-retry run drops.
func TestRetryCompletesWhatNoRetryDrops(t *testing.T) {
	opts := faultsim.Options{Seed: 99, QueryErrorRate: 0.6}
	qs := plainQueries(20)

	noRetry, rs1 := RunQueries(context.Background(),
		faultsim.Wrap(&okEngine{}, opts), qs, RetryPolicy{}, io.Discard, "t")
	if rs1.Skipped == 0 {
		t.Fatal("no-retry run dropped nothing at a 60% fault rate — test is vacuous")
	}
	if rs1.Retries != 0 {
		t.Errorf("no-retry run retried %d times", rs1.Retries)
	}

	sc, _, reg := traceScope()
	ctx := obs.With(context.Background(), sc)
	withRetry, rs2 := RunQueries(ctx,
		faultsim.Wrap(&okEngine{}, opts), qs, DefaultRetryPolicy(), io.Discard, "t")
	if rs2.Completed != len(qs) || rs2.Skipped != 0 {
		t.Fatalf("retrying run: completed %d/%d, skipped %d", rs2.Completed, len(qs), rs2.Skipped)
	}
	if rs2.Retries == 0 {
		t.Error("retrying run reports zero retries under injection")
	}
	for i := range qs {
		if noRetry[i].Err != nil && withRetry[i].Err != nil {
			t.Errorf("%s dropped by both runs: %v", qs[i].ID, withRetry[i].Err)
		}
	}
	if got := reg.Counter("harness.retries").Value(); got != int64(rs2.Retries) {
		t.Errorf("harness.retries counter = %d, want %d", got, rs2.Retries)
	}
}

// TestCrashRecoveryReplaysLineage injects crashes on every first attempt:
// the executor must rebuild the derived datasets and finish the session.
func TestCrashRecoveryReplaysLineage(t *testing.T) {
	qs := []*query.Query{
		{ID: "q1", Base: "base", Store: "d1"},
		{ID: "q2", Base: "d1", Store: "d2"},
		{ID: "q3", Base: "d2"},
	}
	inner := newAmnesiac(0)
	eng := faultsim.Wrap(inner, faultsim.Options{Seed: 5, CrashRate: 1, MaxFaultsPerOp: 1})
	ctx := context.Background()
	if _, _, err := RunImport(ctx, eng, "base", "f", DefaultRetryPolicy()); err != nil {
		t.Fatal(err)
	}
	sc, buf, reg := traceScope()
	_, rs := RunQueries(obs.With(ctx, sc), eng, qs, DefaultRetryPolicy(), io.Discard, "t")
	if rs.Completed != len(qs) || rs.Skipped != 0 {
		t.Fatalf("crashing session did not finish: %+v", rs)
	}
	if rs.Recovered == 0 {
		t.Error("no recoveries recorded despite injected crashes")
	}
	if !inner.derived["d1"] || !inner.derived["d2"] {
		t.Errorf("derived datasets not rebuilt: %v", inner.derived)
	}
	if got := reg.Counter("harness.recoveries").Value(); got == 0 {
		t.Error("harness.recoveries counter not incremented")
	}
	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sawRecovery bool
	for _, e := range events {
		if e.Type == obs.EvRecovery {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Error("no recovery event on the trace")
	}
}

// TestSilentCrashDetectedViaLineage covers the second crash trigger: the
// engine loses derived state without returning a crash error, and the
// executor infers the crash from ErrUnknownDataset on a stored name.
func TestSilentCrashDetectedViaLineage(t *testing.T) {
	qs := []*query.Query{
		{ID: "q1", Base: "base", Store: "d1"},
		{ID: "q2", Base: "d1"},
		{ID: "q3", Base: "d1"},
	}
	inner := newAmnesiac(2) // forget derived state right when q2 executes
	if _, err := inner.ImportFile(context.Background(), "base", "f"); err != nil {
		t.Fatal(err)
	}
	_, rs := RunQueries(context.Background(), inner, qs, DefaultRetryPolicy(), io.Discard, "t")
	if rs.Completed != len(qs) || rs.Recovered != 1 {
		t.Fatalf("silent crash not recovered: %+v", rs)
	}
	if !inner.derived["d1"] {
		t.Errorf("derived dataset not rebuilt: %v", inner.derived)
	}
}

// TestUnknownBaseIsNotACrash: an unknown dataset the session never stored is
// a permanent error — skip-and-record, no recovery, no retries.
func TestUnknownBaseIsNotACrash(t *testing.T) {
	qs := []*query.Query{
		{ID: "q1", Base: "ds"},
		{ID: "q2", Base: "ghost"},
		{ID: "q3", Base: "ds"},
	}
	inner := newAmnesiac(0)
	inner.base["ds"] = true
	outcomes, rs := RunQueries(context.Background(), inner, qs, DefaultRetryPolicy(), io.Discard, "t")
	if rs.Completed != 2 || rs.Skipped != 1 || rs.Recovered != 0 || rs.Retries != 0 {
		t.Fatalf("stats = %+v", rs)
	}
	if outcomes[1].Err == nil || !errors.Is(outcomes[1].Err, engine.ErrUnknownDataset) || outcomes[1].Attempts != 1 {
		t.Errorf("ghost outcome = %+v", outcomes[1])
	}
	if rs.FirstErr == nil || !errors.Is(rs.FirstErr, engine.ErrUnknownDataset) {
		t.Errorf("FirstErr = %v", rs.FirstErr)
	}
}

// TestBreakerOpensAndSkips: consecutive failures open the breaker; while
// open, queries are skipped without touching the engine.
func TestBreakerOpensAndSkips(t *testing.T) {
	eng := &permFailEngine{fails: 1000}
	pol := RetryPolicy{MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: time.Hour}
	sc, buf, reg := traceScope()
	outcomes, rs := RunQueries(obs.With(context.Background(), sc), eng, plainQueries(10), pol, io.Discard, "t")
	if rs.BreakerOpens != 1 || rs.Skipped != 10 || rs.Completed != 0 {
		t.Fatalf("stats = %+v", rs)
	}
	if eng.execs != 3 {
		t.Errorf("engine executed %d times, want 3 (breaker must short-circuit)", eng.execs)
	}
	for i, o := range outcomes[3:] {
		if o.Attempts != 0 || !o.Skipped {
			t.Errorf("outcome %d not short-circuited: %+v", i+3, o)
		}
	}
	if got := reg.Counter("harness.breaker_opens").Value(); got != 1 {
		t.Errorf("harness.breaker_opens = %d, want 1", got)
	}
	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	breakerSkips := 0
	sawOpen := false
	for _, e := range events {
		if e.Type == obs.EvSkip && e.Kind == "breaker_open" {
			breakerSkips++
		}
		if e.Type == obs.EvBreaker && e.Kind == "open" {
			sawOpen = true
		}
	}
	if breakerSkips != 7 || !sawOpen {
		t.Errorf("breaker trace: %d breaker_open skips (want 7), open event %v", breakerSkips, sawOpen)
	}
}

// TestBreakerHalfOpenRecovers: after the cooldown a trial query runs; its
// failure re-opens the breaker, its success closes it for good.
func TestBreakerHalfOpenRecovers(t *testing.T) {
	eng := &permFailEngine{fails: 6}
	pol := RetryPolicy{MaxAttempts: 1, BreakerThreshold: 5, BreakerCooldown: time.Nanosecond}
	_, rs := RunQueries(context.Background(), eng, plainQueries(10), pol, io.Discard, "t")
	// q1–q5 fail and open the breaker; q6 is a failing half-open trial that
	// re-opens it; q7 is a succeeding trial that closes it; q8–q10 pass.
	if rs.BreakerOpens != 2 {
		t.Errorf("BreakerOpens = %d, want 2", rs.BreakerOpens)
	}
	if rs.Completed != 4 || rs.Skipped != 6 {
		t.Errorf("stats = %+v", rs)
	}
	if eng.execs != 10 {
		t.Errorf("engine executed %d times, want 10", eng.execs)
	}
}

// TestQueryDeadlineRetries: an attempt exceeding the per-query deadline is
// retried while the session deadline allows.
func TestQueryDeadlineRetries(t *testing.T) {
	eng := &slowOnceEngine{}
	pol := RetryPolicy{MaxAttempts: 3, QueryDeadline: 20 * time.Millisecond, BaseBackoff: time.Millisecond}
	outcomes, rs := RunQueries(context.Background(), eng, plainQueries(1), pol, io.Discard, "t")
	if rs.Completed != 1 || rs.Retries != 1 {
		t.Fatalf("stats = %+v", rs)
	}
	if outcomes[0].Err != nil || outcomes[0].Attempts != 2 {
		t.Errorf("outcome = %+v", outcomes[0])
	}
}

// TestSessionDeadlineStillWins: the session timeout is reported as a
// timeout, not converted into retries or skips.
func TestSessionDeadlineStillWins(t *testing.T) {
	eng := &slowOnceEngine{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	sc, buf, reg := traceScope()
	_, rs := RunQueries(obs.With(ctx, sc), eng, plainQueries(3), DefaultRetryPolicy(), io.Discard, "sess")
	if !rs.TimedOut {
		t.Fatalf("session deadline not reported: %+v", rs)
	}
	if rs.Skipped != 0 {
		t.Errorf("timeout miscounted as skip: %+v", rs)
	}
	if got := reg.Counter("harness.timeouts").Value(); got != 1 {
		t.Errorf("harness.timeouts = %d, want 1", got)
	}
	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sawTimeout := false
	for _, e := range events {
		if e.Type == obs.EvTimeout && e.Query == "q1" {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Error("no timeout event for the stuck query")
	}
}

// TestRunImportRetries: transient import faults are retried; the bounded
// injector guarantees eventual success.
func TestRunImportRetries(t *testing.T) {
	eng := faultsim.Wrap(&okEngine{}, faultsim.Options{Seed: 3, ImportErrorRate: 1, MaxFaultsPerOp: 1})
	pol := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}
	imp, retries, err := RunImport(context.Background(), eng, "ds", "f", pol)
	if err != nil {
		t.Fatalf("import did not recover: %v", err)
	}
	if retries != 1 || imp.Docs != 1 {
		t.Errorf("retries = %d, imp = %+v", retries, imp)
	}
}

// TestRunImportPermanentFailsFast: a structurally failing import is not
// retried (PostgreSQL on Reddit fails the same way every time).
func TestRunImportPermanentFailsFast(t *testing.T) {
	eng := newAmnesiac(0)
	failing := &importFailEngine{inner: eng}
	_, retries, err := RunImport(context.Background(), failing, "ds", "f", DefaultRetryPolicy())
	if err == nil || retries != 0 {
		t.Errorf("permanent import error retried %d times (err %v)", retries, err)
	}
	if failing.calls != 1 {
		t.Errorf("import attempted %d times, want 1", failing.calls)
	}
}

type importFailEngine struct {
	inner engine.Engine
	calls int
}

func (e *importFailEngine) Name() string { return e.inner.Name() }

func (e *importFailEngine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	e.calls++
	return engine.ImportStats{}, errors.New("bad input bytes")
}

func (e *importFailEngine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (engine.ExecStats, error) {
	return e.inner.Execute(ctx, q, sink)
}

func (e *importFailEngine) Reset() error { return e.inner.Reset() }
func (e *importFailEngine) Close() error { return e.inner.Close() }

// TestResilienceExperimentDeterministic: the resilience table contains only
// counts derived from the deterministic fault schedule, so two runs over
// the same Env must render identically.
func TestResilienceExperimentDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sessions")
	}
	env := newTinyEnv(t)
	first, err := Resilience(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Resilience(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if first.Text() != second.Text() {
		t.Errorf("resilience output not deterministic:\n%s\n---\n%s", first.Text(), second.Text())
	}
	// The zero-rate rows must complete everything with no resilience
	// machinery engaged.
	rows := first.Tables[0].Rows
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d:\n%s", len(rows), first.Text())
	}
	for _, row := range rows[:2] {
		if row[3] != "0" || row[4] != "0" || row[5] != "0" {
			t.Errorf("zero-rate row shows resilience activity: %v", row)
		}
	}
	// With retries on, every faulted run must complete all queries
	// (MaxAttempts exceeds the injector's per-op fault bound).
	for i, row := range rows {
		if i%2 == 1 && row[2] != rows[0][2] {
			t.Errorf("retrying row %d completed %q, want %q: %v", i, row[2], rows[0][2], row)
		}
	}
}

// TestMultiUserDegradesUnderFaults: with fault injection on the shared
// engine, MultiUser must record per-user failures instead of aborting, and
// keep session_start/session_end balanced on the trace.
func TestMultiUserDegradesUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full multi-user sweeps")
	}
	cfg := tinyConfig(t)
	sc, buf, _ := traceScope()
	cfg.Obs = sc
	cfg.Faults = faultsim.Uniform(0.8, 77)
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	res, err := MultiUser(context.Background(), env)
	if err != nil {
		t.Fatalf("MultiUser aborted instead of degrading: %v", err)
	}
	out := res.Text()
	if out == "" {
		t.Fatal("no output")
	}
	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	starts, ends := 0, 0
	for _, e := range events {
		switch e.Type {
		case obs.EvSessionStart:
			starts++
		case obs.EvSessionEnd:
			ends++
		}
	}
	if starts == 0 || starts != ends {
		t.Errorf("unbalanced multiuser sessions: %d starts, %d ends\n%s", starts, ends, out)
	}
}
