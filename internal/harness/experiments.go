package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/jsonval"
)

// Experiment regenerates one figure or table of the paper.
type Experiment struct {
	// ID is the CLI identifier ("fig5", "table2", …).
	ID string
	// Title describes what the paper shows.
	Title string
	// Run executes the experiment and renders its result as text.
	Run func(ctx context.Context, e *Env) (*Result, error)
}

// Experiments lists every reproducible figure and table in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: default user configurations", Run: Table1},
		{ID: "fig5", Title: "Fig. 5: execution-time trends per user preset (n=20)", Run: Fig5},
		{ID: "fig6", Title: "Fig. 6: session execution time distribution per preset", Run: Fig6},
		{ID: "fig7", Title: "Fig. 7: session times over the alpha/beta grid (n=10)", Run: Fig7},
		{ID: "fig8", Title: "Fig. 8: distribution of generated predicates per dataset", Run: Fig8},
		{ID: "fig9", Title: "Fig. 9: runtime vs CPU threads (Twitter)", Run: Fig9},
		{ID: "fig10", Title: "Fig. 10: runtime vs document count (NoBench)", Run: Fig10},
		{ID: "table2", Title: "Table II: session time w/o import (seed 123)", Run: Table2},
		{ID: "table3", Title: "Table III: presets x aggregation configs x systems (seed 1)", Run: Table3},
		{ID: "table4", Title: "Table IV: path-depth distribution", Run: Table4},
		{ID: "gencost", Title: "Sec. VI-A: generation cost split (analysis vs generation)", Run: GenCost},
		{ID: "skew", Title: "Sec. VI-C: attribute reference skew", Run: Skew},
		{ID: "multiuser", Title: "Sec. III (beyond the paper): concurrent sessions on one JODA instance", Run: MultiUser},
		{ID: "resilience", Title: "Beyond the paper: queries completed vs injected fault rate, retries on vs off", Run: Resilience},
		{ID: "loadgen", Title: "Beyond the paper: open-loop virtual-user load, SLO verdicts per engine and arrival rate", Run: LoadGen},
	}
}

// ByID resolves an experiment identifier.
func ByID(id string) (Experiment, error) {
	for _, exp := range Experiments() {
		if exp.ID == id {
			return exp, nil
		}
	}
	var ids []string
	for _, exp := range Experiments() {
		ids = append(ids, exp.ID)
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// Table1 prints the preset parameters of Table I.
func Table1(context.Context, *Env) (*Result, error) {
	rows := make([][]string, 0, 3)
	for _, p := range core.Presets() {
		rows = append(rows, []string{p.Name,
			fmt.Sprintf("%.2f", p.Alpha), fmt.Sprintf("%.2f", p.Beta), fmt.Sprintf("%d", p.Queries)})
	}
	return tableResult("table1", []string{"preset", "go back probability (alpha)", "random jump probability (beta)", "queries per session"}, rows), nil
}

// Fig5 fixes n=20 for every preset and reports the mean runtime of the i-th
// query across sessions, executed on JODA only.
func Fig5(ctx context.Context, e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	const n = 20
	sums := map[string][]time.Duration{}
	for _, preset := range core.Presets() {
		perQuery := make([]time.Duration, n)
		runs := 0
		for s := 0; s < e.Cfg.Sessions; s++ {
			sess, err := ds.generate(core.Options{Preset: preset, Queries: n, Seed: e.Cfg.Seed + int64(s)})
			if err != nil {
				return nil, fmt.Errorf("fig5 %s session %d: %w", preset.Name, s, err)
			}
			res := e.runSession(ctx, jodaSpec(0), ds, sess)
			if res.Err != nil || res.ImportErr != nil {
				return nil, fmt.Errorf("fig5: %v / %v", res.Err, res.ImportErr)
			}
			if len(res.QueryTimes) != n {
				continue // timed out; skip this session
			}
			for i, d := range res.QueryTimes {
				perQuery[i] += d
			}
			runs++
		}
		if runs == 0 {
			return nil, fmt.Errorf("fig5: every %s session timed out", preset.Name)
		}
		avg := make([]time.Duration, n)
		for i := range perQuery {
			avg[i] = perQuery[i] / time.Duration(runs)
		}
		sums[preset.Name] = avg
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		rows[i] = []string{fmt.Sprintf("q%d", i+1),
			FormatDuration(sums["novice"][i]),
			FormatDuration(sums["intermediate"][i]),
			FormatDuration(sums["expert"][i])}
	}
	return tableResult("fig5", []string{"query", "novice", "intermediate", "expert"}, rows), nil
}

// Fig6 reports the distribution of full-session execution times per preset
// with the natural session lengths (20/10/5).
func Fig6(ctx context.Context, e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for _, preset := range core.Presets() {
		var totals []time.Duration
		for s := 0; s < e.Cfg.Sessions; s++ {
			sess, err := ds.generate(core.Options{Preset: preset, Seed: e.Cfg.Seed + int64(s)})
			if err != nil {
				return nil, fmt.Errorf("fig6 %s session %d: %w", preset.Name, s, err)
			}
			res := e.runSession(ctx, jodaSpec(0), ds, sess)
			if res.Err != nil || res.ImportErr != nil {
				return nil, fmt.Errorf("fig6: %v / %v", res.Err, res.ImportErr)
			}
			totals = append(totals, res.Total)
		}
		b := box(totals)
		rows = append(rows, []string{preset.Name,
			FormatDuration(b.Min), FormatDuration(b.Q1), FormatDuration(b.Median),
			FormatDuration(b.Q3), FormatDuration(b.Max)})
	}
	return tableResult("fig6", []string{"preset", "min", "q1", "median", "q3", "max"}, rows), nil
}

// Fig7 sweeps the alpha/beta grid with n=10 queries per session and reports
// the mean session time per cell (JODA only, like the paper's
// benchmark-centric experiments).
func Fig7(ctx context.Context, e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	header := []string{"alpha\\beta"}
	for b := 0; b < 10; b++ {
		header = append(header, fmt.Sprintf("%.1f", float64(b)/10))
	}
	var rows [][]string
	seed := e.Cfg.Seed
	for a := 0; a < 10; a++ {
		alpha := float64(a) / 10
		row := []string{fmt.Sprintf("%.1f", alpha)}
		for b := 0; b < 10; b++ {
			beta := float64(b) / 10
			if alpha+beta > 1 {
				row = append(row, "-")
				continue
			}
			var total time.Duration
			runs := 0
			for s := 0; s < e.Cfg.GridSessions; s++ {
				seed++
				sess, err := ds.generate(core.Options{
					Alpha: core.Float64(alpha), Beta: core.Float64(beta),
					Queries: 10, Seed: seed,
				})
				if err != nil {
					return nil, fmt.Errorf("fig7 a=%.1f b=%.1f: %w", alpha, beta, err)
				}
				res := e.runSession(ctx, jodaSpec(0), ds, sess)
				if res.Err != nil || res.ImportErr != nil {
					return nil, fmt.Errorf("fig7: %v / %v", res.Err, res.ImportErr)
				}
				total += res.Total
				runs++
			}
			row = append(row, fmt.Sprintf("%.3fs", (total/time.Duration(runs)).Seconds()))
		}
		rows = append(rows, row)
	}
	return tableResult("fig7", header, rows), nil
}

// Fig8 tallies the generated predicate types per dataset: a preset sweep on
// Twitter and one default session each on NoBench and Reddit.
func Fig8(ctx context.Context, e *Env) (*Result, error) {
	type datasetCase struct {
		label    string
		ds       *datasetEnv
		sessions []*core.Session
	}
	tw, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	nb, err := e.NoBench(e.Cfg.NoBenchDocs)
	if err != nil {
		return nil, err
	}
	rd, err := e.Reddit()
	if err != nil {
		return nil, err
	}
	var cases []datasetCase
	var twSessions []*core.Session
	for _, preset := range core.Presets() {
		for s := 0; s < e.Cfg.Sessions; s++ {
			sess, err := tw.generate(core.Options{Preset: preset, Seed: e.Cfg.Seed + int64(s)})
			if err != nil {
				return nil, fmt.Errorf("fig8 twitter: %w", err)
			}
			twSessions = append(twSessions, sess)
		}
	}
	cases = append(cases, datasetCase{"Twitter", tw, twSessions})
	nbSess, err := nb.generate(core.Options{Seed: 123})
	if err != nil {
		return nil, fmt.Errorf("fig8 nobench: %w", err)
	}
	cases = append(cases, datasetCase{"NoBench", nb, []*core.Session{nbSess}})
	rdSess, err := rd.generate(core.Options{Seed: 123})
	if err != nil {
		return nil, fmt.Errorf("fig8 reddit: %w", err)
	}
	cases = append(cases, datasetCase{"Reddit", rd, []*core.Session{rdSess}})

	counts := map[string]map[string]int64{}
	kindSet := map[string]bool{}
	for _, c := range cases {
		agg := map[string]int64{}
		for _, sess := range c.sessions {
			for kind, n := range sess.PredicateCounts() {
				agg[kind] += n
				kindSet[kind] = true
			}
		}
		counts[c.label] = agg
	}
	kinds := make([]string, 0, len(kindSet))
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var rows [][]string
	for _, kind := range kinds {
		rows = append(rows, []string{kind,
			fmt.Sprintf("%d", counts["Twitter"][kind]),
			fmt.Sprintf("%d", counts["NoBench"][kind]),
			fmt.Sprintf("%d", counts["Reddit"][kind])})
	}
	return tableResult("fig8", []string{"predicate", "Twitter", "NoBench", "Reddit"}, rows), nil
}

// Fig9 sweeps the JODA thread count over the Twitter session (intermediate
// preset, seed 123); the single-threaded engines are measured once and
// repeated, as their execution does not depend on the sweep.
func Fig9(ctx context.Context, e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	sess, err := ds.generate(core.Options{Seed: 123})
	if err != nil {
		return nil, err
	}
	flat := map[string]SessionResult{}
	for _, spec := range []engineSpec{mongoSpec(), pgSpec(), jqSpec()} {
		flat[spec.name] = e.runSession(ctx, spec, ds, sess)
	}
	var rows [][]string
	for _, t := range e.Cfg.Threads {
		res := e.runSession(ctx, jodaSpec(t), ds, sess)
		rows = append(rows, []string{fmt.Sprintf("%d", t),
			res.cell(), flat["MongoDB"].cell(), flat["PostgreSQL"].cell(), flat["jq"].cell()})
	}
	res := tableResult("fig9", []string{"threads", "JODA", "MongoDB", "PostgreSQL", "jq"}, rows)
	res.note("(single-threaded systems measured once; they do not scale with threads)")
	return res, nil
}

// Fig10 sweeps the NoBench document count and reports the wall-clock time
// including import, with the configured timeout (jq drops out first, as in
// the paper).
func Fig10(ctx context.Context, e *Env) (*Result, error) {
	sessOpts := core.Options{Seed: 123}
	var rows [][]string
	for _, n := range e.Cfg.NoBenchSweep {
		ds, err := e.NoBench(n)
		if err != nil {
			return nil, err
		}
		sess, err := ds.generate(sessOpts)
		if err != nil {
			return nil, fmt.Errorf("fig10 n=%d: %w", n, err)
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, spec := range systemSpecs(0) {
			res := e.runSession(ctx, spec, ds, sess)
			if res.ImportErr != nil || res.Err != nil || res.TimedOut {
				row = append(row, res.cell())
				continue
			}
			row = append(row, FormatDuration(res.Wall))
		}
		rows = append(rows, row)
		if n != e.Cfg.NoBenchDocs {
			e.ReleaseNoBench(n) // sweep sizes are not reused elsewhere
		}
	}
	return tableResult("fig10", []string{"documents", "JODA", "MongoDB", "PostgreSQL", "jq"}, rows), nil
}

// Table2 reports session execution time without import for the intermediate
// preset with seed 123, on Twitter and NoBench, including JODA's eviction
// mode.
func Table2(ctx context.Context, e *Env) (*Result, error) {
	tw, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	nb, err := e.NoBench(e.Cfg.NoBenchDocs)
	if err != nil {
		return nil, err
	}
	specs := []engineSpec{jodaSpec(0), jodaEvictSpec(), mongoSpec(), pgSpec(), jqSpec()}
	results := map[string]map[string]SessionResult{}
	for label, ds := range map[string]*datasetEnv{"Twitter": tw, "NoBench": nb} {
		sess, err := ds.generate(core.Options{Seed: 123})
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", label, err)
		}
		results[label] = map[string]SessionResult{}
		for _, spec := range specs {
			results[label][spec.name] = e.runSession(ctx, spec, ds, sess)
		}
	}
	var rows [][]string
	for _, spec := range specs {
		rows = append(rows, []string{spec.name,
			results["Twitter"][spec.name].cell(),
			results["NoBench"][spec.name].cell()})
	}
	return tableResult("table2", []string{"system", "Twitter", "NoBench"}, rows), nil
}

// Table3 crosses presets, aggregation configurations, systems and datasets
// with seed 1. PostgreSQL fails to load the Reddit dataset (U+0000 bodies),
// exactly like the paper's Table III.
func Table3(ctx context.Context, e *Env) (*Result, error) {
	tw, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	nb, err := e.NoBench(e.Cfg.NoBenchDocs)
	if err != nil {
		return nil, err
	}
	rd, err := e.Reddit()
	if err != nil {
		return nil, err
	}
	type cfgCase struct {
		label string
		opts  core.Options
	}
	configs := []cfgCase{
		{"Default", core.Options{}},
		{"Agg", core.Options{Aggregate: true}},
		{"GAgg", core.Options{Aggregate: true, GroupBy: true}},
	}
	dsCases := []struct {
		label string
		ds    *datasetEnv
	}{{"Twitter", tw}, {"NoBench", nb}, {"Reddit", rd}}

	header := []string{"dataset", "system"}
	for _, preset := range core.Presets() {
		for _, c := range configs {
			header = append(header, preset.Name[:3]+"-"+c.label)
		}
	}
	var rows [][]string
	for _, dc := range dsCases {
		for _, spec := range systemSpecs(0) {
			row := []string{dc.label, spec.name}
			for _, preset := range core.Presets() {
				for _, c := range configs {
					opts := c.opts
					opts.Preset = preset
					opts.Seed = 1
					sess, err := dc.ds.generate(opts)
					if err != nil {
						return nil, fmt.Errorf("table3 %s/%s/%s: %w", dc.label, preset.Name, c.label, err)
					}
					res := e.runSession(ctx, spec, dc.ds, sess)
					row = append(row, res.cell())
				}
			}
			rows = append(rows, row)
		}
	}
	return tableResult("table3", header, rows), nil
}

// Table4 compares the path-depth distribution of the documents with the
// distribution of attribute references in default and weighted-path
// sessions.
func Table4(ctx context.Context, e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	docDepth := map[int]int64{}
	var docTotal int64
	for p, ps := range ds.stats.Paths {
		docDepth[p.Depth()] += ps.Count
		docTotal += ps.Count
	}
	refDepth := func(weighted bool) (map[int]int64, int64) {
		depth := map[int]int64{}
		var total int64
		for s := 0; s < e.Cfg.Sessions; s++ {
			sess, err := ds.generate(core.Options{Preset: core.Novice, Seed: e.Cfg.Seed + int64(s), WeightedPaths: weighted})
			if err != nil {
				continue
			}
			for d, n := range sess.DepthDistribution() {
				depth[d] += n
				total += n
			}
		}
		return depth, total
	}
	defDepth, defTotal := refDepth(false)
	wDepth, wTotal := refDepth(true)
	maxDepth := 0
	for d := range docDepth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	var rows [][]string
	for d := 0; d <= maxDepth; d++ {
		rows = append(rows, []string{fmt.Sprintf("%d", d),
			percent(docDepth[d], docTotal),
			percent(defDepth[d], defTotal),
			percent(wDepth[d], wTotal)})
	}
	return tableResult("table4", []string{"path depth", "documents", "queries default", "queries weighted paths"}, rows), nil
}

// GenCost reports the analysis/generation time split of §VI-A.
func GenCost(ctx context.Context, e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	var genTotal time.Duration
	queries := 0
	sessions := 0
	for _, preset := range core.Presets() {
		for s := 0; s < e.Cfg.Sessions; s++ {
			start := time.Now()
			sess, err := ds.generate(core.Options{Preset: preset, Queries: 20, Seed: e.Cfg.Seed + int64(s)})
			if err != nil {
				return nil, fmt.Errorf("gencost: %w", err)
			}
			genTotal += time.Since(start)
			queries += len(sess.Queries)
			sessions++
		}
	}
	res := tableResult("gencost", []string{"metric", "value"}, [][]string{
		{"sessions generated", fmt.Sprintf("%d (%d queries total)", sessions, queries)},
		{"dataset analysis time", FormatDuration(ds.analysis) + " (once per dataset, reusable)"},
		{"query generation time", fmt.Sprintf("%s total, %s per session",
			FormatDuration(genTotal), FormatDuration(genTotal/time.Duration(sessions)))},
	})
	res.note("generation includes selectivity verification against the backend")
	return res, nil
}

// Skew reports the attribute-reference skew of §VI-C: the share of
// references going to the top-10 and top-20 distinct attributes.
func Skew(ctx context.Context, e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	refs := map[jsonval.Path]int64{}
	var total int64
	for _, preset := range core.Presets() {
		for s := 0; s < e.Cfg.Sessions; s++ {
			sess, err := ds.generate(core.Options{Preset: preset, Queries: 20, Seed: e.Cfg.Seed + int64(s)})
			if err != nil {
				return nil, fmt.Errorf("skew: %w", err)
			}
			for _, p := range sess.PathReferences() {
				refs[p]++
				total++
			}
		}
	}
	type pathCount struct {
		path  jsonval.Path
		count int64
	}
	ranked := make([]pathCount, 0, len(refs))
	for p, c := range refs {
		ranked = append(ranked, pathCount{p, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].path < ranked[j].path
	})
	topShare := func(k int) int64 {
		var sum int64
		for i := 0; i < k && i < len(ranked); i++ {
			sum += ranked[i].count
		}
		return sum
	}
	res := tableResult("skew", []string{"metric", "value"}, [][]string{
		{"attribute references", fmt.Sprintf("%d to %d distinct attributes", total, len(ranked))},
		{"top-10 attributes", fmt.Sprintf("%d references (%s)", topShare(10), percent(topShare(10), total))},
		{"top-20 attributes", fmt.Sprintf("%d references (%s)", topShare(20), percent(topShare(20), total))},
	})
	topRows := make([][]string, 0, 10)
	for i := 0; i < 10 && i < len(ranked); i++ {
		topRows = append(topRows, []string{string(ranked[i].path), fmt.Sprintf("%d", ranked[i].count)})
	}
	res.Tables = append(res.Tables, ResultTable{
		Name:   "skew_top_attributes",
		Header: []string{"attribute", "references"},
		Rows:   topRows,
	})
	return res, nil
}

// Resilience runs one Twitter session (seed 123, JODA) under increasing
// injected fault rates, with and without the retrying executor, and reports
// queries completed, retries, skips, and crash recoveries. The injection is
// deterministic per fault seed, so the row for a given rate is a fixture:
// whatever the no-retry run drops, the retrying run completes.
func Resilience(ctx context.Context, e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	sess, err := ds.generate(core.Options{Seed: 123})
	if err != nil {
		return nil, fmt.Errorf("resilience: %w", err)
	}
	rates := []float64{0, 0.2, 0.5}
	policies := []struct {
		label string
		pol   RetryPolicy
	}{
		{"off", RetryPolicy{}},
		{"on", DefaultRetryPolicy()},
	}
	var rows [][]string
	for _, rate := range rates {
		for _, pc := range policies {
			faults := faultsim.Uniform(rate, e.Cfg.Seed)
			res := e.runSessionWith(ctx, jodaSpec(0), ds, sess, faults, pc.pol)
			completed := fmt.Sprintf("%d/%d", len(res.QueryTimes), len(sess.Queries))
			if res.ImportErr != nil {
				completed = "load failed"
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.0f%%", rate*100),
				pc.label,
				completed,
				fmt.Sprintf("%d", res.Retries),
				fmt.Sprintf("%d", res.Skipped),
				fmt.Sprintf("%d", res.Recovered),
			})
		}
	}
	res := tableResult("resilience",
		[]string{"fault rate", "retries", "completed", "retried", "skipped", "recovered"}, rows)
	res.note("(one Twitter session, seed 123, on JODA; faults injected deterministically from the base seed)")
	return res, nil
}
