package harness

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/query"
)

// slowEngine imports instantly but blocks every Execute until the context is
// cancelled — the shape of a query that exceeds its session deadline.
type slowEngine struct{}

func (slowEngine) Name() string { return "slow" }

func (slowEngine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	return engine.ImportStats{Docs: 1}, nil
}

func (slowEngine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (engine.ExecStats, error) {
	<-ctx.Done()
	return engine.ExecStats{}, ctx.Err()
}

func (slowEngine) Reset() error { return nil }
func (slowEngine) Close() error { return nil }

func slowSpec() engineSpec {
	return engineSpec{name: "slow", make: func(string) (engine.Engine, error) {
		return slowEngine{}, nil
	}}
}

// TestRunSessionTimeoutTrace is the hang-vs-timeout regression: a query that
// exceeds the deadline must return promptly with a timeout trace event, not
// block the harness.
func TestRunSessionTimeoutTrace(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Timeout = 50 * time.Millisecond
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	cfg.Obs = obs.Scope{Metrics: reg, Trace: obs.NewRecorder(&buf)}
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	ds, err := env.Twitter()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := ds.generate(core.Options{Seed: 1, Preset: core.Expert})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan SessionResult, 1)
	go func() { done <- env.runSession(context.Background(), slowSpec(), ds, sess) }()
	var res SessionResult
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("runSession hung on a query exceeding its deadline")
	}
	if !res.TimedOut {
		t.Fatalf("session did not report timeout: %+v", res)
	}

	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sawStart, sawTimeout, sawEnd bool
	for _, e := range events {
		switch e.Type {
		case obs.EvSessionStart:
			sawStart = true
		case obs.EvTimeout:
			sawTimeout = true
			if e.Query != "q1" {
				t.Errorf("timeout event query = %q, want q1", e.Query)
			}
		case obs.EvSessionEnd:
			sawEnd = true
			if !e.TimedOut {
				t.Errorf("session_end not flagged timed_out: %+v", e)
			}
		}
	}
	if !sawStart || !sawTimeout || !sawEnd {
		t.Errorf("missing events (start=%v timeout=%v end=%v) in %d events",
			sawStart, sawTimeout, sawEnd, len(events))
	}
	if got := reg.Counter("harness.timeouts").Value(); got != 1 {
		t.Errorf("harness.timeouts = %d, want 1", got)
	}
}

// TestSessionTraceDurationsSum is the acceptance check of the trace format:
// the per-query dur_ns values of one session must sum exactly to the
// session_end duration (both carry the engine-reported query times).
func TestSessionTraceDurationsSum(t *testing.T) {
	cfg := tinyConfig(t)
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	cfg.Obs = obs.Scope{Metrics: reg, Trace: obs.NewRecorder(&buf)}
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	ds, err := env.Twitter()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := ds.generate(core.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := env.runSession(context.Background(), jodaSpec(0), ds, sess)
	if res.Err != nil || res.ImportErr != nil {
		t.Fatalf("session failed: %+v", res)
	}

	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var queries int
	var execSum time.Duration
	var end *obs.Event
	for i, e := range events {
		switch e.Type {
		case obs.EvQueryExecute:
			queries++
			execSum += e.Duration
		case obs.EvSessionEnd:
			end = &events[i]
		}
	}
	if queries != len(sess.Queries) {
		t.Errorf("trace has %d query_execute events, session has %d queries", queries, len(sess.Queries))
	}
	if end == nil {
		t.Fatal("no session_end event")
	}
	if end.Duration != res.Total || execSum != res.Total {
		t.Errorf("durations disagree: query sum %v, session_end %v, result %v",
			execSum, end.Duration, res.Total)
	}
	// The metrics side must agree with the trace side.
	snap := reg.Snapshot()
	if got := snap.Counters["engine.JODA.queries"]; got != int64(queries) {
		t.Errorf("engine.JODA.queries = %d, want %d", got, queries)
	}
	if hist := snap.Histograms["engine.JODA.query"]; hist.Count != int64(queries) || hist.Sum != execSum {
		t.Errorf("engine.JODA.query histogram = %+v, want count %d sum %v", hist, queries, execSum)
	}
	if snap.Histograms["harness.session"].Sum != res.Total {
		t.Errorf("harness.session sum = %v, want %v", snap.Histograms["harness.session"].Sum, res.Total)
	}
}

// TestExperimentsWithObsScope runs a full experiment with observability on
// and checks the cross-cutting wiring: cache events from jodasim, import
// events from every engine, and a parseable stream.
func TestExperimentsWithObsScope(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (tiny) experiment")
	}
	cfg := tinyConfig(t)
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	cfg.Obs = obs.Scope{Metrics: reg, Trace: obs.NewRecorder(&buf)}
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	exp, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Trace.Err(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	byType := map[string]int{}
	for _, e := range events {
		byType[e.Type]++
	}
	for _, typ := range []string{obs.EvSessionStart, obs.EvSessionEnd, obs.EvImport, obs.EvQueryExecute} {
		if byType[typ] == 0 {
			t.Errorf("no %s events in trace (%v)", typ, byType)
		}
	}
	if byType[obs.EvSessionStart] != byType[obs.EvSessionEnd] {
		t.Errorf("unbalanced sessions: %d starts, %d ends", byType[obs.EvSessionStart], byType[obs.EvSessionEnd])
	}
	snap := reg.Snapshot()
	for _, name := range []string{"engine.JODA.queries", "engine.MongoDB.queries", "engine.PostgreSQL.queries", "engine.jq.queries"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s missing (have %v)", name, reg.Names())
		}
	}
	if snap.Counters["harness.sessions"] == 0 {
		t.Errorf("harness.sessions not incremented")
	}
}
