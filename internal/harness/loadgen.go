package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/jodasim"
	"github.com/joda-explore/betze/internal/engine/mongosim"
	"github.com/joda-explore/betze/internal/engine/pgsim"
	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/loadgen"
)

// loadgenPoolSize is the number of pre-generated sessions virtual users
// cycle through (see loadgen.User.Pool).
const loadgenPoolSize = 6

// loadgenThinkScale compresses the explorer think times (seconds) for the
// verdict rows: queueing behaviour depends on the ratio of offered query
// rate to service capacity, not on absolute think durations, and compressed
// sessions reach steady state with thousands instead of millions of users.
const loadgenThinkScale = 0.01

// loadgenSessionSpan is the mean compressed session duration: E[queries ×
// think] over the uniform preset mix (novice 20×8s, intermediate 10×4s,
// expert 5×2s ⇒ 70s), scaled by loadgenThinkScale.
const loadgenSessionSpan = 70 * loadgenThinkScale

// loadgenSessionCount sizes one verdict row's population: enough arrivals to
// hold the target rate for several mean session lifetimes (so the row
// measures steady state, not the ramp), bounded on both ends.
func loadgenSessionCount(rate float64) int {
	n := int(3 * rate * loadgenSessionSpan)
	if n < 2000 {
		return 2000
	}
	if n > 100_000 {
		return 100_000
	}
	return n
}

// loadgenSLO is the verdict contract every row is judged against.
func loadgenSLO() loadgen.SLO {
	return loadgen.SLO{
		P50:  25 * time.Millisecond,
		P99:  250 * time.Millisecond,
		P999: time.Second,
		Late: 500 * time.Millisecond,
	}
}

// loadService is the measured per-query service-time table of one engine: a
// loadgen.Service that answers from one up-front, single-threaded execution
// pass instead of re-executing queries inside the simulation. The engines
// are deterministic, so one measurement per (pool session, query) is the
// whole story, and measuring in session order keeps Store/derived-dataset
// lineage intact.
type loadService struct {
	durs [][]time.Duration
	errs [][]error
}

func (s *loadService) service(u loadgen.User) (time.Duration, error) {
	qs := s.durs[u.Pool]
	i := u.Query % len(qs)
	return qs[i], s.errs[u.Pool][i]
}

// kneeRate is the saturation knee of the measured service table: the session
// arrival rate at which the steady-state query load (rate × mean queries per
// session) meets the worker pool's capacity (workers / mean service time).
// Probing around it makes the verdict table show the pass → fail transition
// instead of twelve identical rows.
func (s *loadService) kneeRate(workers int) float64 {
	var total time.Duration
	queries := 0
	for _, qs := range s.durs {
		for _, d := range qs {
			total += d
		}
		queries += len(qs)
	}
	if total <= 0 || queries == 0 {
		return 1
	}
	meanService := total.Seconds() / float64(queries)
	meanQueries := float64(queries) / float64(len(s.durs))
	return float64(workers) / (meanService * meanQueries)
}

// measureLoadService executes every pool query once on exec. In DetTiming
// mode durations come from the work counters (DetQueryDuration) plus one
// deterministic opts.Latency per latency fault the injector recorded for the
// query — the injector's real sleep happens outside the inner engine's
// measured span, so the schedule is the only honest account of it.
func measureLoadService(ctx context.Context, e *Env, exec engine.Engine, pool []*core.Session) (*loadService, error) {
	var injector *faultsim.Engine
	if fe, ok := exec.(*faultsim.Engine); ok {
		injector = fe
	}
	latencyFaults := func() int {
		if injector == nil {
			return 0
		}
		n := 0
		for _, f := range injector.Schedule() {
			if f.Kind == faultsim.KindLatency {
				n++
			}
		}
		return n
	}
	svc := &loadService{
		durs: make([][]time.Duration, len(pool)),
		errs: make([][]error, len(pool)),
	}
	for pi, sess := range pool {
		svc.durs[pi] = make([]time.Duration, len(sess.Queries))
		svc.errs[pi] = make([]error, len(sess.Queries))
		for qi, q := range sess.Queries {
			before := latencyFaults()
			stats, err := exec.Execute(ctx, q, io.Discard)
			if err != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			d := stats.Duration
			if e.Cfg.DetTiming {
				d = DetQueryDuration(stats)
				if spikes := latencyFaults() - before; spikes > 0 {
					d += time.Duration(spikes) * e.Cfg.Faults.Latency
				}
			}
			svc.durs[pi][qi] = d
			svc.errs[pi][qi] = err
		}
	}
	return svc, nil
}

// LoadGen evaluates the engine sims under open-loop virtual-user load: for
// each engine, session arrivals at increasing rates (plus one bursty MMPP
// row at the middle rate) drive the measured per-query service times through
// the deterministic virtual-time scheduler, and each row reports its latency
// percentiles and SLO verdict. Open loop means arrivals never slow down for
// a saturated engine — late completions count in full, and queries beyond
// the queue bound are shed. With -det-timing the whole table is
// byte-identical across runs (the make-check smoke relies on that); without
// it, service times are measured and rows vary with the machine.
func LoadGen(ctx context.Context, e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	presets := core.Presets()
	pool := make([]*core.Session, loadgenPoolSize)
	for i := range pool {
		sess, err := ds.generate(core.Options{
			Preset: presets[i%len(presets)],
			Seed:   e.Cfg.Seed + int64(300+i),
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		pool[i] = sess
	}

	engines := []struct {
		name string
		mk   func() engine.Engine
	}{
		{"joda-sim", func() engine.Engine {
			eng := jodasim.New(jodasim.Options{})
			eng.ImportValues(ds.name, ds.docs)
			return eng
		}},
		{"mongodb-sim", func() engine.Engine {
			eng := mongosim.New(mongosim.Options{})
			eng.ImportValues(ds.name, ds.docs)
			return eng
		}},
		{"postgres-sim", func() engine.Engine {
			eng := pgsim.New(pgsim.Options{})
			if err := eng.ImportValues(ds.name, ds.docs); err != nil {
				panic(fmt.Sprintf("loadgen: pgsim import: %v", err))
			}
			return eng
		}},
	}
	header := []string{"engine", "arrivals", "rate/s", "sessions", "queries", "p50", "p99", "p999", "late", "shed", "max backlog", "verdict"}
	var rows [][]string
	for _, ec := range engines {
		eng := ec.mk()
		var exec engine.Engine = eng
		if e.Cfg.Faults.Enabled() {
			exec = faultsim.Wrap(eng, e.Cfg.Faults)
		}
		svc, err := measureLoadService(ctx, e, exec, pool)
		if err != nil {
			return nil, fmt.Errorf("loadgen: measuring %s: %w", ec.name, err)
		}
		// Probe around the engine's own saturation knee so each engine's
		// block walks from comfortably-passing to clearly-failing.
		knee := svc.kneeRate(4)
		rates := []float64{0.5 * knee, knee, 2 * knee}
		row := func(spec loadgen.ArrivalSpec, rate float64) error {
			rep, err := loadgen.Simulate(ctx, loadgen.Config{
				Seed:       e.Cfg.Seed,
				Sessions:   loadgenSessionCount(rate),
				Rate:       rate,
				Arrivals:   spec,
				Workers:    4,
				PoolSize:   loadgenPoolSize,
				ThinkScale: loadgenThinkScale,
				SLO:        loadgenSLO(),
				Service:    svc.service,
				Obs:        e.Cfg.Obs,
			})
			if err != nil {
				return fmt.Errorf("loadgen: %s at %g/s: %w", ec.name, rate, err)
			}
			verdict := "pass"
			if !rep.Pass {
				verdict = "FAIL"
			}
			rows = append(rows, []string{
				ec.name, rep.Arrivals,
				fmt.Sprintf("%.3g", rate),
				fmt.Sprintf("%d", rep.Sessions),
				fmt.Sprintf("%d", rep.Queries),
				FormatDuration(rep.Latency.P50),
				FormatDuration(rep.Latency.P99),
				FormatDuration(rep.Latency.P999),
				fmt.Sprintf("%d", rep.Late),
				fmt.Sprintf("%d", rep.Shed),
				fmt.Sprintf("%d", rep.MaxBacklog),
				verdict,
			})
			return nil
		}
		for _, rate := range rates {
			if err := row(loadgen.ArrivalSpec{Kind: loadgen.Poisson}, rate); err != nil {
				return nil, err
			}
		}
		// The bursty row compresses the MMPP dwell times by the same factor
		// as the think times, so the run spans many burst/calm cycles
		// instead of landing inside a single state.
		bursty := loadgen.ArrivalSpec{
			Kind:       loadgen.Bursty,
			BurstDwell: time.Duration(2 * float64(time.Second) * loadgenThinkScale),
			CalmDwell:  time.Duration(8 * float64(time.Second) * loadgenThinkScale),
		}
		if err := row(bursty, rates[1]); err != nil {
			return nil, err
		}
		eng.Close()
	}
	res := tableResult("loadgen", header, rows)
	res.note(fmt.Sprintf("(open-loop arrivals over a %d-session query pool, 4 workers, think times x%g; SLO p50<=25ms p99<=250ms p999<=1s, late>500ms)",
		loadgenPoolSize, float64(loadgenThinkScale)))
	res.note("(service times measured once per pool query; -det-timing makes the table byte-identical across runs)")
	return res, nil
}
