package harness

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/runlog"
)

const testFingerprint = "test-fingerprint"

// journaledRun executes one experiment with checkpointing into jdir and an
// optional replay, returning the result and whether it was resumed whole.
func journaledRun(t *testing.T, cfg Config, exp Experiment, jdir string, rp *Replay) (*Result, bool) {
	t.Helper()
	var w *runlog.Writer
	var err error
	if rp == nil {
		w, err = runlog.Create(jdir, runlog.Options{NoSync: true})
	} else {
		w, err = runlog.Open(jdir, runlog.Options{NoSync: true})
	}
	if err != nil {
		t.Fatal(err)
	}
	j := NewRunJournal(w, cfg.Obs)
	j.RunStart(testFingerprint)
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	env.SetJournal(j, rp)
	res, resumed, err := env.RunExperiment(context.Background(), exp)
	if err != nil {
		t.Fatalf("%s: %v", exp.ID, err)
	}
	j.RunEnd()
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	return res, resumed
}

// TestRunExperimentWithoutJournal pins the un-journaled path: RunExperiment
// with no SetJournal must execute normally — every RunJournal method is
// nil-receiver safe, not just append.
func TestRunExperimentWithoutJournal(t *testing.T) {
	env := newTinyEnv(t)
	exp := Experiment{ID: "table2", Run: Table2}
	res, resumed, err := env.RunExperiment(context.Background(), exp)
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Error("un-journaled run reported as resumed")
	}
	if res == nil || len(res.Tables) == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	var j *RunJournal
	j.RunStart("fp")
	j.BeginExperiment("table2")
	j.Session(WorkKey{}, SessionResult{})
	j.EndExperiment("table2", res)
	j.RunEnd()
	if err := j.Err(); err != nil {
		t.Errorf("nil journal Err: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("nil journal Close: %v", err)
	}
}

// exports renders a result in every machine- and human-readable form.
func exports(t *testing.T, res *Result) (string, string, string) {
	t.Helper()
	js, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return res.Text(), res.CSV(), string(js)
}

// countRecords tallies journal record types in jdir.
func countRecords(t *testing.T, jdir string) map[string]int {
	t.Helper()
	rec, err := runlog.Recover(jdir)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, payload := range rec.Records {
		var jr struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(payload, &jr); err != nil {
			t.Fatalf("bad journal payload: %v", err)
		}
		counts[jr.Type]++
	}
	return counts
}

// TestResumeDeterminism is the satellite acceptance test at unit scale: run
// an experiment journaled, cut the journal after k completed sessions (the
// effect of a crash), resume into a fresh environment, and assert the merged
// result is byte-identical to the uninterrupted run for every exporter.
func TestResumeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs table2 twice at tiny scale")
	}
	exp, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(t)
	cfg.DetTiming = true

	fullDir := t.TempDir()
	baseline, resumed := journaledRun(t, cfg, exp, fullDir, nil)
	if resumed {
		t.Fatal("fresh run reported resumed")
	}
	wantText, wantCSV, wantJSON := exports(t, baseline)
	full := countRecords(t, fullDir)
	totalSessions := full[recSession]
	if totalSessions != 10 { // 5 engine specs x 2 datasets
		t.Fatalf("table2 journaled %d sessions, want 10", totalSessions)
	}

	// Cut the journal after the 3rd completed session — the on-disk state a
	// SIGKILL mid-experiment leaves behind.
	const keep = 3
	rec, err := runlog.Recover(fullDir)
	if err != nil {
		t.Fatal(err)
	}
	cutDir := t.TempDir()
	cw, err := runlog.Create(cutDir, runlog.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sessions := 0
	for _, payload := range rec.Records {
		var jr struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(payload, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Type == recRunEnd || jr.Type == recExperimentEnd {
			continue
		}
		if err := cw.Append(payload); err != nil {
			t.Fatal(err)
		}
		if jr.Type == recSession {
			if sessions++; sessions == keep {
				break
			}
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}

	cutRec, err := runlog.Recover(cutDir)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplay(cutRec)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Fingerprint() != testFingerprint {
		t.Fatalf("replay fingerprint = %q", rp.Fingerprint())
	}
	if rp.Sessions() != keep {
		t.Fatalf("replay holds %d sessions, want %d", rp.Sessions(), keep)
	}

	// Resume in a fresh environment (different dataset dir): deterministic
	// generation must reproduce the identical work keys and skip the prefix.
	resumeCfg := cfg
	resumeCfg.Dir = t.TempDir()
	reg := obs.NewRegistry()
	resumeCfg.Obs = obs.Scope{Metrics: reg}
	got, resumed := journaledRun(t, resumeCfg, exp, cutDir, rp)
	if resumed {
		t.Fatal("partially-complete experiment reported resumed whole")
	}
	gotText, gotCSV, gotJSON := exports(t, got)
	if gotText != wantText {
		t.Errorf("Text export differs after resume:\n--- want\n%s\n--- got\n%s", wantText, gotText)
	}
	if gotCSV != wantCSV {
		t.Errorf("CSV export differs after resume:\n--- want\n%s\n--- got\n%s", wantCSV, gotCSV)
	}
	if gotJSON != wantJSON {
		t.Errorf("JSON export differs after resume:\n--- want\n%s\n--- got\n%s", wantJSON, gotJSON)
	}
	if skips := reg.Counter(obs.MHarnessResumeSkips).Value(); skips != keep {
		t.Errorf("resume skips = %d, want %d", skips, keep)
	}
	// The merged journal holds every session exactly once: the skipped
	// prefix from before the cut plus only the re-executed tail.
	merged := countRecords(t, cutDir)
	if merged[recSession] != totalSessions {
		t.Errorf("merged journal has %d session records, want %d", merged[recSession], totalSessions)
	}
	if merged[recExperimentEnd] != 1 || merged[recRunEnd] != 1 {
		t.Errorf("merged journal counts: %v", merged)
	}

	// A second resume finds the completed experiment and skips it whole,
	// re-exporting the journaled result byte-identically.
	rec2, err := runlog.Recover(cutDir)
	if err != nil {
		t.Fatal(err)
	}
	rp2, err := NewReplay(rec2)
	if err != nil {
		t.Fatal(err)
	}
	again, resumed := journaledRun(t, resumeCfg, exp, cutDir, rp2)
	if !resumed {
		t.Fatal("completed experiment not skipped whole")
	}
	againText, againCSV, againJSON := exports(t, again)
	if againText != wantText || againCSV != wantCSV || againJSON != wantJSON {
		t.Error("whole-experiment resume exports differ from baseline")
	}
}

func TestReplayRejectsFingerprintChange(t *testing.T) {
	mk := func(fp string) []byte {
		b, _ := json.Marshal(journalRecord{Type: recRunStart, Fingerprint: fp})
		return b
	}
	_, err := NewReplay(&runlog.Recovery{Records: [][]byte{mk("a"), mk("b")}})
	if !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("fingerprint change: %v, want ErrJournalMismatch", err)
	}
}

func TestReplayRejectsGarbageRecords(t *testing.T) {
	cases := [][]byte{
		[]byte("not json"),
		[]byte(`{"type":"alien"}`),
		[]byte(`{"type":"session"}`),
		[]byte(`{"type":"experiment_end","experiment":"x"}`),
	}
	for _, payload := range cases {
		_, err := NewReplay(&runlog.Recovery{Records: [][]byte{payload}})
		if !errors.Is(err, ErrBadJournalRecord) {
			t.Errorf("payload %q: %v, want ErrBadJournalRecord", payload, err)
		}
	}
}

func TestSessionRecordRoundTrip(t *testing.T) {
	orig := SessionResult{
		Engine:     "JODA",
		QueryTimes: []time.Duration{time.Millisecond, 2 * time.Millisecond},
		Total:      3 * time.Millisecond,
		Wall:       5 * time.Millisecond,
		TimedOut:   true,
		ImportErr:  errors.New("disk on fire"),
		Err:        errors.New("q3 failed"),
		Retries:    2, Skipped: 1, Recovered: 1,
	}
	data, err := json.Marshal(toSessionRecord(orig))
	if err != nil {
		t.Fatal(err)
	}
	var rec sessionRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	got := rec.toResult()
	if got.Engine != orig.Engine || got.Total != orig.Total || got.Wall != orig.Wall ||
		!got.TimedOut || got.Retries != 2 || got.Skipped != 1 || got.Recovered != 1 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.ImportErr == nil || got.ImportErr.Error() != "disk on fire" {
		t.Errorf("import error lost: %v", got.ImportErr)
	}
	if got.Err == nil || got.Err.Error() != "q3 failed" {
		t.Errorf("error lost: %v", got.Err)
	}
	if len(got.QueryTimes) != 2 || got.QueryTimes[1] != 2*time.Millisecond {
		t.Errorf("query times lost: %v", got.QueryTimes)
	}
	// cell() is the render path of journaled results.
	if got.cell() != "load failed" {
		t.Errorf("cell = %q", got.cell())
	}
}

// TestWorkKeyOccurrences pins the repeat-disambiguation rule: identical
// identities get increasing occurrences, scoped per experiment.
func TestWorkKeyOccurrences(t *testing.T) {
	env := &Env{journal: &RunJournal{}}
	env.beginExperiment("fig9")
	k1, ok := env.nextKey("JODA", "twitter", 123)
	k2, _ := env.nextKey("JODA", "twitter", 123)
	k3, _ := env.nextKey("MongoDB", "twitter", 123)
	if !ok || k1.Occurrence != 0 || k2.Occurrence != 1 || k3.Occurrence != 0 {
		t.Errorf("occurrences: %v %v %v", k1, k2, k3)
	}
	env.beginExperiment("table2")
	k4, _ := env.nextKey("JODA", "twitter", 123)
	if k4.Occurrence != 0 || k4.Experiment != "table2" {
		t.Errorf("experiment scoping: %v", k4)
	}
	// Outside RunExperiment nothing is tracked.
	env.beginExperiment("")
	if _, ok := env.nextKey("JODA", "twitter", 123); ok {
		t.Error("tracked outside an experiment")
	}
	untracked := &Env{}
	if _, ok := untracked.nextKey("JODA", "twitter", 123); ok {
		t.Error("tracked without journal or replay")
	}
}
