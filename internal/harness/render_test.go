package harness

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden render files")

// goldenResult is a fixed two-table result exercising every renderer
// feature: multi-table output, duration cells, the paper's timeout dash,
// cells that need CSV quoting, and notes.
func goldenResult() *Result {
	res := &Result{
		Tables: []ResultTable{
			{
				Name:   "times",
				Header: []string{"preset", "JODA", "MongoDB", "jq"},
				Rows: [][]string{
					{"novice", FormatDuration(2400 * time.Millisecond), FormatDuration(74 * time.Second), "-"},
					{"expert", FormatDuration(500 * time.Microsecond), FormatDuration(66 * time.Minute), "load failed"},
				},
			},
			{
				Name:   "times_quoting",
				Header: []string{"metric", "value"},
				Rows: [][]string{
					{"comma, separated", "a \"quoted\" cell"},
					{"queries/s", "41"},
				},
			},
		},
	}
	res.note("(n=%d sessions per cell)", 10)
	res.note("second note")
	return res
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run 'go test ./internal/harness -run TestRenderGolden -update' to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestRenderGoldenText(t *testing.T) {
	checkGolden(t, "render_golden.txt", []byte(goldenResult().Text()))
}

func TestRenderGoldenCSV(t *testing.T) {
	out := goldenResult().CSV()
	checkGolden(t, "render_golden.csv", []byte(out))

	// The CSV block must round-trip through a standard reader once the
	// comment lines are stripped.
	var dataLines []string
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		dataLines = append(dataLines, line)
	}
	r := csv.NewReader(strings.NewReader(strings.Join(dataLines, "\n")))
	r.FieldsPerRecord = -1 // the two tables have different widths
	records, err := r.ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not parse: %v", err)
	}
	// 2 headers + 2 + 2 rows across the two tables.
	if len(records) != 6 {
		t.Errorf("parsed %d CSV records, want 6", len(records))
	}
	if got := records[4][1]; got != "a \"quoted\" cell" {
		t.Errorf("quoted cell round-trip = %q", got)
	}
}

func TestRenderGoldenJSON(t *testing.T) {
	data, err := goldenResult().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "render_golden.json", data)

	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if len(back.Tables) != 2 || back.Tables[0].Name != "times" || len(back.Notes) != 2 {
		t.Errorf("JSON round-trip lost structure: %+v", back)
	}
	if back.Tables[1].Rows[0][0] != "comma, separated" {
		t.Errorf("JSON cell round-trip = %q", back.Tables[1].Rows[0][0])
	}
}
