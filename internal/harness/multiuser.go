package harness

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/engine/jodasim"
	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/obs"
)

// userResult is one concurrent user's outcome at one concurrency level.
type userResult struct {
	completed int
	total     time.Duration
	timedOut  bool
	err       error
}

// MultiUser evaluates concurrent exploration sessions against a single
// shared JODA instance — the multi-user evaluation §III of the paper
// sketches ("we could generate multiple sessions and execute them
// simultaneously. Using different configurations for different sessions is
// also possible."). For each concurrency level it runs a mixed population
// (novice/intermediate/expert round-robin) and reports wall time, total and
// completed queries and throughput. A user hitting the timeout or an
// execution error degrades to a recorded per-user outcome — it does not
// abort the experiment — and always closes its session trace with
// EvSessionEnd. With Config.Faults enabled, the shared engine is wrapped
// with the deterministic fault injector.
func MultiUser(ctx context.Context, e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	levels := []int{1, 2, 4, 8}
	presets := core.Presets()

	var rows [][]string
	var notes []string
	for _, users := range levels {
		sessions := make([]*core.Session, users)
		for u := 0; u < users; u++ {
			sess, err := ds.generate(core.Options{
				Preset: presets[u%len(presets)],
				Seed:   e.Cfg.Seed + int64(100+u),
			})
			if err != nil {
				return nil, fmt.Errorf("multiuser: %w", err)
			}
			sessions[u] = sess
		}
		eng := jodasim.New(jodasim.Options{})
		eng.ImportValues(ds.name, ds.docs)
		var exec engine.Engine = eng
		if e.Cfg.Faults.Enabled() {
			exec = faultsim.Wrap(eng, e.Cfg.Faults)
		}

		ctx, cancel := context.WithTimeout(ctx, e.Cfg.Timeout)
		ctx = obs.With(ctx, e.Cfg.Obs)
		start := time.Now()
		var wg sync.WaitGroup
		results := make([]userResult, users)
		queries := 0
		for u, sess := range sessions {
			queries += len(sess.Queries)
			wg.Add(1)
			go func(u int, sess *core.Session) {
				defer wg.Done()
				label := fmt.Sprintf("%s/user%d", ds.name, u)
				e.Cfg.Obs.Record(obs.Event{
					Type: obs.EvSessionStart, Engine: exec.Name(), Dataset: ds.name,
					Session: label, Queries: len(sess.Queries),
				})
				r := &results[u]
				defer func() {
					ev := obs.Event{
						Type: obs.EvSessionEnd, Engine: exec.Name(), Dataset: ds.name,
						Session: label, Duration: r.total, TimedOut: r.timedOut,
					}
					if r.err != nil {
						ev.Err = r.err.Error()
					}
					e.Cfg.Obs.Record(ev)
				}()
				for _, q := range sess.Queries {
					stats, err := exec.Execute(ctx, q, io.Discard)
					if ctx.Err() != nil {
						r.timedOut = true
						e.Cfg.Obs.Record(obs.Event{
							Type: obs.EvTimeout, Engine: exec.Name(), Dataset: ds.name,
							Session: label, Query: q.ID,
						})
						e.Cfg.Obs.Counter(obs.MHarnessTimeouts).Inc()
						return
					}
					if err != nil {
						r.err = fmt.Errorf("%s: %w", q.ID, err)
						return
					}
					r.completed++
					r.total += stats.Duration
				}
			}(u, sess)
		}
		wg.Wait()
		wall := time.Since(start)
		cancel()
		eng.Close()
		completed := 0
		for u, r := range results {
			completed += r.completed
			if r.err != nil {
				notes = append(notes, fmt.Sprintf("(%d users: user%d failed at query %d/%d: %v)",
					users, u, r.completed+1, len(sessions[u].Queries), r.err))
			} else if r.timedOut {
				notes = append(notes, fmt.Sprintf("(%d users: user%d timed out after %d/%d queries)",
					users, u, r.completed, len(sessions[u].Queries)))
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", users),
			fmt.Sprintf("%d", queries),
			fmt.Sprintf("%d", completed),
			FormatDuration(wall),
			fmt.Sprintf("%.0f", float64(completed)/wall.Seconds()),
		})
	}
	res := tableResult("multiuser", []string{"concurrent users", "queries", "completed", "wall time", "queries/s"}, rows)
	res.note("(mixed novice/intermediate/expert population on one shared JODA instance)")
	for _, n := range notes {
		res.note(n)
	}
	return res, nil
}
