package harness

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/engine/jodasim"
	"github.com/joda-explore/betze/internal/obs"
)

// MultiUser evaluates concurrent exploration sessions against a single
// shared JODA instance — the multi-user evaluation §III of the paper
// sketches ("we could generate multiple sessions and execute them
// simultaneously. Using different configurations for different sessions is
// also possible."). For each concurrency level it runs a mixed population
// (novice/intermediate/expert round-robin) and reports wall time, total
// queries and throughput.
func MultiUser(e *Env) (*Result, error) {
	ds, err := e.Twitter()
	if err != nil {
		return nil, err
	}
	levels := []int{1, 2, 4, 8}
	presets := core.Presets()

	var rows [][]string
	for _, users := range levels {
		sessions := make([]*core.Session, users)
		for u := 0; u < users; u++ {
			sess, err := ds.generate(core.Options{
				Preset: presets[u%len(presets)],
				Seed:   e.Cfg.Seed + int64(100+u),
			})
			if err != nil {
				return nil, fmt.Errorf("multiuser: %w", err)
			}
			sessions[u] = sess
		}
		eng := jodasim.New(jodasim.Options{})
		eng.ImportValues(ds.name, ds.docs)

		ctx, cancel := context.WithTimeout(context.Background(), e.Cfg.Timeout)
		ctx = obs.With(ctx, e.Cfg.Obs)
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, users)
		queries := 0
		for u, sess := range sessions {
			queries += len(sess.Queries)
			wg.Add(1)
			go func(u int, sess *core.Session) {
				defer wg.Done()
				label := fmt.Sprintf("%s/user%d", ds.name, u)
				e.Cfg.Obs.Record(obs.Event{
					Type: obs.EvSessionStart, Engine: eng.Name(), Dataset: ds.name,
					Session: label, Queries: len(sess.Queries),
				})
				var total time.Duration
				for _, q := range sess.Queries {
					stats, err := eng.Execute(ctx, q, io.Discard)
					if err != nil {
						errs[u] = err
						return
					}
					total += stats.Duration
				}
				e.Cfg.Obs.Record(obs.Event{
					Type: obs.EvSessionEnd, Engine: eng.Name(), Dataset: ds.name,
					Session: label, Duration: total,
				})
			}(u, sess)
		}
		wg.Wait()
		wall := time.Since(start)
		cancel()
		eng.Close()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("multiuser (%d users): %w", users, err)
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", users),
			fmt.Sprintf("%d", queries),
			FormatDuration(wall),
			fmt.Sprintf("%.0f", float64(queries)/wall.Seconds()),
		})
	}
	res := tableResult("multiuser", []string{"concurrent users", "queries", "wall time", "queries/s"}, rows)
	res.note("(mixed novice/intermediate/expert population on one shared JODA instance)")
	return res, nil
}
