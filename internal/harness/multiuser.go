package harness

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/core"
	"github.com/joda-explore/betze/internal/engine/jodasim"
)

// MultiUser evaluates concurrent exploration sessions against a single
// shared JODA instance — the multi-user evaluation §III of the paper
// sketches ("we could generate multiple sessions and execute them
// simultaneously. Using different configurations for different sessions is
// also possible."). For each concurrency level it runs a mixed population
// (novice/intermediate/expert round-robin) and reports wall time, total
// queries and throughput.
func MultiUser(e *Env) (string, error) {
	ds, err := e.Twitter()
	if err != nil {
		return "", err
	}
	levels := []int{1, 2, 4, 8}
	presets := core.Presets()

	var rows [][]string
	for _, users := range levels {
		sessions := make([]*core.Session, users)
		for u := 0; u < users; u++ {
			sess, err := ds.generate(core.Options{
				Preset: presets[u%len(presets)],
				Seed:   e.Cfg.Seed + int64(100+u),
			})
			if err != nil {
				return "", fmt.Errorf("multiuser: %w", err)
			}
			sessions[u] = sess
		}
		eng := jodasim.New(jodasim.Options{})
		eng.ImportValues(ds.name, ds.docs)

		ctx, cancel := context.WithTimeout(context.Background(), e.Cfg.Timeout)
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, users)
		queries := 0
		for u, sess := range sessions {
			queries += len(sess.Queries)
			wg.Add(1)
			go func(u int, sess *core.Session) {
				defer wg.Done()
				for _, q := range sess.Queries {
					if _, err := eng.Execute(ctx, q, io.Discard); err != nil {
						errs[u] = err
						return
					}
				}
			}(u, sess)
		}
		wg.Wait()
		wall := time.Since(start)
		cancel()
		eng.Close()
		for _, err := range errs {
			if err != nil {
				return "", fmt.Errorf("multiuser (%d users): %w", users, err)
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", users),
			fmt.Sprintf("%d", queries),
			FormatDuration(wall),
			fmt.Sprintf("%.0f", float64(queries)/wall.Seconds()),
		})
	}
	out := table([]string{"concurrent users", "queries", "wall time", "queries/s"}, rows)
	out += "(mixed novice/intermediate/expert population on one shared JODA instance)\n"
	return out, nil
}
