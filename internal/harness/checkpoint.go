package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/runlog"
)

// This file is the durability layer above the runlog write-ahead journal:
// every completed work unit (a session on one engine, a whole experiment) is
// appended as one JSON record, and a resumed run replays the journal to skip
// work it already holds. Session generation is deterministic per seed, so
// the same configuration always enumerates the same work keys — the skip set
// of a resume is exactly the completed prefix of the interrupted run.

// ErrJournalMismatch reports a -resume against a journal whose recorded
// configuration fingerprint differs from the current run's.
var ErrJournalMismatch = errors.New("harness: journal written by a different configuration")

// ErrBadJournalRecord reports a journal payload that is not a valid
// checkpoint record (foreign journal, or corruption the checksum missed).
var ErrBadJournalRecord = errors.New("harness: malformed journal record")

// WorkKey identifies one journaled session execution. Occurrence
// disambiguates repeats of the same (experiment, engine, dataset, seed)
// tuple — Fig. 9 runs the identical JODA session once per thread count, and
// the resilience experiment sweeps fault rates over one session. Repeats are
// counted per identity, so experiments that iterate datasets in map order
// still produce a stable key for every unit.
type WorkKey struct {
	Experiment string `json:"experiment"`
	Engine     string `json:"engine"`
	Dataset    string `json:"dataset"`
	Seed       int64  `json:"seed"`
	Occurrence int    `json:"occurrence"`
}

func (k WorkKey) String() string {
	return fmt.Sprintf("%s/%s/%s/seed%d#%d", k.Experiment, k.Engine, k.Dataset, k.Seed, k.Occurrence)
}

// workIdentity is a WorkKey without the occurrence — the map key of the
// per-identity repeat counters.
type workIdentity struct {
	experiment, engine, dataset string
	seed                        int64
}

// Journal record types.
const (
	recRunStart      = "run_start"
	recExperimentBeg = "experiment_start"
	recSession       = "session"
	recExperimentEnd = "experiment_end"
	recRunEnd        = "run_end"
)

// journalRecord is the JSON payload of one runlog record.
type journalRecord struct {
	Type string `json:"type"`
	// Fingerprint is the canonical configuration fingerprint (run_start).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Experiment is the experiment ID (experiment_start/experiment_end).
	Experiment string `json:"experiment,omitempty"`
	// Key identifies a session record.
	Key *WorkKey `json:"key,omitempty"`
	// Session is the journaled session result.
	Session *sessionRecord `json:"session,omitempty"`
	// Result is the full experiment result (experiment_end), so a resumed
	// run re-exports completed experiments byte-identically without
	// re-running them.
	Result *Result `json:"result,omitempty"`
}

// sessionRecord mirrors SessionResult with errors flattened to strings —
// errors survive the JSON round trip as text, and the render layer only
// branches on their nil-ness.
type sessionRecord struct {
	Engine     string             `json:"engine"`
	Import     engine.ImportStats `json:"import"`
	QueryTimes []time.Duration    `json:"query_times,omitempty"`
	Total      time.Duration      `json:"total"`
	Wall       time.Duration      `json:"wall"`
	TimedOut   bool               `json:"timed_out,omitempty"`
	ImportErr  string             `json:"import_err,omitempty"`
	Err        string             `json:"err,omitempty"`
	Retries    int                `json:"retries,omitempty"`
	Skipped    int                `json:"skipped,omitempty"`
	Recovered  int                `json:"recovered,omitempty"`
}

func toSessionRecord(r SessionResult) *sessionRecord {
	rec := &sessionRecord{
		Engine: r.Engine, Import: r.Import, QueryTimes: r.QueryTimes,
		Total: r.Total, Wall: r.Wall, TimedOut: r.TimedOut,
		Retries: r.Retries, Skipped: r.Skipped, Recovered: r.Recovered,
	}
	if r.ImportErr != nil {
		rec.ImportErr = r.ImportErr.Error()
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	return rec
}

func (rec *sessionRecord) toResult() SessionResult {
	r := SessionResult{
		Engine: rec.Engine, Import: rec.Import, QueryTimes: rec.QueryTimes,
		Total: rec.Total, Wall: rec.Wall, TimedOut: rec.TimedOut,
		Retries: rec.Retries, Skipped: rec.Skipped, Recovered: rec.Recovered,
	}
	if rec.ImportErr != "" {
		r.ImportErr = errors.New(rec.ImportErr)
	}
	if rec.Err != "" {
		r.Err = errors.New(rec.Err)
	}
	return r
}

// RunJournal appends checkpoint records to a runlog writer as work units
// complete. It is safe for concurrent use; like the trace recorder, the
// first append failure is retained and later appends become no-ops, so a
// full disk degrades durability instead of crashing the benchmark.
type RunJournal struct {
	mu  sync.Mutex
	w   *runlog.Writer
	obs obs.Scope
	err error
}

// NewRunJournal wraps a runlog writer. Checkpoint appends and their
// failures are reported through scope.
func NewRunJournal(w *runlog.Writer, scope obs.Scope) *RunJournal {
	return &RunJournal{w: w, obs: scope}
}

// append marshals and durably appends one record (fsync per work unit).
func (j *RunJournal) append(rec journalRecord) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		j.err = fmt.Errorf("harness: encoding journal record: %w", err)
		return
	}
	// The mutex exists precisely to serialise appends: every writer must
	// queue behind the fsync, and the journal has no other critical section
	// to stall. Holding it across AppendSync is the design, not an accident.
	//lint:ignore lockbalance serialising appends through the fsync is this mutex's entire purpose
	if err := j.w.AppendSync(payload); err != nil {
		j.err = fmt.Errorf("harness: appending journal record: %w", err)
		return
	}
	j.obs.Counter(obs.MRunlogAppends).Inc()
}

// RunStart records the configuration fingerprint opening this run (or
// resume generation — a resumed journal holds one run_start per attempt,
// all with the same fingerprint).
func (j *RunJournal) RunStart(fingerprint string) {
	j.append(journalRecord{Type: recRunStart, Fingerprint: fingerprint})
}

// BeginExperiment records an experiment starting.
func (j *RunJournal) BeginExperiment(id string) {
	j.append(journalRecord{Type: recExperimentBeg, Experiment: id})
}

// Session checkpoints one completed session execution.
func (j *RunJournal) Session(key WorkKey, res SessionResult) {
	if j == nil {
		return
	}
	j.append(journalRecord{Type: recSession, Key: &key, Session: toSessionRecord(res)})
	j.obs.Record(obs.Event{
		Type: obs.EvCheckpoint, Kind: obs.KindSession, Engine: key.Engine,
		Dataset: key.Dataset, Session: key.String(),
	})
}

// EndExperiment checkpoints a completed experiment with its full result.
func (j *RunJournal) EndExperiment(id string, res *Result) {
	if j == nil {
		return
	}
	j.append(journalRecord{Type: recExperimentEnd, Experiment: id, Result: res})
	j.obs.Record(obs.Event{Type: obs.EvCheckpoint, Kind: obs.KindExperiment, Session: id})
}

// RunEnd records the run completing every requested experiment.
func (j *RunJournal) RunEnd() {
	j.append(journalRecord{Type: recRunEnd})
}

// Err reports the first append failure the journal suppressed, if any.
func (j *RunJournal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close seals the journal.
func (j *RunJournal) Close() error {
	if j == nil {
		return nil
	}
	if err := j.w.Close(); err != nil {
		return err
	}
	return j.Err()
}

// Replay is the parsed state of a recovered journal: which sessions and
// experiments already completed, keyed for deterministic skipping.
type Replay struct {
	fingerprint string
	sessions    map[WorkKey]SessionResult
	experiments map[string]*Result
	records     int
}

// NewReplay parses recovered journal records. All run_start fingerprints in
// the journal must agree (each resume generation re-records it); a payload
// that does not parse as a checkpoint record wraps ErrBadJournalRecord.
func NewReplay(rec *runlog.Recovery) (*Replay, error) {
	rp := &Replay{
		sessions:    make(map[WorkKey]SessionResult),
		experiments: make(map[string]*Result),
		records:     len(rec.Records),
	}
	for i, payload := range rec.Records {
		var jr journalRecord
		if err := json.Unmarshal(payload, &jr); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadJournalRecord, i, err)
		}
		switch jr.Type {
		case recRunStart:
			if rp.fingerprint == "" {
				rp.fingerprint = jr.Fingerprint
			} else if jr.Fingerprint != rp.fingerprint {
				return nil, fmt.Errorf("%w: record %d changes the fingerprint", ErrJournalMismatch, i)
			}
		case recSession:
			if jr.Key == nil || jr.Session == nil {
				return nil, fmt.Errorf("%w: record %d: session without key or body", ErrBadJournalRecord, i)
			}
			rp.sessions[*jr.Key] = jr.Session.toResult()
		case recExperimentEnd:
			if jr.Result == nil {
				return nil, fmt.Errorf("%w: record %d: experiment_end without result", ErrBadJournalRecord, i)
			}
			rp.experiments[jr.Experiment] = jr.Result
		case recExperimentBeg, recRunEnd:
			// Markers only; carry no replayable state.
		default:
			return nil, fmt.Errorf("%w: record %d: unknown type %q", ErrBadJournalRecord, i, jr.Type)
		}
	}
	return rp, nil
}

// Fingerprint returns the configuration fingerprint the journal was written
// under (empty for an empty journal).
func (rp *Replay) Fingerprint() string { return rp.fingerprint }

// Records returns how many journal records were replayed.
func (rp *Replay) Records() int { return rp.records }

// Sessions returns how many completed sessions the journal holds.
func (rp *Replay) Sessions() int { return len(rp.sessions) }

// ExperimentResult returns the journaled result of a completed experiment.
func (rp *Replay) ExperimentResult(id string) (*Result, bool) {
	if rp == nil {
		return nil, false
	}
	res, ok := rp.experiments[id]
	return res, ok
}

// SessionResult returns the journaled result of a completed session.
func (rp *Replay) SessionResult(key WorkKey) (SessionResult, bool) {
	if rp == nil {
		return SessionResult{}, false
	}
	res, ok := rp.sessions[key]
	return res, ok
}

// SetJournal attaches a checkpoint journal and an optional replay of a
// prior interrupted run to the environment. With a journal, every completed
// session and experiment is appended durably; with a replay, work units the
// journal already holds are skipped and their journaled results returned.
func (e *Env) SetJournal(j *RunJournal, rp *Replay) {
	e.journal = j
	e.replay = rp
}

// RunExperiment executes one experiment under checkpointing: a completed
// experiment found in the replay is returned without running (resumed=true),
// otherwise the experiment runs with session-granular journaling and its
// result is checkpointed on success.
func (e *Env) RunExperiment(ctx context.Context, exp Experiment) (res *Result, resumed bool, err error) {
	if e.replay != nil {
		if res, ok := e.replay.ExperimentResult(exp.ID); ok {
			e.Cfg.Obs.Record(obs.Event{Type: obs.EvResumeSkip, Kind: obs.KindExperiment, Session: exp.ID})
			e.Cfg.Obs.Counter(obs.MHarnessResumeSkips).Inc()
			return res, true, nil
		}
	}
	e.beginExperiment(exp.ID)
	defer e.beginExperiment("")
	e.journal.BeginExperiment(exp.ID)
	res, err = exp.Run(ctx, e)
	if err != nil {
		return nil, false, err
	}
	e.journal.EndExperiment(exp.ID, res)
	return res, false, nil
}

// beginExperiment scopes subsequent session keys to an experiment and
// resets the per-identity repeat counters.
func (e *Env) beginExperiment(id string) {
	e.keyMu.Lock()
	e.curExperiment = id
	e.occurrences = make(map[workIdentity]int)
	e.keyMu.Unlock()
}

// nextKey assigns the work key for a session execution about to run. The
// second return is false when the environment is not running under
// RunExperiment-with-checkpointing, in which case sessions are not tracked.
func (e *Env) nextKey(engineName, dataset string, seed int64) (WorkKey, bool) {
	if e.journal == nil && e.replay == nil {
		return WorkKey{}, false
	}
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	if e.curExperiment == "" {
		return WorkKey{}, false
	}
	id := workIdentity{experiment: e.curExperiment, engine: engineName, dataset: dataset, seed: seed}
	occ := e.occurrences[id]
	e.occurrences[id] = occ + 1
	return WorkKey{
		Experiment: id.experiment, Engine: id.engine, Dataset: id.dataset,
		Seed: id.seed, Occurrence: occ,
	}, true
}

// DetImportDuration derives a deterministic stand-in for a measured import
// duration from the import's deterministic work counters (DetTiming mode).
// Exported for the service layer (betze-web campaigns), whose byte-identical
// crash-resume artifacts need the same timing substitution.
func DetImportDuration(imp engine.ImportStats) time.Duration {
	return time.Duration(imp.Docs+1) * time.Microsecond
}

// DetQueryDuration derives a deterministic stand-in for a measured query
// duration from the execution's deterministic work counters (DetTiming
// mode): scanning dominates, returning documents costs extra.
func DetQueryDuration(st engine.ExecStats) time.Duration {
	return time.Duration(1+st.Scanned+2*st.Returned) * time.Microsecond
}
