package harness

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/core"
)

// tinyConfig keeps harness tests fast.
func tinyConfig(t *testing.T) Config {
	return Config{
		Dir:          t.TempDir(),
		TwitterDocs:  600,
		NoBenchDocs:  600,
		NoBenchSweep: []int{200, 400},
		RedditDocs:   600,
		Sessions:     2,
		GridSessions: 1,
		Threads:      []int{1, 2},
		Timeout:      30 * time.Second,
		Seed:         123,
	}
}

func newTinyEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { env.Close() })
	return env
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0s"},
		{500 * time.Microsecond, "0.5ms"},
		{250 * time.Millisecond, "250ms"},
		{2400 * time.Millisecond, "2.4s"},
		{32 * time.Second, "32s"},
		{74 * time.Second, "1.23m"},
		{19*time.Minute + 20*time.Second, "19.3m"},
		{66 * time.Minute, "1.1h"},
		{8 * time.Hour, "8h"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestBoxStats(t *testing.T) {
	samples := []time.Duration{5, 1, 3, 2, 4}
	b := box(samples)
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("box = %+v", b)
	}
	if z := box(nil); z.Min != 0 || z.Max != 0 {
		t.Errorf("empty box = %+v", z)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 15 {
		t.Fatalf("expected 15 experiments, got %d", len(exps))
	}
	seen := map[string]bool{}
	for _, exp := range exps {
		if exp.ID == "" || exp.Title == "" || exp.Run == nil {
			t.Errorf("experiment %+v incomplete", exp.ID)
		}
		if seen[exp.ID] {
			t.Errorf("duplicate experiment id %s", exp.ID)
		}
		seen[exp.ID] = true
		if _, err := ByID(exp.ID); err != nil {
			t.Errorf("ByID(%s): %v", exp.ID, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Errorf("unknown id accepted")
	}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-scale full sweep still takes a few seconds")
	}
	env := newTinyEnv(t)
	checks := map[string][]string{
		"table1": {"novice", "0.50", "0.30", "20", "expert", "0.05"},
		"fig5":   {"q1", "q20", "novice", "intermediate", "expert"},
		"fig6":   {"median", "novice", "expert"},
		"fig7":   {"0.9", "-", "alpha"},
		"fig8":   {"Twitter", "NoBench", "Reddit"},
		"fig9":   {"threads", "JODA", "MongoDB", "PostgreSQL", "jq"},
		"fig10":  {"documents", "200", "400"},
		"table2": {"JODA memory evicted", "Twitter", "NoBench"},
		"table3": {"nov-Default", "exp-GAgg", "load failed"},
		"table4": {"path depth", "documents", "queries default", "queries weighted paths"},
		"gencost": {
			"dataset analysis time", "query generation time",
		},
		"skew":       {"top-10", "top-20", "references"},
		"multiuser":  {"concurrent users", "queries/s", "8"},
		"resilience": {"fault rate", "retried", "recovered", "0%", "50%"},
	}
	for _, exp := range Experiments() {
		res, err := exp.Run(context.Background(), env)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		out := res.Text()
		if out == "" {
			t.Fatalf("%s produced no output", exp.ID)
		}
		for _, frag := range checks[exp.ID] {
			if !strings.Contains(out, frag) {
				t.Errorf("%s output missing %q:\n%s", exp.ID, frag, out)
			}
		}
		// Every experiment must also export machine-readable forms.
		if csvOut := res.CSV(); !strings.HasPrefix(csvOut, "# ") {
			t.Errorf("%s CSV export missing table header comment:\n%s", exp.ID, csvOut)
		}
		if _, err := res.JSON(); err != nil {
			t.Errorf("%s JSON export: %v", exp.ID, err)
		}
		t.Logf("%s:\n%s", exp.Title, out)
	}
}

func TestRunSessionTimeout(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Timeout = time.Nanosecond
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	ds, err := env.Twitter()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := ds.generate(core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := env.runSession(context.Background(), jodaSpec(0), ds, sess)
	if !res.TimedOut && res.ImportErr == nil {
		t.Errorf("nanosecond timeout did not trip: %+v", res)
	}
	if res.cell() != "-" && res.ImportErr == nil {
		t.Errorf("timeout cell = %q", res.cell())
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.TwitterDocs != 8000 || cfg.NoBenchDocs != 20000 || cfg.RedditDocs != 20000 {
		t.Errorf("dataset defaults: %+v", cfg)
	}
	if len(cfg.NoBenchSweep) == 0 || cfg.Sessions != 10 || cfg.GridSessions != 3 {
		t.Errorf("run defaults: %+v", cfg)
	}
	if len(cfg.Threads) < 3 || cfg.Threads[0] != 1 {
		t.Errorf("thread sweep: %v", cfg.Threads)
	}
	if cfg.Timeout != 2*time.Minute || cfg.Seed != 123 {
		t.Errorf("timeout/seed defaults: %v/%d", cfg.Timeout, cfg.Seed)
	}
	// Explicit values survive.
	c2 := Config{TwitterDocs: 5, Sessions: 1, Seed: 9}.withDefaults()
	if c2.TwitterDocs != 5 || c2.Sessions != 1 || c2.Seed != 9 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

// TestDefaultThreadSweep covers the Fig. 9 sweep construction, including the
// non-power-of-two machines whose core count the doubling used to skip.
func TestDefaultThreadSweep(t *testing.T) {
	cases := []struct {
		ncpu int
		want []int
	}{
		{1, []int{1, 2, 4}},
		{2, []int{1, 2, 4}},
		{3, []int{1, 2, 3, 4}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
		{12, []int{1, 2, 4, 8, 12}},
		{60, []int{1, 2, 4, 8, 16, 32, 60}},
		{64, []int{1, 2, 4, 8, 16, 32, 64}},
	}
	for _, c := range cases {
		got := defaultThreadSweep(c.ncpu)
		if len(got) != len(c.want) {
			t.Errorf("defaultThreadSweep(%d) = %v, want %v", c.ncpu, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("defaultThreadSweep(%d) = %v, want %v", c.ncpu, got, c.want)
				break
			}
		}
	}
}

func TestNewEnvOwnedAndExplicitDirs(t *testing.T) {
	env, err := NewEnv(Config{})
	if err != nil {
		t.Fatal(err)
	}
	dir := env.dir
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("owned temp dir not removed: %v", err)
	}
	explicit := filepath.Join(t.TempDir(), "bench")
	env2, err := NewEnv(Config{Dir: explicit})
	if err != nil {
		t.Fatal(err)
	}
	if err := env2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(explicit); err != nil {
		t.Errorf("explicit dir removed on Close: %v", err)
	}
}

func TestResultCellRendering(t *testing.T) {
	cases := []struct {
		res  SessionResult
		want string
	}{
		{SessionResult{Total: 2 * time.Second}, "2s"},
		{SessionResult{TimedOut: true}, "-"},
		{SessionResult{ImportErr: os.ErrNotExist}, "load failed"},
		{SessionResult{Err: os.ErrInvalid}, "error"},
	}
	for _, c := range cases {
		if got := c.res.cell(); got != c.want {
			t.Errorf("cell(%+v) = %q, want %q", c.res, got, c.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if percent(1, 4) != "25.0%" || percent(0, 0) != "0.0%" {
		t.Errorf("percent rendering: %s / %s", percent(1, 4), percent(0, 0))
	}
}
