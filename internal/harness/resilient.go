package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/faultsim"
	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/query"
)

// RetryPolicy configures the resilient executor: bounded retries with
// exponential backoff and full jitter, an optional per-query deadline on top
// of the session timeout, and a per-engine circuit breaker. The zero value
// executes every operation exactly once with no breaker — the seed
// behaviour, minus aborting the session on the first error.
type RetryPolicy struct {
	// MaxAttempts bounds the executions of one operation, including the
	// first (<= 0 means 1, i.e. no retries).
	MaxAttempts int
	// BaseBackoff is the backoff cap before the first retry; it doubles
	// per attempt up to MaxBackoff, and the actual sleep is drawn
	// uniformly from [0, cap) — "full jitter" (default 2ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 50ms).
	MaxBackoff time.Duration
	// QueryDeadline bounds one execution attempt, in addition to the
	// session timeout; an attempt exceeding it is retried while the
	// session deadline allows. Zero disables the per-query deadline.
	QueryDeadline time.Duration
	// BreakerThreshold is the number of consecutive failed queries that
	// opens the circuit breaker; while open, queries are skipped without
	// touching the engine. Zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before allowing
	// a half-open trial query (default 100ms).
	BreakerCooldown time.Duration
	// Seed fixes the jitter sequence (default 1), keeping backoff
	// schedules reproducible alongside the fault schedule.
	Seed int64
}

// DefaultRetryPolicy is the profile behind the CLIs' -retries flag: four
// attempts per operation, which out-lasts faultsim's default MaxFaultsPerOp
// of two, and a breaker for persistently failing engines.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      4,
		BaseBackoff:      2 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  100 * time.Millisecond,
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 100 * time.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// backoff draws the full-jitter sleep before retrying attempt+1.
func (p RetryPolicy) backoff(rng *rand.Rand, attempt int) time.Duration {
	cap := p.BaseBackoff
	for i := 1; i < attempt && cap < p.MaxBackoff; i++ {
		cap *= 2
	}
	if cap > p.MaxBackoff {
		cap = p.MaxBackoff
	}
	return time.Duration(rng.Float64() * float64(cap))
}

// sleep waits for d or until the context is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// retryable reports whether an operation error is worth re-attempting:
// injected transient faults and per-attempt deadline trips are; structural
// errors (unknown datasets, parse failures) fail the same way every time.
func retryable(err error) bool {
	return faultsim.IsTransient(err) || errors.Is(err, context.DeadlineExceeded)
}

// errBreakerOpen marks queries skipped by an open circuit breaker.
var errBreakerOpen = errors.New("harness: circuit breaker open")

// breaker is a consecutive-failure circuit breaker. Closed it passes
// everything; after threshold consecutive query failures it opens and
// rejects queries until the cooldown elapses, then admits one half-open
// trial whose outcome closes or re-opens it.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	consecutive int
	open        bool
	halfOpen    bool
	openedAt    time.Time
}

func newBreaker(p RetryPolicy) *breaker {
	return &breaker{threshold: p.BreakerThreshold, cooldown: p.BreakerCooldown, now: time.Now}
}

// allow reports whether the next query may run.
func (b *breaker) allow() bool {
	if b.threshold <= 0 || !b.open {
		return true
	}
	if b.now().Sub(b.openedAt) >= b.cooldown {
		b.halfOpen = true
		return true
	}
	return false
}

func (b *breaker) success() {
	b.consecutive = 0
	b.open = false
	b.halfOpen = false
}

// failure records a failed query and reports whether this failure opened
// (or re-opened) the breaker.
func (b *breaker) failure() bool {
	if b.threshold <= 0 {
		return false
	}
	b.consecutive++
	if b.halfOpen {
		b.halfOpen = false
		b.openedAt = b.now()
		return true
	}
	if !b.open && b.consecutive >= b.threshold {
		b.open = true
		b.openedAt = b.now()
		return true
	}
	return false
}

// Outcome is the per-query result of a resilient run.
type Outcome struct {
	Query *query.Query
	// Stats is valid when Err is nil.
	Stats engine.ExecStats
	// Attempts is how many times the query was executed (0 when the
	// breaker skipped it).
	Attempts int
	// Err is the final error of a skipped query; nil on success.
	Err error
	// Skipped marks queries that did not complete (skip-and-record).
	Skipped bool
}

// RunStats aggregates the resilience accounting of one engine run.
type RunStats struct {
	// Completed counts queries that finished successfully.
	Completed int
	// Retries counts re-attempted query executions.
	Retries int
	// Skipped counts queries recorded as failed and passed over.
	Skipped int
	// Recovered counts crash recoveries (lineage replays).
	Recovered int
	// BreakerOpens counts breaker open/re-open transitions.
	BreakerOpens int
	// TimedOut is set when the session deadline expired mid-run; queries
	// after the expiry were not attempted.
	TimedOut bool
	// FirstErr is the first query failure, for result tables.
	FirstErr error
}

// RunImport imports one dataset with the policy's retry loop. Only
// transient faults are retried — a structurally bad dataset (PostgreSQL on
// Reddit) fails identically every time. Returns the retry count.
func RunImport(ctx context.Context, eng engine.Engine, name, path string, pol RetryPolicy) (engine.ImportStats, int, error) {
	pol = pol.withDefaults()
	rng := rand.New(rand.NewSource(pol.Seed))
	sc := obs.From(ctx)
	for attempt := 1; ; attempt++ {
		imp, err := eng.ImportFile(ctx, name, path)
		if err == nil || ctx.Err() != nil || attempt >= pol.MaxAttempts || !retryable(err) {
			return imp, attempt - 1, err
		}
		sc.Counter(obs.MHarnessRetries).Inc()
		sc.Record(obs.Event{
			Type: obs.EvRetry, Engine: eng.Name(), Dataset: name,
			Attempt: attempt, Err: err.Error(),
		})
		sleep(ctx, pol.backoff(rng, attempt))
	}
}

// RunQueries executes a query sequence against one engine with retries,
// per-query deadlines, a circuit breaker, skip-and-record degradation, and
// crash recovery: when the engine loses its derived (stored) datasets — an
// injected crash, or an unknown-dataset error on a name the session stored
// earlier — the executor replays the stored-dataset lineage to rebuild them
// and re-attempts the query. One failed query no longer aborts the rest of
// the session. The session label tags emitted trace events.
func RunQueries(ctx context.Context, eng engine.Engine, queries []*query.Query, pol RetryPolicy, sink io.Writer, session string) ([]Outcome, RunStats) {
	pol = pol.withDefaults()
	st := &runner{
		eng:     eng,
		pol:     pol,
		sc:      obs.From(ctx),
		session: session,
		rng:     rand.New(rand.NewSource(pol.Seed)),
		br:      newBreaker(pol),
	}
	var outcomes []Outcome
	var rs RunStats
	for _, q := range queries {
		if ctx.Err() != nil {
			rs.TimedOut = true
			break
		}
		if !st.br.allow() {
			st.sc.Counter(obs.MHarnessSkips).Inc()
			st.sc.Record(obs.Event{
				Type: obs.EvSkip, Engine: eng.Name(), Dataset: q.Base,
				Query: q.ID, Session: session, Kind: obs.KindBreakerOpen,
			})
			outcomes = append(outcomes, Outcome{Query: q, Err: errBreakerOpen, Skipped: true})
			rs.Skipped++
			if rs.FirstErr == nil {
				rs.FirstErr = fmt.Errorf("%s on %s: %w", q.ID, eng.Name(), errBreakerOpen)
			}
			continue
		}
		o := st.runQuery(ctx, q, sink, &rs)
		if ctx.Err() != nil && o.Err != nil {
			// The session deadline tripped mid-query: report the
			// timeout, do not count the query as skipped.
			rs.TimedOut = true
			st.sc.Counter(obs.MHarnessTimeouts).Inc()
			st.sc.Record(obs.Event{
				Type: obs.EvTimeout, Engine: eng.Name(), Dataset: q.Base,
				Query: q.ID, Session: session,
			})
			break
		}
		outcomes = append(outcomes, o)
		if o.Err == nil {
			rs.Completed++
			st.br.success()
			if q.Store != "" {
				st.lineage = append(st.lineage, q)
			}
			continue
		}
		rs.Skipped++
		if rs.FirstErr == nil {
			rs.FirstErr = fmt.Errorf("%s on %s: %w", q.ID, eng.Name(), o.Err)
		}
		st.sc.Counter(obs.MHarnessSkips).Inc()
		st.sc.Record(obs.Event{
			Type: obs.EvSkip, Engine: eng.Name(), Dataset: q.Base,
			Query: q.ID, Session: session, Attempt: o.Attempts, Err: o.Err.Error(),
		})
		if st.br.failure() {
			rs.BreakerOpens++
			st.sc.Counter(obs.MHarnessBreakerOpens).Inc()
			st.sc.Record(obs.Event{
				Type: obs.EvBreaker, Engine: eng.Name(), Session: session,
				Kind: obs.KindOpen, Query: q.ID,
			})
		}
	}
	return outcomes, rs
}

// runner carries the per-run executor state.
type runner struct {
	eng     engine.Engine
	pol     RetryPolicy
	sc      obs.Scope
	session string
	rng     *rand.Rand
	br      *breaker
	// lineage is the ordered list of successfully executed queries that
	// stored a derived dataset; replaying it rebuilds the engine's
	// derived state after a crash.
	lineage []*query.Query
}

// runQuery drives the attempt loop of one query.
func (st *runner) runQuery(ctx context.Context, q *query.Query, sink io.Writer, rs *RunStats) Outcome {
	o := Outcome{Query: q}
	for attempt := 1; attempt <= st.pol.MaxAttempts; attempt++ {
		o.Attempts = attempt
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if st.pol.QueryDeadline > 0 {
			actx, cancel = context.WithTimeout(ctx, st.pol.QueryDeadline)
		}
		stats, err := st.eng.Execute(actx, q, sink)
		cancel()
		if err == nil {
			o.Stats = stats
			o.Err = nil
			return o
		}
		o.Err = err
		if ctx.Err() != nil {
			// Session deadline: the caller turns this into a timeout.
			return o
		}
		if st.crashed(q, err) {
			if st.recover(ctx, rs) && attempt < st.pol.MaxAttempts {
				continue // re-attempt against the rebuilt state
			}
			o.Skipped = true
			return o
		}
		if !retryable(err) || attempt >= st.pol.MaxAttempts {
			o.Skipped = true
			return o
		}
		rs.Retries++
		st.sc.Counter(obs.MHarnessRetries).Inc()
		st.sc.Record(obs.Event{
			Type: obs.EvRetry, Engine: st.eng.Name(), Dataset: q.Base,
			Query: q.ID, Session: st.session, Attempt: attempt, Err: err.Error(),
		})
		sleep(ctx, st.pol.backoff(st.rng, attempt))
	}
	o.Skipped = true
	return o
}

// crashed reports whether err means the engine lost its derived state: an
// injected crash, or an unknown-dataset error on a name this session has
// already stored.
func (st *runner) crashed(q *query.Query, err error) bool {
	if faultsim.IsCrash(err) {
		return true
	}
	if !errors.Is(err, engine.ErrUnknownDataset) {
		return false
	}
	for _, l := range st.lineage {
		if l.Store == q.Base {
			return true
		}
	}
	return false
}

// recover replays the stored-dataset lineage in order to rebuild derived
// state. A crash during the replay restarts it (the injector's per-op fault
// bound guarantees convergence); the restart budget guards against a
// pathological engine that crashes forever.
func (st *runner) recover(ctx context.Context, rs *RunStats) bool {
	st.sc.Counter(obs.MHarnessRecoveries).Inc()
	st.sc.Record(obs.Event{
		Type: obs.EvRecovery, Engine: st.eng.Name(), Session: st.session,
		Queries: len(st.lineage),
	})
	restarts := 0
	for i := 0; i < len(st.lineage); i++ {
		q := st.lineage[i]
		var err error
		for attempt := 1; attempt <= st.pol.MaxAttempts; attempt++ {
			if ctx.Err() != nil {
				return false
			}
			_, err = st.eng.Execute(ctx, q, io.Discard)
			if err == nil || !retryable(err) {
				break
			}
			sleep(ctx, st.pol.backoff(st.rng, attempt))
		}
		if err == nil {
			continue
		}
		if st.crashed(q, err) && restarts < 8 {
			restarts++
			i = -1 // replay from the top: the crash dropped earlier stores too
			continue
		}
		return false
	}
	rs.Recovered++
	return true
}
