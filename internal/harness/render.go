package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Result is the structured output of one experiment: one or more named
// tables plus free-form notes. Experiments build Results instead of
// rendering text directly, so every figure and table of the paper can be
// exported machine-readable (CSV, JSON) as well as human-readable (Text) —
// the structured-result-reporting discipline IDEBench and GBD argue
// benchmarks owe their users.
type Result struct {
	Tables []ResultTable `json:"tables"`
	Notes  []string      `json:"notes,omitempty"`
}

// ResultTable is one named table of string cells.
type ResultTable struct {
	// Name identifies the table within its experiment (usually the
	// experiment ID; suffixed when an experiment emits several tables).
	Name   string     `json:"name"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// tableResult builds a single-table result.
func tableResult(name string, header []string, rows [][]string) *Result {
	return &Result{Tables: []ResultTable{{Name: name, Header: header, Rows: rows}}}
}

// note appends a formatted note line.
func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Text renders the result the way the paper's tables read: tab-aligned
// columns, one block per table, notes at the end.
func (r *Result) Text() string {
	var sb strings.Builder
	for i, t := range r.Tables {
		if i > 0 {
			sb.WriteString("\n")
		}
		w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, strings.Join(t.Header, "\t"))
		fmt.Fprintln(w, strings.Repeat("-", 4+8*len(t.Header)))
		for _, row := range t.Rows {
			fmt.Fprintln(w, strings.Join(row, "\t"))
		}
		w.Flush()
	}
	for _, n := range r.Notes {
		sb.WriteString(n)
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders every table as an RFC-4180 block headed by a "# name" comment
// line, with blocks separated by blank lines and notes as trailing "# note:"
// comments. Single-table results parse directly after stripping comment
// lines.
func (r *Result) CSV() string {
	var sb strings.Builder
	for i, t := range r.Tables {
		if i > 0 {
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "# %s\n", t.Name)
		w := csv.NewWriter(&sb)
		w.Write(t.Header)
		for _, row := range t.Rows {
			w.Write(row)
		}
		w.Flush()
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "# note: %s\n", n)
	}
	return sb.String()
}

// JSON renders the result as indented JSON.
func (r *Result) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("harness: encoding result: %w", err)
	}
	return append(data, '\n'), nil
}

// FormatDuration renders durations the way the paper's tables do: seconds
// below a minute ("32s", "2.4s"), minutes below an hour ("19.3m"), hours
// beyond ("1.1h").
func FormatDuration(d time.Duration) string {
	switch {
	case d <= 0:
		return "0s"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2gms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%.3gms", float64(d)/float64(time.Millisecond))
	case d < time.Minute:
		return fmt.Sprintf("%.3gs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%.3gm", d.Minutes())
	default:
		return fmt.Sprintf("%.3gh", d.Hours())
	}
}

// cell renders one result cell: a duration, the paper's dash for timeouts,
// or a load failure.
func (r SessionResult) cell() string {
	switch {
	case r.ImportErr != nil:
		return "load failed"
	case r.Err != nil:
		return "error"
	case r.TimedOut:
		return "-"
	default:
		return FormatDuration(r.Total)
	}
}

// boxStats summarises a sample: min, first quartile, median, third
// quartile, max (the Fig. 6 box plot numbers).
type boxStats struct {
	Min, Q1, Median, Q3, Max time.Duration
}

func box(samples []time.Duration) boxStats {
	if len(samples) == 0 {
		return boxStats{}
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(f float64) time.Duration {
		idx := f * float64(len(s)-1)
		lo := int(idx)
		if lo >= len(s)-1 {
			return s[len(s)-1]
		}
		frac := idx - float64(lo)
		return s[lo] + time.Duration(frac*float64(s[lo+1]-s[lo]))
	}
	return boxStats{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

func percent(part, whole int64) string {
	if whole == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}
