package harness

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// FormatDuration renders durations the way the paper's tables do: seconds
// below a minute ("32s", "2.4s"), minutes below an hour ("19.3m"), hours
// beyond ("1.1h").
func FormatDuration(d time.Duration) string {
	switch {
	case d <= 0:
		return "0s"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2gms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%.3gms", float64(d)/float64(time.Millisecond))
	case d < time.Minute:
		return fmt.Sprintf("%.3gs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%.3gm", d.Minutes())
	default:
		return fmt.Sprintf("%.3gh", d.Hours())
	}
}

// cell renders one result cell: a duration, the paper's dash for timeouts,
// or a load failure.
func (r SessionResult) cell() string {
	switch {
	case r.ImportErr != nil:
		return "load failed"
	case r.Err != nil:
		return "error"
	case r.TimedOut:
		return "-"
	default:
		return FormatDuration(r.Total)
	}
}

// table renders rows with tab alignment.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	fmt.Fprintln(w, strings.Repeat("-", 4+8*len(header)))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	return sb.String()
}

// boxStats summarises a sample: min, first quartile, median, third
// quartile, max (the Fig. 6 box plot numbers).
type boxStats struct {
	Min, Q1, Median, Q3, Max time.Duration
}

func box(samples []time.Duration) boxStats {
	if len(samples) == 0 {
		return boxStats{}
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(f float64) time.Duration {
		idx := f * float64(len(s)-1)
		lo := int(idx)
		if lo >= len(s)-1 {
			return s[len(s)-1]
		}
		frac := idx - float64(lo)
		return s[lo] + time.Duration(frac*float64(s[lo+1]-s[lo]))
	}
	return boxStats{Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1]}
}

func percent(part, whole int64) string {
	if whole == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}
