// Package shard stores a parsed dataset as fixed-size columnar shards with
// per-shard zone maps: a path-existence index, min/max summaries per numeric
// leaf path, length bounds for arrays and objects, seen-value bits for
// booleans, and a small sorted dictionary of the distinct strings at each
// path. Zone maps are built once at dataset-load time; at query time a
// compiled predicate (internal/query) consults them through the query.Zone
// interface and skips whole shards it proves empty — the generalisation of
// JODA's "touch only what the query needs" idea to all engine sims.
//
// The soundness contract mirrors query.Zone's: a zone map may over-claim
// (record paths, kinds or values no document actually has — for example two
// members with the same key both widen one entry, and the "" member of the
// root shares the root's "/" entry, exactly matching how jsonval.Path
// addresses collapse), but it must never under-claim. Every path that
// jsonval.Path.Lookup can resolve in any document of the shard either has a
// summary entry or the zone reports Complete() == false, which happens when
// the per-shard path or depth caps overflow.
package shard

import (
	"math"
	"sort"

	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// DefaultSize is the shard length engines use when the caller does not pick
// one: big enough that per-shard overheads (one indirect call, one zone
// probe) vanish against the per-document work, small enough that skipping a
// shard skips a meaningful slice of a selective scan.
const DefaultSize = 256

const (
	// maxPaths caps the distinct paths one zone map indexes; past it the
	// zone turns incomplete (absent-path pruning off, entry-based pruning
	// still on). Real datasets sit far below this — the cap only guards
	// against pathological documents inflating load time.
	maxPaths = 4096
	// maxDepth caps the object depth the builder walks; deeper subtrees
	// also turn the zone incomplete.
	maxDepth = 16
	// maxDict caps the distinct strings tracked per path before the
	// dictionary overflows (string pruning off for that path, kind and
	// range pruning still on).
	maxDict = 16
)

// Shard is one fixed-size slice of a dataset. Docs aliases the store's
// backing slice; Start is the offset of Docs[0] in the original document
// order. Zone is nil for view stores (see View) — a nil zone never prunes.
type Shard struct {
	Start int
	Docs  []jsonval.Value
	Zone  *ZoneMap
}

// Store is a dataset cut into shards. The document slice itself is shared,
// not copied: a store is an index over the data, not a second copy of it.
type Store struct {
	docs   []jsonval.Value
	shards []Shard
}

// Build cuts docs into size-length shards (the last one shorter when the
// dataset is not a multiple) and builds one zone map per shard. size <= 0
// selects DefaultSize. The docs slice must not be mutated afterwards.
func Build(docs []jsonval.Value, size int) *Store {
	return build(docs, size, true)
}

// View cuts docs into shards without building zone maps: every shard gets a
// nil Zone and is never skipped. Derived datasets (cached query results)
// use views so batch kernels still apply without paying zone construction
// for data that is scanned at most a handful of times.
func View(docs []jsonval.Value, size int) *Store {
	return build(docs, size, false)
}

func build(docs []jsonval.Value, size int, zones bool) *Store {
	if size <= 0 {
		size = DefaultSize
	}
	s := &Store{docs: docs}
	if n := len(docs); n > 0 {
		s.shards = make([]Shard, 0, (n+size-1)/size)
	}
	var b *ZoneBuilder
	if zones {
		b = NewZoneBuilder()
	}
	for start := 0; start < len(docs); start += size {
		end := start + size
		if end > len(docs) {
			end = len(docs)
		}
		sh := Shard{Start: start, Docs: docs[start:end]}
		if zones {
			for i := start; i < end; i++ {
				b.Add(docs[i])
			}
			sh.Zone = b.Finish()
		}
		s.shards = append(s.shards, sh)
	}
	return s
}

// Docs returns the full document slice in original order.
func (s *Store) Docs() []jsonval.Value { return s.docs }

// Len returns the document count.
func (s *Store) Len() int { return len(s.docs) }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Shard returns shard i.
func (s *Store) Shard(i int) Shard { return s.shards[i] }

// pathStat accumulates everything observed at one path across one shard.
type pathStat struct {
	kinds                query.KindMask
	numMin, numMax       float64
	arrMin, arrMax       int
	objMin, objMax       int
	trueSeen, falseSeen  bool
	dict                 []string
	dictOverflow, sorted bool
}

func newPathStat() pathStat {
	return pathStat{
		numMin: math.Inf(1), numMax: math.Inf(-1),
		arrMin: math.MaxInt, arrMax: -1,
		objMin: math.MaxInt, objMax: -1,
	}
}

// ZoneMap is one shard's summary, implementing query.Zone. All methods are
// nil-receiver safe: a nil zone indexes nothing and is never complete, so
// it never prunes — the behaviour view shards rely on.
type ZoneMap struct {
	idx        map[string]int32
	stats      []pathStat
	incomplete bool
}

// Summary implements query.Zone.
func (z *ZoneMap) Summary(path string) (query.PathSummary, bool) {
	if z == nil {
		return query.PathSummary{}, false
	}
	i, ok := z.idx[path]
	if !ok {
		return query.PathSummary{}, false
	}
	st := &z.stats[i]
	return query.PathSummary{
		Kinds:  st.kinds,
		NumMin: st.numMin, NumMax: st.numMax,
		ArrMin: st.arrMin, ArrMax: st.arrMax,
		ObjMin: st.objMin, ObjMax: st.objMax,
		TrueSeen: st.trueSeen, FalseSeen: st.falseSeen,
		Dict:         st.dict,
		DictComplete: !st.dictOverflow,
	}, true
}

// Complete implements query.Zone.
func (z *ZoneMap) Complete() bool { return z != nil && !z.incomplete }

// Paths returns the number of indexed paths (tests and perf reporting).
func (z *ZoneMap) Paths() int {
	if z == nil {
		return 0
	}
	return len(z.stats)
}

// ZoneBuilder accumulates documents into a zone map. One builder is reused
// across the shards of a dataset: Finish seals the current map and resets
// the builder for the next shard. Engines that buffer documents into their
// own storage blocks (mongosim, pgsim) feed the builder document-by-document
// as they go, so zone construction rides along with the import pass.
type ZoneBuilder struct {
	z   *ZoneMap
	buf []byte // current path key, "/" for the root
}

// NewZoneBuilder returns an empty builder.
func NewZoneBuilder() *ZoneBuilder {
	return &ZoneBuilder{z: emptyZone()}
}

func emptyZone() *ZoneMap {
	return &ZoneMap{idx: make(map[string]int32)}
}

// Add folds one document into the zone map under construction.
func (b *ZoneBuilder) Add(doc jsonval.Value) {
	b.buf = append(b.buf[:0], '/')
	b.walk(doc, 0, true)
}

// Finish seals and returns the accumulated zone map (sorting each path's
// string dictionary for the binary searches pruning runs) and resets the
// builder for the next shard. Finishing an empty builder yields a valid,
// complete zone map that indexes nothing — correct for an empty shard.
func (b *ZoneBuilder) Finish() *ZoneMap {
	z := b.z
	for i := range z.stats {
		st := &z.stats[i]
		if !st.sorted && len(st.dict) > 1 {
			sort.Strings(st.dict)
		}
		st.sorted = true
	}
	b.z = emptyZone()
	return z
}

// walk records v under the current path key in b.buf, then recurses into
// object members. Arrays are summarised (kind + length) but not descended:
// jsonval.Path cannot address array elements, so no predicate can reach
// them. root distinguishes the "/" key, whose child keys drop the lone
// slash ("/a", not "//a") to match jsonval.Path rendering.
func (b *ZoneBuilder) walk(v jsonval.Value, depth int, root bool) {
	st := b.record(v)
	if v.Kind() != jsonval.Object {
		return
	}
	members := v.Members()
	if depth >= maxDepth {
		if len(members) > 0 && st != nil {
			b.z.incomplete = true
		}
		return
	}
	prefix := len(b.buf)
	if root {
		prefix = 0
	}
	for i := range members {
		b.buf = append(b.buf[:prefix], '/')
		b.buf = append(b.buf, members[i].Key...)
		b.walk(members[i].Value, depth+1, false)
	}
	b.buf = b.buf[:prefix]
}

// record widens the stat entry for the current path key with v, creating
// the entry unless the path cap is hit (which marks the zone incomplete and
// returns nil).
func (b *ZoneBuilder) record(v jsonval.Value) *pathStat {
	z := b.z
	i, ok := z.idx[string(b.buf)]
	if !ok {
		if len(z.stats) >= maxPaths {
			z.incomplete = true
			return nil
		}
		i = int32(len(z.stats))
		z.stats = append(z.stats, newPathStat())
		z.idx[string(b.buf)] = i
	}
	st := &z.stats[i]
	st.kinds |= query.MaskOf(v.Kind())
	switch v.Kind() {
	case jsonval.Int, jsonval.Float:
		n, _ := v.Number()
		if n < st.numMin {
			st.numMin = n
		}
		if n > st.numMax {
			st.numMax = n
		}
	case jsonval.Bool:
		if v.Bool() {
			st.trueSeen = true
		} else {
			st.falseSeen = true
		}
	case jsonval.String:
		st.addString(v.Str())
	case jsonval.Array:
		n := v.Len()
		if n < st.arrMin {
			st.arrMin = n
		}
		if n > st.arrMax {
			st.arrMax = n
		}
	case jsonval.Object:
		n := v.Len()
		if n < st.objMin {
			st.objMin = n
		}
		if n > st.objMax {
			st.objMax = n
		}
	}
	return st
}

// addString inserts s into the path's dictionary unless it overflowed. The
// dictionary is kept as an unsorted unique list during the build (it holds
// at most maxDict entries, so the linear membership test is a handful of
// compares) and sorted once in Finish.
func (st *pathStat) addString(s string) {
	if st.dictOverflow {
		return
	}
	for _, d := range st.dict {
		if d == s {
			return
		}
	}
	if len(st.dict) >= maxDict {
		st.dict, st.dictOverflow = nil, true
		return
	}
	st.dict = append(st.dict, s)
}
