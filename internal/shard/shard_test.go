package shard

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// --- generators (mirroring internal/engine's differential fuzz) ---------

var fuzzPaths = []jsonval.Path{"/a", "/b", "/c", "/nest/x", "/nest/y", "/arr", "/obj", "/missing", ""}

func fuzzString(r *rand.Rand) string {
	base := []string{"alpha", "beta", "gamma", "um läut", "x", ""}
	return base[r.Intn(len(base))]
}

func fuzzValue(r *rand.Rand, depth int) jsonval.Value {
	max := 7
	if depth <= 0 {
		max = 5
	}
	switch r.Intn(max) {
	case 0:
		return jsonval.NullValue()
	case 1:
		return jsonval.BoolValue(r.Intn(2) == 0)
	case 2:
		return jsonval.IntValue(int64(r.Intn(20) - 10))
	case 3:
		return jsonval.FloatValue(float64(r.Intn(200)-100) / 2)
	case 4:
		return jsonval.StringValue(fuzzString(r))
	case 5:
		n := r.Intn(5)
		elems := make([]jsonval.Value, n)
		for i := range elems {
			elems[i] = fuzzValue(r, depth-1)
		}
		return jsonval.ArrayValue(elems...)
	default:
		n := r.Intn(4)
		members := make([]jsonval.Member, 0, n)
		for i := 0; i < n; i++ {
			// No dedup: duplicate keys exercise the first-match-wins
			// Lookup semantics against the zone's widened entries.
			k := string(rune('p' + r.Intn(4)))
			members = append(members, jsonval.Member{Key: k, Value: fuzzValue(r, depth-1)})
		}
		return jsonval.ObjectValue(members...)
	}
}

func fuzzDoc(r *rand.Rand) jsonval.Value {
	var members []jsonval.Member
	for _, key := range []string{"a", "b", "c", ""} {
		if r.Intn(4) > 0 {
			members = append(members, jsonval.Member{Key: key, Value: fuzzValue(r, 1)})
		}
	}
	if r.Intn(2) == 0 {
		members = append(members, jsonval.Member{Key: "nest", Value: jsonval.ObjectValue(
			jsonval.Member{Key: "x", Value: fuzzValue(r, 1)},
			jsonval.Member{Key: "y", Value: fuzzValue(r, 1)},
		)})
	}
	if r.Intn(2) == 0 {
		n := r.Intn(5)
		elems := make([]jsonval.Value, n)
		for i := range elems {
			elems[i] = fuzzValue(r, 0)
		}
		members = append(members, jsonval.Member{Key: "arr", Value: jsonval.ArrayValue(elems...)})
	}
	if r.Intn(2) == 0 {
		members = append(members, jsonval.Member{Key: "obj", Value: fuzzValue(r, 1)})
	}
	return jsonval.ObjectValue(members...)
}

func fuzzPredicate(r *rand.Rand, depth int) query.Predicate {
	if depth > 0 && r.Intn(3) == 0 {
		l, rr := fuzzPredicate(r, depth-1), fuzzPredicate(r, depth-1)
		if r.Intn(2) == 0 {
			return query.And{Left: l, Right: rr}
		}
		return query.Or{Left: l, Right: rr}
	}
	p := fuzzPaths[r.Intn(len(fuzzPaths))]
	ops := []query.CmpOp{query.Lt, query.Le, query.Gt, query.Ge, query.Eq}
	switch r.Intn(9) {
	case 0:
		return query.Exists{Path: p}
	case 1:
		return query.IsString{Path: p}
	case 2:
		return query.IntEq{Path: p, Value: int64(r.Intn(20) - 10)}
	case 3:
		return query.FloatCmp{Path: p, Op: ops[r.Intn(len(ops))], Value: float64(r.Intn(200)-100) / 4}
	case 4:
		return query.StrEq{Path: p, Value: fuzzString(r)}
	case 5:
		s := fuzzString(r)
		n := r.Intn(3)
		if n > len(s) {
			n = len(s)
		}
		return query.HasPrefix{Path: p, Prefix: s[:n]}
	case 6:
		return query.BoolEq{Path: p, Value: r.Intn(2) == 0}
	case 7:
		return query.ArrSize{Path: p, Op: ops[r.Intn(len(ops))], Value: r.Intn(5)}
	default:
		return query.ObjSize{Path: p, Op: ops[r.Intn(len(ops))], Value: r.Intn(5)}
	}
}

// --- chunking ------------------------------------------------------------

func TestBuildChunking(t *testing.T) {
	docs := make([]jsonval.Value, 10)
	for i := range docs {
		docs[i] = jsonval.ObjectValue(jsonval.Member{Key: "i", Value: jsonval.IntValue(int64(i))})
	}
	cases := []struct {
		size string
		n    int
		want []int // shard lengths
	}{
		{"one", 1, []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{"bigger-than-dataset", 64, []int{10}},
		{"non-multiple", 4, []int{4, 4, 2}},
		{"exact-multiple", 5, []int{5, 5}},
		{"default", 0, []int{10}},
	}
	for _, tc := range cases {
		s := Build(docs, tc.n)
		if s.Len() != len(docs) || len(s.Docs()) != len(docs) {
			t.Fatalf("%s: Len = %d, want %d", tc.size, s.Len(), len(docs))
		}
		if s.NumShards() != len(tc.want) {
			t.Fatalf("%s: %d shards, want %d", tc.size, s.NumShards(), len(tc.want))
		}
		start := 0
		for i, wantLen := range tc.want {
			sh := s.Shard(i)
			if sh.Start != start || len(sh.Docs) != wantLen {
				t.Fatalf("%s: shard %d start=%d len=%d, want start=%d len=%d",
					tc.size, i, sh.Start, len(sh.Docs), start, wantLen)
			}
			if sh.Zone == nil || !sh.Zone.Complete() {
				t.Fatalf("%s: shard %d has no complete zone map", tc.size, i)
			}
			for j := range sh.Docs {
				if !sh.Docs[j].Equal(docs[start+j]) {
					t.Fatalf("%s: shard %d doc %d differs from source", tc.size, i, j)
				}
			}
			start += wantLen
		}
	}
}

func TestViewHasNoZones(t *testing.T) {
	docs := []jsonval.Value{jsonval.IntValue(1), jsonval.IntValue(2), jsonval.IntValue(3)}
	v := View(docs, 2)
	if v.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", v.NumShards())
	}
	for i := 0; i < v.NumShards(); i++ {
		if v.Shard(i).Zone != nil {
			t.Fatalf("view shard %d has a zone map", i)
		}
	}
	// A nil zone never prunes and is never complete.
	var z *ZoneMap
	if z.Complete() {
		t.Error("nil zone reports complete")
	}
	if _, ok := z.Summary("/a"); ok {
		t.Error("nil zone returned a summary")
	}
	if query.Compile(query.Exists{Path: "/missing"}).CanSkip(v.Shard(0).Zone) {
		t.Error("predicate skipped a view (zoneless) shard")
	}
}

func TestBuildEmptyDataset(t *testing.T) {
	s := Build(nil, 8)
	if s.Len() != 0 || s.NumShards() != 0 {
		t.Fatalf("empty Build: Len=%d NumShards=%d", s.Len(), s.NumShards())
	}
}

// --- zone-map construction properties ------------------------------------

// refPaths enumerates every Lookup-resolvable path of doc exactly as
// jsonval.Path resolves it (objects only, first member wins on duplicate
// keys), invoking visit with the zone-map key and the value.
func refPaths(doc jsonval.Value, visit func(key string, v jsonval.Value)) {
	var walk func(key string, v jsonval.Value, root bool)
	walk = func(key string, v jsonval.Value, root bool) {
		visit(key, v)
		if v.Kind() != jsonval.Object {
			return
		}
		members := v.Members()
		seen := map[string]bool{}
		for i := range members {
			if seen[members[i].Key] {
				continue
			}
			seen[members[i].Key] = true
			child := key + "/" + members[i].Key
			if root {
				child = "/" + members[i].Key
			}
			walk(child, members[i].Value, false)
		}
	}
	walk("/", doc, true)
}

// TestZoneMapInvariantsFuzz is the per-document property test: for every
// generated shard, every resolvable path of every document it contains must
// be covered by the zone map — path indexed, kind bit set, numerics inside
// min/max, strings in a complete dictionary, booleans' seen bits set, and
// array/object lengths inside their bounds.
func TestZoneMapInvariantsFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for round := 0; round < 40; round++ {
		docs := make([]jsonval.Value, 30+r.Intn(100))
		for i := range docs {
			docs[i] = fuzzDoc(r)
		}
		size := []int{1, 3, 7, 16, 1000}[r.Intn(5)]
		s := Build(docs, size)
		for si := 0; si < s.NumShards(); si++ {
			sh := s.Shard(si)
			for di, doc := range sh.Docs {
				refPaths(doc, func(key string, v jsonval.Value) {
					sum, ok := sh.Zone.Summary(key)
					if !ok {
						if sh.Zone.Complete() {
							t.Fatalf("round %d shard %d doc %d: path %q resolvable but unindexed in a complete zone", round, si, di, key)
						}
						return
					}
					if !sum.Kinds.Has(v.Kind()) {
						t.Fatalf("round %d shard %d doc %d: path %q kind %v not in bitmap", round, si, di, key, v.Kind())
					}
					switch v.Kind() {
					case jsonval.Int, jsonval.Float:
						n, _ := v.Number()
						if n < sum.NumMin || n > sum.NumMax {
							t.Fatalf("path %q: value %v outside [%v, %v]", key, n, sum.NumMin, sum.NumMax)
						}
					case jsonval.String:
						if sum.DictComplete {
							found := false
							for _, d := range sum.Dict {
								if d == v.Str() {
									found = true
									break
								}
							}
							if !found {
								t.Fatalf("path %q: string %q missing from complete dictionary %v", key, v.Str(), sum.Dict)
							}
						}
					case jsonval.Bool:
						if v.Bool() && !sum.TrueSeen || !v.Bool() && !sum.FalseSeen {
							t.Fatalf("path %q: bool %v not recorded", key, v.Bool())
						}
					case jsonval.Array:
						if v.Len() < sum.ArrMin || v.Len() > sum.ArrMax {
							t.Fatalf("path %q: array len %d outside [%d, %d]", key, v.Len(), sum.ArrMin, sum.ArrMax)
						}
					case jsonval.Object:
						if v.Len() < sum.ObjMin || v.Len() > sum.ObjMax {
							t.Fatalf("path %q: object len %d outside [%d, %d]", key, v.Len(), sum.ObjMin, sum.ObjMax)
						}
					}
				})
			}
		}
	}
}

func TestZoneDictionarySortedAndDeduplicated(t *testing.T) {
	b := NewZoneBuilder()
	for _, s := range []string{"cc", "aa", "bb", "aa", "cc"} {
		b.Add(jsonval.ObjectValue(jsonval.Member{Key: "s", Value: jsonval.StringValue(s)}))
	}
	z := b.Finish()
	sum, ok := z.Summary("/s")
	if !ok || !sum.DictComplete {
		t.Fatalf("no complete dictionary for /s: ok=%v complete=%v", ok, sum.DictComplete)
	}
	if got, want := fmt.Sprint(sum.Dict), fmt.Sprint([]string{"aa", "bb", "cc"}); got != want {
		t.Fatalf("Dict = %v, want %v", got, want)
	}
}

func TestZoneDictionaryOverflow(t *testing.T) {
	b := NewZoneBuilder()
	for i := 0; i <= maxDict; i++ {
		b.Add(jsonval.ObjectValue(jsonval.Member{Key: "s", Value: jsonval.StringValue(fmt.Sprintf("v%03d", i))}))
	}
	z := b.Finish()
	sum, ok := z.Summary("/s")
	if !ok {
		t.Fatal("/s unindexed")
	}
	if sum.DictComplete {
		t.Fatalf("dictionary with %d distinct strings still complete", maxDict+1)
	}
	// An overflowed dictionary must not unlock string pruning, but the zone
	// itself stays complete (path coverage is unaffected).
	if !z.Complete() {
		t.Error("dictionary overflow marked the whole zone incomplete")
	}
	if query.Compile(query.StrEq{Path: "/s", Value: "not-there"}).CanSkip(z) {
		t.Error("string equality pruned through an overflowed dictionary")
	}
}

func TestZoneDepthCapMarksIncomplete(t *testing.T) {
	deep := jsonval.StringValue("leaf")
	for i := 0; i < maxDepth+2; i++ {
		deep = jsonval.ObjectValue(jsonval.Member{Key: "d", Value: deep})
	}
	b := NewZoneBuilder()
	b.Add(deep)
	z := b.Finish()
	if z.Complete() {
		t.Fatal("zone over a too-deep document reports complete")
	}
	// The un-indexed deep path must not prune via the absent-path proof.
	path := jsonval.Path("/" + strings.Repeat("d/", maxDepth+1) + "d")
	if query.Compile(query.Exists{Path: path}).CanSkip(z) {
		t.Error("EXISTS pruned through an incomplete zone")
	}
}

func TestZonePathCapMarksIncomplete(t *testing.T) {
	b := NewZoneBuilder()
	members := make([]jsonval.Member, maxPaths+8)
	for i := range members {
		members[i] = jsonval.Member{Key: fmt.Sprintf("k%05d", i), Value: jsonval.IntValue(int64(i))}
	}
	b.Add(jsonval.ObjectValue(members...))
	z := b.Finish()
	if z.Complete() {
		t.Fatalf("zone with %d paths reports complete", len(members)+1)
	}
}

// --- prune differential --------------------------------------------------

// TestPruneDifferentialFuzz is the in-package half of the prune-correctness
// battery: across random datasets, shard sizes and predicate trees, a
// shard-pruned scan (CanSkip + EvalBlock over surviving shards) must keep
// exactly the documents a full per-document interpreted scan keeps. It also
// checks the prune proof directly: a skipped shard must contain no matching
// document.
func TestPruneDifferentialFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	var skips, scans int
	for round := 0; round < 150; round++ {
		docs := make([]jsonval.Value, 20+r.Intn(120))
		for i := range docs {
			docs[i] = fuzzDoc(r)
		}
		size := []int{1, 5, 16, 64, 1000}[r.Intn(5)]
		s := Build(docs, size)
		for q := 0; q < 6; q++ {
			p := fuzzPredicate(r, 2)
			c := query.Compile(p)
			ev := c.Evaluator()
			keep := make([]bool, size)
			var pruned []int
			for si := 0; si < s.NumShards(); si++ {
				sh := s.Shard(si)
				if c.CanSkip(sh.Zone) {
					skips++
					for di, d := range sh.Docs {
						if p.Eval(d) {
							t.Fatalf("round %d: pruned shard %d holds matching doc %d for %s", round, si, sh.Start+di, p)
						}
					}
					continue
				}
				scans++
				kb := keep[:len(sh.Docs)]
				ev.EvalBlock(sh.Docs, kb)
				for di := range sh.Docs {
					if kb[di] {
						pruned = append(pruned, sh.Start+di)
					}
				}
			}
			var full []int
			for i, d := range docs {
				if p.Eval(d) {
					full = append(full, i)
				}
			}
			if fmt.Sprint(pruned) != fmt.Sprint(full) {
				t.Fatalf("round %d: pruned scan kept %v, full scan kept %v for %s", round, pruned, full, p)
			}
		}
	}
	if skips == 0 {
		t.Fatal("prune differential never skipped a shard — the test is vacuous")
	}
	if scans == 0 {
		t.Fatal("prune differential never scanned a shard")
	}
}

// BenchmarkZoneBuild prices what zone construction adds to a dataset load:
// one full walk and summary fold per document.
func BenchmarkZoneBuild(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	docs := make([]jsonval.Value, 2048)
	for i := range docs {
		docs[i] = fuzzDoc(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(docs, DefaultSize)
	}
}

// BenchmarkCanSkip prices the per-shard prune decision a scan pays before
// touching any document.
func BenchmarkCanSkip(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	docs := make([]jsonval.Value, 2048)
	for i := range docs {
		docs[i] = fuzzDoc(r)
	}
	st := Build(docs, DefaultSize)
	compiled := query.Compile(query.And{
		Left:  query.FloatCmp{Path: "/a", Op: query.Ge, Value: 1000},
		Right: query.Exists{Path: "/nest/x"},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < st.NumShards(); s++ {
			compiled.CanSkip(st.Shard(s).Zone)
		}
	}
}
