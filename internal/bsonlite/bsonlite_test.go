package bsonlite

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
)

func doc(t *testing.T, s string) jsonval.Value {
	t.Helper()
	v, err := jsonval.Parse([]byte(s))
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return v
}

// strictEqual mirrors jsonval round-trip equality including kinds and order.
func strictEqual(a, b jsonval.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case jsonval.Null:
		return true
	case jsonval.Bool:
		return a.Bool() == b.Bool()
	case jsonval.Int:
		return a.Int() == b.Int()
	case jsonval.Float:
		return a.Float() == b.Float() || (math.IsNaN(a.Float()) && math.IsNaN(b.Float()))
	case jsonval.String:
		return a.Str() == b.Str()
	case jsonval.Array:
		if a.Len() != b.Len() {
			return false
		}
		for i := range a.Array() {
			if !strictEqual(a.Array()[i], b.Array()[i]) {
				return false
			}
		}
		return true
	case jsonval.Object:
		am, bm := a.Members(), b.Members()
		if len(am) != len(bm) {
			return false
		}
		for i := range am {
			if am[i].Key != bm[i].Key || !strictEqual(am[i].Value, bm[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}

var roundTripDocs = []string{
	`{}`,
	`{"a":1}`,
	`{"a":null,"b":true,"c":false}`,
	`{"n":-9223372036854775808,"m":9223372036854775807}`,
	`{"f":2.5,"g":-0.125,"h":1e300}`,
	`{"s":"","t":"hello","u":"üñï😀"}`,
	`{"arr":[1,"two",3.0,null,true,[4],{"five":5}]}`,
	`{"deep":{"a":{"b":{"c":{"d":[1,2,3]}}}}}`,
	`{"order":"kept","zzz":1,"aaa":2}`,
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, s := range roundTripDocs {
		v := doc(t, s)
		data := Encode(nil, v)
		back, err := Decode(data)
		if err != nil {
			t.Errorf("Decode(%s): %v", s, err)
			continue
		}
		if !strictEqual(v, back) {
			t.Errorf("round trip of %s gave %s", s, back)
		}
	}
}

func TestEncodeNonObjectRoot(t *testing.T) {
	for _, s := range []string{`[1,2]`, `"str"`, `5`, `true`, `null`} {
		v := doc(t, s)
		back, err := Decode(Encode(nil, v))
		if err != nil {
			t.Fatalf("Decode(%s): %v", s, err)
		}
		if !strictEqual(v, back) {
			t.Errorf("round trip of %s gave %s (%v)", s, back, back.Kind())
		}
	}
}

func TestLookup(t *testing.T) {
	data := Encode(nil, doc(t, `{"user":{"name":"alice","id":7,"score":2.5,"ok":true,"tags":["a","b"],"nil":null},"top":1}`))
	cases := []struct {
		path string
		kind jsonval.Kind
	}{
		{"/user", jsonval.Object},
		{"/user/name", jsonval.String},
		{"/user/id", jsonval.Int},
		{"/user/score", jsonval.Float},
		{"/user/ok", jsonval.Bool},
		{"/user/tags", jsonval.Array},
		{"/user/nil", jsonval.Null},
		{"/top", jsonval.Int},
	}
	for _, c := range cases {
		raw, ok, err := Lookup(data, jsonval.ParsePath(c.path))
		if err != nil || !ok {
			t.Errorf("Lookup(%s) = %v, %v", c.path, ok, err)
			continue
		}
		if raw.Kind() != c.kind {
			t.Errorf("Lookup(%s) kind = %v, want %v", c.path, raw.Kind(), c.kind)
		}
	}
	for _, missing := range []string{"/nope", "/user/nope", "/top/deeper", "/user/name/deeper"} {
		if _, ok, err := Lookup(data, jsonval.ParsePath(missing)); ok || err != nil {
			t.Errorf("Lookup(%s) = %v, %v; want not found", missing, ok, err)
		}
	}
}

func TestRawAccessors(t *testing.T) {
	data := Encode(nil, doc(t, `{"i":42,"f":1.5,"s":"txt","b":true,"o":{"x":1,"y":2},"a":[1,2,3]}`))
	get := func(p string) Raw {
		raw, ok, err := Lookup(data, jsonval.ParsePath(p))
		if !ok || err != nil {
			t.Fatalf("Lookup(%s): %v %v", p, ok, err)
		}
		return raw
	}
	if n, ok := get("/i").Number(); !ok || n != 42 {
		t.Errorf("int Number = %g, %v", n, ok)
	}
	if n, ok := get("/f").Number(); !ok || n != 1.5 {
		t.Errorf("float Number = %g, %v", n, ok)
	}
	if s, ok := get("/s").Str(); !ok || s != "txt" {
		t.Errorf("Str = %q, %v", s, ok)
	}
	if b, ok := get("/b").Bool(); !ok || !b {
		t.Errorf("Bool = %v, %v", b, ok)
	}
	if l, ok := get("/o").Len(); !ok || l != 2 {
		t.Errorf("object Len = %d, %v", l, ok)
	}
	if l, ok := get("/a").Len(); !ok || l != 3 {
		t.Errorf("array Len = %d, %v", l, ok)
	}
	if _, ok := get("/s").Number(); ok {
		t.Errorf("string produced a Number")
	}
	if v, err := get("/o").Value(); err != nil || v.Len() != 2 {
		t.Errorf("Value() = %s, %v", v, err)
	}
}

func TestArrayEncodedWithIndexKeys(t *testing.T) {
	// Arrays materialise as arrays, not index-keyed objects.
	back, err := Decode(Encode(nil, doc(t, `{"a":[10,20]}`)))
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := back.Field("a")
	if arr.Kind() != jsonval.Array {
		t.Fatalf("array decoded as %v", arr.Kind())
	}
	if e, _ := arr.Index(1); e.Int() != 20 {
		t.Errorf("a[1] = %s", e)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	valid := Encode(nil, doc(t, `{"a":1,"s":"xy"}`))
	cases := [][]byte{
		nil,
		{1, 2, 3},
		valid[:len(valid)-2],           // truncated
		append([]byte{}, valid[4:]...), // header stripped
		func() []byte { // length field lies
			c := append([]byte{}, valid...)
			c[0] = byte(len(c) + 50)
			return c
		}(),
		func() []byte { // unknown tag
			c := append([]byte{}, valid...)
			c[4] = 0x7F
			return c
		}(),
	}
	for i, data := range cases {
		if v, err := Decode(data); err == nil {
			t.Errorf("case %d: corrupt input decoded to %s", i, v)
		}
	}
}

func TestLookupCorrupt(t *testing.T) {
	if _, _, err := Lookup([]byte{5, 0, 0, 0, 1}, jsonval.ParsePath("/a")); err == nil {
		t.Errorf("corrupt lookup did not error")
	}
}

func TestKeyWithNulByteReplaced(t *testing.T) {
	v := jsonval.ObjectValue(jsonval.Member{Key: "a\x00b", Value: jsonval.IntValue(1)})
	back, err := Decode(Encode(nil, v))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Members()) != 1 || strings.IndexByte(back.Members()[0].Key, 0) >= 0 {
		t.Errorf("NUL in key survived: %q", back.Members()[0].Key)
	}
}

func TestRoundTripRandomDocs(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		v := randomDoc(r, 3)
		back, err := Decode(Encode(nil, v))
		if err != nil {
			t.Fatalf("doc %d: %v (%s)", i, err, v)
		}
		if !strictEqual(v, back) {
			t.Fatalf("doc %d: %s != %s", i, v, back)
		}
	}
}

func randomDoc(r *rand.Rand, depth int) jsonval.Value {
	n := r.Intn(5)
	members := make([]jsonval.Member, 0, n)
	for i := 0; i < n; i++ {
		key := string(rune('a'+i)) + strings.Repeat("x", r.Intn(3))
		members = append(members, jsonval.Member{Key: key, Value: randomVal(r, depth)})
	}
	return jsonval.ObjectValue(members...)
}

func randomVal(r *rand.Rand, depth int) jsonval.Value {
	max := 7
	if depth <= 0 {
		max = 5
	}
	switch r.Intn(max) {
	case 0:
		return jsonval.NullValue()
	case 1:
		return jsonval.BoolValue(r.Intn(2) == 0)
	case 2:
		return jsonval.IntValue(r.Int63() - r.Int63())
	case 3:
		return jsonval.FloatValue(r.NormFloat64() * 1e6)
	case 4:
		return jsonval.StringValue(strings.Repeat("s", r.Intn(20)))
	case 5:
		n := r.Intn(4)
		elems := make([]jsonval.Value, n)
		for i := range elems {
			elems[i] = randomVal(r, depth-1)
		}
		return jsonval.ArrayValue(elems...)
	default:
		return randomDoc(r, depth-1)
	}
}
