// Package bsonlite implements a BSON-style binary document format: a
// length-prefixed sequence of type-tagged, name-prefixed elements, with
// arrays encoded as documents keyed "0", "1", …. It is the storage format of
// the MongoDB stand-in engine (internal/engine/mongosim).
//
// The format intentionally mirrors real BSON's access characteristics:
// a path lookup walks element headers and skips values by their encoded
// length without materialising the document, while full decoding builds the
// complete value tree.
package bsonlite

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"github.com/joda-explore/betze/internal/jsonval"
)

// Element type tags, matching BSON's where possible.
const (
	tagDouble = 0x01
	tagString = 0x02
	tagDoc    = 0x03
	tagArray  = 0x04
	tagBool   = 0x08
	tagNull   = 0x0A
	tagInt64  = 0x12
)

// CorruptError reports a structurally invalid document.
type CorruptError struct {
	Offset int
	Msg    string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("bsonlite: corrupt document at offset %d: %s", e.Offset, e.Msg)
}

// Encode appends the binary encoding of doc to dst. Any JSON value is
// encodable; non-object roots are wrapped as single-element documents with
// an empty key, like the MongoDB shell does.
func Encode(dst []byte, doc jsonval.Value) []byte {
	if doc.Kind() == jsonval.Object {
		return encodeDoc(dst, doc.Members())
	}
	return encodeDoc(dst, []jsonval.Member{{Key: "", Value: doc}})
}

func encodeDoc(dst []byte, members []jsonval.Member) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length placeholder
	for _, m := range members {
		dst = encodeElement(dst, m.Key, m.Value)
	}
	dst = append(dst, 0) // terminator
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start))
	return dst
}

func encodeArray(dst []byte, elems []jsonval.Value) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	for i, e := range elems {
		dst = encodeElement(dst, strconv.Itoa(i), e)
	}
	dst = append(dst, 0)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start))
	return dst
}

func encodeElement(dst []byte, key string, v jsonval.Value) []byte {
	switch v.Kind() {
	case jsonval.Null:
		dst = append(dst, tagNull)
		dst = appendCString(dst, key)
	case jsonval.Bool:
		dst = append(dst, tagBool)
		dst = appendCString(dst, key)
		if v.Bool() {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case jsonval.Int:
		dst = append(dst, tagInt64)
		dst = appendCString(dst, key)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Int()))
	case jsonval.Float:
		dst = append(dst, tagDouble)
		dst = appendCString(dst, key)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float()))
	case jsonval.String:
		dst = append(dst, tagString)
		dst = appendCString(dst, key)
		s := v.Str()
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)+1))
		dst = append(dst, s...)
		dst = append(dst, 0)
	case jsonval.Object:
		dst = append(dst, tagDoc)
		dst = appendCString(dst, key)
		dst = encodeDoc(dst, v.Members())
	case jsonval.Array:
		dst = append(dst, tagArray)
		dst = appendCString(dst, key)
		dst = encodeArray(dst, v.Array())
	}
	return dst
}

// appendCString appends a NUL-terminated key. Embedded NUL bytes in keys are
// not representable (as in real BSON) and are replaced.
func appendCString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			dst = append(dst, 0xEF, 0xBF, 0xBD) // U+FFFD
			continue
		}
		dst = append(dst, s[i])
	}
	return append(dst, 0)
}

// Decode materialises a full document.
func Decode(data []byte) (jsonval.Value, error) {
	v, n, err := decodeDoc(data, 0, false)
	if err != nil {
		return jsonval.Value{}, err
	}
	if n != len(data) {
		return jsonval.Value{}, &CorruptError{Offset: n, Msg: "trailing bytes"}
	}
	// Unwrap the single-element empty-key wrapper for non-object roots.
	if v.Kind() == jsonval.Object {
		if m := v.Members(); len(m) == 1 && m[0].Key == "" {
			return m[0].Value, nil
		}
	}
	return v, nil
}

func decodeDoc(data []byte, off int, asArray bool) (jsonval.Value, int, error) {
	if off+5 > len(data) {
		return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated document header"}
	}
	total := int(binary.LittleEndian.Uint32(data[off:]))
	end := off + total
	if total < 5 || end > len(data) {
		return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "document length out of bounds"}
	}
	var members []jsonval.Member
	var elems []jsonval.Value
	i := off + 4
	for {
		if i >= end {
			return jsonval.Value{}, 0, &CorruptError{Offset: i, Msg: "missing terminator"}
		}
		tag := data[i]
		if tag == 0 {
			if i != end-1 {
				return jsonval.Value{}, 0, &CorruptError{Offset: i, Msg: "terminator before document end"}
			}
			break
		}
		i++
		key, n, err := readCString(data, i)
		if err != nil {
			return jsonval.Value{}, 0, err
		}
		i += n
		v, n, err := decodeValue(data, i, tag)
		if err != nil {
			return jsonval.Value{}, 0, err
		}
		i = n
		if asArray {
			elems = append(elems, v)
		} else {
			members = append(members, jsonval.Member{Key: key, Value: v})
		}
	}
	if asArray {
		return jsonval.ArrayValue(elems...), end, nil
	}
	return jsonval.ObjectValue(members...), end, nil
}

// decodeValue decodes the value of an element whose tag and key were read;
// it returns the offset after the value.
func decodeValue(data []byte, off int, tag byte) (jsonval.Value, int, error) {
	switch tag {
	case tagNull:
		return jsonval.NullValue(), off, nil
	case tagBool:
		if off+1 > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated bool"}
		}
		return jsonval.BoolValue(data[off] != 0), off + 1, nil
	case tagInt64:
		if off+8 > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated int64"}
		}
		return jsonval.IntValue(int64(binary.LittleEndian.Uint64(data[off:]))), off + 8, nil
	case tagDouble:
		if off+8 > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated double"}
		}
		return jsonval.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))), off + 8, nil
	case tagString:
		if off+4 > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated string header"}
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 1 || off+n > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "string length out of bounds"}
		}
		return jsonval.StringValue(string(data[off : off+n-1])), off + n, nil
	case tagDoc:
		return decodeDoc(data, off, false)
	case tagArray:
		return decodeDoc(data, off, true)
	default:
		return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: fmt.Sprintf("unknown tag 0x%02x", tag)}
	}
}

func readCString(data []byte, off int) (string, int, error) {
	for i := off; i < len(data); i++ {
		if data[i] == 0 {
			return string(data[off:i]), i - off + 1, nil
		}
	}
	return "", 0, &CorruptError{Offset: off, Msg: "unterminated key"}
}

// skipValue returns the offset just past a value, without materialising it.
func skipValue(data []byte, off int, tag byte) (int, error) {
	switch tag {
	case tagNull:
		return off, nil
	case tagBool:
		return off + 1, nil
	case tagInt64, tagDouble:
		return off + 8, nil
	case tagString:
		if off+4 > len(data) {
			return 0, &CorruptError{Offset: off, Msg: "truncated string header"}
		}
		return off + 4 + int(binary.LittleEndian.Uint32(data[off:])), nil
	case tagDoc, tagArray:
		if off+4 > len(data) {
			return 0, &CorruptError{Offset: off, Msg: "truncated document header"}
		}
		return off + int(binary.LittleEndian.Uint32(data[off:])), nil
	default:
		return 0, &CorruptError{Offset: off, Msg: fmt.Sprintf("unknown tag 0x%02x", tag)}
	}
}

// Raw is an undecoded value inside a document: its tag and the byte range of
// its payload.
type Raw struct {
	Tag  byte
	data []byte
	off  int
}

// Lookup walks the document along path without materialising values,
// mirroring how MongoDB navigates BSON. It returns ok=false when any segment
// is missing or traverses a non-document.
func Lookup(doc []byte, path jsonval.Path) (Raw, bool, error) {
	segs := path.Segments()
	off := 0
	data := doc
	cur := Raw{Tag: tagDoc, data: doc, off: 0}
	if len(segs) == 0 {
		return cur, true, nil
	}
	for _, seg := range segs {
		if cur.Tag != tagDoc {
			return Raw{}, false, nil
		}
		found := false
		if off+5 > len(data) {
			return Raw{}, false, &CorruptError{Offset: off, Msg: "truncated document header"}
		}
		end := off + int(binary.LittleEndian.Uint32(data[off:]))
		if end > len(data) {
			return Raw{}, false, &CorruptError{Offset: off, Msg: "document length out of bounds"}
		}
		i := off + 4
		for i < end && data[i] != 0 {
			tag := data[i]
			i++
			key, n, err := readCString(data, i)
			if err != nil {
				return Raw{}, false, err
			}
			i += n
			if key == seg {
				cur = Raw{Tag: tag, data: data, off: i}
				off = i
				found = true
				break
			}
			i, err = skipValue(data, i, tag)
			if err != nil {
				return Raw{}, false, err
			}
		}
		if !found {
			return Raw{}, false, nil
		}
	}
	return cur, true, nil
}

// Kind maps the raw tag to the JSON kind.
func (r Raw) Kind() jsonval.Kind {
	switch r.Tag {
	case tagNull:
		return jsonval.Null
	case tagBool:
		return jsonval.Bool
	case tagInt64:
		return jsonval.Int
	case tagDouble:
		return jsonval.Float
	case tagString:
		return jsonval.String
	case tagDoc:
		return jsonval.Object
	case tagArray:
		return jsonval.Array
	default:
		return jsonval.Null
	}
}

// Number returns the numeric payload of an int64 or double value.
func (r Raw) Number() (float64, bool) {
	switch r.Tag {
	case tagInt64:
		if r.off+8 > len(r.data) {
			return 0, false
		}
		return float64(int64(binary.LittleEndian.Uint64(r.data[r.off:]))), true
	case tagDouble:
		if r.off+8 > len(r.data) {
			return 0, false
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:])), true
	default:
		return 0, false
	}
}

// Bool returns the boolean payload.
func (r Raw) Bool() (bool, bool) {
	if r.Tag != tagBool || r.off >= len(r.data) {
		return false, false
	}
	return r.data[r.off] != 0, true
}

// Str returns the string payload without copying.
func (r Raw) Str() (string, bool) {
	if r.Tag != tagString || r.off+4 > len(r.data) {
		return "", false
	}
	n := int(binary.LittleEndian.Uint32(r.data[r.off:]))
	start := r.off + 4
	if n < 1 || start+n > len(r.data) {
		return "", false
	}
	return string(r.data[start : start+n-1]), true
}

// Len counts the elements of a document or array value by walking headers.
func (r Raw) Len() (int, bool) {
	if r.Tag != tagDoc && r.Tag != tagArray {
		return 0, false
	}
	data, off := r.data, r.off
	if off+5 > len(data) {
		return 0, false
	}
	end := off + int(binary.LittleEndian.Uint32(data[off:]))
	if end > len(data) {
		return 0, false
	}
	i := off + 4
	count := 0
	for i < end && data[i] != 0 {
		tag := data[i]
		i++
		_, n, err := readCString(data, i)
		if err != nil {
			return 0, false
		}
		i += n
		i, err = skipValue(data, i, tag)
		if err != nil {
			return 0, false
		}
		count++
	}
	return count, true
}

// Value materialises the raw value.
func (r Raw) Value() (jsonval.Value, error) {
	v, _, err := decodeValue(r.data, r.off, r.Tag)
	return v, err
}
