// Package jsonblite implements a JSONB-style binary document format used by
// the PostgreSQL stand-in engine (internal/engine/pgsim): objects store
// their keys sorted with a fixed-size offset index (enabling binary search,
// like PostgreSQL's JEntry arrays), and strings reject embedded U+0000,
// exactly the restriction that makes real PostgreSQL refuse such documents
// ("unsupported Unicode escape sequence").
package jsonblite

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/joda-explore/betze/internal/jsonval"
)

// Value tags.
const (
	tagNull   = 0x00
	tagFalse  = 0x01
	tagTrue   = 0x02
	tagInt    = 0x03
	tagFloat  = 0x04
	tagString = 0x05
	tagArray  = 0x06
	tagObject = 0x07
)

// ErrNullByte reports a string containing U+0000, which the format (like
// PostgreSQL's jsonb) cannot store.
var ErrNullByte = fmt.Errorf("jsonblite: unsupported Unicode escape sequence: \\u0000 cannot be converted to text")

// CorruptError reports a structurally invalid document.
type CorruptError struct {
	Offset int
	Msg    string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("jsonblite: corrupt document at offset %d: %s", e.Offset, e.Msg)
}

// Encode appends the binary encoding of v to dst. It fails with ErrNullByte
// when any string contains U+0000.
func Encode(dst []byte, v jsonval.Value) ([]byte, error) {
	switch v.Kind() {
	case jsonval.Null:
		return append(dst, tagNull), nil
	case jsonval.Bool:
		if v.Bool() {
			return append(dst, tagTrue), nil
		}
		return append(dst, tagFalse), nil
	case jsonval.Int:
		dst = append(dst, tagInt)
		return binary.LittleEndian.AppendUint64(dst, uint64(v.Int())), nil
	case jsonval.Float:
		dst = append(dst, tagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float())), nil
	case jsonval.String:
		s := v.Str()
		if strings.IndexByte(s, 0) >= 0 {
			return nil, ErrNullByte
		}
		dst = append(dst, tagString)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
		return append(dst, s...), nil
	case jsonval.Array:
		elems := v.Array()
		dst = append(dst, tagArray)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(elems)))
		// Fixed-size offset index, then the encoded elements.
		idxStart := len(dst)
		dst = append(dst, make([]byte, 4*len(elems))...)
		bodyStart := len(dst)
		var err error
		for i, e := range elems {
			binary.LittleEndian.PutUint32(dst[idxStart+4*i:], uint32(len(dst)-bodyStart))
			dst, err = Encode(dst, e)
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	case jsonval.Object:
		members := append([]jsonval.Member(nil), v.Members()...)
		sort.SliceStable(members, func(i, j int) bool { return members[i].Key < members[j].Key })
		dst = append(dst, tagObject)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(members)))
		// Per-member index entry: key offset, key length, value offset.
		idxStart := len(dst)
		dst = append(dst, make([]byte, 12*len(members))...)
		keysStart := len(dst)
		for i, m := range members {
			if strings.IndexByte(m.Key, 0) >= 0 {
				return nil, ErrNullByte
			}
			binary.LittleEndian.PutUint32(dst[idxStart+12*i:], uint32(len(dst)-keysStart))
			binary.LittleEndian.PutUint32(dst[idxStart+12*i+4:], uint32(len(m.Key)))
			dst = append(dst, m.Key...)
		}
		valsStart := len(dst)
		var err error
		for i, m := range members {
			binary.LittleEndian.PutUint32(dst[idxStart+12*i+8:], uint32(len(dst)-valsStart))
			dst, err = Encode(dst, m.Value)
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		return append(dst, tagNull), nil
	}
}

// Decode materialises the whole document — the per-evaluation cost of the
// PostgreSQL stand-in, which (like detoasted JSONB) rebuilds the value tree.
func Decode(data []byte) (jsonval.Value, error) {
	v, n, err := decode(data, 0)
	if err != nil {
		return jsonval.Value{}, err
	}
	if n != len(data) {
		return jsonval.Value{}, &CorruptError{Offset: n, Msg: "trailing bytes"}
	}
	return v, nil
}

func decode(data []byte, off int) (jsonval.Value, int, error) {
	if off >= len(data) {
		return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated value"}
	}
	switch tag := data[off]; tag {
	case tagNull:
		return jsonval.NullValue(), off + 1, nil
	case tagFalse:
		return jsonval.BoolValue(false), off + 1, nil
	case tagTrue:
		return jsonval.BoolValue(true), off + 1, nil
	case tagInt:
		if off+9 > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated int"}
		}
		return jsonval.IntValue(int64(binary.LittleEndian.Uint64(data[off+1:]))), off + 9, nil
	case tagFloat:
		if off+9 > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated float"}
		}
		return jsonval.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(data[off+1:]))), off + 9, nil
	case tagString:
		if off+5 > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated string header"}
		}
		n := int(binary.LittleEndian.Uint32(data[off+1:]))
		start := off + 5
		if start+n > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "string out of bounds"}
		}
		return jsonval.StringValue(string(data[start : start+n])), start + n, nil
	case tagArray:
		if off+5 > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated array header"}
		}
		count := int(binary.LittleEndian.Uint32(data[off+1:]))
		pos := off + 5 + 4*count
		if pos > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "array index out of bounds"}
		}
		elems := make([]jsonval.Value, count)
		var err error
		for i := 0; i < count; i++ {
			elems[i], pos, err = decode(data, pos)
			if err != nil {
				return jsonval.Value{}, 0, err
			}
		}
		return jsonval.ArrayValue(elems...), pos, nil
	case tagObject:
		if off+5 > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "truncated object header"}
		}
		count := int(binary.LittleEndian.Uint32(data[off+1:]))
		idx := off + 5
		keysStart := idx + 12*count
		if keysStart > len(data) {
			return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: "object index out of bounds"}
		}
		members := make([]jsonval.Member, count)
		pos := keysStart
		// Keys first (they precede the values section).
		for i := 0; i < count; i++ {
			kOff := int(binary.LittleEndian.Uint32(data[idx+12*i:]))
			kLen := int(binary.LittleEndian.Uint32(data[idx+12*i+4:]))
			if keysStart+kOff+kLen > len(data) {
				return jsonval.Value{}, 0, &CorruptError{Offset: idx, Msg: "key out of bounds"}
			}
			members[i].Key = string(data[keysStart+kOff : keysStart+kOff+kLen])
			pos = keysStart + kOff + kLen
		}
		var err error
		for i := 0; i < count; i++ {
			members[i].Value, pos, err = decode(data, pos)
			if err != nil {
				return jsonval.Value{}, 0, err
			}
		}
		return jsonval.ObjectValue(members...), pos, nil
	default:
		return jsonval.Value{}, 0, &CorruptError{Offset: off, Msg: fmt.Sprintf("unknown tag 0x%02x", tag)}
	}
}

// LookupBinary resolves a path via binary search over the sorted key
// indexes, without materialising the document. pgsim uses full Decode for
// query evaluation (matching detoast behaviour); LookupBinary backs the
// lazy-access ablation benchmark.
func LookupBinary(data []byte, path jsonval.Path) (jsonval.Value, bool, error) {
	off := 0
	segs := path.Segments()
	for si, seg := range segs {
		if off >= len(data) || data[off] != tagObject {
			return jsonval.Value{}, false, nil
		}
		count := int(binary.LittleEndian.Uint32(data[off+1:]))
		if count == 0 {
			return jsonval.Value{}, false, nil
		}
		idx := off + 5
		keysStart := idx + 12*count
		key := func(i int) string {
			kOff := int(binary.LittleEndian.Uint32(data[idx+12*i:]))
			kLen := int(binary.LittleEndian.Uint32(data[idx+12*i+4:]))
			return string(data[keysStart+kOff : keysStart+kOff+kLen])
		}
		lo, hi := 0, count-1
		found := -1
		for lo <= hi {
			mid := (lo + hi) / 2
			switch k := key(mid); {
			case k == seg:
				found = mid
				lo = hi + 1
			case k < seg:
				lo = mid + 1
			default:
				hi = mid - 1
			}
		}
		if found < 0 {
			return jsonval.Value{}, false, nil
		}
		// Values start after the last key; compute the values section
		// start from the last key's end.
		lastOff := int(binary.LittleEndian.Uint32(data[idx+12*(count-1):]))
		lastLen := int(binary.LittleEndian.Uint32(data[idx+12*(count-1)+4:]))
		valsStart := keysStart + lastOff + lastLen
		vOff := int(binary.LittleEndian.Uint32(data[idx+12*found+8:]))
		off = valsStart + vOff
		if si == len(segs)-1 {
			v, _, err := decode(data, off)
			if err != nil {
				return jsonval.Value{}, false, err
			}
			return v, true, nil
		}
	}
	v, _, err := decode(data, off)
	if err != nil {
		return jsonval.Value{}, false, err
	}
	return v, true, nil
}
