package jsonblite

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
)

func doc(t *testing.T, s string) jsonval.Value {
	t.Helper()
	v, err := jsonval.Parse([]byte(s))
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return v
}

func mustEncode(t *testing.T, v jsonval.Value) []byte {
	t.Helper()
	data, err := Encode(nil, v)
	if err != nil {
		t.Fatalf("Encode(%s): %v", v, err)
	}
	return data
}

func TestRoundTripScalars(t *testing.T) {
	for _, s := range []string{`null`, `true`, `false`, `0`, `-7`, `2.5`, `""`, `"text"`, `[1,2,"x"]`} {
		v := doc(t, s)
		back, err := Decode(mustEncode(t, v))
		if err != nil {
			t.Fatalf("Decode(%s): %v", s, err)
		}
		if !back.Equal(v) || back.Kind() != v.Kind() {
			t.Errorf("round trip of %s gave %s (%v)", s, back, back.Kind())
		}
	}
}

func TestRoundTripObjectsSortKeys(t *testing.T) {
	v := doc(t, `{"zebra":1,"apple":2,"mango":{"y":1,"x":2}}`)
	back, err := Decode(mustEncode(t, v))
	if err != nil {
		t.Fatal(err)
	}
	// JSONB normalises member order to sorted keys (like PostgreSQL).
	keys := make([]string, 0, 3)
	for _, m := range back.Members() {
		keys = append(keys, m.Key)
	}
	if strings.Join(keys, ",") != "apple,mango,zebra" {
		t.Errorf("keys not sorted: %v", keys)
	}
	if !back.Equal(v) {
		t.Errorf("content changed: %s", back)
	}
}

func TestEncodeRejectsNullByteInString(t *testing.T) {
	v := jsonval.ObjectValue(jsonval.Member{Key: "body", Value: jsonval.StringValue("a\x00b")})
	if _, err := Encode(nil, v); !errors.Is(err, ErrNullByte) {
		t.Errorf("NUL string accepted: %v", err)
	}
	deep := jsonval.ObjectValue(jsonval.Member{Key: "o", Value: jsonval.ArrayValue(jsonval.StringValue("x\x00"))})
	if _, err := Encode(nil, deep); !errors.Is(err, ErrNullByte) {
		t.Errorf("nested NUL string accepted: %v", err)
	}
	key := jsonval.ObjectValue(jsonval.Member{Key: "k\x00", Value: jsonval.IntValue(1)})
	if _, err := Encode(nil, key); !errors.Is(err, ErrNullByte) {
		t.Errorf("NUL key accepted: %v", err)
	}
}

func TestLookupBinary(t *testing.T) {
	data := mustEncode(t, doc(t, `{"user":{"name":"alice","id":7},"active":true,"stats":{"a":1,"b":2,"c":3,"d":4,"e":5}}`))
	cases := []struct {
		path  string
		want  string
		found bool
	}{
		{"/user/name", `"alice"`, true},
		{"/user/id", "7", true},
		{"/active", "true", true},
		{"/stats/c", "3", true},
		{"/stats/e", "5", true},
		{"/stats/z", "", false},
		{"/missing", "", false},
		{"/user/name/deeper", "", false},
	}
	for _, c := range cases {
		v, ok, err := LookupBinary(data, jsonval.ParsePath(c.path))
		if err != nil {
			t.Errorf("LookupBinary(%s): %v", c.path, err)
			continue
		}
		if ok != c.found {
			t.Errorf("LookupBinary(%s) found=%v, want %v", c.path, ok, c.found)
			continue
		}
		if ok && v.String() != c.want {
			t.Errorf("LookupBinary(%s) = %s, want %s", c.path, v, c.want)
		}
	}
}

func TestLookupBinaryEmptyObject(t *testing.T) {
	data := mustEncode(t, doc(t, `{}`))
	if _, ok, err := LookupBinary(data, "/a"); ok || err != nil {
		t.Errorf("empty object lookup = %v, %v", ok, err)
	}
}

func TestLookupBinaryAgreesWithDecode(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		v := randomObj(r, 3)
		data := mustEncode(t, v)
		decoded, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range []jsonval.Path{"/a", "/b/a", "/c/b/a", "/nope"} {
			want, wantOK := path.Lookup(decoded)
			got, gotOK, err := LookupBinary(data, path)
			if err != nil {
				t.Fatalf("LookupBinary(%s) on %s: %v", path, v, err)
			}
			if gotOK != wantOK || (gotOK && !got.Equal(want)) {
				t.Fatalf("LookupBinary(%s) = %s/%v, Decode says %s/%v (doc %s)", path, got, gotOK, want, wantOK, v)
			}
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	valid := mustEncode(t, doc(t, `{"a":1,"b":"xy"}`))
	cases := [][]byte{
		nil,
		{0x7F},
		valid[:len(valid)-1],
		append(append([]byte{}, valid...), 0x00), // trailing bytes
	}
	for i, data := range cases {
		if v, err := Decode(data); err == nil {
			t.Errorf("case %d: corrupt input decoded to %s", i, v)
		}
	}
}

func TestFloatKindsPreserved(t *testing.T) {
	v := doc(t, `{"i":5,"f":5.0}`)
	back, err := Decode(mustEncode(t, v))
	if err != nil {
		t.Fatal(err)
	}
	i, _ := back.Field("i")
	f, _ := back.Field("f")
	if i.Kind() != jsonval.Int || f.Kind() != jsonval.Float {
		t.Errorf("kinds = %v, %v", i.Kind(), f.Kind())
	}
	big := jsonval.FloatValue(math.MaxFloat64)
	backBig, err := Decode(mustEncode(t, big))
	if err != nil || backBig.Float() != math.MaxFloat64 {
		t.Errorf("MaxFloat64 round trip = %s, %v", backBig, err)
	}
}

func randomObj(r *rand.Rand, depth int) jsonval.Value {
	keys := []string{"a", "b", "c", "dd", "ee"}
	n := 1 + r.Intn(4)
	members := make([]jsonval.Member, 0, n)
	used := map[string]bool{}
	for i := 0; i < n; i++ {
		k := keys[r.Intn(len(keys))]
		if used[k] {
			continue
		}
		used[k] = true
		var v jsonval.Value
		switch r.Intn(6) {
		case 0:
			v = jsonval.IntValue(int64(r.Intn(1000)))
		case 1:
			v = jsonval.FloatValue(r.Float64())
		case 2:
			v = jsonval.StringValue(strings.Repeat("v", r.Intn(8)))
		case 3:
			v = jsonval.BoolValue(r.Intn(2) == 0)
		case 4:
			v = jsonval.ArrayValue(jsonval.IntValue(1), jsonval.StringValue("e"))
		default:
			if depth > 0 {
				v = randomObj(r, depth-1)
			} else {
				v = jsonval.NullValue()
			}
		}
		members = append(members, jsonval.Member{Key: k, Value: v})
	}
	return jsonval.ObjectValue(members...)
}
