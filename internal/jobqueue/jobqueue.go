// Package jobqueue is a durable, admission-controlled job queue: the
// service backbone of betze-web's benchmark-as-a-service front door. Every
// state transition of every job — submitted, claimed, running, checkpoint,
// done, failed, cancelled, released — is one JSON record appended (and
// fsync'd) to a runlog write-ahead journal before the in-memory state
// changes, so a SIGKILLed process reopens the journal, replays it, and
// finds the queue exactly where durability left it: terminal jobs stay
// terminal, in-flight jobs are requeued with their checkpoints intact, and
// an executor that saves a checkpoint per completed work unit resumes
// mid-job instead of starting over.
//
// Admission control sits in front of the journal: a bounded submission
// queue and per-tenant token-bucket quotas shed load with a computed
// retry-after hint instead of letting depth grow without bound — the
// HTTP layer maps the two rejection reasons onto 503 and 429. Job payloads
// are opaque JSON; the queue never interprets them.
//
// The journal doubles as the progress feed: a runlog.Follower replaying it
// sees the same records the queue appended, which is how betze-web streams
// per-campaign events over SSE without a second event bus.
package jobqueue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/errfs"
	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/runlog"
)

// State is a job's position in the lifecycle. Transitions:
//
//	queued → claimed → running → done | failed | cancelled
//	         running → released → queued        (graceful drain)
//	         claimed/running → queued            (crash recovery requeue)
type State string

const (
	StateQueued    State = "queued"
	StateClaimed   State = "claimed"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors. Admission rejections wrap ErrQueueFull/ErrQuota inside a
// *ShedError carrying the retry-after hint.
var (
	// ErrQueueFull rejects a submission because the bounded queue is at
	// capacity.
	ErrQueueFull = errors.New("jobqueue: queue full")
	// ErrQuota rejects a submission because the tenant's token bucket is
	// empty.
	ErrQuota = errors.New("jobqueue: tenant quota exhausted")
	// ErrDraining rejects submissions and claims while the queue drains.
	ErrDraining = errors.New("jobqueue: draining")
	// ErrUnknownJob reports an ID the queue has never journaled.
	ErrUnknownJob = errors.New("jobqueue: unknown job")
	// ErrTerminal reports an operation on a job already in an end state.
	ErrTerminal = errors.New("jobqueue: job already terminal")
	// ErrBadRecord reports a journal payload that is not a queue record.
	ErrBadRecord = errors.New("jobqueue: malformed journal record")
	// ErrRecovering reports that the queue is not available yet because
	// journal recovery replay is still in progress — a retryable condition
	// the HTTP layer maps to 503 + Retry-After (wrapped in a *ShedError),
	// never an empty campaign list.
	ErrRecovering = errors.New("jobqueue: journal recovery in progress")
)

// ShedError is an admission-control rejection: Err is ErrQueueFull, ErrQuota
// or ErrDraining, and RetryAfter is the hint clients should wait before
// resubmitting (the HTTP layer turns it into a Retry-After header).
type ShedError struct {
	Err        error
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.RetryAfter.Round(time.Millisecond))
}

func (e *ShedError) Unwrap() error { return e.Err }

// Options tunes the queue.
type Options struct {
	// MaxQueued bounds the jobs waiting to be claimed (default 64).
	// Submissions beyond it shed with ErrQueueFull.
	MaxQueued int
	// MaxAttempts bounds how many times one job may be claimed across
	// process lifetimes (default 3); a job requeued by crash recovery that
	// often fails terminally instead — the poison-pill guard.
	MaxAttempts int
	// TenantRate refills each tenant's token bucket, in submissions per
	// second (default 4).
	TenantRate float64
	// TenantBurst is each bucket's capacity (default 8).
	TenantBurst int
	// SegmentBytes tunes journal segment rotation (runlog default).
	SegmentBytes int64
	// NoSync skips journal fsync (tests only).
	NoSync bool
	// FS is the filesystem the journal lives on. Defaults to the
	// passthrough errfs.OS(); the crashfuzz harness substitutes an
	// in-memory or fault-injecting filesystem.
	FS errfs.FS
	// Obs receives queue metrics (depth/in-flight gauges, wait-time
	// histogram, admission and completion counters).
	Obs obs.Scope
	// Now substitutes the clock (tests); defaults to time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxQueued <= 0 {
		o.MaxQueued = 64
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.TenantRate <= 0 {
		o.TenantRate = 4
	}
	if o.TenantBurst <= 0 {
		o.TenantBurst = 8
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.FS == nil {
		o.FS = errfs.OS()
	}
	return o
}

// record is the JSON payload of one journal entry. Type is the transition
// name; the record set is the queue's public event vocabulary (SSE streams
// decode exactly these).
type record struct {
	Type    string          `json:"type"`
	Job     string          `json:"job,omitempty"`
	Tenant  string          `json:"tenant,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Key     string          `json:"key,omitempty"`
	Data    json.RawMessage `json:"data,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// Journal record types (the Type field of record).
const (
	RecSubmitted  = "submitted"
	RecClaimed    = "claimed"
	RecRunning    = "running"
	RecCheckpoint = "checkpoint"
	RecDone       = "done"
	RecFailed     = "failed"
	RecCancelled  = "cancelled"
	RecReleased   = "released"
)

// DecodeRecord parses one journal payload into the queue's record shape —
// the JSON the SSE layer re-emits. The boolean reports whether the payload
// was a queue record at all.
func DecodeRecord(payload []byte) (typ, job string, err error) {
	var r record
	if jerr := json.Unmarshal(payload, &r); jerr != nil || r.Type == "" {
		return "", "", fmt.Errorf("%w: %q", ErrBadRecord, payload)
	}
	return r.Type, r.Job, nil
}

// job is the queue's internal job state.
type job struct {
	id      string
	tenant  string
	payload json.RawMessage
	state   State
	attempt int // claims across process lifetimes
	errMsg  string
	seq     int // submission order

	submittedAt time.Time          // volatile: in-memory only; wait-time metric
	cancelReq   bool               // volatile: cancel intent, re-requested after restart
	cancel      context.CancelFunc // volatile: cancels the running executor
}

// Snapshot is a read-only copy of a job's externally visible state.
type Snapshot struct {
	ID          string          `json:"id"`
	Tenant      string          `json:"tenant"`
	State       State           `json:"state"`
	Attempt     int             `json:"attempt"`
	Error       string          `json:"error,omitempty"`
	Checkpoints int             `json:"checkpoints"`
	Payload     json.RawMessage `json:"payload,omitempty"`
}

// bucket is a per-tenant token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// take refills by elapsed time and consumes one token, or reports how long
// until one is available.
func (b *bucket) take(now time.Time, rate float64, burst int) (bool, time.Duration) {
	b.tokens = math.Min(float64(burst), b.tokens+rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	return false, wait
}

// Queue is the durable job queue. All methods are safe for concurrent use.
type Queue struct {
	opts Options

	mu      sync.Mutex
	w       *runlog.Writer
	jobs    map[string]*job
	order   []string // submission order, for List
	pending []string // FIFO of queued job IDs
	chk     map[string]map[string]json.RawMessage

	// The remaining fields are volatile: runtime-only state rebuilt on every
	// Open, never journaled, exempt from the journal-before-memory rule.
	buckets  map[string]*bucket // volatile: token buckets refill from zero
	nextID   int                // volatile: recomputed from replayed IDs
	notify   chan struct{}      // volatile: wakes parked claimers
	draining bool               // volatile: admission gate, reset on restart
	closed   bool               // volatile: lifecycle flag
}

// Open creates or recovers the journaled queue in dir. A directory already
// holding a journal is replayed first: terminal jobs are restored for
// status queries, in-flight and queued jobs are requeued (in submission
// order) with their checkpoints, and jobs claimed MaxAttempts times are
// failed as poison pills. Recovery tolerates a torn journal tail — the
// record being appended when the process died is the only loss, and its
// job simply re-runs from its last checkpoint.
func Open(dir string, opts Options) (*Queue, error) {
	opts = opts.withDefaults()
	q := &Queue{
		opts:    opts,
		jobs:    make(map[string]*job),
		chk:     make(map[string]map[string]json.RawMessage),
		buckets: make(map[string]*bucket),
		nextID:  1,
		notify:  make(chan struct{}, 1),
	}
	rl := runlog.Options{SegmentBytes: opts.SegmentBytes, NoSync: opts.NoSync, FS: opts.FS}
	rec, err := runlog.RecoverFS(opts.FS, dir)
	switch {
	case errors.Is(err, runlog.ErrNoJournal):
		w, cerr := runlog.Create(dir, rl)
		if cerr != nil {
			return nil, fmt.Errorf("jobqueue: %w", cerr)
		}
		q.w = w
		return q, nil
	case err != nil:
		return nil, fmt.Errorf("jobqueue: %w", err)
	}
	if err := q.replay(rec.Records); err != nil {
		return nil, err
	}
	w, err := runlog.Open(dir, rl)
	if err != nil {
		return nil, fmt.Errorf("jobqueue: %w", err)
	}
	q.w = w
	// Requeue in-flight work and fail poison pills, journaling the
	// transitions so the next recovery replays the same conclusions.
	now := q.opts.Now()
	for _, id := range q.order {
		j := q.jobs[id]
		switch j.state {
		case StateClaimed, StateRunning:
			if j.attempt >= q.opts.MaxAttempts {
				msg := fmt.Sprintf("abandoned after %d attempts", j.attempt)
				if err := q.append(record{Type: RecFailed, Job: id, Error: msg}); err != nil {
					return nil, err
				}
				j.state = StateFailed
				j.errMsg = msg
				q.opts.Obs.Counter(obs.MQueueFailed).Inc()
				continue
			}
			if err := q.append(record{Type: RecReleased, Job: id}); err != nil {
				return nil, err
			}
			j.state = StateQueued
			j.submittedAt = now
			q.pending = append(q.pending, id)
			q.opts.Obs.Counter(obs.MQueueRequeued).Inc()
		case StateQueued:
			j.submittedAt = now
			q.pending = append(q.pending, id)
		}
	}
	q.gauges()
	return q, nil
}

// replay folds recovered journal records into queue state — the one method
// where memory is written FROM the journal instead of ahead of it.
//
//lint:ignore journalorder replay reconstructs memory from already-durable records; appending here would duplicate them
func (q *Queue) replay(records [][]byte) error {
	for i, payload := range records {
		var r record
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("%w: record %d: %v", ErrBadRecord, i, err)
		}
		if r.Type == RecSubmitted {
			if r.Job == "" {
				return fmt.Errorf("%w: record %d: submission without id", ErrBadRecord, i)
			}
			q.jobs[r.Job] = &job{
				id: r.Job, tenant: r.Tenant, payload: r.Payload,
				state: StateQueued, seq: len(q.order),
			}
			q.order = append(q.order, r.Job)
			if n := idNumber(r.Job); n >= q.nextID {
				q.nextID = n + 1
			}
			continue
		}
		j, ok := q.jobs[r.Job]
		if !ok {
			return fmt.Errorf("%w: record %d: %s for unknown job %q", ErrBadRecord, i, r.Type, r.Job)
		}
		switch r.Type {
		case RecClaimed:
			j.state = StateClaimed
			j.attempt++
		case RecRunning:
			j.state = StateRunning
		case RecCheckpoint:
			m := q.chk[j.id]
			if m == nil {
				m = make(map[string]json.RawMessage)
				q.chk[j.id] = m
			}
			m[r.Key] = r.Data
		case RecDone:
			j.state = StateDone
		case RecFailed:
			j.state = StateFailed
			j.errMsg = r.Error
		case RecCancelled:
			j.state = StateCancelled
		case RecReleased:
			j.state = StateQueued
		default:
			return fmt.Errorf("%w: record %d: unknown type %q", ErrBadRecord, i, r.Type)
		}
	}
	return nil
}

// idNumber extracts the numeric part of a "cNNNNNN" job ID; -1 otherwise.
func idNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "c%06d", &n); err != nil {
		return -1
	}
	return n
}

// append journals one record durably. Callers hold q.mu.
func (q *Queue) append(r record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("jobqueue: encoding %s record: %w", r.Type, err)
	}
	if err := q.w.AppendSync(payload); err != nil {
		return fmt.Errorf("jobqueue: journaling %s: %w", r.Type, err)
	}
	return nil
}

// gauges refreshes the depth and in-flight gauges. Callers hold q.mu.
func (q *Queue) gauges() {
	inflight := 0
	for _, j := range q.jobs {
		if j.state == StateClaimed || j.state == StateRunning {
			inflight++
		}
	}
	q.opts.Obs.Gauge(obs.MQueueDepth).Set(float64(len(q.pending)))
	q.opts.Obs.Gauge(obs.MQueueInFlight).Set(float64(inflight))
}

// Submit admits one job for tenant with an opaque payload, journals it, and
// returns its snapshot. Rejections are *ShedError wrapping ErrQueueFull
// (depth bound), ErrQuota (token bucket) or ErrDraining.
func (q *Queue) Submit(tenant string, payload json.RawMessage) (Snapshot, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.draining {
		q.opts.Obs.Counter(obs.MQueueRejected).Inc()
		return Snapshot{}, &ShedError{Err: ErrDraining, RetryAfter: 5 * time.Second}
	}
	if len(q.pending) >= q.opts.MaxQueued {
		q.opts.Obs.Counter(obs.MQueueRejected).Inc()
		// The deeper the backlog, the longer the hint — a crude but
		// monotone model of drain time, clamped to something polite.
		hint := min(time.Duration(len(q.pending))*250*time.Millisecond, 30*time.Second)
		return Snapshot{}, &ShedError{Err: ErrQueueFull, RetryAfter: max(hint, time.Second)}
	}
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: float64(q.opts.TenantBurst), last: q.opts.Now()}
		q.buckets[tenant] = b
	}
	if ok, wait := b.take(q.opts.Now(), q.opts.TenantRate, q.opts.TenantBurst); !ok {
		q.opts.Obs.Counter(obs.MQueueRejected).Inc()
		return Snapshot{}, &ShedError{Err: ErrQuota, RetryAfter: max(wait, time.Second)}
	}
	id := fmt.Sprintf("c%06d", q.nextID)
	j := &job{
		id: id, tenant: tenant, payload: payload,
		state: StateQueued, seq: len(q.order), submittedAt: q.opts.Now(),
	}
	if err := q.append(record{Type: RecSubmitted, Job: id, Tenant: tenant, Payload: payload}); err != nil {
		return Snapshot{}, err
	}
	q.nextID++
	q.jobs[id] = j
	q.order = append(q.order, id)
	q.pending = append(q.pending, id)
	q.opts.Obs.Counter(obs.MQueueSubmitted).Inc()
	q.gauges()
	q.wake()
	return q.snapshotLocked(j), nil
}

// wake nudges one waiting claimer. Callers hold q.mu.
func (q *Queue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Claim blocks until a job is available (or ctx is done / the queue is
// draining), journals the claim, and hands the job to a worker.
func (q *Queue) Claim(ctx context.Context) (Snapshot, error) {
	for {
		if err := ctx.Err(); err != nil {
			return Snapshot{}, err
		}
		q.mu.Lock()
		if q.draining || q.closed {
			q.mu.Unlock()
			return Snapshot{}, ErrDraining
		}
		if len(q.pending) > 0 {
			id := q.pending[0]
			j := q.jobs[id]
			// Journal before popping: if the append fails the job stays
			// pending and the next claimer retries it, instead of silently
			// vanishing from the queue until a restart.
			if err := q.append(record{Type: RecClaimed, Job: id}); err != nil {
				q.mu.Unlock()
				return Snapshot{}, err
			}
			q.pending = q.pending[1:]
			j.state = StateClaimed
			j.attempt++
			q.opts.Obs.Observe(obs.MQueueWait, q.opts.Now().Sub(j.submittedAt))
			q.gauges()
			if len(q.pending) > 0 {
				q.wake() // more work: pass the baton to the next claimer
			}
			snap := q.snapshotLocked(j)
			q.mu.Unlock()
			return snap, nil
		}
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			return Snapshot{}, ctx.Err()
		case <-q.notify:
		}
	}
}

// transition journals and applies a state change for a claimed/running job.
func (q *Queue) transition(id, recType string, to State, errMsg string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.state.Terminal() {
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.state)
	}
	if err := q.append(record{Type: recType, Job: id, Error: errMsg}); err != nil {
		return err
	}
	j.state = to
	j.errMsg = errMsg
	j.cancel = nil
	switch recType {
	case RecDone:
		q.opts.Obs.Counter(obs.MQueueDone).Inc()
	case RecFailed:
		q.opts.Obs.Counter(obs.MQueueFailed).Inc()
	case RecCancelled:
		q.opts.Obs.Counter(obs.MQueueCancelled).Inc()
	}
	q.gauges()
	return nil
}

// Running marks a claimed job as executing and registers the cancel hook a
// client-side Cancel will fire.
func (q *Queue) Running(id string, cancel context.CancelFunc) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if err := q.append(record{Type: RecRunning, Job: id}); err != nil {
		return err
	}
	j.state = StateRunning
	j.cancel = cancel
	return nil
}

// Done marks a job completed.
func (q *Queue) Done(id string) error {
	return q.transition(id, RecDone, StateDone, "")
}

// Fail marks a job terminally failed.
func (q *Queue) Fail(id string, cause error) error {
	msg := "unknown failure"
	if cause != nil {
		msg = cause.Error()
	}
	return q.transition(id, RecFailed, StateFailed, msg)
}

// Cancelled marks a job cancelled (after its executor stopped).
func (q *Queue) Cancelled(id string) error {
	return q.transition(id, RecCancelled, StateCancelled, "")
}

// Release returns an in-flight job to the front of the queue — the
// graceful-drain path: the executor checkpointed what it finished, and the
// job resumes (here or after a restart) from that checkpoint.
func (q *Queue) Release(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.state.Terminal() {
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.state)
	}
	if err := q.append(record{Type: RecReleased, Job: id}); err != nil {
		return err
	}
	j.state = StateQueued
	j.cancel = nil
	j.submittedAt = q.opts.Now()
	q.pending = append([]string{id}, q.pending...)
	q.opts.Obs.Counter(obs.MQueueRequeued).Inc()
	q.gauges()
	q.wake()
	return nil
}

// Cancel requests cancellation: a queued job is cancelled immediately; a
// running job has its executor's context cancelled and completes the
// transition when the worker observes it. Terminal jobs return ErrTerminal.
func (q *Queue) Cancel(id string) (State, error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch {
	case j.state.Terminal():
		state := j.state
		q.mu.Unlock()
		return state, fmt.Errorf("%w: %s is %s", ErrTerminal, id, state)
	case j.state == StateQueued:
		// Journal before splicing: a failed append leaves the job queued and
		// claimable rather than stranded outside both pending and the journal.
		if err := q.append(record{Type: RecCancelled, Job: id}); err != nil {
			q.mu.Unlock()
			return j.state, err
		}
		for i, pid := range q.pending {
			if pid == id {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				break
			}
		}
		j.state = StateCancelled
		q.opts.Obs.Counter(obs.MQueueCancelled).Inc()
		q.gauges()
		q.mu.Unlock()
		return StateCancelled, nil
	default: // claimed or running
		j.cancelReq = true
		cancel := j.cancel
		q.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return StateRunning, nil
	}
}

// CancelRequested reports whether a client asked to cancel the job.
func (q *Queue) CancelRequested(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return ok && j.cancelReq
}

// Checkpoint durably records one completed work unit of a running job.
func (q *Queue) Checkpoint(id, key string, data json.RawMessage) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.jobs[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if err := q.append(record{Type: RecCheckpoint, Job: id, Key: key, Data: data}); err != nil {
		return err
	}
	m := q.chk[id]
	if m == nil {
		m = make(map[string]json.RawMessage)
		q.chk[id] = m
	}
	m[key] = data
	q.opts.Obs.Counter(obs.MQueueCheckpoints).Inc()
	return nil
}

// LoadCheckpoint returns the journaled checkpoint for (job, key), if any.
func (q *Queue) LoadCheckpoint(id, key string) (json.RawMessage, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	data, ok := q.chk[id][key]
	return data, ok
}

// snapshotLocked copies a job's visible state. Callers hold q.mu.
func (q *Queue) snapshotLocked(j *job) Snapshot {
	return Snapshot{
		ID: j.id, Tenant: j.tenant, State: j.state, Attempt: j.attempt,
		Error: j.errMsg, Checkpoints: len(q.chk[j.id]), Payload: j.payload,
	}
}

// Get returns one job's snapshot.
func (q *Queue) Get(id string) (Snapshot, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return q.snapshotLocked(j), nil
}

// List returns every job in submission order.
func (q *Queue) List() []Snapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Snapshot, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.snapshotLocked(q.jobs[id]))
	}
	sort.SliceStable(out, func(i, k int) bool { return q.jobs[out[i].ID].seq < q.jobs[out[k].ID].seq })
	return out
}

// Depth reports the jobs waiting to be claimed.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Drain stops admissions and claims: Submit sheds with ErrDraining and
// blocked Claim calls return ErrDraining. Running executors are not
// touched — the pool cancels and releases them.
func (q *Queue) Drain() {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
	// Wake every parked claimer so it observes the drain.
	for {
		select {
		case q.notify <- struct{}{}:
		default:
			return
		}
	}
}

// Close drains the queue and seals the journal. Safe to call after Drain.
func (q *Queue) Close() error {
	q.Drain()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	if err := q.w.Seal(); err != nil {
		return fmt.Errorf("jobqueue: sealing journal: %w", err)
	}
	return nil
}
