package jobqueue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/obs"
)

// testOpts returns fast, deterministic queue options for tests.
func testOpts() Options {
	return Options{NoSync: true, SegmentBytes: 512, TenantRate: 1e6, TenantBurst: 1 << 20}
}

func mustOpen(t *testing.T, dir string, opts Options) *Queue {
	t.Helper()
	q, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return q
}

func TestLifecycleJournaledAndRecovered(t *testing.T) {
	dir := t.TempDir() + "/queue"
	q := mustOpen(t, dir, testOpts())

	snapA, err := q.Submit("alice", json.RawMessage(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := q.Submit("bob", json.RawMessage(`{"n":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if snapA.ID == snapB.ID {
		t.Fatalf("duplicate job IDs: %s", snapA.ID)
	}

	ctx, cancel := context.WithTimeout(t.Context(), 5*time.Second)
	defer cancel()
	claimed, err := q.Claim(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if claimed.ID != snapA.ID {
		t.Fatalf("claimed %s, want FIFO order %s first", claimed.ID, snapA.ID)
	}
	if err := q.Running(claimed.ID, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := q.Checkpoint(claimed.ID, "unit-1", json.RawMessage(`"partial"`)); err != nil {
		t.Fatal(err)
	}
	if err := q.Done(claimed.ID); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the done job stays done; the still-queued job is requeued.
	q2 := mustOpen(t, dir, testOpts())
	defer q2.Close()
	gotA, err := q2.Get(snapA.ID)
	if err != nil || gotA.State != StateDone {
		t.Fatalf("after recovery job A = %+v, %v; want done", gotA, err)
	}
	if gotA.Checkpoints != 1 {
		t.Fatalf("job A checkpoints = %d, want 1", gotA.Checkpoints)
	}
	gotB, err := q2.Get(snapB.ID)
	if err != nil || gotB.State != StateQueued {
		t.Fatalf("after recovery job B = %+v, %v; want queued", gotB, err)
	}
	if d := q2.Depth(); d != 1 {
		t.Fatalf("recovered depth = %d, want 1", d)
	}
	// Payloads survive the journal round-trip.
	if string(gotB.Payload) != `{"n":2}` {
		t.Fatalf("job B payload = %s", gotB.Payload)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	opts := testOpts()
	opts.MaxQueued = 2
	q := mustOpen(t, t.TempDir()+"/queue", opts)
	defer q.Close()

	for i := 0; i < 2; i++ {
		if _, err := q.Submit("t", nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := q.Submit("t", nil)
	var shed *ShedError
	if !errors.As(err, &shed) || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit = %v, want ShedError{ErrQueueFull}", err)
	}
	if shed.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", shed.RetryAfter)
	}
}

func TestAdmissionTenantQuota(t *testing.T) {
	now := time.Unix(1700000000, 0)
	opts := testOpts()
	opts.TenantRate = 1 // 1 token/sec
	opts.TenantBurst = 2
	opts.MaxQueued = 100
	opts.Now = func() time.Time { return now }
	q := mustOpen(t, t.TempDir()+"/queue", opts)
	defer q.Close()

	for i := 0; i < 2; i++ {
		if _, err := q.Submit("alice", nil); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err := q.Submit("alice", nil)
	var shed *ShedError
	if !errors.As(err, &shed) || !errors.Is(err, ErrQuota) {
		t.Fatalf("over-quota submit = %v, want ShedError{ErrQuota}", err)
	}
	if shed.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s (empty bucket at 1 tok/s)", shed.RetryAfter)
	}
	// A different tenant is unaffected.
	if _, err := q.Submit("bob", nil); err != nil {
		t.Fatalf("other tenant sheds too: %v", err)
	}
	// After the bucket refills, alice is admitted again.
	now = now.Add(1500 * time.Millisecond)
	if _, err := q.Submit("alice", nil); err != nil {
		t.Fatalf("post-refill submit: %v", err)
	}
}

func TestRecoveryRequeuesInFlightWithCheckpoints(t *testing.T) {
	dir := t.TempDir() + "/queue"
	q := mustOpen(t, dir, testOpts())
	snap, err := q.Submit("t", json.RawMessage(`{"work":true}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 5*time.Second)
	defer cancel()
	if _, err := q.Claim(ctx); err != nil {
		t.Fatal(err)
	}
	if err := q.Running(snap.ID, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := q.Checkpoint(snap.ID, "unit-1", json.RawMessage(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := q.Checkpoint(snap.ID, "unit-2", json.RawMessage(`2`)); err != nil {
		t.Fatal(err)
	}
	// Simulate SIGKILL: abandon the queue without Close; the journal's
	// active segment is left unsealed, exactly like a dead process.

	q2 := mustOpen(t, dir, testOpts())
	defer q2.Close()
	got, err := q2.Get(snap.ID)
	if err != nil || got.State != StateQueued {
		t.Fatalf("recovered in-flight job = %+v, %v; want requeued", got, err)
	}
	if got.Attempt != 1 {
		t.Fatalf("recovered attempt = %d, want 1", got.Attempt)
	}
	if data, ok := q2.LoadCheckpoint(snap.ID, "unit-2"); !ok || string(data) != `2` {
		t.Fatalf("checkpoint unit-2 = %q, %v; want preserved", data, ok)
	}
	// The requeued job is claimable and resumes.
	reclaimed, err := q2.Claim(ctx)
	if err != nil || reclaimed.ID != snap.ID {
		t.Fatalf("reclaim = %+v, %v", reclaimed, err)
	}
	if reclaimed.Attempt != 2 {
		t.Fatalf("reclaimed attempt = %d, want 2", reclaimed.Attempt)
	}
}

func TestRecoveryFailsPoisonPills(t *testing.T) {
	dir := t.TempDir() + "/queue"
	opts := testOpts()
	opts.MaxAttempts = 2
	ctx, cancel := context.WithTimeout(t.Context(), 5*time.Second)
	defer cancel()

	q := mustOpen(t, dir, opts)
	snap, err := q.Submit("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Claim(ctx); err != nil {
		t.Fatal(err)
	}
	// Crash #1: requeued (attempt 1 of 2).
	q = mustOpen(t, dir, opts)
	if _, err := q.Claim(ctx); err != nil {
		t.Fatal(err)
	}
	// Crash #2: attempt bound reached — recovery must fail it, not loop.
	q = mustOpen(t, dir, opts)
	defer q.Close()
	got, err := q.Get(snap.ID)
	if err != nil || got.State != StateFailed {
		t.Fatalf("poison pill after recovery = %+v, %v; want failed", got, err)
	}
	if got.Error == "" {
		t.Fatal("poison pill carries no error message")
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("poison pill still queued (depth %d)", d)
	}
}

func TestDrainReleasesAndReopenResumes(t *testing.T) {
	dir := t.TempDir() + "/queue"
	q := mustOpen(t, dir, testOpts())

	snap, err := q.Submit("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	ctx, cancel := context.WithCancel(t.Context())
	pool := NewPool(ctx, q, 1, func(jctx context.Context, job Snapshot, cp *Checkpoints) error {
		if err := cp.Save("unit-1", []byte(`"done"`)); err != nil {
			return err
		}
		close(started)
		<-jctx.Done() // simulate a long run interrupted by drain
		return jctx.Err()
	})
	<-started
	cancel() // SIGTERM path: drain the pool
	pool.Wait()
	q.Drain()

	got, err := q.Get(snap.ID)
	if err != nil || got.State != StateQueued {
		t.Fatalf("drained job = %+v, %v; want released back to queued", got, err)
	}
	// Draining queue sheds new submissions.
	if _, err := q.Submit("t", nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the released job resumes from its checkpoint.
	q2 := mustOpen(t, dir, testOpts())
	defer q2.Close()
	if data, ok := q2.LoadCheckpoint(snap.ID, "unit-1"); !ok || string(data) != `"done"` {
		t.Fatalf("checkpoint after restart = %q, %v", data, ok)
	}
	ranCh := make(chan Snapshot, 1)
	ctx2, cancel2 := context.WithTimeout(t.Context(), 5*time.Second)
	defer cancel2()
	pool2 := NewPool(ctx2, q2, 1, func(jctx context.Context, job Snapshot, cp *Checkpoints) error {
		ranCh <- job
		return nil
	})
	resumed := <-ranCh
	if resumed.ID != snap.ID || resumed.Checkpoints != 1 {
		t.Fatalf("resumed job = %+v, want ID %s with 1 checkpoint", resumed, snap.ID)
	}
	waitState(t, q2, snap.ID, StateDone)
	cancel2()
	pool2.Wait()
}

func TestCancelQueuedAndRunning(t *testing.T) {
	q := mustOpen(t, t.TempDir()+"/queue", testOpts())
	defer q.Close()

	// Cancel while queued: immediate terminal transition.
	snap, err := q.Submit("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := q.Cancel(snap.ID); err != nil || st != StateCancelled {
		t.Fatalf("cancel queued = %v, %v", st, err)
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("cancelled job still queued (depth %d)", d)
	}
	// Cancelling again reports the terminal state.
	if _, err := q.Cancel(snap.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("double cancel = %v, want ErrTerminal", err)
	}

	// Cancel while running: executor context is cancelled, worker records it.
	snap2, err := q.Submit("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	ctx, cancel := context.WithTimeout(t.Context(), 5*time.Second)
	defer cancel()
	pool := NewPool(ctx, q, 1, func(jctx context.Context, job Snapshot, cp *Checkpoints) error {
		close(started)
		<-jctx.Done()
		return jctx.Err()
	})
	<-started
	if _, err := q.Cancel(snap2.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap2.ID, StateCancelled)
	q.Drain()
	pool.Wait()
}

func TestPoolFailureBoundsAttempts(t *testing.T) {
	q := mustOpen(t, t.TempDir()+"/queue", testOpts())
	defer q.Close()
	snap, err := q.Submit("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 5*time.Second)
	defer cancel()
	pool := NewPool(ctx, q, 1, func(jctx context.Context, job Snapshot, cp *Checkpoints) error {
		return errors.New("engine exploded")
	})
	waitState(t, q, snap.ID, StateFailed)
	got, _ := q.Get(snap.ID)
	if got.Error == "" {
		t.Fatal("failed job carries no cause")
	}
	q.Drain()
	pool.Wait()
}

// TestConcurrentExactlyOnceExecution is the chaos check: many tenants
// submitting against many workers, every accepted job executed exactly once
// and driven to a terminal state, under -race.
func TestConcurrentExactlyOnceExecution(t *testing.T) {
	opts := testOpts()
	opts.MaxQueued = 1000
	q := mustOpen(t, t.TempDir()+"/queue", opts)
	defer q.Close()

	var mu sync.Mutex
	runs := make(map[string]int)
	ctx, cancel := context.WithTimeout(t.Context(), 30*time.Second)
	defer cancel()
	pool := NewPool(ctx, q, 8, func(jctx context.Context, job Snapshot, cp *Checkpoints) error {
		mu.Lock()
		runs[job.ID]++
		mu.Unlock()
		return nil
	})

	const tenants, perTenant = 5, 20
	var wg sync.WaitGroup
	var accepted atomic.Int64
	ids := make(chan string, tenants*perTenant)
	for tnt := 0; tnt < tenants; tnt++ {
		wg.Add(1)
		go func(tnt int) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				snap, err := q.Submit(fmt.Sprintf("tenant-%d", tnt), nil)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				accepted.Add(1)
				ids <- snap.ID
			}
		}(tnt)
	}
	wg.Wait()
	close(ids)

	for id := range ids {
		waitState(t, q, id, StateDone)
	}
	q.Drain()
	pool.Wait()

	mu.Lock()
	defer mu.Unlock()
	if int64(len(runs)) != accepted.Load() {
		t.Fatalf("executed %d distinct jobs, accepted %d", len(runs), accepted.Load())
	}
	for id, n := range runs {
		if n != 1 {
			t.Fatalf("job %s executed %d times, want exactly once", id, n)
		}
	}
}

// TestMetricsVocabulary: the queue reports through the closed obs
// vocabulary; spot-check a few counters move.
func TestMetricsVocabulary(t *testing.T) {
	reg := obs.NewRegistry()
	opts := testOpts()
	opts.MaxQueued = 1
	opts.Obs = obs.Scope{Metrics: reg}
	q := mustOpen(t, t.TempDir()+"/queue", opts)
	defer q.Close()
	if _, err := q.Submit("t", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("t", nil); err == nil {
		t.Fatal("expected shed")
	}
	if n := reg.Counter(obs.MQueueSubmitted).Value(); n != 1 {
		t.Fatalf("%s = %d, want 1", obs.MQueueSubmitted, n)
	}
	if n := reg.Counter(obs.MQueueRejected).Value(); n != 1 {
		t.Fatalf("%s = %d, want 1", obs.MQueueRejected, n)
	}
}

// waitState polls until the job reaches want or the test deadline passes.
func waitState(t *testing.T, q *Queue, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got, err := q.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if got.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	got, _ := q.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, got.State, want)
}
