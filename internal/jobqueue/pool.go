package jobqueue

import (
	"context"
	"fmt"
	"sync"
)

// Checkpoints is the executor's window onto one job's durable checkpoints:
// Save journals a completed work unit, Load answers "did a previous attempt
// already finish this unit?" — the resume contract that makes a requeued
// job idempotent.
type Checkpoints struct {
	q  *Queue
	id string
}

// Save durably records one completed work unit under key.
func (c *Checkpoints) Save(key string, data []byte) error {
	return c.q.Checkpoint(c.id, key, data)
}

// Load returns the checkpoint a previous attempt saved under key, if any.
func (c *Checkpoints) Load(key string) ([]byte, bool) {
	return c.q.LoadCheckpoint(c.id, key)
}

// Executor runs one claimed job. It must honor ctx (cancelled on client
// cancellation and on pool drain) and should Save a checkpoint after each
// completed work unit so a later attempt resumes instead of redoing work.
// A nil return completes the job; ctx.Err() at return time means the run
// was interrupted, and any other error fails the attempt.
type Executor func(ctx context.Context, job Snapshot, cp *Checkpoints) error

// Pool runs a bounded set of workers claiming jobs from a Queue and feeding
// them to an Executor. Drain semantics: cancelling the pool context stops
// claiming immediately, cancels in-flight executors, and Releases their
// jobs back to the queue (journaled), so a restart resumes them from their
// checkpoints.
type Pool struct {
	q    *Queue
	exec Executor
	wg   sync.WaitGroup
}

// NewPool starts n workers (minimum 1) against q.
func NewPool(ctx context.Context, q *Queue, n int, exec Executor) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{q: q, exec: exec}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker(ctx)
	}
	return p
}

// Wait blocks until every worker has exited (after its context is
// cancelled or the queue starts draining) and in-flight jobs are released.
func (p *Pool) Wait() {
	p.wg.Wait()
}

func (p *Pool) worker(ctx context.Context) {
	defer p.wg.Done()
	for {
		job, err := p.q.Claim(ctx)
		if err != nil {
			return // ctx cancelled or queue draining
		}
		p.run(ctx, job)
	}
}

// run executes one claimed job and journals its outcome.
func (p *Pool) run(ctx context.Context, job Snapshot) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := p.q.Running(job.ID, cancel); err != nil {
		// The journal refused the transition; put the job back rather
		// than lose it.
		p.q.Release(job.ID)
		return
	}
	err := p.exec(jctx, job, &Checkpoints{q: p.q, id: job.ID})
	switch {
	case p.q.CancelRequested(job.ID):
		p.q.Cancelled(job.ID)
	case err == nil:
		p.q.Done(job.ID)
	case ctx.Err() != nil:
		// Pool drain interrupted the executor: the job itself is fine,
		// so requeue it for the next process lifetime (or worker).
		p.q.Release(job.ID)
	default:
		p.q.Fail(job.ID, fmt.Errorf("attempt %d: %w", job.Attempt, err))
	}
}
