package jsonval

import (
	"io"
	"math"
	"strconv"
	"strings"
	"unicode/utf8"
)

// AppendJSON appends the compact JSON encoding of v to dst and returns the
// extended slice.
func AppendJSON(dst []byte, v Value) []byte {
	switch v.kind {
	case Null:
		return append(dst, "null"...)
	case Bool:
		if v.b {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case Int:
		return strconv.AppendInt(dst, v.n, 10)
	case Float:
		return appendFloat(dst, v.f)
	case String:
		return AppendQuoted(dst, v.s)
	case Array:
		dst = append(dst, '[')
		for i, e := range v.arr {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = AppendJSON(dst, e)
		}
		return append(dst, ']')
	case Object:
		dst = append(dst, '{')
		for i, m := range v.obj {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = AppendQuoted(dst, m.Key)
			dst = append(dst, ':')
			dst = AppendJSON(dst, m.Value)
		}
		return append(dst, '}')
	default:
		return append(dst, "null"...)
	}
}

func appendFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		// JSON cannot represent these; null is the conventional fallback.
		return append(dst, "null"...)
	}
	dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
	// Keep the float/int distinction visible in text form so a round trip
	// through the serialiser preserves the kind.
	if !hasFloatSyntax(dst) {
		dst = append(dst, '.', '0')
	}
	return dst
}

func hasFloatSyntax(b []byte) bool {
	for i := len(b) - 1; i >= 0; i-- {
		switch b[i] {
		case '.', 'e', 'E':
			return true
		case ',', '[', '{', ':':
			return false
		}
	}
	return false
}

// AppendQuoted appends s as a JSON string literal, escaping as required by
// RFC 8259. Invalid UTF-8 bytes are replaced with U+FFFD.
func AppendQuoted(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c < utf8.RuneSelf {
			i++
			continue
		}
		dst = append(dst, s[start:i]...)
		if c < utf8.RuneSelf {
			switch c {
			case '"':
				dst = append(dst, '\\', '"')
			case '\\':
				dst = append(dst, '\\', '\\')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = utf8.AppendRune(dst, utf8.RuneError)
		} else {
			dst = append(dst, s[i:i+size]...)
		}
		i += size
		start = i
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

func hexDigit(b byte) byte {
	if b < 10 {
		return '0' + b
	}
	return 'a' + b - 10
}

func writeValue(sb *strings.Builder, v Value) {
	sb.Write(AppendJSON(nil, v))
}

// Write encodes v to w as compact JSON followed by a newline, the
// line-delimited format BETZE datasets are stored in.
func Write(w io.Writer, v Value) error {
	buf := AppendJSON(nil, v)
	buf = append(buf, '\n')
	_, err := w.Write(buf)
	return err
}
