package jsonval

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
)

// MaxDepth bounds parser recursion. Real-world exploration datasets (Twitter,
// Reddit) nest a handful of levels; the bound protects against adversarial
// inputs without affecting legitimate documents.
const MaxDepth = 256

// SyntaxError describes a malformed JSON input.
type SyntaxError struct {
	Offset int // byte offset at which the error was detected
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("jsonval: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Parse decodes a single JSON value from data. Trailing non-whitespace input
// is an error.
func Parse(data []byte) (Value, error) {
	p := parser{data: data}
	p.skipSpace()
	v, err := p.parseValue(0)
	if err != nil {
		return Value{}, err
	}
	p.skipSpace()
	if p.pos != len(p.data) {
		return Value{}, p.errf("unexpected trailing data")
	}
	return v, nil
}

// ParsePrefix decodes one JSON value from the front of data and returns the
// number of bytes consumed. It is the building block for streams of
// concatenated or newline-delimited documents.
func ParsePrefix(data []byte) (Value, int, error) {
	p := parser{data: data}
	p.skipSpace()
	v, err := p.parseValue(0)
	if err != nil {
		return Value{}, p.pos, err
	}
	return v, p.pos, nil
}

type parser struct {
	data []byte
	pos  int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) parseValue(depth int) (Value, error) {
	if depth > MaxDepth {
		return Value{}, p.errf("maximum nesting depth %d exceeded", MaxDepth)
	}
	if p.pos >= len(p.data) {
		return Value{}, p.errf("unexpected end of input")
	}
	switch c := p.data[p.pos]; c {
	case '{':
		return p.parseObject(depth)
	case '[':
		return p.parseArray(depth)
	case '"':
		s, err := p.parseString()
		if err != nil {
			return Value{}, err
		}
		return StringValue(s), nil
	case 't':
		if err := p.expect("true"); err != nil {
			return Value{}, err
		}
		return BoolValue(true), nil
	case 'f':
		if err := p.expect("false"); err != nil {
			return Value{}, err
		}
		return BoolValue(false), nil
	case 'n':
		if err := p.expect("null"); err != nil {
			return Value{}, err
		}
		return NullValue(), nil
	default:
		if c == '-' || (c >= '0' && c <= '9') {
			return p.parseNumber()
		}
		return Value{}, p.errf("unexpected character %q", c)
	}
}

func (p *parser) expect(lit string) error {
	if len(p.data)-p.pos < len(lit) || string(p.data[p.pos:p.pos+len(lit)]) != lit {
		return p.errf("invalid literal, expected %q", lit)
	}
	p.pos += len(lit)
	return nil
}

func (p *parser) parseObject(depth int) (Value, error) {
	p.pos++ // '{'
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
		return ObjectValue(), nil
	}
	var members []Member
	for {
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '"' {
			return Value{}, p.errf("expected object key string")
		}
		key, err := p.parseString()
		if err != nil {
			return Value{}, err
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != ':' {
			return Value{}, p.errf("expected ':' after object key")
		}
		p.pos++
		p.skipSpace()
		v, err := p.parseValue(depth + 1)
		if err != nil {
			return Value{}, err
		}
		members = append(members, Member{Key: key, Value: v})
		p.skipSpace()
		if p.pos >= len(p.data) {
			return Value{}, p.errf("unterminated object")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return ObjectValue(members...), nil
		default:
			return Value{}, p.errf("expected ',' or '}' in object")
		}
	}
}

func (p *parser) parseArray(depth int) (Value, error) {
	p.pos++ // '['
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		p.pos++
		return ArrayValue(), nil
	}
	var elems []Value
	for {
		p.skipSpace()
		v, err := p.parseValue(depth + 1)
		if err != nil {
			return Value{}, err
		}
		elems = append(elems, v)
		p.skipSpace()
		if p.pos >= len(p.data) {
			return Value{}, p.errf("unterminated array")
		}
		switch p.data[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return ArrayValue(elems...), nil
		default:
			return Value{}, p.errf("expected ',' or ']' in array")
		}
	}
}

func (p *parser) parseString() (string, error) {
	p.pos++ // opening quote
	start := p.pos
	// Fast path: no escapes, no control characters.
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c == '"' {
			s := string(p.data[start:p.pos])
			p.pos++
			return s, nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
		p.pos++
	}
	// Slow path with escape handling.
	buf := make([]byte, 0, p.pos-start+16)
	buf = append(buf, p.data[start:p.pos]...)
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		switch {
		case c == '"':
			p.pos++
			return string(buf), nil
		case c < 0x20:
			return "", p.errf("unescaped control character 0x%02x in string", c)
		case c == '\\':
			p.pos++
			if p.pos >= len(p.data) {
				return "", p.errf("unterminated escape sequence")
			}
			switch e := p.data[p.pos]; e {
			case '"', '\\', '/':
				buf = append(buf, e)
				p.pos++
			case 'b':
				buf = append(buf, '\b')
				p.pos++
			case 'f':
				buf = append(buf, '\f')
				p.pos++
			case 'n':
				buf = append(buf, '\n')
				p.pos++
			case 'r':
				buf = append(buf, '\r')
				p.pos++
			case 't':
				buf = append(buf, '\t')
				p.pos++
			case 'u':
				r, err := p.parseUnicodeEscape()
				if err != nil {
					return "", err
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return "", p.errf("invalid escape character %q", e)
			}
		default:
			buf = append(buf, c)
			p.pos++
		}
	}
	return "", p.errf("unterminated string")
}

func (p *parser) parseUnicodeEscape() (rune, error) {
	p.pos++ // 'u'
	r1, err := p.hex4()
	if err != nil {
		return 0, err
	}
	if utf16.IsSurrogate(rune(r1)) {
		if p.pos+1 < len(p.data) && p.data[p.pos] == '\\' && p.data[p.pos+1] == 'u' {
			save := p.pos
			p.pos += 2
			r2, err := p.hex4()
			if err != nil {
				return 0, err
			}
			if r := utf16.DecodeRune(rune(r1), rune(r2)); r != utf8.RuneError {
				return r, nil
			}
			p.pos = save
		}
		return utf8.RuneError, nil
	}
	return rune(r1), nil
}

func (p *parser) hex4() (uint32, error) {
	if p.pos+4 > len(p.data) {
		return 0, p.errf("truncated \\u escape")
	}
	var r uint32
	for i := 0; i < 4; i++ {
		c := p.data[p.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | uint32(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | uint32(c-'A'+10)
		default:
			return 0, p.errf("invalid hex digit %q in \\u escape", c)
		}
	}
	p.pos += 4
	return r, nil
}

func (p *parser) parseNumber() (Value, error) {
	start := p.pos
	isFloat := false
	if p.pos < len(p.data) && p.data[p.pos] == '-' {
		p.pos++
	}
	digits := 0
	for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
		p.pos++
		digits++
	}
	if digits == 0 {
		return Value{}, p.errf("invalid number")
	}
	// Reject leading zeros ("007") per RFC 8259.
	if first := p.data[start]; digits > 1 && (first == '0' || (first == '-' && p.data[start+1] == '0')) {
		return Value{}, p.errf("number has leading zero")
	}
	if p.pos < len(p.data) && p.data[p.pos] == '.' {
		isFloat = true
		p.pos++
		fdigits := 0
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
			fdigits++
		}
		if fdigits == 0 {
			return Value{}, p.errf("missing digits after decimal point")
		}
	}
	if p.pos < len(p.data) && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E') {
		isFloat = true
		p.pos++
		if p.pos < len(p.data) && (p.data[p.pos] == '+' || p.data[p.pos] == '-') {
			p.pos++
		}
		edigits := 0
		for p.pos < len(p.data) && p.data[p.pos] >= '0' && p.data[p.pos] <= '9' {
			p.pos++
			edigits++
		}
		if edigits == 0 {
			return Value{}, p.errf("missing digits in exponent")
		}
	}
	text := string(p.data[start:p.pos])
	if !isFloat {
		if n, err := strconv.ParseInt(text, 10, 64); err == nil {
			return IntValue(n), nil
		}
		// Out of int64 range: fall through to float.
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil || math.IsInf(f, 0) {
		return Value{}, p.errf("number %q out of range", text)
	}
	return FloatValue(f), nil
}

// Decoder reads a stream of concatenated and/or newline-delimited JSON
// documents, the on-disk format of all BETZE datasets.
type Decoder struct {
	r      io.Reader
	buf    []byte
	start  int // unconsumed data begins here
	end    int // valid data ends here
	offset int // stream offset of buf[0]
	err    error
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, buf: make([]byte, 0, 64*1024)}
}

// Decode returns the next document in the stream, or io.EOF when the stream
// is exhausted.
func (d *Decoder) Decode() (Value, error) {
	for {
		d.skipBufferedSpace()
		if d.start < d.end {
			v, n, err := ParsePrefix(d.buf[d.start:d.end])
			if err == nil {
				// A parse that consumes the whole buffer is ambiguous for
				// numbers ("-2" may be the prefix of "-2.5e9"): fetch more
				// input before accepting it, unless the stream is done.
				if d.start+n == d.end && d.err == nil {
					if ferr := d.fill(); ferr == nil {
						continue
					}
				}
				d.start += n
				return v, nil
			}
			if d.err == nil {
				// The document may simply be split across reads; a parse
				// error is only authoritative once the source is exhausted.
				if ferr := d.fill(); ferr == nil {
					continue
				}
			}
			if se, ok := err.(*SyntaxError); ok {
				se.Offset += d.offset + d.start
			}
			return Value{}, err
		}
		if d.err != nil {
			return Value{}, d.err
		}
		if err := d.fill(); err != nil && d.start >= d.end {
			return Value{}, err
		}
	}
}

func (d *Decoder) skipBufferedSpace() {
	for d.start < d.end {
		switch d.buf[d.start] {
		case ' ', '\t', '\n', '\r':
			d.start++
		default:
			return
		}
	}
}

func (d *Decoder) fill() error {
	if d.err != nil {
		return d.err
	}
	if d.start > 0 {
		n := copy(d.buf[:cap(d.buf)], d.buf[d.start:d.end])
		d.offset += d.start
		d.buf = d.buf[:n]
		d.start, d.end = 0, n
	}
	if d.end == cap(d.buf) {
		grown := make([]byte, d.end, 2*cap(d.buf))
		copy(grown, d.buf[:d.end])
		d.buf = grown
	}
	n, err := d.r.Read(d.buf[d.end:cap(d.buf)])
	d.buf = d.buf[:d.end+n]
	d.end += n
	if err != nil {
		d.err = err
		if n == 0 {
			return err
		}
	}
	return nil
}
