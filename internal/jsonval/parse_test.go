package jsonval

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Value {
	t.Helper()
	v, err := Parse([]byte(s))
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return v
}

func TestParseScalars(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{`null`, NullValue()},
		{`true`, BoolValue(true)},
		{`false`, BoolValue(false)},
		{`0`, IntValue(0)},
		{`-7`, IntValue(-7)},
		{`9223372036854775807`, IntValue(math.MaxInt64)},
		{`-9223372036854775808`, IntValue(math.MinInt64)},
		{`3.25`, FloatValue(3.25)},
		{`-0.5`, FloatValue(-0.5)},
		{`1e3`, FloatValue(1000)},
		{`2E-2`, FloatValue(0.02)},
		{`1.5e+2`, FloatValue(150)},
		{`""`, StringValue("")},
		{`"hi"`, StringValue("hi")},
		{` "ws"  `, StringValue("ws")},
	}
	for _, c := range cases {
		got := mustParse(t, c.in)
		if !strictEqual(got, c.want) {
			t.Errorf("Parse(%q) = %s (kind %v), want %s (kind %v)",
				c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestParseIntFloatDistinction(t *testing.T) {
	if mustParse(t, `5`).Kind() != Int {
		t.Errorf("5 parsed as non-int")
	}
	if mustParse(t, `5.0`).Kind() != Float {
		t.Errorf("5.0 parsed as non-float")
	}
	if mustParse(t, `5e0`).Kind() != Float {
		t.Errorf("5e0 parsed as non-float")
	}
	// Integers beyond int64 degrade to float rather than failing.
	huge := mustParse(t, `92233720368547758080`)
	if huge.Kind() != Float {
		t.Errorf("out-of-range integer parsed as %v", huge.Kind())
	}
}

func TestParseStringEscapes(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{`"\n\t\r\b\f\"\\\/"`, "\n\t\r\b\f\"\\/"},
		{`"A"`, "A"},
		{`"é"`, "é"},
		{`"😀"`, "😀"}, // surrogate pair
		{`"a\u0000b"`, "a\x00b"},
	}
	for _, c := range cases {
		got := mustParse(t, c.in)
		if got.Str() != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got.Str(), c.want)
		}
	}
}

func TestParseLoneSurrogateBecomesReplacement(t *testing.T) {
	v := mustParse(t, `"\ud800x"`)
	if !strings.ContainsRune(v.Str(), '�') {
		t.Errorf("lone surrogate did not decode to U+FFFD: %q", v.Str())
	}
}

func TestParseNested(t *testing.T) {
	v := mustParse(t, `{"user":{"name":"alice","tags":[1,2.5,"x",null,true]},"n":3}`)
	name, ok := ParsePath("/user/name").Lookup(v)
	if !ok || name.Str() != "alice" {
		t.Fatalf("lookup /user/name = %v, %v", name, ok)
	}
	tags, _ := ParsePath("/user/tags").Lookup(v)
	if tags.Kind() != Array || tags.Len() != 5 {
		t.Fatalf("tags = %s", tags)
	}
	if e, _ := tags.Index(1); e.Kind() != Float || e.Float() != 2.5 {
		t.Errorf("tags[1] = %s", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `   `, `{`, `}`, `[`, `[1,`, `{"a"}`, `{"a":}`, `{"a":1,}`, // structure
		`[1 2]`, `{"a":1 "b":2}`,
		`tru`, `nul`, `falze`,
		`01`, `-01`, `1.`, `.5`, `1e`, `1e+`, `-`,
		`"abc`, `"\q"`, `"\u00g0"`, `"\u12"`, "\"raw\nnewline\"",
		`1 2`, `{} []`, // trailing data
		`+5`, `NaN`, `Infinity`, `1e999`,
	}
	for _, s := range bad {
		if v, err := Parse([]byte(s)); err == nil {
			t.Errorf("Parse(%q) succeeded with %s, want error", s, v)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error is %T, want *SyntaxError", s, err)
			}
		}
	}
}

func TestParseDepthLimit(t *testing.T) {
	deep := strings.Repeat("[", MaxDepth+2) + strings.Repeat("]", MaxDepth+2)
	if _, err := Parse([]byte(deep)); err == nil {
		t.Fatalf("expected depth-limit error")
	}
	ok := strings.Repeat("[", 50) + "1" + strings.Repeat("]", 50)
	if _, err := Parse([]byte(ok)); err != nil {
		t.Fatalf("50-deep array rejected: %v", err)
	}
}

func TestParsePrefix(t *testing.T) {
	data := []byte(`{"a":1}{"b":2}`)
	v, n, err := ParsePrefix(data)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.Field("a"); f.Int() != 1 {
		t.Errorf("first doc = %s", v)
	}
	v2, _, err := ParsePrefix(data[n:])
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v2.Field("b"); f.Int() != 2 {
		t.Errorf("second doc = %s", v2)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse([]byte(`{"a": ?}`))
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("error %v lacks offset", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(randomValue(r, 4))
	}}
	prop := func(v Value) bool {
		text := AppendJSON(nil, v)
		back, err := Parse(text)
		if err != nil {
			t.Logf("reparse of %q failed: %v", text, err)
			return false
		}
		return strictEqual(v, back)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestRoundTripPreservesKind(t *testing.T) {
	// 5.0 must stay a float through serialise/parse.
	v := FloatValue(5)
	text := string(AppendJSON(nil, v))
	if text != "5.0" {
		t.Fatalf("FloatValue(5) serialises as %q", text)
	}
	back := mustParse(t, text)
	if back.Kind() != Float {
		t.Fatalf("round-tripped 5.0 has kind %v", back.Kind())
	}
}

func TestDecoderStream(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString(`{"i":`)
		sb.WriteString(strings.Repeat("1", 1+i%5))
		sb.WriteString(`,"pad":"` + strings.Repeat("x", i*7%300) + `"}`)
		if i%3 == 0 {
			sb.WriteString("\n")
		}
	}
	d := NewDecoder(strings.NewReader(sb.String()))
	count := 0
	for {
		v, err := d.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("doc %d: %v", count, err)
		}
		if _, ok := v.Field("i"); !ok {
			t.Fatalf("doc %d missing field i: %s", count, v)
		}
		count++
	}
	if count != 100 {
		t.Fatalf("decoded %d docs, want 100", count)
	}
}

// fragmentReader returns data in tiny chunks to exercise document
// boundaries that straddle reads.
type fragmentReader struct {
	data []byte
	pos  int
	n    int
}

func (f *fragmentReader) Read(p []byte) (int, error) {
	if f.pos >= len(f.data) {
		return 0, io.EOF
	}
	n := f.n
	if n > len(f.data)-f.pos {
		n = len(f.data) - f.pos
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, f.data[f.pos:f.pos+n])
	f.pos += n
	return n, nil
}

func TestDecoderFragmentedInput(t *testing.T) {
	var data []byte
	r := rand.New(rand.NewSource(3))
	var want []Value
	for i := 0; i < 40; i++ {
		v := randomValue(r, 3)
		want = append(want, v)
		data = AppendJSON(data, v)
		data = append(data, '\n')
	}
	for _, chunk := range []int{1, 3, 7, 64} {
		d := NewDecoder(&fragmentReader{data: data, n: chunk})
		for i, w := range want {
			v, err := d.Decode()
			if err != nil {
				t.Fatalf("chunk=%d doc=%d: %v", chunk, i, err)
			}
			if !strictEqual(v, w) {
				t.Fatalf("chunk=%d doc=%d: got %s want %s", chunk, i, v, w)
			}
		}
		if _, err := d.Decode(); err != io.EOF {
			t.Fatalf("chunk=%d: expected EOF, got %v", chunk, err)
		}
	}
}

func TestDecoderMalformed(t *testing.T) {
	d := NewDecoder(strings.NewReader(`{"a":1} {"broken`))
	if _, err := d.Decode(); err != nil {
		t.Fatalf("first doc: %v", err)
	}
	if _, err := d.Decode(); err == nil || err == io.EOF {
		t.Fatalf("expected syntax error for truncated doc, got %v", err)
	}
}

func TestDecoderEmpty(t *testing.T) {
	d := NewDecoder(strings.NewReader("  \n\t "))
	if _, err := d.Decode(); err != io.EOF {
		t.Fatalf("expected EOF on whitespace-only stream, got %v", err)
	}
}

func TestDecoderLargeDocument(t *testing.T) {
	// A single document larger than the decoder's initial buffer.
	big := `{"s":"` + strings.Repeat("y", 300_000) + `"}`
	d := NewDecoder(strings.NewReader(big + "\n" + `{"t":1}`))
	v, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.Field("s"); f.Len() != 300_000 {
		t.Fatalf("big string length %d", f.Len())
	}
	if _, err := d.Decode(); err != nil {
		t.Fatalf("doc after big doc: %v", err)
	}
}
