package jsonval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParsePathNormalises(t *testing.T) {
	cases := []struct {
		in   string
		want Path
	}{
		{"", RootPath},
		{"/", RootPath},
		{"/a", Path("/a")},
		{"a", Path("/a")},
		{"/a/b/", Path("/a/b")},
		{"/user/name", Path("/user/name")},
	}
	for _, c := range cases {
		if got := ParsePath(c.in); got != c.want {
			t.Errorf("ParsePath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPathSegmentsAndDepth(t *testing.T) {
	p := ParsePath("/a/b/c")
	segs := p.Segments()
	if len(segs) != 3 || segs[0] != "a" || segs[2] != "c" {
		t.Errorf("Segments = %v", segs)
	}
	if p.Depth() != 3 {
		t.Errorf("Depth = %d", p.Depth())
	}
	if RootPath.Depth() != 0 || len(RootPath.Segments()) != 0 {
		t.Errorf("root path has segments/depth")
	}
}

func TestPathParentChildLeaf(t *testing.T) {
	p := ParsePath("/a/b")
	if p.Parent() != Path("/a") {
		t.Errorf("Parent = %q", p.Parent())
	}
	if Path("/a").Parent() != RootPath {
		t.Errorf("Parent of depth-1 path = %q", Path("/a").Parent())
	}
	if RootPath.Parent() != RootPath {
		t.Errorf("Parent of root = %q", RootPath.Parent())
	}
	if p.Child("c") != Path("/a/b/c") {
		t.Errorf("Child = %q", p.Child("c"))
	}
	if p.Leaf() != "b" {
		t.Errorf("Leaf = %q", p.Leaf())
	}
	if RootPath.Leaf() != "" {
		t.Errorf("root Leaf = %q", RootPath.Leaf())
	}
}

func TestPathAncestry(t *testing.T) {
	if !Path("/a").IsAncestorOf(Path("/a/b")) {
		t.Errorf("/a not ancestor of /a/b")
	}
	if Path("/a").IsAncestorOf(Path("/ab")) {
		t.Errorf("/a claimed ancestor of /ab")
	}
	if Path("/a/b").IsAncestorOf(Path("/a")) {
		t.Errorf("/a/b claimed ancestor of /a")
	}
	if Path("/a").IsAncestorOf(Path("/a")) {
		t.Errorf("path claimed ancestor of itself")
	}
	if !RootPath.IsAncestorOf(Path("/x")) {
		t.Errorf("root not ancestor of /x")
	}
	if RootPath.IsAncestorOf(RootPath) {
		t.Errorf("root claimed ancestor of itself")
	}
}

func TestPathString(t *testing.T) {
	if RootPath.String() != "/" {
		t.Errorf("root renders as %q", RootPath.String())
	}
	if ParsePath("/a/b").String() != "/a/b" {
		t.Errorf("path renders as %q", ParsePath("/a/b").String())
	}
}

func TestPathLookup(t *testing.T) {
	doc := mustParse(t, `{"a":{"b":{"c":42},"x":[1,2]},"top":true}`)
	cases := []struct {
		path  string
		want  Value
		found bool
	}{
		{"/a/b/c", IntValue(42), true},
		{"/top", BoolValue(true), true},
		{"/a/x", ArrayValue(IntValue(1), IntValue(2)), true},
		{"/a/b/missing", Value{}, false},
		{"/a/x/0", Value{}, false}, // paths do not index arrays
		{"/top/deeper", Value{}, false},
	}
	for _, c := range cases {
		got, ok := ParsePath(c.path).Lookup(doc)
		if ok != c.found {
			t.Errorf("Lookup(%q) found=%v, want %v", c.path, ok, c.found)
			continue
		}
		if ok && !got.Equal(c.want) {
			t.Errorf("Lookup(%q) = %s, want %s", c.path, got, c.want)
		}
	}
	if v, ok := RootPath.Lookup(doc); !ok || !v.Equal(doc) {
		t.Errorf("root lookup failed")
	}
}

func TestLookupStepsMatchesLookup(t *testing.T) {
	doc := mustParse(t, `{"a":{"b":{"c":42},"x":[1,2]},"top":true}`)
	for _, path := range []string{"/", "/a", "/a/b/c", "/top", "/a/b/missing", "/top/deeper", "/ghost"} {
		p := ParsePath(path)
		want, wantOK := p.Lookup(doc)
		got, gotOK := LookupSteps(doc, p.Steps())
		if gotOK != wantOK || (gotOK && !got.Equal(want)) {
			t.Errorf("LookupSteps(%q) = (%s, %v), Lookup = (%s, %v)", path, got, gotOK, want, wantOK)
		}
	}
}

// TestLookupStepsZeroAllocs is the allocation regression gate for the
// compiled-predicate hot path: resolving pre-split steps must not allocate,
// on a hit or on a miss.
func TestLookupStepsZeroAllocs(t *testing.T) {
	doc := mustParse(t, `{"a":{"b":{"c":42}},"top":true}`)
	hit := ParsePath("/a/b/c").Steps()
	miss := ParsePath("/a/b/nope/deeper").Steps()
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := LookupSteps(doc, hit); !ok {
			t.Fatal("hit path not found")
		}
	}); n != 0 {
		t.Errorf("LookupSteps hit allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := LookupSteps(doc, miss); ok {
			t.Fatal("miss path found")
		}
	}); n != 0 {
		t.Errorf("LookupSteps miss allocates %v per run, want 0", n)
	}
}

func TestPathParentChildInverseProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Values: func(vs []reflect.Value, r *rand.Rand) {
		depth := 1 + r.Intn(5)
		p := RootPath
		for i := 0; i < depth; i++ {
			p = p.Child(string(rune('a' + r.Intn(26))))
		}
		vs[0] = reflect.ValueOf(p)
		vs[1] = reflect.ValueOf(string(rune('a' + r.Intn(26))))
	}}
	prop := func(p Path, name string) bool {
		c := p.Child(name)
		return c.Parent() == p && c.Leaf() == name && p.IsAncestorOf(c) && c.Depth() == p.Depth()+1
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
