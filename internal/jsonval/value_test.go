package jsonval

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomValue builds an arbitrary JSON value for property tests. Nesting is
// bounded by depth.
func randomValue(r *rand.Rand, depth int) Value {
	max := 7
	if depth <= 0 {
		max = 5 // leaves only
	}
	switch r.Intn(max) {
	case 0:
		return NullValue()
	case 1:
		return BoolValue(r.Intn(2) == 0)
	case 2:
		return IntValue(r.Int63() - r.Int63())
	case 3:
		for {
			f := math.Float64frombits(r.Uint64())
			if !math.IsNaN(f) && !math.IsInf(f, 0) {
				return FloatValue(f)
			}
		}
	case 4:
		return StringValue(randomString(r))
	case 5:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return ArrayValue(elems...)
	default:
		n := r.Intn(4)
		members := make([]Member, 0, n)
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			k := randomString(r)
			if seen[k] {
				continue
			}
			seen[k] = true
			members = append(members, Member{Key: k, Value: randomValue(r, depth-1)})
		}
		return ObjectValue(members...)
	}
}

func randomString(r *rand.Rand) string {
	n := r.Intn(12)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			sb.WriteRune(rune(r.Intn(0x20))) // control chars must be escaped
		case 1:
			sb.WriteRune(rune(0x80 + r.Intn(0x2000))) // multi-byte
		case 2:
			sb.WriteRune([]rune{'"', '\\', '/', '\n'}[r.Intn(4)])
		case 3:
			sb.WriteRune(rune(0x10000 + r.Intn(0x500))) // astral plane
		default:
			sb.WriteByte(byte('a' + r.Intn(26)))
		}
	}
	return sb.String()
}

// strictEqual is like Equal but also requires identical kinds and object
// member order, i.e. exact representation equality.
func strictEqual(a, b Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case Null:
		return true
	case Bool:
		return a.Bool() == b.Bool()
	case Int:
		return a.Int() == b.Int()
	case Float:
		return a.Float() == b.Float()
	case String:
		return a.Str() == b.Str()
	case Array:
		ae, be := a.Array(), b.Array()
		if len(ae) != len(be) {
			return false
		}
		for i := range ae {
			if !strictEqual(ae[i], be[i]) {
				return false
			}
		}
		return true
	case Object:
		am, bm := a.Members(), b.Members()
		if len(am) != len(bm) {
			return false
		}
		for i := range am {
			if am[i].Key != bm[i].Key || !strictEqual(am[i].Value, bm[i].Value) {
				return false
			}
		}
		return true
	}
	return false
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Null: "null", Bool: "bool", Int: "int", Float: "float",
		String: "string", Object: "object", Array: "array",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != Null {
		t.Fatalf("zero Value is not null: kind=%v", v.Kind())
	}
	if v.String() != "null" {
		t.Fatalf("zero Value renders as %q", v.String())
	}
}

func TestAccessorsPanicOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Int() on a string did not panic")
		}
	}()
	_ = StringValue("x").Int()
}

func TestFieldLookup(t *testing.T) {
	obj := ObjectValue(
		Member{"a", IntValue(1)},
		Member{"b", StringValue("two")},
	)
	if v, ok := obj.Field("b"); !ok || v.Str() != "two" {
		t.Errorf("Field(b) = %v, %v", v, ok)
	}
	if _, ok := obj.Field("missing"); ok {
		t.Errorf("Field(missing) unexpectedly found")
	}
	if _, ok := IntValue(1).Field("a"); ok {
		t.Errorf("Field on non-object unexpectedly found")
	}
}

func TestIndex(t *testing.T) {
	arr := ArrayValue(IntValue(10), IntValue(20))
	if v, ok := arr.Index(1); !ok || v.Int() != 20 {
		t.Errorf("Index(1) = %v, %v", v, ok)
	}
	if _, ok := arr.Index(2); ok {
		t.Errorf("Index(2) out of range but found")
	}
	if _, ok := arr.Index(-1); ok {
		t.Errorf("Index(-1) out of range but found")
	}
	if _, ok := StringValue("x").Index(0); ok {
		t.Errorf("Index on non-array unexpectedly found")
	}
}

func TestLen(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{ArrayValue(IntValue(1), IntValue(2)), 2},
		{ObjectValue(Member{"a", NullValue()}), 1},
		{StringValue("abc"), 3},
		{IntValue(5), 0},
		{NullValue(), 0},
	}
	for _, c := range cases {
		if got := c.v.Len(); got != c.want {
			t.Errorf("Len(%s) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestEqualNumericCrossKind(t *testing.T) {
	if !IntValue(5).Equal(FloatValue(5.0)) {
		t.Errorf("5 != 5.0")
	}
	if IntValue(5).Equal(FloatValue(5.5)) {
		t.Errorf("5 == 5.5")
	}
	if IntValue(5).Equal(StringValue("5")) {
		t.Errorf("5 == \"5\"")
	}
}

func TestEqualObjectsOrderInsensitive(t *testing.T) {
	a := ObjectValue(Member{"x", IntValue(1)}, Member{"y", IntValue(2)})
	b := ObjectValue(Member{"y", IntValue(2)}, Member{"x", IntValue(1)})
	if !a.Equal(b) {
		t.Errorf("order-permuted objects not Equal")
	}
	c := ObjectValue(Member{"x", IntValue(1)}, Member{"z", IntValue(2)})
	if a.Equal(c) {
		t.Errorf("objects with different keys Equal")
	}
}

func TestEqualArrays(t *testing.T) {
	a := ArrayValue(IntValue(1), StringValue("s"))
	if !a.Equal(ArrayValue(IntValue(1), StringValue("s"))) {
		t.Errorf("identical arrays not Equal")
	}
	if a.Equal(ArrayValue(StringValue("s"), IntValue(1))) {
		t.Errorf("reordered arrays Equal")
	}
	if a.Equal(ArrayValue(IntValue(1))) {
		t.Errorf("different-length arrays Equal")
	}
}

func TestCompareOrdersNumbers(t *testing.T) {
	if IntValue(3).Compare(FloatValue(3.5)) >= 0 {
		t.Errorf("3 >= 3.5")
	}
	if FloatValue(4.0).Compare(IntValue(4)) != 0 {
		t.Errorf("4.0 != 4 under Compare")
	}
	if StringValue("a").Compare(StringValue("b")) >= 0 {
		t.Errorf("a >= b")
	}
	if BoolValue(false).Compare(BoolValue(true)) >= 0 {
		t.Errorf("false >= true")
	}
	if NullValue().Compare(NullValue()) != 0 {
		t.Errorf("null != null")
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b := randomValue(r, 2), randomValue(r, 2)
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("Compare not antisymmetric for %s vs %s", a, b)
		}
	}
}

func TestGroupKeyDistinguishes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a, b := randomValue(r, 2), randomValue(r, 2)
		ka, kb := a.GroupKey(), b.GroupKey()
		if a.Equal(b) && ka != kb {
			t.Fatalf("equal values with different group keys: %s vs %s", a, b)
		}
		if !a.Equal(b) && ka == kb {
			t.Fatalf("distinct values with same group key %q: %s vs %s", ka, a, b)
		}
	}
}

func TestGroupKeyIntFloatAlignment(t *testing.T) {
	if IntValue(7).GroupKey() != FloatValue(7.0).GroupKey() {
		t.Errorf("7 and 7.0 should share a group key")
	}
	if IntValue(7).GroupKey() == FloatValue(7.5).GroupKey() {
		t.Errorf("7 and 7.5 must not share a group key")
	}
}

func TestGroupKeyStringEmbedding(t *testing.T) {
	// Length prefixes must prevent ambiguous concatenations.
	a := ArrayValue(StringValue("ab"), StringValue("c"))
	b := ArrayValue(StringValue("a"), StringValue("bc"))
	if a.GroupKey() == b.GroupKey() {
		t.Errorf("[ab,c] and [a,bc] share a group key")
	}
}

func TestEqualPropertyReflexive(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(randomValue(r, 3))
	}}
	if err := quick.Check(func(v Value) bool { return v.Equal(v) }, cfg); err != nil {
		t.Error(err)
	}
}
