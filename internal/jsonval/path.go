package jsonval

import (
	"strings"
)

// Path addresses a nested attribute inside a JSON document, in the
// slash-separated JSON-pointer-like notation used throughout the paper
// (e.g. "/retweeted_status/user/verified"). The empty path "" addresses the
// document root. BETZE paths never index into arrays: the analyzer treats
// arrays as leaves described by their size statistics.
type Path string

// RootPath addresses the document itself.
const RootPath Path = ""

// ParsePath validates and normalises a slash-separated path string.
func ParsePath(s string) Path {
	if s == "" || s == "/" {
		return RootPath
	}
	if !strings.HasPrefix(s, "/") {
		s = "/" + s
	}
	return Path(strings.TrimSuffix(s, "/"))
}

// Segments splits the path into its attribute names. The root path has no
// segments.
func (p Path) Segments() []string {
	if p == RootPath {
		return nil
	}
	return strings.Split(strings.TrimPrefix(string(p), "/"), "/")
}

// Steps pre-resolves the path into its step slice for repeated lookups.
// Splitting happens once here; pairing the result with LookupSteps keeps the
// per-document hot path free of string scanning and allocation. Compiled
// predicates (internal/query) resolve their paths through Steps at compile
// time.
func (p Path) Steps() []string {
	return p.Segments()
}

// LookupSteps resolves a pre-split step slice (from Path.Steps) inside doc.
// It is the allocation-free equivalent of Path.Lookup: the per-call work is
// one Field walk per step, nothing else. An empty step slice addresses the
// document root.
func LookupSteps(doc Value, steps []string) (Value, bool) {
	v := doc
	for _, seg := range steps {
		var ok bool
		v, ok = v.Field(seg)
		if !ok {
			return Value{}, false
		}
	}
	return v, true
}

// Depth is the number of attribute names in the path; the root has depth 0.
func (p Path) Depth() int {
	if p == RootPath {
		return 0
	}
	return strings.Count(string(p), "/")
}

// Child extends the path with one attribute name.
func (p Path) Child(name string) Path {
	return p + Path("/"+name)
}

// Parent returns the enclosing path; the parent of a depth-1 path (and of
// the root) is the root.
func (p Path) Parent() Path {
	i := strings.LastIndexByte(string(p), '/')
	if i <= 0 {
		return RootPath
	}
	return p[:i]
}

// Leaf returns the final attribute name, or "" for the root.
func (p Path) Leaf() string {
	i := strings.LastIndexByte(string(p), '/')
	if i < 0 {
		return ""
	}
	return string(p[i+1:])
}

// IsAncestorOf reports whether p is a proper ancestor of q.
func (p Path) IsAncestorOf(q Path) bool {
	if p == RootPath {
		return q != RootPath
	}
	return len(q) > len(p) && strings.HasPrefix(string(q), string(p)) && q[len(p)] == '/'
}

// String returns the slash-separated form; the root renders as "/".
func (p Path) String() string {
	if p == RootPath {
		return "/"
	}
	return string(p)
}

// Lookup resolves the path inside doc. It returns false if any segment is
// missing or traverses a non-object.
func (p Path) Lookup(doc Value) (Value, bool) {
	v := doc
	if p == RootPath {
		return v, true
	}
	s := string(p)
	for len(s) > 0 {
		s = s[1:] // leading '/'
		i := strings.IndexByte(s, '/')
		var seg string
		if i < 0 {
			seg, s = s, ""
		} else {
			seg, s = s[:i], s[i:]
		}
		var ok bool
		v, ok = v.Field(seg)
		if !ok {
			return Value{}, false
		}
	}
	return v, true
}
