package jsonval

// ScanValue reports the length in bytes of the first complete JSON value in
// data, including leading whitespace, without building a value tree. It
// returns 0 when data holds only the prefix of a value; atEOF indicates no
// further input will arrive, which resolves the ambiguity of top-level
// numbers ("12" may be the prefix of "123").
//
// The scanner validates only as much structure as boundary detection needs;
// callers parse the returned chunk for full validation. A chunk that cannot
// even be scanned yields a SyntaxError.
func ScanValue(data []byte, atEOF bool) (int, error) {
	i := 0
	for i < len(data) && isSpace(data[i]) {
		i++
	}
	if i == len(data) {
		return 0, nil
	}
	switch c := data[i]; {
	case c == '{' || c == '[':
		n, err := scanComposite(data[i:])
		if n == 0 || err != nil {
			return 0, err
		}
		return i + n, nil
	case c == '"':
		n, err := scanString(data[i:])
		if n == 0 || err != nil {
			return 0, err
		}
		return i + n, nil
	case c == 't':
		return scanLiteral(data, i, "true", atEOF)
	case c == 'f':
		return scanLiteral(data, i, "false", atEOF)
	case c == 'n':
		return scanLiteral(data, i, "null", atEOF)
	case c == '-' || (c >= '0' && c <= '9'):
		j := i
		for j < len(data) && isNumberChar(data[j]) {
			j++
		}
		if j == len(data) && !atEOF {
			return 0, nil // may continue in the next read
		}
		return j, nil
	default:
		return 0, &SyntaxError{Offset: i, Msg: "unexpected character at document start"}
	}
}

func scanLiteral(data []byte, i int, lit string, atEOF bool) (int, error) {
	avail := len(data) - i
	if avail > len(lit) {
		avail = len(lit)
	}
	if string(data[i:i+avail]) != lit[:avail] {
		return 0, &SyntaxError{Offset: i, Msg: "invalid literal"}
	}
	if avail < len(lit) {
		if atEOF {
			return 0, &SyntaxError{Offset: i, Msg: "truncated literal"}
		}
		return 0, nil
	}
	return i + len(lit), nil
}

// scanComposite walks an object or array, tracking nesting depth and string
// state. It returns 0 when data ends inside the value.
func scanComposite(data []byte) (int, error) {
	depth := 0
	i := 0
	for i < len(data) {
		switch data[i] {
		case '{', '[':
			depth++
			i++
		case '}', ']':
			depth--
			i++
			if depth == 0 {
				return i, nil
			}
			if depth < 0 {
				return 0, &SyntaxError{Offset: i, Msg: "unbalanced closing bracket"}
			}
		case '"':
			n, err := scanString(data[i:])
			if err != nil {
				return 0, err
			}
			if n == 0 {
				return 0, nil
			}
			i += n
		default:
			i++
		}
	}
	return 0, nil
}

// scanString returns the byte length of the string literal at the start of
// data (including quotes), or 0 if it is unterminated.
func scanString(data []byte) (int, error) {
	for i := 1; i < len(data); i++ {
		switch data[i] {
		case '\\':
			i++ // skip escaped character (may be the closing quote)
		case '"':
			return i + 1, nil
		}
	}
	return 0, nil
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isNumberChar(c byte) bool {
	return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'
}
