package jsonval

import (
	"math/rand"
	"testing"
)

func TestScanValueBasics(t *testing.T) {
	cases := []struct {
		in    string
		atEOF bool
		want  int
	}{
		{`{"a":1}`, false, 7},
		{`  {"a":1}`, false, 9},
		{`[1,2,3]rest`, false, 7},
		{`"str"x`, false, 5},
		{`"with \" quote"`, false, 15},
		{`true,`, false, 4},
		{`false`, false, 5},
		{`null `, false, 4},
		{`123 `, false, 3},
		{`123`, false, 0}, // number may continue
		{`123`, true, 3},
		{`-1.5e3,`, false, 6},
		{`{"a":`, false, 0},     // incomplete object
		{`"unterm`, false, 0},   // incomplete string
		{`tr`, false, 0},        // incomplete literal
		{`{"s":"}"}`, false, 9}, // brace inside string
	}
	for _, c := range cases {
		got, err := ScanValue([]byte(c.in), c.atEOF)
		if err != nil {
			t.Errorf("ScanValue(%q, %v) error: %v", c.in, c.atEOF, err)
			continue
		}
		if got != c.want {
			t.Errorf("ScanValue(%q, %v) = %d, want %d", c.in, c.atEOF, got, c.want)
		}
	}
}

func TestScanValueErrors(t *testing.T) {
	bad := []struct {
		in    string
		atEOF bool
	}{
		{`?`, false},
		{`}`, false},
		{`trX`, false},
		{`tr`, true},
	}
	for _, c := range bad {
		if n, err := ScanValue([]byte(c.in), c.atEOF); err == nil {
			t.Errorf("ScanValue(%q, %v) = %d with no error", c.in, c.atEOF, n)
		}
	}
}

func TestScanValueWhitespaceOnly(t *testing.T) {
	if n, err := ScanValue([]byte("  \n "), true); n != 0 || err != nil {
		t.Errorf("whitespace-only scan = %d, %v", n, err)
	}
}

func TestScanValueAgreesWithParsePrefix(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 500; i++ {
		v := randomValue(r, 3)
		data := AppendJSON(nil, v)
		data = append(data, " {\"next\":1}"...) // ensure non-EOF boundary
		n, err := ScanValue(data, false)
		if err != nil {
			t.Fatalf("scan of %q: %v", data, err)
		}
		_, pn, perr := ParsePrefix(data)
		if perr != nil {
			t.Fatalf("parse of %q: %v", data, perr)
		}
		if n != pn {
			t.Fatalf("scan length %d != parse length %d for %q", n, pn, data)
		}
	}
}
