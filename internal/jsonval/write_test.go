package jsonval

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAppendJSONScalars(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue(), "null"},
		{BoolValue(true), "true"},
		{BoolValue(false), "false"},
		{IntValue(-42), "-42"},
		{FloatValue(2.5), "2.5"},
		{FloatValue(3), "3.0"},
		{FloatValue(1e21), "1e+21"},
		{StringValue("plain"), `"plain"`},
		{StringValue("say \"hi\"\n"), `"say \"hi\"\n"`},
		{ArrayValue(), "[]"},
		{ObjectValue(), "{}"},
		{ArrayValue(IntValue(1), StringValue("x")), `[1,"x"]`},
		{ObjectValue(Member{"k", NullValue()}), `{"k":null}`},
	}
	for _, c := range cases {
		if got := string(AppendJSON(nil, c.v)); got != c.want {
			t.Errorf("AppendJSON(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestAppendJSONNonFiniteFloats(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := string(AppendJSON(nil, FloatValue(f))); got != "null" {
			t.Errorf("AppendJSON(%v) = %q, want null", f, got)
		}
	}
}

func TestAppendQuotedControlChars(t *testing.T) {
	got := string(AppendQuoted(nil, "a\x00b\x1fc"))
	if got != `"a\u0000b\u001fc"` {
		t.Errorf("control chars escaped as %q", got)
	}
}

func TestAppendQuotedInvalidUTF8(t *testing.T) {
	got := string(AppendQuoted(nil, "ok\xffend"))
	if !strings.Contains(got, "�") {
		t.Errorf("invalid byte not replaced: %q", got)
	}
	if _, err := Parse([]byte(got)); err != nil {
		t.Errorf("escaped invalid UTF-8 does not reparse: %v", err)
	}
}

func TestWriteAppendsNewline(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, ObjectValue(Member{"a", IntValue(1)})); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "{\"a\":1}\n" {
		t.Errorf("Write produced %q", buf.String())
	}
}

func TestStringMethodMatchesAppendJSON(t *testing.T) {
	v := ObjectValue(Member{"a", ArrayValue(IntValue(1), FloatValue(2.5))})
	if v.String() != string(AppendJSON(nil, v)) {
		t.Errorf("String() diverges from AppendJSON")
	}
}
