// Package jsonval provides a typed JSON value model used throughout BETZE.
//
// Unlike encoding/json's interface{} representation, jsonval distinguishes
// integer from floating-point numbers (the dataset analyzer keeps separate
// statistics for them, cf. §IV-A of the paper) and preserves object member
// order, which keeps serialisation deterministic for seeded benchmark runs.
package jsonval

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the JSON types recognised by BETZE.
type Kind uint8

// The seven kinds. Int and Float are both JSON numbers; the parser assigns
// Int to numbers without fraction or exponent that fit in int64.
const (
	Null Kind = iota
	Bool
	Int
	Float
	String
	Object
	Array
)

// String returns the lower-case name of the kind, matching the type names
// used in BETZE analysis files.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Object:
		return "object"
	case Array:
		return "array"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Member is a single key/value pair of a JSON object.
type Member struct {
	Key   string
	Value Value
}

// Value is an immutable JSON value. The zero Value is JSON null.
type Value struct {
	kind Kind
	b    bool
	n    int64   // Int payload
	f    float64 // Float payload
	s    string  // String payload
	arr  []Value
	obj  []Member
}

// Constructors.

// NullValue returns the JSON null value.
func NullValue() Value { return Value{kind: Null} }

// BoolValue returns a JSON boolean.
func BoolValue(b bool) Value { return Value{kind: Bool, b: b} }

// IntValue returns a JSON integer number.
func IntValue(n int64) Value { return Value{kind: Int, n: n} }

// FloatValue returns a JSON floating-point number.
func FloatValue(f float64) Value { return Value{kind: Float, f: f} }

// StringValue returns a JSON string.
func StringValue(s string) Value { return Value{kind: String, s: s} }

// ArrayValue returns a JSON array wrapping elems. The slice is not copied;
// callers must not mutate it afterwards.
func ArrayValue(elems ...Value) Value { return Value{kind: Array, arr: elems} }

// ObjectValue returns a JSON object with the given members in order. The
// slice is not copied; callers must not mutate it afterwards.
func ObjectValue(members ...Member) Value { return Value{kind: Object, obj: members} }

// Kind reports the JSON type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is JSON null.
func (v Value) IsNull() bool { return v.kind == Null }

// Bool returns the boolean payload; it panics unless Kind is Bool.
func (v Value) Bool() bool {
	v.mustBe(Bool)
	return v.b
}

// Int returns the integer payload; it panics unless Kind is Int.
func (v Value) Int() int64 {
	v.mustBe(Int)
	return v.n
}

// Float returns the floating-point payload; it panics unless Kind is Float.
func (v Value) Float() float64 {
	v.mustBe(Float)
	return v.f
}

// Number returns the numeric payload as float64 for Int or Float kinds.
func (v Value) Number() (float64, bool) {
	switch v.kind {
	case Int:
		return float64(v.n), true
	case Float:
		return v.f, true
	default:
		return 0, false
	}
}

// Str returns the string payload; it panics unless Kind is String.
func (v Value) Str() string {
	v.mustBe(String)
	return v.s
}

// Array returns the element slice; it panics unless Kind is Array. The
// returned slice must not be mutated.
func (v Value) Array() []Value {
	v.mustBe(Array)
	return v.arr
}

// Members returns the member slice; it panics unless Kind is Object. The
// returned slice must not be mutated.
func (v Value) Members() []Member {
	v.mustBe(Object)
	return v.obj
}

// Len returns the number of elements (Array), members (Object) or bytes
// (String). Other kinds have length 0.
func (v Value) Len() int {
	switch v.kind {
	case Array:
		return len(v.arr)
	case Object:
		return len(v.obj)
	case String:
		return len(v.s)
	default:
		return 0
	}
}

// Field looks up a direct member of an object by key. It returns false if v
// is not an object or the key is absent. Lookup is linear: BETZE documents
// have small fan-out and member order is semantically meaningful.
func (v Value) Field(key string) (Value, bool) {
	if v.kind != Object {
		return Value{}, false
	}
	// Index rather than range: a Member is over a hundred bytes, and the
	// per-iteration copy a range would make dominates scan profiles.
	for i := range v.obj {
		if v.obj[i].Key == key {
			return v.obj[i].Value, true
		}
	}
	return Value{}, false
}

// Index returns the i-th array element.
func (v Value) Index(i int) (Value, bool) {
	if v.kind != Array || i < 0 || i >= len(v.arr) {
		return Value{}, false
	}
	return v.arr[i], true
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("jsonval: %s value accessed as %s", v.kind, k))
	}
}

// Equal reports deep equality. Int and Float compare equal when they denote
// the same mathematical number (5 == 5.0), matching how BETZE predicates
// treat JSON numbers. Objects compare member-order-insensitively.
func (v Value) Equal(w Value) bool {
	if nv, ok := v.Number(); ok {
		nw, okw := w.Number()
		return okw && nv == nw
	}
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case Null:
		return true
	case Bool:
		return v.b == w.b
	case String:
		return v.s == w.s
	case Array:
		if len(v.arr) != len(w.arr) {
			return false
		}
		for i := range v.arr {
			if !v.arr[i].Equal(w.arr[i]) {
				return false
			}
		}
		return true
	case Object:
		if len(v.obj) != len(w.obj) {
			return false
		}
		for _, m := range v.obj {
			wv, ok := w.Field(m.Key)
			if !ok || !m.Value.Equal(wv) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders two values for deterministic sorting of aggregation groups.
// Values of different kinds order by kind; numbers compare numerically across
// Int/Float.
func (v Value) Compare(w Value) int {
	nv, okv := v.Number()
	nw, okw := w.Number()
	if okv && okw {
		switch {
		case nv < nw:
			return -1
		case nv > nw:
			return 1
		default:
			return 0
		}
	}
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case Null:
		return 0
	case Bool:
		if v.b == w.b {
			return 0
		}
		if !v.b {
			return -1
		}
		return 1
	case String:
		return strings.Compare(v.s, w.s)
	case Array:
		for i := 0; i < len(v.arr) && i < len(w.arr); i++ {
			if c := v.arr[i].Compare(w.arr[i]); c != 0 {
				return c
			}
		}
		return len(v.arr) - len(w.arr)
	case Object:
		// Compare canonical serialisations; objects rarely act as group keys.
		return strings.Compare(v.String(), w.String())
	default:
		return 0
	}
}

// GroupKey returns a string that uniquely identifies the value for use as an
// aggregation group key. Distinct values map to distinct keys.
func (v Value) GroupKey() string {
	var sb strings.Builder
	v.groupKey(&sb)
	return sb.String()
}

func (v Value) groupKey(sb *strings.Builder) {
	switch v.kind {
	case Null:
		sb.WriteString("n")
	case Bool:
		if v.b {
			sb.WriteString("t")
		} else {
			sb.WriteString("f")
		}
	case Int:
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(v.n, 10))
	case Float:
		if v.f == math.Trunc(v.f) && math.Abs(v.f) < 1e15 {
			// Align with equal ints so 5 and 5.0 group together.
			sb.WriteByte('i')
			sb.WriteString(strconv.FormatInt(int64(v.f), 10))
			return
		}
		sb.WriteByte('d')
		sb.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
	case String:
		sb.WriteByte('s')
		sb.WriteString(strconv.Itoa(len(v.s)))
		sb.WriteByte(':')
		sb.WriteString(v.s)
	case Array:
		sb.WriteByte('[')
		for _, e := range v.arr {
			e.groupKey(sb)
			sb.WriteByte(',')
		}
		sb.WriteByte(']')
	case Object:
		// Canonical order so member order does not split groups.
		keys := make([]string, len(v.obj))
		for i, m := range v.obj {
			keys[i] = m.Key
		}
		sort.Strings(keys)
		sb.WriteByte('{')
		for _, k := range keys {
			mv, _ := v.Field(k)
			sb.WriteString(strconv.Itoa(len(k)))
			sb.WriteByte(':')
			sb.WriteString(k)
			sb.WriteByte('=')
			mv.groupKey(sb)
			sb.WriteByte(',')
		}
		sb.WriteByte('}')
	}
}

// String renders the value as compact JSON text.
func (v Value) String() string {
	var sb strings.Builder
	writeValue(&sb, v)
	return sb.String()
}
