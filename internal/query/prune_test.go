package query

import (
	"math/rand"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
)

// fakeZone is a hand-built Zone for exercising prune logic without the shard
// package (which depends on this one).
type fakeZone struct {
	paths    map[string]PathSummary
	complete bool
}

func (z fakeZone) Summary(path string) (PathSummary, bool) {
	s, ok := z.paths[path]
	return s, ok
}

func (z fakeZone) Complete() bool { return z.complete }

func numSummary(lo, hi float64) PathSummary {
	return PathSummary{Kinds: MaskOf(jsonval.Int) | MaskOf(jsonval.Float), NumMin: lo, NumMax: hi}
}

func strSummary(complete bool, dict ...string) PathSummary {
	return PathSummary{Kinds: MaskOf(jsonval.String), Dict: dict, DictComplete: complete}
}

func boolSummary(seenTrue, seenFalse bool) PathSummary {
	return PathSummary{Kinds: MaskOf(jsonval.Bool), TrueSeen: seenTrue, FalseSeen: seenFalse}
}

func arrSummary(lo, hi int) PathSummary {
	return PathSummary{Kinds: MaskOf(jsonval.Array), ArrMin: lo, ArrMax: hi}
}

func objSummary(lo, hi int) PathSummary {
	return PathSummary{Kinds: MaskOf(jsonval.Object), ObjMin: lo, ObjMax: hi}
}

func TestCanSkipLeafRules(t *testing.T) {
	zone := fakeZone{
		complete: true,
		paths: map[string]PathSummary{
			"/num":  numSummary(10, 20),
			"/str":  strSummary(true, "berlin", "bonn", "munich"),
			"/open": strSummary(false),
			"/flag": boolSummary(true, false),
			"/only": boolSummary(false, true),
			"/arr":  arrSummary(2, 5),
			"/obj":  objSummary(1, 3),
		},
	}
	incomplete := fakeZone{complete: false, paths: zone.paths}

	cases := []struct {
		name string
		pred Predicate
		zone Zone
		want bool
	}{
		{"exists-present", Exists{Path: "/num"}, zone, false},
		{"exists-absent-complete", Exists{Path: "/gone"}, zone, true},
		{"exists-absent-incomplete", Exists{Path: "/gone"}, incomplete, false},
		{"isstring-on-number", IsString{Path: "/num"}, zone, true},
		{"isstring-on-string", IsString{Path: "/str"}, zone, false},
		{"inteq-inside-range", IntEq{Path: "/num", Value: 15}, zone, false},
		{"inteq-outside-range", IntEq{Path: "/num", Value: 21}, zone, true},
		{"inteq-on-string", IntEq{Path: "/str", Value: 1}, zone, true},
		{"floatcmp-lt-satisfiable", FloatCmp{Path: "/num", Op: Lt, Value: 10.5}, zone, false},
		{"floatcmp-lt-empty", FloatCmp{Path: "/num", Op: Lt, Value: 10}, zone, true},
		{"floatcmp-le-boundary", FloatCmp{Path: "/num", Op: Le, Value: 10}, zone, false},
		{"floatcmp-gt-empty", FloatCmp{Path: "/num", Op: Gt, Value: 20}, zone, true},
		{"floatcmp-ge-boundary", FloatCmp{Path: "/num", Op: Ge, Value: 20}, zone, false},
		{"floatcmp-eq-inside", FloatCmp{Path: "/num", Op: Eq, Value: 20}, zone, false},
		{"floatcmp-eq-outside", FloatCmp{Path: "/num", Op: Eq, Value: 9.99}, zone, true},
		{"streq-in-dict", StrEq{Path: "/str", Value: "bonn"}, zone, false},
		{"streq-not-in-dict", StrEq{Path: "/str", Value: "boston"}, zone, true},
		{"streq-dict-overflowed", StrEq{Path: "/open", Value: "anything"}, zone, false},
		{"hasprefix-hit", HasPrefix{Path: "/str", Prefix: "bo"}, zone, false},
		{"hasprefix-miss", HasPrefix{Path: "/str", Prefix: "z"}, zone, true},
		{"hasprefix-dict-overflowed", HasPrefix{Path: "/open", Prefix: "z"}, zone, false},
		{"booleq-seen", BoolEq{Path: "/flag", Value: true}, zone, false},
		{"booleq-unseen", BoolEq{Path: "/only", Value: true}, zone, true},
		{"booleq-on-number", BoolEq{Path: "/num", Value: true}, zone, true},
		{"arrsize-satisfiable", ArrSize{Path: "/arr", Op: Ge, Value: 5}, zone, false},
		{"arrsize-empty", ArrSize{Path: "/arr", Op: Gt, Value: 5}, zone, true},
		{"arrsize-on-object", ArrSize{Path: "/obj", Op: Ge, Value: 0}, zone, true},
		{"objsize-satisfiable", ObjSize{Path: "/obj", Op: Eq, Value: 2}, zone, false},
		{"objsize-empty", ObjSize{Path: "/obj", Op: Lt, Value: 1}, zone, true},
	}
	for _, tc := range cases {
		if got := Compile(tc.pred).CanSkip(tc.zone); got != tc.want {
			t.Errorf("%s: CanSkip = %v, want %v (pred %s)", tc.name, got, tc.want, tc.pred)
		}
	}
}

func TestCanSkipCombinators(t *testing.T) {
	zone := fakeZone{
		complete: true,
		paths:    map[string]PathSummary{"/num": numSummary(10, 20)},
	}
	hit := FloatCmp{Path: "/num", Op: Ge, Value: 15}  // satisfiable
	miss := FloatCmp{Path: "/num", Op: Gt, Value: 99} // provably empty

	if !Compile(And{Left: hit, Right: miss}).CanSkip(zone) {
		t.Error("AND with one provably-empty operand did not skip")
	}
	if Compile(Or{Left: hit, Right: miss}).CanSkip(zone) {
		t.Error("OR with one satisfiable operand skipped")
	}
	if !Compile(Or{Left: miss, Right: miss}).CanSkip(zone) {
		t.Error("OR with both operands provably empty did not skip")
	}

	// An external (unknown) leaf type can never prune, and it poisons OR but
	// not AND.
	ext := opaquePredicate{}
	if Compile(ext).CanSkip(zone) {
		t.Error("external leaf pruned")
	}
	if Compile(Or{Left: miss, Right: ext}).CanSkip(zone) {
		t.Error("OR over an external leaf pruned")
	}
	if !Compile(And{Left: miss, Right: ext}).CanSkip(zone) {
		t.Error("AND with a provably-empty operand and an external leaf did not skip")
	}
}

// opaquePredicate is a leaf type the compiler knows nothing about.
type opaquePredicate struct{}

func (opaquePredicate) Eval(jsonval.Value) bool { return true }
func (opaquePredicate) String() string          { return "OPAQUE" }

func TestCanSkipConstantsAndNil(t *testing.T) {
	zone := fakeZone{complete: true, paths: map[string]PathSummary{}}

	// Folded-false predicates skip every shard without consulting the zone.
	if !Compile(ArrSize{Path: "/a", Op: Lt, Value: 0}).CanSkip(zone) {
		t.Error("constant-false predicate did not skip")
	}
	// Folded-true (EXISTS on the root) and match-everything forms never skip.
	if Compile(Exists{Path: jsonval.RootPath}).CanSkip(zone) {
		t.Error("constant-true predicate skipped")
	}
	if Compile(nil).CanSkip(zone) {
		t.Error("Compile(nil) skipped")
	}
	var zero CompiledPredicate
	if zero.CanSkip(zone) {
		t.Error("zero CompiledPredicate skipped")
	}
	if Compile(Exists{Path: "/a"}).CanSkip(nil) {
		t.Error("nil zone skipped")
	}
}

// TestCanSkipRootPathLeaves covers leaves addressing the document root: the
// zone map summarises the root value under "/".
func TestCanSkipRootPathLeaves(t *testing.T) {
	zone := fakeZone{
		complete: true,
		paths:    map[string]PathSummary{"/": objSummary(2, 4)},
	}
	if Compile(ObjSize{Path: jsonval.RootPath, Op: Ge, Value: 3}).CanSkip(zone) {
		t.Error("satisfiable root OBJSIZE skipped")
	}
	if !Compile(ObjSize{Path: jsonval.RootPath, Op: Gt, Value: 4}).CanSkip(zone) {
		t.Error("provably-empty root OBJSIZE did not skip")
	}
	if !Compile(IsString{Path: jsonval.RootPath}).CanSkip(zone) {
		t.Error("ISSTRING on an all-object root did not skip")
	}
}

// TestEvalBlockMatchesEval is the batch-vs-scalar differential: EvalBlock
// over a block must agree document-for-document with Eval, across random
// predicates and block sizes (empty, one, odd).
func TestEvalBlockMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for round := 0; round < 200; round++ {
		p := randomPredicate(r, 3)
		c := Compile(p)
		n := []int{0, 1, 7, 33}[round%4]
		docs := make([]jsonval.Value, n)
		for i := range docs {
			docs[i] = randomSmallDoc(r)
		}
		keep := make([]bool, n)
		got := c.Evaluator().EvalBlock(docs, keep)
		want := 0
		for i, d := range docs {
			m := p.Eval(d)
			if m {
				want++
			}
			if keep[i] != m {
				t.Fatalf("round %d doc %d: EvalBlock=%v Eval=%v for %s", round, i, keep[i], m, p)
			}
		}
		if got != want {
			t.Fatalf("round %d: EvalBlock count %d, want %d", round, got, want)
		}
	}
}

func TestEvalBlockNilFilterKeepsEverything(t *testing.T) {
	docs := []jsonval.Value{jsonval.IntValue(1), jsonval.IntValue(2)}
	keep := make([]bool, 4)
	keep[2] = false
	if got := Compile(nil).Evaluator().EvalBlock(docs, keep); got != 2 {
		t.Fatalf("EvalBlock = %d, want 2", got)
	}
	if !keep[0] || !keep[1] {
		t.Error("nil-filter EvalBlock left keep flags unset")
	}
}

func TestEvalBlockPanicsOnShortKeepBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EvalBlock with a short keep buffer did not panic")
		}
	}()
	docs := []jsonval.Value{jsonval.IntValue(1), jsonval.IntValue(2)}
	Compile(Exists{Path: "/a"}).Evaluator().EvalBlock(docs, make([]bool, 1))
}

// TestEvalBlockZeroAllocs is the hot-path gate: batch evaluation must not
// allocate, whatever mix of trie slots, root paths and fused leaves the
// predicate compiled into.
func TestEvalBlockZeroAllocs(t *testing.T) {
	preds := []Predicate{
		FloatCmp{Path: "/score", Op: Gt, Value: 50},
		And{
			Left:  StrEq{Path: "/user/name", Value: "u3"},
			Right: Or{Left: BoolEq{Path: "/active", Value: true}, Right: ArrSize{Path: "/tags", Op: Ge, Value: 1}},
		},
		ObjSize{Path: "/", Op: Ge, Value: 1},
	}
	r := rand.New(rand.NewSource(67))
	docs := make([]jsonval.Value, 64)
	for i := range docs {
		docs[i] = randomSmallDoc(r)
	}
	keep := make([]bool, len(docs))
	for _, p := range preds {
		e := Compile(p).Evaluator()
		e.EvalBlock(docs, keep) // warm up
		if n := testing.AllocsPerRun(100, func() { e.EvalBlock(docs, keep) }); n != 0 {
			t.Errorf("EvalBlock allocates %.1f/op for %s", n, p)
		}
	}
}
