package query

import (
	"fmt"
	"strings"

	"github.com/joda-explore/betze/internal/jsonval"
)

// TransformKind enumerates the document transformations of the paper's
// future-work section ("renaming, removing, or addition of attributes").
type TransformKind uint8

// The supported transformation operations.
const (
	// TransformRename renames the attribute at Path to NewName (within
	// its parent object).
	TransformRename TransformKind = iota
	// TransformRemove deletes the attribute at Path.
	TransformRemove
	// TransformAdd sets the attribute at Path to the constant Value,
	// creating it in its (existing) parent object.
	TransformAdd
)

// String names the kind.
func (k TransformKind) String() string {
	switch k {
	case TransformRename:
		return "rename"
	case TransformRemove:
		return "remove"
	case TransformAdd:
		return "add"
	default:
		return fmt.Sprintf("transform(%d)", uint8(k))
	}
}

// TransformOp is one transformation step.
type TransformOp struct {
	Kind TransformKind
	// Path is the affected attribute.
	Path jsonval.Path
	// NewName is the new leaf name for renames.
	NewName string
	// Value is the constant for additions.
	Value jsonval.Value
}

// String renders the operation in the internal syntax.
func (op TransformOp) String() string {
	switch op.Kind {
	case TransformRename:
		return fmt.Sprintf("RENAME('%s' -> %q)", op.Path, op.NewName)
	case TransformRemove:
		return fmt.Sprintf("REMOVE('%s')", op.Path)
	case TransformAdd:
		return fmt.Sprintf("ADD('%s' = %s)", op.Path, op.Value)
	default:
		return op.Kind.String()
	}
}

// Transform is an ordered sequence of transformation operations applied to
// every document a query returns. It extends the filter/aggregate query
// model with the structure-changing workloads the paper proposes as future
// work.
type Transform struct {
	Ops []TransformOp
}

// String renders the transform in the internal syntax.
func (t *Transform) String() string {
	parts := make([]string, len(t.Ops))
	for i, op := range t.Ops {
		parts[i] = op.String()
	}
	return "TRANSFORM " + strings.Join(parts, ", ")
}

// Apply returns the transformed document. The input is not modified; only
// the spine along each affected path is rebuilt.
func (t *Transform) Apply(doc jsonval.Value) jsonval.Value {
	out := doc
	for _, op := range t.Ops {
		out = applyOp(out, op)
	}
	return out
}

func applyOp(doc jsonval.Value, op TransformOp) jsonval.Value {
	segs := op.Path.Segments()
	if len(segs) == 0 {
		return doc // the root itself cannot be renamed/removed/added
	}
	return rebuild(doc, segs, op)
}

// rebuild walks down to the affected parent object and applies the edit.
func rebuild(v jsonval.Value, segs []string, op TransformOp) jsonval.Value {
	if v.Kind() != jsonval.Object {
		return v // path traverses a non-object: nothing to do
	}
	members := v.Members()
	if len(segs) == 1 {
		leaf := segs[0]
		switch op.Kind {
		case TransformRename:
			out := make([]jsonval.Member, 0, len(members))
			for _, m := range members {
				if m.Key == leaf {
					m.Key = op.NewName
				}
				out = append(out, m)
			}
			return jsonval.ObjectValue(out...)
		case TransformRemove:
			out := make([]jsonval.Member, 0, len(members))
			for _, m := range members {
				if m.Key != leaf {
					out = append(out, m)
				}
			}
			return jsonval.ObjectValue(out...)
		case TransformAdd:
			out := make([]jsonval.Member, 0, len(members)+1)
			replaced := false
			for _, m := range members {
				if m.Key == leaf {
					m.Value = op.Value
					replaced = true
				}
				out = append(out, m)
			}
			if !replaced {
				out = append(out, jsonval.Member{Key: leaf, Value: op.Value})
			}
			return jsonval.ObjectValue(out...)
		default:
			return v
		}
	}
	// Descend: rebuild only the affected child.
	out := make([]jsonval.Member, len(members))
	copy(out, members)
	for i, m := range out {
		if m.Key == segs[0] {
			out[i].Value = rebuild(m.Value, segs[1:], op)
			break
		}
	}
	return jsonval.ObjectValue(out...)
}
