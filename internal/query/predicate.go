// Package query defines BETZE's intermediate query representation (§IV-D of
// the paper) and a reference evaluator.
//
// A query names a base dataset, an optional dataset to store the result in,
// an optional filter-predicate tree — OR and AND as inner nodes, the nine
// filtering functions of §III-A as leaves — and an optional aggregation.
// Language modules (internal/langs) translate this representation into
// system-specific syntax; engines (internal/engine) execute it directly.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/joda-explore/betze/internal/jsonval"
)

// CmpOp is a comparison operator used by the numeric and size predicates.
type CmpOp uint8

// Supported comparison operators.
const (
	Lt CmpOp = iota // <
	Le              // <=
	Gt              // >
	Ge              // >=
	Eq              // ==
)

// String renders the operator in the internal syntax.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "=="
	default:
		return fmt.Sprintf("cmp(%d)", uint8(op))
	}
}

// holds reports whether "a op b" is true.
func (op CmpOp) holds(a, b float64) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Eq:
		return a == b
	default:
		return false
	}
}

// holdsInt reports whether "a op b" is true for integers.
func (op CmpOp) holdsInt(a, b int) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Eq:
		return a == b
	default:
		return false
	}
}

// Predicate is a node of the filter tree. Implementations are immutable and
// safe for concurrent evaluation.
type Predicate interface {
	// Eval reports whether the document satisfies the predicate.
	Eval(doc jsonval.Value) bool
	// String renders the predicate in BETZE's internal syntax, which is
	// also the canonical form used for duplicate suppression.
	String() string
}

// And is the logical conjunction of two predicates. The paper restricts
// inner nodes to binary AND/OR; deeper combinations nest.
type And struct {
	Left, Right Predicate
}

// Eval implements Predicate.
func (p And) Eval(doc jsonval.Value) bool { return p.Left.Eval(doc) && p.Right.Eval(doc) }

// String implements Predicate.
func (p And) String() string {
	return "(" + p.Left.String() + " && " + p.Right.String() + ")"
}

// Or is the logical disjunction of two predicates.
type Or struct {
	Left, Right Predicate
}

// Eval implements Predicate.
func (p Or) Eval(doc jsonval.Value) bool { return p.Left.Eval(doc) || p.Right.Eval(doc) }

// String implements Predicate.
func (p Or) String() string {
	return "(" + p.Left.String() + " || " + p.Right.String() + ")"
}

// Exists checks the existence of an attribute: EXISTS(<ptr>).
type Exists struct {
	Path jsonval.Path
}

// Eval implements Predicate.
func (p Exists) Eval(doc jsonval.Value) bool {
	_, ok := p.Path.Lookup(doc)
	return ok
}

// String implements Predicate.
func (p Exists) String() string { return "EXISTS('" + p.Path.String() + "')" }

// IsString checks that the attribute exists and is a string: ISSTRING(<ptr>).
type IsString struct {
	Path jsonval.Path
}

// Eval implements Predicate.
func (p IsString) Eval(doc jsonval.Value) bool {
	v, ok := p.Path.Lookup(doc)
	return ok && v.Kind() == jsonval.String
}

// String implements Predicate.
func (p IsString) String() string { return "ISSTRING('" + p.Path.String() + "')" }

// IntEq is the integer equality check: <ptr> == <int>. Like the systems
// BETZE targets, it matches any JSON number equal to the constant, so 5 and
// 5.0 both satisfy "== 5".
type IntEq struct {
	Path  jsonval.Path
	Value int64
}

// Eval implements Predicate.
func (p IntEq) Eval(doc jsonval.Value) bool {
	v, ok := p.Path.Lookup(doc)
	if !ok {
		return false
	}
	n, ok := v.Number()
	return ok && n == float64(p.Value)
}

// String implements Predicate.
func (p IntEq) String() string {
	return "'" + p.Path.String() + "' == " + strconv.FormatInt(p.Value, 10)
}

// FloatCmp compares a numeric attribute with a floating-point constant:
// <ptr> <comparison> <float>.
type FloatCmp struct {
	Path  jsonval.Path
	Op    CmpOp
	Value float64
}

// Eval implements Predicate.
func (p FloatCmp) Eval(doc jsonval.Value) bool {
	v, ok := p.Path.Lookup(doc)
	if !ok {
		return false
	}
	n, ok := v.Number()
	return ok && p.Op.holds(n, p.Value)
}

// String implements Predicate.
func (p FloatCmp) String() string {
	return fmt.Sprintf("'%s' %s %s", p.Path, p.Op, strconv.FormatFloat(p.Value, 'g', -1, 64))
}

// StrEq is the string equality check: <ptr> == <string>.
type StrEq struct {
	Path  jsonval.Path
	Value string
}

// Eval implements Predicate.
func (p StrEq) Eval(doc jsonval.Value) bool {
	v, ok := p.Path.Lookup(doc)
	return ok && v.Kind() == jsonval.String && v.Str() == p.Value
}

// String implements Predicate.
func (p StrEq) String() string {
	return "'" + p.Path.String() + "' == " + strconv.Quote(p.Value)
}

// HasPrefix checks that the attribute is a string with the given prefix:
// HASPREFIX(<ptr>, <string>).
type HasPrefix struct {
	Path   jsonval.Path
	Prefix string
}

// Eval implements Predicate.
func (p HasPrefix) Eval(doc jsonval.Value) bool {
	v, ok := p.Path.Lookup(doc)
	return ok && v.Kind() == jsonval.String && strings.HasPrefix(v.Str(), p.Prefix)
}

// String implements Predicate.
func (p HasPrefix) String() string {
	return "HASPREFIX('" + p.Path.String() + "', " + strconv.Quote(p.Prefix) + ")"
}

// BoolEq is the boolean equality check: <ptr> == <bool>.
type BoolEq struct {
	Path  jsonval.Path
	Value bool
}

// Eval implements Predicate.
func (p BoolEq) Eval(doc jsonval.Value) bool {
	v, ok := p.Path.Lookup(doc)
	return ok && v.Kind() == jsonval.Bool && v.Bool() == p.Value
}

// String implements Predicate.
func (p BoolEq) String() string {
	return "'" + p.Path.String() + "' == " + strconv.FormatBool(p.Value)
}

// ArrSize compares the size of an array attribute with a constant:
// ARRSIZE(<ptr>) <comparison> <int>.
type ArrSize struct {
	Path  jsonval.Path
	Op    CmpOp
	Value int
}

// Eval implements Predicate.
func (p ArrSize) Eval(doc jsonval.Value) bool {
	v, ok := p.Path.Lookup(doc)
	return ok && v.Kind() == jsonval.Array && p.Op.holdsInt(v.Len(), p.Value)
}

// String implements Predicate.
func (p ArrSize) String() string {
	return fmt.Sprintf("ARRSIZE('%s') %s %d", p.Path, p.Op, p.Value)
}

// ObjSize compares the number of children of an object attribute with a
// constant: OBJSIZE(<ptr>) <comparison> <int>.
type ObjSize struct {
	Path  jsonval.Path
	Op    CmpOp
	Value int
}

// Eval implements Predicate.
func (p ObjSize) Eval(doc jsonval.Value) bool {
	v, ok := p.Path.Lookup(doc)
	return ok && v.Kind() == jsonval.Object && p.Op.holdsInt(v.Len(), p.Value)
}

// String implements Predicate.
func (p ObjSize) String() string {
	return fmt.Sprintf("OBJSIZE('%s') %s %d", p.Path, p.Op, p.Value)
}

// Walk visits every node of the predicate tree in depth-first order. A nil
// predicate is a no-op.
func Walk(p Predicate, visit func(Predicate)) {
	if p == nil {
		return
	}
	visit(p)
	switch n := p.(type) {
	case And:
		Walk(n.Left, visit)
		Walk(n.Right, visit)
	case Or:
		Walk(n.Left, visit)
		Walk(n.Right, visit)
	}
}

// Leaves returns the leaf predicates of the tree in depth-first order.
func Leaves(p Predicate) []Predicate {
	var out []Predicate
	Walk(p, func(n Predicate) {
		switch n.(type) {
		case And, Or:
		default:
			out = append(out, n)
		}
	})
	return out
}

// LeafPath returns the attribute path referenced by a leaf predicate, and
// false for inner nodes.
func LeafPath(p Predicate) (jsonval.Path, bool) {
	switch n := p.(type) {
	case Exists:
		return n.Path, true
	case IsString:
		return n.Path, true
	case IntEq:
		return n.Path, true
	case FloatCmp:
		return n.Path, true
	case StrEq:
		return n.Path, true
	case HasPrefix:
		return n.Path, true
	case BoolEq:
		return n.Path, true
	case ArrSize:
		return n.Path, true
	case ObjSize:
		return n.Path, true
	default:
		return jsonval.RootPath, false
	}
}

// LeafKind names the predicate type of a leaf for reporting (Fig. 8 of the
// paper groups generated predicates by these names).
func LeafKind(p Predicate) string {
	switch p.(type) {
	case Exists:
		return "exists"
	case IsString:
		return "isstring"
	case IntEq:
		return "int-eq"
	case FloatCmp:
		return "float-cmp"
	case StrEq:
		return "str-eq"
	case HasPrefix:
		return "hasprefix"
	case BoolEq:
		return "bool-eq"
	case ArrSize:
		return "arrsize"
	case ObjSize:
		return "objsize"
	case And:
		return "and"
	case Or:
		return "or"
	default:
		return "unknown"
	}
}
