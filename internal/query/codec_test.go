package query

import (
	"encoding/json"
	"math/rand"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
)

func TestQueryJSONRoundTrip(t *testing.T) {
	queries := []*Query{
		{ID: "q1", Base: "ds"},
		{ID: "q2", Base: "ds", Store: "derived", Filter: Exists{Path: "/a"}},
		{
			ID:   "q3",
			Base: "Twitter",
			Filter: And{
				Left:  Or{Left: IntEq{Path: "/n", Value: -5}, Right: FloatCmp{Path: "/f", Op: Ge, Value: 2.25}},
				Right: And{Left: StrEq{Path: "/s", Value: "x"}, Right: HasPrefix{Path: "/s", Prefix: "p"}},
			},
			Agg: &Aggregation{Func: Count, Path: jsonval.RootPath, Grouped: true, GroupBy: "/g"},
		},
		{
			ID:     "q4",
			Base:   "ds",
			Filter: Or{Left: BoolEq{Path: "/b", Value: false}, Right: And{Left: ArrSize{Path: "/a", Op: Lt, Value: 3}, Right: ObjSize{Path: "/o", Op: Eq, Value: 2}}},
			Agg:    &Aggregation{Func: Sum, Path: "/n"},
		},
		{ID: "q5", Base: "ds", Filter: IsString{Path: "/s"}},
	}
	for _, q := range queries {
		data, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		var back Query
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if back.String() != q.String() {
			t.Errorf("%s round trip:\n got %s\nwant %s", q.ID, back.String(), q.String())
		}
		if back.ID != q.ID || back.Base != q.Base || back.Store != q.Store {
			t.Errorf("%s header fields differ: %+v", q.ID, back)
		}
	}
}

func TestQueryJSONRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		q := &Query{ID: "q", Base: "ds", Filter: randomPredicate(r, 3)}
		data, err := json.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		var back Query
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
		if back.String() != q.String() {
			t.Fatalf("round trip differs:\n got %s\nwant %s", back.String(), q.String())
		}
		// Equivalence must be semantic too.
		for j := 0; j < 20; j++ {
			d := randomSmallDoc(r)
			if back.Matches(d) != q.Matches(d) {
				t.Fatalf("decoded query disagrees on %s", d)
			}
		}
	}
}

func TestQueryJSONErrors(t *testing.T) {
	bad := []string{
		`{"base":"ds","filter":{"kind":"teleport"}}`,
		`{"base":"ds","filter":{"kind":"and","left":{"kind":"exists","path":"/a"}}}`,
		`{"base":"ds","filter":{"kind":"float-cmp","path":"/f","op":"~"}}`,
		`{"base":"ds","agg":{"func":"MEDIAN","path":"/x"}}`,
		`not json`,
	}
	for _, s := range bad {
		var q Query
		if err := json.Unmarshal([]byte(s), &q); err == nil {
			t.Errorf("accepted %s as %s", s, q.String())
		}
	}
}
