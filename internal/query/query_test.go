package query

import (
	"reflect"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
)

func TestQueryMatches(t *testing.T) {
	d := doc(t, `{"a":1}`)
	q := &Query{Base: "ds", Filter: Exists{Path: "/a"}}
	if !q.Matches(d) {
		t.Errorf("filter did not match")
	}
	q2 := &Query{Base: "ds"}
	if !q2.Matches(d) {
		t.Errorf("nil filter must match everything")
	}
	q3 := &Query{Base: "ds", Filter: Exists{Path: "/zz"}}
	if q3.Matches(d) {
		t.Errorf("filter matched missing path")
	}
}

func TestQueryString(t *testing.T) {
	q := &Query{
		ID:     "q1",
		Base:   "Twitter",
		Store:  "Twitter_q1",
		Filter: BoolEq{Path: "/retweeted_status/user/verified", Value: false},
		Agg: &Aggregation{
			Func:    Count,
			Path:    jsonval.RootPath,
			Grouped: true,
			GroupBy: "/user/time_zone",
		},
	}
	want := "FROM Twitter WHERE '/retweeted_status/user/verified' == false COUNT('/') GROUP BY '/user/time_zone' STORE Twitter_q1"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestQueryPaths(t *testing.T) {
	q := &Query{
		Base: "ds",
		Filter: And{
			Exists{Path: "/a"},
			Or{IntEq{Path: "/b", Value: 1}, Exists{Path: "/a"}},
		},
		Agg: &Aggregation{Func: Sum, Path: "/c", Grouped: true, GroupBy: "/d"},
	}
	want := []jsonval.Path{"/a", "/b", "/a", "/c", "/d"}
	if got := q.Paths(); !reflect.DeepEqual(got, want) {
		t.Errorf("Paths() = %v, want %v", got, want)
	}
	// Count over the root path contributes no attribute reference.
	q2 := &Query{Base: "ds", Agg: &Aggregation{Func: Count, Path: jsonval.RootPath}}
	if got := q2.Paths(); len(got) != 0 {
		t.Errorf("root-count Paths() = %v", got)
	}
}

func TestAggregationString(t *testing.T) {
	a := Aggregation{Func: Count, Path: "/x"}
	if a.String() != "COUNT('/x')" {
		t.Errorf("got %q", a.String())
	}
	g := Aggregation{Func: Sum, Path: "/x", Grouped: true, GroupBy: "/y"}
	if g.String() != "SUM('/x') GROUP BY '/y'" {
		t.Errorf("got %q", g.String())
	}
}

func TestAggregatorCountUngrouped(t *testing.T) {
	a := NewAggregator(Aggregation{Func: Count, Path: "/x"})
	a.Add(doc(t, `{"x":1}`))
	a.Add(doc(t, `{"x":"s"}`))
	a.Add(doc(t, `{"y":1}`)) // no /x: not counted
	res := a.Result()
	if len(res) != 1 {
		t.Fatalf("result docs = %d", len(res))
	}
	if v, _ := res[0].Field("count"); v.Int() != 2 {
		t.Errorf("count = %s", v)
	}
}

func TestAggregatorCountRootCountsAll(t *testing.T) {
	a := NewAggregator(Aggregation{Func: Count, Path: jsonval.RootPath})
	a.Add(doc(t, `{"x":1}`))
	a.Add(doc(t, `{}`))
	if v, _ := a.Result()[0].Field("count"); v.Int() != 2 {
		t.Errorf("root count = %s", v)
	}
}

func TestAggregatorSum(t *testing.T) {
	a := NewAggregator(Aggregation{Func: Sum, Path: "/n"})
	a.Add(doc(t, `{"n":3}`))
	a.Add(doc(t, `{"n":4}`))
	a.Add(doc(t, `{"n":"skip"}`))
	a.Add(doc(t, `{}`))
	if v, _ := a.Result()[0].Field("sum"); v.Kind() != jsonval.Int || v.Int() != 7 {
		t.Errorf("int sum = %s (%v)", v, v.Kind())
	}
	b := NewAggregator(Aggregation{Func: Sum, Path: "/n"})
	b.Add(doc(t, `{"n":3}`))
	b.Add(doc(t, `{"n":0.5}`))
	if v, _ := b.Result()[0].Field("sum"); v.Kind() != jsonval.Float || v.Float() != 3.5 {
		t.Errorf("mixed sum = %s (%v)", v, v.Kind())
	}
	c := NewAggregator(Aggregation{Func: Sum, Path: "/n"})
	if v, _ := c.Result()[0].Field("sum"); !v.IsNull() {
		t.Errorf("empty sum = %s, want null", v)
	}
}

func TestAggregatorGrouped(t *testing.T) {
	a := NewAggregator(Aggregation{Func: Count, Path: jsonval.RootPath, Grouped: true, GroupBy: "/city"})
	a.Add(doc(t, `{"city":"berlin"}`))
	a.Add(doc(t, `{"city":"paris"}`))
	a.Add(doc(t, `{"city":"berlin"}`))
	a.Add(doc(t, `{"nocity":1}`)) // null group
	res := a.Result()
	if len(res) != 3 {
		t.Fatalf("groups = %d", len(res))
	}
	byGroup := map[string]int64{}
	for _, r := range res {
		g, _ := r.Field("group")
		c, _ := r.Field("count")
		byGroup[g.String()] = c.Int()
	}
	if byGroup[`"berlin"`] != 2 || byGroup[`"paris"`] != 1 || byGroup["null"] != 1 {
		t.Errorf("group counts = %v", byGroup)
	}
}

func TestAggregatorGroupedSum(t *testing.T) {
	a := NewAggregator(Aggregation{Func: Sum, Path: "/v", Grouped: true, GroupBy: "/k"})
	a.Add(doc(t, `{"k":"a","v":1}`))
	a.Add(doc(t, `{"k":"a","v":2.5}`))
	a.Add(doc(t, `{"k":"b","v":10}`))
	res := a.Result()
	sums := map[string]string{}
	for _, r := range res {
		g, _ := r.Field("group")
		s, _ := r.Field("sum")
		sums[g.String()] = s.String()
	}
	if sums[`"a"`] != "3.5" || sums[`"b"`] != "10" {
		t.Errorf("grouped sums = %v", sums)
	}
}

func TestAggregatorGroupKeysByValueNotKind(t *testing.T) {
	// 5 and 5.0 group together, mirroring numeric equality.
	a := NewAggregator(Aggregation{Func: Count, Path: jsonval.RootPath, Grouped: true, GroupBy: "/k"})
	a.Add(doc(t, `{"k":5}`))
	a.Add(doc(t, `{"k":5.0}`))
	if res := a.Result(); len(res) != 1 {
		t.Errorf("5 and 5.0 split into %d groups", len(res))
	}
}

func TestAggregatorInsertionOrderDeterministic(t *testing.T) {
	mk := func() []string {
		a := NewAggregator(Aggregation{Func: Count, Path: jsonval.RootPath, Grouped: true, GroupBy: "/k"})
		for _, k := range []string{"x", "y", "x", "z", "y"} {
			a.Add(doc(t, `{"k":"`+k+`"}`))
		}
		var order []string
		for _, r := range a.Result() {
			g, _ := r.Field("group")
			order = append(order, g.Str())
		}
		return order
	}
	if !reflect.DeepEqual(mk(), []string{"x", "y", "z"}) {
		t.Errorf("group order = %v", mk())
	}
}

func TestQueryValidate(t *testing.T) {
	ok := &Query{ID: "q", Base: "ds", Filter: Exists{Path: "/a"}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	stored := &Query{ID: "q", Base: "ds", Store: "out"}
	if err := stored.Validate(); err != nil {
		t.Errorf("store-only query rejected: %v", err)
	}
	if err := (&Query{ID: "q"}).Validate(); err == nil {
		t.Errorf("base-less query accepted")
	}
	bad := &Query{ID: "q", Base: "ds", Store: "out", Agg: &Aggregation{Func: Count}}
	if err := bad.Validate(); err == nil {
		t.Errorf("store+agg query accepted")
	}
}
