package query

import (
	"math/rand"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
)

// benchDocs builds a deterministic corpus of small nested documents shaped
// like the generator's output, so Eval/Compile benchmarks exercise realistic
// path depths and type mixes.
func benchDocs(n int) []jsonval.Value {
	r := rand.New(rand.NewSource(2026))
	docs := make([]jsonval.Value, n)
	for i := range docs {
		docs[i] = randomSmallDoc(r)
	}
	return docs
}

// benchPredicate is a predicate-heavy tree: deep AND/OR nesting mixing cheap
// existence/type checks with string prefix work, the shape the cost model is
// designed to reorder.
func benchPredicate() Predicate {
	return And{
		Left: Or{
			Left:  HasPrefix{Path: "/c", Prefix: "be"},
			Right: And{Left: Exists{Path: "/d/e"}, Right: IntEq{Path: "/a", Value: 3}},
		},
		Right: And{
			Left: Or{
				Left:  StrEq{Path: "/c", Value: "betze"},
				Right: FloatCmp{Path: "/b", Op: Ge, Value: 0.25},
			},
			Right: Or{
				Left:  IsString{Path: "/c"},
				Right: BoolEq{Path: "/flag", Value: true},
			},
		},
	}
}

func BenchmarkPredicateEvalInterpreted(b *testing.B) {
	docs := benchDocs(256)
	p := benchPredicate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval(docs[i%len(docs)])
	}
}

func BenchmarkPredicateEvalCompiled(b *testing.B) {
	docs := benchDocs(256)
	c := Compile(benchPredicate())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Eval(docs[i%len(docs)])
	}
}

func BenchmarkPredicateEvalEvaluator(b *testing.B) {
	docs := benchDocs(256)
	e := Compile(benchPredicate()).Evaluator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvalAt(&docs[i%len(docs)])
	}
}

func BenchmarkCompile(b *testing.B) {
	p := benchPredicate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compile(p)
	}
}
