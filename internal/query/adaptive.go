package query

// AdaptivePruner decides per query whether consulting zone maps pays for
// itself. Zone probes are pure overhead on a corpus whose layout does not
// cluster the filtered attribute (the zone ranges are wide, nothing skips,
// and the scan pays one prune walk per shard on top of the full scan); on a
// clustered corpus they skip almost everything. The pruner measures which
// world it is in on a deterministic prefix of the shards — the first
// clamp(numShards/8, 4, 64) zones, probed eagerly at construction — and
// bypasses zone probing for the rest of the scan when the observed skip rate
// falls below 1/8, the point where a probe's cost stops being covered by the
// documents it saves.
//
// Probing at construction, in shard order, keeps the decision independent of
// scan scheduling: parallel kernels call CanSkip from many workers in claim
// order, and a skip-rate estimate accumulated in that order would make
// Skipped counts — and the deterministic-timing clocks fed by them —
// run-dependent. Construction is single-threaded; afterwards the pruner is
// immutable and safe for concurrent CanSkip calls.
type AdaptivePruner struct {
	c      CompiledPredicate
	probes []bool
	active bool
}

// adaptiveMinSkipNum/Den is the activation threshold: keep probing zones for
// the remaining shards only when at least 1 in 8 probed shards skipped.
const (
	adaptiveMinSkipNum = 1
	adaptiveMinSkipDen = 8
)

// NewAdaptivePruner probes the first shards of a store (zone resolves shard
// index → zone map) and returns the pruner for the whole scan. A predicate
// that can never prune skips the probes entirely.
func NewAdaptivePruner(c CompiledPredicate, numShards int, zone func(i int) Zone) *AdaptivePruner {
	a := &AdaptivePruner{c: c}
	if c.pfn == nil || numShards <= 0 {
		return a
	}
	p := numShards / 8
	if p < 4 {
		p = 4
	}
	if p > 64 {
		p = 64
	}
	if p > numShards {
		p = numShards
	}
	a.probes = make([]bool, p)
	skips := 0
	for i := range a.probes {
		if c.CanSkip(zone(i)) {
			a.probes[i] = true
			skips++
		}
	}
	a.active = skips*adaptiveMinSkipDen >= p*adaptiveMinSkipNum
	return a
}

// CanSkip answers for shard i: the recorded probe for the prefix, a real
// zone consultation beyond it while pruning is active, and false (scan the
// shard) once pruning was deemed unprofitable.
func (a *AdaptivePruner) CanSkip(i int, z Zone) bool {
	if i < len(a.probes) {
		return a.probes[i]
	}
	return a.active && a.c.CanSkip(z)
}

// Probed reports how many leading shards were probed at construction.
func (a *AdaptivePruner) Probed() int { return len(a.probes) }

// Active reports whether zone probing stays on beyond the probed prefix.
func (a *AdaptivePruner) Active() bool { return a.active }
