package query

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
)

// TestCompileMatchesEvalFuzz is the in-package differential check: random
// predicate trees must evaluate identically compiled and interpreted, across
// random documents. The cross-engine variant lives in internal/engine's
// differential test.
func TestCompileMatchesEvalFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for round := 0; round < 500; round++ {
		p := randomPredicate(r, 3)
		c := Compile(p)
		for i := 0; i < 20; i++ {
			doc := randomSmallDoc(r)
			if got, want := c.Eval(doc), p.Eval(doc); got != want {
				t.Fatalf("round %d: compiled=%v interpreted=%v for %s over %s", round, got, want, p, doc)
			}
		}
	}
}

func TestCompileNilAndZeroValueMatchEverything(t *testing.T) {
	doc := jsonval.ObjectValue(jsonval.Member{Key: "a", Value: jsonval.IntValue(1)})
	if !Compile(nil).Eval(doc) {
		t.Error("Compile(nil) rejected a document")
	}
	var zero CompiledPredicate
	if !zero.Eval(doc) || !zero.Matches(doc) {
		t.Error("zero CompiledPredicate rejected a document")
	}
	if zero.String() != "TRUE" {
		t.Errorf("zero String = %q", zero.String())
	}
}

func TestCompileStringKeepsCanonicalForm(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 100; i++ {
		p := randomPredicate(r, 3)
		if got := Compile(p).String(); got != p.String() {
			t.Errorf("compiled String %q != source %q", got, p.String())
		}
	}
}

func TestCompileIsIdempotentOverItsOutput(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for i := 0; i < 50; i++ {
		p := randomPredicate(r, 2)
		c := Compile(p)
		cc := Compile(And{Left: c, Right: Exists{Path: "/a"}})
		doc := randomSmallDoc(r)
		want := p.Eval(doc) && Exists{Path: "/a"}.Eval(doc)
		if got := cc.Eval(doc); got != want {
			t.Fatalf("recompiled tree diverged for %s", p)
		}
	}
}

// TestCompileConstantFolds pins the folds the compiler performs: root
// existence, unsatisfiable size comparisons, empty prefixes, and constant
// propagation through AND/OR.
func TestCompileConstantFolds(t *testing.T) {
	docs := []jsonval.Value{
		jsonval.ObjectValue(
			jsonval.Member{Key: "s", Value: jsonval.StringValue("hello")},
			jsonval.Member{Key: "arr", Value: jsonval.ArrayValue(jsonval.IntValue(1))},
		),
		jsonval.ObjectValue(),
	}
	cases := []struct {
		name string
		pred Predicate
	}{
		{"exists root", Exists{Path: jsonval.RootPath}},
		{"arrsize lt zero", ArrSize{Path: "/arr", Op: Lt, Value: 0}},
		{"arrsize eq negative", ArrSize{Path: "/arr", Op: Eq, Value: -1}},
		{"objsize le negative", ObjSize{Path: "/o", Op: Le, Value: -2}},
		{"empty prefix is type check", HasPrefix{Path: "/s", Prefix: ""}},
		{"and with const true", And{Left: Exists{Path: jsonval.RootPath}, Right: IsString{Path: "/s"}}},
		{"and with const false", And{Left: ArrSize{Path: "/arr", Op: Lt, Value: 0}, Right: IsString{Path: "/s"}}},
		{"or with const true", Or{Left: Exists{Path: jsonval.RootPath}, Right: IsString{Path: "/s"}}},
		{"or with const false", Or{Left: ArrSize{Path: "/arr", Op: Lt, Value: -5}, Right: IsString{Path: "/s"}}},
	}
	for _, c := range cases {
		compiled := Compile(c.pred)
		for _, doc := range docs {
			if got, want := compiled.Eval(doc), c.pred.Eval(doc); got != want {
				t.Errorf("%s: compiled=%v interpreted=%v over %s", c.name, got, want, doc)
			}
		}
	}
	// The folds themselves: a fully-constant tree compiles to zero cost.
	if c := Compile(Exists{Path: jsonval.RootPath}); c.Cost() != 0 {
		t.Errorf("EXISTS('/') compiled to cost %d, want folded constant", c.Cost())
	}
	if c := Compile(ArrSize{Path: "/arr", Op: Lt, Value: 0}); c.Cost() != 0 {
		t.Errorf("ARRSIZE < 0 compiled to cost %d, want folded constant", c.Cost())
	}
}

// countingLeaf counts its evaluations; compiled through the external-leaf
// fallback it carries the analyzer's most-expensive static cost, so the cost
// model must schedule the cheap Exists operand before it.
type countingLeaf struct {
	calls *atomic.Int64
	out   bool
}

func (c countingLeaf) Eval(jsonval.Value) bool {
	c.calls.Add(1)
	return c.out
}
func (c countingLeaf) String() string { return "COUNTING" }

// TestCompileOrdersCheapOperandFirst asserts the cost model's observable
// effect: with AND, a failing cheap existence check short-circuits the
// expensive operand away regardless of source order; with OR, a succeeding
// cheap check does.
func TestCompileOrdersCheapOperandFirst(t *testing.T) {
	doc := jsonval.ObjectValue(jsonval.Member{Key: "present", Value: jsonval.IntValue(1)})

	var calls atomic.Int64
	expensive := countingLeaf{calls: &calls, out: true}
	missing := Exists{Path: "/absent"}
	for _, p := range []Predicate{
		And{Left: expensive, Right: missing},
		And{Left: missing, Right: expensive},
	} {
		calls.Store(0)
		c := Compile(p)
		for i := 0; i < 10; i++ {
			if c.Eval(doc) {
				t.Fatalf("%s matched", p)
			}
		}
		if calls.Load() != 0 {
			t.Errorf("expensive operand of %s evaluated %d times; cheap failing check should short-circuit", p, calls.Load())
		}
	}

	present := Exists{Path: "/present"}
	for _, p := range []Predicate{
		Or{Left: expensive, Right: present},
		Or{Left: present, Right: expensive},
	} {
		calls.Store(0)
		c := Compile(p)
		for i := 0; i < 10; i++ {
			if !c.Eval(doc) {
				t.Fatalf("%s did not match", p)
			}
		}
		if calls.Load() != 0 {
			t.Errorf("expensive operand of %s evaluated %d times; cheap succeeding check should short-circuit", p, calls.Load())
		}
	}
}

// TestEvaluatorMatchesEvalFuzz checks the reusable-evaluator entry points
// against the interpreted reference: reusing one Evaluator across many
// documents (the scan-worker pattern) must agree with Predicate.Eval, through
// both the copying and the in-place entry point.
func TestEvaluatorMatchesEvalFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for round := 0; round < 300; round++ {
		p := randomPredicate(r, 3)
		e := Compile(p).Evaluator()
		for i := 0; i < 20; i++ {
			doc := randomSmallDoc(r)
			want := p.Eval(doc)
			if got := e.Eval(doc); got != want {
				t.Fatalf("round %d: Evaluator.Eval=%v interpreted=%v for %s over %s", round, got, want, p, doc)
			}
			if got := e.EvalAt(&doc); got != want {
				t.Fatalf("round %d: Evaluator.EvalAt=%v interpreted=%v for %s over %s", round, got, want, p, doc)
			}
		}
	}
}

func TestEvaluatorZeroAndNil(t *testing.T) {
	doc := jsonval.ObjectValue(jsonval.Member{Key: "a", Value: jsonval.IntValue(1)})
	e := Compile(nil).Evaluator()
	if !e.Eval(doc) || !e.EvalAt(&doc) {
		t.Error("Evaluator of Compile(nil) rejected a document")
	}
}

// TestCompiledLeafZeroAllocs is the allocation regression gate of the
// compiled hot path: evaluating compiled leaf predicates (every kind, hit
// and miss, shallow and nested) must not allocate.
func TestCompiledLeafZeroAllocs(t *testing.T) {
	doc := jsonval.ObjectValue(
		jsonval.Member{Key: "s", Value: jsonval.StringValue("hello world")},
		jsonval.Member{Key: "n", Value: jsonval.IntValue(7)},
		jsonval.Member{Key: "f", Value: jsonval.FloatValue(2.5)},
		jsonval.Member{Key: "b", Value: jsonval.BoolValue(true)},
		jsonval.Member{Key: "arr", Value: jsonval.ArrayValue(jsonval.IntValue(1), jsonval.IntValue(2))},
		jsonval.Member{Key: "nest", Value: jsonval.ObjectValue(
			jsonval.Member{Key: "deep", Value: jsonval.StringValue("x")},
		)},
	)
	leaves := []Predicate{
		Exists{Path: "/s"},
		Exists{Path: "/nest/deep"},
		Exists{Path: "/missing/deeper"},
		IsString{Path: "/s"},
		IntEq{Path: "/n", Value: 7},
		FloatCmp{Path: "/f", Op: Ge, Value: 1},
		StrEq{Path: "/s", Value: "hello world"},
		HasPrefix{Path: "/s", Prefix: "hello"},
		BoolEq{Path: "/b", Value: true},
		ArrSize{Path: "/arr", Op: Eq, Value: 2},
		ObjSize{Path: "/nest", Op: Ge, Value: 1},
	}
	for _, leaf := range leaves {
		c := Compile(leaf)
		var sink bool
		if n := testing.AllocsPerRun(200, func() { sink = c.Eval(doc) }); n != 0 {
			t.Errorf("compiled %s allocates %v per Eval, want 0", leaf, n)
		}
		_ = sink
	}
	// A composed tree must stay allocation-free too.
	tree := And{
		Left:  Or{Left: Exists{Path: "/missing"}, Right: HasPrefix{Path: "/s", Prefix: "hel"}},
		Right: And{Left: FloatCmp{Path: "/n", Op: Gt, Value: 0}, Right: ObjSize{Path: "/nest", Op: Ge, Value: 1}},
	}
	c := Compile(tree)
	if n := testing.AllocsPerRun(200, func() { c.Eval(doc) }); n != 0 {
		t.Errorf("compiled tree allocates %v per Eval, want 0", n)
	}
	// The reusable evaluator is the scan-worker hot path; both entry points
	// must be allocation-free in steady state.
	e := c.Evaluator()
	if n := testing.AllocsPerRun(200, func() { e.Eval(doc) }); n != 0 {
		t.Errorf("Evaluator.Eval allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { e.EvalAt(&doc) }); n != 0 {
		t.Errorf("Evaluator.EvalAt allocates %v per call, want 0", n)
	}
}
