// Shard pruning. A compiled predicate can inspect a shard's zone map — a
// per-shard summary of which paths occur and what values they hold — and
// prove "no document in this shard can match" without touching a single
// document. The proof obligation is one-sided: a prune decision must be
// sound (CanSkip true ⇒ every document evaluates to false), while "cannot
// prune" is always a safe answer. Zone maps therefore only ever OVER-claim
// what a shard contains (extra paths, wider ranges, larger dictionaries are
// all harmless); the one thing they must never do is under-claim, and a zone
// that cannot promise full path coverage reports Complete() == false, which
// disables the absent-path proof.
//
// Prune closures are compiled alongside the eval closures in compile.go:
// AND prunes when either operand prunes, OR only when both do, folded
// constants prune iff the constant is false, and external (unknown) leaf
// types never prune. Per-leaf rules live in the zone* constructors below.
package query

import (
	"sort"
	"strings"

	"github.com/joda-explore/betze/internal/jsonval"
)

// Zone is a shard summary a compiled predicate can consult before a scan.
// Implementations live outside this package (internal/shard builds them);
// the query compiler only consumes them.
type Zone interface {
	// Summary returns the summary of the values found at path — in
	// jsonval.Path canonical form ("/" for the root, "/a/b" below it) —
	// across every document of the shard. ok is false when no document has
	// the path, OR when the zone simply does not index it; only a zone with
	// Complete() == true may be read as "absent everywhere".
	Summary(path string) (PathSummary, bool)
	// Complete reports whether every Lookup-resolvable path of every
	// document in the shard has a Summary entry. Incomplete zones (path or
	// depth caps overflowed) still prune on the entries they do have.
	Complete() bool
}

// KindMask is a bitset of jsonval kinds, one bit per jsonval.Kind value.
type KindMask uint16

// MaskOf returns the mask with only k's bit set.
func MaskOf(k jsonval.Kind) KindMask { return 1 << uint(k) }

// Has reports whether k's bit is set.
func (m KindMask) Has(k jsonval.Kind) bool { return m&MaskOf(k) != 0 }

// HasNumber reports whether any numeric kind is present.
func (m KindMask) HasNumber() bool {
	return m.Has(jsonval.Int) || m.Has(jsonval.Float)
}

// PathSummary summarises every value observed at one path across one shard.
// Range and dictionary fields are only meaningful when the corresponding
// kind bit is set in Kinds: a consumer must check the bit first.
type PathSummary struct {
	// Kinds has a bit set for every value kind observed at the path.
	Kinds KindMask
	// NumMin/NumMax bound every numeric (Int or Float) value, compared as
	// float64 exactly like the numeric predicates do.
	NumMin, NumMax float64
	// ArrMin/ArrMax bound the length of every Array value.
	ArrMin, ArrMax int
	// ObjMin/ObjMax bound the member count of every Object value.
	ObjMin, ObjMax int
	// TrueSeen/FalseSeen record which Bool values occurred.
	TrueSeen, FalseSeen bool
	// Dict holds the distinct String values, sorted ascending, when
	// DictComplete; an overflowed dictionary sets DictComplete false and
	// Dict must then be ignored. Consumers must not mutate the slice.
	Dict         []string
	DictComplete bool
}

// pruneFunc is one compiled prune node: true means "no document in a shard
// described by z can satisfy this subtree" — a proof, never a guess.
type pruneFunc func(z Zone) bool

// zoneTest decides prunability from one path's summary (the path is known
// to occur in the shard when the test runs).
type zoneTest func(s *PathSummary) bool

// CanSkip reports whether the zone map proves that no document of the
// summarised shard can match. A nil zone, the match-everything compiled
// form, and predicates with unprunable leaves all answer false — the scan
// then proceeds normally, which is always correct.
func (c CompiledPredicate) CanSkip(z Zone) bool {
	if c.pfn == nil || z == nil {
		return false
	}
	return c.pfn(z)
}

// constPrune is the prune form of a folded constant: a predicate that is
// identically false skips every shard, one that is identically true none.
func constPrune(konst bool) pruneFunc {
	return func(Zone) bool { return !konst }
}

// orPrune combines AND operands: either side alone proves the conjunction
// empty. A nil (never-prunes) side drops out instead of poisoning the node.
func orPrune(l, r pruneFunc) pruneFunc {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	return func(z Zone) bool { return l(z) || r(z) }
}

// andPrune combines OR operands: both sides must prove their half empty. If
// either side can never prune, neither can the disjunction.
func andPrune(l, r pruneFunc) pruneFunc {
	if l == nil || r == nil {
		return nil
	}
	return func(z Zone) bool { return l(z) && r(z) }
}

// pruneAt builds the leaf prune closure: resolve the path's summary, let the
// kind-specific test decide. A missing summary proves the path absent from
// every document — which falsifies every leaf kind (all nine predicates
// require the path to exist) — but only a complete zone may say so.
func pruneAt(path jsonval.Path, test zoneTest) pruneFunc {
	key := path.String()
	return func(z Zone) bool {
		s, ok := z.Summary(key)
		if !ok {
			return z.Complete()
		}
		return test(&s)
	}
}

// zoneExists: the summary exists, so some document has the path — EXISTS can
// match and the shard must be scanned.
func zoneExists(*PathSummary) bool { return false }

// zoneIsString prunes when no string value occurs at the path.
func zoneIsString(s *PathSummary) bool { return !s.Kinds.Has(jsonval.String) }

// zoneNumCmp prunes a numeric comparison when the path holds no numbers, or
// when no value in [NumMin, NumMax] can satisfy "value op want".
func zoneNumCmp(op CmpOp, want float64) zoneTest {
	return func(s *PathSummary) bool {
		return !s.Kinds.HasNumber() || !rangeSatisfies(op, s.NumMin, s.NumMax, want)
	}
}

// rangeSatisfies reports whether some x in [lo, hi] satisfies "x op want".
// Unknown operators hold for nothing (CmpOp.holds), so nothing satisfies.
func rangeSatisfies(op CmpOp, lo, hi, want float64) bool {
	switch op {
	case Lt:
		return lo < want
	case Le:
		return lo <= want
	case Gt:
		return hi > want
	case Ge:
		return hi >= want
	case Eq:
		return lo <= want && want <= hi
	default:
		return false
	}
}

// intRangeSatisfies is rangeSatisfies over integer length bounds.
func intRangeSatisfies(op CmpOp, lo, hi, want int) bool {
	switch op {
	case Lt:
		return lo < want
	case Le:
		return lo <= want
	case Gt:
		return hi > want
	case Ge:
		return hi >= want
	case Eq:
		return lo <= want && want <= hi
	default:
		return false
	}
}

// zoneStrEq prunes string equality when the path holds no strings, or when
// a complete dictionary provably lacks the constant.
func zoneStrEq(want string) zoneTest {
	return func(s *PathSummary) bool {
		if !s.Kinds.Has(jsonval.String) {
			return true
		}
		if !s.DictComplete {
			return false
		}
		i := sort.SearchStrings(s.Dict, want)
		return i >= len(s.Dict) || s.Dict[i] != want
	}
}

// zoneHasPrefix prunes prefix matching when the path holds no strings, or
// when no entry of a complete dictionary starts with the prefix. The sorted
// dictionary makes that one binary search: if any entry has the prefix, the
// first entry ≥ prefix does.
func zoneHasPrefix(prefix string) zoneTest {
	return func(s *PathSummary) bool {
		if !s.Kinds.Has(jsonval.String) {
			return true
		}
		if !s.DictComplete {
			return false
		}
		i := sort.SearchStrings(s.Dict, prefix)
		return i >= len(s.Dict) || !strings.HasPrefix(s.Dict[i], prefix)
	}
}

// zoneBoolEq prunes boolean equality when the path holds no booleans or the
// wanted value was never observed.
func zoneBoolEq(want bool) zoneTest {
	return func(s *PathSummary) bool {
		if !s.Kinds.Has(jsonval.Bool) {
			return true
		}
		if want {
			return !s.TrueSeen
		}
		return !s.FalseSeen
	}
}

// zoneArrSize prunes an array-size comparison when the path holds no arrays
// or no observed length can satisfy it.
func zoneArrSize(op CmpOp, want int) zoneTest {
	return func(s *PathSummary) bool {
		return !s.Kinds.Has(jsonval.Array) || !intRangeSatisfies(op, s.ArrMin, s.ArrMax, want)
	}
}

// zoneObjSize is zoneArrSize for object member counts.
func zoneObjSize(op CmpOp, want int) zoneTest {
	return func(s *PathSummary) bool {
		return !s.Kinds.Has(jsonval.Object) || !intRangeSatisfies(op, s.ObjMin, s.ObjMax, want)
	}
}
