package query

import (
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
)

// zonesOf builds a per-shard zone resolver: skippable[i] controls whether
// shard i's zone rules out /num == 50 (range [10,20] does, [10,100] does not).
func zonesOf(skippable []bool) func(i int) Zone {
	return func(i int) Zone {
		hi := 100.0
		if skippable[i] {
			hi = 20
		}
		return fakeZone{complete: true, paths: map[string]PathSummary{
			"/num": numSummary(10, hi),
		}}
	}
}

// poisonZone fails the test on any consultation: handed to shards a
// deactivated pruner must answer about without touching their zones.
type poisonZone struct{ t *testing.T }

func (z poisonZone) Summary(string) (PathSummary, bool) {
	z.t.Fatal("bypassed pruner consulted a zone")
	return PathSummary{}, false
}

func (z poisonZone) Complete() bool {
	z.t.Fatal("bypassed pruner consulted a zone")
	return false
}

func adaptiveProbe(t *testing.T, skippable []bool) *AdaptivePruner {
	t.Helper()
	c := Compile(FloatCmp{Path: "/num", Op: Eq, Value: 50})
	if c.pfn == nil {
		t.Fatal("test predicate should be prunable")
	}
	return NewAdaptivePruner(c, len(skippable), zonesOf(skippable))
}

func TestAdaptivePrunerBypassesUnprofitableZones(t *testing.T) {
	// 13 shards (the perf corpus shape), none skippable: 4 probes, all
	// misses, pruning deactivates and later shards never consult zones.
	skippable := make([]bool, 13)
	a := adaptiveProbe(t, skippable)
	if got, want := a.Probed(), 4; got != want {
		t.Fatalf("probed %d shards, want %d", got, want)
	}
	if a.Active() {
		t.Fatal("0/4 probe skips must deactivate pruning")
	}
	for i := a.Probed(); i < len(skippable); i++ {
		if a.CanSkip(i, poisonZone{t}) {
			t.Fatalf("shard %d skipped by an inactive pruner", i)
		}
	}
}

func TestAdaptivePrunerStaysActiveWhenSkipping(t *testing.T) {
	// Clustered layout: every shard but one skippable. Probes all skip,
	// pruning stays on, and beyond the prefix real zones still decide.
	skippable := make([]bool, 13)
	for i := range skippable {
		skippable[i] = i != 12
	}
	a := adaptiveProbe(t, skippable)
	if !a.Active() {
		t.Fatal("4/4 probe skips must keep pruning active")
	}
	zones := zonesOf(skippable)
	for i := 0; i < len(skippable); i++ {
		if got, want := a.CanSkip(i, zones(i)), skippable[i]; got != want {
			t.Errorf("shard %d: CanSkip = %v, want %v", i, got, want)
		}
	}
}

func TestAdaptivePrunerProbePrefixIsAuthoritative(t *testing.T) {
	// Probed answers are recorded at construction: the prefix answers from
	// the recording even when handed a different zone later (the kernels
	// always pass the same shard's zone; this pins the determinism contract).
	skippable := []bool{true, false, true, false, false, false, false, false}
	a := adaptiveProbe(t, skippable)
	for i := 0; i < a.Probed(); i++ {
		if got, want := a.CanSkip(i, nil), skippable[i]; got != want {
			t.Errorf("probed shard %d: CanSkip = %v, want %v", i, got, want)
		}
	}
}

func TestAdaptivePrunerProbeCountClamps(t *testing.T) {
	cases := []struct{ shards, probes int }{
		{1, 1}, {3, 3}, {4, 4}, {13, 4}, {64, 8}, {800, 64}, {10000, 64},
	}
	for _, tc := range cases {
		a := adaptiveProbe(t, make([]bool, tc.shards))
		if a.Probed() != tc.probes {
			t.Errorf("%d shards: probed %d, want %d", tc.shards, a.Probed(), tc.probes)
		}
	}
}

func TestAdaptivePrunerThreshold(t *testing.T) {
	// 64-shard store probes 8; exactly one skip (1/8) keeps pruning active,
	// zero deactivates it.
	one := make([]bool, 64)
	one[3] = true
	if a := adaptiveProbe(t, one); !a.Active() {
		t.Error("skip rate 1/8 must stay active")
	}
	if a := adaptiveProbe(t, make([]bool, 64)); a.Active() {
		t.Error("skip rate 0/8 must deactivate")
	}
}

// externalPred is a predicate type the compiler does not know: compiled via
// the interpretation fallback, it can never prune.
type externalPred struct{}

func (externalPred) Eval(jsonval.Value) bool { return true }
func (externalPred) String() string          { return "external" }

func TestAdaptivePrunerUnprunablePredicate(t *testing.T) {
	// An external leaf never prunes: no probes, no activation, CanSkip
	// always false.
	c := Compile(externalPred{})
	called := false
	a := NewAdaptivePruner(c, 100, func(int) Zone { called = true; return nil })
	if called {
		t.Error("unprunable predicate must not probe zones")
	}
	if a.Probed() != 0 || a.Active() {
		t.Errorf("unprunable pruner: probed %d active %v, want 0/false", a.Probed(), a.Active())
	}
	if a.CanSkip(50, fakeZone{complete: true, paths: map[string]PathSummary{}}) {
		t.Error("unprunable pruner skipped a shard")
	}
}
