package query

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/joda-explore/betze/internal/jsonval"
)

func doc(t *testing.T, s string) jsonval.Value {
	t.Helper()
	v, err := jsonval.Parse([]byte(s))
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return v
}

var sample = `{
	"name": "alice",
	"age": 30,
	"score": 7.5,
	"active": true,
	"tags": ["a","b","c"],
	"profile": {"city":"berlin","zip":10115},
	"nothing": null
}`

func TestLeafPredicates(t *testing.T) {
	d := doc(t, sample)
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Exists{Path: "/name"}, true},
		{Exists{Path: "/missing"}, false},
		{Exists{Path: "/profile/city"}, true},
		{Exists{Path: "/nothing"}, true}, // null still exists
		{Exists{Path: "/tags/0"}, false}, // no array indexing

		{IsString{Path: "/name"}, true},
		{IsString{Path: "/age"}, false},
		{IsString{Path: "/missing"}, false},

		{IntEq{Path: "/age", Value: 30}, true},
		{IntEq{Path: "/age", Value: 31}, false},
		{IntEq{Path: "/name", Value: 30}, false},
		{IntEq{Path: "/missing", Value: 30}, false},

		{FloatCmp{Path: "/score", Op: Ge, Value: 7.5}, true},
		{FloatCmp{Path: "/score", Op: Gt, Value: 7.5}, false},
		{FloatCmp{Path: "/score", Op: Lt, Value: 10}, true},
		{FloatCmp{Path: "/score", Op: Le, Value: 7.4}, false},
		{FloatCmp{Path: "/score", Op: Eq, Value: 7.5}, true},
		{FloatCmp{Path: "/age", Op: Gt, Value: 29}, true}, // ints are numbers too
		{FloatCmp{Path: "/name", Op: Gt, Value: 0}, false},

		{StrEq{Path: "/name", Value: "alice"}, true},
		{StrEq{Path: "/name", Value: "bob"}, false},
		{StrEq{Path: "/age", Value: "30"}, false},

		{HasPrefix{Path: "/name", Prefix: "ali"}, true},
		{HasPrefix{Path: "/name", Prefix: "bob"}, false},
		{HasPrefix{Path: "/name", Prefix: ""}, true},
		{HasPrefix{Path: "/age", Prefix: "3"}, false},

		{BoolEq{Path: "/active", Value: true}, true},
		{BoolEq{Path: "/active", Value: false}, false},
		{BoolEq{Path: "/name", Value: true}, false},

		{ArrSize{Path: "/tags", Op: Eq, Value: 3}, true},
		{ArrSize{Path: "/tags", Op: Gt, Value: 3}, false},
		{ArrSize{Path: "/tags", Op: Le, Value: 5}, true},
		{ArrSize{Path: "/profile", Op: Eq, Value: 2}, false}, // object, not array

		{ObjSize{Path: "/profile", Op: Eq, Value: 2}, true},
		{ObjSize{Path: "/profile", Op: Lt, Value: 2}, false},
		{ObjSize{Path: "/tags", Op: Eq, Value: 3}, false}, // array, not object
		{ObjSize{Path: "", Op: Ge, Value: 7}, true},       // root object size
	}
	for _, c := range cases {
		if got := c.p.Eval(d); got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIntEqMatchesEqualFloat(t *testing.T) {
	d := doc(t, `{"x": 5.0}`)
	if !(IntEq{Path: "/x", Value: 5}).Eval(d) {
		t.Errorf("5.0 does not satisfy == 5")
	}
	if (IntEq{Path: "/x", Value: 6}).Eval(d) {
		t.Errorf("5.0 satisfies == 6")
	}
}

func TestAndOr(t *testing.T) {
	d := doc(t, sample)
	yes := Exists{Path: "/name"}
	no := Exists{Path: "/missing"}
	if !(And{yes, yes}).Eval(d) || (And{yes, no}).Eval(d) || (And{no, yes}).Eval(d) {
		t.Errorf("And truth table wrong")
	}
	if !(Or{yes, no}).Eval(d) || !(Or{no, yes}).Eval(d) || (Or{no, no}).Eval(d) {
		t.Errorf("Or truth table wrong")
	}
}

func TestPredicateStrings(t *testing.T) {
	cases := []struct {
		p    Predicate
		want string
	}{
		{Exists{Path: "/a"}, "EXISTS('/a')"},
		{IsString{Path: "/a/b"}, "ISSTRING('/a/b')"},
		{IntEq{Path: "/n", Value: -3}, "'/n' == -3"},
		{FloatCmp{Path: "/f", Op: Ge, Value: 2.5}, "'/f' >= 2.5"},
		{StrEq{Path: "/s", Value: `say "hi"`}, `'/s' == "say \"hi\""`},
		{HasPrefix{Path: "/s", Prefix: "ab"}, `HASPREFIX('/s', "ab")`},
		{BoolEq{Path: "/b", Value: false}, "'/b' == false"},
		{ArrSize{Path: "/a", Op: Lt, Value: 4}, "ARRSIZE('/a') < 4"},
		{ObjSize{Path: "/o", Op: Eq, Value: 2}, "OBJSIZE('/o') == 2"},
		{And{Exists{Path: "/a"}, BoolEq{Path: "/b", Value: true}}, "(EXISTS('/a') && '/b' == true)"},
		{Or{Exists{Path: "/a"}, Exists{Path: "/b"}}, "(EXISTS('/a') || EXISTS('/b'))"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "=="}
	for op, s := range ops {
		if op.String() != s {
			t.Errorf("%d renders as %q, want %q", op, op.String(), s)
		}
	}
}

func TestWalkAndLeaves(t *testing.T) {
	p := And{
		Or{Exists{Path: "/a"}, IsString{Path: "/b"}},
		BoolEq{Path: "/c", Value: true},
	}
	var kinds []string
	Walk(p, func(n Predicate) { kinds = append(kinds, LeafKind(n)) })
	want := []string{"and", "or", "exists", "isstring", "bool-eq"}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("Walk order = %v, want %v", kinds, want)
	}
	leaves := Leaves(p)
	if len(leaves) != 3 {
		t.Errorf("Leaves = %d nodes", len(leaves))
	}
	if path, ok := LeafPath(leaves[2]); !ok || path != "/c" {
		t.Errorf("LeafPath = %v, %v", path, ok)
	}
	if _, ok := LeafPath(p); ok {
		t.Errorf("LeafPath on inner node returned a path")
	}
	Walk(nil, func(Predicate) { t.Errorf("Walk(nil) visited a node") })
	if Leaves(nil) != nil {
		t.Errorf("Leaves(nil) non-empty")
	}
}

func TestLeafKindCoversAll(t *testing.T) {
	all := []Predicate{
		Exists{}, IsString{}, IntEq{}, FloatCmp{}, StrEq{},
		HasPrefix{}, BoolEq{}, ArrSize{}, ObjSize{}, And{}, Or{},
	}
	seen := map[string]bool{}
	for _, p := range all {
		k := LeafKind(p)
		if k == "unknown" {
			t.Errorf("%T has no LeafKind", p)
		}
		if seen[k] {
			t.Errorf("duplicate LeafKind %q", k)
		}
		seen[k] = true
	}
}

// randomPredicate builds a random predicate over the small document universe
// used by the property tests.
func randomPredicate(r *rand.Rand, depth int) Predicate {
	paths := []jsonval.Path{"/a", "/b", "/c", "/d/e"}
	p := paths[r.Intn(len(paths))]
	ops := []CmpOp{Lt, Le, Gt, Ge, Eq}
	if depth > 0 && r.Intn(3) == 0 {
		l, rr := randomPredicate(r, depth-1), randomPredicate(r, depth-1)
		if r.Intn(2) == 0 {
			return And{l, rr}
		}
		return Or{l, rr}
	}
	switch r.Intn(9) {
	case 0:
		return Exists{Path: p}
	case 1:
		return IsString{Path: p}
	case 2:
		return IntEq{Path: p, Value: int64(r.Intn(10))}
	case 3:
		return FloatCmp{Path: p, Op: ops[r.Intn(len(ops))], Value: r.Float64() * 10}
	case 4:
		return StrEq{Path: p, Value: string(rune('a' + r.Intn(4)))}
	case 5:
		return HasPrefix{Path: p, Prefix: string(rune('a' + r.Intn(4)))}
	case 6:
		return BoolEq{Path: p, Value: r.Intn(2) == 0}
	case 7:
		return ArrSize{Path: p, Op: ops[r.Intn(len(ops))], Value: r.Intn(4)}
	default:
		return ObjSize{Path: p, Op: ops[r.Intn(len(ops))], Value: r.Intn(4)}
	}
}

func randomSmallDoc(r *rand.Rand) jsonval.Value {
	mk := func() jsonval.Value {
		switch r.Intn(6) {
		case 0:
			return jsonval.IntValue(int64(r.Intn(10)))
		case 1:
			return jsonval.FloatValue(r.Float64() * 10)
		case 2:
			return jsonval.StringValue(string(rune('a' + r.Intn(4))))
		case 3:
			return jsonval.BoolValue(r.Intn(2) == 0)
		case 4:
			n := r.Intn(4)
			elems := make([]jsonval.Value, n)
			for i := range elems {
				elems[i] = jsonval.IntValue(int64(i))
			}
			return jsonval.ArrayValue(elems...)
		default:
			return jsonval.NullValue()
		}
	}
	var members []jsonval.Member
	for _, k := range []string{"a", "b", "c"} {
		if r.Intn(2) == 0 {
			members = append(members, jsonval.Member{Key: k, Value: mk()})
		}
	}
	if r.Intn(2) == 0 {
		members = append(members, jsonval.Member{Key: "d", Value: jsonval.ObjectValue(
			jsonval.Member{Key: "e", Value: mk()},
		)})
	}
	return jsonval.ObjectValue(members...)
}

func TestBooleanAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(randomPredicate(r, 2))
		vs[1] = reflect.ValueOf(randomPredicate(r, 2))
		vs[2] = reflect.ValueOf(randomSmallDoc(r))
	}}
	prop := func(p, q Predicate, d jsonval.Value) bool {
		andOK := And{p, q}.Eval(d) == (p.Eval(d) && q.Eval(d))
		orOK := Or{p, q}.Eval(d) == (p.Eval(d) || q.Eval(d))
		commutes := And{p, q}.Eval(d) == And{q, p}.Eval(d) && Or{p, q}.Eval(d) == Or{q, p}.Eval(d)
		idempotent := And{p, p}.Eval(d) == p.Eval(d) && Or{p, p}.Eval(d) == p.Eval(d)
		return andOK && orOK && commutes && idempotent
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPredicateStringIsStable(t *testing.T) {
	// The canonical form backs duplicate suppression: equal predicates
	// must render identically, and rendering must be deterministic.
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		p := randomPredicate(r, 3)
		if p.String() != p.String() {
			t.Fatalf("non-deterministic String for %#v", p)
		}
	}
}
