package query

import (
	"fmt"
	"strings"

	"github.com/joda-explore/betze/internal/jsonval"
)

// AggFunc enumerates the aggregation functions of §III-A.
type AggFunc uint8

// Supported aggregation functions.
const (
	// Count counts the documents that contain the aggregation path; with
	// the root path it counts all documents.
	Count AggFunc = iota
	// Sum sums the numeric attribute over the documents that have it.
	Sum
)

// String renders the function name in the internal syntax.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// Aggregation describes an optional aggregation stage: one of the supported
// functions, optionally grouped by another attribute (<Agg> GROUP BY <ptr>).
type Aggregation struct {
	Func AggFunc
	// Path is the aggregated attribute; the root path makes Count count
	// every document.
	Path jsonval.Path
	// Grouped enables GROUP BY GroupBy.
	Grouped bool
	GroupBy jsonval.Path
}

// String renders the aggregation in the internal syntax.
func (a Aggregation) String() string {
	s := fmt.Sprintf("%s('%s')", a.Func, a.Path)
	if a.Grouped {
		s += fmt.Sprintf(" GROUP BY '%s'", a.GroupBy)
	}
	return s
}

// Query is the internal representation of one generated exploration step:
// a base dataset, an optional store target, an optional filter and an
// optional aggregation.
type Query struct {
	// ID identifies the query within its session (e.g. "q4").
	ID string
	// Base names the dataset the query reads.
	Base string
	// Store names the dataset the result is stored in; empty when the
	// result is not materialised.
	Store string
	// Filter is the predicate tree; nil selects every document.
	Filter Predicate
	// Transform optionally restructures every matching document before
	// aggregation/output (the paper's future-work extension).
	Transform *Transform
	// Agg is the optional aggregation stage; it sees transformed
	// documents when Transform is set.
	Agg *Aggregation
}

// Validate reports structural errors: a query needs a base dataset, and an
// aggregated result cannot be stored as a dataset (the paper: it "would
// only consist of one aggregated document, which can not be filtered
// further"). Engines reject invalid queries up front so they cannot diverge
// on undefined semantics.
func (q *Query) Validate() error {
	if q.Base == "" {
		return fmt.Errorf("query %s: no base dataset", q.ID)
	}
	if q.Store != "" && q.Agg != nil {
		return fmt.Errorf("query %s: an aggregated result cannot be stored as a dataset", q.ID)
	}
	return nil
}

// Matches reports whether doc passes the query's filter. A nil filter
// matches everything.
func (q *Query) Matches(doc jsonval.Value) bool {
	return q.Filter == nil || q.Filter.Eval(doc)
}

// ApplyTransform returns the document after the query's transform stage (a
// no-op without one).
func (q *Query) ApplyTransform(doc jsonval.Value) jsonval.Value {
	if q.Transform == nil {
		return doc
	}
	return q.Transform.Apply(doc)
}

// String renders the query in the internal syntax, which doubles as the
// JODA-independent display form in logs and the web UI.
func (q *Query) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FROM %s", q.Base)
	if q.Filter != nil {
		fmt.Fprintf(&sb, " WHERE %s", q.Filter)
	}
	if q.Transform != nil {
		fmt.Fprintf(&sb, " %s", q.Transform)
	}
	if q.Agg != nil {
		fmt.Fprintf(&sb, " %s", q.Agg)
	}
	if q.Store != "" {
		fmt.Fprintf(&sb, " STORE %s", q.Store)
	}
	return sb.String()
}

// Paths returns every attribute path referenced by the query (filter leaves,
// aggregation path, group-by path), in first-reference order with duplicates
// preserved — Fig. 8 and Table IV of the paper count references, not
// distinct attributes.
func (q *Query) Paths() []jsonval.Path {
	var out []jsonval.Path
	for _, leaf := range Leaves(q.Filter) {
		if p, ok := LeafPath(leaf); ok {
			out = append(out, p)
		}
	}
	if q.Agg != nil {
		if q.Agg.Path != jsonval.RootPath {
			out = append(out, q.Agg.Path)
		}
		if q.Agg.Grouped {
			out = append(out, q.Agg.GroupBy)
		}
	}
	return out
}

// Aggregator incrementally computes a query's aggregation. Engines feed it
// the documents that pass the filter and call Result once.
type Aggregator struct {
	agg Aggregation

	// ungrouped state
	count    int64
	sumInt   int64
	sumFloat float64
	sawFloat bool
	sawAny   bool

	// grouped state
	groups map[string]*groupState
	order  []string // insertion order for deterministic-yet-natural output
}

type groupState struct {
	key      jsonval.Value
	count    int64
	sumInt   int64
	sumFloat float64
	sawFloat bool
	sawAny   bool
}

// NewAggregator returns an aggregator for agg.
func NewAggregator(agg Aggregation) *Aggregator {
	a := &Aggregator{agg: agg}
	if agg.Grouped {
		a.groups = make(map[string]*groupState)
	}
	return a
}

// Add folds one matching document into the aggregate.
func (a *Aggregator) Add(doc jsonval.Value) {
	v, vok := a.agg.Path.Lookup(doc)
	group, gok := jsonval.Value{}, false
	if a.agg.Grouped {
		group, gok = a.agg.GroupBy.Lookup(doc)
	}
	a.AddValues(v, vok, group, gok)
}

// AddValues folds pre-extracted attribute values into the aggregate: v is
// the value at the aggregation path (vok false when absent) and group the
// value at the group-by path. Engines that navigate binary documents lazily
// use this entry point to avoid materialising whole documents.
func (a *Aggregator) AddValues(v jsonval.Value, vok bool, group jsonval.Value, gok bool) {
	if !a.agg.Grouped {
		a.fold(v, vok, nil)
		return
	}
	if !gok {
		// Documents without the grouping attribute fall into the null
		// group, matching MongoDB's $group behaviour.
		group = jsonval.NullValue()
	}
	gk := group.GroupKey()
	g := a.groups[gk]
	if g == nil {
		g = &groupState{key: group}
		a.groups[gk] = g
		a.order = append(a.order, gk)
	}
	a.fold(v, vok, g)
}

func (a *Aggregator) fold(v jsonval.Value, ok bool, g *groupState) {
	switch a.agg.Func {
	case Count:
		if !ok {
			return
		}
		if g != nil {
			g.count++
		} else {
			a.count++
		}
	case Sum:
		if !ok {
			return
		}
		switch v.Kind() {
		case jsonval.Int:
			if g != nil {
				g.sumInt += v.Int()
				g.sawAny = true
			} else {
				a.sumInt += v.Int()
				a.sawAny = true
			}
		case jsonval.Float:
			if g != nil {
				g.sumFloat += v.Float()
				g.sawFloat = true
				g.sawAny = true
			} else {
				a.sumFloat += v.Float()
				a.sawFloat = true
				a.sawAny = true
			}
		}
	}
}

func sumValue(sumInt int64, sumFloat float64, sawFloat, sawAny bool) jsonval.Value {
	if !sawAny {
		return jsonval.NullValue()
	}
	if sawFloat {
		return jsonval.FloatValue(sumFloat + float64(sumInt))
	}
	return jsonval.IntValue(sumInt)
}

// Result returns the aggregation output documents: one document for an
// ungrouped aggregation, one per group otherwise (insertion-ordered).
func (a *Aggregator) Result() []jsonval.Value {
	field := strings.ToLower(a.agg.Func.String())
	if !a.agg.Grouped {
		var v jsonval.Value
		switch a.agg.Func {
		case Count:
			v = jsonval.IntValue(a.count)
		case Sum:
			v = sumValue(a.sumInt, a.sumFloat, a.sawFloat, a.sawAny)
		}
		return []jsonval.Value{jsonval.ObjectValue(jsonval.Member{Key: field, Value: v})}
	}
	out := make([]jsonval.Value, 0, len(a.order))
	for _, gk := range a.order {
		g := a.groups[gk]
		var v jsonval.Value
		switch a.agg.Func {
		case Count:
			v = jsonval.IntValue(g.count)
		case Sum:
			v = sumValue(g.sumInt, g.sumFloat, g.sawFloat, g.sawAny)
		}
		out = append(out, jsonval.ObjectValue(
			jsonval.Member{Key: "group", Value: g.key},
			jsonval.Member{Key: field, Value: v},
		))
	}
	return out
}
