package query

import (
	"encoding/json"
	"fmt"

	"github.com/joda-explore/betze/internal/jsonval"
)

// The JSON form of the internal query representation. It backs the CLI's
// two-step flow (generate a session file, benchmark it later) and the
// sharing of generated benchmarks between parties (§IV-C).

type predicateJSON struct {
	Kind  string         `json:"kind"`
	Left  *predicateJSON `json:"left,omitempty"`
	Right *predicateJSON `json:"right,omitempty"`
	Path  string         `json:"path,omitempty"`
	Op    string         `json:"op,omitempty"`
	Int   int64          `json:"int,omitempty"`
	Float float64        `json:"float,omitempty"`
	Str   string         `json:"str,omitempty"`
	Bool  bool           `json:"bool,omitempty"`
	Size  int            `json:"size,omitempty"`
}

type aggregationJSON struct {
	Func    string `json:"func"`
	Path    string `json:"path"`
	Grouped bool   `json:"grouped,omitempty"`
	GroupBy string `json:"group_by,omitempty"`
}

type transformOpJSON struct {
	Kind    string `json:"kind"`
	Path    string `json:"path"`
	NewName string `json:"new_name,omitempty"`
	Value   string `json:"value,omitempty"` // compact JSON text of the constant
}

type queryJSON struct {
	ID        string            `json:"id,omitempty"`
	Base      string            `json:"base"`
	Store     string            `json:"store,omitempty"`
	Filter    *predicateJSON    `json:"filter,omitempty"`
	Transform []transformOpJSON `json:"transform,omitempty"`
	Agg       *aggregationJSON  `json:"agg,omitempty"`
}

func encodePredicate(p Predicate) *predicateJSON {
	switch n := p.(type) {
	case nil:
		return nil
	case And:
		return &predicateJSON{Kind: "and", Left: encodePredicate(n.Left), Right: encodePredicate(n.Right)}
	case Or:
		return &predicateJSON{Kind: "or", Left: encodePredicate(n.Left), Right: encodePredicate(n.Right)}
	case Exists:
		return &predicateJSON{Kind: "exists", Path: n.Path.String()}
	case IsString:
		return &predicateJSON{Kind: "isstring", Path: n.Path.String()}
	case IntEq:
		return &predicateJSON{Kind: "int-eq", Path: n.Path.String(), Int: n.Value}
	case FloatCmp:
		return &predicateJSON{Kind: "float-cmp", Path: n.Path.String(), Op: n.Op.String(), Float: n.Value}
	case StrEq:
		return &predicateJSON{Kind: "str-eq", Path: n.Path.String(), Str: n.Value}
	case HasPrefix:
		return &predicateJSON{Kind: "hasprefix", Path: n.Path.String(), Str: n.Prefix}
	case BoolEq:
		return &predicateJSON{Kind: "bool-eq", Path: n.Path.String(), Bool: n.Value}
	case ArrSize:
		return &predicateJSON{Kind: "arrsize", Path: n.Path.String(), Op: n.Op.String(), Size: n.Value}
	case ObjSize:
		return &predicateJSON{Kind: "objsize", Path: n.Path.String(), Op: n.Op.String(), Size: n.Value}
	default:
		return nil
	}
}

func parseOp(s string) (CmpOp, error) {
	for _, op := range []CmpOp{Lt, Le, Gt, Ge, Eq} {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("query: unknown comparison operator %q", s)
}

func decodePredicate(p *predicateJSON) (Predicate, error) {
	if p == nil {
		return nil, nil
	}
	path := jsonval.ParsePath(p.Path)
	switch p.Kind {
	case "and", "or":
		left, err := decodePredicate(p.Left)
		if err != nil {
			return nil, err
		}
		right, err := decodePredicate(p.Right)
		if err != nil {
			return nil, err
		}
		if left == nil || right == nil {
			return nil, fmt.Errorf("query: %s node missing a child", p.Kind)
		}
		if p.Kind == "and" {
			return And{Left: left, Right: right}, nil
		}
		return Or{Left: left, Right: right}, nil
	case "exists":
		return Exists{Path: path}, nil
	case "isstring":
		return IsString{Path: path}, nil
	case "int-eq":
		return IntEq{Path: path, Value: p.Int}, nil
	case "float-cmp":
		op, err := parseOp(p.Op)
		if err != nil {
			return nil, err
		}
		return FloatCmp{Path: path, Op: op, Value: p.Float}, nil
	case "str-eq":
		return StrEq{Path: path, Value: p.Str}, nil
	case "hasprefix":
		return HasPrefix{Path: path, Prefix: p.Str}, nil
	case "bool-eq":
		return BoolEq{Path: path, Value: p.Bool}, nil
	case "arrsize":
		op, err := parseOp(p.Op)
		if err != nil {
			return nil, err
		}
		return ArrSize{Path: path, Op: op, Value: p.Size}, nil
	case "objsize":
		op, err := parseOp(p.Op)
		if err != nil {
			return nil, err
		}
		return ObjSize{Path: path, Op: op, Value: p.Size}, nil
	default:
		return nil, fmt.Errorf("query: unknown predicate kind %q", p.Kind)
	}
}

// MarshalJSON implements json.Marshaler.
func (q *Query) MarshalJSON() ([]byte, error) {
	out := queryJSON{
		ID:     q.ID,
		Base:   q.Base,
		Store:  q.Store,
		Filter: encodePredicate(q.Filter),
	}
	if q.Transform != nil {
		for _, op := range q.Transform.Ops {
			e := transformOpJSON{Kind: op.Kind.String(), Path: op.Path.String(), NewName: op.NewName}
			if op.Kind == TransformAdd {
				e.Value = string(jsonval.AppendJSON(nil, op.Value))
			}
			out.Transform = append(out.Transform, e)
		}
	}
	if q.Agg != nil {
		out.Agg = &aggregationJSON{
			Func:    q.Agg.Func.String(),
			Path:    q.Agg.Path.String(),
			Grouped: q.Agg.Grouped,
			GroupBy: q.Agg.GroupBy.String(),
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (q *Query) UnmarshalJSON(data []byte) error {
	var in queryJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("query: %w", err)
	}
	filter, err := decodePredicate(in.Filter)
	if err != nil {
		return err
	}
	*q = Query{ID: in.ID, Base: in.Base, Store: in.Store, Filter: filter}
	if len(in.Transform) > 0 {
		t := &Transform{}
		for _, e := range in.Transform {
			op := TransformOp{Path: jsonval.ParsePath(e.Path), NewName: e.NewName}
			switch e.Kind {
			case "rename":
				op.Kind = TransformRename
			case "remove":
				op.Kind = TransformRemove
			case "add":
				op.Kind = TransformAdd
				v, err := jsonval.Parse([]byte(e.Value))
				if err != nil {
					return fmt.Errorf("query: transform constant: %w", err)
				}
				op.Value = v
			default:
				return fmt.Errorf("query: unknown transform kind %q", e.Kind)
			}
			t.Ops = append(t.Ops, op)
		}
		q.Transform = t
	}
	if in.Agg != nil {
		var fn AggFunc
		switch in.Agg.Func {
		case Count.String():
			fn = Count
		case Sum.String():
			fn = Sum
		default:
			return fmt.Errorf("query: unknown aggregation function %q", in.Agg.Func)
		}
		q.Agg = &Aggregation{
			Func:    fn,
			Path:    jsonval.ParsePath(in.Agg.Path),
			Grouped: in.Agg.Grouped,
			GroupBy: jsonval.ParsePath(in.Agg.GroupBy),
		}
	}
	return nil
}
