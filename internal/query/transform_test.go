package query

import (
	"encoding/json"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
)

func TestTransformRename(t *testing.T) {
	d := doc(t, `{"user":{"name":"alice","id":1},"x":2}`)
	tr := &Transform{Ops: []TransformOp{
		{Kind: TransformRename, Path: "/user/name", NewName: "full_name"},
	}}
	out := tr.Apply(d)
	if _, ok := ParsePathHelper("/user/name").Lookup(out); ok {
		t.Errorf("old attribute survived: %s", out)
	}
	v, ok := ParsePathHelper("/user/full_name").Lookup(out)
	if !ok || v.Str() != "alice" {
		t.Errorf("renamed attribute = %v, %v (%s)", v, ok, out)
	}
	// Untouched parts intact, original not modified.
	if v, _ := ParsePathHelper("/x").Lookup(out); v.Int() != 2 {
		t.Errorf("sibling changed: %s", out)
	}
	if _, ok := ParsePathHelper("/user/name").Lookup(d); !ok {
		t.Errorf("original document was mutated")
	}
}

// ParsePathHelper keeps test call sites short.
func ParsePathHelper(s string) jsonval.Path { return jsonval.ParsePath(s) }

func TestTransformRemove(t *testing.T) {
	d := doc(t, `{"a":{"b":1,"c":2},"d":3}`)
	tr := &Transform{Ops: []TransformOp{{Kind: TransformRemove, Path: "/a/b"}}}
	out := tr.Apply(d)
	if _, ok := ParsePathHelper("/a/b").Lookup(out); ok {
		t.Errorf("removed attribute survived: %s", out)
	}
	if v, _ := ParsePathHelper("/a/c").Lookup(out); v.Int() != 2 {
		t.Errorf("sibling removed: %s", out)
	}
}

func TestTransformAdd(t *testing.T) {
	d := doc(t, `{"a":1}`)
	tr := &Transform{Ops: []TransformOp{
		{Kind: TransformAdd, Path: "/tag", Value: jsonval.StringValue("v")},
		{Kind: TransformAdd, Path: "/a", Value: jsonval.IntValue(9)}, // overwrite
	}}
	out := tr.Apply(d)
	if v, ok := ParsePathHelper("/tag").Lookup(out); !ok || v.Str() != "v" {
		t.Errorf("added attribute = %v, %v", v, ok)
	}
	if v, _ := ParsePathHelper("/a").Lookup(out); v.Int() != 9 {
		t.Errorf("overwrite failed: %s", out)
	}
}

func TestTransformMissingTargetsAreNoOps(t *testing.T) {
	d := doc(t, `{"a":1}`)
	tr := &Transform{Ops: []TransformOp{
		{Kind: TransformRename, Path: "/missing", NewName: "x"},
		{Kind: TransformRemove, Path: "/also/missing"},
	}}
	if out := tr.Apply(d); out.String() != d.String() {
		t.Errorf("no-op transform changed document: %s", out)
	}
}

func TestTransformNestedAddRequiresParent(t *testing.T) {
	d := doc(t, `{"a":{"b":1}}`)
	tr := &Transform{Ops: []TransformOp{
		{Kind: TransformAdd, Path: "/a/new", Value: jsonval.IntValue(5)},
		{Kind: TransformAdd, Path: "/ghost/new", Value: jsonval.IntValue(5)}, // parent absent
	}}
	out := tr.Apply(d)
	if v, ok := ParsePathHelper("/a/new").Lookup(out); !ok || v.Int() != 5 {
		t.Errorf("nested add failed: %s", out)
	}
	if _, ok := ParsePathHelper("/ghost").Lookup(out); ok {
		t.Errorf("add created a missing parent: %s", out)
	}
}

func TestTransformOpsApplyInOrder(t *testing.T) {
	d := doc(t, `{"a":1}`)
	tr := &Transform{Ops: []TransformOp{
		{Kind: TransformRename, Path: "/a", NewName: "b"},
		{Kind: TransformRemove, Path: "/b"},
	}}
	out := tr.Apply(d)
	if out.Len() != 0 {
		t.Errorf("rename-then-remove left %s", out)
	}
}

func TestTransformString(t *testing.T) {
	tr := &Transform{Ops: []TransformOp{
		{Kind: TransformRename, Path: "/a", NewName: "b"},
		{Kind: TransformRemove, Path: "/c"},
		{Kind: TransformAdd, Path: "/d", Value: jsonval.IntValue(5)},
	}}
	want := `TRANSFORM RENAME('/a' -> "b"), REMOVE('/c'), ADD('/d' = 5)`
	if got := tr.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	q := &Query{Base: "ds", Transform: tr}
	if got := q.String(); got != "FROM ds "+want {
		t.Errorf("query String() = %q", got)
	}
}

func TestTransformJSONRoundTrip(t *testing.T) {
	q := &Query{
		ID:   "q1",
		Base: "ds",
		Transform: &Transform{Ops: []TransformOp{
			{Kind: TransformRename, Path: "/a/b", NewName: "c"},
			{Kind: TransformRemove, Path: "/x"},
			{Kind: TransformAdd, Path: "/y", Value: jsonval.FloatValue(2.5)},
		}},
	}
	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var back Query
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != q.String() {
		t.Errorf("round trip:\n got %s\nwant %s", back.String(), q.String())
	}
	d := doc(t, `{"a":{"b":1},"x":2}`)
	if back.ApplyTransform(d).String() != q.ApplyTransform(d).String() {
		t.Errorf("decoded transform behaves differently")
	}
}

func TestApplyTransformNil(t *testing.T) {
	q := &Query{Base: "ds"}
	d := doc(t, `{"a":1}`)
	if q.ApplyTransform(d).String() != d.String() {
		t.Errorf("nil transform changed document")
	}
}
