// Compiled predicate execution. Compile flattens a Predicate tree into
// allocation-free closures once per query, so the per-document hot path of a
// scan pays no interface dispatch, no path re-splitting and no operator
// switches. The paper's evaluation (Fig. 8–9, Table II) measures engines by
// per-query latency over generated sessions; this layer is where the
// reproduction spends that latency, so it is compiled rather than
// interpreted.
//
// Four transformations happen at compile time, all semantics-preserving
// (leaf evaluation is pure, so AND/OR operand order and eager path
// resolution cannot change results):
//
//   - every distinct leaf path is merged into one path trie; leaves
//     resolve lazily through it with per-evaluation memoisation, sharing one
//     resumable member scan per object level (key-hash masks reject
//     non-candidate members with a few ANDs) that stamps every sibling path
//     it passes and stops at the one requested, so N leaves over the same
//     object pay at most one scan between them, and members past the last
//     sibling a short-circuited evaluation asks for are never visited;
//   - paths that cannot join the trie (node fan-out overflow) are still
//     pre-resolved to step slices (jsonval.Path.Steps), making their
//     per-document lookup a plain field walk (jsonval.LookupSteps);
//   - comparison leaves are constant-folded: operators specialise into
//     dedicated closures, EXISTS on the root folds to true, size comparisons
//     that no length can satisfy fold to false, and folded constants
//     propagate through AND/OR;
//   - AND/OR children are ordered by a static cost model so cheap
//     existence/type checks run before string prefix/equality work and
//     short-circuit the expensive half away.
package query

import (
	"sync"

	"github.com/joda-explore/betze/internal/jsonval"
)

// evalFunc is one compiled node: a pure per-document evaluator. The
// document travels inside the scratch (sc.doc) rather than as a parameter:
// a jsonval.Value is ~90 bytes, and passing it by value through every
// AND/OR/leaf closure of a tree would copy it once per node per document.
type evalFunc func(sc *scratch) bool

// leafTest is a pure check of the value found at a leaf's path; ok is false
// when the path is absent, and the pointer must not be dereferenced then.
// Pointer, not value: a jsonval.Value is ~90 bytes, and leaf tests run once
// per document per leaf.
type leafTest func(v *jsonval.Value, ok bool) bool

// Static leaf costs for operand ordering. Only the relative order matters:
// existence and type checks are cheapest, numeric comparisons add a kind
// dispatch, string equality compares payload bytes, and prefix matching is
// the closest thing BETZE has to regex-like work. Each path step adds a
// field walk on top.
const (
	costStep     = 2
	costExists   = 1
	costTypeOnly = 1
	costNumeric  = 2
	costSize     = 2
	costStrEq    = 4
	costPrefix   = 6
	costBranch   = 1
)

// maxTrieEdges bounds the fan-out of one path-trie node: the single-walk
// resolver tracks which edges matched in a per-walk uint64 bitmask, so a
// node that would grow a 65th edge stops accepting slots and the overflowing
// leaves fall back to their own LookupSteps walk. Generated predicates never
// come close (a tree has at most a few dozen leaves in total).
const maxTrieEdges = 64

// scratch is the per-evaluation slot buffer, pooled so Eval allocates
// nothing in steady state. Slot validity is generation-stamped instead of
// cleared: a slot is meaningful only when its gen matches the scratch's
// current gen, so reusing a pooled scratch needs no per-eval zeroing.
type scratch struct {
	doc      *jsonval.Value // the document under evaluation
	docv     jsonval.Value  // copy buffer for by-value entry points
	gen      uint64
	rootGen  uint64 // rootScan is initialised for this gen
	rootScan scanState
	slots    []slotVal
}

// setDoc points the scratch at doc for the next evaluation. The by-value
// entry points copy into the buffer first; Evaluator.EvalAt skips the copy.
func (sc *scratch) setDoc(doc jsonval.Value) {
	sc.docv = doc
	sc.doc = &sc.docv
}

// slotVal memoises one trie node for the current evaluation. v points into
// the document being evaluated (documents are immutable and outlive the
// evaluation); a stamped slot with v == nil records a known-absent path, so
// misses are memoised as cheaply as hits.
type slotVal struct {
	v       *jsonval.Value
	gen     uint64 // v (possibly nil = absent) is valid for this gen
	scanGen uint64 // scan is initialised for this gen
	scan    scanState
}

// scanState is the resumable position of one node's member scan within the
// current evaluation. The scan over an object's members stops as soon as the
// requested child is stamped; when a later leaf asks for another sibling the
// scan picks up at pos instead of restarting, so across the whole evaluation
// each member is still visited at most once — but members past the last
// sibling a short-circuited evaluation actually asked for are never touched.
type scanState struct {
	pos       int32  // next member index to visit
	remaining int32  // unmatched children
	matched   uint64 // edges already stamped (first match wins, as Value.Field)
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// resolver is the compiled path trie: every distinct leaf path is a node,
// identified by its index, and that index doubles as the node's slot in the
// per-evaluation scratch. It is immutable after Compile and safe for
// concurrent evaluations (per-evaluation state lives in the scratch).
type resolver struct {
	nodes []pathNode
	root  kidSet
}

// pathNode is one step of one path.
type pathNode struct {
	parent int32 // -1 when the step applies to the document root
	edge   int32 // this node's index within its parent's kidSet
	key    string
	kids   kidSet
}

// kidSet is the set of child steps under one trie node, laid out for the
// batch scan: keys is parallel to kids so the scan's inner loop touches one
// flat string slice, and the two independent hash masks reject a
// non-candidate member with two shifts and two ANDs (one mask alone passes
// too many of a large object's members; two cut false positives
// quadratically). That filter is what makes the batch scan cheaper than
// per-leaf Field walks.
type kidSet struct {
	kids    []int32
	keys    []string
	sigs    []uint16 // keyHash<<8 | keyHash2, one integer compare per candidate
	lenMask uint64
	mask    uint64
	mask2   uint64
}

func (ks *kidSet) add(idx int32, key string) {
	ks.kids = append(ks.kids, idx)
	ks.keys = append(ks.keys, key)
	ks.sigs = append(ks.sigs, uint16(keyHash(key))<<8|uint16(keyHash2(key)))
	ks.lenMask |= 1 << (uint(len(key)) & 63)
	ks.mask |= 1 << keyHash(key)
	ks.mask2 |= 1 << keyHash2(key)
}

// keyHash maps a member key to its mask bit. Length alone collides too
// often on real datasets (Twitter objects have many same-length keys);
// folding in the first byte makes misses the overwhelmingly common case.
func keyHash(key string) uint {
	h := uint(len(key))
	if len(key) > 0 {
		h += uint(key[0]) << 1
	}
	return h & 63
}

// keyHash2 is the second, independent filter bit: last byte and length.
func keyHash2(key string) uint {
	h := uint(len(key)) * 3
	if len(key) > 0 {
		h += uint(key[len(key)-1])
	}
	return h & 63
}

// resolve returns the value at node idx inside doc, nil when the path is
// absent. A request for a child of an object advances that object's shared
// member scan just far enough to stamp the requested slot, stamping every
// sibling path it passes on the way and memoising the position, so each
// object level is scanned at most once per evaluation no matter how many
// leaves read it — and members (or whole subtrees) the short-circuiting
// boolean evaluation never reaches are never scanned.
func (r *resolver) resolve(sc *scratch, idx int32) *jsonval.Value {
	s := &sc.slots[idx]
	if s.gen == sc.gen {
		return s.v
	}
	n := &r.nodes[idx]
	if p := n.parent; p < 0 {
		if sc.rootGen != sc.gen {
			sc.rootScan = scanState{remaining: int32(len(r.root.kids))}
			sc.rootGen = sc.gen
		}
		advance(sc.doc, sc, &r.root, &sc.rootScan, n.edge)
	} else {
		pv := r.resolve(sc, p)
		ps := &sc.slots[p]
		if ps.scanGen != sc.gen {
			ps.scan = scanState{remaining: int32(len(r.nodes[p].kids.kids))}
			ps.scanGen = sc.gen
		}
		advance(pv, sc, &r.nodes[p].kids, &ps.scan, n.edge)
	}
	return s.v
}

// advance moves one object's member scan forward until the child at target is
// stamped, stamping every other child it passes. Matching mirrors Value.Field
// exactly: members are visited in order and the first member with a given key
// wins (the matched bitmask ignores later duplicates). When the scan exhausts
// the members — or v is nil or not an object — every still-unmatched child is
// stamped known-absent, so absences are memoised as cheaply as hits.
// Stamping a child's slot resets its own scanGen, which is correct because a
// child's scan can only have started after the child was stamped.
func advance(v *jsonval.Value, sc *scratch, ks *kidSet, st *scanState, target int32) {
	if v != nil && v.Kind() == jsonval.Object && st.remaining > 0 {
		obj := v.Members()
		if len(ks.kids) == 1 {
			// One child: a plain Field-style scan beats hashing every member.
			want := ks.keys[0]
			for i := range obj {
				if obj[i].Key == want {
					s := &sc.slots[ks.kids[0]]
					s.v, s.gen = &obj[i].Value, sc.gen
					st.remaining = 0
					return
				}
			}
		} else {
			keys, sigs := ks.keys, ks.sigs
			for i := int(st.pos); i < len(obj); i++ {
				key := obj[i].Key
				// The length mask needs no pointer chase (the length is in
				// the string header); only survivors pay the byte loads of
				// the two hash masks.
				if ks.lenMask&(1<<(uint(len(key))&63)) == 0 {
					continue
				}
				h1, h2 := keyHash(key), keyHash2(key)
				if ks.mask&(1<<h1) == 0 || ks.mask2&(1<<h2) == 0 {
					continue
				}
				// Candidates are rejected on their precomputed hash signature
				// before any key bytes are compared.
				sig := uint16(h1)<<8 | uint16(h2)
				for e := 0; e < len(sigs); e++ {
					if sigs[e] != sig || st.matched&(1<<uint(e)) != 0 || keys[e] != key {
						continue
					}
					st.matched |= 1 << uint(e)
					st.remaining--
					// Field stores, not a composite literal: the slot's own
					// scan state needs no clearing (scanGen is gen-guarded),
					// and a whole-struct store would write it anyway.
					s := &sc.slots[ks.kids[e]]
					s.v, s.gen = &obj[i].Value, sc.gen
					if int32(e) == target || st.remaining == 0 {
						st.pos = int32(i) + 1
						return
					}
					break
				}
			}
			st.pos = int32(len(obj))
		}
	}
	// The scan is exhausted (or there was nothing to scan): everything still
	// unmatched is known-absent.
	for e, k := range ks.kids {
		if st.matched&(1<<uint(e)) == 0 {
			s := &sc.slots[k]
			s.v, s.gen = nil, sc.gen
		}
	}
	st.matched = 1<<uint(len(ks.kids)) - 1
	st.remaining = 0
}

// trieBuilder accumulates leaf paths during compilation, deduplicating
// exact paths onto shared trie nodes. Child lookup is linear: the trie is
// tiny and built once per query, and avoiding maps keeps node numbering
// trivially deterministic.
type trieBuilder struct {
	res *resolver
}

// slotFor returns the trie-node index for steps, inserting nodes as needed.
// ok is false when a node on the way is already at maxTrieEdges, in which
// case the caller's leaf resolves its own path.
func (b *trieBuilder) slotFor(steps []string) (int32, bool) {
	if b.res == nil {
		b.res = &resolver{}
	}
	r := b.res
	parent := int32(-1)
	for _, step := range steps {
		kids := r.root.kids
		if parent >= 0 {
			kids = r.nodes[parent].kids.kids
		}
		found := int32(-1)
		for _, k := range kids {
			if r.nodes[k].key == step {
				found = k
				break
			}
		}
		if found < 0 {
			if len(kids) >= maxTrieEdges {
				return 0, false
			}
			r.nodes = append(r.nodes, pathNode{parent: parent, edge: int32(len(kids)), key: step})
			found = int32(len(r.nodes) - 1)
			if parent >= 0 {
				r.nodes[parent].kids.add(found, step)
			} else {
				r.root.add(found, step)
			}
		}
		parent = found
	}
	return parent, true
}

// frozen returns the built resolver, or nil when no leaf claimed a slot.
func (b *trieBuilder) frozen() *resolver {
	if b.res == nil || len(b.res.nodes) == 0 {
		return nil
	}
	return b.res
}

// CompiledPredicate is the compiled form of a filter tree. The zero value —
// and Compile(nil) — matches every document, mirroring a nil Filter.
// CompiledPredicate itself implements Predicate (String renders the source
// tree in canonical syntax), so compiled and interpreted forms stay
// interchangeable in tests and tools.
type CompiledPredicate struct {
	fn   evalFunc
	pfn  pruneFunc
	res  *resolver
	cost int
	src  Predicate
}

// Compile flattens the predicate tree into allocation-free closures with
// pre-resolved paths, folded constants, cost-ordered AND/OR operands, and a
// shared single-walk resolver over every distinct leaf path. Compiling a nil
// predicate yields the match-everything compiled form.
func Compile(p Predicate) CompiledPredicate {
	if p == nil {
		return CompiledPredicate{}
	}
	var b trieBuilder
	n := compileNode(&b, p)
	if n.isConst {
		konst := n.constVal
		return CompiledPredicate{
			fn:   func(*scratch) bool { return konst },
			pfn:  constPrune(konst),
			cost: 0,
			src:  p,
		}
	}
	return CompiledPredicate{fn: n.fn, pfn: n.prune, res: b.frozen(), cost: n.cost, src: p}
}

// Eval implements Predicate. A zero CompiledPredicate matches everything.
// Trees with slot leaves borrow a pooled scratch for the evaluation's path
// memoisation and return it afterwards — no per-call allocation once the
// pool is warm.
func (c CompiledPredicate) Eval(doc jsonval.Value) bool {
	if c.fn == nil {
		return true
	}
	sc := scratchPool.Get().(*scratch)
	if c.res != nil {
		if n := len(c.res.nodes); cap(sc.slots) < n {
			sc.slots = make([]slotVal, n)
		}
		sc.slots = sc.slots[:cap(sc.slots)]
	}
	sc.gen++
	sc.setDoc(doc)
	ok := c.fn(sc)
	scratchPool.Put(sc)
	return ok
}

// Evaluator returns a reusable single-goroutine evaluator for the compiled
// predicate. It owns its scratch outright, so a scan loop that evaluates the
// same predicate over many documents skips Eval's per-document pool
// round-trip. Not safe for concurrent use: give each scan worker its own.
func (c CompiledPredicate) Evaluator() *Evaluator {
	e := &Evaluator{fn: c.fn}
	if c.res != nil {
		e.sc.slots = make([]slotVal, len(c.res.nodes))
	}
	return e
}

// Evaluator is a compiled predicate bound to a private scratch. The zero
// value is not useful; obtain one from CompiledPredicate.Evaluator.
type Evaluator struct {
	fn evalFunc
	sc scratch
}

// Eval reports whether doc passes the predicate, like
// CompiledPredicate.Eval.
func (e *Evaluator) Eval(doc jsonval.Value) bool {
	if e.fn == nil {
		return true
	}
	e.sc.gen++
	e.sc.setDoc(doc)
	return e.fn(&e.sc)
}

// EvalAt is Eval without the copy-in: the evaluation reads the document
// through doc, which must stay unmodified until EvalAt returns. This is the
// entry point for scan loops that index a document slice — a jsonval.Value
// is ~90 bytes, and at millions of documents per second the per-document
// copy is measurable.
func (e *Evaluator) EvalAt(doc *jsonval.Value) bool {
	if e.fn == nil {
		return true
	}
	e.sc.gen++
	e.sc.doc = doc
	return e.fn(&e.sc)
}

// EvalBlock evaluates one whole block of documents in a single call,
// writing per-document verdicts into keep (which must be at least
// len(docs) long) and returning the match count. This is the batch entry
// point sharded scans use: one indirect call per shard instead of one per
// document, with the per-document loop reduced to a generation bump, a
// pointer store and the compiled closure. Allocates nothing.
func (e *Evaluator) EvalBlock(docs []jsonval.Value, keep []bool) int {
	if len(keep) < len(docs) {
		panic("query: EvalBlock keep buffer shorter than the document block")
	}
	if e.fn == nil {
		for i := range docs {
			keep[i] = true
		}
		return len(docs)
	}
	sc, fn := &e.sc, e.fn
	matched := 0
	for i := range docs {
		sc.gen++
		sc.doc = &docs[i]
		ok := fn(sc)
		keep[i] = ok
		if ok {
			matched++
		}
	}
	return matched
}

// Matches reports whether doc passes the compiled filter; it is Eval under
// the name engines use for whole-query matching.
func (c CompiledPredicate) Matches(doc jsonval.Value) bool { return c.Eval(doc) }

// Source returns the predicate the compiled form was built from (nil for the
// zero value).
func (c CompiledPredicate) Source() Predicate { return c.src }

// Cost reports the static cost estimate of one evaluation, the quantity the
// compiler minimises front-to-back when ordering AND/OR operands. Exposed
// for tests and tooling; the unit is arbitrary.
func (c CompiledPredicate) Cost() int { return c.cost }

// String implements Predicate by rendering the source tree's canonical form,
// so compiled predicates keep working as cache keys and display strings.
func (c CompiledPredicate) String() string {
	if c.src == nil {
		return "TRUE"
	}
	return c.src.String()
}

// node is one compiled subtree: either a closure with a cost, or a folded
// constant. prune, when non-nil, is the subtree's shard-prune proof (see
// prune.go); a nil prune means the subtree can never rule a shard out.
type node struct {
	fn       evalFunc
	prune    pruneFunc
	cost     int
	isConst  bool
	constVal bool
}

func constNode(v bool) node { return node{isConst: true, constVal: v} }

// compileNode compiles one subtree, registering leaf paths with b.
func compileNode(b *trieBuilder, p Predicate) node {
	switch n := p.(type) {
	case And:
		l, r := compileNode(b, n.Left), compileNode(b, n.Right)
		if l.isConst {
			if !l.constVal {
				return constNode(false)
			}
			return r
		}
		if r.isConst {
			if !r.constVal {
				return constNode(false)
			}
			return l
		}
		// Cheap operand first; strict inequality keeps equal-cost operands
		// in source order, so compilation is deterministic.
		if r.cost < l.cost {
			l, r = r, l
		}
		lf, rf := l.fn, r.fn
		return node{
			fn: func(sc *scratch) bool { return lf(sc) && rf(sc) },
			// Either operand alone can prove the conjunction empty.
			prune: orPrune(l.prune, r.prune),
			cost:  l.cost + r.cost + costBranch,
		}
	case Or:
		l, r := compileNode(b, n.Left), compileNode(b, n.Right)
		if l.isConst {
			if l.constVal {
				return constNode(true)
			}
			return r
		}
		if r.isConst {
			if r.constVal {
				return constNode(true)
			}
			return l
		}
		if r.cost < l.cost {
			l, r = r, l
		}
		lf, rf := l.fn, r.fn
		return node{
			fn: func(sc *scratch) bool { return lf(sc) || rf(sc) },
			// A disjunction is only provably empty when both halves are.
			prune: andPrune(l.prune, r.prune),
			cost:  l.cost + r.cost + costBranch,
		}
	case CompiledPredicate:
		// An already-compiled subtree is recompiled from its source so its
		// leaves join this tree's resolver (slot indices are per-compilation;
		// splicing the inner closure would read the wrong scratch). Compile
		// stays idempotent over its own output: same source, same result.
		if n.src == nil {
			return constNode(true)
		}
		return compileNode(b, n.src)
	default:
		return compileLeaf(b, p)
	}
}

// compileLeaf specialises one leaf into a pure test over its resolved value,
// attached to a slot in the shared resolver. Every kind supplies the generic
// test (for root paths and trie overflow) plus a fused slot closure with the
// test inlined, so the hot slot path pays one indirect call per leaf instead
// of two. Unknown leaf types (external Predicate implementations) fall back
// to their own Eval so Compile stays total.
func compileLeaf(b *trieBuilder, p Predicate) node {
	switch n := p.(type) {
	case Exists:
		if len(n.Path.Steps()) == 0 {
			// EXISTS('/') — the root always exists.
			return constNode(true)
		}
		return pathLeaf(b, costExists, n.Path, zoneExists,
			func(_ *jsonval.Value, ok bool) bool { return ok },
			func(res *resolver, idx int32) evalFunc {
				return func(sc *scratch) bool {
					return leafValue(sc, res, idx) != nil
				}
			})
	case IsString:
		return pathLeaf(b, costTypeOnly, n.Path, zoneIsString,
			func(v *jsonval.Value, ok bool) bool {
				return ok && v.Kind() == jsonval.String
			},
			func(res *resolver, idx int32) evalFunc {
				return func(sc *scratch) bool {
					v := leafValue(sc, res, idx)
					return v != nil && v.Kind() == jsonval.String
				}
			})
	case IntEq:
		want := float64(n.Value)
		test := func(v *jsonval.Value, ok bool) bool {
			if !ok {
				return false
			}
			f, ok := v.Number()
			return ok && f == want
		}
		return pathLeaf(b, costNumeric, n.Path, zoneNumCmp(Eq, want), test,
			func(res *resolver, idx int32) evalFunc {
				return func(sc *scratch) bool {
					v := leafValue(sc, res, idx)
					if v == nil {
						return false
					}
					f, ok := v.Number()
					return ok && f == want
				}
			})
	case FloatCmp:
		test := compileFloatTest(n.Op, n.Value)
		if test == nil {
			// Unknown operators hold for nothing, matching CmpOp.holds.
			return constNode(false)
		}
		return pathLeaf(b, costNumeric, n.Path, zoneNumCmp(n.Op, n.Value),
			func(v *jsonval.Value, ok bool) bool {
				if !ok {
					return false
				}
				f, ok := v.Number()
				return ok && test(f)
			},
			func(res *resolver, idx int32) evalFunc {
				return func(sc *scratch) bool {
					v := leafValue(sc, res, idx)
					if v == nil {
						return false
					}
					f, ok := v.Number()
					return ok && test(f)
				}
			})
	case StrEq:
		want := n.Value
		return pathLeaf(b, costStrEq, n.Path, zoneStrEq(want),
			func(v *jsonval.Value, ok bool) bool {
				return ok && v.Kind() == jsonval.String && v.Str() == want
			},
			func(res *resolver, idx int32) evalFunc {
				return func(sc *scratch) bool {
					v := leafValue(sc, res, idx)
					return v != nil && v.Kind() == jsonval.String && v.Str() == want
				}
			})
	case HasPrefix:
		if n.Prefix == "" {
			// Every string has the empty prefix: fold to a type check.
			return compileLeaf(b, IsString{Path: n.Path})
		}
		prefix := n.Prefix
		return pathLeaf(b, costPrefix, n.Path, zoneHasPrefix(prefix),
			func(v *jsonval.Value, ok bool) bool {
				if !ok || v.Kind() != jsonval.String {
					return false
				}
				s := v.Str()
				return len(s) >= len(prefix) && s[:len(prefix)] == prefix
			},
			func(res *resolver, idx int32) evalFunc {
				return func(sc *scratch) bool {
					v := leafValue(sc, res, idx)
					if v == nil || v.Kind() != jsonval.String {
						return false
					}
					s := v.Str()
					return len(s) >= len(prefix) && s[:len(prefix)] == prefix
				}
			})
	case BoolEq:
		want := n.Value
		return pathLeaf(b, costTypeOnly, n.Path, zoneBoolEq(want),
			func(v *jsonval.Value, ok bool) bool {
				return ok && v.Kind() == jsonval.Bool && v.Bool() == want
			},
			func(res *resolver, idx int32) evalFunc {
				return func(sc *scratch) bool {
					v := leafValue(sc, res, idx)
					return v != nil && v.Kind() == jsonval.Bool && v.Bool() == want
				}
			})
	case ArrSize:
		if neverHoldsForLen(n.Op, n.Value) {
			return constNode(false)
		}
		cmp := compileIntCmp(n.Op, n.Value)
		return pathLeaf(b, costSize, n.Path, zoneArrSize(n.Op, n.Value),
			func(v *jsonval.Value, ok bool) bool {
				return ok && v.Kind() == jsonval.Array && cmp(v.Len())
			},
			func(res *resolver, idx int32) evalFunc {
				return func(sc *scratch) bool {
					v := leafValue(sc, res, idx)
					return v != nil && v.Kind() == jsonval.Array && cmp(v.Len())
				}
			})
	case ObjSize:
		if neverHoldsForLen(n.Op, n.Value) {
			return constNode(false)
		}
		cmp := compileIntCmp(n.Op, n.Value)
		return pathLeaf(b, costSize, n.Path, zoneObjSize(n.Op, n.Value),
			func(v *jsonval.Value, ok bool) bool {
				return ok && v.Kind() == jsonval.Object && cmp(v.Len())
			},
			func(res *resolver, idx int32) evalFunc {
				return func(sc *scratch) bool {
					v := leafValue(sc, res, idx)
					return v != nil && v.Kind() == jsonval.Object && cmp(v.Len())
				}
			})
	default:
		// External leaf types keep their interpreted behaviour. Their prune
		// stays nil: nothing is known about what they match, so no shard can
		// ever be proved empty through them.
		return node{fn: func(sc *scratch) bool { return p.Eval(*sc.doc) }, cost: costPrefix}
	}
}

// leafValue returns the memoised — or, on a generation miss, freshly
// resolved — value at trie node idx; nil means the path is absent. Small
// enough for the inliner, so fused leaf closures get the memo check inline
// and pay a plain direct call only when the resolver must actually advance.
func leafValue(sc *scratch, res *resolver, idx int32) *jsonval.Value {
	if s := &sc.slots[idx]; s.gen == sc.gen {
		return s.v
	}
	return res.resolve(sc, idx)
}

// pathLeaf assembles a leaf node around a pure test of the value found at
// path (ok is false when the path is absent). Root-path leaves test the
// document itself and trie-overflow leaves fall back to a private
// LookupSteps walk, both through the generic test; slot leaves — the hot
// case — use the kind's fused closure. The leaf's prune proof is the same
// ztest either way: pruning consults the zone map, not the trie.
func pathLeaf(b *trieBuilder, opCost int, path jsonval.Path, ztest zoneTest, test leafTest, fused func(res *resolver, idx int32) evalFunc) node {
	steps := path.Steps()
	cost := opCost + costStep*len(steps)
	prune := pruneAt(path, ztest)
	if len(steps) == 0 {
		return node{fn: func(sc *scratch) bool { return test(sc.doc, true) }, prune: prune, cost: cost}
	}
	if idx, ok := b.slotFor(steps); ok {
		return node{fn: fused(b.res, idx), prune: prune, cost: cost}
	}
	return node{fn: func(sc *scratch) bool {
		v, ok := jsonval.LookupSteps(*sc.doc, steps)
		return test(&v, ok)
	}, prune: prune, cost: cost}
}

// compileFloatTest specialises the comparison operator into its own closure,
// removing the per-document operator switch. Unknown operators return nil.
func compileFloatTest(op CmpOp, want float64) func(float64) bool {
	switch op {
	case Lt:
		return func(f float64) bool { return f < want }
	case Le:
		return func(f float64) bool { return f <= want }
	case Gt:
		return func(f float64) bool { return f > want }
	case Ge:
		return func(f float64) bool { return f >= want }
	case Eq:
		return func(f float64) bool { return f == want }
	default:
		return nil
	}
}

// compileIntCmp specialises an integer comparison against a constant.
func compileIntCmp(op CmpOp, want int) func(int) bool {
	switch op {
	case Lt:
		return func(l int) bool { return l < want }
	case Le:
		return func(l int) bool { return l <= want }
	case Gt:
		return func(l int) bool { return l > want }
	case Ge:
		return func(l int) bool { return l >= want }
	case Eq:
		return func(l int) bool { return l == want }
	default:
		return func(int) bool { return false }
	}
}

// neverHoldsForLen reports whether "len op want" is unsatisfiable for any
// length ≥ 0, letting size leaves fold to constant false.
func neverHoldsForLen(op CmpOp, want int) bool {
	switch op {
	case Lt:
		return want <= 0
	case Le, Eq:
		return want < 0
	default:
		return false
	}
}
