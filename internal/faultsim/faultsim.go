// Package faultsim is a deterministic, seeded fault injector for engines: it
// wraps any engine.Engine and injects transient query errors, import
// failures, latency spikes, and engine "crashes" that drop derived (stored)
// datasets. Every injection decision is a pure hash of (seed, operation kind,
// operation key, attempt number), so the same seed yields the same fault
// schedule regardless of wall clock, goroutine interleaving, or whether the
// caller retries — failures become reproducible test fixtures instead of
// flakes. The paper's evaluation is full of exactly these partial failures
// (PostgreSQL cannot import Reddit, jq times out on large sweeps); faultsim
// lets the harness rehearse them on demand.
package faultsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/errfs"
	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/query"
)

// ErrInjected marks a transient injected failure: the operation would have
// succeeded, and a retry (with a fresh attempt number) may succeed.
var ErrInjected = errors.New("faultsim: injected transient fault")

// ErrCrash marks an injected engine crash. The wrapped engine's derived
// (stored) datasets are dropped before the error is returned, exactly like a
// process restart that loses non-persistent state; callers must replay the
// stored-dataset lineage to continue the session.
var ErrCrash = errors.New("faultsim: injected engine crash")

// IsTransient reports whether err is (or wraps) an injected transient fault.
func IsTransient(err error) bool { return errors.Is(err, ErrInjected) }

// IsCrash reports whether err is (or wraps) an injected engine crash.
func IsCrash(err error) bool { return errors.Is(err, ErrCrash) }

// Fault kinds, used in schedules, trace events and metric names.
const (
	KindQueryError  = "query_error"
	KindImportError = "import_error"
	KindLatency     = "latency"
	KindCrash       = "crash"
)

// Options configures the injector. All rates are probabilities in [0, 1]
// evaluated independently per operation attempt.
type Options struct {
	// Seed fixes the fault schedule; the same seed injects the same
	// faults at the same operations and attempts.
	Seed int64
	// QueryErrorRate injects transient Execute errors.
	QueryErrorRate float64
	// ImportErrorRate injects transient ImportFile errors.
	ImportErrorRate float64
	// LatencyRate injects latency spikes: Execute sleeps for Latency
	// (honouring the context) before running normally.
	LatencyRate float64
	// Latency is the spike duration (default 2ms).
	Latency time.Duration
	// CrashRate injects engine crashes: derived datasets are dropped and
	// Execute fails with ErrCrash.
	CrashRate float64
	// MaxFaultsPerOp bounds how many attempts of one operation can fault
	// (default 2). Attempts beyond the bound never fault, so an executor
	// retrying more than MaxFaultsPerOp times is guaranteed to get
	// through — the property the resilience experiments rely on.
	MaxFaultsPerOp int
}

// Enabled reports whether any fault kind can fire.
func (o Options) Enabled() bool {
	return o.QueryErrorRate > 0 || o.ImportErrorRate > 0 || o.LatencyRate > 0 || o.CrashRate > 0
}

func (o Options) withDefaults() Options {
	if o.Latency <= 0 {
		o.Latency = 2 * time.Millisecond
	}
	if o.MaxFaultsPerOp <= 0 {
		o.MaxFaultsPerOp = 2
	}
	return o
}

// Uniform builds the single-knob fault profile behind the CLIs' -faults
// flag: transient query errors at rate, import errors and latency spikes at
// half of it, crashes at a fifth.
func Uniform(rate float64, seed int64) Options {
	if rate <= 0 {
		return Options{Seed: seed}
	}
	return Options{
		Seed:            seed,
		QueryErrorRate:  rate,
		ImportErrorRate: rate / 2,
		LatencyRate:     rate / 2,
		CrashRate:       rate / 5,
	}
}

// Fault is one entry of the injected-fault schedule.
type Fault struct {
	// Kind is one of the Kind* constants.
	Kind string
	// Op identifies the operation ("import:<dataset>" or "exec:<query>").
	Op string
	// Attempt is the zero-based attempt number of the operation when the
	// fault fired.
	Attempt int
}

// Engine wraps an inner engine with fault injection. It is safe for
// concurrent use (the multi-user harness shares one engine across
// goroutines); the schedule records faults in injection order.
type Engine struct {
	inner engine.Engine
	opts  Options

	mu       sync.Mutex
	attempts map[string]int
	schedule []Fault
}

// Wrap returns inner with fault injection according to opts.
func Wrap(inner engine.Engine, opts Options) *Engine {
	return &Engine{
		inner:    inner,
		opts:     opts.withDefaults(),
		attempts: make(map[string]int),
	}
}

// Inner returns the wrapped engine.
func (e *Engine) Inner() engine.Engine { return e.inner }

// Schedule returns a copy of the injected faults so far, in order.
func (e *Engine) Schedule() []Fault {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Fault(nil), e.schedule...)
}

// nextAttempt hands out the zero-based attempt number for an operation key.
func (e *Engine) nextAttempt(op string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.attempts[op]
	e.attempts[op] = n + 1
	return n
}

// decide is the pure injection decision: the shared errfs.Chance hash of
// (seed, kind, op, attempt) mapped to [0, 1) and compared against the rate
// — byte-identical to the original in-package hash, so existing seeds keep
// their fault schedules. Attempts at or beyond MaxFaultsPerOp never fault.
func (e *Engine) decide(kind, op string, attempt int, rate float64) bool {
	if rate <= 0 || attempt >= e.opts.MaxFaultsPerOp {
		return false
	}
	return errfs.Chance(e.opts.Seed, kind, op, attempt) < rate
}

// inject records the fault in the schedule and the observability scope.
func (e *Engine) inject(ctx context.Context, kind, op string, attempt int, dataset, queryID string) {
	e.mu.Lock()
	e.schedule = append(e.schedule, Fault{Kind: kind, Op: op, Attempt: attempt})
	e.mu.Unlock()
	sc := obs.From(ctx)
	if !sc.Enabled() {
		return
	}
	sc.Counter(obs.FaultMetric(kind)).Inc()
	sc.Record(obs.Event{
		Type: obs.EvFault, Engine: e.inner.Name(), Dataset: dataset,
		Query: queryID, Kind: kind, Attempt: attempt,
	})
}

// Name implements engine.Engine; the injector is transparent in labels.
func (e *Engine) Name() string { return e.inner.Name() }

// ImportFile implements engine.Engine with import-failure injection.
func (e *Engine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	op := "import:" + name
	attempt := e.nextAttempt(op)
	if e.decide(KindImportError, op, attempt, e.opts.ImportErrorRate) {
		e.inject(ctx, KindImportError, op, attempt, name, "")
		return engine.ImportStats{}, fmt.Errorf("importing %q (attempt %d): %w", name, attempt, ErrInjected)
	}
	return e.inner.ImportFile(ctx, name, path)
}

// Execute implements engine.Engine with latency, crash and transient-error
// injection. A latency spike delays but does not fail the query (unless the
// context expires during the spike); a crash drops the inner engine's
// derived datasets via Reset before failing.
func (e *Engine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (engine.ExecStats, error) {
	op := "exec:" + q.ID
	attempt := e.nextAttempt(op)
	if e.decide(KindLatency, op, attempt, e.opts.LatencyRate) {
		e.inject(ctx, KindLatency, op, attempt, q.Base, q.ID)
		t := time.NewTimer(e.opts.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return engine.ExecStats{}, ctx.Err()
		}
	}
	if e.decide(KindCrash, op, attempt, e.opts.CrashRate) {
		e.inject(ctx, KindCrash, op, attempt, q.Base, q.ID)
		if err := e.inner.Reset(); err != nil {
			return engine.ExecStats{}, fmt.Errorf("crash during %s: reset: %w (%w)", q.ID, err, ErrCrash)
		}
		return engine.ExecStats{}, fmt.Errorf("crash during %s (attempt %d): %w", q.ID, attempt, ErrCrash)
	}
	if e.decide(KindQueryError, op, attempt, e.opts.QueryErrorRate) {
		e.inject(ctx, KindQueryError, op, attempt, q.Base, q.ID)
		return engine.ExecStats{}, fmt.Errorf("executing %s (attempt %d): %w", q.ID, attempt, ErrInjected)
	}
	return e.inner.Execute(ctx, q, sink)
}

// Reset implements engine.Engine. The attempt counters survive: determinism
// is keyed by operation, not by engine lifecycle.
func (e *Engine) Reset() error { return e.inner.Reset() }

// Close implements engine.Engine.
func (e *Engine) Close() error { return e.inner.Close() }
