package faultsim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/engine"
	"github.com/joda-explore/betze/internal/obs"
	"github.com/joda-explore/betze/internal/query"
)

// stubEngine succeeds at everything and counts calls, so every observed
// failure is an injected one.
type stubEngine struct {
	imports, execs, resets int
}

func (s *stubEngine) Name() string { return "stub" }

func (s *stubEngine) ImportFile(ctx context.Context, name, path string) (engine.ImportStats, error) {
	s.imports++
	return engine.ImportStats{Docs: 1}, nil
}

func (s *stubEngine) Execute(ctx context.Context, q *query.Query, sink io.Writer) (engine.ExecStats, error) {
	s.execs++
	return engine.ExecStats{Duration: time.Millisecond, Scanned: 1}, nil
}

func (s *stubEngine) Reset() error { s.resets++; return nil }
func (s *stubEngine) Close() error { return nil }

func testQueries(n int) []*query.Query {
	qs := make([]*query.Query, n)
	for i := range qs {
		qs[i] = &query.Query{ID: fmt.Sprintf("q%d", i+1), Base: "ds"}
	}
	return qs
}

// driveUntilDone executes every query against the injector, retrying each
// until it succeeds (the bounded-fault guarantee makes this terminate), and
// returns the per-query attempt counts.
func driveUntilDone(t *testing.T, e *Engine, qs []*query.Query) []int {
	t.Helper()
	ctx := context.Background()
	attempts := make([]int, len(qs))
	for i, q := range qs {
		for {
			attempts[i]++
			if attempts[i] > 100 {
				t.Fatalf("%s still failing after 100 attempts", q.ID)
			}
			if _, err := e.Execute(ctx, q, io.Discard); err == nil {
				break
			}
		}
	}
	return attempts
}

func TestScheduleDeterminism(t *testing.T) {
	opts := Options{Seed: 42, QueryErrorRate: 0.5, LatencyRate: 0.3, CrashRate: 0.2, Latency: time.Microsecond}
	run := func() []Fault {
		e := Wrap(&stubEngine{}, opts)
		driveUntilDone(t, e, testQueries(20))
		return e.Schedule()
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("no faults injected at 50% query-error rate over 20 queries")
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("same seed, different schedules:\n%v\n%v", first, second)
	}
	other := Wrap(&stubEngine{}, Options{Seed: 43, QueryErrorRate: 0.5, LatencyRate: 0.3, CrashRate: 0.2, Latency: time.Microsecond})
	driveUntilDone(t, other, testQueries(20))
	if reflect.DeepEqual(first, other.Schedule()) {
		t.Errorf("different seeds produced identical schedules: %v", first)
	}
}

// TestScheduleDeterminismInTrace is the acceptance check: two runs with the
// same fault seed emit identical fault events on the trace (modulo sequence
// numbers and timestamps).
func TestScheduleDeterminismInTrace(t *testing.T) {
	opts := Options{Seed: 7, QueryErrorRate: 0.6, CrashRate: 0.1}
	type faultKey struct {
		Engine, Dataset, Query, Kind string
		Attempt                      int
	}
	run := func() []faultKey {
		var buf bytes.Buffer
		sc := obs.Scope{Metrics: obs.NewRegistry(), Trace: obs.NewRecorder(&buf)}
		ctx := obs.With(context.Background(), sc)
		e := Wrap(&stubEngine{}, opts)
		for _, q := range testQueries(15) {
			for a := 0; a < 5; a++ {
				if _, err := e.Execute(ctx, q, io.Discard); err == nil {
					break
				}
			}
		}
		events, err := obs.ReadEvents(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var keys []faultKey
		for _, ev := range events {
			if ev.Type != obs.EvFault {
				continue
			}
			keys = append(keys, faultKey{ev.Engine, ev.Dataset, ev.Query, ev.Kind, ev.Attempt})
		}
		return keys
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("no fault events on the trace")
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("same fault seed, different trace schedules:\n%v\n%v", first, second)
	}
}

func TestMaxFaultsPerOpBoundsInjection(t *testing.T) {
	stub := &stubEngine{}
	e := Wrap(stub, Options{Seed: 1, QueryErrorRate: 1, MaxFaultsPerOp: 2})
	attempts := driveUntilDone(t, e, testQueries(5))
	for i, n := range attempts {
		if n != 3 { // two injected failures, then guaranteed success
			t.Errorf("q%d took %d attempts, want 3", i+1, n)
		}
	}
	if stub.execs != 5 {
		t.Errorf("inner engine executed %d times, want 5 (faults must not reach it)", stub.execs)
	}
}

func TestErrorClassification(t *testing.T) {
	e := Wrap(&stubEngine{}, Options{Seed: 1, QueryErrorRate: 1})
	_, err := e.Execute(context.Background(), &query.Query{ID: "q1", Base: "ds"}, io.Discard)
	if !IsTransient(err) {
		t.Errorf("query-error injection not transient: %v", err)
	}
	if IsCrash(err) {
		t.Errorf("query-error injection classified as crash: %v", err)
	}

	stub := &stubEngine{}
	c := Wrap(stub, Options{Seed: 1, CrashRate: 1})
	_, err = c.Execute(context.Background(), &query.Query{ID: "q1", Base: "ds"}, io.Discard)
	if !IsCrash(err) {
		t.Errorf("crash injection not a crash: %v", err)
	}
	if stub.resets != 1 {
		t.Errorf("crash did not reset the inner engine (resets=%d)", stub.resets)
	}

	i := Wrap(&stubEngine{}, Options{Seed: 1, ImportErrorRate: 1})
	_, err = i.ImportFile(context.Background(), "ds", "nowhere.json")
	if !IsTransient(err) {
		t.Errorf("import-error injection not transient: %v", err)
	}
	if IsTransient(errors.New("other")) || IsCrash(nil) {
		t.Error("classification matches unrelated errors")
	}
}

func TestLatencyHonoursContext(t *testing.T) {
	e := Wrap(&stubEngine{}, Options{Seed: 1, LatencyRate: 1, Latency: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.Execute(ctx, &query.Query{ID: "q1", Base: "ds"}, io.Discard)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("latency spike under cancelled context returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("latency spike ignored the context for %v", elapsed)
	}
}

func TestLatencyDelaysButSucceeds(t *testing.T) {
	stub := &stubEngine{}
	e := Wrap(stub, Options{Seed: 1, LatencyRate: 1, Latency: time.Millisecond})
	if _, err := e.Execute(context.Background(), &query.Query{ID: "q1", Base: "ds"}, io.Discard); err != nil {
		t.Fatalf("latency-only injection failed the query: %v", err)
	}
	if stub.execs != 1 {
		t.Errorf("query did not reach the inner engine")
	}
	sched := e.Schedule()
	if len(sched) != 1 || sched[0].Kind != KindLatency {
		t.Errorf("schedule = %v, want one latency fault", sched)
	}
}

func TestUniformAndEnabled(t *testing.T) {
	if (Options{}).Enabled() {
		t.Error("zero options enabled")
	}
	if Uniform(0, 9).Enabled() {
		t.Error("zero-rate uniform profile enabled")
	}
	u := Uniform(0.5, 9)
	if !u.Enabled() || u.Seed != 9 {
		t.Errorf("uniform profile: %+v", u)
	}
	if u.QueryErrorRate != 0.5 || u.ImportErrorRate != 0.25 || u.LatencyRate != 0.25 || u.CrashRate != 0.1 {
		t.Errorf("uniform rates: %+v", u)
	}
}

func TestPassThrough(t *testing.T) {
	stub := &stubEngine{}
	e := Wrap(stub, Options{Seed: 1})
	if e.Name() != "stub" || e.Inner() != engine.Engine(stub) {
		t.Errorf("wrapper identity: name=%q", e.Name())
	}
	if _, err := e.ImportFile(context.Background(), "ds", "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), &query.Query{ID: "q1", Base: "ds"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(); err != nil || stub.resets != 1 {
		t.Errorf("reset pass-through: %v / %d", err, stub.resets)
	}
	if err := e.Close(); err != nil {
		t.Errorf("close pass-through: %v", err)
	}
	if len(e.Schedule()) != 0 {
		t.Errorf("disabled injector recorded faults: %v", e.Schedule())
	}
}
