package lz

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestRoundTripQuick drives the codec with generator-built inputs spanning
// pure randomness, long runs and mixed JSON-ish text.
func TestRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Values: func(vs []reflect.Value, r *rand.Rand) {
		n := r.Intn(1 << uint(4+r.Intn(12))) // biased across size scales
		src := make([]byte, n)
		switch r.Intn(4) {
		case 0:
			r.Read(src)
		case 1:
			b := byte(r.Intn(256))
			for i := range src {
				src[i] = b
			}
		case 2:
			motif := []byte(`{"key":"value","n":123},`)
			for i := range src {
				src[i] = motif[i%len(motif)]
			}
		default:
			for i := range src {
				if r.Intn(3) == 0 {
					src[i] = byte(r.Intn(256))
				} else {
					src[i] = byte('a' + r.Intn(26))
				}
			}
		}
		vs[0] = reflect.ValueOf(src)
	}}
	prop := func(src []byte) bool {
		out, err := Decompress(nil, Compress(nil, src))
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestDecompressNeverPanics feeds arbitrary bytes into the decoder: it may
// reject them, but must never crash or loop.
func TestDecompressNeverPanics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000, Values: func(vs []reflect.Value, r *rand.Rand) {
		src := make([]byte, r.Intn(200))
		r.Read(src)
		vs[0] = reflect.ValueOf(src)
	}}
	prop := func(src []byte) bool {
		out, err := Decompress(nil, src)
		// Accepted inputs must honour their own length header.
		return err != nil || out != nil || len(out) == 0
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
