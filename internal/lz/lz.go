// Package lz implements a byte-oriented LZ77 codec in the spirit of
// PostgreSQL's pglz and WiredTiger's snappy: greedy hash-table matching on
// compression and plain byte-copy decompression with no entropy coding.
// The engine stand-ins (mongosim, pgsim) use it so their per-query
// decompression costs resemble the real systems' — flate-style Huffman
// decoding would overcharge them roughly threefold.
//
// Format: a uvarint with the decompressed length, followed by a sequence of
// tagged elements. The low two bits of each tag byte select the element
// type:
//
//	00  literal run; the upper six bits hold length-1 (0..59), or 60..63
//	    to signal 1..4 extra little-endian length bytes (length-1)
//	01  short copy; length 4..11 in bits 2..4, offset high bits 5..7 plus
//	    one extra offset byte (1..2047)
//	10  long copy; length-1 in the upper six bits plus one extra length
//	    byte is not needed — length 1..64 — and two little-endian offset
//	    bytes (1..65535)
package lz

import (
	"encoding/binary"
	"fmt"
)

const (
	tagLiteral   = 0x00
	tagCopyShort = 0x01
	tagCopyLong  = 0x02

	minMatch  = 4
	maxOffset = 65535
)

// Compress appends the compressed form of src to dst and returns the
// extended slice. Compress(nil, nil) yields the encoding of an empty input.
func Compress(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	var table [1 << 14]int32 // position+1 of the last occurrence per hash
	litStart := 0
	i := 0
	for i+minMatch <= len(src) {
		h := hash4(src[i:])
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand >= 0 && i-cand <= maxOffset && match4(src, cand, i) {
			// Extend the match.
			length := minMatch
			for i+length < len(src) && length < 64 && src[cand+length] == src[i+length] {
				length++
			}
			dst = emitLiterals(dst, src[litStart:i])
			dst = emitCopy(dst, i-cand, length)
			i += length
			litStart = i
			continue
		}
		i++
	}
	return emitLiterals(dst, src[litStart:])
}

func hash4(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> 18 // top 14 bits
}

func match4(src []byte, a, b int) bool {
	return binary.LittleEndian.Uint32(src[a:]) == binary.LittleEndian.Uint32(src[b:])
}

func emitLiterals(dst, lit []byte) []byte {
	for len(lit) > 0 {
		n := len(lit)
		switch {
		case n <= 60:
			dst = append(dst, byte(n-1)<<2|tagLiteral)
		case n <= 1<<8:
			dst = append(dst, 60<<2|tagLiteral, byte(n-1))
		case n <= 1<<16:
			dst = append(dst, 61<<2|tagLiteral, byte(n-1), byte((n-1)>>8))
		case n <= 1<<24:
			dst = append(dst, 62<<2|tagLiteral, byte(n-1), byte((n-1)>>8), byte((n-1)>>16))
		default:
			chunk := 1 << 24
			dst = append(dst, 62<<2|tagLiteral, byte(chunk-1), byte((chunk-1)>>8), byte((chunk-1)>>16))
			dst = append(dst, lit[:chunk]...)
			lit = lit[chunk:]
			continue
		}
		dst = append(dst, lit...)
		break
	}
	return dst
}

func emitCopy(dst []byte, offset, length int) []byte {
	if length >= minMatch && length <= 11 && offset < 1<<11 {
		dst = append(dst, byte(offset>>8)<<5|byte(length-minMatch)<<2|tagCopyShort, byte(offset))
		return dst
	}
	return append(dst, byte(length-1)<<2|tagCopyLong, byte(offset), byte(offset>>8))
}

// CorruptError reports malformed compressed data.
type CorruptError struct {
	Offset int
	Msg    string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("lz: corrupt data at offset %d: %s", e.Offset, e.Msg)
}

// Decompress appends the decompressed form of src to dst.
func Decompress(dst, src []byte) ([]byte, error) {
	want, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, &CorruptError{Offset: 0, Msg: "missing length header"}
	}
	src = src[n:]
	// A copy op expands at most 64 bytes from 2-3 input bytes and a
	// literal run carries its own bytes, so genuine output is bounded by
	// ~32x the input; a header beyond that is corrupt. This also keeps a
	// forged header from forcing a huge allocation.
	if want > uint64(len(src))*32+64 {
		return nil, &CorruptError{Offset: 0, Msg: "length header exceeds possible expansion"}
	}
	base := len(dst)
	if cap(dst)-base < int(want) {
		grown := make([]byte, base, base+int(want))
		copy(grown, dst)
		dst = grown
	}
	i := 0
	for i < len(src) {
		tag := src[i]
		switch tag & 0x03 {
		case tagLiteral:
			length := int(tag>>2) + 1
			i++
			if length > 60 {
				extra := length - 60 // 1..4 extension bytes
				if i+extra > len(src) {
					return nil, &CorruptError{Offset: i, Msg: "truncated literal length"}
				}
				length = 0
				for b := extra - 1; b >= 0; b-- {
					length = length<<8 | int(src[i+b])
				}
				length++
				i += extra
			}
			if i+length > len(src) {
				return nil, &CorruptError{Offset: i, Msg: "literal run out of bounds"}
			}
			dst = append(dst, src[i:i+length]...)
			i += length
		case tagCopyShort:
			if i+1 >= len(src) {
				return nil, &CorruptError{Offset: i, Msg: "truncated short copy"}
			}
			length := int(tag>>2&0x07) + minMatch
			offset := int(tag>>5)<<8 | int(src[i+1])
			i += 2
			var err error
			dst, err = appendCopy(dst, base, offset, length, i)
			if err != nil {
				return nil, err
			}
		case tagCopyLong:
			if i+2 >= len(src) {
				return nil, &CorruptError{Offset: i, Msg: "truncated long copy"}
			}
			length := int(tag>>2) + 1
			offset := int(src[i+1]) | int(src[i+2])<<8
			i += 3
			var err error
			dst, err = appendCopy(dst, base, offset, length, i)
			if err != nil {
				return nil, err
			}
		default:
			return nil, &CorruptError{Offset: i, Msg: "reserved tag"}
		}
	}
	if len(dst)-base != int(want) {
		return nil, &CorruptError{Offset: i, Msg: fmt.Sprintf("decompressed %d bytes, header says %d", len(dst)-base, want)}
	}
	return dst, nil
}

// appendCopy replays a back-reference; overlapping copies replicate runs,
// as in every LZ77 family codec.
func appendCopy(dst []byte, base, offset, length, pos int) ([]byte, error) {
	if offset <= 0 || offset > len(dst)-base {
		return nil, &CorruptError{Offset: pos, Msg: "copy offset out of range"}
	}
	from := len(dst) - offset
	if offset >= length {
		// Non-overlapping: bulk copy.
		return append(dst, dst[from:from+length]...), nil
	}
	for k := 0; k < length; k++ {
		dst = append(dst, dst[from+k])
	}
	return dst, nil
}
