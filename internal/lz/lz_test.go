package lz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/datasets"
	"github.com/joda-explore/betze/internal/jsonval"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	compressed := Compress(nil, src)
	back, err := Decompress(nil, compressed)
	if err != nil {
		t.Fatalf("Decompress: %v (input %d bytes)", err, len(src))
	}
	if !bytes.Equal(back, src) {
		t.Fatalf("round trip changed data: %d bytes in, %d out", len(src), len(back))
	}
	return compressed
}

func TestRoundTripBasic(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abcd"),
		[]byte("hello hello hello hello"),
		[]byte(strings.Repeat("x", 10000)),
		[]byte(strings.Repeat("abcdefgh", 2000)),
		bytes.Repeat([]byte{0}, 500),
		[]byte(`{"user":{"name":"alice","verified":true},"text":"soccer soccer goal"}`),
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestCompressesRepetitiveData(t *testing.T) {
	src := []byte(strings.Repeat(`{"verified":false,"lang":"en"}`, 500))
	compressed := roundTrip(t, src)
	if len(compressed) > len(src)/4 {
		t.Errorf("repetitive data only shrank from %d to %d bytes", len(src), len(compressed))
	}
}

func TestIncompressibleDataSurvives(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := make([]byte, 100000)
	r.Read(src)
	compressed := roundTrip(t, src)
	// Random data may expand slightly but must stay close to the input.
	if len(compressed) > len(src)+len(src)/32+16 {
		t.Errorf("random data blew up from %d to %d bytes", len(src), len(compressed))
	}
}

func TestRoundTripRandomStructured(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		n := r.Intn(5000)
		src := make([]byte, n)
		// A mix of runs, random bytes and repeated motifs.
		pos := 0
		for pos < n {
			switch r.Intn(3) {
			case 0:
				run := min(r.Intn(100)+1, n-pos)
				b := byte(r.Intn(256))
				for k := 0; k < run; k++ {
					src[pos+k] = b
				}
				pos += run
			case 1:
				run := min(r.Intn(50)+1, n-pos)
				r.Read(src[pos : pos+run])
				pos += run
			default:
				motif := []byte("pattern-")[:min(8, n-pos)]
				copy(src[pos:], motif)
				pos += len(motif)
			}
		}
		roundTrip(t, src)
	}
}

func TestRoundTripTwitterDocs(t *testing.T) {
	docs := datasets.NewTwitter().Generate(200, 3)
	var raw []byte
	for _, d := range docs {
		raw = jsonval.AppendJSON(raw, d)
		raw = append(raw, '\n')
	}
	compressed := roundTrip(t, raw)
	if len(compressed) >= len(raw) {
		t.Errorf("JSON did not compress: %d -> %d", len(raw), len(compressed))
	}
	t.Logf("twitter JSON: %d -> %d bytes (%.1f%%)", len(raw), len(compressed), 100*float64(len(compressed))/float64(len(raw)))
}

func TestLongLiteralRuns(t *testing.T) {
	// Exercise every literal length encoding bracket.
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 59, 60, 61, 255, 256, 257, 65535, 65536, 65537, 100000} {
		src := make([]byte, n)
		r.Read(src) // random: no matches, pure literals
		roundTrip(t, src)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	valid := Compress(nil, []byte(strings.Repeat("data data data ", 100)))
	cases := [][]byte{
		nil,
		{},
		valid[:len(valid)/2],           // truncated
		append([]byte{}, valid[1:]...), // header gone
		{0x03},                         // reserved tag
		{5, 0x01},                      // truncated short copy
		{5, 0x02, 1},                   // truncated long copy
		{5, 0x0D, 0xFF},                // copy before stream start
		{200, byte(59<<2 | 0x00), 'x'}, // length mismatch
	}
	for i, src := range cases {
		if out, err := Decompress(nil, src); err == nil {
			t.Errorf("case %d: corrupt input decompressed to %d bytes", i, len(out))
		}
	}
}

func TestDecompressAppendsToDst(t *testing.T) {
	prefix := []byte("prefix:")
	compressed := Compress(nil, []byte("payload"))
	out, err := Decompress(prefix, compressed)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "prefix:payload" {
		t.Errorf("got %q", out)
	}
}

func TestOverlappingCopies(t *testing.T) {
	// "aaaa..." forces overlapping back-references.
	src := []byte("a" + strings.Repeat("a", 300) + "end")
	roundTrip(t, src)
	src2 := []byte("abab" + strings.Repeat("ab", 200))
	roundTrip(t, src2)
}
