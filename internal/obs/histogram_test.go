package obs

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantileErrorBound is the property behind the bucket layout:
// with 16 linear sub-buckets per octave the covering bucket of any value v
// is at most v/16 wide (plus the 1µs resolution floor), so a quantile
// estimate may deviate from the exact order statistic by at most that
// bucket width. Checked across seeds and three distribution shapes.
func TestHistogramQuantileErrorBound(t *testing.T) {
	shapes := map[string]func(r *rand.Rand) time.Duration{
		"exponential": func(r *rand.Rand) time.Duration {
			return time.Duration(r.ExpFloat64() * float64(5*time.Millisecond))
		},
		"lognormal-ish": func(r *rand.Rand) time.Duration {
			d := time.Duration(int64(time.Microsecond) << uint(r.Intn(20)))
			return d + time.Duration(r.Int63n(int64(d)+1))
		},
		"heavy-tail": func(r *rand.Rand) time.Duration {
			if r.Intn(100) == 0 {
				return time.Duration(1+r.Int63n(10)) * time.Second
			}
			return time.Duration(100+r.Int63n(900)) * time.Microsecond
		},
	}
	for name, gen := range shapes {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				r := rand.New(rand.NewSource(seed))
				h := &Histogram{}
				samples := make([]time.Duration, 5000)
				for i := range samples {
					samples[i] = gen(r)
					h.Record(samples[i])
				}
				sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
				for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
					exact := samples[int(q*float64(len(samples)-1))]
					got := h.Quantile(q)
					// One bucket width of the covering octave, one more for
					// the off-by-one between rank conventions, plus the 1µs
					// resolution floor.
					tol := 2*float64(exact)/histSub + float64(2*time.Microsecond)
					if d := absDelta(got, exact); d > tol {
						t.Errorf("seed %d q%g = %v, exact %v, |err| %v > tol %v",
							seed, q, got, exact, time.Duration(d), time.Duration(tol))
					}
				}
			}
		})
	}
}

// TestHistogramMergeCommutesAndAssociates: merging per-shard histograms
// must be order- and grouping-independent, and must equal one shared
// histogram fed every sample.
func TestHistogramMergeCommutesAndAssociates(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	parts := make([]*Histogram, 4)
	shared := &Histogram{}
	for i := range parts {
		parts[i] = &Histogram{}
		for n := 0; n < 2000+i*37; n++ {
			d := time.Duration(r.Int63n(int64(20 * time.Millisecond)))
			parts[i].Record(d)
			shared.Record(d)
		}
	}
	mergeAll := func(order []int, pairwise bool) HistogramSnapshot {
		acc := &Histogram{}
		if pairwise {
			// ((a+b)+(c+d)): build two intermediates, merge those.
			left, right := &Histogram{}, &Histogram{}
			left.Merge(parts[order[0]])
			left.Merge(parts[order[1]])
			right.Merge(parts[order[2]])
			right.Merge(parts[order[3]])
			acc.Merge(left)
			acc.Merge(right)
			return acc.Snapshot()
		}
		for _, i := range order {
			acc.Merge(parts[i])
		}
		return acc.Snapshot()
	}
	want := shared.Snapshot()
	for _, tc := range []struct {
		name     string
		order    []int
		pairwise bool
	}{
		{"forward", []int{0, 1, 2, 3}, false},
		{"reverse", []int{3, 2, 1, 0}, false},
		{"shuffled", []int{2, 0, 3, 1}, false},
		{"pairwise", []int{0, 1, 2, 3}, true},
	} {
		if got := mergeAll(tc.order, tc.pairwise); got != want {
			t.Errorf("%s merge = %+v, want %+v", tc.name, got, want)
		}
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many goroutines
// (run under -race via make race-service); the merged totals must be exact
// at quiescence and min/max must be the true extremes.
func TestHistogramConcurrentRecord(t *testing.T) {
	h := &Histogram{}
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(w*perWorker+i+1) * time.Microsecond)
				if i%500 == 0 {
					_ = h.Snapshot() // concurrent readers
					_ = h.Quantile(0.99)
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", s.Count, workers*perWorker)
	}
	n := int64(workers * perWorker)
	wantSum := time.Duration(n*(n+1)/2) * time.Microsecond
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	if s.Min != time.Microsecond || s.Max != time.Duration(n)*time.Microsecond {
		t.Errorf("extremes %v/%v, want %v/%v", s.Min, s.Max, time.Microsecond, time.Duration(n)*time.Microsecond)
	}
}

// TestRecordZeroAlloc is the allocation gate on the metrics hot path:
// counter increments and histogram records (both direct and through the
// registry's lock-free lookup) must not allocate.
func TestRecordZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	c := reg.Counter("ops")
	h.Record(time.Millisecond) // install cells outside the measured window
	c.Inc()
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(42 * time.Microsecond)
	}); n != 0 {
		t.Errorf("Histogram.Record allocates %.1f per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
	}); n != 0 {
		t.Errorf("Counter.Add allocates %.1f per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		reg.Counter("ops").Inc()
		reg.Histogram("lat").Record(time.Microsecond)
	}); n != 0 {
		t.Errorf("registry lookup + record allocates %.1f per call", n)
	}
}

// mutexHistogram is the pre-rework baseline the benchmarks compare against:
// every sample serialised behind one mutex (the shape registry.go and
// histogram.go had before the sharded cells).
type mutexHistogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	buckets [histBuckets]int64
}

func (h *mutexHistogram) Observe(d time.Duration) {
	idx := bucketIndex(d.Microseconds())
	h.mu.Lock()
	h.count++
	h.sum += d
	h.buckets[idx]++
	h.mu.Unlock()
}

type mutexCounter struct {
	mu sync.Mutex
	v  int64
}

func (c *mutexCounter) Add(n int64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// The ≥5x-at-8-goroutines acceptance comparison: run with
//
//	go test -bench 'Record|CounterAdd' -cpu 8 ./internal/obs/
//
// or via betze-bench -perf, which records both sides in BENCH_10.json.
func BenchmarkHistogramRecord(b *testing.B) {
	h := &Histogram{}
	b.RunParallel(func(pb *testing.PB) {
		d := time.Duration(runtime.NumCPU()) * time.Microsecond
		for pb.Next() {
			h.Record(d)
		}
	})
}

func BenchmarkHistogramRecordMutexBaseline(b *testing.B) {
	h := &mutexHistogram{}
	b.RunParallel(func(pb *testing.PB) {
		d := time.Duration(runtime.NumCPU()) * time.Microsecond
		for pb.Next() {
			h.Observe(d)
		}
	})
}

func BenchmarkCounterAdd(b *testing.B) {
	c := &Counter{}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkCounterAddMutexBaseline(b *testing.B) {
	c := &mutexCounter{}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}
