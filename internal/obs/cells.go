package obs

import (
	"runtime"
	"unsafe"
)

// The metrics hot path is sharded: every counter and histogram keeps one
// update cell per (rounded-up) GOMAXPROCS, cache-line padded so concurrent
// writers on different cores never bounce the same line, and a reader merges
// the cells on demand. Writers pick a cell from a hash of a stack address —
// goroutine stacks are spread across the address space, so co-scheduled
// goroutines land on different cells with high probability — which needs no
// runtime hooks, no allocation, and no synchronisation. A "wrong" pick is
// only ever a performance question (two writers sharing a cell), never a
// correctness one: every cell accepts every update atomically.

// cellCount is the number of update cells per metric: GOMAXPROCS at process
// start rounded up to a power of two (so cell picking is a mask, not a
// modulo), clamped to [8, 32] — the floor keeps sharding active when
// GOMAXPROCS is raised after init (go test -cpu, runtime calls), the ceiling
// bounds per-histogram memory on very wide machines.
var cellCount = computeCellCount(runtime.GOMAXPROCS(0))

func computeCellCount(procs int) int {
	n := 8
	for n < procs && n < 32 {
		n <<= 1
	}
	return n
}

// cellIndex picks the update cell for the calling goroutine. The probe
// variable's address identifies the goroutine's current stack; dropping the
// low bits (frames within one stack share them) and mixing the rest spreads
// goroutines uniformly over the cells.
func cellIndex() int {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe)) >> 10)
	h *= 0x9e3779b97f4a7c15 // Fibonacci hashing: spread entropy into the low bits
	h ^= h >> 33
	return int(h) & (cellCount - 1)
}
