package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The nil counter
// discards all writes, so Registry lookups never need an enabled-check.
//
// Increments go to one of cellCount cache-line-padded atomic cells (picked
// per goroutine by cellIndex) so concurrent writers never contend on one
// line; Value merges the cells. The zero value works — the first Add
// installs the cells — and registry-created counters are pre-installed so
// the hot path never branches into initialisation.
type Counter struct {
	cells atomic.Pointer[counterCells]
}

// paddedInt64 spaces the cells a cache line apart: 8 bytes of value, 56 of
// padding.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

type counterCells struct {
	cells []paddedInt64
}

func (c *Counter) initCells() *counterCells {
	fresh := &counterCells{cells: make([]paddedInt64, cellCount)}
	if c.cells.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return c.cells.Load()
}

// Add increments the counter by n: one atomic add on a per-writer cell.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	cs := c.cells.Load()
	if cs == nil {
		cs = c.initCells()
	}
	cs.cells[cellIndex()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 for the nil counter) by merging the
// cells. Concurrent with writers the merge is not a single instant; at
// quiescence it is exact.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	cs := c.cells.Load()
	if cs == nil {
		return 0
	}
	var total int64
	for i := range cs.cells {
		total += cs.cells[i].v.Load()
	}
	return total
}

// Gauge is a settable float metric (resident documents, pool size, …).
// Gauges are set-dominated and read rarely, so they stay a single atomic
// word — sharding would make Set (last-writer-wins) ambiguous.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value reads the gauge (0 for the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a concurrency-safe, name-keyed collection of metrics.
// Metrics are created on first use; the nil registry hands out nil
// (discarding) metrics, making instrumentation free when observability is
// off.
//
// Lookup is lock-free: the name maps are immutable copy-on-write snapshots
// behind atomic pointers, so the steady-state path (every call site after
// its first) is one pointer load and one map read. Creation takes the
// mutex, clones the map and publishes the extended copy — rare by
// construction, since the vocabulary of names is closed (vocab.go).
type Registry struct {
	mu         sync.Mutex // serialises creation only; lookups never take it
	counters   atomic.Pointer[map[string]*Counter]
	gauges     atomic.Pointer[map[string]*Gauge]
	histograms atomic.Pointer[map[string]*Histogram]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	counters := map[string]*Counter{}
	gauges := map[string]*Gauge{}
	histograms := map[string]*Histogram{}
	r.counters.Store(&counters)
	r.gauges.Store(&gauges)
	r.histograms.Store(&histograms)
	return r
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if m := r.counters.Load(); m != nil {
		if c, ok := (*m)[name]; ok {
			return c
		}
	}
	return r.counterSlow(name)
}

func (r *Registry) counterSlow(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.counters.Load()
	if old != nil {
		if c, ok := (*old)[name]; ok {
			return c
		}
	}
	c := &Counter{}
	c.initCells() // pre-install: registry-served counters never init on the hot path
	next := cloneInsert(old, name, c)
	r.counters.Store(&next)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if m := r.gauges.Load(); m != nil {
		if g, ok := (*m)[name]; ok {
			return g
		}
	}
	return r.gaugeSlow(name)
}

func (r *Registry) gaugeSlow(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.gauges.Load()
	if old != nil {
		if g, ok := (*old)[name]; ok {
			return g
		}
	}
	g := &Gauge{}
	next := cloneInsert(old, name, g)
	r.gauges.Store(&next)
	return g
}

// Histogram returns the named duration histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if m := r.histograms.Load(); m != nil {
		if h, ok := (*m)[name]; ok {
			return h
		}
	}
	return r.histogramSlow(name)
}

func (r *Registry) histogramSlow(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.histograms.Load()
	if old != nil {
		if h, ok := (*old)[name]; ok {
			return h
		}
	}
	h := &Histogram{}
	h.initCells() // pre-install: registry-served histograms never init on the hot path
	next := cloneInsert(old, name, h)
	r.histograms.Store(&next)
	return h
}

// cloneInsert returns a copy of *old (nil treated as empty) extended with
// one entry. The published maps are never mutated in place — that is the
// whole copy-on-write contract lock-free readers rely on.
func cloneInsert[T any](old *map[string]T, name string, v T) map[string]T {
	var n int
	if old != nil {
		n = len(*old)
	}
	next := make(map[string]T, n+1)
	if old != nil {
		for k, e := range *old {
			next[k] = e
		}
	}
	next[name] = v
	return next
}

// Snapshot is the exportable state of a registry at one point in time.
// Map keys are metric names; histogram values carry percentile summaries.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. It is safe to call concurrently with
// metric updates; each metric merges its cells atomically.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	if m := r.counters.Load(); m != nil {
		for k, c := range *m {
			s.Counters[k] = c.Value()
		}
	}
	if m := r.gauges.Load(); m != nil {
		for k, g := range *m {
			s.Gauges[k] = g.Value()
		}
	}
	if m := r.histograms.Load(); m != nil {
		for k, h := range *m {
			s.Histograms[k] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (the expvar-style
// exposition format of the /debug/metrics endpoint and -metrics-out files).
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding metrics: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Names lists every registered metric name, sorted (for stable test output).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	var names []string
	if m := r.counters.Load(); m != nil {
		for k := range *m {
			names = append(names, k)
		}
	}
	if m := r.gauges.Load(); m != nil {
		for k := range *m {
			names = append(names, k)
		}
	}
	if m := r.histograms.Load(); m != nil {
		for k := range *m {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}
