package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The nil counter
// discards all writes, so Registry lookups never need an enabled-check.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 for the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric (resident documents, pool size, …).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value reads the gauge (0 for the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a concurrency-safe, name-keyed collection of metrics.
// Metrics are created on first use; the nil registry hands out nil
// (discarding) metrics, making instrumentation free when observability is
// off.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is the exportable state of a registry at one point in time.
// Map keys are metric names; histogram values carry percentile summaries.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. It is safe to call concurrently with
// metric updates; each metric is read atomically (histograms under their own
// lock).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (the expvar-style
// exposition format of the /debug/metrics endpoint and -metrics-out files).
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding metrics: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Names lists every registered metric name, sorted (for stable test output).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
