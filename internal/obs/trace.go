package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Trace event types. One benchmark run emits a flat JSON-lines stream of
// these; consumers reconstruct sessions by pairing session_start/session_end
// and attributing the events in between.
const (
	// EvSessionStart opens one session execution on one engine.
	EvSessionStart = "session_start"
	// EvSessionEnd closes a session; Duration carries the summed query
	// time (the paper's "w/o import" number).
	EvSessionEnd = "session_end"
	// EvImport records one dataset import.
	EvImport = "import"
	// EvQueryTranslate records translating one session into one query
	// language.
	EvQueryTranslate = "query_translate"
	// EvQueryExecute records one query execution with its ExecStats.
	EvQueryExecute = "query_execute"
	// EvCacheHit marks a query (partially) served from a cached ancestor
	// result.
	EvCacheHit = "cache_hit"
	// EvCacheMiss marks a filtered query that found no cached ancestor.
	EvCacheMiss = "cache_miss"
	// EvEviction marks an engine dropping its parsed datasets.
	EvEviction = "eviction"
	// EvTimeout marks a session exceeding its deadline; Query names the
	// query that was cancelled mid-flight.
	EvTimeout = "timeout"
	// EvError records a failed import or execution.
	EvError = "error"
	// EvFault records an injected fault; Kind carries the fault kind and
	// Attempt the operation's attempt number.
	EvFault = "fault"
	// EvRetry records the resilient executor re-attempting a failed
	// operation; Attempt is the attempt that just failed.
	EvRetry = "retry"
	// EvSkip records a query abandoned after exhausting its attempts, or
	// short-circuited by an open circuit breaker (Kind: "breaker_open").
	EvSkip = "skip"
	// EvBreaker records a circuit-breaker transition; Kind is the new
	// state ("open", "closed").
	EvBreaker = "breaker"
	// EvRecovery records a crash recovery replaying the stored-dataset
	// lineage; Queries is the lineage length.
	EvRecovery = "recovery"
	// EvCheckpoint records a completed work unit appended to the run
	// journal; Kind is the unit granularity ("experiment", "session").
	EvCheckpoint = "checkpoint"
	// EvResumeSkip records a work unit skipped on resume because the
	// journal already holds its result; Kind is the unit granularity.
	EvResumeSkip = "resume_skip"
	// EvJournalRecover records replaying a run journal; Records is the
	// record count and Err the truncation reason when a torn tail was
	// dropped.
	EvJournalRecover = "journal_recover"
	// EvScan records one completed scan-kernel pass; Kind is the execution
	// mode ("parallel", "sequential"), Scanned the item count and Workers
	// the worker goroutine count. Scan events carry no Duration: the
	// kernel is in the determinism lint scope and never reads the clock.
	EvScan = "scan"
	// EvLoadRun records one completed load-generation run; Kind is the
	// arrival process ("poisson", "bursty"), Queries the issued-query
	// count, Workers the pool bound and Duration the run horizon.
	EvLoadRun = "load_run"
)

// Event is one structured trace record. Zero-valued fields are omitted from
// the JSON line, so each event type only carries the fields it needs.
// Durations are serialised as integer nanoseconds (dur_ns), which makes
// summing per-query durations against the session total a one-liner in any
// consumer.
type Event struct {
	// Seq is a strictly increasing per-recorder sequence number,
	// assigned at Record time.
	Seq int64 `json:"seq"`
	// Time is the wall-clock timestamp, assigned at Record time.
	Time time.Time `json:"t"`
	// Type is one of the Ev* constants.
	Type string `json:"type"`

	Engine  string `json:"engine,omitempty"`
	Dataset string `json:"dataset,omitempty"`
	Query   string `json:"query,omitempty"`
	// Session labels the session the event belongs to (e.g. "seed123/2").
	Session string `json:"session,omitempty"`
	// Lang is the target language of a query_translate event.
	Lang string `json:"lang,omitempty"`
	// Kind subtypes fault, skip and breaker events.
	Kind string `json:"kind,omitempty"`
	// Attempt is the zero-based attempt number of retry/fault events.
	Attempt int `json:"attempt,omitempty"`

	Docs    int64 `json:"docs,omitempty"`
	Bytes   int64 `json:"bytes,omitempty"`
	Scanned int64 `json:"scanned,omitempty"`
	// Skipped counts work proven unnecessary by zone-map pruning: shards
	// on scan events, documents on query_execute events.
	Skipped  int64 `json:"skipped,omitempty"`
	Matched  int64 `json:"matched,omitempty"`
	Returned int64 `json:"returned,omitempty"`
	// Queries is the session's query count on session_start.
	Queries int `json:"queries,omitempty"`
	// Records is the record count of a journal_recover event.
	Records int64 `json:"records,omitempty"`
	// Workers is the worker goroutine count of a scan event.
	Workers int `json:"workers,omitempty"`

	Duration time.Duration `json:"dur_ns,omitempty"`
	TimedOut bool          `json:"timed_out,omitempty"`
	Err      string        `json:"err,omitempty"`
}

// Recorder serialises events as JSON lines to a writer. It is safe for
// concurrent use (the multi-user harness records from many goroutines); the
// nil recorder discards everything.
type Recorder struct {
	mu  sync.Mutex
	w   io.Writer
	seq int64
	err error
	now func() time.Time
}

// NewRecorder returns a recorder writing JSON lines to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: w, now: time.Now}
}

// SetClock replaces the recorder's time source (tests pin it for stable
// output).
func (r *Recorder) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Record stamps the event with a sequence number and timestamp and writes
// it as one JSON line. The first write error is retained and every later
// Record becomes a no-op, so a full disk cannot corrupt a benchmark run
// mid-flight.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.seq++
	e.Seq = r.seq
	e.Time = r.now()
	data, err := json.Marshal(e)
	if err != nil {
		r.err = fmt.Errorf("obs: encoding trace event: %w", err)
		return
	}
	data = append(data, '\n')
	if _, err := r.w.Write(data); err != nil {
		r.err = fmt.Errorf("obs: writing trace event: %w", err)
	}
}

// Err reports the first failure the recorder suppressed, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// ReadEvents parses a JSON-lines trace stream back into events (the
// consumer side of the format, used by tests and analysis tooling).
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: decoding trace event %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}
