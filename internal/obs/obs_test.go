package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every sink must tolerate nil receivers and the zero Scope: the whole
	// design rests on uninstrumented runs paying nothing.
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter value %d", c.Value())
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Errorf("nil gauge value %v", g.Value())
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Quantile(0.5) != 0 || h.Snapshot().Count != 0 {
		t.Errorf("nil histogram not empty")
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(time.Second)
	if r.Names() != nil || r.Snapshot().Counters == nil {
		t.Errorf("nil registry snapshot: %+v", r.Snapshot())
	}
	var rec *Recorder
	rec.Record(Event{Type: EvImport})
	rec.SetClock(time.Now)
	if rec.Err() != nil {
		t.Errorf("nil recorder err: %v", rec.Err())
	}
	var s Scope
	if s.Enabled() {
		t.Errorf("zero scope enabled")
	}
	s.Record(Event{Type: EvImport})
	s.Counter("x").Inc()
	s.Gauge("x").Set(1)
	s.Observe("x", time.Second)
}

func TestScopeContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if From(ctx).Enabled() {
		t.Fatalf("empty context carries a scope")
	}
	// A disabled scope must not be attached at all.
	if With(ctx, Scope{}) != ctx {
		t.Errorf("With(zero scope) allocated a new context")
	}
	sc := Scope{Metrics: NewRegistry()}
	got := From(With(ctx, sc))
	if !got.Enabled() || got.Metrics != sc.Metrics {
		t.Errorf("scope did not round-trip: %+v", got)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	// Hammer one registry from many goroutines (run under -race); totals
	// must come out exact.
	reg := NewRegistry()
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("ops").Inc()
				reg.Counter(fmt.Sprintf("worker.%d", w%4)).Add(2)
				reg.Gauge("level").Add(1)
				reg.Histogram("lat").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = reg.Snapshot() // concurrent readers
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("ops").Value(); got != workers*perWorker {
		t.Errorf("ops = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("level").Value(); got != workers*perWorker {
		t.Errorf("level = %v, want %d", got, workers*perWorker)
	}
	snap := reg.Snapshot()
	if snap.Histograms["lat"].Count != workers*perWorker {
		t.Errorf("lat count = %d", snap.Histograms["lat"].Count)
	}
	var total int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "worker.") {
			total += v
		}
	}
	if total != workers*perWorker*2 {
		t.Errorf("sharded counters sum %d, want %d", total, workers*perWorker*2)
	}
}

func TestHistogramBucketsInvertible(t *testing.T) {
	// Every bucket's bounds must cover exactly the values that map to it.
	for idx := 0; idx < histSub+10*histSub; idx++ {
		lo, width := bucketBounds(idx)
		if bucketIndex(lo) != idx || bucketIndex(lo+width-1) != idx {
			t.Fatalf("bucket %d bounds [%d,%d) map to %d/%d",
				idx, lo, lo+width, bucketIndex(lo), bucketIndex(lo+width-1))
		}
		if idx > 0 {
			if prevLo, prevW := bucketBounds(idx - 1); prevLo+prevW != lo {
				t.Fatalf("gap between bucket %d and %d: %d+%d != %d", idx-1, idx, prevLo, prevW, lo)
			}
		}
	}
	if bucketIndex(-5) != 0 {
		t.Errorf("negative duration bucket = %d", bucketIndex(-5))
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Quantile estimates must stay within the log-linear design error
	// (1/16 per octave; allow 10% for interpolation slack) of the exact
	// order statistics, across two very different distributions.
	distributions := map[string]func(r *rand.Rand) time.Duration{
		"uniform": func(r *rand.Rand) time.Duration {
			return time.Duration(r.Int63n(int64(10 * time.Millisecond)))
		},
		"bimodal": func(r *rand.Rand) time.Duration {
			if r.Intn(10) == 0 {
				return time.Duration(900+r.Int63n(200)) * time.Millisecond
			}
			return time.Duration(50+r.Int63n(100)) * time.Microsecond
		},
	}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(11))
			h := &Histogram{}
			samples := make([]time.Duration, 20000)
			for i := range samples {
				samples[i] = gen(r)
				h.Observe(samples[i])
			}
			sortDurations(samples)
			for _, q := range []float64{0.5, 0.9, 0.99} {
				exact := samples[int(q*float64(len(samples)-1))]
				got := h.Quantile(q)
				if tol := float64(exact) * 0.10; absDelta(got, exact) > tol+float64(time.Microsecond) {
					t.Errorf("q%.2f = %v, exact %v (tolerance 10%%)", q, got, exact)
				}
			}
			if h.Quantile(0) != samples[0] || h.Quantile(1) != samples[len(samples)-1] {
				t.Errorf("extremes not exact: %v/%v vs %v/%v",
					h.Quantile(0), h.Quantile(1), samples[0], samples[len(samples)-1])
			}
		})
	}
}

func sortDurations(s []time.Duration) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func absDelta(a, b time.Duration) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

func TestHistogramSnapshot(t *testing.T) {
	h := &Histogram{}
	if s := h.Snapshot(); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty snapshot: %+v", s)
	}
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 6*time.Millisecond || s.Mean != 3*time.Millisecond {
		t.Errorf("snapshot: %+v", s)
	}
	if s.Min != 2*time.Millisecond || s.Max != 4*time.Millisecond {
		t.Errorf("min/max: %+v", s)
	}
}

func TestRecorderSequenceAndRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	tick := 0
	rec.SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	})
	rec.Record(Event{Type: EvSessionStart, Engine: "joda", Session: "tw/seed1", Queries: 3})
	rec.Record(Event{Type: EvQueryExecute, Engine: "joda", Query: "q1", Duration: 120 * time.Millisecond, Matched: 7})
	rec.Record(Event{Type: EvTimeout, Engine: "joda", Query: "q2", TimedOut: true})
	rec.Record(Event{Type: EvSessionEnd, Engine: "joda", Session: "tw/seed1", Duration: 120 * time.Millisecond})
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Errorf("event %d seq = %d", i, e.Seq)
		}
		if i > 0 && !e.Time.After(events[i-1].Time) {
			t.Errorf("event %d time %v not after %v", i, e.Time, events[i-1].Time)
		}
	}
	if events[1].Duration != 120*time.Millisecond || events[1].Matched != 7 {
		t.Errorf("query event lost fields: %+v", events[1])
	}
	if !events[2].TimedOut {
		t.Errorf("timeout flag lost: %+v", events[2])
	}

	// Zero-valued fields must be omitted from the wire form.
	line, _, _ := strings.Cut(buf.String(), "\n")
	for _, absent := range []string{"docs", "err", "dur_ns", "matched", "lang"} {
		if strings.Contains(line, `"`+absent+`"`) {
			t.Errorf("session_start line carries %q: %s", absent, line)
		}
	}
}

func TestRecorderConcurrentSequencing(t *testing.T) {
	// Concurrent recorders must produce valid JSON lines with a gap-free
	// sequence (run under -race).
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec.Record(Event{Type: EvQueryExecute, Query: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	wg.Wait()
	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*perWorker {
		t.Fatalf("got %d events", len(events))
	}
	seen := make(map[int64]bool, len(events))
	for _, e := range events {
		seen[e.Seq] = true
	}
	for s := int64(1); s <= int64(len(events)); s++ {
		if !seen[s] {
			t.Fatalf("sequence gap at %d", s)
		}
	}
}

type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestRecorderStickyError(t *testing.T) {
	rec := NewRecorder(&failAfter{n: 2})
	for i := 0; i < 5; i++ {
		rec.Record(Event{Type: EvImport})
	}
	err := rec.Err()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine.joda.queries").Add(9)
	reg.Histogram("engine.joda.query").Observe(3 * time.Millisecond)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["engine.joda.queries"] != 9 {
		t.Errorf("counter = %d", snap.Counters["engine.joda.queries"])
	}
	if snap.Histograms["engine.joda.query"].Count != 1 {
		t.Errorf("histogram = %+v", snap.Histograms["engine.joda.query"])
	}
}
