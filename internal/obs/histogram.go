package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a streaming duration histogram with HDR-style log-linear
// buckets: microsecond resolution below 16µs, then 16 linear sub-buckets
// per power of two, giving a worst-case relative quantile error of about
// 1/16 ≈ 6% across the full time.Duration range — good enough to read p99s
// off a benchmark run without pre-declaring bucket bounds.
//
// Recording is lock-free and allocation-free: samples go to one of
// cellCount cache-line-padded cells of fixed-size atomic buckets (picked by
// cellIndex, so concurrent recorders rarely share a cell), and readers merge
// the cells on demand. The zero value is ready to use; the cells are
// installed by the first Record. Snapshots taken while recorders are active
// see each atomic individually consistent but not a single instant across
// all of them — exact totals need external quiescence, which every caller
// (end-of-run exports, tests after Wait) already has.
type Histogram struct {
	cells atomic.Pointer[histCells]
}

const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per octave
	// histBuckets covers every representable microsecond count: a
	// non-negative int64 has at most 63 bits, so octaves histSubBits..62
	// (plus the linear run below histSub) need this many buckets. The
	// layout is fixed so cells can be merged index-by-index.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// histCell is one writer shard. The hot header (sum and the CAS'd extremes)
// is padded to its own cache line; the bucket array behind it is shared
// across lines but concurrent writers rarely increment the same bucket.
// Count is derived from the buckets, so a cell with every bucket zero is
// empty and its min/max sentinels are ignored.
type histCell struct {
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; math.MaxInt64 when empty
	max     atomic.Int64 // nanoseconds; math.MinInt64 when empty
	_       [40]byte     // pad the header to a 64-byte line
	buckets [histBuckets]atomic.Int64
}

type histCells struct {
	cells []histCell
}

// bucketIndex maps a microsecond value to its bucket.
func bucketIndex(us int64) int {
	if us < 0 {
		us = 0
	}
	v := uint64(us)
	if v < histSub {
		return int(v)
	}
	octave := bits.Len64(v) - 1 // 2^octave <= v < 2^(octave+1)
	sub := (v >> (uint(octave) - histSubBits)) & (histSub - 1)
	return histSub + (octave-histSubBits)*histSub + int(sub)
}

// bucketBounds returns the inclusive lower bound and width of a bucket, in
// microseconds.
func bucketBounds(idx int) (lo, width int64) {
	if idx < histSub {
		return int64(idx), 1
	}
	k := idx - histSub
	octave := histSubBits + k/histSub
	sub := k % histSub
	width = int64(1) << (octave - histSubBits)
	lo = int64(1)<<octave + int64(sub)*width
	return lo, width
}

// initCells installs the cell array on first use. Exactly one caller wins
// the CAS; losers adopt the winner's array, so the pointer is written once
// and the hot path never sees it change.
func (h *Histogram) initCells() *histCells {
	fresh := &histCells{cells: make([]histCell, cellCount)}
	for i := range fresh.cells {
		fresh.cells[i].min.Store(math.MaxInt64)
		fresh.cells[i].max.Store(math.MinInt64)
	}
	if h.cells.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return h.cells.Load()
}

// Record folds one duration into the histogram: one bucket increment, one
// sum add and two bounded CAS loops on a per-writer cell — lock-free and
// allocation-free (after the first call installs the cells).
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	st := h.cells.Load()
	if st == nil {
		st = h.initCells()
	}
	c := &st.cells[cellIndex()]
	ns := int64(d)
	c.buckets[bucketIndex(ns/int64(time.Microsecond))].Add(1)
	c.sum.Add(ns)
	for {
		old := c.min.Load()
		if ns >= old || c.min.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := c.max.Load()
		if ns <= old || c.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Observe folds one duration into the histogram. It is Record under the
// registry's historical name; both entry points are the same hot path.
func (h *Histogram) Observe(d time.Duration) { h.Record(d) }

// histMerged is the point-in-time merge of every cell, the input to all
// read-side computation.
type histMerged struct {
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]int64
}

// merged folds the cells into one summary. Bucket addition is commutative
// and associative and min/max are lattice joins, so the merge is
// order-independent: any grouping of cells (or of whole histograms, see
// Merge) yields the same summary.
func (h *Histogram) merged() histMerged {
	m := histMerged{min: math.MaxInt64, max: math.MinInt64}
	if h == nil {
		return m
	}
	st := h.cells.Load()
	if st == nil {
		return m
	}
	for i := range st.cells {
		c := &st.cells[i]
		for b := range c.buckets {
			if n := c.buckets[b].Load(); n != 0 {
				m.buckets[b] += n
				m.count += n
			}
		}
		m.sum += c.sum.Load()
		if mn := c.min.Load(); mn < m.min {
			m.min = mn
		}
		if mx := c.max.Load(); mx > m.max {
			m.max = mx
		}
	}
	return m
}

// Merge folds o's current contents into h (o is unchanged). Merging is
// commutative and associative — the per-shard summaries of a partitioned
// run can be combined in any order and yield the same quantiles as one
// shared histogram.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	m := o.merged()
	if m.count == 0 {
		return
	}
	st := h.cells.Load()
	if st == nil {
		st = h.initCells()
	}
	c := &st.cells[0]
	for b := range m.buckets {
		if m.buckets[b] != 0 {
			c.buckets[b].Add(m.buckets[b])
		}
	}
	c.sum.Add(m.sum)
	for {
		old := c.min.Load()
		if m.min >= old || c.min.CompareAndSwap(old, m.min) {
			break
		}
	}
	for {
		old := c.max.Load()
		if m.max <= old || c.max.CompareAndSwap(old, m.max) {
			break
		}
	}
}

// quantile estimates the q-th quantile of a merged summary by linear
// interpolation within the covering bucket, clamped to the exact observed
// min/max.
func (m *histMerged) quantile(q float64) time.Duration {
	if m.count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(m.min)
	}
	if q >= 1 {
		return time.Duration(m.max)
	}
	rank := q * float64(m.count)
	var cum float64
	for idx, n := range m.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, width := bucketBounds(idx)
			frac := (rank - cum) / float64(n)
			us := float64(lo) + frac*float64(width)
			d := time.Duration(us * float64(time.Microsecond))
			if d < time.Duration(m.min) {
				d = time.Duration(m.min)
			}
			if d > time.Duration(m.max) {
				d = time.Duration(m.max)
			}
			return d
		}
		cum = next
	}
	return time.Duration(m.max)
}

// Quantile estimates the q-th quantile (0 <= q <= 1). Returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	m := h.merged()
	return m.quantile(q)
}

// HistogramSnapshot is the exportable summary of a histogram.
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
}

// Snapshot summarises the histogram from one merge of its cells.
func (h *Histogram) Snapshot() HistogramSnapshot {
	m := h.merged()
	if m.count == 0 {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: m.count,
		Sum:   time.Duration(m.sum),
		Min:   time.Duration(m.min),
		Max:   time.Duration(m.max),
		Mean:  time.Duration(m.sum / m.count),
		P50:   m.quantile(0.5),
		P90:   m.quantile(0.9),
		P99:   m.quantile(0.99),
		P999:  m.quantile(0.999),
	}
}
