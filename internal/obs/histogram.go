package obs

import (
	"math/bits"
	"sync"
	"time"
)

// Histogram is a streaming duration histogram with HDR-style log-linear
// buckets: microsecond resolution below 16µs, then 16 linear sub-buckets
// per power of two, giving a worst-case relative quantile error of about
// 1/16 ≈ 6% across the full time.Duration range — good enough to read p99s
// off a benchmark run without pre-declaring bucket bounds.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets []int64 // grown lazily to the highest observed bucket
}

const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per octave
)

// bucketIndex maps a microsecond value to its bucket.
func bucketIndex(us int64) int {
	if us < 0 {
		us = 0
	}
	v := uint64(us)
	if v < histSub {
		return int(v)
	}
	octave := bits.Len64(v) - 1 // 2^octave <= v < 2^(octave+1)
	sub := (v >> (uint(octave) - histSubBits)) & (histSub - 1)
	return histSub + (octave-histSubBits)*histSub + int(sub)
}

// bucketBounds returns the inclusive lower bound and width of a bucket, in
// microseconds.
func bucketBounds(idx int) (lo, width int64) {
	if idx < histSub {
		return int64(idx), 1
	}
	k := idx - histSub
	octave := histSubBits + k/histSub
	sub := k % histSub
	width = int64(1) << (octave - histSubBits)
	lo = int64(1)<<octave + int64(sub)*width
	return lo, width
}

// Observe folds one duration into the histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	idx := bucketIndex(d.Microseconds())
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	if idx >= len(h.buckets) {
		grown := make([]int64, idx+1)
		copy(grown, h.buckets)
		h.buckets = grown
	}
	h.buckets[idx]++
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the covering bucket, clamped to the exact observed
// min/max. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for idx, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, width := bucketBounds(idx)
			frac := (rank - cum) / float64(n)
			us := float64(lo) + frac*float64(width)
			d := time.Duration(us * float64(time.Microsecond))
			if d < h.min {
				d = h.min
			}
			if d > h.max {
				d = h.max
			}
			return d
		}
		cum = next
	}
	return h.max
}

// HistogramSnapshot is the exportable summary of a histogram.
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Snapshot summarises the histogram under one lock acquisition.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / time.Duration(h.count)
		s.P50 = h.quantileLocked(0.5)
		s.P90 = h.quantileLocked(0.9)
		s.P99 = h.quantileLocked(0.99)
	}
	return s
}
