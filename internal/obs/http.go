package obs

import "net/http"

// Handler exposes the registry as an expvar-style JSON endpoint. Mount it
// under /debug/metrics next to net/http/pprof to make a running benchmark
// service observable:
//
//	mux.Handle("GET /debug/metrics", obs.Handler(reg))
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
