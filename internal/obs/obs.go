// Package obs is the observability layer of the reproduction: a stdlib-only
// metrics registry (counters, gauges, streaming duration histograms) and a
// per-query trace recorder emitting structured JSON-lines events.
//
// The paper's whole point is measurement, yet a benchmark run is itself a
// system worth observing: which engine served a query from cache, where the
// harness spent its wall clock, whether a session hit its timeout. Engines
// and the harness are instrumented against this package; everything is
// opt-in and nil-safe, so an uninstrumented run pays only a context lookup
// and a nil check per call site.
//
// Plumbing is context-based: callers attach a Scope (a registry plus a
// recorder, either may be nil) with With, and instrumented code retrieves it
// with From. A zero Scope discards everything.
package obs

import (
	"context"
	"time"
)

// Scope bundles the two observability sinks. Either field may be nil; all
// Scope methods tolerate the zero value.
type Scope struct {
	// Metrics receives counters, gauges and histograms.
	Metrics *Registry
	// Trace receives structured trace events.
	Trace *Recorder
}

// Enabled reports whether the scope has at least one sink attached.
func (s Scope) Enabled() bool { return s.Metrics != nil || s.Trace != nil }

// Record forwards an event to the trace recorder, if any.
func (s Scope) Record(e Event) { s.Trace.Record(e) }

// Counter resolves a counter in the registry (a discarding nil counter
// without one).
func (s Scope) Counter(name string) *Counter { return s.Metrics.Counter(name) }

// Gauge resolves a gauge in the registry.
func (s Scope) Gauge(name string) *Gauge { return s.Metrics.Gauge(name) }

// Observe folds one duration into the named histogram.
func (s Scope) Observe(name string, d time.Duration) {
	s.Metrics.Histogram(name).Observe(d)
}

type ctxKey struct{}

// With attaches the scope to the context so instrumented code down the call
// chain (engines, translators) can report into it.
func With(ctx context.Context, s Scope) context.Context {
	if !s.Enabled() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// From retrieves the scope attached with With; the zero (discarding) Scope
// when the context carries none.
func From(ctx context.Context) Scope {
	if s, ok := ctx.Value(ctxKey{}).(Scope); ok {
		return s
	}
	return Scope{}
}
