package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/joda-explore/betze/internal/jsonval"
)

// RedditOptions configures the Reddit-comments generator.
type RedditOptions struct {
	// NullByteFraction is the fraction of comments whose body embeds a
	// U+0000 escape, which real Reddit dumps contain and which makes
	// PostgreSQL's JSONB import fail (Table III of the paper). Zero means
	// the default of 0.0005; set it negative to disable.
	NullByteFraction float64
}

func (o RedditOptions) fraction() float64 {
	if o.NullByteFraction == 0 {
		return 0.0005
	}
	if o.NullByteFraction < 0 {
		return 0
	}
	return o.NullByteFraction
}

// NewReddit returns a generator for a Reddit-comments dataset: a flat,
// fixed schema of 20 attributes with no nesting and no optional fields, the
// paper's "relational data represented in JSON" case. Every document has
// exactly the same attribute set, so BETZE generates no existence
// predicates on it (Fig. 8). U+0000 bodies are injected periodically (every
// round(1/fraction)-th document) rather than randomly, so every non-trivial
// sample deterministically reproduces PostgreSQL's import failure.
func NewReddit(opts RedditOptions) Source {
	frac := opts.fraction()
	period := 0
	if frac > 0 {
		period = int(1 / frac)
		if period < 1 {
			period = 1
		}
	}
	return Source{Name: "Reddit", next: func(r *rand.Rand, i int) jsonval.Value {
		return redditDoc(r, i, period)
	}}
}

var (
	redditSubreddits = []string{"soccer", "funny", "AskReddit", "gaming", "de", "news", "science", "movies"}
	redditFlairs     = []string{"fan", "mod-pick", "star", "og", "new"}
	redditWords      = []string{
		"the", "match", "was", "incredible", "totally", "agree", "classic",
		"this", "comment", "deserves", "gold", "source", "please", "lol",
	}
)

func redditDoc(r *rand.Rand, i int, nullPeriod int) jsonval.Value {
	id := fmt.Sprintf("c%07x", r.Uint32())
	link := fmt.Sprintf("t3_%06x", r.Uint32())
	sub := redditSubreddits[r.Intn(len(redditSubreddits))]
	body := redditText(r)
	if nullPeriod > 0 && (i+1)%nullPeriod == 0 {
		body += "\x00"
	}
	var edited jsonval.Value = boolean(false)
	if r.Intn(20) == 0 {
		edited = num(1500000000 + r.Int63n(1e8))
	}
	var distinguished jsonval.Value = jsonval.NullValue()
	if r.Intn(50) == 0 {
		distinguished = str("moderator")
	}
	var flairCSS, flairText jsonval.Value = jsonval.NullValue(), jsonval.NullValue()
	if r.Intn(3) == 0 {
		f := redditFlairs[r.Intn(len(redditFlairs))]
		flairCSS = str(f)
		flairText = str(strings.ToUpper(f))
	}
	return jsonval.ObjectValue(
		m("author", str(fmt.Sprintf("user_%05d", r.Intn(50000)))),
		m("author_flair_css_class", flairCSS),
		m("author_flair_text", flairText),
		m("body", str(body)),
		m("can_gild", boolean(r.Intn(10) != 0)),
		m("controversiality", num(int64(r.Intn(2)))),
		m("created_utc", num(1500000000+r.Int63n(1e8))),
		m("distinguished", distinguished),
		m("edited", edited),
		m("gilded", num(int64(r.Intn(3)))),
		m("id", str(id)),
		m("is_submitter", boolean(r.Intn(8) == 0)),
		m("link_id", str(link)),
		m("parent_id", str(fmt.Sprintf("t1_%06x", r.Uint32()))),
		m("permalink", str(fmt.Sprintf("/r/%s/comments/%s/%s/", sub, link[3:], id))),
		m("retrieved_on", num(1600000000+r.Int63n(1e8))),
		m("score", num(int64(r.Intn(20000)-100))),
		m("stickied", boolean(r.Intn(100) == 0)),
		m("subreddit", str(sub)),
		m("subreddit_id", str(fmt.Sprintf("t5_%05x", r.Uint32()%0x100000))),
	)
}

func redditText(r *rand.Rand) string {
	n := 2 + r.Intn(30)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(redditWords[r.Intn(len(redditWords))])
	}
	return sb.String()
}
