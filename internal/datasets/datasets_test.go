package datasets

import (
	"bytes"
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/analyze"
	"github.com/joda-explore/betze/internal/jsonval"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, src := range []Source{NewTwitter(), NewNoBench(), NewReddit(RedditOptions{})} {
		a := src.Generate(50, 7)
		b := src.Generate(50, 7)
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Errorf("%s doc %d differs across same-seed runs", src.Name, i)
			}
		}
		c := src.Generate(50, 8)
		same := 0
		for i := range a {
			if a[i].String() == c[i].String() {
				same++
			}
		}
		if same == len(a) {
			t.Errorf("%s produced identical output for different seeds", src.Name)
		}
	}
}

func TestWriteToMatchesGenerate(t *testing.T) {
	for _, src := range []Source{NewTwitter(), NewNoBench(), NewReddit(RedditOptions{})} {
		var buf bytes.Buffer
		if err := src.WriteTo(&buf, 30, 3); err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		docs := src.Generate(30, 3)
		dec := jsonval.NewDecoder(&buf)
		for i, want := range docs {
			got, err := dec.Decode()
			if err != nil {
				t.Fatalf("%s doc %d: %v", src.Name, i, err)
			}
			if got.String() != want.String() {
				t.Errorf("%s doc %d: streamed and generated differ", src.Name, i)
			}
		}
	}
}

func TestTwitterHeterogeneity(t *testing.T) {
	docs := NewTwitter().Generate(2000, 1)
	stats := analyze.Values("tw", docs, analyze.Options{Workers: 1})
	// Deletes, limits and statuses coexist.
	if stats.Paths[jsonval.Path("/delete/status/id")] == nil {
		t.Errorf("no delete events generated")
	}
	if stats.Paths[jsonval.Path("/limit/track")] == nil {
		t.Errorf("no limit events generated")
	}
	user := stats.Paths[jsonval.Path("/user")]
	if user == nil || user.Count == stats.DocCount {
		t.Errorf("user attribute should exist in a proper subset: %+v", user)
	}
	// Deep nesting via retweeted_status.
	deep := stats.Paths[jsonval.Path("/retweeted_status/user/verified")]
	if deep == nil || deep.Bool == nil {
		t.Errorf("no deeply nested retweet attributes")
	}
	maxDepth := 0
	for p := range stats.Paths {
		if d := p.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth < 4 {
		t.Errorf("max path depth %d, want >= 4", maxDepth)
	}
	// Document sizes vary widely (delete events vs full retweets).
	minLen, maxLen := 1<<30, 0
	for _, d := range docs {
		l := len(jsonval.AppendJSON(nil, d))
		if l < minLen {
			minLen = l
		}
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen < 8*minLen {
		t.Errorf("document size skew too small: %d..%d bytes", minLen, maxLen)
	}
}

func TestTwitterAllJSONTypes(t *testing.T) {
	stats := analyze.Values("tw", NewTwitter().Generate(1500, 2), analyze.Options{Workers: 1})
	var hasInt, hasFloat, hasStr, hasBool, hasArr, hasObj bool
	for _, ps := range stats.Paths {
		hasInt = hasInt || ps.Int != nil
		hasFloat = hasFloat || ps.Float != nil
		hasStr = hasStr || ps.Str != nil
		hasBool = hasBool || ps.Bool != nil
		hasArr = hasArr || ps.Arr != nil
		hasObj = hasObj || ps.Obj != nil
	}
	if !hasInt || !hasFloat || !hasStr || !hasBool || !hasArr || !hasObj {
		t.Errorf("missing JSON types: int=%v float=%v str=%v bool=%v arr=%v obj=%v",
			hasInt, hasFloat, hasStr, hasBool, hasArr, hasObj)
	}
}

func TestNoBenchShape(t *testing.T) {
	docs := NewNoBench().Generate(1000, 1)
	stats := analyze.Values("nb", docs, analyze.Options{Workers: 1})
	root := stats.Paths[jsonval.RootPath]
	if root.Obj.MinChildren < 19 || root.Obj.MaxChildren > 23 {
		t.Errorf("NoBench attribute count out of shape: %d..%d", root.Obj.MinChildren, root.Obj.MaxChildren)
	}
	// Fixed dense attributes exist everywhere.
	for _, p := range []string{"/str1", "/str2", "/num", "/bool", "/dyn1", "/dyn2", "/nested_arr", "/nested_obj", "/thousandth"} {
		ps := stats.Paths[jsonval.Path(p)]
		if ps == nil || ps.Count != stats.DocCount {
			t.Errorf("dense attribute %s missing or sparse: %+v", p, ps)
		}
	}
	// dyn1 is dynamically typed.
	dyn1 := stats.Paths[jsonval.Path("/dyn1")]
	if dyn1.Int == nil || dyn1.Str == nil {
		t.Errorf("dyn1 not dynamically typed: %+v", dyn1)
	}
	// Sparse attributes: many distinct, each rare.
	sparse := 0
	for p, ps := range stats.Paths {
		if strings.HasPrefix(string(p), "/sparse_") {
			sparse++
			if ps.Count == stats.DocCount {
				t.Errorf("sparse attribute %s is dense", p)
			}
		}
	}
	if sparse < 100 {
		t.Errorf("only %d sparse attributes in 1000 docs", sparse)
	}
	// No nulls anywhere (NoBench has every type except null).
	for p, ps := range stats.Paths {
		if ps.NullCount > 0 {
			t.Errorf("unexpected null at %s", p)
		}
	}
	// Strings share large prefix groups (drives HASPREFIX generation).
	str1 := stats.Paths[jsonval.Path("/str1")].Str
	if len(str1.Prefixes) == 0 {
		t.Fatalf("no prefixes for str1")
	}
	var maxPrefix int64
	for _, c := range str1.Prefixes {
		if c > maxPrefix {
			maxPrefix = c
		}
	}
	if maxPrefix < stats.DocCount/20 {
		t.Errorf("largest str1 prefix group covers only %d/%d docs", maxPrefix, stats.DocCount)
	}
}

func TestRedditFixedSchema(t *testing.T) {
	docs := NewReddit(RedditOptions{NullByteFraction: -1}).Generate(800, 1)
	stats := analyze.Values("rd", docs, analyze.Options{Workers: 1})
	root := stats.Paths[jsonval.RootPath]
	if root.Obj.MinChildren != 20 || root.Obj.MaxChildren != 20 {
		t.Errorf("Reddit schema not fixed at 20 attributes: %d..%d", root.Obj.MinChildren, root.Obj.MaxChildren)
	}
	for p, ps := range stats.Paths {
		if p == jsonval.RootPath {
			continue
		}
		if p.Depth() != 1 {
			t.Errorf("Reddit has nested path %s", p)
		}
		if ps.Count != stats.DocCount {
			t.Errorf("Reddit attribute %s not in every document", p)
		}
	}
}

func TestRedditNullByteInjection(t *testing.T) {
	docs := NewReddit(RedditOptions{NullByteFraction: 0.05}).Generate(2000, 1)
	found := 0
	for _, d := range docs {
		body, _ := d.Field("body")
		if strings.IndexByte(body.Str(), 0) >= 0 {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("no NUL bytes injected")
	}
	// The NUL must survive serialisation as a unicode escape and reparse.
	var buf bytes.Buffer
	if err := NewReddit(RedditOptions{NullByteFraction: 1}).WriteTo(&buf, 5, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\\u0000") {
		t.Errorf("serialised form lacks the backslash-u0000 escape")
	}
	clean := NewReddit(RedditOptions{NullByteFraction: -1}).Generate(2000, 1)
	for _, d := range clean {
		body, _ := d.Field("body")
		if strings.IndexByte(body.Str(), 0) >= 0 {
			t.Fatalf("disabled injection still produced NUL")
		}
	}
}

func TestWriteFile(t *testing.T) {
	path := t.TempDir() + "/nb.json"
	if err := NewNoBench().WriteFile(path, 100, 5); err != nil {
		t.Fatal(err)
	}
	stats, err := analyze.File("nb", path, analyze.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DocCount != 100 {
		t.Errorf("file holds %d docs", stats.DocCount)
	}
	if err := NewNoBench().WriteFile("/nonexistent-dir/x.json", 1, 1); err == nil {
		t.Errorf("bad path accepted")
	}
}
