package datasets

import (
	"fmt"
	"math/rand"

	"github.com/joda-explore/betze/internal/jsonval"
)

// NewNoBench returns a generator for the NoBench dataset of Chasseur et al.
// (the paper's scalability dataset): every document carries about 21 shallow
// attributes covering all JSON types except null — two strings with large
// shared prefix groups, numbers, a boolean, two dynamically typed
// attributes, a string array, a two-member nested object, and a cluster of
// ten sparse attributes drawn from a pool of one thousand.
func NewNoBench() Source {
	return Source{Name: "NoBench", next: nobenchDoc}
}

// str1Groups are the four-character group labels of str1.
var str1Groups = []string{
	"GBRD", "MFRG", "ORSX", "NZSA", "KRUG", "PFXG", "LBSW", "QQGC",
	"ZB2W", "X3JN", "C4DS", "V5HU", "B6YT", "D7KQ", "E2MN", "F4PL",
}

// base32ish encodes n in a base32-like alphabet, producing NoBench-style
// string payloads.
func base32ish(n int64) string {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"
	buf := [13]byte{}
	for i := range buf {
		buf[i] = alphabet[n&31]
		n >>= 5
	}
	return string(buf[:])
}

func nobenchDoc(r *rand.Rand, i int) jsonval.Value {
	n := int64(i)
	// dyn1 alternates int/string per document; dyn2 alternates bool/object.
	var dyn1, dyn2 jsonval.Value
	if i%2 == 0 {
		dyn1 = num(n)
	} else {
		dyn1 = str(fmt.Sprintf("%d", n))
	}
	if i%10 < 5 {
		dyn2 = boolean(i%10 < 2)
	} else {
		dyn2 = jsonval.ObjectValue(m("str", str(base32ish(r.Int63()))))
	}
	arrLen := r.Intn(8)
	arr := make([]jsonval.Value, arrLen)
	for j := range arr {
		arr[j] = str(base32ish(r.Int63n(1 << 20)))
	}
	// str1 carries a group label up front so documents fall into large
	// shared prefix classes of skewed sizes, the property that makes
	// HASPREFIX the dominant predicate on NoBench (Fig. 8).
	group := int(16 * r.Float64() * r.Float64())
	members := []jsonval.Member{
		m("str1", str(str1Groups[group]+base32ish(r.Int63n(1<<25)))),
		m("str2", str(base32ish(n))),
		m("num", num(n)),
		m("bool", boolean(i%2 == 0)),
		m("dyn1", dyn1),
		m("dyn2", dyn2),
		m("nested_arr", jsonval.ArrayValue(arr...)),
		m("nested_obj", jsonval.ObjectValue(
			m("str", str(base32ish(r.Int63n(1<<30)))),
			m("num", num(n*2)),
		)),
		m("thousandth", num(n%1000)),
	}
	// Ten sparse attributes from a clustered window of the 1000-attribute
	// pool, as in the original generator.
	cluster := (i * 10) % 1000
	for j := 0; j < 10; j++ {
		key := fmt.Sprintf("sparse_%03d", (cluster+j)%1000)
		members = append(members, m(key, str(base32ish(r.Int63n(1<<15)))))
	}
	return jsonval.ObjectValue(members...)
}
