package datasets

import (
	"fmt"
	"math/rand"

	"github.com/joda-explore/betze/internal/jsonval"
)

// NewTwitter returns a generator producing a raw-Twitter-stream-like mix of
// events: status updates (some of them retweets with a fully nested
// retweeted_status), delete events, and rate-limit notices. Documents are
// heterogeneous (many optional attributes), nest up to six levels, and vary
// widely in size — the properties the paper's Twitter dataset exhibits
// (7–348 attributes per document, every JSON type).
func NewTwitter() Source {
	return Source{Name: "Twitter", next: twitterDoc}
}

var (
	twitterLangs     = []string{"en", "de", "ja", "es", "pt", "fr", "tr", "und"}
	twitterTimezones = []string{"Berlin", "Pacific Time (US & Canada)", "Tokyo", "London", "Brasilia", "Amsterdam", "Athens"}
	twitterSources   = []string{
		`<a href="http://twitter.com/download/iphone" rel="nofollow">Twitter for iPhone</a>`,
		`<a href="http://twitter.com/download/android" rel="nofollow">Twitter for Android</a>`,
		`<a href="https://mobile.twitter.com" rel="nofollow">Twitter Web App</a>`,
	}
	twitterCities = []string{"Berlin, Germany", "Kaiserslautern", "Tokyo", "NYC", "São Paulo", "London, UK"}
	twitterWords  = []string{
		"soccer", "football", "goal", "match", "team", "league", "cup", "fans",
		"today", "watch", "live", "great", "new", "shoes", "boots", "apparel",
	}
)

func twitterDoc(r *rand.Rand, i int) jsonval.Value {
	switch p := r.Float64(); {
	case p < 0.12:
		return twitterDelete(r)
	case p < 0.16:
		return twitterLimit(r)
	default:
		return twitterStatus(r, true)
	}
}

// twitterStatus builds a status update; withRetweet allows one level of
// embedded retweeted_status (which itself never embeds another).
func twitterStatus(r *rand.Rand, withRetweet bool) jsonval.Value {
	id := 1000000000000 + r.Int63n(9000000000000)
	members := []jsonval.Member{
		m("created_at", str(twitterDate(r))),
		m("id", num(id)),
		m("id_str", str(fmt.Sprintf("%d", id))),
		m("text", str(twitterText(r))),
		m("source", str(twitterSources[r.Intn(len(twitterSources))])),
		m("truncated", boolean(r.Intn(10) == 0)),
		m("in_reply_to_status_id", jsonval.NullValue()),
		m("in_reply_to_status_id_str", jsonval.NullValue()),
		m("in_reply_to_user_id", jsonval.NullValue()),
		m("in_reply_to_user_id_str", jsonval.NullValue()),
		m("in_reply_to_screen_name", jsonval.NullValue()),
		m("contributors", jsonval.NullValue()),
		m("is_quote_status", boolean(r.Intn(8) == 0)),
		m("filter_level", str("low")),
		m("user", twitterUser(r)),
	}
	if withRetweet && r.Intn(100) < 30 {
		members = append(members, m("retweeted_status", twitterStatus(r, false)))
	}
	if r.Intn(100) < 85 {
		members = append(members, m("entities", twitterEntities(r)))
	}
	if r.Intn(100) < 20 {
		members = append(members, m("coordinates", jsonval.ObjectValue(
			m("type", str("Point")),
			m("coordinates", jsonval.ArrayValue(flt(r.Float64()*360-180), flt(r.Float64()*180-90))),
		)))
	}
	if r.Intn(100) < 15 {
		members = append(members, m("place", jsonval.ObjectValue(
			m("id", str(fmt.Sprintf("%08x", r.Uint32()))),
			m("place_type", str("city")),
			m("name", str(twitterCities[r.Intn(len(twitterCities))])),
			m("country_code", str([]string{"DE", "US", "JP", "GB", "BR"}[r.Intn(5)])),
		)))
	}
	members = append(members,
		m("retweet_count", num(int64(r.Intn(10000)))),
		m("favorite_count", num(int64(r.Intn(50000)))),
		m("favorited", boolean(false)),
		m("retweeted", boolean(false)),
		m("lang", str(twitterLangs[r.Intn(len(twitterLangs))])),
	)
	if r.Intn(100) < 40 {
		members = append(members, m("possibly_sensitive", boolean(r.Intn(20) == 0)))
	}
	if r.Intn(100) < 10 {
		members = append(members, m("quote_count", num(int64(r.Intn(500)))),
			m("reply_count", num(int64(r.Intn(1000)))))
	}
	if r.Intn(100) < 25 {
		// Floating-point attribute outside arrays so the analyzer sees
		// float statistics (array elements are size-summarised only).
		members = append(members, m("metadata", jsonval.ObjectValue(
			m("result_score", flt(r.Float64())),
			m("iso_language_code", str(twitterLangs[r.Intn(len(twitterLangs))])),
		)))
	}
	return jsonval.ObjectValue(members...)
}

func twitterUser(r *rand.Rand) jsonval.Value {
	id := 10000 + r.Int63n(2000000000)
	members := []jsonval.Member{
		m("id", num(id)),
		m("id_str", str(fmt.Sprintf("%d", id))),
		m("name", str(fmt.Sprintf("user %s%d", twitterWords[r.Intn(len(twitterWords))], r.Intn(10000)))),
		m("screen_name", str(fmt.Sprintf("%s_%04d", twitterWords[r.Intn(len(twitterWords))], r.Intn(10000)))),
		m("verified", boolean(r.Intn(50) == 0)),
		m("followers_count", num(int64(r.Intn(1000000)))),
		m("friends_count", num(int64(r.Intn(5000)))),
		m("statuses_count", num(int64(r.Intn(200000)))),
		m("created_at", str(twitterDate(r))),
		m("geo_enabled", boolean(r.Intn(3) == 0)),
		m("lang", str(twitterLangs[r.Intn(len(twitterLangs))])),
		// The boilerplate profile fields every raw-stream user object
		// carries; they are what make real tweets kilobytes large.
		m("listed_count", num(int64(r.Intn(500)))),
		m("favourites_count", num(int64(r.Intn(50000)))),
		m("protected", boolean(r.Intn(40) == 0)),
		m("contributors_enabled", boolean(false)),
		m("is_translator", boolean(r.Intn(100) == 0)),
		m("profile_background_color", str(hexColor(r))),
		m("profile_background_image_url", str(fmt.Sprintf("http://abs.twimg.com/images/themes/theme%d/bg.png", 1+r.Intn(19)))),
		m("profile_background_tile", boolean(r.Intn(4) == 0)),
		m("profile_link_color", str(hexColor(r))),
		m("profile_sidebar_border_color", str(hexColor(r))),
		m("profile_sidebar_fill_color", str(hexColor(r))),
		m("profile_text_color", str(hexColor(r))),
		m("profile_use_background_image", boolean(r.Intn(3) > 0)),
		m("default_profile", boolean(r.Intn(2) == 0)),
		m("default_profile_image", boolean(r.Intn(20) == 0)),
		m("following", jsonval.NullValue()),
		m("follow_request_sent", jsonval.NullValue()),
		m("notifications", jsonval.NullValue()),
	}
	if r.Intn(100) < 55 {
		members = append(members, m("location", str(twitterCities[r.Intn(len(twitterCities))])))
	}
	if r.Intn(100) < 65 {
		members = append(members, m("description", str(twitterText(r))))
	}
	if r.Intn(100) < 45 {
		members = append(members, m("time_zone", str(twitterTimezones[r.Intn(len(twitterTimezones))])))
	}
	if r.Intn(100) < 70 {
		members = append(members, m("profile_image_url", str(fmt.Sprintf("http://pbs.twimg.com/profile_images/%d/photo.jpg", r.Int63n(1e12)))))
	}
	if r.Intn(100) < 35 {
		// Profile entities as in the real API: user.entities.url.urls /
		// user.entities.description.urls, which reach depth five inside
		// a retweeted_status.
		members = append(members, m("entities", jsonval.ObjectValue(
			m("url", jsonval.ObjectValue(
				m("urls", jsonval.ArrayValue(jsonval.ObjectValue(
					m("url", str(fmt.Sprintf("https://t.co/%07x", r.Uint32()))),
				))),
				m("display", boolean(r.Intn(2) == 0)),
			)),
			m("description", jsonval.ObjectValue(
				m("urls", jsonval.ArrayValue()),
				m("mentions_count", num(int64(r.Intn(5)))),
			)),
		)))
	}
	return jsonval.ObjectValue(members...)
}

func twitterEntities(r *rand.Rand) jsonval.Value {
	tags := make([]jsonval.Value, r.Intn(4))
	for i := range tags {
		tags[i] = jsonval.ObjectValue(
			m("text", str(twitterWords[r.Intn(len(twitterWords))])),
			m("indices", jsonval.ArrayValue(num(int64(r.Intn(100))), num(int64(100+r.Intn(40))))),
		)
	}
	urls := make([]jsonval.Value, r.Intn(3))
	for i := range urls {
		urls[i] = jsonval.ObjectValue(
			m("url", str(fmt.Sprintf("https://t.co/%07x", r.Uint32()))),
			m("expanded_url", str(fmt.Sprintf("https://example.com/%s/%d", twitterWords[r.Intn(len(twitterWords))], r.Intn(100000)))),
		)
	}
	mentions := make([]jsonval.Value, r.Intn(3))
	for i := range mentions {
		uid := r.Int63n(2000000000)
		mentions[i] = jsonval.ObjectValue(
			m("screen_name", str(fmt.Sprintf("%s_%04d", twitterWords[r.Intn(len(twitterWords))], r.Intn(10000)))),
			m("id", num(uid)),
		)
	}
	return jsonval.ObjectValue(
		m("hashtags", jsonval.ArrayValue(tags...)),
		m("urls", jsonval.ArrayValue(urls...)),
		m("user_mentions", jsonval.ArrayValue(mentions...)),
	)
}

func twitterDelete(r *rand.Rand) jsonval.Value {
	id := 1000000000000 + r.Int63n(9000000000000)
	uid := 10000 + r.Int63n(2000000000)
	return jsonval.ObjectValue(
		m("delete", jsonval.ObjectValue(
			m("status", jsonval.ObjectValue(
				m("id", num(id)),
				m("id_str", str(fmt.Sprintf("%d", id))),
				m("user_id", num(uid)),
				m("user_id_str", str(fmt.Sprintf("%d", uid))),
			)),
			m("timestamp_ms", str(fmt.Sprintf("%d", 1630000000000+r.Int63n(1e10)))),
		)),
	)
}

func twitterLimit(r *rand.Rand) jsonval.Value {
	return jsonval.ObjectValue(
		m("limit", jsonval.ObjectValue(
			m("track", num(int64(r.Intn(100000)))),
			m("timestamp_ms", str(fmt.Sprintf("%d", 1630000000000+r.Int63n(1e10)))),
		)),
	)
}

func hexColor(r *rand.Rand) string {
	return fmt.Sprintf("%06X", r.Uint32()&0xFFFFFF)
}

func twitterText(r *rand.Rand) string {
	n := 3 + r.Intn(12)
	out := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, twitterWords[r.Intn(len(twitterWords))]...)
	}
	return string(out)
}

func twitterDate(r *rand.Rand) string {
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	days := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	return fmt.Sprintf("%s %s %02d %02d:%02d:%02d +0000 %d",
		days[r.Intn(7)], months[r.Intn(12)], 1+r.Intn(28),
		r.Intn(24), r.Intn(60), r.Intn(60), 2020+r.Intn(2))
}
