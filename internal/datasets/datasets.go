// Package datasets provides seeded synthetic generators for the three
// dataset families of the paper's evaluation (§VI): a heterogeneous,
// deeply nested Twitter-like stream; the shallow, sparse NoBench dataset of
// Chasseur et al.; and a flat fixed-schema Reddit-comments dataset.
//
// The paper uses a 109 GB Twitter crawl and a 30 GB Reddit dump; those are
// not redistributable, so these generators reproduce the structural
// properties the benchmark exploits — schema heterogeneity, nesting depth,
// attribute sparsity, string prefix groups, document-size skew — at
// configurable scale.
package datasets

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"

	"github.com/joda-explore/betze/internal/fsatomic"
	"github.com/joda-explore/betze/internal/jsonval"
)

// Source is a seeded document generator for one dataset family.
type Source struct {
	// Name is the dataset family name ("Twitter", "NoBench", "Reddit").
	Name string
	// next produces the i-th document using the source's random stream.
	next func(r *rand.Rand, i int) jsonval.Value
}

// Generate materialises n documents with the given seed.
func (s Source) Generate(n int, seed int64) []jsonval.Value {
	r := rand.New(rand.NewSource(seed))
	docs := make([]jsonval.Value, n)
	for i := range docs {
		docs[i] = s.next(r, i)
	}
	return docs
}

// WriteTo streams n documents as newline-delimited JSON.
func (s Source) WriteTo(w io.Writer, n int, seed int64) error {
	bw := bufio.NewWriterSize(w, 256*1024)
	r := rand.New(rand.NewSource(seed))
	var buf []byte
	for i := 0; i < n; i++ {
		buf = jsonval.AppendJSON(buf[:0], s.next(r, i))
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile streams n documents into a newline-delimited JSON file,
// published atomically — readers never observe a partially written dataset.
func (s Source) WriteFile(path string, n int, seed int64) error {
	f, err := fsatomic.Create(path)
	if err != nil {
		return fmt.Errorf("datasets: %w", err)
	}
	defer f.Close()
	if err := s.WriteTo(f, n, seed); err != nil {
		return fmt.Errorf("datasets: writing %s: %w", path, err)
	}
	if err := f.Commit(); err != nil {
		return fmt.Errorf("datasets: %w", err)
	}
	return nil
}

// m is shorthand for building object members.
func m(key string, v jsonval.Value) jsonval.Member { return jsonval.Member{Key: key, Value: v} }

func str(s string) jsonval.Value   { return jsonval.StringValue(s) }
func num(n int64) jsonval.Value    { return jsonval.IntValue(n) }
func flt(f float64) jsonval.Value  { return jsonval.FloatValue(f) }
func boolean(b bool) jsonval.Value { return jsonval.BoolValue(b) }
