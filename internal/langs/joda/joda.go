// Package joda translates BETZE queries into JODA syntax (LOAD … CHOOSE …
// AGG … STORE …). Importing the package registers the language under the
// short name "joda".
package joda

import (
	"fmt"
	"strings"

	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/langs"
	"github.com/joda-explore/betze/internal/query"
)

func init() {
	langs.Register(Language{})
}

// Language implements langs.Language for JODA.
type Language struct{}

// Name implements langs.Language.
func (Language) Name() string { return "JODA" }

// ShortName implements langs.Language.
func (Language) ShortName() string { return "joda" }

// Header implements langs.Language.
func (Language) Header() string { return "" }

// Comment implements langs.Language.
func (Language) Comment(comment string) string { return "# " + comment }

// QueryDelimiter implements langs.Language.
func (Language) QueryDelimiter() string { return ";" }

// Translate implements langs.Language.
func (Language) Translate(q *query.Query) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "LOAD %s", q.Base)
	if q.Filter != nil {
		fmt.Fprintf(&sb, " CHOOSE %s", predicate(q.Filter))
	}
	if q.Transform != nil {
		sb.WriteString(" AS " + transform(q.Transform))
	}
	if q.Agg != nil {
		sb.WriteString(" AGG ")
		field := strings.ToLower(q.Agg.Func.String())
		if q.Agg.Grouped {
			fmt.Fprintf(&sb, "GROUP %s('%s') AS %s BY '%s'",
				q.Agg.Func, ptr(q.Agg.Path), field, ptr(q.Agg.GroupBy))
		} else {
			fmt.Fprintf(&sb, "('/%s': %s('%s'))", field, q.Agg.Func, ptr(q.Agg.Path))
		}
	}
	if q.Store != "" {
		fmt.Fprintf(&sb, " STORE %s", q.Store)
	}
	return sb.String()
}

// transform renders the transform stage as a JODA AS projection: the
// document is kept (”), renamed attributes are copied and their sources
// dropped, removals drop, additions set constants.
func transform(t *query.Transform) string {
	parts := []string{"('': '')"}
	for _, op := range t.Ops {
		switch op.Kind {
		case query.TransformRename:
			target := op.Path.Parent().Child(op.NewName)
			parts = append(parts,
				fmt.Sprintf("('%s': '%s')", ptr(target), ptr(op.Path)),
				fmt.Sprintf("('%s': )", ptr(op.Path)))
		case query.TransformRemove:
			parts = append(parts, fmt.Sprintf("('%s': )", ptr(op.Path)))
		case query.TransformAdd:
			parts = append(parts, fmt.Sprintf("('%s': %s)", ptr(op.Path), op.Value))
		}
	}
	return strings.Join(parts, ", ")
}

// ptr renders a path as a JODA JSON pointer; the root is the empty pointer.
func ptr(p jsonval.Path) string {
	if p == jsonval.RootPath {
		return ""
	}
	return string(p)
}

func predicate(p query.Predicate) string {
	switch n := p.(type) {
	case query.And:
		return "(" + predicate(n.Left) + " && " + predicate(n.Right) + ")"
	case query.Or:
		return "(" + predicate(n.Left) + " || " + predicate(n.Right) + ")"
	case query.Exists:
		return fmt.Sprintf("EXISTS('%s')", ptr(n.Path))
	case query.IsString:
		return fmt.Sprintf("ISSTRING('%s')", ptr(n.Path))
	case query.IntEq:
		return fmt.Sprintf("'%s' == %d", ptr(n.Path), n.Value)
	case query.FloatCmp:
		return fmt.Sprintf("'%s' %s %s", ptr(n.Path), n.Op, formatFloat(n.Value))
	case query.StrEq:
		return fmt.Sprintf("'%s' == %s", ptr(n.Path), quote(n.Value))
	case query.HasPrefix:
		return fmt.Sprintf("STARTSWITH('%s', %s)", ptr(n.Path), quote(n.Prefix))
	case query.BoolEq:
		return fmt.Sprintf("'%s' == %t", ptr(n.Path), n.Value)
	case query.ArrSize:
		return fmt.Sprintf("SIZE('%s') %s %d", ptr(n.Path), n.Op, n.Value)
	case query.ObjSize:
		return fmt.Sprintf("MEMCOUNT('%s') %s %d", ptr(n.Path), n.Op, n.Value)
	default:
		return p.String()
	}
}

func quote(s string) string {
	return string(jsonval.AppendQuoted(nil, s))
}

func formatFloat(f float64) string {
	return string(jsonval.AppendJSON(nil, jsonval.FloatValue(f)))
}
