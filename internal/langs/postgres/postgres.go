// Package postgres translates BETZE queries into PostgreSQL SQL over a
// single-column JSONB table per dataset, following the paper's Listing 1
// (jsonb_path_exists filters, doc #> '{...}' projections). Importing the
// package registers the language under the short name "postgres".
package postgres

import (
	"fmt"
	"strings"

	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/langs"
	"github.com/joda-explore/betze/internal/query"
)

func init() {
	langs.Register(Language{})
}

// Language implements langs.Language for PostgreSQL.
type Language struct{}

// Name implements langs.Language.
func (Language) Name() string { return "PostgreSQL" }

// ShortName implements langs.Language.
func (Language) ShortName() string { return "postgres" }

// Header implements langs.Language.
func (Language) Header() string { return "" }

// Comment implements langs.Language.
func (Language) Comment(comment string) string { return "-- " + comment }

// QueryDelimiter implements langs.Language.
func (Language) QueryDelimiter() string { return ";" }

// Translate implements langs.Language. Each dataset is a table with a
// single JSONB column named doc.
func (Language) Translate(q *query.Query) string {
	var sb strings.Builder
	if q.Store != "" {
		fmt.Fprintf(&sb, "CREATE TABLE %s AS ", q.Store)
	}
	source := q.Base
	if q.Transform != nil {
		// The transform wraps the document expression; aggregations read
		// from the transformed subquery so their paths see the new shape.
		inner := fmt.Sprintf("SELECT %s AS doc FROM %s", transformExpr(q.Transform), q.Base)
		if q.Filter != nil {
			inner += " WHERE " + where(q.Filter)
		}
		if q.Agg == nil {
			sb.WriteString(inner)
			return sb.String()
		}
		source = "(" + inner + ") t"
		selects, groupBy := aggSelect(q.Agg)
		fmt.Fprintf(&sb, "SELECT %s FROM %s", selects, source)
		if groupBy != "" {
			fmt.Fprintf(&sb, " GROUP BY %s", groupBy)
		}
		return sb.String()
	}
	if q.Agg != nil {
		selects, groupBy := aggSelect(q.Agg)
		fmt.Fprintf(&sb, "SELECT %s FROM %s", selects, q.Base)
		if q.Filter != nil {
			fmt.Fprintf(&sb, " WHERE %s", where(q.Filter))
		}
		if groupBy != "" {
			fmt.Fprintf(&sb, " GROUP BY %s", groupBy)
		}
	} else {
		fmt.Fprintf(&sb, "SELECT doc FROM %s", q.Base)
		if q.Filter != nil {
			fmt.Fprintf(&sb, " WHERE %s", where(q.Filter))
		}
	}
	return sb.String()
}

// transformExpr nests jsonb_set / #- operations around the doc column.
func transformExpr(t *query.Transform) string {
	expr := "doc"
	for _, op := range t.Ops {
		switch op.Kind {
		case query.TransformRename:
			target := op.Path.Parent().Child(op.NewName)
			expr = fmt.Sprintf("jsonb_set(%s #- %s, %s, %s #> %s)",
				expr, textPathArray(op.Path), textPathArray(target), expr, textPathArray(op.Path))
		case query.TransformRemove:
			expr = fmt.Sprintf("(%s #- %s)", expr, textPathArray(op.Path))
		case query.TransformAdd:
			lit := strings.ReplaceAll(string(jsonval.AppendJSON(nil, op.Value)), "'", "''")
			expr = fmt.Sprintf("jsonb_set(%s, %s, '%s'::jsonb)", expr, textPathArray(op.Path), lit)
		}
	}
	return expr
}

// textPathArray renders a path as a text-array literal for the #> operator,
// e.g. '{user,time_zone}'.
func textPathArray(p jsonval.Path) string {
	segs := p.Segments()
	for i, s := range segs {
		if strings.ContainsAny(s, `,{}" \'`) {
			escaped := strings.ReplaceAll(s, `\`, `\\`)
			escaped = strings.ReplaceAll(escaped, `"`, `\"`)
			escaped = strings.ReplaceAll(escaped, `'`, `''`)
			segs[i] = `"` + escaped + `"`
		}
	}
	return "'{" + strings.Join(segs, ",") + "}'"
}

// extract renders the JSONB extraction of a path from the doc column.
func extract(p jsonval.Path) string {
	if p == jsonval.RootPath {
		return "doc"
	}
	return "doc #> " + textPathArray(p)
}

// jsonPath renders a path in SQL/JSON path syntax ($.user.name), quoting
// member names that are not plain identifiers.
func jsonPath(p jsonval.Path) string {
	var sb strings.Builder
	sb.WriteByte('$')
	for _, seg := range p.Segments() {
		if isIdent(seg) {
			sb.WriteByte('.')
			sb.WriteString(seg)
		} else {
			sb.WriteString(".")
			sb.Write(jsonval.AppendQuoted(nil, seg))
		}
	}
	return sb.String()
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// pathExists renders jsonb_path_exists with a predicate on @, the paper's
// filter idiom.
func pathExists(p jsonval.Path, cond string) string {
	return fmt.Sprintf("jsonb_path_exists(doc, '%s ? (%s)')", jsonPath(p), cond)
}

func where(p query.Predicate) string {
	switch n := p.(type) {
	case query.And:
		return "(" + where(n.Left) + " AND " + where(n.Right) + ")"
	case query.Or:
		return "(" + where(n.Left) + " OR " + where(n.Right) + ")"
	case query.Exists:
		// #> yields SQL NULL only when the path is absent; a JSON null
		// value yields 'null'::jsonb, so existence is IS NOT NULL.
		return extract(n.Path) + " IS NOT NULL"
	case query.IsString:
		return fmt.Sprintf("jsonb_typeof(%s) = 'string'", extract(n.Path))
	case query.IntEq:
		return pathExists(n.Path, fmt.Sprintf("@ == %d", n.Value))
	case query.FloatCmp:
		val := string(jsonval.AppendJSON(nil, jsonval.FloatValue(n.Value)))
		return pathExists(n.Path, fmt.Sprintf("@ %s %s", n.Op, val))
	case query.StrEq:
		return pathExists(n.Path, "@ == "+sqlJSONString(n.Value))
	case query.HasPrefix:
		return pathExists(n.Path, "@ starts with "+sqlJSONString(n.Prefix))
	case query.BoolEq:
		return pathExists(n.Path, fmt.Sprintf("@ == %t", n.Value))
	case query.ArrSize:
		return fmt.Sprintf("(jsonb_typeof(%s) = 'array' AND jsonb_array_length(%s) %s %d)",
			extract(n.Path), extract(n.Path), sqlOp(n.Op), n.Value)
	case query.ObjSize:
		return fmt.Sprintf("(jsonb_typeof(%s) = 'object' AND (SELECT count(*) FROM jsonb_object_keys(%s)) %s %d)",
			extract(n.Path), extract(n.Path), sqlOp(n.Op), n.Value)
	default:
		return "TRUE"
	}
}

// sqlJSONString renders a Go string as a JSON string literal embedded in a
// single-quoted SQL jsonpath literal: JSON-escape first, then double any
// single quotes for SQL.
func sqlJSONString(s string) string {
	j := string(jsonval.AppendQuoted(nil, s))
	return strings.ReplaceAll(j, "'", "''")
}

func sqlOp(op query.CmpOp) string {
	if op == query.Eq {
		return "="
	}
	return op.String()
}

func aggSelect(agg *query.Aggregation) (selects, groupBy string) {
	var fn string
	switch agg.Func {
	case query.Count:
		if agg.Path == jsonval.RootPath {
			fn = "COUNT(*)"
		} else {
			// COUNT over the extraction counts only documents where the
			// attribute exists (SQL NULLs are skipped).
			fn = fmt.Sprintf("COUNT(%s)", extract(agg.Path))
		}
		fn += " AS count"
	case query.Sum:
		fn = fmt.Sprintf("SUM(CASE WHEN jsonb_typeof(%s) = 'number' THEN (%s)::text::numeric END) AS sum",
			extract(agg.Path), extract(agg.Path))
	}
	if !agg.Grouped {
		return fn, ""
	}
	g := extract(agg.GroupBy)
	return fmt.Sprintf("%s AS group, %s", g, fn), g
}
