// Package all registers every built-in BETZE language translator. Import it
// for side effects:
//
//	import _ "github.com/joda-explore/betze/internal/langs/all"
package all

import (
	_ "github.com/joda-explore/betze/internal/langs/joda"
	_ "github.com/joda-explore/betze/internal/langs/jq"
	_ "github.com/joda-explore/betze/internal/langs/mongodb"
	_ "github.com/joda-explore/betze/internal/langs/postgres"
)
