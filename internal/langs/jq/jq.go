// Package jq translates BETZE queries into jq command lines, mirroring the
// two-stage pipelines of the paper (a filter pass and, for aggregations, a
// slurped reduce pass). Importing the package registers the language under
// the short name "jq".
package jq

import (
	"fmt"
	"strings"

	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/langs"
	"github.com/joda-explore/betze/internal/query"
)

func init() {
	langs.Register(Language{})
}

// Language implements langs.Language for jq.
type Language struct{}

// Name implements langs.Language.
func (Language) Name() string { return "jq" }

// ShortName implements langs.Language.
func (Language) ShortName() string { return "jq" }

// Header implements langs.Language.
func (Language) Header() string { return "#!/bin/sh" }

// Comment implements langs.Language.
func (Language) Comment(comment string) string { return "# " + comment }

// QueryDelimiter implements langs.Language.
func (Language) QueryDelimiter() string { return "" }

// Translate implements langs.Language. The base dataset is addressed as
// <base>.json in the working directory; a stored result becomes a new file,
// which is how jq materialises datasets.
func (Language) Translate(q *query.Query) string {
	filter := "inputs"
	if q.Filter != nil {
		filter = "inputs | select(" + expr(q.Filter) + ")"
	}
	if q.Transform != nil {
		filter += transformPipeline(q.Transform)
	}
	cmd := fmt.Sprintf("jq -c -n %s %s.json", shellQuote(filter), q.Base)
	if q.Agg != nil {
		cmd += " | jq -s -c " + shellQuote(aggExpr(q.Agg))
	}
	if q.Store != "" {
		cmd += fmt.Sprintf(" > %s.json", q.Store)
	}
	return cmd
}

// transformPipeline renders the transform as jq pipeline steps.
func transformPipeline(t *query.Transform) string {
	var sb strings.Builder
	for _, op := range t.Ops {
		switch op.Kind {
		case query.TransformRename:
			target := op.Path.Parent().Child(op.NewName)
			fmt.Fprintf(&sb, " | (if %s then setpath(%s; getpath(%s)) | delpaths([%s]) else . end)",
				existsExpr(op.Path), pathArray(target), pathArray(op.Path), pathArray(op.Path))
		case query.TransformRemove:
			fmt.Fprintf(&sb, " | delpaths([%s])", pathArray(op.Path))
		case query.TransformAdd:
			fmt.Fprintf(&sb, " | setpath(%s; %s)", pathArray(op.Path), op.Value)
		}
	}
	return sb.String()
}

// pathArray renders a path as a jq string array, e.g. ["user","name"].
func pathArray(p jsonval.Path) string {
	segs := p.Segments()
	quoted := make([]string, len(segs))
	for i, s := range segs {
		quoted[i] = string(jsonval.AppendQuoted(nil, s))
	}
	return "[" + strings.Join(quoted, ",") + "]"
}

// get renders a safe path access that yields null when any ancestor is
// missing or not an object.
func get(p jsonval.Path) string {
	if p == jsonval.RootPath {
		return "."
	}
	return fmt.Sprintf("(try getpath(%s) catch null)", pathArray(p))
}

// existsExpr distinguishes a present null value from an absent attribute,
// which getpath alone cannot: it checks has() along the chain.
func existsExpr(p jsonval.Path) string {
	if p == jsonval.RootPath {
		return "true"
	}
	parent := p.Parent()
	leaf := string(jsonval.AppendQuoted(nil, p.Leaf()))
	parentGet := get(parent)
	return fmt.Sprintf("(%s | (type == \"object\" and has(%s)))", parentGet, leaf)
}

func expr(p query.Predicate) string {
	switch n := p.(type) {
	case query.And:
		return "(" + expr(n.Left) + " and " + expr(n.Right) + ")"
	case query.Or:
		return "(" + expr(n.Left) + " or " + expr(n.Right) + ")"
	case query.Exists:
		return existsExpr(n.Path)
	case query.IsString:
		return fmt.Sprintf("(%s | type == \"string\")", get(n.Path))
	case query.IntEq:
		return fmt.Sprintf("(%s == %d)", get(n.Path), n.Value)
	case query.FloatCmp:
		val := string(jsonval.AppendJSON(nil, jsonval.FloatValue(n.Value)))
		return fmt.Sprintf("(%s | (type == \"number\" and . %s %s))", get(n.Path), jqOp(n.Op), val)
	case query.StrEq:
		return fmt.Sprintf("(%s == %s)", get(n.Path), string(jsonval.AppendQuoted(nil, n.Value)))
	case query.HasPrefix:
		return fmt.Sprintf("(%s | (type == \"string\" and startswith(%s)))", get(n.Path), string(jsonval.AppendQuoted(nil, n.Prefix)))
	case query.BoolEq:
		return fmt.Sprintf("(%s == %t)", get(n.Path), n.Value)
	case query.ArrSize:
		return fmt.Sprintf("(%s | (type == \"array\" and (length %s %d)))", get(n.Path), jqOp(n.Op), n.Value)
	case query.ObjSize:
		return fmt.Sprintf("(%s | (type == \"object\" and (length %s %d)))", get(n.Path), jqOp(n.Op), n.Value)
	default:
		return "true"
	}
}

func aggExpr(agg *query.Aggregation) string {
	var acc func(sel string) string
	switch agg.Func {
	case query.Count:
		if agg.Path != jsonval.RootPath {
			// COUNT(<ptr>) counts the documents that have the attribute.
			acc = func(sel string) string {
				return fmt.Sprintf("([%s[] | select(%s)] | length)", sel, existsExpr(agg.Path))
			}
		} else {
			acc = func(sel string) string { return fmt.Sprintf("(%s | length)", sel) }
		}
		if !agg.Grouped {
			return fmt.Sprintf("{count: %s}", acc("."))
		}
	case query.Sum:
		acc = func(sel string) string {
			return fmt.Sprintf("([%s[] | %s | numbers] | add // 0)", sel, get(agg.Path))
		}
		if !agg.Grouped {
			return fmt.Sprintf("{sum: %s}", acc("."))
		}
	}
	groupGet := get(agg.GroupBy)
	field := strings.ToLower(agg.Func.String())
	return fmt.Sprintf("group_by(%s) | map({group: (.[0] | %s), %s: %s})",
		groupGet, groupGet, field, acc("."))
}

func jqOp(op query.CmpOp) string {
	return op.String() // jq shares <, <=, >, >=, ==
}

// shellQuote wraps a jq program in single quotes for the shell, escaping
// embedded single quotes.
func shellQuote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}
