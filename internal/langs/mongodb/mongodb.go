// Package mongodb translates BETZE queries into MongoDB shell syntax
// (db.<coll>.aggregate([...])). Importing the package registers the language
// under the short name "mongodb".
package mongodb

import (
	"fmt"
	"strings"

	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/langs"
	"github.com/joda-explore/betze/internal/query"
)

func init() {
	langs.Register(Language{})
}

// Language implements langs.Language for MongoDB.
type Language struct{}

// Name implements langs.Language.
func (Language) Name() string { return "MongoDB" }

// ShortName implements langs.Language.
func (Language) ShortName() string { return "mongodb" }

// Header implements langs.Language.
func (Language) Header() string { return "" }

// Comment implements langs.Language.
func (Language) Comment(comment string) string { return "// " + comment }

// QueryDelimiter implements langs.Language.
func (Language) QueryDelimiter() string { return ";" }

// Translate implements langs.Language.
func (Language) Translate(q *query.Query) string {
	var stages []string
	if q.Filter != nil {
		stages = append(stages, fmt.Sprintf("{ $match: %s }", match(q.Filter)))
	}
	if q.Transform != nil {
		stages = append(stages, transformStages(q.Transform)...)
	}
	if q.Agg != nil {
		stages = append(stages, groupStage(q.Agg))
	}
	if q.Store != "" {
		stages = append(stages, fmt.Sprintf("{ $out: %s }", quote(q.Store)))
	}
	return fmt.Sprintf("db.%s.aggregate([%s])", q.Base, strings.Join(stages, ", "))
}

// transformStages renders the transform as $set/$unset pipeline stages;
// renames copy then unset, as the aggregation pipeline requires.
func transformStages(t *query.Transform) []string {
	var stages []string
	for _, op := range t.Ops {
		switch op.Kind {
		case query.TransformRename:
			target := op.Path.Parent().Child(op.NewName)
			stages = append(stages,
				fmt.Sprintf("{ $set: { %s: %s } }", quote(dotted(target)), fieldRef(op.Path)),
				fmt.Sprintf("{ $unset: [%s] }", quote(dotted(op.Path))))
		case query.TransformRemove:
			stages = append(stages, fmt.Sprintf("{ $unset: [%s] }", quote(dotted(op.Path))))
		case query.TransformAdd:
			stages = append(stages, fmt.Sprintf("{ $set: { %s: %s } }",
				quote(dotted(op.Path)), string(jsonval.AppendJSON(nil, op.Value))))
		}
	}
	return stages
}

// dotted renders a path in MongoDB's dotted field notation.
func dotted(p jsonval.Path) string {
	return strings.Join(p.Segments(), ".")
}

// fieldRef renders a path as an aggregation expression field reference.
func fieldRef(p jsonval.Path) string {
	if p == jsonval.RootPath {
		return `"$$ROOT"`
	}
	return quote("$" + dotted(p))
}

func quote(s string) string {
	return string(jsonval.AppendQuoted(nil, s))
}

func match(p query.Predicate) string {
	switch n := p.(type) {
	case query.And:
		return fmt.Sprintf("{ $and: [%s, %s] }", match(n.Left), match(n.Right))
	case query.Or:
		return fmt.Sprintf("{ $or: [%s, %s] }", match(n.Left), match(n.Right))
	case query.Exists:
		if n.Path == jsonval.RootPath {
			return "{}"
		}
		return fmt.Sprintf("{ %s: { $exists: true } }", quote(dotted(n.Path)))
	case query.IsString:
		if n.Path == jsonval.RootPath {
			return fmt.Sprintf(`{ $expr: { $eq: [{ $type: "$$ROOT" }, "string"] } }`)
		}
		return fmt.Sprintf(`{ %s: { $type: "string" } }`, quote(dotted(n.Path)))
	case query.IntEq:
		return fmt.Sprintf("{ %s: %d }", quote(dotted(n.Path)), n.Value)
	case query.FloatCmp:
		val := string(jsonval.AppendJSON(nil, jsonval.FloatValue(n.Value)))
		if n.Op == query.Eq {
			return fmt.Sprintf("{ %s: %s }", quote(dotted(n.Path)), val)
		}
		return fmt.Sprintf("{ %s: { %s: %s } }", quote(dotted(n.Path)), mongoOp(n.Op), val)
	case query.StrEq:
		return fmt.Sprintf("{ %s: %s }", quote(dotted(n.Path)), quote(n.Value))
	case query.HasPrefix:
		return fmt.Sprintf("{ %s: { $regex: %s } }", quote(dotted(n.Path)), quote("^"+regexEscape(n.Prefix)))
	case query.BoolEq:
		return fmt.Sprintf("{ %s: %t }", quote(dotted(n.Path)), n.Value)
	case query.ArrSize:
		if n.Op == query.Eq {
			return fmt.Sprintf("{ %s: { $size: %d } }", quote(dotted(n.Path)), n.Value)
		}
		return fmt.Sprintf(`{ $and: [{ %s: { $type: "array" } }, { $expr: { %s: [{ $size: %s }, %d] } }] }`,
			quote(dotted(n.Path)), exprOp(n.Op), fieldRef(n.Path), n.Value)
	case query.ObjSize:
		return fmt.Sprintf(`{ $and: [%s, { $expr: { %s: [{ $size: { $objectToArray: %s } }, %d] } }] }`,
			typeCheck(n.Path, "object"), exprOp(n.Op), fieldRef(n.Path), n.Value)
	default:
		return "{}"
	}
}

func typeCheck(p jsonval.Path, typ string) string {
	if p == jsonval.RootPath {
		return fmt.Sprintf(`{ $expr: { $eq: [{ $type: "$$ROOT" }, %s] } }`, quote(typ))
	}
	return fmt.Sprintf("{ %s: { $type: %s } }", quote(dotted(p)), quote(typ))
}

func groupStage(agg *query.Aggregation) string {
	id := "null"
	if agg.Grouped {
		id = fieldRef(agg.GroupBy)
	}
	var acc string
	switch agg.Func {
	case query.Count:
		if agg.Path == jsonval.RootPath {
			acc = "count: { $sum: 1 }"
		} else {
			// COUNT(<ptr>) counts the documents that have the attribute.
			acc = fmt.Sprintf(`count: { $sum: { $cond: [{ $ne: [{ $type: %s }, "missing"] }, 1, 0] } }`, fieldRef(agg.Path))
		}
	case query.Sum:
		acc = fmt.Sprintf("sum: { $sum: %s }", fieldRef(agg.Path))
	}
	return fmt.Sprintf("{ $group: { _id: %s, %s } }", id, acc)
}

func mongoOp(op query.CmpOp) string {
	switch op {
	case query.Lt:
		return "$lt"
	case query.Le:
		return "$lte"
	case query.Gt:
		return "$gt"
	case query.Ge:
		return "$gte"
	default:
		return "$eq"
	}
}

func exprOp(op query.CmpOp) string {
	return mongoOp(op) // aggregation expressions use the same operator names
}

func regexEscape(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if strings.ContainsRune(`\.+*?()|[]{}^$`, r) {
			sb.WriteByte('\\')
		}
		sb.WriteRune(r)
	}
	return sb.String()
}
