// Package langs defines the Language interface of the paper (Listing 3) —
// the extension point through which BETZE emits system-specific query files —
// and a registry of implementations.
//
// Implementations live in subpackages (joda, mongodb, jq, postgres) and
// register themselves in init, following the database/sql driver pattern:
// importing a language package makes it available by short name. Package
// internal/langs/all imports every built-in language for convenience.
package langs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/joda-explore/betze/internal/query"
)

// Language translates BETZE's internal query representation into the query
// syntax of one system under test. Implementations must be stateless or
// safe for concurrent use.
type Language interface {
	// Name is the display name of the language ("MongoDB").
	Name() string
	// ShortName is the unique identifier used in file names and the CLI
	// ("mongodb").
	ShortName() string
	// Translate renders a query in the language.
	Translate(q *query.Query) string
	// Comment wraps a line in the system-specific comment syntax.
	Comment(comment string) string
	// Header returns the preface of a generated query file ("" if none).
	Header() string
	// QueryDelimiter is the symbol terminating each query.
	QueryDelimiter() string
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Language)
)

// Register makes a language available by its short name. It panics when the
// short name is empty or already taken, mirroring database/sql.Register.
func Register(l Language) {
	mu.Lock()
	defer mu.Unlock()
	short := l.ShortName()
	if short == "" {
		panic("langs: Register with empty short name")
	}
	if _, dup := registry[short]; dup {
		panic("langs: Register called twice for " + short)
	}
	registry[short] = l
}

// ByShortName looks a language up, reporting the registered alternatives on
// a miss.
func ByShortName(short string) (Language, error) {
	mu.RLock()
	defer mu.RUnlock()
	if l, ok := registry[short]; ok {
		return l, nil
	}
	return nil, fmt.Errorf("langs: unknown language %q (registered: %s)", short, strings.Join(shortNamesLocked(), ", "))
}

// All returns every registered language, sorted by short name.
func All() []Language {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Language, 0, len(registry))
	for _, short := range shortNamesLocked() {
		out = append(out, registry[short])
	}
	return out
}

// ShortNames returns the registered short names, sorted.
func ShortNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	return shortNamesLocked()
}

func shortNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for short := range registry {
		names = append(names, short)
	}
	sort.Strings(names)
	return names
}

// Script renders a full session — a sequence of queries — as one executable
// file in the given language: header, then each query preceded by a comment
// naming it and terminated by the language's delimiter.
func Script(l Language, queries []*query.Query) string {
	var sb strings.Builder
	if h := l.Header(); h != "" {
		sb.WriteString(h)
		if !strings.HasSuffix(h, "\n") {
			sb.WriteByte('\n')
		}
	}
	for _, q := range queries {
		label := q.ID
		if label == "" {
			label = q.String()
		} else {
			label = fmt.Sprintf("%s: %s", q.ID, q)
		}
		sb.WriteString(l.Comment(label))
		sb.WriteByte('\n')
		sb.WriteString(l.Translate(q))
		sb.WriteString(l.QueryDelimiter())
		sb.WriteString("\n\n")
	}
	return sb.String()
}
