package langs_test

import (
	"strings"
	"testing"

	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/langs"
	_ "github.com/joda-explore/betze/internal/langs/all"
	"github.com/joda-explore/betze/internal/query"
)

// listing1Query is the example of Listing 1: a Boolean filter on
// /retweeted_status/user/verified with a count grouped by /user/time_zone.
func listing1Query() *query.Query {
	return &query.Query{
		ID:     "q1",
		Base:   "Twitter",
		Filter: query.BoolEq{Path: "/retweeted_status/user/verified", Value: false},
		Agg: &query.Aggregation{
			Func:    query.Count,
			Path:    jsonval.RootPath,
			Grouped: true,
			GroupBy: "/user/time_zone",
		},
	}
}

func TestRegistryHasAllFourSystems(t *testing.T) {
	want := []string{"joda", "jq", "mongodb", "postgres"}
	got := langs.ShortNames()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("registered languages = %v, want %v", got, want)
	}
	for _, short := range want {
		l, err := langs.ByShortName(short)
		if err != nil {
			t.Fatalf("ByShortName(%q): %v", short, err)
		}
		if l.ShortName() != short {
			t.Errorf("ShortName mismatch: %q vs %q", l.ShortName(), short)
		}
		if l.Name() == "" {
			t.Errorf("%q has empty display name", short)
		}
	}
	if len(langs.All()) != 4 {
		t.Errorf("All() = %d languages", len(langs.All()))
	}
}

func TestByShortNameUnknown(t *testing.T) {
	_, err := langs.ByShortName("oracle")
	if err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown language error = %v", err)
	}
}

func TestListing1Translations(t *testing.T) {
	q := listing1Query()
	want := map[string][]string{
		"joda": {
			"LOAD Twitter",
			"CHOOSE '/retweeted_status/user/verified' == false",
			"AGG GROUP COUNT('') AS count BY '/user/time_zone'",
		},
		"mongodb": {
			"db.Twitter.aggregate([",
			`{ $match: { "retweeted_status.user.verified": false } }`,
			`{ $group: { _id: "$user.time_zone", count: { $sum: 1 } } }`,
		},
		"jq": {
			"jq -c -n",
			"getpath([\"retweeted_status\",\"user\",\"verified\"])",
			"== false",
			"Twitter.json",
			"jq -s -c",
			"group_by(",
		},
		"postgres": {
			"SELECT doc #> '{user,time_zone}' AS group, COUNT(*) AS count FROM Twitter",
			"jsonb_path_exists(doc, '$.retweeted_status.user.verified ? (@ == false)')",
			"GROUP BY doc #> '{user,time_zone}'",
		},
	}
	for short, fragments := range want {
		l, err := langs.ByShortName(short)
		if err != nil {
			t.Fatal(err)
		}
		got := l.Translate(q)
		for _, frag := range fragments {
			if !strings.Contains(got, frag) {
				t.Errorf("%s translation missing %q:\n%s", short, frag, got)
			}
		}
	}
}

func TestTranslateEveryLeafPredicateEveryLanguage(t *testing.T) {
	preds := []query.Predicate{
		query.Exists{Path: "/a/b"},
		query.IsString{Path: "/a"},
		query.IntEq{Path: "/n", Value: 42},
		query.FloatCmp{Path: "/f", Op: query.Ge, Value: 1.5},
		query.StrEq{Path: "/s", Value: "x\"y"},
		query.HasPrefix{Path: "/s", Prefix: "pre"},
		query.BoolEq{Path: "/b", Value: true},
		query.ArrSize{Path: "/arr", Op: query.Gt, Value: 2},
		query.ObjSize{Path: "/obj", Op: query.Le, Value: 5},
		query.And{Left: query.Exists{Path: "/a"}, Right: query.BoolEq{Path: "/b", Value: false}},
		query.Or{Left: query.IsString{Path: "/a"}, Right: query.IntEq{Path: "/n", Value: 1}},
	}
	for _, l := range langs.All() {
		for _, p := range preds {
			q := &query.Query{Base: "ds", Filter: p}
			got := l.Translate(q)
			if got == "" {
				t.Errorf("%s produced empty translation for %s", l.ShortName(), p)
			}
			if !strings.Contains(got, "ds") {
				t.Errorf("%s translation does not reference base dataset: %s", l.ShortName(), got)
			}
		}
	}
}

func TestTranslateAggregationVariants(t *testing.T) {
	aggs := []*query.Aggregation{
		{Func: query.Count, Path: jsonval.RootPath},
		{Func: query.Count, Path: "/x"},
		{Func: query.Sum, Path: "/x"},
		{Func: query.Count, Path: jsonval.RootPath, Grouped: true, GroupBy: "/g"},
		{Func: query.Sum, Path: "/x", Grouped: true, GroupBy: "/g"},
	}
	for _, l := range langs.All() {
		for _, a := range aggs {
			q := &query.Query{Base: "ds", Agg: a}
			if got := l.Translate(q); got == "" {
				t.Errorf("%s: empty translation for %s", l.ShortName(), a)
			}
		}
	}
}

func TestTranslateStore(t *testing.T) {
	q := &query.Query{Base: "ds", Store: "derived", Filter: query.Exists{Path: "/a"}}
	wantFragment := map[string]string{
		"joda":     "STORE derived",
		"mongodb":  `$out: "derived"`,
		"jq":       "> derived.json",
		"postgres": "CREATE TABLE derived AS",
	}
	for short, frag := range wantFragment {
		l, _ := langs.ByShortName(short)
		if got := l.Translate(q); !strings.Contains(got, frag) {
			t.Errorf("%s store translation missing %q:\n%s", short, frag, got)
		}
	}
}

func TestCommentSyntax(t *testing.T) {
	want := map[string]string{
		"joda":     "# hello",
		"mongodb":  "// hello",
		"jq":       "# hello",
		"postgres": "-- hello",
	}
	for short, w := range want {
		l, _ := langs.ByShortName(short)
		if got := l.Comment("hello"); got != w {
			t.Errorf("%s comment = %q, want %q", short, got, w)
		}
	}
}

func TestScript(t *testing.T) {
	l, _ := langs.ByShortName("postgres")
	queries := []*query.Query{
		{ID: "q1", Base: "ds", Filter: query.Exists{Path: "/a"}},
		{ID: "q2", Base: "ds", Filter: query.Exists{Path: "/b"}},
	}
	script := langs.Script(l, queries)
	if strings.Count(script, ";") != 2 {
		t.Errorf("script does not terminate both queries:\n%s", script)
	}
	if !strings.Contains(script, "-- q1:") || !strings.Contains(script, "-- q2:") {
		t.Errorf("script missing query comments:\n%s", script)
	}
	jql, _ := langs.ByShortName("jq")
	jqScript := langs.Script(jql, queries)
	if !strings.HasPrefix(jqScript, "#!/bin/sh\n") {
		t.Errorf("jq script missing shebang header:\n%s", jqScript)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate Register did not panic")
		}
	}()
	l, _ := langs.ByShortName("joda")
	langs.Register(l)
}

func TestPostgresQuotesAwkwardSegments(t *testing.T) {
	l, _ := langs.ByShortName("postgres")
	q := &query.Query{Base: "ds", Filter: query.IsString{Path: jsonval.ParsePath("/weird key/x")}}
	got := l.Translate(q)
	if !strings.Contains(got, `doc #> '{"weird key",x}'`) {
		t.Errorf("awkward segment not quoted: %s", got)
	}
}

func TestMongoRegexPrefixEscaped(t *testing.T) {
	l, _ := langs.ByShortName("mongodb")
	q := &query.Query{Base: "ds", Filter: query.HasPrefix{Path: "/s", Prefix: "a.b*"}}
	got := l.Translate(q)
	if !strings.Contains(got, `^a\\.b\\*`) && !strings.Contains(got, `^a\.b\*`) {
		t.Errorf("regex metacharacters not escaped: %s", got)
	}
}

func TestJqShellQuoting(t *testing.T) {
	l, _ := langs.ByShortName("jq")
	q := &query.Query{Base: "ds", Filter: query.StrEq{Path: "/s", Value: "it's"}}
	got := l.Translate(q)
	if !strings.Contains(got, `'\''`) {
		t.Errorf("single quote not shell-escaped: %s", got)
	}
}

func TestTransformTranslations(t *testing.T) {
	q := &query.Query{
		ID:   "q1",
		Base: "ds",
		Transform: &query.Transform{Ops: []query.TransformOp{
			{Kind: query.TransformRename, Path: "/user/name", NewName: "alias"},
			{Kind: query.TransformRemove, Path: "/junk"},
			{Kind: query.TransformAdd, Path: "/tag", Value: jsonval.IntValue(7)},
		}},
	}
	want := map[string][]string{
		"joda": {
			"AS", "('/user/alias': '/user/name')", "('/user/name': )", "('/junk': )", "('/tag': 7)",
		},
		"mongodb": {
			`{ $set: { "user.alias": "$user.name" } }`, `{ $unset: ["user.name"] }`,
			`{ $unset: ["junk"] }`, `{ $set: { "tag": 7 } }`,
		},
		"jq": {
			`setpath(["user","alias"]; getpath(["user","name"]))`, `delpaths([["user","name"]])`,
			`delpaths([["junk"]])`, `setpath(["tag"]; 7)`,
		},
		"postgres": {
			`jsonb_set(doc #- '{user,name}', '{user,alias}', doc #> '{user,name}')`,
			`#- '{junk}'`, `'{tag}', '7'::jsonb`,
		},
	}
	for short, fragments := range want {
		l, err := langs.ByShortName(short)
		if err != nil {
			t.Fatal(err)
		}
		got := l.Translate(q)
		for _, frag := range fragments {
			if !strings.Contains(got, frag) {
				t.Errorf("%s transform translation missing %q:\n%s", short, frag, got)
			}
		}
	}
	// Transform plus aggregation must still translate everywhere.
	q.Agg = &query.Aggregation{Func: query.Count, Path: jsonval.RootPath, Grouped: true, GroupBy: "/tag"}
	for _, l := range langs.All() {
		if got := l.Translate(q); got == "" {
			t.Errorf("%s: empty transform+agg translation", l.ShortName())
		}
	}
}
