// Package fsatomic publishes output artifacts atomically: content is
// staged in a hidden temporary file in the destination directory, fsync'd,
// and renamed over the final path. A crash at any point leaves either the
// previous artifact or no artifact — never a torn one. Every result file
// this repository ships (exports, session files, datasets, metrics
// snapshots, translated scripts) goes through this package; the atomicwrite
// analyzer in internal/lint enforces it.
//
// Append streams whose partial content is valuable after a crash — trace
// logs, the runlog write-ahead journal — are the deliberate exception:
// rename-on-close would lose exactly the bytes a crash investigation needs.
package fsatomic

import (
	"fmt"
	"os"
	"path/filepath"
)

// File stages writes for one destination path. Write into it, then either
// Commit (fsync + atomic rename into place) or Close (discard the staged
// content). Close after Commit is a no-op, so `defer f.Close()` composes
// with an explicit Commit on the success path.
type File struct {
	f         *os.File
	path      string // final destination
	tmp       string // staging file, same directory
	perm      os.FileMode
	committed bool
	closed    bool
}

// Create stages a new artifact for path with default permissions 0o644.
func Create(path string) (*File, error) {
	return CreateMode(path, 0o644)
}

// CreateMode stages a new artifact for path with the given final mode.
func CreateMode(path string, perm os.FileMode) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("fsatomic: staging %s: %w", path, err)
	}
	return &File{f: tmp, path: path, tmp: tmp.Name(), perm: perm}, nil
}

// Write appends to the staged content.
func (w *File) Write(p []byte) (int, error) {
	return w.f.Write(p)
}

// Commit durably publishes the staged content under the destination path:
// fsync the staging file, fix its mode, rename it into place, and fsync the
// directory so the rename itself survives a crash.
func (w *File) Commit() error {
	if w.committed {
		return nil
	}
	if w.closed {
		return fmt.Errorf("fsatomic: commit of %s after close", w.path)
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return fmt.Errorf("fsatomic: syncing %s: %w", w.path, err)
	}
	if err := w.f.Chmod(w.perm); err != nil {
		w.abort()
		return fmt.Errorf("fsatomic: chmod %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		w.closed = true
		os.Remove(w.tmp)
		return fmt.Errorf("fsatomic: closing staged %s: %w", w.path, err)
	}
	w.closed = true
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("fsatomic: publishing %s: %w", w.path, err)
	}
	w.committed = true
	return syncDir(filepath.Dir(w.path))
}

// Close discards the staged content unless Commit already published it.
func (w *File) Close() error {
	if w.committed || w.closed {
		return nil
	}
	w.abort()
	return nil
}

func (w *File) abort() {
	w.f.Close()
	w.closed = true
	os.Remove(w.tmp)
}

// WriteFile atomically replaces path with data, the os.WriteFile of this
// package.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := CreateMode(path, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("fsatomic: writing %s: %w", path, err)
	}
	return f.Commit()
}

// SyncDir fsyncs a directory, making recent creates/renames inside it
// durable. Errors from platforms that refuse directory fsync are ignored —
// the rename itself is still atomic, only its durability window widens.
func SyncDir(dir string) error { return syncDir(dir) }

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsatomic: opening dir %s: %w", dir, err)
	}
	// Directory fsync is best-effort (EINVAL on some filesystems).
	d.Sync()
	return d.Close()
}
