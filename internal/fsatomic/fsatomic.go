// Package fsatomic publishes output artifacts atomically: content is
// staged in a hidden temporary file in the destination directory, fsync'd,
// and renamed over the final path. A crash at any point leaves either the
// previous artifact or no artifact — never a torn one. Every result file
// this repository ships (exports, session files, datasets, metrics
// snapshots, translated scripts) goes through this package; the atomicwrite
// analyzer in internal/lint enforces it.
//
// Append streams whose partial content is valuable after a crash — trace
// logs, the runlog write-ahead journal — are the deliberate exception:
// rename-on-close would lose exactly the bytes a crash investigation needs.
//
// All I/O goes through an errfs.FS (the *FS constructors; the plain ones
// use the passthrough errfs.OS()), so storage faults can be injected and
// crash states enumerated; see internal/errfs and internal/errfs/crashpoint.
package fsatomic

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/joda-explore/betze/internal/errfs"
)

// File stages writes for one destination path. Write into it, then either
// Commit (fsync + atomic rename into place) or Close (discard the staged
// content). Close after Commit is a no-op, so `defer f.Close()` composes
// with an explicit Commit on the success path.
type File struct {
	fsys      errfs.FS
	f         errfs.File
	path      string // final destination
	tmp       string // staging file, same directory
	perm      os.FileMode
	committed bool
	closed    bool
}

// Create stages a new artifact for path with default permissions 0o644.
func Create(path string) (*File, error) {
	return CreateMode(path, 0o644)
}

// CreateMode stages a new artifact for path with the given final mode.
func CreateMode(path string, perm os.FileMode) (*File, error) {
	return CreateModeFS(errfs.OS(), path, perm)
}

// CreateFS is Create over an explicit filesystem.
func CreateFS(fsys errfs.FS, path string) (*File, error) {
	return CreateModeFS(fsys, path, 0o644)
}

// CreateModeFS is CreateMode over an explicit filesystem.
func CreateModeFS(fsys errfs.FS, path string, perm os.FileMode) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := fsys.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("fsatomic: staging %s: %w", path, err)
	}
	return &File{fsys: fsys, f: tmp, path: path, tmp: tmp.Name(), perm: perm}, nil
}

// Write appends to the staged content. A write error aborts the staging:
// the temporary file is removed and the File is closed, so a partial
// artifact can never be committed afterwards.
func (w *File) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("fsatomic: write to %s after close", w.path)
	}
	n, err := w.f.Write(p)
	if err != nil {
		w.abort()
		return n, fmt.Errorf("fsatomic: writing %s: %w", w.path, err)
	}
	return n, nil
}

// Commit durably publishes the staged content under the destination path:
// fsync the staging file, fix its mode, rename it into place, and fsync the
// directory so the rename itself survives a crash.
func (w *File) Commit() error {
	if w.committed {
		return nil
	}
	if w.closed {
		return fmt.Errorf("fsatomic: commit of %s after close", w.path)
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return fmt.Errorf("fsatomic: syncing %s: %w", w.path, err)
	}
	if err := w.f.Chmod(w.perm); err != nil {
		w.abort()
		return fmt.Errorf("fsatomic: chmod %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		w.closed = true
		w.fsys.Remove(w.tmp)
		return fmt.Errorf("fsatomic: closing staged %s: %w", w.path, err)
	}
	w.closed = true
	if err := w.fsys.Rename(w.tmp, w.path); err != nil {
		w.fsys.Remove(w.tmp)
		return fmt.Errorf("fsatomic: publishing %s: %w", w.path, err)
	}
	w.committed = true
	return syncDirFS(w.fsys, filepath.Dir(w.path))
}

// Close discards the staged content unless Commit already published it.
func (w *File) Close() error {
	if w.committed || w.closed {
		return nil
	}
	w.abort()
	return nil
}

func (w *File) abort() {
	w.f.Close()
	w.closed = true
	w.fsys.Remove(w.tmp)
}

// WriteFile atomically replaces path with data, the os.WriteFile of this
// package.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileFS(errfs.OS(), path, data, perm)
}

// WriteFileFS is WriteFile over an explicit filesystem.
func WriteFileFS(fsys errfs.FS, path string, data []byte, perm os.FileMode) error {
	f, err := CreateModeFS(fsys, path, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Commit()
}

// SyncDir fsyncs a directory, making recent creates/renames inside it
// durable. Errors from platforms that refuse directory fsync are ignored —
// the rename itself is still atomic, only its durability window widens.
func SyncDir(dir string) error { return syncDirFS(errfs.OS(), dir) }

// SyncDirFS is SyncDir over an explicit filesystem.
func SyncDirFS(fsys errfs.FS, dir string) error { return syncDirFS(fsys, dir) }

func syncDirFS(fsys errfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("fsatomic: syncing dir %s: %w", dir, err)
	}
	return nil
}
