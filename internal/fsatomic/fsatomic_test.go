package fsatomic

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFile(path, []byte("old\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "new\n" {
		t.Fatalf("content = %q, %v", data, err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != 0o644 {
		t.Errorf("mode = %o, want 644", got)
	}
	leftoverCheck(t, dir, "out.csv")
}

func TestCloseWithoutCommitDiscards(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half-written")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("aborted artifact was published: %v", err)
	}
	leftoverCheck(t, dir, "artifact.json")
}

func TestCommitThenCloseIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("Close after Commit: %v", err)
	}
	if err := f.Commit(); err != nil {
		t.Errorf("second Commit: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "x" {
		t.Fatalf("content = %q, %v", data, err)
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err == nil {
		t.Error("Commit after Close succeeded")
	}
}

func TestCreateInMissingDirFails(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Error("Create in missing directory succeeded")
	}
}

// leftoverCheck asserts no staging files survived in dir.
func leftoverCheck(t *testing.T, dir, base string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "."+base+".tmp-") {
			t.Errorf("staging file %s left behind", e.Name())
		}
	}
}
