package fsatomic

import (
	"errors"
	"io"
	"syscall"
	"testing"

	"github.com/joda-explore/betze/internal/errfs"
)

// TestWriteFileFaults drives WriteFileFS into each storage fault the shim
// can inject and checks the atomicity contract: on any failure the final
// name never appears (and an existing artifact is never replaced), and the
// staging temp file is cleaned up.
func TestWriteFileFaults(t *testing.T) {
	cases := []struct {
		name    string
		plan    errfs.Plan // WriteFileFS op layout: 0 write, 1 sync, 2 rename, 3 syncdir
		wantErr error
	}{
		{"enospc-mid-write", errfs.Plan{0: errfs.FaultENOSPC}, syscall.ENOSPC},
		{"short-write", errfs.Plan{0: errfs.FaultShortWrite}, io.ErrShortWrite},
		{"fsync-failure", errfs.Plan{1: errfs.FaultSyncFail}, syscall.EIO},
		{"rename-failure", errfs.Plan{2: errfs.FaultRenameErr}, syscall.EIO},
	}
	for _, tc := range cases {
		for _, preexisting := range []bool{false, true} {
			name := tc.name
			if preexisting {
				name += "-over-existing"
			}
			t.Run(name, func(t *testing.T) {
				mem := errfs.NewMem()
				if err := mem.MkdirAll("out", 0o755); err != nil {
					t.Fatal(err)
				}
				const final = "out/result.json"
				old := []byte(`{"old":true}`)
				if preexisting {
					if err := WriteFileFS(mem, final, old, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				// The plan counts ops from here on: wrap AFTER the setup so
				// the indices are the same with and without a pre-existing
				// artifact.
				faulty := errfs.NewFaulty(mem, tc.plan)
				err := WriteFileFS(faulty, final, []byte(`{"new":true}`), 0o644)
				if err == nil {
					t.Fatal("want an injected failure")
				}
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("want %v, got %v", tc.wantErr, err)
				}
				if !errors.Is(err, errfs.ErrInjected) {
					t.Fatalf("injected fault not marked: %v", err)
				}
				// The final name never shows the failed content.
				data, rerr := mem.ReadFile(final)
				if preexisting {
					if rerr != nil || string(data) != string(old) {
						t.Fatalf("existing artifact disturbed: %q, %v", data, rerr)
					}
				} else if rerr == nil {
					t.Fatalf("final name appeared despite the failure: %q", data)
				}
				// The staging temp is cleaned up.
				entries, err := mem.ReadDir("out")
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range entries {
					if e.Name() != "result.json" {
						t.Fatalf("staging garbage left behind: %s", e.Name())
					}
				}
			})
		}
	}
}

// TestCommitAfterFailedWriteRefused: a fault during Write must not leave a
// committable File behind — committing a partial artifact is exactly the
// torn state the package exists to prevent.
func TestCommitAfterFailedWriteRefused(t *testing.T) {
	mem := errfs.NewMem()
	if err := mem.MkdirAll("out", 0o755); err != nil {
		t.Fatal(err)
	}
	faulty := errfs.NewFaulty(mem, errfs.Plan{0: errfs.FaultShortWrite})
	f, err := CreateFS(faulty, "out/a.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err == nil {
		t.Fatal("want injected short write")
	}
	if err := f.Commit(); err == nil {
		t.Fatal("commit after failed write must be refused")
	}
	if _, err := mem.ReadFile("out/a.json"); err == nil {
		t.Fatal("partial artifact published")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteFileFSCleanPath: the zero-fault path publishes atomically and
// leaves no staging residue.
func TestWriteFileFSCleanPath(t *testing.T) {
	mem := errfs.NewMem()
	if err := mem.MkdirAll("out", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileFS(mem, "out/a.json", []byte("payload"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := mem.ReadFile("out/a.json")
	if err != nil || string(data) != "payload" {
		t.Fatalf("got %q, %v", data, err)
	}
	entries, err := mem.ReadDir("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("staging residue: %d entries", len(entries))
	}
}
