package crashpoint

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/joda-explore/betze/internal/errfs"
	"github.com/joda-explore/betze/internal/fsatomic"
	"github.com/joda-explore/betze/internal/jobqueue"
	"github.com/joda-explore/betze/internal/runlog"
)

// Violation is one invariant broken at one crash point.
type Violation struct {
	Point     Point
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %s: %s", v.Invariant, v.Point, v.Detail)
}

// Report is the outcome of one fuzz workload: how many crash points were
// enumerated and which invariants broke where.
type Report struct {
	Workload   string
	Points     int
	Violations []Violation
}

// Merge folds another report into r.
func (r *Report) Merge(o Report) {
	r.Points += o.Points
	r.Violations = append(r.Violations, o.Violations...)
}

func (r *Report) violate(pt Point, invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Point: pt, Invariant: invariant, Detail: fmt.Sprintf(format, args...),
	})
}

// sample bounds points to at most limit entries, evenly spaced, always
// keeping the last (the fullest trace prefix). limit <= 0 keeps all.
func sample(points []Point, limit int) []Point {
	if limit <= 0 || len(points) <= limit {
		return points
	}
	out := make([]Point, 0, limit)
	for i := 0; i < limit; i++ {
		out = append(out, points[i*(len(points)-1)/(limit-1)])
	}
	return out
}

// ackMark pairs a trace cursor (Mem.TraceLen at the moment a durability
// claim returned to the caller) with what was claimed durable by then.
type ackMark struct {
	cursor int
	count  int // records acked (runlog workload)
}

// FuzzRunlog drives a scripted runlog writer — appends, fsync acks,
// rotations, a close/reopen, a seal — over a recording filesystem, then
// re-runs Recover at every crash point and checks the write-ahead-log
// contract: recovered records are a prefix of the appended ones, and no
// record acked (AppendSync'd) before the crash is lost. maxPoints bounds
// the enumeration (<= 0: all points).
func FuzzRunlog(seed int64, maxPoints int) Report {
	rep := Report{Workload: "runlog"}
	fs := errfs.NewMem()
	const dir = "journal"
	opts := runlog.Options{FS: fs, SegmentBytes: 128}

	var appended [][]byte
	var acks []ackMark
	ack := func() { acks = append(acks, ackMark{cursor: fs.TraceLen(), count: len(appended)}) }

	w, err := runlog.Create(dir, opts)
	if err != nil {
		rep.violate(Point{}, "workload", "create: %v", err)
		return rep
	}
	for i := 0; i < 18; i++ {
		payload := []byte(fmt.Sprintf("record-%03d-%s", i, strings.Repeat("x", (i*7)%29)))
		appended = append(appended, payload)
		if i%3 == 2 {
			// Unsynced append: durable only at the next sync boundary.
			if err := w.Append(payload); err != nil {
				rep.violate(Point{}, "workload", "append %d: %v", i, err)
				return rep
			}
			continue
		}
		if err := w.AppendSync(payload); err != nil {
			rep.violate(Point{}, "workload", "appendsync %d: %v", i, err)
			return rep
		}
		ack()
	}
	// Graceful close + reopen mid-stream (Close syncs, so it acks too).
	if err := w.Close(); err != nil {
		rep.violate(Point{}, "workload", "close: %v", err)
		return rep
	}
	ack()
	w, err = runlog.Open(dir, opts)
	if err != nil {
		rep.violate(Point{}, "workload", "reopen: %v", err)
		return rep
	}
	for i := 18; i < 24; i++ {
		payload := []byte(fmt.Sprintf("record-%03d", i))
		appended = append(appended, payload)
		if err := w.AppendSync(payload); err != nil {
			rep.violate(Point{}, "workload", "appendsync %d: %v", i, err)
			return rep
		}
		ack()
	}
	if err := w.Seal(); err != nil {
		rep.violate(Point{}, "workload", "seal: %v", err)
		return rep
	}
	ack()

	trace := fs.Trace()
	for _, pt := range sample(Points(trace, seed), maxPoints) {
		rep.Points++
		mem, err := Materialize(trace, pt)
		if err != nil {
			rep.violate(pt, "materialize", "%v", err)
			continue
		}
		var records [][]byte
		rec, err := runlog.RecoverFS(mem, dir)
		switch {
		case errors.Is(err, runlog.ErrNoJournal):
			// Nothing survived; legal only if nothing was acked yet.
		case err != nil:
			rep.violate(pt, "recover", "%v", err)
			continue
		default:
			records = rec.Records
		}
		// Invariant 1a: recovered records are a prefix of the appended ones.
		if len(records) > len(appended) {
			rep.violate(pt, "prefix", "recovered %d > appended %d", len(records), len(appended))
			continue
		}
		prefixOK := true
		for i, r := range records {
			if !bytes.Equal(r, appended[i]) {
				rep.violate(pt, "prefix", "record %d diverges: got %q want %q", i, r, appended[i])
				prefixOK = false
				break
			}
		}
		if !prefixOK {
			continue
		}
		// Invariant 1b: no acked record lost.
		ackCount := 0
		for _, a := range acks {
			if a.cursor <= pt.Index {
				ackCount = a.count
			}
		}
		if len(records) < ackCount {
			rep.violate(pt, "acked-lost", "recovered %d records, %d were acked before the crash", len(records), ackCount)
		}
	}
	return rep
}

// FuzzFsatomic publishes three successive versions of one artifact with
// fsatomic.WriteFileFS over a recording filesystem, then checks at every
// crash point that the final name is never torn: it is either absent or
// holds exactly one complete version, and never a version older than the
// last committed (acked) one. maxPoints bounds the enumeration (<= 0: all).
func FuzzFsatomic(seed int64, maxPoints int) Report {
	rep := Report{Workload: "fsatomic"}
	fs := errfs.NewMem()
	const dir, final = "out", "out/artifact.json"
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		rep.violate(Point{}, "workload", "mkdir: %v", err)
		return rep
	}
	versions := [][]byte{
		[]byte(`{"version":1,"rows":[1,2,3]}`),
		[]byte(`{"version":2,"rows":[4,5,6,7],"note":"longer than v1"}`),
		[]byte(`{"version":3}`),
	}
	var acks []ackMark // count = latest committed version index + 1
	for vi, data := range versions {
		if err := fsatomic.WriteFileFS(fs, final, data, 0o644); err != nil {
			rep.violate(Point{}, "workload", "writefile v%d: %v", vi+1, err)
			return rep
		}
		acks = append(acks, ackMark{cursor: fs.TraceLen(), count: vi + 1})
	}

	trace := fs.Trace()
	for _, pt := range sample(Points(trace, seed), maxPoints) {
		rep.Points++
		mem, err := Materialize(trace, pt)
		if err != nil {
			rep.violate(pt, "materialize", "%v", err)
			continue
		}
		data, err := mem.ReadFile(final)
		acked := 0
		for _, a := range acks {
			if a.cursor <= pt.Index {
				acked = a.count
			}
		}
		if err != nil {
			// Absent is legal only before the first commit was acked.
			if acked > 0 {
				rep.violate(pt, "acked-lost", "artifact absent after v%d was committed", acked)
			}
			continue
		}
		// Invariant 2a: never torn — exactly one complete version.
		got := -1
		for vi, v := range versions {
			if bytes.Equal(data, v) {
				got = vi + 1
				break
			}
		}
		if got < 0 {
			rep.violate(pt, "torn-artifact", "final name holds %d bytes matching no complete version", len(data))
			continue
		}
		// Invariant 2b: never older than the last committed version.
		if got < acked {
			rep.violate(pt, "acked-lost", "artifact rolled back to v%d after v%d was committed", got, acked)
		}
	}
	return rep
}

// qSnapshot is the externally acknowledged queue state at one ack cursor.
type qSnapshot struct {
	cursor int
	jobs   map[string]jobqueue.State
	chks   map[string]map[string]string
}

// FuzzJobqueue drives a submit/claim/run/checkpoint/done/fail/cancel
// lifecycle over a journaled queue on a recording filesystem, then re-opens
// the queue at every crash point and checks replay consistency with the ack
// history: recovery never errors, acked jobs still exist, acked terminal
// states never change, acked checkpoints are never lost, and no phantom
// jobs appear. maxPoints bounds the enumeration (<= 0: all points).
func FuzzJobqueue(seed int64, maxPoints int) Report {
	rep := Report{Workload: "jobqueue"}
	fs := errfs.NewMem()
	const dir = "queue"
	t0 := time.Unix(1700000000, 0)
	mkOpts := func(fsys errfs.FS) jobqueue.Options {
		return jobqueue.Options{FS: fsys, Now: func() time.Time { return t0 }, SegmentBytes: 512}
	}

	q, err := jobqueue.Open(dir, mkOpts(fs))
	if err != nil {
		rep.violate(Point{}, "workload", "open: %v", err)
		return rep
	}
	var snaps []qSnapshot
	known := make(map[string]bool)
	cur := map[string]jobqueue.State{}
	curChk := map[string]map[string]string{}
	ack := func() {
		s := qSnapshot{cursor: fs.TraceLen(), jobs: map[string]jobqueue.State{}, chks: map[string]map[string]string{}}
		for id, st := range cur {
			s.jobs[id] = st
		}
		for id, m := range curChk {
			c := map[string]string{}
			for k, v := range m {
				c[k] = v
			}
			s.chks[id] = c
		}
		snaps = append(snaps, s)
	}
	submit := func(tenant string) string {
		snap, err := q.Submit(tenant, json.RawMessage(fmt.Sprintf(`{"tenant":%q}`, tenant)))
		if err != nil {
			rep.violate(Point{}, "workload", "submit: %v", err)
			return ""
		}
		known[snap.ID] = true
		cur[snap.ID] = jobqueue.StateQueued
		ack()
		return snap.ID
	}
	claim := func() string {
		//lint:ignore ctxplumb scripted crash workload, no caller to thread a context from
		snap, err := q.Claim(context.Background())
		if err != nil {
			rep.violate(Point{}, "workload", "claim: %v", err)
			return ""
		}
		cur[snap.ID] = jobqueue.StateClaimed
		ack()
		return snap.ID
	}

	submit("alpha") // j1: runs to completion
	submit("alpha") // j2: fails
	j3 := submit("beta")
	j4 := submit("beta")
	if len(rep.Violations) > 0 {
		return rep
	}
	c1 := claim() // j1
	if err := q.Running(c1, nil); err == nil {
		cur[c1] = jobqueue.StateRunning
		ack()
	}
	if err := q.Checkpoint(c1, "unit-1", json.RawMessage(`{"done":1}`)); err == nil {
		if curChk[c1] == nil {
			curChk[c1] = map[string]string{}
		}
		curChk[c1]["unit-1"] = `{"done":1}`
		ack()
	}
	if err := q.Done(c1); err == nil {
		cur[c1] = jobqueue.StateDone
		ack()
	}
	c2 := claim() // j2
	if err := q.Fail(c2, errors.New("boom")); err == nil {
		cur[c2] = jobqueue.StateFailed
		ack()
	}
	if _, err := q.Cancel(j4); err == nil {
		cur[j4] = jobqueue.StateCancelled
		ack()
	}
	c3 := claim() // j3: left claimed at the crash — recovery must requeue it
	_ = c3
	_ = j3
	if err := q.Close(); err != nil {
		rep.violate(Point{}, "workload", "close: %v", err)
		return rep
	}
	ack()

	trace := fs.Trace()
	for _, pt := range sample(Points(trace, seed), maxPoints) {
		rep.Points++
		mem, err := Materialize(trace, pt)
		if err != nil {
			rep.violate(pt, "materialize", "%v", err)
			continue
		}
		// Invariant 3a: recovery replay never errors, whatever survived.
		q2, err := jobqueue.Open(dir, mkOpts(mem))
		if err != nil {
			rep.violate(pt, "replay", "%v", err)
			continue
		}
		var acked *qSnapshot
		for i := range snaps {
			if snaps[i].cursor <= pt.Index {
				acked = &snaps[i]
			}
		}
		if acked != nil {
			for id, st := range acked.jobs {
				snap, err := q2.Get(id)
				if err != nil {
					// Invariant 3b: no acked job vanishes.
					rep.violate(pt, "acked-lost", "job %s (acked %s): %v", id, st, err)
					continue
				}
				// Invariant 3c: acked terminal states are forever.
				if st.Terminal() && snap.State != st {
					rep.violate(pt, "terminal-changed", "job %s acked %s, replayed as %s", id, st, snap.State)
				}
			}
			// Invariant 3d: acked checkpoints survive replay.
			for id, m := range acked.chks {
				for key, want := range m {
					data, ok := q2.LoadCheckpoint(id, key)
					if !ok || string(data) != want {
						rep.violate(pt, "checkpoint-lost", "job %s key %s: got %q want %q", id, key, data, want)
					}
				}
			}
		}
		// Invariant 3e: no phantom jobs.
		for _, snap := range q2.List() {
			if !known[snap.ID] {
				rep.violate(pt, "phantom-job", "replay invented job %s", snap.ID)
			}
		}
		q2.Close()
	}
	return rep
}
