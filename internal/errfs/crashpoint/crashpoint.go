// Package crashpoint enumerates power-loss states from a recorded errfs.Mem
// operation trace and materialises each as a fresh filesystem, so recovery
// code can be re-run against every state a real crash could have left
// behind (the ALICE/CrashMonkey methodology, scaled to this stack).
//
// The durability model is the POSIX contract the stack is written against:
//
//   - File content becomes durable at fsync(file); writes and truncates
//     after the last fsync are pending and may be lost (or, under the Torn
//     policy, partially applied — the kernel writes dirty pages back in its
//     own time, possibly tearing the final write mid-buffer).
//   - Directory entries (create, rename, remove) become durable at
//     fsync(parent dir); entry changes after the last dir-sync are pending,
//     applied as an ordered prefix (journaled filesystems preserve metadata
//     order; what they do not promise is how much of the tail survives).
//   - Directories themselves are treated as durable at creation — the stack
//     creates its directories once, up front, and their loss is not an
//     interesting crash state.
//
// A crash Point selects how many trace operations had been issued and which
// survival policy applies to the pending tail; Materialize replays the
// model and builds the surviving files into a new errfs.Mem, on which the
// caller runs recovery (runlog.RecoverFS, jobqueue.Open, a harness resume)
// and asserts its invariants.
package crashpoint

import (
	"fmt"
	"os"
	"path"

	"github.com/joda-explore/betze/internal/errfs"
)

// Policy selects how the pending (not-yet-synced) tail of the trace is
// treated at the crash.
type Policy int

const (
	// DropUnsynced is the pessimistic policy: only fsync'd content and
	// dir-sync'd entries survive. Everything the stack acked must still be
	// there.
	DropUnsynced Policy = iota
	// Torn applies a seeded prefix of each file's pending writes (possibly
	// cutting the last one mid-buffer) and of each directory's pending
	// entry changes — the kernel's background writeback caught mid-flight.
	Torn
	// KeepAll is the optimistic policy: the whole issued prefix survives.
	// Recovery must obviously succeed on it; it catches invariant checks
	// that are themselves wrong.
	KeepAll
)

// String names the policy for reports.
func (p Policy) String() string {
	switch p {
	case DropUnsynced:
		return "drop-unsynced"
	case Torn:
		return "torn"
	case KeepAll:
		return "keep-all"
	}
	return "unknown"
}

// Point is one simulated power loss: the first Index trace operations were
// issued, then the machine died; Policy decides the fate of the un-synced
// tail (Seed parameterises Torn's choices).
type Point struct {
	Index  int
	Policy Policy
	Seed   int64
}

// String identifies the point in reports.
func (p Point) String() string {
	return fmt.Sprintf("op %d/%s", p.Index, p.Policy)
}

// Points enumerates the crash points to check for a trace: every operation
// index under every policy. Callers with a budget sample the result.
func Points(trace []errfs.TraceOp, seed int64) []Point {
	out := make([]Point, 0, 3*(len(trace)+1))
	for i := 0; i <= len(trace); i++ {
		out = append(out,
			Point{Index: i, Policy: DropUnsynced, Seed: seed},
			Point{Index: i, Policy: Torn, Seed: seed},
			Point{Index: i, Policy: KeepAll, Seed: seed},
		)
	}
	return out
}

// dataOp is a pending (un-fsync'd) content change.
type dataOp struct {
	trunc bool
	size  int64
	off   int64
	data  []byte
}

// metaOp is a pending (un-dir-sync'd) directory entry change.
type metaOp struct {
	kind  errfs.TraceKind // OpCreate, OpRename, OpRemove
	path  string
	path2 string
	node  int
}

// nodeState tracks one file through the crash model.
type nodeState struct {
	durable  []byte   // content as of the last fsync
	volatile []byte   // content as issued
	pending  []dataOp // changes since the last fsync, in order
}

func (n *nodeState) apply(op dataOp) {
	if op.trunc {
		if op.size <= int64(len(n.volatile)) {
			n.volatile = n.volatile[:op.size]
		}
		return
	}
	end := op.off + int64(len(op.data))
	if grow := end - int64(len(n.volatile)); grow > 0 {
		n.volatile = append(n.volatile, make([]byte, grow)...)
	}
	copy(n.volatile[op.off:end], op.data)
}

// applyTo replays a data op onto an explicit buffer (for rebuilding the
// durable-plus-torn-prefix view).
func applyTo(buf []byte, op dataOp) []byte {
	if op.trunc {
		if op.size <= int64(len(buf)) {
			return buf[:op.size]
		}
		return buf
	}
	end := op.off + int64(len(op.data))
	if grow := end - int64(len(buf)); grow > 0 {
		buf = append(buf, make([]byte, grow)...)
	}
	copy(buf[op.off:end], op.data)
	return buf
}

// model is the crash-model state after replaying a trace prefix.
type model struct {
	nodes       map[int]*nodeState
	volNS       map[string]int      // path → node, as issued
	durNS       map[string]int      // path → node, as dir-sync'd
	pendingMeta map[string][]metaOp // dir → ordered entry changes since its last sync
	dirs        []string            // creation order
}

func newModel() *model {
	return &model{
		nodes:       make(map[int]*nodeState),
		volNS:       make(map[string]int),
		durNS:       make(map[string]int),
		pendingMeta: make(map[string][]metaOp),
	}
}

// applyMeta folds one entry change into a namespace.
func applyMeta(ns map[string]int, op metaOp) {
	switch op.kind {
	case errfs.OpCreate:
		ns[op.path] = op.node
	case errfs.OpRename:
		delete(ns, op.path)
		ns[op.path2] = op.node
	case errfs.OpRemove:
		delete(ns, op.path)
	}
}

func (m *model) step(op errfs.TraceOp) {
	switch op.Kind {
	case errfs.OpMkdir:
		m.dirs = append(m.dirs, op.Path)
	case errfs.OpCreate:
		m.nodes[op.Node] = &nodeState{}
		m.volNS[op.Path] = op.Node
		m.pendingMeta[path.Dir(op.Path)] = append(m.pendingMeta[path.Dir(op.Path)],
			metaOp{kind: errfs.OpCreate, path: op.Path, node: op.Node})
	case errfs.OpWrite:
		n := m.nodes[op.Node]
		d := dataOp{off: op.Off, data: op.Data}
		n.apply(d)
		n.pending = append(n.pending, d)
	case errfs.OpTruncate:
		n := m.nodes[op.Node]
		d := dataOp{trunc: true, size: op.Size}
		n.apply(d)
		n.pending = append(n.pending, d)
	case errfs.OpFsync:
		n := m.nodes[op.Node]
		n.durable = append([]byte(nil), n.volatile...)
		n.pending = nil
	case errfs.OpRename:
		// The stack only renames within one directory (seal, publish), so
		// the entry change is ordered in the destination directory's queue.
		delete(m.volNS, op.Path)
		m.volNS[op.Path2] = op.Node
		m.pendingMeta[path.Dir(op.Path2)] = append(m.pendingMeta[path.Dir(op.Path2)],
			metaOp{kind: errfs.OpRename, path: op.Path, path2: op.Path2, node: op.Node})
	case errfs.OpRemove:
		delete(m.volNS, op.Path)
		m.pendingMeta[path.Dir(op.Path)] = append(m.pendingMeta[path.Dir(op.Path)],
			metaOp{kind: errfs.OpRemove, path: op.Path, node: op.Node})
	case errfs.OpSyncDir:
		for _, mo := range m.pendingMeta[op.Path] {
			applyMeta(m.durNS, mo)
		}
		delete(m.pendingMeta, op.Path)
	}
}

// Materialize simulates a power loss at pt over the recorded trace and
// returns a fresh filesystem holding exactly what survived.
func Materialize(trace []errfs.TraceOp, pt Point) (*errfs.Mem, error) {
	if pt.Index < 0 || pt.Index > len(trace) {
		return nil, fmt.Errorf("crashpoint: index %d out of range [0, %d]", pt.Index, len(trace))
	}
	m := newModel()
	for _, op := range trace[:pt.Index] {
		m.step(op)
	}

	// Choose the surviving namespace and per-node content.
	ns := make(map[string]int)
	content := make(map[int][]byte)
	switch pt.Policy {
	case KeepAll:
		for p, nd := range m.volNS {
			ns[p] = nd
		}
		for id, n := range m.nodes {
			content[id] = n.volatile
		}
	case DropUnsynced:
		for p, nd := range m.durNS {
			ns[p] = nd
		}
		for id, n := range m.nodes {
			content[id] = n.durable
		}
	case Torn:
		for p, nd := range m.durNS {
			ns[p] = nd
		}
		// A seeded prefix of each directory's pending entry changes lands.
		for dir, ops := range m.pendingMeta {
			k := int(errfs.Chance(pt.Seed, "crash.meta", dir, pt.Index) * float64(len(ops)+1))
			for _, mo := range ops[:min(k, len(ops))] {
				applyMeta(ns, mo)
			}
		}
		// A seeded prefix of each node's pending data ops lands; the last
		// surviving write may itself be cut mid-buffer.
		for id, n := range m.nodes {
			key := fmt.Sprintf("node:%d", id)
			k := int(errfs.Chance(pt.Seed, "crash.data", key, pt.Index) * float64(len(n.pending)+1))
			k = min(k, len(n.pending))
			buf := append([]byte(nil), n.durable...)
			for i, d := range n.pending[:k] {
				if i == k-1 && !d.trunc && len(d.data) > 0 {
					cut := int(errfs.Chance(pt.Seed, "crash.cut", key, pt.Index) * float64(len(d.data)+1))
					d = dataOp{off: d.off, data: d.data[:min(cut, len(d.data))]}
				}
				buf = applyTo(buf, d)
			}
			content[id] = buf
		}
	default:
		return nil, fmt.Errorf("crashpoint: unknown policy %d", pt.Policy)
	}

	// Build the surviving state into a fresh filesystem.
	out := errfs.NewMem()
	for _, d := range m.dirs {
		if err := out.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("crashpoint: %w", err)
		}
	}
	for p, nd := range ns {
		f, err := out.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("crashpoint: %w", err)
		}
		if data := content[nd]; len(data) > 0 {
			if _, err := f.Write(data); err != nil {
				f.Close()
				return nil, fmt.Errorf("crashpoint: %w", err)
			}
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("crashpoint: %w", err)
		}
	}
	return out, nil
}
