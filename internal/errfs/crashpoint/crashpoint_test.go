package crashpoint

import (
	"bytes"
	"os"
	"testing"

	"github.com/joda-explore/betze/internal/errfs"
)

// write is a test helper: create/truncate a file with content.
func write(t *testing.T, fs *errfs.Mem, path string, data []byte) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeDropUnsynced(t *testing.T) {
	fs := errfs.NewMem()
	if err := fs.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, fs, "d/a", []byte("hello"))
	// Neither the file content nor the directory entry was synced: a
	// pessimistic crash at the end of the trace loses the file entirely.
	trace := fs.Trace()
	mem, err := Materialize(trace, Point{Index: len(trace), Policy: DropUnsynced})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.ReadFile("d/a"); err == nil {
		t.Fatal("unsynced file survived a drop-unsynced crash")
	}

	// Now fsync the file and sync the directory: both survive.
	f, err := fs.OpenFile("d/a", os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	trace = fs.Trace()
	mem, err = Materialize(trace, Point{Index: len(trace), Policy: DropUnsynced})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mem.ReadFile("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("synced content lost: got %q", got)
	}
}

func TestMaterializeRenameBarrier(t *testing.T) {
	fs := errfs.NewMem()
	if err := fs.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, fs, "d/tmp", []byte("artifact"))
	f, _ := fs.OpenFile("d/tmp", os.O_WRONLY, 0o644)
	f.Sync()
	f.Close()
	fs.SyncDir("d")
	if err := fs.Rename("d/tmp", "d/final"); err != nil {
		t.Fatal(err)
	}
	// Rename issued but the directory not re-synced: pessimistically the
	// old entry is still what survives.
	trace := fs.Trace()
	mem, err := Materialize(trace, Point{Index: len(trace), Policy: DropUnsynced})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.ReadFile("d/final"); err == nil {
		t.Fatal("un-dir-synced rename survived a drop-unsynced crash")
	}
	if got, err := mem.ReadFile("d/tmp"); err != nil || !bytes.Equal(got, []byte("artifact")) {
		t.Fatalf("pre-rename entry lost: %q, %v", got, err)
	}
	// After the dir sync the rename is durable.
	fs.SyncDir("d")
	trace = fs.Trace()
	mem, err = Materialize(trace, Point{Index: len(trace), Policy: DropUnsynced})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := mem.ReadFile("d/final"); err != nil || !bytes.Equal(got, []byte("artifact")) {
		t.Fatalf("dir-synced rename lost: %q, %v", got, err)
	}
	if _, err := mem.ReadFile("d/tmp"); err == nil {
		t.Fatal("renamed-away entry still present after dir sync")
	}
}

func TestMaterializeKeepAll(t *testing.T) {
	fs := errfs.NewMem()
	fs.MkdirAll("d", 0o755)
	write(t, fs, "d/a", []byte("x"))
	trace := fs.Trace()
	mem, err := Materialize(trace, Point{Index: len(trace), Policy: KeepAll})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := mem.ReadFile("d/a"); err != nil || !bytes.Equal(got, []byte("x")) {
		t.Fatalf("keep-all lost data: %q, %v", got, err)
	}
}

func TestMaterializeTornDeterministic(t *testing.T) {
	fs := errfs.NewMem()
	fs.MkdirAll("d", 0o755)
	write(t, fs, "d/a", bytes.Repeat([]byte("abcdefgh"), 16))
	trace := fs.Trace()
	pt := Point{Index: len(trace), Policy: Torn, Seed: 42}
	m1, err := Materialize(trace, pt)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Materialize(trace, pt)
	if err != nil {
		t.Fatal(err)
	}
	d1, e1 := m1.ReadFile("d/a")
	d2, e2 := m2.ReadFile("d/a")
	if (e1 == nil) != (e2 == nil) || !bytes.Equal(d1, d2) {
		t.Fatalf("torn materialization not deterministic: %q/%v vs %q/%v", d1, e1, d2, e2)
	}
}

func TestFuzzWorkloadsPass(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(int64, int) Report
	}{
		{"runlog", FuzzRunlog},
		{"fsatomic", FuzzFsatomic},
		{"jobqueue", FuzzJobqueue},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := tc.run(1, 0) // exhaustive
			if rep.Points == 0 {
				t.Fatal("no crash points enumerated")
			}
			for _, v := range rep.Violations {
				t.Errorf("%s", v)
			}
		})
	}
}

func TestFuzzDeterministic(t *testing.T) {
	a := FuzzRunlog(7, 60)
	b := FuzzRunlog(7, 60)
	if a.Points != b.Points || len(a.Violations) != len(b.Violations) {
		t.Fatalf("same seed produced different verdicts: %d/%d points, %d/%d violations",
			a.Points, b.Points, len(a.Violations), len(b.Violations))
	}
}
