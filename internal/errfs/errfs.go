// Package errfs abstracts the filesystem operations the durability stack
// (internal/runlog, internal/fsatomic, internal/jobqueue) performs, so that
// storage faults — short writes, ENOSPC, EIO on read, failed or silently
// dropped fsync, torn renames, omitted directory fsync — can be injected
// deterministically and crash states can be enumerated from a recorded
// operation trace.
//
// Three implementations ship:
//
//   - OS() is the passthrough production default: every method delegates to
//     the os package, so threading errfs through a package changes nothing
//     in production.
//   - NewMem() is a hermetic in-memory filesystem that additionally records
//     every mutating operation (see TraceOp); the crashpoint sub-package
//     replays such a trace to materialise the durable state a power loss at
//     any point would have left behind.
//   - NewFaulty(inner, schedule) wraps any FS and injects faults decided by
//     a deterministic, seed-driven Schedule at precise operation counts.
//
// The fault-decision hash (Chance) is shared with internal/faultsim so both
// injectors derive their schedules from a seed the same way.
package errfs

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"os"
)

// File is the subset of *os.File the durability stack uses.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Truncate(size int64) error
	Chmod(mode os.FileMode) error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS is the filesystem interface all durability-critical I/O goes through.
// Implementations must return errors that satisfy errors.Is against the os
// sentinel errors (os.ErrNotExist, os.ErrExist) where the os package would.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics for the flags the
	// stack uses (O_CREATE, O_WRONLY, O_RDWR, O_TRUNC).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// CreateTemp creates a uniquely-named temporary file in dir with
	// os.CreateTemp pattern semantics.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory, sorted by name.
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Stat describes a file by path.
	Stat(name string) (os.FileInfo, error)
	// SameFile reports whether two FileInfos describe the same file — the
	// inode comparison runlog's Follower uses to detect a seal-under-read.
	SameFile(a, b os.FileInfo) bool
	// SyncDir fsyncs a directory, making creates/renames/removes inside it
	// durable. Platforms refusing directory fsync degrade to best-effort.
	SyncDir(dir string) error
}

// osFS is the passthrough production filesystem.
type osFS struct{}

// OS returns the passthrough filesystem backed by the os package. It is
// stateless; every call site may request its own.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) SameFile(a, b os.FileInfo) bool { return os.SameFile(a, b) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is best-effort (EINVAL on some filesystems).
	d.Sync()
	return d.Close()
}

// Chance maps (seed, kind, op, attempt) to a uniform float in [0, 1) — the
// pure decision function both faultsim and the seeded errfs schedules use,
// byte-compatible with faultsim's original hash so existing fault schedules
// are unchanged.
func Chance(seed int64, kind, op string, attempt int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	io.WriteString(h, kind)
	io.WriteString(h, op)
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	// 53 mantissa bits give a uniform float in [0, 1).
	return float64(h.Sum64()>>11) / float64(1<<53)
}
