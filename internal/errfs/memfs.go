package errfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceKind enumerates the mutating operations a Mem filesystem records.
type TraceKind int

const (
	// OpMkdir creates a directory (Path).
	OpMkdir TraceKind = iota
	// OpCreate creates a new empty file (Path, Node).
	OpCreate
	// OpWrite writes Data at Off into Node.
	OpWrite
	// OpTruncate cuts Node to Size bytes.
	OpTruncate
	// OpFsync makes Node's content durable.
	OpFsync
	// OpRename moves Path to Path2 (Node is the moved file).
	OpRename
	// OpRemove unlinks Path (Node).
	OpRemove
	// OpSyncDir makes the pending creates/renames/removes under Path durable.
	OpSyncDir
)

// String names the op kind for reports.
func (k TraceKind) String() string {
	switch k {
	case OpMkdir:
		return "mkdir"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpTruncate:
		return "truncate"
	case OpFsync:
		return "fsync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	}
	return "unknown"
}

// TraceOp is one recorded mutating operation. Node identifies the file
// independent of its name, so a rename does not orphan subsequent writes
// through a still-open handle.
type TraceOp struct {
	Kind  TraceKind
	Path  string
	Path2 string // rename destination
	Node  int
	Off   int64  // write offset
	Data  []byte // write payload (private copy)
	Size  int64  // truncate size
}

// memNode is one file's content, shared by every handle and name pointing
// at it.
type memNode struct {
	id   int
	data []byte
}

// Mem is an in-memory FS that records every mutating operation. It is safe
// for concurrent use. The zero value is not usable; call NewMem.
type Mem struct {
	mu     sync.Mutex
	dirs   map[string]bool
	files  map[string]*memNode
	nextID int
	tmpSeq int
	trace  []TraceOp
}

// NewMem returns an empty in-memory filesystem with the root directory "."
// present.
func NewMem() *Mem {
	return &Mem{
		dirs:  map[string]bool{".": true},
		files: make(map[string]*memNode),
	}
}

// clean normalises a path to the slash-separated, dot-rooted form used as
// map key.
func clean(name string) string {
	return path.Clean(filepath.ToSlash(name))
}

// Trace returns a copy of the recorded operation trace.
func (m *Mem) Trace() []TraceOp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]TraceOp(nil), m.trace...)
}

// TraceLen returns the current trace length — the ack cursor callers note
// after a durability-claiming call returns, so a crash point can be compared
// against "what was acknowledged by then".
func (m *Mem) TraceLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.trace)
}

func (m *Mem) record(op TraceOp) {
	m.trace = append(m.trace, op)
}

func pathErr(op, name string, err error) error {
	return &os.PathError{Op: op, Path: name, Err: err}
}

// OpenFile implements FS.
func (m *Mem) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(name)
	if m.dirs[p] {
		return nil, pathErr("open", name, fmt.Errorf("is a directory"))
	}
	if dir := path.Dir(p); !m.dirs[dir] {
		return nil, pathErr("open", name, os.ErrNotExist)
	}
	node, ok := m.files[p]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, pathErr("open", name, os.ErrNotExist)
	case !ok:
		node = &memNode{id: m.nextID}
		m.nextID++
		m.files[p] = node
		m.record(TraceOp{Kind: OpCreate, Path: p, Node: node.id})
	case flag&os.O_TRUNC != 0:
		node.data = nil
		m.record(TraceOp{Kind: OpTruncate, Path: p, Node: node.id, Size: 0})
	}
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	return &memHandle{fs: m, node: node, name: p, writable: writable}, nil
}

// Open implements FS.
func (m *Mem) Open(name string) (File, error) {
	return m.OpenFile(name, os.O_RDONLY, 0)
}

// CreateTemp implements FS with os.CreateTemp's "*"-pattern semantics.
func (m *Mem) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	d := clean(dir)
	if !m.dirs[d] {
		m.mu.Unlock()
		return nil, pathErr("createtemp", dir, os.ErrNotExist)
	}
	prefix, suffix, ok := strings.Cut(pattern, "*")
	if !ok {
		prefix, suffix = pattern, ""
	}
	m.tmpSeq++
	name := path.Join(d, fmt.Sprintf("%s%09d%s", prefix, m.tmpSeq, suffix))
	m.mu.Unlock()
	return m.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
}

// Rename implements FS. Only files are renamed (the stack never renames
// directories).
func (m *Mem) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	op, np := clean(oldpath), clean(newpath)
	node, ok := m.files[op]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	if !m.dirs[path.Dir(np)] {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	delete(m.files, op)
	m.files[np] = node
	m.record(TraceOp{Kind: OpRename, Path: op, Path2: np, Node: node.id})
	return nil
}

// Remove implements FS for files (the stack never removes directories).
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(name)
	node, ok := m.files[p]
	if !ok {
		return pathErr("remove", name, os.ErrNotExist)
	}
	delete(m.files, p)
	m.record(TraceOp{Kind: OpRemove, Path: p, Node: node.id})
	return nil
}

// MkdirAll implements FS.
func (m *Mem) MkdirAll(dir string, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(dir)
	if _, ok := m.files[p]; ok {
		return pathErr("mkdir", dir, fmt.Errorf("not a directory"))
	}
	var missing []string
	for q := p; !m.dirs[q]; q = path.Dir(q) {
		missing = append(missing, q)
	}
	// Parents first, as os.MkdirAll creates them.
	for i := len(missing) - 1; i >= 0; i-- {
		m.dirs[missing[i]] = true
		m.record(TraceOp{Kind: OpMkdir, Path: missing[i]})
	}
	return nil
}

// ReadDir implements FS.
func (m *Mem) ReadDir(name string) ([]os.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(name)
	if !m.dirs[p] {
		return nil, pathErr("readdir", name, os.ErrNotExist)
	}
	var out []os.DirEntry
	for d := range m.dirs {
		if d != p && path.Dir(d) == p {
			out = append(out, memDirEntry{name: path.Base(d), dir: true})
		}
	}
	for f, node := range m.files {
		if path.Dir(f) == p {
			out = append(out, memDirEntry{name: path.Base(f), size: int64(len(node.data)), id: node.id})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// ReadFile implements FS.
func (m *Mem) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.files[clean(name)]
	if !ok {
		return nil, pathErr("open", name, os.ErrNotExist)
	}
	return append([]byte(nil), node.data...), nil
}

// Stat implements FS.
func (m *Mem) Stat(name string) (os.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(name)
	if m.dirs[p] {
		return memInfo{name: path.Base(p), dir: true, id: -1}, nil
	}
	if node, ok := m.files[p]; ok {
		return memInfo{name: path.Base(p), size: int64(len(node.data)), id: node.id}, nil
	}
	return nil, pathErr("stat", name, os.ErrNotExist)
}

// SameFile implements FS by comparing node identity.
func (m *Mem) SameFile(a, b os.FileInfo) bool {
	ai, aok := a.(memInfo)
	bi, bok := b.(memInfo)
	return aok && bok && !ai.dir && !bi.dir && ai.id == bi.id
}

// SyncDir implements FS: a metadata barrier making the pending creates,
// renames and removes under dir durable in the crash model.
func (m *Mem) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(dir)
	if !m.dirs[p] {
		return pathErr("open", dir, os.ErrNotExist)
	}
	m.record(TraceOp{Kind: OpSyncDir, Path: p})
	return nil
}

// memHandle is one open file descriptor.
type memHandle struct {
	fs       *Mem
	node     *memNode
	name     string
	writable bool
	off      int64
	closed   bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, pathErr("read", h.name, os.ErrClosed)
	}
	if h.off >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[h.off:])
	h.off += int64(n)
	return n, nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, pathErr("read", h.name, os.ErrClosed)
	}
	if off >= int64(len(h.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, pathErr("write", h.name, os.ErrClosed)
	}
	if !h.writable {
		return 0, pathErr("write", h.name, fmt.Errorf("read-only handle"))
	}
	end := h.off + int64(len(p))
	if grow := end - int64(len(h.node.data)); grow > 0 {
		h.node.data = append(h.node.data, make([]byte, grow)...)
	}
	copy(h.node.data[h.off:end], p)
	h.fs.record(TraceOp{
		Kind: OpWrite, Path: h.name, Node: h.node.id,
		Off: h.off, Data: append([]byte(nil), p...),
	})
	h.off = end
	return len(p), nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, pathErr("seek", h.name, os.ErrClosed)
	}
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.node.data)) + offset
	default:
		return 0, pathErr("seek", h.name, fmt.Errorf("bad whence %d", whence))
	}
	if h.off < 0 {
		return 0, pathErr("seek", h.name, fmt.Errorf("negative offset"))
	}
	return h.off, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return pathErr("sync", h.name, os.ErrClosed)
	}
	h.fs.record(TraceOp{Kind: OpFsync, Path: h.name, Node: h.node.id})
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return pathErr("truncate", h.name, os.ErrClosed)
	}
	if size < 0 || size > int64(len(h.node.data)) {
		return pathErr("truncate", h.name, fmt.Errorf("size %d out of range", size))
	}
	h.node.data = h.node.data[:size]
	h.fs.record(TraceOp{Kind: OpTruncate, Path: h.name, Node: h.node.id, Size: size})
	return nil
}

func (h *memHandle) Chmod(mode os.FileMode) error { return nil }

func (h *memHandle) Stat() (os.FileInfo, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return nil, pathErr("stat", h.name, os.ErrClosed)
	}
	return memInfo{name: path.Base(h.name), size: int64(len(h.node.data)), id: h.node.id}, nil
}

func (h *memHandle) Name() string { return h.name }

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return pathErr("close", h.name, os.ErrClosed)
	}
	h.closed = true
	return nil
}

// memInfo is the FileInfo of Mem files and directories; id carries node
// identity for SameFile.
type memInfo struct {
	name string
	size int64
	dir  bool
	id   int
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() os.FileMode {
	if i.dir {
		return os.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }

// memDirEntry is one ReadDir entry.
type memDirEntry struct {
	name string
	size int64
	dir  bool
	id   int
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e memDirEntry) Info() (fs.FileInfo, error) {
	return memInfo{name: e.name, size: e.size, dir: e.dir, id: e.id}, nil
}
