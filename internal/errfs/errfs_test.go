package errfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"syscall"
	"testing"
)

func TestMemBasics(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	// Parent directory is enforced.
	if _, err := m.OpenFile("missing/f", os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist for missing parent, got %v", err)
	}
	f, err := m.OpenFile("a/b/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := m.ReadFile("a/b/f")
	if err != nil || string(data) != "hello" {
		t.Fatalf("got %q, %v", data, err)
	}
	if _, err := m.ReadFile("a/b/missing"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestMemSameFileTracksRename(t *testing.T) {
	m := NewMem()
	f, err := m.OpenFile("x", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	before, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("x", "y"); err != nil {
		t.Fatal(err)
	}
	after, err := m.Stat("y")
	if err != nil {
		t.Fatal(err)
	}
	if !m.SameFile(before, after) {
		t.Fatal("rename changed node identity")
	}
	other, err := m.OpenFile("z", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	oi, _ := other.Stat()
	if m.SameFile(before, oi) {
		t.Fatal("distinct files reported as same")
	}
}

func TestMemReadAtAndSeek(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("f", os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("0123456789"))
	buf := make([]byte, 4)
	n, err := f.ReadAt(buf, 3)
	if err != nil || n != 4 || string(buf) != "3456" {
		t.Fatalf("ReadAt: %d %q %v", n, buf, err)
	}
	if _, err := f.ReadAt(buf, 8); err != io.EOF {
		t.Fatalf("short ReadAt must report EOF, got %v", err)
	}
	if off, err := f.Seek(-2, io.SeekEnd); err != nil || off != 8 {
		t.Fatalf("Seek: %d %v", off, err)
	}
	f.Write([]byte("XY"))
	f.Close()
	data, _ := m.ReadFile("f")
	if string(data) != "01234567XY" {
		t.Fatalf("got %q", data)
	}
}

func TestMemTraceRecordsMutations(t *testing.T) {
	m := NewMem()
	m.MkdirAll("d", 0o755)
	f, _ := m.OpenFile("d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	buf := []byte("abc")
	f.Write(buf)
	f.Sync()
	f.Close()
	m.Rename("d/f", "d/g")
	m.SyncDir("d")
	m.Remove("d/g")
	kinds := []TraceKind{}
	for _, op := range m.Trace() {
		kinds = append(kinds, op.Kind)
	}
	want := []TraceKind{OpMkdir, OpCreate, OpWrite, OpFsync, OpRename, OpSyncDir, OpRemove}
	if len(kinds) != len(want) {
		t.Fatalf("trace %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace %v, want %v", kinds, want)
		}
	}
	// The recorded payload is a private copy, not an alias of the buffer
	// the writer may go on to reuse.
	buf[0] = 'Z'
	if m.Trace()[2].Data[0] != 'a' {
		t.Fatal("trace payload aliases caller buffer")
	}
}

func TestFaultyPlanPinpointsOps(t *testing.T) {
	m := NewMem()
	faulty := NewFaulty(m, Plan{1: FaultENOSPC})
	f, err := faulty.OpenFile("f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil { // op 0
		t.Fatal(err)
	}
	n, err := f.Write([]byte("fail")) // op 1
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected ENOSPC, got %v", err)
	}
	if n != 2 {
		t.Fatalf("ENOSPC must be a partial write of half the buffer, wrote %d", n)
	}
	if _, err := f.Write([]byte("ok2")); err != nil { // op 2
		t.Fatal(err)
	}
	inj := faulty.Injections()
	if len(inj) != 1 || inj[0].N != 1 || inj[0].Fault != FaultENOSPC {
		t.Fatalf("injections: %+v", inj)
	}
}

func TestFaultySyncLostSkipsInnerSync(t *testing.T) {
	m := NewMem()
	faulty := NewFaulty(m, Plan{0: FaultSyncLost})
	f, _ := faulty.OpenFile("f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err := f.Sync(); err != nil { // lying disk: reports success
		t.Fatalf("sync-lost must report success, got %v", err)
	}
	for _, op := range m.Trace() {
		if op.Kind == OpFsync {
			t.Fatal("sync-lost leaked a real fsync into the trace")
		}
	}
}

func TestSeededDeterministic(t *testing.T) {
	run := func() []Injection {
		m := NewMem()
		faulty := NewFaulty(m, Seeded{Seed: 99, Rate: 0.3})
		f, _ := faulty.OpenFile("f", os.O_CREATE|os.O_WRONLY, 0o644)
		for i := 0; i < 50; i++ {
			f.Write(bytes.Repeat([]byte("x"), 8))
			f.Sync()
		}
		return faulty.Injections()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 100 ops injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChanceRangeAndDeterminism(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := Chance(7, "kind", "op", i)
		if v < 0 || v >= 1 {
			t.Fatalf("Chance out of [0,1): %v", v)
		}
		if v != Chance(7, "kind", "op", i) {
			t.Fatal("Chance not deterministic")
		}
	}
	if Chance(1, "k", "o", 0) == Chance(2, "k", "o", 0) {
		t.Fatal("seed does not perturb Chance")
	}
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := OS()
	f, err := fs.OpenFile(dir+"/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	a, _ := fs.Stat(dir + "/f")
	b, _ := fs.Stat(dir + "/f")
	if !fs.SameFile(a, b) {
		t.Fatal("osFS.SameFile broken")
	}
	data, err := fs.ReadFile(dir + "/f")
	if err != nil || string(data) != "x" {
		t.Fatalf("got %q, %v", data, err)
	}
}
