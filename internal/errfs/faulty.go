package errfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
)

// ErrInjected marks every error produced by a Faulty filesystem, so tests
// and the crashfuzz harness can tell injected faults from genuine bugs.
var ErrInjected = errors.New("errfs: injected fault")

// Fault enumerates the storage faults a Faulty filesystem can inject.
type Fault int

const (
	// FaultNone injects nothing.
	FaultNone Fault = iota
	// FaultENOSPC writes only half the buffer, then fails with ENOSPC.
	FaultENOSPC
	// FaultShortWrite writes only half the buffer, then fails with
	// io.ErrShortWrite.
	FaultShortWrite
	// FaultReadErr fails a read with EIO.
	FaultReadErr
	// FaultSyncFail skips the fsync and reports EIO — the kernel may have
	// dropped dirty pages, so callers must not ack past it.
	FaultSyncFail
	// FaultSyncLost skips the fsync but reports success — a lying disk.
	FaultSyncLost
	// FaultRenameErr fails a rename with EIO without moving anything.
	FaultRenameErr
	// FaultDirSyncLost skips a directory fsync but reports success.
	FaultDirSyncLost
)

// String names the fault for reports.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultENOSPC:
		return "enospc"
	case FaultShortWrite:
		return "short-write"
	case FaultReadErr:
		return "read-eio"
	case FaultSyncFail:
		return "sync-fail"
	case FaultSyncLost:
		return "sync-lost"
	case FaultRenameErr:
		return "rename-eio"
	case FaultDirSyncLost:
		return "dirsync-lost"
	}
	return "unknown"
}

// injectedErr wraps both ErrInjected and the os-level cause, so errors.Is
// matches either.
type injectedErr struct {
	fault Fault
	cause error
}

func (e *injectedErr) Error() string {
	return fmt.Sprintf("errfs: injected %s: %v", e.fault, e.cause)
}

func (e *injectedErr) Unwrap() []error { return []error{ErrInjected, e.cause} }

func injected(fault Fault, cause error) error {
	return &injectedErr{fault: fault, cause: cause}
}

// Schedule decides which fault (if any) to inject for the n-th faultable
// operation. Implementations must be deterministic in their inputs.
type Schedule interface {
	Decide(n int64, op, path string) Fault
}

// Plan injects faults at precise operation counts: Plan{17: FaultENOSPC}
// fails the 17th faultable operation. Operations count from 0 in the order
// write, read, sync, rename, syncdir calls reach the Faulty wrapper.
type Plan map[int64]Fault

// Decide implements Schedule.
func (p Plan) Decide(n int64, op, path string) Fault { return p[n] }

// Seeded injects faults at a fixed Rate, choosing deterministically from the
// faults applicable to each operation via the shared Chance hash — the same
// seed always yields the same schedule.
type Seeded struct {
	Seed int64
	Rate float64
}

// Decide implements Schedule.
func (s Seeded) Decide(n int64, op, path string) Fault {
	if Chance(s.Seed, "errfs."+op, path, int(n)) >= s.Rate {
		return FaultNone
	}
	pick := Chance(s.Seed, "errfs.pick."+op, path, int(n))
	switch op {
	case "write":
		if pick < 0.5 {
			return FaultENOSPC
		}
		return FaultShortWrite
	case "read":
		return FaultReadErr
	case "sync":
		if pick < 0.5 {
			return FaultSyncFail
		}
		return FaultSyncLost
	case "rename":
		return FaultRenameErr
	case "syncdir":
		return FaultDirSyncLost
	}
	return FaultNone
}

// Injection records one injected fault, for reports and assertions.
type Injection struct {
	N     int64
	Op    string
	Path  string
	Fault Fault
}

// Faulty wraps an FS and injects the faults its Schedule decides. The
// operation counter is global across the wrapped filesystem, so a Plan pins
// faults to exact points in a workload.
type Faulty struct {
	inner FS
	sched Schedule

	mu  sync.Mutex
	n   int64
	log []Injection
}

// NewFaulty wraps inner with the given fault schedule.
func NewFaulty(inner FS, sched Schedule) *Faulty {
	return &Faulty{inner: inner, sched: sched}
}

// Injections returns a copy of the faults injected so far.
func (f *Faulty) Injections() []Injection {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Injection(nil), f.log...)
}

// OpCount returns how many faultable operations have been observed.
func (f *Faulty) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// decide advances the operation counter and returns the scheduled fault.
func (f *Faulty) decide(op, path string) Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.n
	f.n++
	fault := f.sched.Decide(n, op, path)
	if fault != FaultNone {
		f.log = append(f.log, Injection{N: n, Op: op, Path: path, Fault: fault})
	}
	return fault
}

// OpenFile implements FS.
func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, path: name}, nil
}

// Open implements FS.
func (f *Faulty) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, path: name}, nil
}

// CreateTemp implements FS.
func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, path: file.Name()}, nil
}

// Rename implements FS.
func (f *Faulty) Rename(oldpath, newpath string) error {
	if f.decide("rename", oldpath) == FaultRenameErr {
		return injected(FaultRenameErr, &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.EIO})
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error { return f.inner.Remove(name) }

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

// ReadFile implements FS.
func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if f.decide("read", name) == FaultReadErr {
		return nil, injected(FaultReadErr, &os.PathError{Op: "read", Path: name, Err: syscall.EIO})
	}
	return f.inner.ReadFile(name)
}

// Stat implements FS.
func (f *Faulty) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

// SameFile implements FS.
func (f *Faulty) SameFile(a, b os.FileInfo) bool { return f.inner.SameFile(a, b) }

// SyncDir implements FS.
func (f *Faulty) SyncDir(dir string) error {
	if f.decide("syncdir", dir) == FaultDirSyncLost {
		// Lie: report success without the barrier.
		return nil
	}
	return f.inner.SyncDir(dir)
}

// faultFile wraps a file handle with fault injection on read/write/sync.
type faultFile struct {
	fs    *Faulty
	inner File
	path  string
}

func (h *faultFile) Write(p []byte) (int, error) {
	switch fault := h.fs.decide("write", h.path); fault {
	case FaultENOSPC:
		n, _ := h.inner.Write(p[:len(p)/2])
		return n, injected(fault, &os.PathError{Op: "write", Path: h.path, Err: syscall.ENOSPC})
	case FaultShortWrite:
		n, _ := h.inner.Write(p[:len(p)/2])
		return n, injected(fault, io.ErrShortWrite)
	}
	return h.inner.Write(p)
}

func (h *faultFile) Read(p []byte) (int, error) {
	if h.fs.decide("read", h.path) == FaultReadErr {
		return 0, injected(FaultReadErr, &os.PathError{Op: "read", Path: h.path, Err: syscall.EIO})
	}
	return h.inner.Read(p)
}

func (h *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if h.fs.decide("read", h.path) == FaultReadErr {
		return 0, injected(FaultReadErr, &os.PathError{Op: "read", Path: h.path, Err: syscall.EIO})
	}
	return h.inner.ReadAt(p, off)
}

func (h *faultFile) Sync() error {
	switch fault := h.fs.decide("sync", h.path); fault {
	case FaultSyncFail:
		return injected(fault, &os.PathError{Op: "sync", Path: h.path, Err: syscall.EIO})
	case FaultSyncLost:
		// Lie: report success without syncing.
		return nil
	}
	return h.inner.Sync()
}

func (h *faultFile) Seek(offset int64, whence int) (int64, error) {
	return h.inner.Seek(offset, whence)
}
func (h *faultFile) Truncate(size int64) error      { return h.inner.Truncate(size) }
func (h *faultFile) Chmod(mode os.FileMode) error   { return h.inner.Chmod(mode) }
func (h *faultFile) Stat() (os.FileInfo, error)     { return h.inner.Stat() }
func (h *faultFile) Name() string                   { return h.inner.Name() }
func (h *faultFile) Close() error                   { return h.inner.Close() }
