// Package engine defines the interface through which BETZE benchmarks the
// systems under test, plus shared import helpers and statistics types.
//
// The paper evaluates JODA, MongoDB, PostgreSQL and jq through Docker; this
// reproduction replaces the external systems with in-process engines
// (jodasim, mongosim, pgsim, jqsim) that perform the same dominant work —
// parsing, binary conversion, compression, per-document evaluation, result
// serialisation — so that measured times reproduce the paper's shapes on
// real computation rather than calibrated sleeps.
package engine

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/joda-explore/betze/internal/jsonval"
	"github.com/joda-explore/betze/internal/query"
)

// ImportStats describes one dataset import.
type ImportStats struct {
	// Docs is the number of imported documents.
	Docs int64
	// Bytes is the raw input size.
	Bytes int64
	// StoredBytes is the engine's internal representation size.
	StoredBytes int64
	// Duration is the wall time of the import.
	Duration time.Duration
}

// ExecStats describes one query execution.
type ExecStats struct {
	// Scanned is the number of documents evaluated.
	Scanned int64
	// Skipped is the number of documents proven non-matching without
	// evaluation — their whole shard was ruled out by its zone map.
	// Scanned + Skipped is the dataset size a pre-pruning scan walked.
	Skipped int64
	// Matched is the number of documents passing the filter.
	Matched int64
	// Returned is the number of documents written to the sink (result
	// documents for plain queries, aggregate rows for aggregations).
	Returned int64
	// OutputBytes is the serialised result size.
	OutputBytes int64
	// Duration is the wall time of the execution.
	Duration time.Duration
}

// Engine is a system under test.
type Engine interface {
	// Name is the display name used in result tables.
	Name() string
	// ImportFile loads a newline-delimited JSON file as the named
	// dataset, converting it into the engine's storage format.
	ImportFile(ctx context.Context, name, path string) (ImportStats, error)
	// Execute runs one query. Result documents are serialised to sink
	// (pass io.Discard to drop them, the paper's /dev/null setup). When
	// the query stores its result, the engine additionally creates the
	// derived dataset under the query's Store name.
	Execute(ctx context.Context, q *query.Query, sink io.Writer) (ExecStats, error)
	// Reset drops derived datasets and caches but keeps imported base
	// datasets, preparing the engine for another session run.
	Reset() error
	// Close releases all resources.
	Close() error
}

// ErrUnknownDataset is wrapped by engines when a query references a dataset
// that was never imported or stored.
var ErrUnknownDataset = fmt.Errorf("engine: unknown dataset")

// UnknownDataset builds the canonical error for a missing dataset.
func UnknownDataset(engine, name string) error {
	return fmt.Errorf("%s: %w %q", engine, ErrUnknownDataset, name)
}

// checkEvery is how many documents an engine processes between context
// cancellation checks.
const checkEvery = 2048

// Cancelled polls ctx every checkEvery iterations; i is the loop counter.
func Cancelled(ctx context.Context, i int64) error {
	if i%checkEvery == 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}

// ReadFile streams the documents of a newline-delimited JSON file.
func ReadFile(ctx context.Context, path string, fn func(doc jsonval.Value) error) (docs, bytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	dec := jsonval.NewDecoder(f)
	var n int64
	for {
		if err := Cancelled(ctx, n); err != nil {
			return n, info.Size(), err
		}
		doc, err := dec.Decode()
		if err == io.EOF {
			return n, info.Size(), nil
		}
		if err != nil {
			return n, info.Size(), err
		}
		if err := fn(doc); err != nil {
			return n, info.Size(), err
		}
		n++
	}
}

// WriteDoc serialises one result document to the sink and returns the number
// of bytes written.
func WriteDoc(sink io.Writer, buf *[]byte, doc jsonval.Value) (int64, error) {
	*buf = jsonval.AppendJSON((*buf)[:0], doc)
	*buf = append(*buf, '\n')
	n, err := sink.Write(*buf)
	return int64(n), err
}

// RunAggregation folds pre-filtered documents into the query's aggregation
// and writes the aggregate rows to sink.
func RunAggregation(agg *query.Aggregation, docs []jsonval.Value, sink io.Writer) (returned, outputBytes int64, err error) {
	a := query.NewAggregator(*agg)
	for _, d := range docs {
		a.Add(d)
	}
	var buf []byte
	for _, row := range a.Result() {
		n, err := WriteDoc(sink, &buf, row)
		if err != nil {
			return returned, outputBytes, err
		}
		returned++
		outputBytes += n
	}
	return returned, outputBytes, nil
}
