package scan

// Plan exposes the batch planner to the tests.
func Plan(o Options, n int) (workers, batch int) { return plan(o, n) }
