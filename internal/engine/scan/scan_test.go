package scan_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/joda-explore/betze/internal/engine/scan"
	"github.com/joda-explore/betze/internal/obs"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestPlanClampsWorkersToItems is the regression test for the worker-sizing
// bug the sims used to carry: more threads than documents must clamp to the
// document count, not collapse to a single-threaded scan.
func TestPlanClampsWorkersToItems(t *testing.T) {
	cases := []struct {
		o       scan.Options
		n       int
		workers int
		batch   int
	}{
		{scan.Options{Workers: 4}, 3, 3, 1},
		{scan.Options{Workers: 4, Batch: 10}, 3, 3, 1},
		{scan.Options{Workers: 4}, 100, 4, 25},
		{scan.Options{Workers: 4, Batch: 8}, 1000, 4, 8},
		{scan.Options{Workers: 0}, 10, 1, 10},
		{scan.Options{Workers: -3, Batch: 2}, 10, 1, 2},
		{scan.Options{Workers: 4}, 0, 1, scan.DefaultBatch},
		{scan.Options{}, 1 << 20, 1, scan.DefaultBatch},
	}
	for _, c := range cases {
		w, b := scan.Plan(c.o, c.n)
		if w != c.workers || b != c.batch {
			t.Errorf("Plan(%+v, %d) = (%d, %d), want (%d, %d)", c.o, c.n, w, b, c.workers, c.batch)
		}
	}
}

// TestFilterParallelizesSmallScan proves a 3-document scan under a 4-thread
// configuration really runs 3 workers concurrently: each keep call blocks at
// a rendezvous that only opens once all three are in flight.
func TestFilterParallelizesSmallScan(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(3)
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	out, err := scan.Filter(context.Background(), scan.Options{Workers: 4}, ints(3), func(i, v int) (bool, error) {
		wg.Done()
		select {
		case <-done:
			return true, nil
		case <-time.After(5 * time.Second):
			return false, fmt.Errorf("scan did not parallelize: item %d stuck at rendezvous", i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("kept %d items, want 3", len(out))
	}
}

// TestFilterPreservesDocumentOrder fuzzes sizes, batch sizes and worker
// counts against the obvious sequential reference.
func TestFilterPreservesDocumentOrder(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for round := 0; round < 60; round++ {
		n := r.Intn(500)
		o := scan.Options{Workers: 1 + r.Intn(8), Batch: 1 + r.Intn(17)}
		items := make([]int, n)
		for i := range items {
			items[i] = r.Intn(1000)
		}
		keepEven := func(i, v int) (bool, error) { return v%2 == 0, nil }
		var want []int
		for _, v := range items {
			if v%2 == 0 {
				want = append(want, v)
			}
		}
		got, err := scan.Filter(context.Background(), o, items, keepEven)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d (%+v, n=%d): kept %d, want %d", round, o, n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d (%+v, n=%d): out[%d] = %d, want %d (order broken)", round, o, n, i, got[i], want[i])
			}
		}
	}
}

func TestMapWritesEveryIndex(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for round := 0; round < 40; round++ {
		n := r.Intn(400)
		o := scan.Options{Workers: 1 + r.Intn(8), Batch: 1 + r.Intn(13)}
		out, err := scan.Map(context.Background(), o, ints(n), func(i, v int) (string, error) {
			return fmt.Sprintf("#%d", v), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != n {
			t.Fatalf("got %d outputs, want %d", len(out), n)
		}
		for i, s := range out {
			if s != fmt.Sprintf("#%d", i) {
				t.Fatalf("out[%d] = %q", i, s)
			}
		}
	}
}

// TestFilterReportsLowestIndexError pins the deterministic error contract:
// whatever the interleaving, the error reported is the one at the lowest
// item index.
func TestFilterReportsLowestIndexError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("item %d failed", i) }
	for round := 0; round < 20; round++ {
		_, err := scan.Filter(context.Background(), scan.Options{Workers: 4, Batch: 3}, ints(200), func(i, v int) (bool, error) {
			if i%50 == 7 { // fails at 7, 57, 107, 157
				return false, boom(i)
			}
			return true, nil
		})
		if err == nil || err.Error() != "item 7 failed" {
			t.Fatalf("err = %v, want the lowest-index failure", err)
		}
	}
}

func TestFilterAndStreamHonourCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := scan.Filter(ctx, scan.Options{Workers: 2, Batch: 4}, ints(10000), func(i, v int) (bool, error) {
		if calls.Add(1) == 20 {
			cancel()
		}
		return true, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Filter err = %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	n := 0
	done, err := scan.Stream(ctx2, scan.Options{Batch: 8}, 10000, func(i int) (bool, error) {
		n++
		if n == 20 {
			cancel2()
		}
		return true, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Stream err = %v, want context.Canceled", err)
	}
	if done >= 10000 {
		t.Errorf("Stream walked the whole input (%d) despite cancellation", done)
	}
	cancel()
	cancel2()
}

func TestStreamStopsEarlyAndCounts(t *testing.T) {
	done, err := scan.Stream(context.Background(), scan.Options{Batch: 5}, 100, func(i int) (bool, error) {
		return i < 41, nil // consume 41 items, then stop
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != 41 {
		t.Errorf("done = %d, want 41", done)
	}

	// A negative n scans an unbounded input until step reports the end.
	done, err = scan.Stream(context.Background(), scan.Options{Batch: 5}, -1, func(i int) (bool, error) {
		return i < 73, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != 73 {
		t.Errorf("unbounded done = %d, want 73", done)
	}

	sawErr := errors.New("bad doc")
	done, err = scan.Stream(context.Background(), scan.Options{}, 100, func(i int) (bool, error) {
		if i == 7 {
			return false, sawErr
		}
		return true, nil
	})
	if !errors.Is(err, sawErr) {
		t.Errorf("err = %v, want wrapped bad doc", err)
	}
	if done != 7 {
		t.Errorf("done = %d, want 7", done)
	}
}

// TestScanEmitsObsVocabulary checks both kernels report through the closed
// vocabulary: scan.* counters plus one scan event per pass.
func TestScanEmitsObsVocabulary(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	rec.SetClock(func() time.Time { return time.Unix(0, 0) })
	ctx := obs.With(context.Background(), obs.Scope{Metrics: reg, Trace: rec})

	if _, err := scan.Filter(ctx, scan.Options{Workers: 2, Batch: 10, Engine: "joda"}, ints(100), func(i, v int) (bool, error) {
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := scan.Stream(ctx, scan.Options{Batch: 10, Engine: "mongodb"}, 50, func(i int) (bool, error) {
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter(obs.MScanItems).Value(); got != 150 {
		t.Errorf("%s = %d, want 150", obs.MScanItems, got)
	}
	if got := reg.Counter(obs.MScanBatches).Value(); got != 15 {
		t.Errorf("%s = %d, want 15", obs.MScanBatches, got)
	}
	if got := reg.Counter(obs.MScanWorkers).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", obs.MScanWorkers, got)
	}
	if got := reg.Counter(obs.MScanCancels).Value(); got != 0 {
		t.Errorf("%s = %d, want 0", obs.MScanCancels, got)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(events))
	}
	par, seq := events[0], events[1]
	if par.Type != obs.EvScan || par.Kind != obs.KindParallel || par.Engine != "joda" || par.Scanned != 100 || par.Workers != 2 {
		t.Errorf("parallel event = %+v", par)
	}
	if seq.Type != obs.EvScan || seq.Kind != obs.KindSequential || seq.Engine != "mongodb" || seq.Scanned != 50 || seq.Workers != 1 {
		t.Errorf("sequential event = %+v", seq)
	}

	// A cancelled pass bumps the cancel counter.
	ctx2, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := scan.Filter(ctx2, scan.Options{Workers: 2, Engine: "joda"}, ints(100), func(i, v int) (bool, error) {
		return true, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := reg.Counter(obs.MScanCancels).Value(); got != 1 {
		t.Errorf("%s = %d after cancellation, want 1", obs.MScanCancels, got)
	}
}

func TestScanEmptyInput(t *testing.T) {
	out, err := scan.Filter(context.Background(), scan.Options{Workers: 8}, nil, func(i, v int) (bool, error) {
		return true, nil
	})
	if err != nil || len(out) != 0 {
		t.Errorf("Filter(nil) = (%v, %v)", out, err)
	}
	mapped, err := scan.Map(context.Background(), scan.Options{Workers: 8}, []int{}, func(i, v int) (int, error) {
		return v, nil
	})
	if err != nil || len(mapped) != 0 {
		t.Errorf("Map(empty) = (%v, %v)", mapped, err)
	}
	done, err := scan.Stream(context.Background(), scan.Options{}, 0, func(i int) (bool, error) {
		return true, nil
	})
	if err != nil || done != 0 {
		t.Errorf("Stream(0) = (%d, %v)", done, err)
	}
}
